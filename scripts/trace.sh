#!/usr/bin/env bash
# Export chrome://tracing span dumps from the traced examples into
# results/trace_*.json. Load them in chrome://tracing or
# https://ui.perfetto.dev.
#
# Usage: scripts/trace.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo run --release --features trace --example quickstart"
cargo run --release --features trace --example quickstart >/dev/null

ls -l results/trace_*.json
echo "trace export OK"
