#!/usr/bin/env bash
# Offline CI gate: build, test, format, lint. No network access needed —
# the workspace has zero external dependencies.
#
# Usage: scripts/ci.sh [--quick]
#   --quick   skip the feature-gated property tests and bench build
set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

echo "==> audit stage: kaas-audit static pass + sim-sanitizer test run"
# Static determinism/resource-safety lint over the whole workspace, in
# machine-readable mode: each finding is one JSON object which we turn
# into a CI error annotation before failing the gate.
if ! audit_out="$(cargo run -q --release -p kaas-audit -- --format=json)"; then
    printf '%s\n' "$audit_out" | sed -n 's/^{.*}$/::error ::&/p' >&2
    printf '%s\n' "$audit_out" | tail -n 1 >&2
    exit 1
fi
# The full suite again with the runtime invariant auditor attached to
# every server (chaos + dataplane included): zero violations expected.
cargo test -q --release --workspace --features sim-sanitizer

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --release --workspace

if [[ $quick -eq 0 ]]; then
    echo "==> cargo test -q --all-features (property tests + bench harness)"
    cargo test -q --release --workspace --all-features
fi

echo "==> chaos stage: seeded fault storm + determinism replay"
cargo test -q --release --test chaos
# Replay check: the same seeded storm twice; the example's recovery
# timeline (and everything else it prints) must be byte-identical.
chaos_a="$(cargo run -q --release --example chaos)"
chaos_b="$(cargo run -q --release --example chaos)"
if [[ "$chaos_a" != "$chaos_b" ]]; then
    echo "chaos replay diverged between two same-seed runs" >&2
    diff <(printf '%s\n' "$chaos_a") <(printf '%s\n' "$chaos_b") >&2 || true
    exit 1
fi

echo "==> dataplane stage: cache/eviction tests + bench determinism"
cargo test -q --release --test dataplane
# The data-plane bench must replay byte-identically run to run.
dp_a="$(cargo run -q --release -p kaas-bench --bin dataplane -- --quick)"
dp_b="$(cargo run -q --release -p kaas-bench --bin dataplane -- --quick)"
if [[ "$dp_a" != "$dp_b" ]]; then
    echo "dataplane bench diverged between two runs" >&2
    diff <(printf '%s\n' "$dp_a") <(printf '%s\n' "$dp_b") >&2 || true
    exit 1
fi

echo "==> dataflow stage: workflow DAG tests + bench determinism"
cargo test -q --release --test workflow_dataflow
# The registered-flow bench must replay byte-identically run to run.
df_a="$(cargo run -q --release -p kaas-bench --bin dataflow -- --quick)"
df_b="$(cargo run -q --release -p kaas-bench --bin dataflow -- --quick)"
if [[ "$df_a" != "$df_b" ]]; then
    echo "dataflow bench diverged between two runs" >&2
    diff <(printf '%s\n' "$df_a") <(printf '%s\n' "$df_b") >&2 || true
    exit 1
fi

echo "==> cluster stage: sharded-dispatch tests + bench determinism"
cargo test -q --release --test dispatch_shard
# The dispatch A/B bench (serialized knee vs sharded+batched) must
# replay byte-identically run to run.
cl_a="$(cargo run -q --release -p kaas-bench --bin cluster -- --quick)"
cl_b="$(cargo run -q --release -p kaas-bench --bin cluster -- --quick)"
if [[ "$cl_a" != "$cl_b" ]]; then
    echo "cluster bench diverged between two runs" >&2
    diff <(printf '%s\n' "$cl_a") <(printf '%s\n' "$cl_b") >&2 || true
    exit 1
fi

echo "==> overload stage: overload-control tests + bench determinism"
cargo test -q --release --test overload
# The metastable-failure A/B bench must replay byte-identically run to
# run (burst timing, sheds, ejections, budget denials included).
ov_a="$(cargo run -q --release -p kaas-bench --bin overload -- --quick)"
ov_b="$(cargo run -q --release -p kaas-bench --bin overload -- --quick)"
if [[ "$ov_a" != "$ov_b" ]]; then
    echo "overload bench diverged between two runs" >&2
    diff <(printf '%s\n' "$ov_a") <(printf '%s\n' "$ov_b") >&2 || true
    exit 1
fi

echo "==> guest stage: guest runtime tests + coldstart bench determinism"
cargo test -q --release -p kaas-guest
cargo test -q --release --test guest_runtime
# The two-path cold-start sweep must replay byte-identically run to run.
gk_a="$(cargo run -q --release -p kaas-bench --bin coldstart -- --quick)"
gk_b="$(cargo run -q --release -p kaas-bench --bin coldstart -- --quick)"
if [[ "$gk_a" != "$gk_b" ]]; then
    echo "coldstart bench diverged between two runs" >&2
    diff <(printf '%s\n' "$gk_a") <(printf '%s\n' "$gk_b") >&2 || true
    exit 1
fi

echo "==> verify stage: bytecode verifier differential test + bench determinism"
cargo test -q --release -p kaas-guest --test differential
# The checking-vs-fast-path sweep is modeled from instruction/check
# counters, so it must replay byte-identically run to run.
vf_a="$(cargo run -q --release -p kaas-bench --bin verify -- --quick)"
vf_b="$(cargo run -q --release -p kaas-bench --bin verify -- --quick)"
if [[ "$vf_a" != "$vf_b" ]]; then
    echo "verify bench diverged between two runs" >&2
    diff <(printf '%s\n' "$vf_a") <(printf '%s\n' "$vf_b") >&2 || true
    exit 1
fi

echo "==> cargo build --features trace --examples"
cargo build --release --features trace --examples

echo "==> cargo doc --no-deps"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -- -D warnings"
cargo clippy --release --workspace --all-targets -- -D warnings
if [[ $quick -eq 0 ]]; then
    cargo clippy --release --workspace --all-targets --all-features -- -D warnings
fi

echo "CI OK"
