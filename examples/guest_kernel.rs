//! Guest kernels: register tenant bytecode at runtime, watch both
//! cold-start paths, trip the fuel meter, and walk the version
//! lifecycle.
//!
//! Run with: `cargo run --example guest_kernel`
//!
//! The walkthrough:
//!   1. register a fuel-metered bytecode kernel (`sum(x·2.5) + bias`)
//!      twice — once plain, once `with_snapshot()` — and compare the
//!      full-instantiate vs snapshot-restore cold starts;
//!   2. show bare-name vs `@vN`-pinned resolution across an upgrade;
//!   3. let a hostile infinite loop die at its fuel limit;
//!   4. read the per-tenant meters back out of the server registry.

use kaas::accel::{Device, DeviceClass, DeviceId, GpuDevice, GpuProfile};
use kaas::core::{KaasClient, KaasNetwork, KaasServer, KernelRegistry, ServerConfig};
use kaas::guest::{GuestProgram, Op};
use kaas::kernels::Value;
use kaas::net::{LinkProfile, SharedMemory};
use kaas::simtime::{spawn, Simulation};

/// `sum(x · 2.5) + bias`, with the bias table built at init time so
/// the snapshot path has real work to skip.
fn scaled_sum(bias: f64) -> GuestProgram {
    GuestProgram::new("scaledsum", DeviceClass::Gpu)
        .with_init(1, vec![Op::PushF(bias), Op::SetGlobal(0)])
        .with_body(vec![
            Op::Input,
            Op::PushF(2.5),
            Op::VecScale,
            Op::VecSum,
            Op::Global(0),
            Op::Add,
            Op::Return,
        ])
}

fn main() {
    let mut sim = Simulation::new();
    sim.block_on(async {
        let devices: Vec<Device> = (0..2)
            .map(|i| GpuDevice::new(DeviceId(i), GpuProfile::p100()).into())
            .collect();
        let shm = SharedMemory::host();
        let server = KaasServer::new(
            devices,
            KernelRegistry::new(),
            shm.clone(),
            ServerConfig::default(),
        );
        let net: KaasNetwork = KaasNetwork::new();
        spawn(
            server
                .clone()
                .serve(net.listen("kaas:7000").expect("fresh network")),
        );
        let mut client = KaasClient::connect(&net, "kaas:7000", LinkProfile::loopback())
            .await
            .expect("server is listening")
            .with_shared_memory(shm);

        // 1. Two registrations of the same math: the second opts into
        // the Proto-Faaslet-style snapshot/restore cold start.
        let plain = client
            .register_kernel("acme", &scaled_sum(7.0))
            .await
            .expect("valid program");
        let snappy = client
            .register_kernel("acme", &scaled_sum(7.0).with_snapshot())
            .await
            .expect("valid program");
        println!("registered {plain} (full instantiate) and {snappy} (snapshot)");

        let xs = Value::F64s(vec![1.0, 2.0, 3.0, 4.0]);
        let a = client.call(&plain).arg(xs.clone()).send().await.unwrap();
        let b = client.call(&snappy).arg(xs.clone()).send().await.unwrap();
        assert_eq!(a.output.payload(), b.output.payload());
        println!(
            "both versions agree: {:?} (expected 2.5·(1+2+3+4) + 7 = 32)",
            a.output.payload()
        );
        let m = server.metrics_registry();
        let cold = |path: &str| {
            m.summary(&format!("guest.cold_start.{path}"))
                .map(|s| s.sum / s.count as f64 * 1e6)
                .unwrap_or(f64::NAN)
        };
        println!(
            "cold start: full instantiate {:.1} µs vs snapshot restore {:.1} µs",
            cold("full"),
            cold("restore")
        );

        // 2. Bare names run the latest version; `@vN` pins. In-flight
        // work and retries always stay on the version they resolved.
        let bare = client
            .call("acme/scaledsum")
            .arg(xs.clone())
            .send()
            .await
            .unwrap();
        let pinned = client.call(&plain).arg(xs).send().await.unwrap();
        assert_eq!(bare.output.payload(), pinned.output.payload());
        println!(
            "live versions for acme: {:?}",
            client.list_guest_kernels("acme").await.unwrap()
        );

        // 3. Sandboxing: an infinite loop burns its fuel budget and
        // dies with a typed error — the runner survives.
        let spinner = GuestProgram::new("spinner", DeviceClass::Gpu)
            .with_fuel(1_000)
            .with_body(vec![Op::Jump(0)]);
        let name = client.register_kernel("acme", &spinner).await.unwrap();
        let err = client
            .call(&name)
            .arg(Value::U64(1))
            .send()
            .await
            .expect_err("the loop must not return");
        println!("hostile loop: kind = {} ({err})", err.kind());

        // 4. Per-tenant metering, billed exactly once per invocation.
        println!(
            "tenant meters: {} invocations, {} fuel, {} wire bytes",
            m.counter("guest.invocations"),
            m.counter("guest.tenant.acme.fuel"),
            m.counter("guest.bytes"),
        );

        // Tombstone everything; ids are never reused.
        let removed = client.remove_kernel("acme/scaledsum").await.unwrap();
        println!("removed {removed} scaledsum versions");
    });
    println!("simulated time elapsed: {}", sim.now());
}
