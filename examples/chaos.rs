//! Chaos demo: a seeded fault storm against a small KaaS cluster.
//!
//! A deterministic [`FaultPlan`] — runner crashes, a GPU going offline,
//! link delay spikes, dropped frames — runs while clients keep invoking
//! a kernel. The resilience layer (server-side retries with exponential
//! backoff, per-device circuit breakers, health-driven slot eviction,
//! GPU→CPU degraded fallback, client-side timeouts) keeps every request
//! resolving. The recovery timeline and the final metrics show how.
//!
//! Run with: `cargo run --example chaos`

use std::collections::BTreeMap;
use std::time::Duration;

use kaas::accel::{CpuDevice, CpuProfile, Device, DeviceId, GpuDevice, GpuProfile};
use kaas::core::{
    BreakerConfig, EvictionConfig, ExponentialBackoff, FallbackConfig, FaultInjector, FaultPlan,
    KaasClient, KaasNetwork, KaasServer, KernelRegistry, RetryConfig, ServerConfig, StormConfig,
};
use kaas::kernels::{MonteCarlo, Value};
use kaas::net::{LinkProfile, SharedMemory};
use kaas::simtime::{sleep, spawn, Simulation};

const SEED: u64 = 7;
const CLIENTS: usize = 4;
const PER_CLIENT: usize = 40;

fn main() {
    let mut sim = Simulation::new();
    sim.block_on(async {
        // Two GPUs plus a CPU to degrade onto when both GPUs are out.
        let devices: Vec<Device> = vec![
            GpuDevice::new(DeviceId(0), GpuProfile::p100()).into(),
            GpuDevice::new(DeviceId(1), GpuProfile::p100()).into(),
            CpuDevice::new(DeviceId(2), CpuProfile::xeon_e5_2698v4_dual()).into(),
        ];
        let registry = KernelRegistry::new();
        registry.register(MonteCarlo::default()).unwrap();
        let config = ServerConfig::default()
            .with_retry(
                RetryConfig::default()
                    .with_max_attempts(4)
                    .with_backoff(
                        ExponentialBackoff::new(Duration::from_millis(1)).with_jitter(0.5, SEED),
                    )
                    .with_budget(Duration::from_millis(100)),
            )
            .with_breaker(
                BreakerConfig::default()
                    .with_failure_threshold(3)
                    .with_cooldown(Duration::from_millis(200)),
            )
            .with_eviction(EvictionConfig::default().with_failure_threshold(2))
            .with_fallback(FallbackConfig::gpu_to_cpu());
        let server = KaasServer::new(devices, registry, SharedMemory::host(), config);
        let net: KaasNetwork = KaasNetwork::new();
        spawn(server.clone().serve(net.listen("kaas").unwrap()));

        let mut clients = Vec::new();
        for _ in 0..CLIENTS {
            clients.push(
                KaasClient::connect(&net, "kaas", LinkProfile::loopback())
                    .await
                    .unwrap(),
            );
        }

        // A seeded storm: same seed, same failure timeline, every run.
        let storm = StormConfig {
            crashes: 5,
            device_flaps: 3,
            link_spikes: 2,
            link_drops: 3,
            slow_starts: 2,
            horizon: Duration::from_secs(4),
            devices: vec![DeviceId(0), DeviceId(1)],
            kernel: "mci".into(),
        };
        let plan = FaultPlan::storm(SEED, &storm);
        let mut injector = FaultInjector::new(&server, plan);
        for client in &clients {
            injector = injector.with_link(client.link_fault());
        }
        let log = injector.log();
        let storm_done = injector.run();

        let mut workers = Vec::new();
        for (idx, mut client) in clients.into_iter().enumerate() {
            workers.push(spawn(async move {
                let mut ok = 0usize;
                let mut errors: BTreeMap<&'static str, usize> = BTreeMap::new();
                sleep(Duration::from_millis(idx as u64 * 11)).await;
                for _ in 0..PER_CLIENT {
                    match client
                        .call("mci")
                        .arg(Value::U64(5_000))
                        .timeout(Duration::from_secs(3))
                        .send()
                        .await
                    {
                        Ok(_) => ok += 1,
                        Err(e) => *errors.entry(e.kind()).or_default() += 1,
                    }
                    sleep(Duration::from_millis(100)).await;
                }
                (ok, errors)
            }));
        }
        let mut ok = 0usize;
        let mut errors: BTreeMap<&'static str, usize> = BTreeMap::new();
        for w in workers {
            let (o, errs) = w.await;
            ok += o;
            for (k, n) in errs {
                *errors.entry(k).or_default() += n;
            }
        }
        storm_done.await;
        sleep(Duration::from_secs(1)).await;

        println!("recovery timeline (seed {SEED}):");
        println!("{:>9}  {:<14}  what happened", "t(s)", "fault");
        for f in log.entries() {
            println!("{:>9.3}  {:<14}  {}", f.at.as_secs_f64(), f.kind, f.desc);
        }

        let total = CLIENTS * PER_CLIENT;
        println!("\n{total} invocations: {ok} ok, {} failed", total - ok);
        for (kind, n) in &errors {
            println!("  {kind}: {n}");
        }

        let snapshot = server.snapshot();
        println!("\ncontrol plane after the storm:");
        println!("  in flight now:      {}", snapshot.total_in_flight());
        println!("  slots quarantined:  {}", snapshot.quarantined);
        for (device, state) in &snapshot.breakers {
            println!("  breaker {device}:   {state}");
        }
        let m = server.metrics_registry();
        for counter in [
            "faults.injected",
            "retries.attempted",
            "evictions",
            "degraded.served",
            "errors",
        ] {
            println!("  {counter}: {}", m.counter(counter));
        }
    });
}
