//! Federated heterogeneous computing (§1): one application workflow
//! spanning two KaaS sites — CPU preprocessing on an "edge" host and
//! FPGA bitmap conversion plus GPU inference in a "datacenter" — routed
//! transparently by kernel discovery.
//!
//! Run with: `cargo run --example federated_workflow`

use std::rc::Rc;

use kaas::accel::{
    CpuDevice, CpuProfile, Device, DeviceId, FpgaDevice, FpgaProfile, GpuDevice, GpuProfile,
};
use kaas::core::{
    FederatedClient, KaasNetwork, KaasServer, KernelRegistry, ServerConfig, SiteSpec, Workflow,
};
use kaas::kernels::{BitmapConversion, Kernel, Preprocess, ResNet50, Value};
use kaas::net::SharedMemory;
use kaas::simtime::{spawn, Simulation};

fn boot(
    net: &KaasNetwork,
    addr: &str,
    devices: Vec<Device>,
    kernels: Vec<Rc<dyn Kernel>>,
) -> SharedMemory {
    let registry = KernelRegistry::new();
    for k in kernels {
        registry.register_rc(k).expect("unique names");
    }
    let shm = SharedMemory::host();
    let server = KaasServer::new(devices, registry, shm.clone(), ServerConfig::default());
    spawn(server.serve(net.listen(addr).expect("bind")));
    shm
}

fn main() {
    let mut sim = Simulation::new();
    sim.block_on(async {
        let net: KaasNetwork = KaasNetwork::new();
        // Edge host: CPUs only.
        let edge_shm = boot(
            &net,
            "edge",
            vec![CpuDevice::new(DeviceId(0), CpuProfile::xeon_e5_2650v3_dual()).into()],
            vec![Rc::new(Preprocess::new())],
        );
        // Datacenter: FPGA + GPU behind one KaaS server.
        let _dc_shm = boot(
            &net,
            "datacenter",
            vec![
                FpgaDevice::new(DeviceId(1), FpgaProfile::alveo_u250()).into(),
                GpuDevice::new(DeviceId(2), GpuProfile::a100()).into(),
            ],
            vec![
                Rc::new(BitmapConversion::default()) as Rc<dyn Kernel>,
                Rc::new(ResNet50::new()),
            ],
        );

        // The client sits on the edge host: local shm to "edge", 1 Gbps
        // to the datacenter.
        let mut fed = FederatedClient::connect(
            &net,
            vec![
                SiteSpec::local("edge", edge_shm),
                SiteSpec::remote("datacenter"),
            ],
        )
        .await
        .expect("sites reachable");
        println!("federated kernels: {:?}", fed.kernels());

        let frame = {
            let (w, h) = (1920usize, 1080usize);
            let pixels: Vec<u8> = (0..w * h * 3).map(|i| ((i * 13) % 251) as u8).collect();
            Value::image(pixels, w, h, 3)
        };
        let wf = Workflow::linear("edge-to-dc", ["preprocess", "bitmap"]).expect("non-empty");
        // Registration splits the chain into one server-side segment
        // per site; a run pays one round trip per segment and ships the
        // boundary intermediate site-to-site, not through per-step
        // client hops.
        let flow = fed.register_workflow(&wf).await.expect("registration");
        let run = fed.run_flow(&flow, frame).await.expect("flow runs");
        println!(
            "  {} segments, {} round trips",
            flow.segments(),
            run.round_trips()
        );
        for step in &run.report.steps {
            let report = step.report.as_ref().expect("completed step");
            println!(
                "  {:<10} on {} ({}) — kernel {:.1} ms{}",
                step.kernel,
                report.device,
                report.runner,
                report.kernel_time().as_secs_f64() * 1e3,
                if report.cold_start { " [cold]" } else { "" },
            );
        }
        let inference = fed
            .invoke("resnet50", Value::U64(8))
            .await
            .expect("inference");
        println!(
            "  {:<10} on {} — kernel {:.1} ms{}",
            "resnet50",
            inference.report.device,
            inference.report.kernel_time().as_secs_f64() * 1e3,
            if inference.report.cold_start {
                " [cold]"
            } else {
                ""
            },
        );
        println!(
            "\nend-to-end workflow latency: {:.3} s (first run, all cold)",
            run.latency.as_secs_f64() + inference.latency.as_secs_f64()
        );
    });
}
