//! The paper's Fig. 1 motivating workflow as a KaaS application: image
//! preprocessing on the CPU, bitmap conversion on an FPGA, and ML
//! inference on a GPU — three kernels, three device classes, one server.
//!
//! The data flowing between stages is real: a synthetic 4K frame is
//! resized, thresholded, and checksummed end to end.
//!
//! Run with: `cargo run --example image_pipeline`

use std::rc::Rc;

use kaas::accel::{
    CpuDevice, CpuProfile, Device, DeviceId, FpgaDevice, FpgaProfile, GpuDevice, GpuProfile,
};
use kaas::core::{KaasClient, KaasNetwork, KaasServer, KernelRegistry, ServerConfig, Workflow};
use kaas::kernels::{BitmapConversion, Kernel, Preprocess, ResNet50, Value};
use kaas::net::{LinkProfile, SerializationProfile, SharedMemory};
use kaas::simtime::{now, spawn, Simulation};

fn main() {
    let mut sim = Simulation::new();
    sim.block_on(async {
        // A heterogeneous host: CPU + FPGA + GPU (the Fig. 2 testbed).
        let devices: Vec<Device> = vec![
            CpuDevice::new(DeviceId(0), CpuProfile::xeon_e5_2650v3_dual()).into(),
            FpgaDevice::new(DeviceId(1), FpgaProfile::alveo_u250()).into(),
            GpuDevice::new(DeviceId(2), GpuProfile::a100()).into(),
        ];
        let registry = KernelRegistry::new();
        registry.register(Preprocess::new()).expect("register");
        registry
            .register(BitmapConversion::default())
            .expect("register");
        registry.register(ResNet50::new()).expect("register");

        let shm = SharedMemory::host();
        let server = KaasServer::new(devices, registry, shm.clone(), ServerConfig::default());
        let net: KaasNetwork = KaasNetwork::new();
        spawn(server.clone().serve(net.listen("kaas:7000").expect("bind")));
        // Pre-warm the whole workflow (the KaaS fix for Fig. 2's naive
        // accelerator overheads).
        for kernel in ["preprocess", "bitmap", "resnet50"] {
            server.prewarm(kernel, 1).await.expect("prewarm");
        }

        let mut client = KaasClient::connect(&net, "kaas:7000", LinkProfile::loopback())
            .await
            .expect("server listening")
            .with_shared_memory(shm)
            .with_serialization(SerializationProfile::numpy());

        // A synthetic 4K frame.
        let (w, h) = (3840usize, 2160usize);
        let pixels: Vec<u8> = (0..w * h * 3).map(|i| ((i * 31) % 251) as u8).collect();
        let frame = Value::image(pixels, w, h, 3);
        println!(
            "input frame: {w}x{h} RGB ({} MB)",
            frame.wire_bytes() / 1_000_000
        );

        // Stages 1+2 as a registered flow: preprocess (CPU) → bitmap
        // (FPGA) in a single round trip, the resized frame handed
        // device-to-device on the server instead of through the client.
        let wf = Workflow::linear("frame-to-bitmap", ["preprocess", "bitmap"]).expect("non-empty");
        let handle = client.register_workflow(&wf).await.expect("registration");

        let t0 = now();
        let run = client
            .flow(&handle)
            .input(frame)
            .out_of_band()
            .send()
            .await
            .expect("flow runs");
        for step in &run.report.steps {
            let report = step.report.as_ref().expect("completed step");
            println!(
                "{:<11} → {:>7.1} ms on {}{}",
                step.kernel,
                report.kernel_time().as_secs_f64() * 1e3,
                report.device,
                if step.chained {
                    " (chained device-resident)"
                } else {
                    ""
                },
            );
        }
        if let Value::Image { pixels, .. } = &run.output {
            let whites = pixels.iter().filter(|&&p| p == 1).count();
            println!(
                "bitmap out  → {} of {} pixels white (flow latency {:.1} ms, {} round trip)",
                whites,
                pixels.len(),
                run.latency.as_secs_f64() * 1e3,
                run.round_trips(),
            );
        }

        // Stage 3: GPU inference on the processed batch.
        let inf = client
            .call("resnet50")
            .arg(Value::U64(8))
            .out_of_band()
            .send()
            .await
            .expect("inference");
        println!(
            "inference   → {:>7.1} ms on {} (kernel {:.2} ms)",
            inf.latency.as_secs_f64() * 1e3,
            inf.report.device,
            inf.report.kernel_exec.as_secs_f64() * 1e3,
        );

        let total = (now() - t0).as_secs_f64();
        println!("\nworkflow total: {total:.3} s (warm KaaS)");
        println!(
            "paper context: the same workflow with naive accelerator use \
             spends >95% of its time initializing runtimes (Fig. 2)"
        );
        let resnet: Rc<dyn Kernel> = Rc::new(ResNet50::new());
        let work = resnet.work(&Value::U64(8)).expect("valid");
        println!(
            "resnet50 batch profile: {:.1} GFLOPs, {:.1} MB in",
            work.flops / 1e9,
            work.bytes_in as f64 / 1e6
        );
    });
}
