//! Workflows and kernel fusion (§3.4 + §6): compose registered kernels
//! declaratively, then fuse adjacent same-device stages to keep
//! intermediates in device memory.
//!
//! Run with: `cargo run --example workflow_fusion`

use std::rc::Rc;

use kaas::accel::{Device, DeviceId, GpuDevice, GpuProfile};
use kaas::core::{
    fuse, KaasClient, KaasNetwork, KaasServer, KernelRegistry, ServerConfig, Workflow,
};
use kaas::kernels::{mean_fitness, GaGeneration, Kernel, Value};
use kaas::net::{LinkProfile, SerializationProfile, SharedMemory};
use kaas::simtime::{now, spawn, Simulation};

fn main() {
    let mut sim = Simulation::new();
    sim.block_on(async {
        let devices: Vec<Device> = vec![GpuDevice::new(DeviceId(0), GpuProfile::p100()).into()];
        let registry = KernelRegistry::new();
        // A plain GA generation, and a fused five-generation variant.
        registry
            .register(GaGeneration::seeded(1))
            .expect("register");
        let stages: Vec<Rc<dyn Kernel>> = (0..5)
            .map(|i| Rc::new(GaGeneration::seeded(10 + i)) as Rc<dyn Kernel>)
            .collect();
        registry
            .register(fuse("ga-x5", stages).expect("same device class"))
            .expect("register");

        let shm = SharedMemory::host();
        let server = KaasServer::new(devices, registry, shm.clone(), ServerConfig::default());
        let net: KaasNetwork = KaasNetwork::new();
        spawn(server.clone().serve(net.listen("kaas").expect("bind")));
        server.prewarm("ga", 1).await.expect("prewarm");
        server.prewarm("ga-x5", 1).await.expect("prewarm");

        // A *remote* client: the trigger and final population cross the
        // 1 Gbps link once, intermediates chain device-resident on the
        // server; fusion then removes per-step dispatch on top
        // (§6 "Data Movement").
        let _ = shm;
        let mut client = KaasClient::connect(&net, "kaas", LinkProfile::lan_1gbps())
            .await
            .expect("listening")
            .with_serialization(SerializationProfile::numpy());
        // Ten generations as a 10-step registered flow of single
        // generations: one round trip, intermediates device-resident...
        let unfused = Workflow::linear("evolve-10x1", vec!["ga"; 10]).expect("non-empty");
        let h1 = client
            .register_workflow(&unfused)
            .await
            .expect("registration");
        let t0 = now();
        let run1 = client
            .flow(&h1)
            .input(Value::U64(128))
            .send()
            .await
            .expect("flow runs");
        let unfused_time = (now() - t0).as_secs_f64();

        // ...and as a 2-step flow of fused five-generation kernels.
        let fused_wf = Workflow::linear("evolve-2x5", ["ga-x5", "ga-x5"]).expect("non-empty");
        let h2 = client
            .register_workflow(&fused_wf)
            .await
            .expect("registration");
        let t1 = now();
        let run2 = client
            .flow(&h2)
            .input(Value::U64(128))
            .send()
            .await
            .expect("flow runs");
        let fused_time = (now() - t1).as_secs_f64();

        let fit1 = match &run1.output {
            Value::F64s(pop) => mean_fitness(pop),
            _ => unreachable!(),
        };
        let fit2 = match &run2.output {
            Value::F64s(pop) => mean_fitness(pop),
            _ => unreachable!(),
        };
        println!("ten GA generations over a 128-individual population (remote client):");
        println!(
            "  10 x 1 (unfused): {unfused_time:.3} s, {} steps ({} chained), mean fitness {fit1:.1}",
            run1.report.steps.len(),
            run1.chained_hits(),
        );
        println!(
            "   2 x 5 (fused)  : {fused_time:.3} s, {} steps ({} chained), mean fitness {fit2:.1}",
            run2.report.steps.len(),
            run2.chained_hits(),
        );
        println!(
            "  fusion saved {:.1}% on top of server-side chaining by removing \
             per-step dispatch entirely",
            100.0 * (unfused_time - fused_time) / unfused_time
        );
        assert!(fused_time < unfused_time);
    });
}
