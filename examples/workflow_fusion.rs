//! Workflows and kernel fusion (§3.4 + §6): compose registered kernels
//! declaratively, then fuse adjacent same-device stages to keep
//! intermediates in device memory.
//!
//! Run with: `cargo run --example workflow_fusion`

use std::rc::Rc;

use kaas::accel::{Device, DeviceId, GpuDevice, GpuProfile};
use kaas::core::{
    fuse, KaasClient, KaasNetwork, KaasServer, KernelRegistry, ServerConfig, Workflow,
};
use kaas::kernels::{mean_fitness, GaGeneration, Kernel, Value};
use kaas::net::{LinkProfile, SerializationProfile, SharedMemory};
use kaas::simtime::{now, spawn, Simulation};

fn main() {
    let mut sim = Simulation::new();
    sim.block_on(async {
        let devices: Vec<Device> = vec![GpuDevice::new(DeviceId(0), GpuProfile::p100()).into()];
        let registry = KernelRegistry::new();
        // A plain GA generation, and a fused five-generation variant.
        registry
            .register(GaGeneration::seeded(1))
            .expect("register");
        let stages: Vec<Rc<dyn Kernel>> = (0..5)
            .map(|i| Rc::new(GaGeneration::seeded(10 + i)) as Rc<dyn Kernel>)
            .collect();
        registry
            .register(fuse("ga-x5", stages).expect("same device class"))
            .expect("register");

        let shm = SharedMemory::host();
        let server = KaasServer::new(devices, registry, shm.clone(), ServerConfig::default());
        let net: KaasNetwork = KaasNetwork::new();
        spawn(server.clone().serve(net.listen("kaas").expect("bind")));
        server.prewarm("ga", 1).await.expect("prewarm");
        server.prewarm("ga-x5", 1).await.expect("prewarm");

        // A *remote* client: every workflow step ships the population
        // over the 1 Gbps link, so fusing steps visibly saves round
        // trips (§6 "Data Movement").
        let _ = shm;
        let mut client = KaasClient::connect(&net, "kaas", LinkProfile::lan_1gbps())
            .await
            .expect("listening")
            .with_serialization(SerializationProfile::numpy());
        use kaas::core::TransferMode;

        // Ten generations as a 10-step workflow of single generations...
        let unfused: Workflow = (0..10)
            .fold(Workflow::new("evolve-10x1"), |wf, _| wf.step("ga"))
            .with_transfer(TransferMode::InBand);
        let t0 = now();
        let run1 = client
            .run_workflow(&unfused, Value::U64(128))
            .await
            .expect("workflow runs");
        let unfused_time = (now() - t0).as_secs_f64();

        // ...and as a 2-step workflow of fused five-generation kernels.
        let fused_wf = Workflow::new("evolve-2x5")
            .step("ga-x5")
            .step("ga-x5")
            .with_transfer(TransferMode::InBand);
        let t1 = now();
        let run2 = client
            .run_workflow(&fused_wf, Value::U64(128))
            .await
            .expect("workflow runs");
        let fused_time = (now() - t1).as_secs_f64();

        let fit1 = match &run1.output {
            Value::F64s(pop) => mean_fitness(pop),
            _ => unreachable!(),
        };
        let fit2 = match &run2.output {
            Value::F64s(pop) => mean_fitness(pop),
            _ => unreachable!(),
        };
        println!("ten GA generations over a 128-individual population (remote client):");
        println!(
            "  10 x 1 (unfused): {unfused_time:.3} s, {} steps, mean fitness {fit1:.1}",
            run1.reports.len()
        );
        println!(
            "   2 x 5 (fused)  : {fused_time:.3} s, {} steps, mean fitness {fit2:.1}",
            run2.reports.len()
        );
        println!(
            "  fusion saved {:.1}% by keeping intermediate populations on \
             the device instead of shipping them through the client",
            100.0 * (unfused_time - fused_time) / unfused_time
        );
        assert!(fused_time < unfused_time);
    });
}
