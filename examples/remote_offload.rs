//! Remote invocation demo (§5.3): a CPU-only client offloads an
//! iterative genetic algorithm to a GPU-backed KaaS server over a 1 Gbps
//! link, and still beats running it locally.
//!
//! Run with: `cargo run --example remote_offload`

use kaas_bench::fig11::{run_scenario, Scenario};

fn main() {
    println!("GA, 10 generations, population N (task completion in seconds):");
    println!(
        "{:>6}  {:>12} {:>12} {:>12} {:>12}",
        "N", "local-ib", "local-oob", "remote", "cpu"
    );
    for n in [64u64, 256, 1024, 4096] {
        let local_ib = run_scenario(Scenario::LocalInBand, n);
        let local_oob = run_scenario(Scenario::LocalOutOfBand, n);
        let remote = run_scenario(Scenario::Remote, n);
        let cpu = run_scenario(Scenario::Cpu, n);
        println!("{n:>6}  {local_ib:>12.2} {local_oob:>12.2} {remote:>12.2} {cpu:>12.2}");
    }
    println!(
        "\nDespite shipping the population over the network every \
         generation, remote GPU execution beats local CPU execution at \
         scale — the paper's 'transparent remote invocation' result."
    );
}
