//! Quickstart: boot a KaaS deployment, register a kernel, and watch the
//! cold-start → warm-start transition the paper is built around.
//!
//! Run with: `cargo run --example quickstart`

use std::rc::Rc;

use kaas::accel::{Device, DeviceId, GpuDevice, GpuProfile};
use kaas::core::{KaasClient, KaasNetwork, KaasServer, KernelRegistry, ServerConfig};
use kaas::kernels::{MatMul, Value};
use kaas::net::{LinkProfile, SerializationProfile, SharedMemory};
use kaas::simtime::{spawn, Simulation};

fn main() {
    let mut sim = Simulation::new();
    sim.block_on(async {
        // 1. A shared pool of accelerators: two P100 GPUs.
        let devices: Vec<Device> = (0..2)
            .map(|i| GpuDevice::new(DeviceId(i), GpuProfile::p100()).into())
            .collect();

        // 2. Developers register kernels (Fig. 3 step ①).
        let registry = KernelRegistry::new();
        registry.register(MatMul::new()).expect("fresh registry");

        // 3. The KaaS server wraps and deploys them (steps ② and ④).
        let shm = SharedMemory::host();
        let server = KaasServer::new(devices, registry, shm.clone(), ServerConfig::default());
        let net: KaasNetwork = KaasNetwork::new();
        let listener = net.listen("kaas:7000").expect("fresh network");
        spawn(server.clone().serve(listener));

        // 4. Applications invoke kernels over the network (step ③).
        let mut client = KaasClient::connect(&net, "kaas:7000", LinkProfile::loopback())
            .await
            .expect("server is listening")
            .with_shared_memory(shm)
            .with_serialization(SerializationProfile::numpy());

        println!("invoking matmul(500x500) five times:");
        for i in 0..5 {
            let input = Value::sized(2 * 8 * 500 * 500, Value::U64(500));
            let inv = client
                .invoke_oob("matmul", input)
                .await
                .expect("invocation succeeds");
            println!(
                "  #{i}: {:>8.1} ms total | kernel {:>6.2} ms | {} | runner {} on {}",
                inv.latency.as_secs_f64() * 1e3,
                inv.report.kernel_time().as_secs_f64() * 1e3,
                if inv.report.cold_start {
                    "COLD"
                } else {
                    "warm"
                },
                inv.report.runner,
                inv.report.device,
            );
        }

        let metrics = server.metrics();
        println!(
            "\nserver handled {} invocations ({} cold start)",
            metrics.len(),
            metrics.cold_starts()
        );
        let kernel: Rc<dyn kaas::kernels::Kernel> = Rc::new(MatMul::new());
        println!(
            "kernel '{}' targets {} devices",
            kernel.name(),
            kernel.device_class()
        );
    });
    println!("\nsimulated time elapsed: {}", sim.now());
}
