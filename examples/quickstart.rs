//! Quickstart: boot a KaaS deployment, register a kernel, and watch the
//! cold-start → warm-start transition the paper is built around — with
//! end-to-end tracing of the final invocation.
//!
//! Run with: `cargo run --example quickstart`
//!
//! With the `trace` feature the full span dump also lands in
//! `results/trace_quickstart.json`, loadable in `chrome://tracing` or
//! <https://ui.perfetto.dev>:
//! `cargo run --features trace --example quickstart`

use std::rc::Rc;

use kaas::accel::{Device, DeviceId, GpuDevice, GpuProfile};
use kaas::core::{KaasClient, KaasNetwork, KaasServer, KernelRegistry, ServerConfig, SpanSink};
use kaas::kernels::{MatMul, Value};
use kaas::net::{LinkProfile, SerializationProfile, SharedMemory};
use kaas::simtime::{spawn, Simulation};

fn main() {
    let mut sim = Simulation::new();
    let tracer = SpanSink::new();
    let sink = tracer.clone();
    sim.block_on(async move {
        // 1. A shared pool of accelerators: two P100 GPUs.
        let devices: Vec<Device> = (0..2)
            .map(|i| GpuDevice::new(DeviceId(i), GpuProfile::p100()).into())
            .collect();

        // 2. Developers register kernels (Fig. 3 step ①).
        let registry = KernelRegistry::new();
        registry.register(MatMul::new()).expect("fresh registry");

        // 3. The KaaS server wraps and deploys them (steps ② and ④).
        // One shared span sink traces requests across client, server,
        // and runner.
        let shm = SharedMemory::host();
        let config = ServerConfig::default().with_tracer(sink.clone());
        let server = KaasServer::new(devices, registry, shm.clone(), config);
        let net: KaasNetwork = KaasNetwork::new();
        let listener = net.listen("kaas:7000").expect("fresh network");
        spawn(server.clone().serve(listener));

        // 4. Applications invoke kernels over the network (step ③).
        let mut client = KaasClient::connect(&net, "kaas:7000", LinkProfile::loopback())
            .await
            .expect("server is listening")
            .with_shared_memory(shm)
            .with_serialization(SerializationProfile::numpy())
            .with_tracer(sink);

        println!("invoking matmul(500x500) five times:");
        let mut last_latency = std::time::Duration::ZERO;
        for i in 0..5 {
            let input = Value::sized(2 * 8 * 500 * 500, Value::U64(500));
            let inv = client
                .call("matmul")
                .arg(input)
                .out_of_band()
                .send()
                .await
                .expect("invocation succeeds");
            last_latency = inv.latency;
            println!(
                "  #{i}: {:>8.1} ms total | kernel {:>6.2} ms | {} | runner {} on {}",
                inv.latency.as_secs_f64() * 1e3,
                inv.report.kernel_time().as_secs_f64() * 1e3,
                if inv.report.cold_start {
                    "COLD"
                } else {
                    "warm"
                },
                inv.report.runner,
                inv.report.device,
            );
        }

        let metrics = server.metrics();
        println!(
            "\nserver handled {} invocations ({} cold start)",
            metrics.len(),
            metrics.cold_starts()
        );
        println!("registry:\n{}", server.metrics_registry().render());
        let kernel: Rc<dyn kaas::kernels::Kernel> = Rc::new(MatMul::new());
        println!(
            "kernel '{}' targets {} devices",
            kernel.name(),
            kernel.device_class()
        );
        last_latency
    });

    // Where did the last (warm) invocation spend its time? Walk the span
    // tree of the final root recorded by the shared sink.
    let root = tracer
        .roots()
        .into_iter()
        .rfind(|s| s.name == "invoke")
        .expect("traced invocations");
    println!(
        "\nlast invocation breakdown ({:.3} ms end to end):",
        root.duration().as_secs_f64() * 1e3
    );
    let mut stack: Vec<(usize, kaas::core::Span)> = vec![(0, root)];
    while let Some((depth, span)) = stack.pop() {
        println!(
            "  {:indent$}{:<12} {:>9.3} ms  [{}]",
            "",
            span.name,
            span.duration().as_secs_f64() * 1e3,
            span.track,
            indent = depth * 2
        );
        let mut children = tracer.children_of(span.id);
        children.sort_by_key(|s| std::cmp::Reverse((s.start, s.id.0)));
        stack.extend(children.into_iter().map(|c| (depth + 1, c)));
    }

    #[cfg(feature = "trace")]
    {
        std::fs::create_dir_all("results").expect("create results dir");
        std::fs::write("results/trace_quickstart.json", tracer.to_chrome_json())
            .expect("write trace");
        println!(
            "\nwrote results/trace_quickstart.json ({} spans)",
            tracer.len()
        );
    }
    println!("\nsimulated time elapsed: {}", sim.now());
}
