//! Quantum chemistry through KaaS (§5.6.4): a full VQE single-point
//! electronic-structure calculation for molecular H₂, with the estimator
//! primitive served as a warm KaaS kernel on a quantum backend.
//!
//! The quantum side is real — the state-vector simulator converges to
//! the known ground-state energy — while backend timing comes from the
//! calibrated QPU profiles.
//!
//! Run with: `cargo run --example vqe_chemistry`

use kaas::accel::{Device, DeviceId, QpuDevice, QpuProfile};
use kaas::core::{KaasClient, KaasNetwork, KaasServer, KernelRegistry, ServerConfig};
use kaas::kernels::{Value, VqeEstimator};
use kaas::net::{LinkProfile, SharedMemory};
use kaas::quantum::{nelder_mead, Hamiltonian, TwoLocalAnsatz};
use kaas::simtime::{now, spawn, Simulation};

fn main() {
    let mut sim = Simulation::new();
    let (energy, calls, elapsed) = sim.block_on(async {
        let backend = QpuProfile::statevector_simulator();
        let devices: Vec<Device> = vec![QpuDevice::new(DeviceId(0), backend).into()];
        let registry = KernelRegistry::new();
        // Exact estimator (0 shots) so the optimizer sees clean values.
        registry.register(VqeEstimator::h2(0)).expect("register");
        let shm = SharedMemory::host();
        let server = KaasServer::new(devices, registry, shm.clone(), ServerConfig::default());
        let net: KaasNetwork = KaasNetwork::new();
        spawn(server.clone().serve(net.listen("kaas:7000").expect("bind")));
        server.prewarm("vqe-estimator", 1).await.expect("prewarm");

        let mut client = KaasClient::connect(&net, "kaas:7000", LinkProfile::loopback())
            .await
            .expect("server listening")
            .with_shared_memory(shm);

        // The classical optimizer queries energies; every evaluation is
        // one KaaS invocation of the "quantum kernel". We gather the
        // query points level by level (Nelder–Mead is sequential, so we
        // replay it over an energy cache fed by KaaS calls).
        let _ansatz = TwoLocalAnsatz::new(2, 1);
        let t0 = now();
        let mut calls = 0usize;
        let cache: std::cell::RefCell<Vec<(Vec<f64>, f64)>> = std::cell::RefCell::new(Vec::new());
        // Synchronously driven async invocations: evaluate eagerly.
        let mut pending: Vec<Vec<f64>> = Vec::new();
        let x0 = vec![0.1, 0.15, 0.2, 0.25];
        // Seed the cache with the initial simplex so nelder_mead's
        // closure can stay synchronous.
        pending.push(x0.clone());
        for i in 0..x0.len() {
            let mut x = x0.clone();
            x[i] += 0.4;
            pending.push(x);
        }
        // Iterate: run the optimizer against the cache; whenever it asks
        // for an unknown point, fetch it via KaaS and restart. This keeps
        // every energy evaluation on the quantum backend.
        let energy = loop {
            for params in pending.drain(..) {
                let inv = client
                    .call("vqe-estimator")
                    .arg(Value::F64s(params.clone()))
                    .out_of_band()
                    .send()
                    .await
                    .expect("estimator call");
                let e = match inv.output {
                    Value::F64(e) => e,
                    other => panic!("unexpected output {other:?}"),
                };
                calls += 1;
                cache.borrow_mut().push((params, e));
            }
            let missing: std::cell::RefCell<Option<Vec<f64>>> = std::cell::RefCell::new(None);
            let result = nelder_mead(
                |x| {
                    let cache = cache.borrow();
                    if let Some((_, e)) = cache
                        .iter()
                        .find(|(p, _)| p.iter().zip(x).all(|(a, b)| (a - b).abs() < 1e-12))
                    {
                        *e
                    } else {
                        if missing.borrow().is_none() {
                            *missing.borrow_mut() = Some(x.to_vec());
                        }
                        // Optimistic placeholder; the loop restarts once
                        // the real value arrives.
                        f64::MAX
                    }
                },
                &x0,
                0.4,
                200,
            );
            match missing.into_inner() {
                Some(params) => pending.push(params),
                None => break result.value,
            }
        };
        (energy, calls, (now() - t0).as_secs_f64())
    });

    let exact = Hamiltonian::h2_ground_energy();
    println!("H2/STO-3G single-point VQE through KaaS");
    println!("  estimator calls : {calls}");
    println!("  simulated time  : {elapsed:.2} s on the StateVector backend");
    println!("  VQE energy      : {energy:.6} Ha");
    println!("  exact ground    : {exact:.6} Ha");
    println!("  error           : {:.2e} Ha", (energy - exact).abs());
    assert!((energy - exact).abs() < 1e-3, "VQE should converge");
}
