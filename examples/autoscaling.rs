//! Autoscaling demo (§5.5): clients arrive every ten seconds; the KaaS
//! server spills work to new task runners on fresh GPUs as existing
//! runners hit their in-flight cap. Prints the Fig. 13 timeline.
//!
//! Run with: `cargo run --example autoscaling`

fn main() {
    println!("t(s)  clients  runners  gpu_util(%)  completion(s)");
    for s in kaas_bench::fig13::run_timeline(180, 10) {
        if s.t as u64 % 10 == 0 {
            println!(
                "{:>4}  {:>7}  {:>7}  {:>11.0}  {:>12.2}",
                s.t, s.clients, s.runners, s.gpu_utilization_pct, s.task_completion
            );
        }
    }
    println!(
        "\nEach runner admits four in-flight tasks; client-side turnaround \
         lets fewer runners serve more clients (the paper reaches 32 \
         clients on 7 of 8 GPUs)."
    );
}
