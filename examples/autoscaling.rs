//! Autoscaling demo (§5.5): clients arrive every ten seconds; the KaaS
//! server spills work to new task runners on fresh GPUs as existing
//! runners hit their in-flight cap. Prints the Fig. 13 timeline, then
//! contrasts two pluggable schedulers on a mixed warm/cold fleet.
//!
//! Run with: `cargo run --example autoscaling`

use kaas::accel::{Device, DeviceId, GpuDevice, GpuProfile};
use kaas::core::{
    KaasClient, KaasNetwork, KaasServer, KernelRegistry, LeastLoaded, Scheduler, ServerConfig,
    TargetUtilization, WarmFirst,
};
use kaas::kernels::{MonteCarlo, Value};
use kaas::net::{LinkProfile, SharedMemory};
use kaas::simtime::{spawn, Simulation};

fn main() {
    println!("t(s)  clients  runners  gpu_util(%)  completion(s)");
    for s in kaas_bench::fig13::run_timeline(180, 10) {
        if (s.t as u64).is_multiple_of(10) {
            println!(
                "{:>4}  {:>7}  {:>7}  {:>11.0}  {:>12.2}",
                s.t, s.clients, s.runners, s.gpu_utilization_pct, s.task_completion
            );
        }
    }
    println!(
        "\nEach runner admits four in-flight tasks; client-side turnaround \
         lets fewer runners serve more clients (the paper reaches 32 \
         clients on 7 of 8 GPUs).\n"
    );

    // The scheduler is a pluggable policy. With a proactive autoscaler
    // (TargetUtilization) a second runner spawns while the first still
    // has spare capacity: LeastLoaded routes new work to the empty —
    // but still cold-starting — slot and eats the cold start, while
    // WarmFirst keeps placing on the warm runner.
    println!("scheduler     cold_starts  mean_latency(ms)");
    let schedulers: [Box<dyn Scheduler>; 2] = [Box::new(LeastLoaded), Box::new(WarmFirst)];
    for scheduler in schedulers {
        let name = scheduler.name();
        let (cold, mean_ms) = scheduler_burst(scheduler);
        println!("{name:<12}  {cold:>11}  {mean_ms:>16.2}");
    }
    println!("\nWarmFirst trades load balance for warm hits — fewer cold starts.");
}

/// One prewarmed runner and a proactive autoscaler (scale out at 25%
/// utilization), then two clients issuing four invocations each.
/// Returns (cold-started invocations, mean latency).
fn scheduler_burst(scheduler: Box<dyn Scheduler>) -> (usize, f64) {
    let mut sim = Simulation::new();
    sim.block_on(async move {
        let registry = KernelRegistry::new();
        registry.register(MonteCarlo::default()).unwrap();
        let gpus: Vec<Device> = (0..2)
            .map(|i| GpuDevice::new(DeviceId(i), GpuProfile::p100()).into())
            .collect();
        let shm = SharedMemory::host();
        let config = ServerConfig::default()
            .with_scheduler(scheduler)
            .with_autoscaler(TargetUtilization { target: 0.25 });
        let server = KaasServer::new(gpus, registry, shm.clone(), config);
        let net: KaasNetwork = KaasNetwork::new();
        spawn(server.clone().serve(net.listen("kaas").unwrap()));
        server.prewarm("mci", 1).await.unwrap();

        let mut handles = Vec::new();
        for _ in 0..2 {
            let net = net.clone();
            let shm = shm.clone();
            handles.push(spawn(async move {
                let mut client = KaasClient::connect(&net, "kaas", LinkProfile::loopback())
                    .await
                    .unwrap()
                    .with_shared_memory(shm);
                let mut cold = 0;
                let mut total = std::time::Duration::ZERO;
                for _ in 0..4 {
                    let inv = client
                        .call("mci")
                        .arg(Value::U64(1_000_000))
                        .send()
                        .await
                        .unwrap();
                    cold += usize::from(inv.report.cold_start);
                    total += inv.latency;
                }
                (cold, total)
            }));
        }
        let mut cold = 0;
        let mut total = std::time::Duration::ZERO;
        for h in handles {
            let (c, t) = h.await;
            cold += c;
            total += t;
        }
        (cold, total.as_secs_f64() * 1e3 / 8.0)
    })
}
