//! Data plane: store an operand once, invoke against it many times.
//!
//! An iterative workload re-sends the same bytes on every invocation —
//! out-of-band transfer (§4.1) skips serialization but still pays the
//! host→device copy each time. The data plane stores the operand in a
//! content-addressed object store (`put`), declares it immutable
//! (`seal`), and passes a 24-byte ref (`arg_ref`): after the first
//! upload the operand stays resident in device memory and warm
//! invocations skip `copy_in` entirely.
//!
//! Run with: `cargo run --example dataplane`

use kaas::accel::{Device, DeviceId, GpuDevice, GpuProfile};
use kaas::core::{KaasClient, KaasNetwork, KaasServer, KernelRegistry, ServerConfig, SpanSink};
use kaas::kernels::{MatMul, Value};
use kaas::net::{LinkProfile, SerializationProfile, SharedMemory};
use kaas::simtime::{spawn, Simulation};

fn main() {
    let mut sim = Simulation::new();
    let tracer = SpanSink::new();
    let sink = tracer.clone();
    sim.block_on(async move {
        let devices: Vec<Device> = vec![GpuDevice::new(DeviceId(0), GpuProfile::p100()).into()];
        let registry = KernelRegistry::new();
        registry.register(MatMul::new()).expect("fresh registry");
        let shm = SharedMemory::host();
        let config = ServerConfig::default().with_tracer(sink.clone());
        let server = KaasServer::new(devices, registry, shm.clone(), config);
        let net: KaasNetwork = KaasNetwork::new();
        let listener = net.listen("kaas:7000").expect("fresh network");
        spawn(server.clone().serve(listener));

        let mut client = KaasClient::connect(&net, "kaas:7000", LinkProfile::loopback())
            .await
            .expect("server is listening")
            .with_shared_memory(shm)
            .with_serialization(SerializationProfile::numpy())
            .with_tracer(sink);

        // Two 2048x2048 operand matrices (64 MiB) behind a matmul(2048)
        // work request — big enough that the host→device copy shows.
        let operand = Value::sized(2 * 8 * 2048 * 2048, Value::U64(2048));

        // The baseline: out-of-band transfer re-copies every time.
        let base = client
            .call("matmul")
            .arg(operand.clone())
            .out_of_band()
            .send()
            .await
            .expect("baseline runs");
        println!(
            "out-of-band baseline: {:>8.3} ms total | copy_in {:>6.3} ms (paid on every call)",
            base.latency.as_secs_f64() * 1e3,
            base.report.copy_in.as_secs_f64() * 1e3,
        );

        // The data plane: put once, seal, invoke by content address.
        let r = client.put(operand).await.expect("put");
        client.seal(r).await.expect("seal");
        println!("\nstored and sealed {r}; invoking against it five times:");
        for i in 0..5 {
            let inv = client
                .call("matmul")
                .arg_ref(r)
                .out_of_band()
                .send()
                .await
                .expect("ref invocation runs");
            println!(
                "  #{i}: {:>8.3} ms total | copy_in {:>6.3} ms | {}",
                inv.latency.as_secs_f64() * 1e3,
                inv.report.copy_in.as_secs_f64() * 1e3,
                if inv.report.copy_in.is_zero() {
                    "cache HIT (device-resident)"
                } else {
                    "cache miss (uploading)"
                },
            );
        }

        let m = server.metrics_registry();
        println!(
            "\ndataplane counters: {} hit(s), {} miss(es), {} put(s), {} eviction(s)",
            m.counter("dataplane.hits"),
            m.counter("dataplane.misses"),
            m.counter("dataplane.puts"),
            m.counter("dataplane.evictions"),
        );
        if let Some(resident) = m.gauge("dataplane.bytes_resident") {
            println!("device-resident bytes: {resident}");
        }
    });

    // The trace shows the copy shrinking: one real `upload`, then
    // zero-width `copy_in` spans on every hit.
    let uploads: Vec<_> = tracer
        .spans()
        .into_iter()
        .filter(|s| s.name == "upload")
        .collect();
    let copies: Vec<_> = tracer
        .spans()
        .into_iter()
        .filter(|s| s.name == "copy_in")
        .collect();
    println!(
        "\ntrace: {} upload span(s); copy_in spans (ms): {}",
        uploads.len(),
        copies
            .iter()
            .map(|s| format!("{:.3}", s.duration().as_secs_f64() * 1e3))
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!("simulated time elapsed: {}", sim.now());
}
