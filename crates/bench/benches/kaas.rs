//! Criterion benchmarks: wall-clock performance of the simulator
//! substrate and the real kernel computations, plus end-to-end figure
//! cores at reduced sizes. These guard the harness's own performance —
//! the *virtual-time* results live in the `fig*` binaries.

use criterion::{criterion_group, criterion_main, Criterion};
use std::rc::Rc;
use std::time::Duration;

use kaas_bench::common::{deploy, experiment_server_config, p100_cluster};
use kaas_kernels::{matmul, soft_dtw, Kernel, MatMul, MonteCarlo, Value};
use kaas_quantum::{transpile, Circuit, Hamiltonian};
use kaas_simtime::{sleep, spawn, Simulation};

/// Executor throughput: ten thousand spawn+sleep round trips.
fn bench_simtime_executor(c: &mut Criterion) {
    c.bench_function("simtime/10k_tasks", |b| {
        b.iter(|| {
            let mut sim = Simulation::new();
            sim.block_on(async {
                let mut handles = Vec::with_capacity(10_000);
                for i in 0..10_000u64 {
                    handles.push(spawn(async move {
                        sleep(Duration::from_nanos(i % 977)).await;
                    }));
                }
                for h in handles {
                    h.await;
                }
            });
        });
    });
}

/// Real blocked matrix multiplication, 128³.
fn bench_matmul_compute(c: &mut Criterion) {
    let n = 128;
    let a: Vec<f64> = (0..n * n).map(|i| (i % 13) as f64).collect();
    let b_mat: Vec<f64> = (0..n * n).map(|i| (i % 7) as f64).collect();
    c.bench_function("kernels/matmul_128", |b| {
        b.iter(|| std::hint::black_box(matmul(&a, &b_mat, n, n, n)));
    });
}

/// Real soft-DTW on 256-point sequences.
fn bench_soft_dtw(c: &mut Criterion) {
    let x: Vec<f64> = (0..256).map(|i| (i as f64 * 0.1).sin()).collect();
    let y: Vec<f64> = (0..256).map(|i| (i as f64 * 0.11).cos()).collect();
    c.bench_function("kernels/soft_dtw_256", |b| {
        b.iter(|| std::hint::black_box(soft_dtw(&x, &y, 1.0)));
    });
}

/// Real state-vector simulation: 200 random CX gates on 12 qubits.
fn bench_statevector(c: &mut Criterion) {
    c.bench_function("quantum/statevector_12q_200cx", |b| {
        b.iter(|| {
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(3);
            let qc = Circuit::random_cx(12, 200, &mut rng);
            std::hint::black_box(qc.statevector().norm())
        });
    });
}

/// Transpilation of a mid-size circuit.
fn bench_transpile(c: &mut Criterion) {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let qc = Circuit::random_cx(8, 400, &mut rng);
    c.bench_function("quantum/transpile_400gates", |b| {
        b.iter(|| std::hint::black_box(transpile(&qc).1));
    });
}

/// Exact H₂ expectation over a bound ansatz.
fn bench_expectation(c: &mut Criterion) {
    let h = Hamiltonian::h2_sto3g();
    let mut qc = Circuit::new(2);
    qc.ry(0.3, 0).ry(-0.8, 1).cx(0, 1).ry(0.5, 0).ry(0.2, 1);
    let psi = qc.statevector();
    c.bench_function("quantum/h2_expectation", |b| {
        b.iter(|| std::hint::black_box(h.expectation(&psi)));
    });
}

/// End-to-end warm KaaS invocation (whole simulated pipeline).
fn bench_warm_invocation(c: &mut Criterion) {
    c.bench_function("e2e/warm_invoke_mci", |b| {
        b.iter(|| {
            let mut sim = Simulation::new();
            sim.block_on(async {
                let dep = deploy(
                    p100_cluster(),
                    vec![Rc::new(MonteCarlo::default()) as Rc<dyn Kernel>],
                    experiment_server_config(),
                );
                dep.server.prewarm("mci", 1).await.expect("prewarm");
                let mut client = dep.local_client().await;
                for _ in 0..10 {
                    client
                        .invoke_oob("mci", Value::U64(10_000))
                        .await
                        .expect("invocation succeeds");
                }
            });
        });
    });
}

/// Kernel work-profile computation (hot path of every dispatch).
fn bench_work_profile(c: &mut Criterion) {
    let mm = MatMul::new();
    c.bench_function("kernels/work_profile", |b| {
        b.iter(|| std::hint::black_box(mm.work(&Value::U64(10_000)).unwrap()));
    });
}

criterion_group!(
    benches,
    bench_simtime_executor,
    bench_matmul_compute,
    bench_soft_dtw,
    bench_statevector,
    bench_transpile,
    bench_expectation,
    bench_warm_invocation,
    bench_work_profile
);
criterion_main!(benches);
