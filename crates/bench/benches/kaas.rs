//! Wall-clock micro-benchmarks of the simulator substrate and the real
//! kernel computations, plus end-to-end figure cores at reduced sizes.
//! These guard the harness's own performance — the *virtual-time*
//! results live in the `fig*` binaries.
//!
//! Uses a small in-tree timing harness (no external benchmark
//! framework) so the workspace builds with no registry access. Run
//! with: `cargo bench -p kaas-bench --features bench-harness`.

use std::rc::Rc;
use std::time::{Duration, Instant}; // audit:allow(ambient): wall-clock micro-bench harness, not simulation code

use kaas_bench::common::{deploy, experiment_server_config, p100_cluster};
use kaas_kernels::{matmul, soft_dtw, Kernel, MatMul, MonteCarlo, Value};
use kaas_quantum::{transpile, Circuit, Hamiltonian};
use kaas_simtime::rng::det_rng;
use kaas_simtime::{sleep, spawn, Simulation};

/// Times `f` over enough iterations to fill ~0.5 s of wall clock and
/// prints mean per-iteration latency.
fn bench(name: &str, mut f: impl FnMut()) {
    // Warm-up and calibration.
    let t0 = Instant::now(); // audit:allow(ambient): measures real elapsed time by design
    f();
    let once = t0.elapsed().max(Duration::from_nanos(1));
    let iters = (Duration::from_millis(500).as_nanos() / once.as_nanos()).clamp(1, 100_000) as u32;

    let t0 = Instant::now(); // audit:allow(ambient): measures real elapsed time by design
    for _ in 0..iters {
        f();
    }
    let per_iter = t0.elapsed() / iters;
    println!("{name:<32} {per_iter:>12.2?}/iter  ({iters} iters)");
}

/// Executor throughput: ten thousand spawn+sleep round trips.
fn bench_simtime_executor() {
    bench("simtime/10k_tasks", || {
        let mut sim = Simulation::new();
        sim.block_on(async {
            let mut handles = Vec::with_capacity(10_000);
            for i in 0..10_000u64 {
                handles.push(spawn(async move {
                    sleep(Duration::from_nanos(i % 977)).await;
                }));
            }
            for h in handles {
                h.await;
            }
        });
    });
}

/// Real blocked matrix multiplication, 128³.
fn bench_matmul_compute() {
    let n = 128;
    let a: Vec<f64> = (0..n * n).map(|i| (i % 13) as f64).collect();
    let b_mat: Vec<f64> = (0..n * n).map(|i| (i % 7) as f64).collect();
    bench("kernels/matmul_128", || {
        std::hint::black_box(matmul(&a, &b_mat, n, n, n));
    });
}

/// Real soft-DTW on 256-point sequences.
fn bench_soft_dtw() {
    let x: Vec<f64> = (0..256).map(|i| (i as f64 * 0.1).sin()).collect();
    let y: Vec<f64> = (0..256).map(|i| (i as f64 * 0.11).cos()).collect();
    bench("kernels/soft_dtw_256", || {
        std::hint::black_box(soft_dtw(&x, &y, 1.0));
    });
}

/// Real state-vector simulation: 200 random CX gates on 12 qubits.
fn bench_statevector() {
    bench("quantum/statevector_12q_200cx", || {
        let mut rng = det_rng(3);
        let qc = Circuit::random_cx(12, 200, &mut rng);
        std::hint::black_box(qc.statevector().norm());
    });
}

/// Transpilation of a mid-size circuit.
fn bench_transpile() {
    let mut rng = det_rng(9);
    let qc = Circuit::random_cx(8, 400, &mut rng);
    bench("quantum/transpile_400gates", || {
        std::hint::black_box(transpile(&qc).1);
    });
}

/// Exact H₂ expectation over a bound ansatz.
fn bench_expectation() {
    let h = Hamiltonian::h2_sto3g();
    let mut qc = Circuit::new(2);
    qc.ry(0.3, 0).ry(-0.8, 1).cx(0, 1).ry(0.5, 0).ry(0.2, 1);
    let psi = qc.statevector();
    bench("quantum/h2_expectation", || {
        std::hint::black_box(h.expectation(&psi));
    });
}

/// End-to-end warm KaaS invocation (whole simulated pipeline).
fn bench_warm_invocation() {
    bench("e2e/warm_invoke_mci", || {
        let mut sim = Simulation::new();
        sim.block_on(async {
            let dep = deploy(
                p100_cluster(),
                vec![Rc::new(MonteCarlo::default()) as Rc<dyn Kernel>],
                experiment_server_config(),
            );
            dep.server.prewarm("mci", 1).await.expect("prewarm");
            let mut client = dep.local_client().await;
            for _ in 0..10 {
                client
                    .call("mci")
                    .arg(Value::U64(10_000))
                    .out_of_band()
                    .send()
                    .await
                    .expect("invocation succeeds");
            }
        });
    });
}

/// Kernel work-profile computation (hot path of every dispatch).
fn bench_work_profile() {
    let mm = MatMul::new();
    bench("kernels/work_profile", || {
        std::hint::black_box(mm.work(&Value::U64(10_000)).unwrap());
    });
}

fn main() {
    bench_simtime_executor();
    bench_matmul_compute();
    bench_soft_dtw();
    bench_statevector();
    bench_transpile();
    bench_expectation();
    bench_warm_invocation();
    bench_work_profile();
}
