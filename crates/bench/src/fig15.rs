//! Figure 15: FPGA kernels (histogram and bitmap conversion) on the
//! Alveo U250, baseline vs. KaaS (§5.6.2).

use std::rc::Rc;

use kaas_core::baseline::run_time_sharing;
use kaas_kernels::{
    BitmapConversion, Histogram, Kernel, Value, BITMAP_HEIGHT, BITMAP_WIDTH, HISTOGRAM_LEN,
};
use kaas_simtime::{now, sleep, Simulation};

use crate::common::{
    deploy, experiment_server_config, fpga_testbed, host_cpu_profile, reduction_pct, Figure, Series,
};

fn kernel_for(name: &'static str) -> Rc<dyn Kernel> {
    match name {
        "histogram" => Rc::new(Histogram::new()),
        _ => Rc::new(BitmapConversion::default()),
    }
}

fn input_for(name: &str) -> Value {
    match name {
        "histogram" => Value::sized(HISTOGRAM_LEN * 4, Value::U64(HISTOGRAM_LEN)),
        _ => {
            let pixels = (BITMAP_WIDTH * BITMAP_HEIGHT) as u64;
            Value::sized(pixels * 3, Value::U64(pixels))
        }
    }
}

/// Baseline task time: standalone PYNQ program per execution.
pub fn baseline_time(name: &'static str) -> f64 {
    let mut sim = Simulation::new();
    sim.block_on(async move {
        let fpga = fpga_testbed().remove(0);
        let r = run_time_sharing(
            &fpga,
            kernel_for(name).as_ref(),
            &input_for(name),
            &host_cpu_profile(),
        )
        .await
        .expect("valid input");
        r.total.as_secs_f64()
    })
}

/// KaaS task time: warm runner keeps PYNQ/PyLog initialized.
pub fn kaas_time(name: &'static str) -> f64 {
    let mut sim = Simulation::new();
    sim.block_on(async move {
        let dep = deploy(
            fpga_testbed(),
            vec![kernel_for(name)],
            experiment_server_config(),
        );
        dep.server.prewarm(name, 1).await.expect("prewarm");
        let mut client = dep.local_client().await;
        client
            .call(name)
            .arg(input_for(name))
            .out_of_band()
            .send()
            .await
            .expect("warm-up");
        let t0 = now();
        sleep(host_cpu_profile().python_launch).await;
        client
            .call(name)
            .arg(input_for(name))
            .out_of_band()
            .send()
            .await
            .expect("invocation succeeds");
        (now() - t0).as_secs_f64()
    })
}

/// Reproduces Figure 15.
pub fn run(_quick: bool) -> Vec<Figure> {
    let mut fig = Figure::new(
        "fig15",
        "FPGA kernel task completion, baseline vs KaaS",
        "kernel (0 = Histogram, 1 = Bitmap Conversion)",
        "task completion time (s)",
    );
    let mut base = Series::new("Baseline");
    let mut kaas = Series::new("KaaS");
    for (i, name) in ["histogram", "bitmap"].iter().enumerate() {
        base.push(i as f64, baseline_time(name));
        kaas.push(i as f64, kaas_time(name));
    }
    fig.note(format!(
        "histogram reduction {:.1}% (paper: 68.5%); bitmap reduction {:.1}% (paper: 74.9%)",
        reduction_pct(base.y_at(0.0).unwrap(), kaas.y_at(0.0).unwrap()),
        reduction_pct(base.y_at(1.0).unwrap(), kaas.y_at(1.0).unwrap()),
    ));
    fig.note(
        "PyLog-generated kernels remain far from hand-tuned RTL \
         (80–100 ms reference on this card)"
            .to_owned(),
    );
    fig.series = vec![base, kaas];
    vec![fig]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_reduction_matches_paper() {
        let b = baseline_time("histogram");
        let k = kaas_time("histogram");
        let red = reduction_pct(b, k);
        assert!(
            (55.0..80.0).contains(&red),
            "histogram reduction {red}% (paper: 68.5%)"
        );
        // Baseline absolute scale ≈ 1.3–1.5 s on the paper's card.
        assert!((1.1..1.7).contains(&b), "baseline {b}s");
    }

    #[test]
    fn bitmap_reduction_matches_paper() {
        let b = baseline_time("bitmap");
        let k = kaas_time("bitmap");
        let red = reduction_pct(b, k);
        assert!(
            (60.0..85.0).contains(&red),
            "bitmap reduction {red}% (paper: 74.9%)"
        );
    }

    #[test]
    fn kaas_kernel_is_still_pylog_slow() {
        // KaaS removes initialization, not PyLog's inefficiency: the warm
        // task still takes hundreds of ms (hand-tuned RTL: 80–100 ms).
        let k = kaas_time("histogram");
        assert!(k > 0.15, "warm histogram {k}s should stay PyLog-slow");
    }
}
