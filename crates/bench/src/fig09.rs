//! Figure 9: per-task kernel-time slowdown of eight concurrent
//! executions relative to an isolated KaaS execution.

use crate::common::{Figure, Series};
use crate::sharing::{isolated_kaas_kernel_time, run_model, sweep_sizes, Model, CONCURRENCY};

/// Reproduces Figure 9.
pub fn run(quick: bool) -> Vec<Figure> {
    let mut fig = Figure::new(
        "fig09",
        "Kernel-time slowdown vs isolated KaaS execution (8 concurrent tasks)",
        "task granularity (matrix elements)",
        "slowdown (×)",
    );
    let sizes = sweep_sizes(quick);
    let isolated: Vec<f64> = sizes
        .iter()
        .map(|&n| isolated_kaas_kernel_time(n))
        .collect();
    for model in Model::all() {
        let mut series = Series::new(model.label());
        for (i, &n) in sizes.iter().enumerate() {
            let stats = run_model(model, n, CONCURRENCY);
            series.push((n * n) as f64, stats.mean_kernel_time() / isolated[i]);
        }
        fig.series.push(series);
    }
    fig.note(
        "paper: baselines incur large small-task slowdowns (fresh-context copies); \
         KaaS ≈ 1 at small sizes; KaaS and MPS converge at large sizes where \
         exclusive use has the best per-task kernel time"
            .to_owned(),
    );
    vec![fig]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kaas_has_no_small_task_slowdown() {
        let figs = run(true);
        let kaas = figs[0].series("KaaS").unwrap();
        assert!(
            (0.95..1.4).contains(&kaas.first_y()),
            "small KaaS slowdown {}",
            kaas.first_y()
        );
    }

    #[test]
    fn baselines_slow_down_small_tasks() {
        let figs = run(true);
        let fig = &figs[0];
        for label in ["Time Sharing", "Space Sharing"] {
            let s = fig.series(label).unwrap();
            assert!(
                s.first_y() > 1.5,
                "{label} small-task slowdown {} should exceed 1.5 (fresh-context copies)",
                s.first_y()
            );
        }
    }

    #[test]
    fn exclusive_kernel_time_is_best_at_large_sizes() {
        let figs = run(true);
        let fig = &figs[0];
        let time = fig.series("Time Sharing").unwrap().last_y();
        let kaas = fig.series("KaaS").unwrap().last_y();
        let mps = fig.series("Space Sharing").unwrap().last_y();
        // No contention in exclusive mode: kernel time ≈ isolated.
        assert!(time < kaas, "time={time}, kaas={kaas}");
        // KaaS ≈ MPS at large sizes.
        assert!((kaas / mps - 1.0).abs() < 0.35, "kaas={kaas}, mps={mps}");
    }
}
