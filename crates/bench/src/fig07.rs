//! Figure 7: warm-start overhead vs. computation across task sizes.
//! "While the overhead reduction is significant in small tasks, e.g.,
//! from 689 ms to 123 ms with 500×500 matrices, the overhead for both
//! tested models are equal for the largest tested task (matrix
//! dimensions 20 000 × 20 000)."

use std::rc::Rc;

use kaas_core::baseline::run_time_sharing;
use kaas_kernels::{MatMul, Value};
use kaas_simtime::{now, sleep, Simulation};

use crate::common::{
    deploy, experiment_server_config, host_cpu_profile, p100_cluster, Figure, Series,
};
use crate::fig06::mm_input;

/// One measurement: total task time and kernel (copy+compute) time.
#[derive(Debug, Clone, Copy)]
struct Sample {
    total: f64,
    kernel: f64,
}

fn measure(n: u64) -> (Sample, Sample) {
    let mut sim = Simulation::new();
    sim.block_on(async move {
        let host = host_cpu_profile();
        let cluster = p100_cluster();
        let gpu0 = cluster[0].clone();
        let mm = MatMul::new();
        let r = run_time_sharing(&gpu0, &mm, &Value::U64(n), &host)
            .await
            .expect("valid input");
        let excl = Sample {
            total: r.total.as_secs_f64(),
            // Fig. 7's "Computation" window opens at the first CUDA API
            // call, so it includes lazy context initialization.
            kernel: r.computation().as_secs_f64(),
        };

        let dep = deploy(
            p100_cluster(),
            vec![Rc::new(MatMul::new())],
            experiment_server_config(),
        );
        dep.server.prewarm("matmul", 1).await.expect("prewarm");
        let mut client = dep.local_client().await;
        // One warm-up (the paper discards cold starts in this figure).
        client
            .call("matmul")
            .arg(mm_input(n))
            .out_of_band()
            .send()
            .await
            .expect("warm-up");
        let t0 = now();
        sleep(host.python_launch).await;
        let inv = client
            .call("matmul")
            .arg(mm_input(n))
            .out_of_band()
            .send()
            .await
            .expect("warm");
        let kaas = Sample {
            total: (now() - t0).as_secs_f64(),
            kernel: inv.report.kernel_time().as_secs_f64(),
        };
        (excl, kaas)
    })
}

/// Reproduces Figure 7.
pub fn run(quick: bool) -> Vec<Figure> {
    let sizes: &[u64] = if quick {
        &[500, 2_000, 10_000, 20_000]
    } else {
        &[
            500, 1_000, 2_000, 4_000, 7_000, 10_000, 14_000, 17_000, 20_000,
        ]
    };
    let mut fig = Figure::new(
        "fig07",
        "Warm-start overhead vs computation by task granularity",
        "task granularity (matrix elements)",
        "time (s)",
    );
    let mut excl_overhead = Series::new("Exclusive overhead");
    let mut excl_compute = Series::new("Exclusive computation");
    let mut kaas_overhead = Series::new("KaaS overhead");
    let mut kaas_compute = Series::new("KaaS computation");
    for &n in sizes {
        let (excl, kaas) = measure(n);
        let elements = (n * n) as f64;
        excl_overhead.push(elements, excl.total - excl.kernel);
        excl_compute.push(elements, excl.kernel);
        kaas_overhead.push(elements, kaas.total - kaas.kernel);
        kaas_compute.push(elements, kaas.kernel);
    }
    let small_excl = excl_overhead.first_y();
    let small_kaas = kaas_overhead.first_y();
    let large_excl = excl_overhead.last_y();
    let large_kaas = kaas_overhead.last_y();
    fig.note(format!(
        "overhead at 500²: exclusive {:.0} ms vs KaaS {:.0} ms (paper: 689 ms vs 123 ms)",
        small_excl * 1e3,
        small_kaas * 1e3
    ));
    fig.note(format!(
        "overhead at 20 000²: exclusive {:.0} ms vs KaaS {:.0} ms (paper: roughly equal)",
        large_excl * 1e3,
        large_kaas * 1e3
    ));
    fig.series = vec![excl_overhead, excl_compute, kaas_overhead, kaas_compute];
    vec![fig]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_task_overhead_gap_is_large() {
        let figs = run(true);
        let fig = &figs[0];
        let excl = fig.series("Exclusive overhead").unwrap().first_y();
        let kaas = fig.series("KaaS overhead").unwrap().first_y();
        // Paper: 689 ms vs 123 ms — a >4× gap at 500².
        assert!(excl / kaas > 4.0, "excl={excl}, kaas={kaas}");
        // And the absolute values land near the paper's.
        assert!((0.5..1.0).contains(&excl), "excl={excl}");
        assert!((0.08..0.2).contains(&kaas), "kaas={kaas}");
    }

    #[test]
    fn overheads_converge_at_20000() {
        let figs = run(true);
        let fig = &figs[0];
        let excl = fig.series("Exclusive overhead").unwrap().last_y();
        let kaas = fig.series("KaaS overhead").unwrap().last_y();
        let ratio = kaas / excl;
        assert!(
            (0.7..1.4).contains(&ratio),
            "overheads should converge at 20 000²: excl={excl}, kaas={kaas}"
        );
    }

    #[test]
    fn kaas_overhead_grows_with_data_movement() {
        let figs = run(true);
        let fig = &figs[0];
        let s = fig.series("KaaS overhead").unwrap();
        assert!(
            s.last_y() > s.first_y() * 2.0,
            "KaaS overhead must grow with payload size: {:?}",
            s.points
        );
    }

    #[test]
    fn computation_grows_cubically() {
        let figs = run(true);
        let fig = &figs[0];
        let s = fig.series("KaaS computation").unwrap();
        assert!(s.last_y() > s.first_y() * 100.0);
    }
}
