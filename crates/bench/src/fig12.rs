//! Figure 12: strong and weak scaling of ResNet-50 inference across one
//! to eight V100 GPUs (§5.4), cold vs. warm.

use std::rc::Rc;

use kaas_core::{DispatchMode, RoundRobin, RunnerConfig};
use kaas_kernels::{ResNet50, Value};
use kaas_simtime::{now, spawn, Simulation};

use crate::common::{deploy, experiment_server_config, v100_cluster, Figure, Series};

/// Batches per the paper: 8 000 batches of eight images.
pub const BATCHES: u64 = 8_000;
/// Images per batch.
pub const BATCH_SIZE: u64 = 8;

/// Scaling mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scaling {
    /// Fixed total work (8 000 batches) over `n` GPUs.
    Strong,
    /// Work grows with devices (8 000 batches per GPU).
    Weak,
}

/// Completion time of the inference workload on `gpus` devices, under
/// the default (sharded) dispatcher.
///
/// `warm` pre-starts the runners outside the measured window; cold runs
/// include the (parallel) runner cold starts.
pub fn run_scaling(scaling: Scaling, gpus: u32, warm: bool, batches: u64) -> f64 {
    run_scaling_with(scaling, gpus, warm, batches, DispatchMode::default())
}

/// [`run_scaling`] with an explicit dispatch engine —
/// [`DispatchMode::Serialized`] reproduces the historical baseline
/// exactly (the `--dispatch=serialized` CLI flag routes here).
pub fn run_scaling_with(
    scaling: Scaling,
    gpus: u32,
    warm: bool,
    batches: u64,
    mode: DispatchMode,
) -> f64 {
    let mut sim = Simulation::new();
    sim.block_on(async move {
        let config = experiment_server_config()
            .with_scheduler(RoundRobin::default())
            .with_autoscale(false)
            .with_dispatch(mode)
            .with_runner(RunnerConfig {
                max_inflight: 4,
                ..RunnerConfig::default()
            });
        let dep = deploy(v100_cluster(gpus), vec![Rc::new(ResNet50::new())], config);
        let total_batches = match scaling {
            Scaling::Strong => batches,
            Scaling::Weak => batches * gpus as u64,
        };
        let t0 = now();
        // Cold runs start the runners inside the measured window (all in
        // parallel — "GPUs can be initialized in parallel, this affects
        // task completion times in all experiments equally").
        if warm {
            let warmup = dep.server.prewarm("resnet50", gpus as usize);
            warmup.await.expect("prewarm");
        }
        let measured_from = if warm { now() } else { t0 };
        if !warm {
            dep.server
                .prewarm("resnet50", gpus as usize)
                .await
                .expect("prewarm");
        }
        // One driver per GPU: batches execute back-to-back per device,
        // as in the paper's 8.75 ms/batch pipeline.
        let workers = (gpus as u64).min(total_batches);
        let per_worker = total_batches / workers;
        let remainder = total_batches % workers;
        let mut handles = Vec::new();
        for w in 0..workers {
            let mut client = dep.local_client().await;
            let quota = per_worker + u64::from(w < remainder);
            handles.push(spawn(async move {
                for _ in 0..quota {
                    client
                        .call("resnet50")
                        .arg(Value::U64(BATCH_SIZE))
                        .out_of_band()
                        .send()
                        .await
                        .expect("inference succeeds");
                }
            }));
        }
        for h in handles {
            h.await;
        }
        (now() - measured_from).as_secs_f64()
    })
}

/// Reproduces Figures 12a (strong) and 12b (weak).
pub fn run(quick: bool) -> Vec<Figure> {
    run_with(quick, DispatchMode::default())
}

/// [`run`] under an explicit dispatch engine, so the serialized
/// baseline stays reproducible from the CLI
/// (`--bin fig12 -- --dispatch=serialized`).
pub fn run_with(quick: bool, mode: DispatchMode) -> Vec<Figure> {
    let batches = if quick { 400 } else { BATCHES };
    let gpu_counts: &[u32] = if quick {
        &[1, 2, 4, 8]
    } else {
        &[1, 2, 3, 4, 5, 6, 7, 8]
    };
    let mut figs = Vec::new();
    for (scaling, id, title) in [
        (
            Scaling::Strong,
            "fig12a",
            "Strong scaling (fixed total batches)",
        ),
        (Scaling::Weak, "fig12b", "Weak scaling (8k batches per GPU)"),
    ] {
        let mut fig = Figure::new(id, title, "number of GPUs", "task completion time (s)");
        let mut cold = Series::new("Cold");
        let mut warmed = Series::new("Warm");
        for &g in gpu_counts {
            cold.push(
                g as f64,
                run_scaling_with(scaling, g, false, batches, mode.clone()),
            );
            warmed.push(
                g as f64,
                run_scaling_with(scaling, g, true, batches, mode.clone()),
            );
        }
        let speedup = warmed.first_y() / warmed.last_y();
        let delta = cold.first_y() - warmed.first_y();
        fig.note(match scaling {
            Scaling::Strong => format!(
                "warm speedup 1→8 GPUs: {speedup:.2}× (paper: 70.02 s → 8.49 s ≈ 8.2×); \
                 cold adds {delta:.2} s flat (paper: 1.22 s)"
            ),
            Scaling::Weak => format!(
                "weak scaling 1→8 GPUs changes completion by {:.1}% \
                 (paper: 74.52 s → 76.95 s ≈ +3.3%)",
                100.0 * (warmed.last_y() / warmed.first_y() - 1.0)
            ),
        });
        fig.series = vec![cold, warmed];
        figs.push(fig);
    }
    figs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strong_scaling_is_near_linear() {
        let one = run_scaling(Scaling::Strong, 1, true, 400);
        let eight = run_scaling(Scaling::Strong, 8, true, 400);
        let speedup = one / eight;
        assert!(
            (6.5..8.5).contains(&speedup),
            "strong-scaling speedup {speedup} (paper: ≈8.2×)"
        );
    }

    #[test]
    fn weak_scaling_is_near_flat() {
        let one = run_scaling(Scaling::Weak, 1, true, 400);
        let eight = run_scaling(Scaling::Weak, 8, true, 400);
        let growth = eight / one;
        assert!(
            (0.98..1.15).contains(&growth),
            "weak-scaling growth {growth} (paper: ≈1.03×)"
        );
    }

    #[test]
    fn cold_start_penalty_is_flat_across_gpu_counts() {
        let d1 = run_scaling(Scaling::Strong, 1, false, 200)
            - run_scaling(Scaling::Strong, 1, true, 200);
        let d8 = run_scaling(Scaling::Strong, 8, false, 200)
            - run_scaling(Scaling::Strong, 8, true, 200);
        // Parallel initialization: the penalty does not scale with GPUs.
        assert!((d1 - d8).abs() < 0.5, "d1={d1}, d8={d8}");
        // And it sits near the V100's 1.22 s context creation plus spawn.
        assert!(
            (1.0..2.2).contains(&d1),
            "cold penalty {d1}s (paper: 1.22 s)"
        );
    }

    #[test]
    fn one_gpu_full_run_matches_paper_scale() {
        // 400 batches at ≈8.75 ms/batch ≈ 3.5 s on one GPU — the same
        // per-batch rate behind the paper's 70.02 s for 8 000 batches.
        let t = run_scaling(Scaling::Strong, 1, true, 400);
        let per_batch = t / 400.0;
        assert!(
            (0.006..0.012).contains(&per_batch),
            "per-batch time {per_batch}s (paper: ≈8.75 ms)"
        );
    }
}
