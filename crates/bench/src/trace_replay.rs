//! Serverless trace replay: drives a KaaS deployment with a synthetic
//! diurnal invocation trace ("Serverless in the Wild"-style load, which
//! the paper's §6 scheduling discussion points toward) and reports
//! latency percentiles, cold-start rate, runner footprint, and energy.
//!
//! The trace is a non-homogeneous Poisson process: per-kernel base rates
//! modulated by a day/night curve, drawn from seeded RNG streams so every
//! replay is reproducible.

use std::rc::Rc;
use std::time::Duration;

use kaas_core::percentile;
use kaas_kernels::{Kernel, MatMul, MonteCarlo, SoftDtw, Value};
use kaas_net::SharedMemory;
use kaas_simtime::rng::stream_rng;
use kaas_simtime::{now, sleep, spawn, Simulation};

use crate::common::{deploy, experiment_server_config, p100_cluster, Figure, Series};
use crate::fig06::mm_input;

/// One invocation of the synthetic trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Arrival offset from trace start (seconds).
    pub at: f64,
    /// Kernel to invoke.
    pub kernel: &'static str,
    /// Granularity parameter.
    pub n: u64,
}

/// Workload mix of the synthetic trace (kernel, base rate in
/// invocations/second at peak, granularity).
const MIX: [(&str, f64, u64); 3] = [
    ("mci", 0.8, 65_536),
    ("matmul", 0.4, 2_000),
    ("dtw", 0.2, 512),
];

/// Diurnal modulation in `[0.05, 1]`: a compressed day with `period`
/// seconds per "24 h".
fn diurnal(t: f64, period: f64) -> f64 {
    let phase = (t / period) * std::f64::consts::TAU;
    0.525 + 0.475 * phase.sin()
}

/// Generates a deterministic diurnal Poisson trace of `duration_s`.
pub fn synthesize_trace(duration_s: f64, period_s: f64, seed: u64) -> Vec<TraceEvent> {
    let mut events = Vec::new();
    for (stream, &(kernel, base_rate, n)) in MIX.iter().enumerate() {
        let mut rng = stream_rng(seed, stream as u64);
        let mut t = 0.0;
        loop {
            // Thinning method for a non-homogeneous Poisson process.
            let u: f64 = rng.gen::<f64>().max(1e-12);
            t += -u.ln() / base_rate;
            if t >= duration_s {
                break;
            }
            let accept: f64 = rng.gen();
            if accept <= diurnal(t, period_s) {
                events.push(TraceEvent { at: t, kernel, n });
            }
        }
    }
    events.sort_by(|a, b| a.at.partial_cmp(&b.at).expect("finite times"));
    events
}

/// Replay statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayStats {
    /// Invocations issued.
    pub invocations: usize,
    /// Client-observed latency percentiles (seconds): p50, p95, p99.
    pub p50: f64,
    /// 95th percentile latency.
    pub p95: f64,
    /// 99th percentile latency.
    pub p99: f64,
    /// Fraction of invocations that cold-started.
    pub cold_start_rate: f64,
    /// Runners reaped by the idle timeout.
    pub reaped: usize,
    /// GPU energy over the replay window (J).
    pub energy_joules: f64,
}

/// Replays `events` through a four-GPU KaaS deployment.
pub fn replay(events: &[TraceEvent], idle_timeout: Option<Duration>) -> ReplayStats {
    let events = events.to_vec();
    let mut sim = Simulation::new();
    sim.block_on(async move {
        let config = experiment_server_config().with_idle_timeout(idle_timeout);
        let kernels: Vec<Rc<dyn Kernel>> = vec![
            Rc::new(MonteCarlo::default()),
            Rc::new(MatMul::new()),
            Rc::new(SoftDtw::default()),
        ];
        let dep = deploy(p100_cluster(), kernels, config);
        let shm: SharedMemory = dep.shm.clone();
        let _ = &shm;
        let start = now();
        let mut handles = Vec::with_capacity(events.len());
        for ev in events {
            let mut client = dep.local_client().await;
            handles.push(spawn(async move {
                let offset = Duration::from_secs_f64(ev.at);
                sleep(offset.saturating_sub(Duration::ZERO)).await;
                let input = match ev.kernel {
                    "matmul" => mm_input(ev.n),
                    "dtw" => Value::sized(200 * 10 * 8 * ev.n, Value::U64(ev.n)),
                    _ => Value::U64(ev.n),
                };
                let inv = client
                    .call(ev.kernel)
                    .arg(input)
                    .out_of_band()
                    .send()
                    .await
                    .expect("trace invocation succeeds");
                (inv.latency.as_secs_f64(), inv.report.cold_start)
            }));
        }
        let mut latencies = Vec::with_capacity(handles.len());
        let mut cold = 0usize;
        for h in handles {
            let (lat, was_cold) = h.await;
            latencies.push(lat);
            cold += usize::from(was_cold);
        }
        let window = now() - start;
        let energy: f64 = dep
            .server
            .devices()
            .iter()
            .map(|d| d.as_gpu().energy_joules(window))
            .sum();
        ReplayStats {
            invocations: latencies.len(),
            p50: percentile(&latencies, 0.50),
            p95: percentile(&latencies, 0.95),
            p99: percentile(&latencies, 0.99),
            cold_start_rate: cold as f64 / latencies.len().max(1) as f64,
            reaped: dep.server.snapshot().reaped,
            energy_joules: energy,
        }
    })
}

/// Runs the trace-replay study: keep-warm vs aggressive reaping.
pub fn run(quick: bool) -> Vec<Figure> {
    let duration = if quick { 600.0 } else { 3_600.0 };
    let trace = synthesize_trace(duration, duration / 2.0, 0x7AC3);
    let mut fig = Figure::new(
        "trace",
        "Diurnal trace replay: keep-warm vs idle reaping",
        "variant (0 = keep-warm, 1 = reap-60s)",
        "latency percentile (s)",
    );
    let mut p50 = Series::new("p50");
    let mut p95 = Series::new("p95");
    let mut p99 = Series::new("p99");
    for (i, (label, timeout)) in [
        ("keep-warm", None),
        ("reap-60s", Some(Duration::from_secs(60))),
    ]
    .into_iter()
    .enumerate()
    {
        let stats = replay(&trace, timeout);
        p50.push(i as f64, stats.p50);
        p95.push(i as f64, stats.p95);
        p99.push(i as f64, stats.p99);
        fig.note(format!(
            "{label}: {} invocations | p50 {:.3}s p95 {:.3}s p99 {:.3}s | \
             cold-start rate {:.1}% | {} reaped | {:.0} J",
            stats.invocations,
            stats.p50,
            stats.p95,
            stats.p99,
            stats.cold_start_rate * 100.0,
            stats.reaped,
            stats.energy_joules
        ));
    }
    fig.series = vec![p50, p95, p99];
    vec![fig]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_deterministic_and_ordered() {
        let a = synthesize_trace(300.0, 150.0, 9);
        let b = synthesize_trace(300.0, 150.0, 9);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].at <= w[1].at));
        assert!(!a.is_empty());
        // All three kernels appear.
        for (kernel, _, _) in MIX {
            assert!(a.iter().any(|e| e.kernel == kernel), "{kernel} missing");
        }
    }

    #[test]
    fn diurnal_modulation_shapes_the_trace() {
        let trace = synthesize_trace(1_000.0, 1_000.0, 4);
        // First half of the sine period is "day": it must hold clearly
        // more arrivals than the "night" half.
        let day = trace.iter().filter(|e| e.at < 500.0).count();
        let night = trace.len() - day;
        assert!(day > night * 2, "day={day}, night={night}");
    }

    #[test]
    fn replay_reports_consistent_statistics() {
        let trace = synthesize_trace(240.0, 120.0, 11);
        let stats = replay(&trace, None);
        assert_eq!(stats.invocations, trace.len());
        assert!(stats.p50 <= stats.p95 && stats.p95 <= stats.p99);
        assert!(stats.cold_start_rate > 0.0 && stats.cold_start_rate <= 1.0);
        assert_eq!(stats.reaped, 0);
        assert!(stats.energy_joules > 0.0);
    }

    #[test]
    fn reaping_raises_cold_start_rate_on_diurnal_load() {
        let trace = synthesize_trace(600.0, 300.0, 21);
        let warm = replay(&trace, None);
        let reaped = replay(&trace, Some(Duration::from_secs(30)));
        assert!(reaped.reaped > 0, "night valley must trigger reaps");
        assert!(
            reaped.cold_start_rate > warm.cold_start_rate,
            "reaping {:.3} !> keep-warm {:.3}",
            reaped.cold_start_rate,
            warm.cold_start_rate
        );
    }
}
