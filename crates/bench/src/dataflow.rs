//! Server-side dataflow benchmark: registered workflow pipelines vs
//! client-driven step-by-step invocation.
//!
//! The Fig. 11 remote scenario pays the 1 Gbps link twice per GA
//! generation — the population ships client→server and back on every
//! step. A registered flow collapses the whole pipeline into one round
//! trip: the trigger input crosses the link once, intermediates chain
//! device-resident on the server (zero `copy_in` on every downstream
//! step), and only the final population returns.
//!
//! Two experiments:
//!
//! 1. **GA, 10 generations over 1 Gbps** — total task time per driving
//!    mode, over population size (the fig11-style sweep).
//! 2. **Pipeline depth** — total time as the chain grows; client-driven
//!    network cost scales with depth, the flow's stays flat.

use std::rc::Rc;
use std::time::Duration;

use kaas_core::Workflow;
use kaas_kernels::{GaGeneration, Kernel, Value, GENERATIONS};
use kaas_simtime::{now, Simulation};

use crate::common::{deploy, experiment_server_config, p100_cluster, Figure, Series};

/// Who walks the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Driver {
    /// The remote client invokes every step itself, shipping each
    /// intermediate both ways over the link.
    ClientDriven,
    /// The pipeline is registered once as a server-side flow and
    /// triggered with a single request.
    RegisteredFlow,
}

impl Driver {
    /// Legend label.
    pub fn label(self) -> &'static str {
        match self {
            Driver::ClientDriven => "Client-driven (per-step RPC)",
            Driver::RegisteredFlow => "Registered flow (1 round trip)",
        }
    }

    /// Both modes in legend order.
    pub fn all() -> [Driver; 2] {
        [Driver::ClientDriven, Driver::RegisteredFlow]
    }
}

/// One measured pipeline run.
#[derive(Debug, Clone, Copy)]
pub struct FlowRunStats {
    /// End-to-end task time in seconds.
    pub total: f64,
    /// Request round trips the client paid (registration excluded).
    pub round_trips: usize,
    /// Summed host→device copy time across all steps.
    pub copy_in: Duration,
    /// Steps that consumed a device-resident intermediate.
    pub chained: usize,
}

/// Runs `steps` GA generations on a population of size `n` over the
/// paper's 1 Gbps remote link, driven per `mode`.
pub fn run_pipeline(mode: Driver, n: u64, steps: usize) -> FlowRunStats {
    let mut sim = Simulation::new();
    sim.block_on(async move {
        let dep = deploy(
            p100_cluster(),
            vec![Rc::new(GaGeneration::default()) as Rc<dyn Kernel>],
            experiment_server_config(),
        );
        dep.server.prewarm("ga", 1).await.expect("prewarm");
        let mut client = dep.remote_client().await;
        match mode {
            Driver::ClientDriven => {
                let t0 = now();
                let mut pop = Value::U64(n);
                let mut copy_in = Duration::ZERO;
                for _ in 0..steps {
                    let inv = client.call("ga").arg(pop).send().await.expect("ga runs");
                    copy_in += inv.report.copy_in;
                    pop = inv.output;
                }
                FlowRunStats {
                    total: (now() - t0).as_secs_f64(),
                    round_trips: steps,
                    copy_in,
                    chained: 0,
                }
            }
            Driver::RegisteredFlow => {
                let wf = Workflow::linear("evolve", vec!["ga"; steps]).expect("non-empty");
                let handle = client.register_workflow(&wf).await.expect("registration");
                let t0 = now();
                let run = client
                    .flow(&handle)
                    .input(Value::U64(n))
                    .send()
                    .await
                    .expect("flow runs");
                let copy_in = run
                    .report
                    .steps
                    .iter()
                    .filter_map(|s| s.report.as_ref())
                    .map(|r| r.copy_in)
                    .sum();
                FlowRunStats {
                    total: (now() - t0).as_secs_f64(),
                    round_trips: run.round_trips(),
                    copy_in,
                    chained: run.chained_hits(),
                }
            }
        }
    })
}

/// Runs the two dataflow experiments.
pub fn run(quick: bool) -> Vec<Figure> {
    let mut figures = Vec::new();

    // 1. The fig11-style sweep: 10 generations over population size.
    let sizes: &[u64] = if quick {
        &[512, 4096]
    } else {
        &[128, 512, 2048, 4096, 8192]
    };
    let steps = GENERATIONS as usize;
    let mut ga = Figure::new(
        "dataflow-ga",
        "GA, 10 generations over 1 Gbps: per-step RPC vs registered flow",
        "population size N",
        "task completion time (s)",
    );
    let mut flow_stats = None;
    for mode in Driver::all() {
        let mut series = Series::new(mode.label());
        for &n in sizes {
            let stats = run_pipeline(mode, n, steps);
            series.push(n as f64, stats.total);
            if mode == Driver::RegisteredFlow {
                flow_stats = Some(stats);
            }
        }
        ga.series.push(series);
    }
    let rpc = ga.series(Driver::ClientDriven.label()).unwrap().last_y();
    let flow = ga.series(Driver::RegisteredFlow.label()).unwrap().last_y();
    let fs = flow_stats.expect("flow mode measured");
    ga.note(format!(
        "the registered flow removes {:.1}% of the remote task time at N={} \
         ({} round trips -> {}, {} of {} steps chained device-resident)",
        crate::common::reduction_pct(rpc, flow),
        sizes.last().unwrap(),
        steps,
        fs.round_trips,
        fs.chained,
        steps,
    ));
    ga.note(format!(
        "total copy_in across the {steps}-step flow: {:.3} ms (first upload only)",
        fs.copy_in.as_secs_f64() * 1e3
    ));
    figures.push(ga);

    // 2. Depth sweep: network cost vs pipeline length.
    let depths: &[usize] = if quick { &[2, 8] } else { &[1, 2, 4, 8, 16] };
    let n = 4096;
    let mut depth = Figure::new(
        "dataflow-depth",
        "Pipeline depth at N=4096: link crossings scale with steps only when the client drives",
        "pipeline steps",
        "task completion time (s)",
    );
    for mode in Driver::all() {
        let mut series = Series::new(mode.label());
        for &d in depths {
            series.push(d as f64, run_pipeline(mode, n, d).total);
        }
        depth.series.push(series);
    }
    let rpc_growth = depth.series(Driver::ClientDriven.label()).unwrap();
    let flow_growth = depth.series(Driver::RegisteredFlow.label()).unwrap();
    depth.note(format!(
        "growing the chain from {} to {} steps costs the client-driven mode \
         {:.3} s and the flow {:.3} s",
        depths.first().unwrap(),
        depths.last().unwrap(),
        rpc_growth.last_y() - rpc_growth.first_y(),
        flow_growth.last_y() - flow_growth.first_y(),
    ));
    figures.push(depth);

    figures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registered_flow_beats_client_driven_remote() {
        let rpc = run_pipeline(Driver::ClientDriven, 4096, GENERATIONS as usize);
        let flow = run_pipeline(Driver::RegisteredFlow, 4096, GENERATIONS as usize);
        assert!(
            flow.total < rpc.total,
            "flow {}s must beat per-step RPC {}s",
            flow.total,
            rpc.total
        );
        assert_eq!(flow.round_trips, 1);
        assert_eq!(flow.chained, GENERATIONS as usize - 1);
    }

    #[test]
    fn chained_steps_upload_once() {
        let flow = run_pipeline(Driver::RegisteredFlow, 2048, 8);
        let rpc = run_pipeline(Driver::ClientDriven, 2048, 8);
        // The flow pays one host→device copy (the trigger input); the
        // client-driven chain re-uploads the population every step.
        assert!(
            flow.copy_in < rpc.copy_in / 4,
            "flow copy_in {:?} vs client-driven {:?}",
            flow.copy_in,
            rpc.copy_in
        );
    }

    #[test]
    fn quick_run_is_deterministic() {
        let csv = |figs: Vec<Figure>| {
            figs.iter()
                .map(|f| f.to_csv())
                .collect::<Vec<_>>()
                .join("\n")
        };
        let a = csv(run(true));
        let b = csv(run(true));
        assert_eq!(a, b, "bench must replay byte-identically");
    }
}
