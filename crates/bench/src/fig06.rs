//! Figure 6: cold & warm starts over 20 iterations, small (500²) and
//! large (10 000²) matrix multiplications, KaaS vs. exclusive GPU use.

use std::rc::Rc;

use kaas_core::baseline::run_time_sharing;
use kaas_kernels::{MatMul, Value};
use kaas_simtime::{now, sleep, Simulation};

use crate::common::{
    deploy, experiment_server_config, host_cpu_profile, p100_cluster, reduction_pct, Figure, Series,
};

/// Matrix-multiplication descriptor payload: two n×n input matrices.
pub fn mm_input(n: u64) -> Value {
    Value::sized(2 * 8 * n * n, Value::U64(n))
}

fn run_one(n: u64, iterations: usize) -> Figure {
    let suffix = if n <= 1000 { "a" } else { "b" };
    let mut sim = Simulation::new();
    let (excl, kaas) = sim.block_on(async move {
        let host = host_cpu_profile();
        // Exclusive model on its own (fresh) cluster, always GPU 0.
        let excl_cluster = p100_cluster();
        let gpu0 = excl_cluster[0].clone();
        let mm = MatMul::new();
        let mut excl = Vec::with_capacity(iterations);
        for _ in 0..iterations {
            let r = run_time_sharing(&gpu0, &mm, &Value::U64(n), &host)
                .await
                .expect("valid input");
            excl.push(r.total.as_secs_f64());
        }
        // KaaS on a fresh deployment; the first invocation is cold.
        let dep = deploy(
            p100_cluster(),
            vec![Rc::new(MatMul::new())],
            experiment_server_config(),
        );
        let mut client = dep.local_client().await;
        let mut kaas = Vec::with_capacity(iterations);
        for _ in 0..iterations {
            let t0 = now();
            // Each task launches a thin client program (§5: total task
            // completion time includes launching the client).
            sleep(host.python_launch).await;
            client
                .call("matmul")
                .arg(mm_input(n))
                .out_of_band()
                .send()
                .await
                .expect("invocation succeeds");
            kaas.push((now() - t0).as_secs_f64());
        }
        (excl, kaas)
    });

    let mut fig = Figure::new(
        if n <= 1000 { "fig06a" } else { "fig06b" },
        format!("Task completion over {iterations} iterations, {n}×{n} matrices"),
        "iteration",
        "task completion time (s)",
    );
    let mut s_excl = Series::new("Exclusive");
    let mut s_kaas = Series::new("KaaS");
    for (i, v) in excl.iter().enumerate() {
        s_excl.push((i + 1) as f64, *v);
    }
    for (i, v) in kaas.iter().enumerate() {
        s_kaas.push((i + 1) as f64, *v);
    }
    let excl_mean = excl.iter().sum::<f64>() / excl.len() as f64;
    let cold = kaas[0];
    let warm = kaas[1..].iter().sum::<f64>() / (kaas.len() - 1) as f64;
    fig.note(format!(
        "fig06{suffix}: exclusive mean {excl_mean:.3}s | KaaS cold {cold:.3}s \
         ({:.1}% shorter; paper: {}%) | KaaS warm {warm:.3}s ({:.1}% faster; paper: {}%) \
         | cold-start share of cold total {:.1}% (paper: {}%)",
        reduction_pct(excl_mean, cold),
        if n <= 1000 { "54.6" } else { "36.9" },
        reduction_pct(excl_mean, warm),
        if n <= 1000 { "94.1" } else { "46.4" },
        100.0 * (cold - warm) / cold,
        if n <= 1000 { "87.1" } else { "15.5" },
    ));
    fig.series = vec![s_excl, s_kaas];
    fig
}

/// Reproduces Figures 6a and 6b.
pub fn run(quick: bool) -> Vec<Figure> {
    let iterations = if quick { 6 } else { 20 };
    vec![run_one(500, iterations), run_one(10_000, iterations)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_start_then_stable_warm() {
        let figs = run(true);
        for fig in &figs {
            let kaas = fig.series("KaaS").expect("series");
            let cold = kaas.first_y();
            let warm: Vec<f64> = kaas.points[1..].iter().map(|&(_, y)| y).collect();
            // Cold is visibly slower than every warm iteration: the
            // spawn + context-creation penalty sits on top of it.
            for w in &warm {
                assert!(cold > *w + 0.3, "{}: cold={cold}, warm={w}", fig.id);
                assert!(cold < *w + 1.0, "{}: cold={cold}, warm={w}", fig.id);
            }
            // Warm iterations are stable (deterministic pipeline).
            let spread = warm.iter().cloned().fold(f64::MIN, f64::max)
                - warm.iter().cloned().fold(f64::MAX, f64::min);
            assert!(spread < 0.05, "{}: warm spread {spread}", fig.id);
        }
    }

    #[test]
    fn exclusive_is_flat_and_slower_than_warm_kaas() {
        let figs = run(true);
        for fig in &figs {
            let excl = fig.series("Exclusive").expect("series");
            let kaas = fig.series("KaaS").expect("series");
            // Exclusive pays full init every iteration: flat line.
            let spread = excl.points.iter().map(|&(_, y)| y).fold(f64::MIN, f64::max)
                - excl.points.iter().map(|&(_, y)| y).fold(f64::MAX, f64::min);
            assert!(spread < 0.1, "{}: exclusive spread {spread}", fig.id);
            assert!(excl.last_y() > kaas.last_y(), "{}", fig.id);
        }
    }

    #[test]
    fn small_task_warm_speedup_matches_paper_band() {
        let figs = run(true);
        let fig = &figs[0];
        let excl = fig.series("Exclusive").unwrap().last_y();
        let warm = fig.series("KaaS").unwrap().last_y();
        let speedup = reduction_pct(excl, warm);
        // Paper: 94.1 % faster warm starts for small tasks. Accept a
        // generous band — the shape (order-of-magnitude gain) is what
        // must hold.
        assert!(speedup > 80.0, "warm reduction {speedup}%");
    }
}
