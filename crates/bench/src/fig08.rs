//! Figure 8: accelerator throughput by level of sharing (eight
//! concurrent matrix multiplications on four P100s).

use crate::common::{Figure, Series};
use crate::sharing::{run_model, sweep_sizes, Model, CONCURRENCY};

/// Reproduces Figure 8.
pub fn run(quick: bool) -> Vec<Figure> {
    let mut fig = Figure::new(
        "fig08",
        "Throughput by level of sharing (8 concurrent tasks, 4 GPUs)",
        "task granularity (matrix elements)",
        "throughput (GFLOPs/sec)",
    );
    for model in Model::all() {
        let mut series = Series::new(model.label());
        for &n in &sweep_sizes(quick) {
            let stats = run_model(model, n, CONCURRENCY);
            series.push((n * n) as f64, stats.throughput() / 1e9);
        }
        fig.series.push(series);
    }
    let kaas_small = fig.series("KaaS").unwrap().first_y();
    let mps_small = fig.series("Space Sharing").unwrap().first_y();
    let kaas_large = fig.series("KaaS").unwrap().last_y();
    let mps_large = fig.series("Space Sharing").unwrap().last_y();
    fig.note(format!(
        "small tasks: KaaS {kaas_small:.2} vs MPS {mps_small:.2} GFLOPs/s \
         (paper: large KaaS advantage at small sizes)"
    ));
    fig.note(format!(
        "large tasks: KaaS {kaas_large:.0} vs MPS {mps_large:.0} GFLOPs/s \
         (paper: convergence — the prototype is built on MPS)"
    ));
    vec![fig]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_paper() {
        let figs = run(true);
        let fig = &figs[0];
        let kaas = fig.series("KaaS").unwrap();
        let mps = fig.series("Space Sharing").unwrap();
        let time = fig.series("Time Sharing").unwrap();
        // KaaS wins at small sizes.
        assert!(kaas.first_y() > mps.first_y() * 2.0);
        // KaaS and MPS converge at large sizes.
        let ratio = kaas.last_y() / mps.last_y();
        assert!((0.8..1.6).contains(&ratio), "ratio={ratio}");
        // Time sharing stays lowest at large sizes.
        assert!(time.last_y() < kaas.last_y());
        // Throughput grows with task size for every model.
        for s in &fig.series {
            assert!(s.last_y() > s.first_y(), "{} did not grow", s.label);
        }
    }
}
