//! Shared scenario for Figures 8–10: eight concurrent matrix
//! multiplications on the four-GPU testbed under time sharing, space
//! sharing, and KaaS.

use std::rc::Rc;

use kaas_core::baseline::{run_space_sharing, run_time_sharing};
use kaas_core::RunnerConfig;
use kaas_kernels::{MatMul, Value};
use kaas_simtime::{now, sleep, spawn, Simulation};

use crate::common::{deploy, experiment_server_config, host_cpu_profile, p100_cluster};
use crate::fig06::mm_input;

/// The three accelerator delivery models compared in §5.1–§5.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Model {
    /// Exclusive device use, queueing whole programs (Fig. 4a).
    TimeSharing,
    /// MPS-style concurrent processes (Fig. 4b).
    SpaceSharing,
    /// Shared warm runtimes (Fig. 4c).
    Kaas,
}

impl Model {
    /// Display label matching the paper's legends.
    pub fn label(self) -> &'static str {
        match self {
            Model::TimeSharing => "Time Sharing",
            Model::SpaceSharing => "Space Sharing",
            Model::Kaas => "KaaS",
        }
    }

    /// All three models in legend order.
    pub fn all() -> [Model; 3] {
        [Model::TimeSharing, Model::SpaceSharing, Model::Kaas]
    }
}

/// Concurrency of the sweep: "we increase request concurrency to eight,
/// which yields two concurrent computations per GPU installed".
pub const CONCURRENCY: usize = 8;

/// Result of one (model, n) run.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Wall-clock makespan of all tasks (s).
    pub makespan: f64,
    /// Per-task kernel (copy+compute) times (s).
    pub kernel_times: Vec<f64>,
    /// Per-task total completion times (s).
    pub totals: Vec<f64>,
    /// Total matrix-multiplication FLOPs across tasks.
    pub flops: f64,
    /// GPU + host energy over the makespan (J).
    pub energy_joules: f64,
}

impl RunStats {
    /// Aggregate throughput in FLOP/s.
    pub fn throughput(&self) -> f64 {
        self.flops / self.makespan
    }

    /// Mean per-task kernel time.
    pub fn mean_kernel_time(&self) -> f64 {
        self.kernel_times.iter().sum::<f64>() / self.kernel_times.len() as f64
    }

    /// Energy efficiency in FLOPS/W (= FLOPs per joule).
    pub fn flops_per_watt(&self) -> f64 {
        self.flops / self.energy_joules
    }
}

/// Runs `tasks` concurrent n×n matrix multiplications under `model`.
pub fn run_model(model: Model, n: u64, tasks: usize) -> RunStats {
    let mut sim = Simulation::new();
    sim.block_on(async move {
        let host = host_cpu_profile();
        let devices = p100_cluster();
        let mut kernel_times = Vec::with_capacity(tasks);
        let mut totals = Vec::with_capacity(tasks);
        let start;

        match model {
            Model::TimeSharing | Model::SpaceSharing => {
                start = now();
                let mut handles = Vec::new();
                for i in 0..tasks {
                    let gpu = devices[i % devices.len()].clone();
                    handles.push(spawn(async move {
                        let mm = MatMul::new();
                        let r = if model == Model::TimeSharing {
                            run_time_sharing(&gpu, &mm, &Value::U64(n), &host).await
                        } else {
                            run_space_sharing(&gpu, &mm, &Value::U64(n), &host).await
                        }
                        .expect("valid input");
                        (r.kernel_time.as_secs_f64(), r.total.as_secs_f64())
                    }));
                }
                for h in handles {
                    let (k, t) = h.await;
                    kernel_times.push(k);
                    totals.push(t);
                }
            }
            Model::Kaas => {
                let config = experiment_server_config().with_runner(RunnerConfig {
                    // Two concurrent computations per GPU.
                    max_inflight: 2,
                    ..RunnerConfig::default()
                });
                let dep = deploy(devices.clone(), vec![Rc::new(MatMul::new())], config);
                dep.server
                    .prewarm("matmul", devices.len())
                    .await
                    .expect("prewarm");
                start = now();
                let mut handles = Vec::new();
                for _ in 0..tasks {
                    let mut client = dep.local_client().await;
                    handles.push(spawn(async move {
                        let t0 = now();
                        sleep(host.python_launch).await;
                        let inv = client
                            .call("matmul")
                            .arg(mm_input(n))
                            .out_of_band()
                            .send()
                            .await
                            .expect("invocation succeeds");
                        (
                            inv.report.kernel_time().as_secs_f64(),
                            (now() - t0).as_secs_f64(),
                        )
                    }));
                }
                for h in handles {
                    let (k, t) = h.await;
                    kernel_times.push(k);
                    totals.push(t);
                }
            }
        }

        let makespan = (now() - start).as_secs_f64();
        // GPU energy over the run window plus host-side package energy
        // for the overhead work (launch/import/serialize time ≈ host
        // busy time).
        let window = now() - start;
        let gpu_energy: f64 = devices
            .iter()
            .map(|d| d.as_gpu().energy_joules(window))
            .sum();
        let host_busy: f64 = totals.iter().sum::<f64>() - kernel_times.iter().sum::<f64>();
        let host_energy = host.power.energy_joules(window, host_busy);
        RunStats {
            makespan,
            kernel_times,
            totals,
            flops: tasks as f64 * 2.0 * (n as f64).powi(3),
            energy_joules: gpu_energy + host_energy,
        }
    })
}

/// Kernel time of a single isolated KaaS execution at size `n` (the
/// Fig. 9 slowdown reference).
pub fn isolated_kaas_kernel_time(n: u64) -> f64 {
    let stats = run_model(Model::Kaas, n, 1);
    stats.kernel_times[0]
}

/// The paper's sweep of square input sizes (250 k – 324 M elements).
pub fn sweep_sizes(quick: bool) -> Vec<u64> {
    if quick {
        vec![500, 5_000, 13_000]
    } else {
        vec![500, 1_000, 2_000, 5_000, 9_000, 13_000, 18_000]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kaas_beats_baselines_for_small_tasks() {
        let kaas = run_model(Model::Kaas, 500, CONCURRENCY);
        let space = run_model(Model::SpaceSharing, 500, CONCURRENCY);
        let time = run_model(Model::TimeSharing, 500, CONCURRENCY);
        assert!(kaas.throughput() > space.throughput() * 2.0);
        assert!(space.throughput() >= time.throughput() * 0.8);
    }

    #[test]
    fn kaas_and_space_sharing_converge_for_large_tasks() {
        let kaas = run_model(Model::Kaas, 13_000, CONCURRENCY);
        let space = run_model(Model::SpaceSharing, 13_000, CONCURRENCY);
        let ratio = kaas.throughput() / space.throughput();
        assert!(
            (0.8..1.6).contains(&ratio),
            "KaaS/MPS throughput ratio {ratio}"
        );
    }

    #[test]
    fn time_sharing_has_lowest_large_task_throughput() {
        let kaas = run_model(Model::Kaas, 13_000, CONCURRENCY);
        let time = run_model(Model::TimeSharing, 13_000, CONCURRENCY);
        assert!(kaas.throughput() > time.throughput());
    }

    #[test]
    fn isolated_kernel_time_is_fastest() {
        let isolated = isolated_kaas_kernel_time(5_000);
        let shared = run_model(Model::Kaas, 5_000, CONCURRENCY).mean_kernel_time();
        assert!(
            shared >= isolated * 0.99,
            "shared={shared}, isolated={isolated}"
        );
    }
}
