//! Ablation studies for the design choices DESIGN.md calls out and the
//! paper's §6 future-work directions: scheduling policy, kernel fusion,
//! transport fabric, and idle scale-down.

use std::rc::Rc;
use std::time::Duration;

use kaas_core::{fuse, FillFirst, KaasClient, LeastLoaded, RoundRobin, Scheduler, WarmFirst};
use kaas_kernels::{GaGeneration, Kernel, MatMul, Value, GENERATIONS};
use kaas_net::LinkProfile;
use kaas_simtime::{now, spawn, Simulation};

use crate::common::{deploy, experiment_server_config, p100_cluster, Figure, Series};
use crate::fig06::mm_input;

/// Makespan of a burst of `tasks` concurrent matmuls under a scheduler,
/// plus how many runners ended up used.
pub fn scheduler_burst(
    scheduler: impl Into<Box<dyn Scheduler>>,
    tasks: usize,
    n: u64,
) -> (f64, usize) {
    let scheduler: Box<dyn Scheduler> = scheduler.into();
    let mut sim = Simulation::new();
    sim.block_on(async move {
        let config = experiment_server_config().with_scheduler(scheduler);
        let dep = deploy(p100_cluster(), vec![Rc::new(MatMul::new())], config);
        dep.server.prewarm("matmul", 4).await.expect("prewarm");
        let start = now();
        let mut handles = Vec::new();
        for _ in 0..tasks {
            let mut client = dep.local_client().await;
            handles.push(spawn(async move {
                client
                    .call("matmul")
                    .arg(mm_input(n))
                    .out_of_band()
                    .send()
                    .await
                    .expect("invocation succeeds")
                    .report
                    .runner
            }));
        }
        let mut used = std::collections::BTreeSet::new();
        for h in handles {
            used.insert(h.await);
        }
        ((now() - start).as_secs_f64(), used.len())
    })
}

/// Total time of a ten-generation GA with a given fusion factor
/// (1 = unfused, 2 = pairs, 5 = quintuples).
pub fn fusion_run(factor: usize) -> f64 {
    assert!(
        (GENERATIONS as usize).is_multiple_of(factor),
        "factor must divide 10"
    );
    let mut sim = Simulation::new();
    sim.block_on(async move {
        let stages: Vec<Rc<dyn Kernel>> = (0..factor)
            .map(|i| Rc::new(GaGeneration::seeded(100 + i as u64)) as Rc<dyn Kernel>)
            .collect();
        let kernel: Rc<dyn Kernel> = if factor == 1 {
            stages[0].clone()
        } else {
            Rc::new(fuse("ga-fused", stages).expect("same class"))
        };
        let name = kernel.name().to_owned();
        let dep = deploy(p100_cluster(), vec![kernel], experiment_server_config());
        dep.server.prewarm(&name, 1).await.expect("prewarm");
        let mut client = dep.local_client().await;
        let t0 = now();
        let mut pop = Value::U64(2048);
        for _ in 0..(GENERATIONS as usize / factor) {
            pop = client
                .call(&name)
                .arg(pop)
                .out_of_band()
                .send()
                .await
                .expect("generation")
                .output;
        }
        (now() - t0).as_secs_f64()
    })
}

/// Remote ten-generation GA over a given fabric.
pub fn transport_run(profile: LinkProfile) -> f64 {
    let mut sim = Simulation::new();
    sim.block_on(async move {
        let dep = deploy(
            p100_cluster(),
            vec![Rc::new(GaGeneration::seeded(5)) as Rc<dyn Kernel>],
            experiment_server_config(),
        );
        dep.server.prewarm("ga", 1).await.expect("prewarm");
        let mut client = KaasClient::connect(&dep.net, crate::common::KAAS_ADDR, profile)
            .await
            .expect("listening")
            .with_serialization(kaas_net::SerializationProfile::numpy());
        let t0 = now();
        let mut pop = Value::U64(2048);
        for _ in 0..GENERATIONS {
            pop = client
                .call("ga")
                .arg(pop)
                .send()
                .await
                .expect("generation")
                .output;
        }
        (now() - t0).as_secs_f64()
    })
}

/// Energy & cold-start trade-off of the idle reaper over a bursty day:
/// returns (reaped runners, cold starts, GPU energy in joules).
pub fn reaper_run(idle_timeout: Option<Duration>) -> (usize, usize, f64) {
    let mut sim = Simulation::new();
    sim.block_on(async move {
        let config = experiment_server_config().with_idle_timeout(idle_timeout);
        let dep = deploy(p100_cluster(), vec![Rc::new(MatMul::new())], config);
        let mut client = dep.local_client().await;
        let start = now();
        // Three bursts separated by long idle gaps.
        for burst in 0..3 {
            for _ in 0..5 {
                client
                    .call("matmul")
                    .arg(mm_input(2000))
                    .out_of_band()
                    .send()
                    .await
                    .expect("invocation succeeds");
            }
            if burst < 2 {
                kaas_simtime::sleep(Duration::from_secs(600)).await;
            }
        }
        let window = now() - start;
        let energy: f64 = dep
            .server
            .devices()
            .iter()
            .map(|d| d.as_gpu().energy_joules(window))
            .sum();
        (
            dep.server.snapshot().reaped,
            dep.server.metrics().cold_starts(),
            energy,
        )
    })
}

/// Runs all four ablations and reports them as one figure-like table.
pub fn run(_quick: bool) -> Vec<Figure> {
    let mut fig = Figure::new(
        "ablation",
        "Design ablations: scheduler, fusion, transport, idle reaping",
        "variant index",
        "seconds (or see note)",
    );

    let mut sched = Series::new("scheduler makespan (12 tasks, MM 5000)");
    let policies: [Box<dyn Scheduler>; 4] = [
        Box::new(FillFirst),
        Box::new(RoundRobin::default()),
        Box::new(LeastLoaded),
        Box::new(WarmFirst),
    ];
    for (i, policy) in policies.into_iter().enumerate() {
        let name = policy.name();
        let (makespan, used) = scheduler_burst(policy, 12, 5_000);
        sched.push(i as f64, makespan);
        fig.note(format!(
            "scheduler {name}: makespan {makespan:.3}s on {used} runners"
        ));
    }
    fig.series.push(sched);

    let mut fusion = Series::new("GA total by fusion factor");
    for (i, factor) in [1usize, 2, 5].into_iter().enumerate() {
        let t = fusion_run(factor);
        fusion.push(i as f64, t);
        fig.note(format!("fusion x{factor}: 10 generations in {t:.3}s"));
    }
    fig.series.push(fusion);

    let mut transport = Series::new("remote GA by fabric");
    for (i, (label, profile)) in [
        ("loopback", LinkProfile::loopback()),
        ("tcp-1g", LinkProfile::lan_1gbps()),
        ("rdma-100g", LinkProfile::rdma_100g()),
    ]
    .into_iter()
    .enumerate()
    {
        let t = transport_run(profile);
        transport.push(i as f64, t);
        fig.note(format!("transport {label}: {t:.3}s"));
    }
    fig.series.push(transport);

    for (label, timeout) in [
        ("keep-warm", None),
        ("reap-5min", Some(Duration::from_secs(300))),
    ] {
        let (reaped, cold, energy) = reaper_run(timeout);
        fig.note(format!(
            "reaper {label}: {reaped} reaped, {cold} cold starts, {energy:.0} J GPU energy"
        ));
    }
    vec![fig]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_first_consolidates_round_robin_spreads() {
        let (_, ff_used) = scheduler_burst(FillFirst, 6, 2_000);
        let (_, rr_used) = scheduler_burst(RoundRobin::default(), 6, 2_000);
        assert!(ff_used < rr_used, "ff={ff_used}, rr={rr_used}");
    }

    #[test]
    fn round_robin_wins_bursty_makespan() {
        // Spreading a burst across runners beats packing it.
        let (ff, _) = scheduler_burst(FillFirst, 12, 9_000);
        let (rr, _) = scheduler_burst(RoundRobin::default(), 12, 9_000);
        assert!(rr <= ff * 1.05, "rr={rr}, ff={ff}");
    }

    #[test]
    fn deeper_fusion_is_monotonically_faster() {
        let t1 = fusion_run(1);
        let t2 = fusion_run(2);
        let t5 = fusion_run(5);
        assert!(t2 < t1, "x2 {t2} !< x1 {t1}");
        assert!(t5 < t2, "x5 {t5} !< x2 {t2}");
    }

    #[test]
    fn faster_fabrics_cut_remote_time() {
        let tcp = transport_run(LinkProfile::lan_1gbps());
        let rdma = transport_run(LinkProfile::rdma_100g());
        let loopback = transport_run(LinkProfile::loopback());
        assert!(rdma < tcp, "rdma {rdma} !< tcp {tcp}");
        assert!(loopback < tcp, "loopback {loopback} !< tcp {tcp}");
        // An RDMA fabric approaches loopback cost (§6: it would "further
        // reduce the invocation overhead").
        assert!((rdma - loopback).abs() / loopback < 0.05);
    }

    #[test]
    fn reaping_trades_cold_starts_for_released_capacity() {
        let (reaped_off, cold_off, energy_off) = reaper_run(None);
        let (reaped_on, cold_on, energy_on) = reaper_run(Some(Duration::from_secs(300)));
        assert_eq!(reaped_off, 0);
        assert!(reaped_on >= 1, "idle gaps must trigger reaps");
        assert!(cold_on > cold_off, "reaping forces re-warms");
        // Our power model does not model power-gating of reaped
        // contexts, so energy stays in the same ballpark — the recovered
        // resource here is the device slot, not watts.
        let rel = (energy_on - energy_off).abs() / energy_off;
        assert!(rel < 0.05, "energy drift {rel}");
    }
}
