//! Cluster-scale dispatch experiment: thousands of closed-loop clients
//! driving 10⁵+ invocations of a tiny GPU kernel against eight V100s.
//!
//! This is the router-contention study behind the Fig. 12b caveat: the
//! paper's prototype saturates its dispatcher near 64 000 dispatches,
//! and our historical serialized router ([`DispatchMode::Serialized`])
//! has the same shape — throughput climbs with client count until it
//! knees at `1 / dispatch_overhead ≈ 28.6 k` invocations/s, then goes
//! flat. The sharded engine plus client-side wire batching
//! ([`KaasClient::batch`](kaas_core::KaasClient::batch)) overlaps the
//! routing cost across per-device shard queues and amortizes the frame
//! header, moving the knee by ≥4× on the same testbed.

use std::rc::Rc;

use kaas_core::{BatchCall, DispatchMode, RoundRobin, RunnerConfig, ServerConfig};
use kaas_kernels::{MonteCarlo, Value};
use kaas_simtime::{now, spawn, Simulation};

use crate::common::{deploy, experiment_server_config, v100_cluster, Figure, Series};

/// The §5.4 testbed: eight V100s.
pub const GPUS: u32 = 8;
/// Monte-Carlo samples per invocation — small on purpose: the study
/// stresses the dispatch path, not the device.
pub const SAMPLES: u64 = 1_000;
/// Wire-batch size for the sharded+batched configuration.
pub const BATCH: usize = 16;

/// One measured operating point of the load sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterSample {
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// Total invocations completed.
    pub invocations: u64,
    /// Simulated seconds from first issue to last reply.
    pub elapsed_s: f64,
    /// Invocations per simulated second.
    pub throughput: f64,
}

/// The server configuration for one operating point: prewarmed-only
/// capacity (no autoscaler noise), round-robin placement, and a
/// generous per-runner in-flight cap so the dispatcher — not runner
/// admission — is the contended resource.
fn cluster_config(mode: DispatchMode) -> ServerConfig {
    experiment_server_config()
        .with_scheduler(RoundRobin::default())
        .with_autoscale(false)
        .with_dispatch(mode)
        .with_runner(RunnerConfig {
            max_inflight: 16,
            ..RunnerConfig::default()
        })
}

/// Runs `clients` closed-loop clients, each issuing `per_client`
/// invocations of the MCI kernel, and measures aggregate throughput.
///
/// `batch == 1` issues one request per wire frame (the historical
/// protocol); `batch > 1` coalesces that many calls per frame through
/// [`KaasClient::batch`](kaas_core::KaasClient::batch).
pub fn run_load(
    mode: DispatchMode,
    clients: usize,
    per_client: usize,
    batch: usize,
) -> ClusterSample {
    assert!(batch >= 1, "batch size must be at least 1");
    let mut sim = Simulation::new();
    sim.block_on(async move {
        let dep = deploy(
            v100_cluster(GPUS),
            vec![Rc::new(MonteCarlo::default())],
            cluster_config(mode),
        );
        dep.server
            .prewarm("mci", GPUS as usize)
            .await
            .expect("prewarm");
        let t0 = now();
        let mut handles = Vec::with_capacity(clients);
        for _ in 0..clients {
            let mut client = dep.local_client().await;
            handles.push(spawn(async move {
                let mut remaining = per_client;
                while remaining > 0 {
                    let k = batch.min(remaining);
                    if k == 1 {
                        client
                            .call("mci")
                            .arg(Value::U64(SAMPLES))
                            .send()
                            .await
                            .expect("invocation succeeds");
                    } else {
                        let mut b = client.batch();
                        for _ in 0..k {
                            b = b.call(BatchCall::new("mci").arg(Value::U64(SAMPLES)));
                        }
                        for member in b.send().await.expect("batch frame delivered") {
                            member.expect("batch member succeeds");
                        }
                    }
                    remaining -= k;
                }
            }));
        }
        for h in handles {
            h.await;
        }
        let elapsed_s = (now() - t0).as_secs_f64();
        let invocations = (clients * per_client) as u64;
        ClusterSample {
            clients,
            invocations,
            elapsed_s,
            throughput: invocations as f64 / elapsed_s,
        }
    })
}

/// The saturation knee of a throughput-vs-clients series: the smallest
/// client count whose throughput reaches 90 % of the series plateau,
/// paired with the plateau itself (the maximum sustained throughput).
pub fn knee(series: &Series) -> (f64, f64) {
    let plateau = series
        .points
        .iter()
        .map(|&(_, y)| y)
        .fold(f64::MIN, f64::max);
    let at = series
        .points
        .iter()
        .find(|&&(_, y)| y >= 0.9 * plateau)
        .map(|&(x, _)| x)
        .unwrap_or(f64::NAN);
    (at, plateau)
}

/// The two A/B configurations the sweep compares.
fn configurations() -> Vec<(&'static str, DispatchMode, usize)> {
    vec![
        ("Serialized (unbatched)", DispatchMode::Serialized, 1),
        ("Sharded + batched", DispatchMode::default(), BATCH),
    ]
}

/// Runs the load sweep for one dispatcher configuration.
fn sweep(label: &str, mode: &DispatchMode, batch: usize, quick: bool) -> (Series, u64) {
    let (client_counts, per_client): (&[usize], usize) = if quick {
        (&[2, 8, 32], 16)
    } else {
        (&[4, 16, 64, 256, 1024, 2048], 64)
    };
    let mut s = Series::new(label);
    let mut total = 0u64;
    for &c in client_counts {
        let sample = run_load(mode.clone(), c, per_client, batch);
        total += sample.invocations;
        s.push(c as f64, sample.throughput);
    }
    (s, total)
}

/// The A/B figure: serialized-unbatched vs sharded+batched throughput
/// across the client sweep (full mode tops out at 2 048 clients ×
/// 64 calls = 131 072 invocations per point).
pub fn run(quick: bool) -> Vec<Figure> {
    let mut fig = figure();
    let mut knees = Vec::new();
    let mut grand_total = 0u64;
    for (label, mode, batch) in configurations() {
        let (series, total) = sweep(label, &mode, batch, quick);
        grand_total += total;
        knees.push((label, knee(&series)));
        fig.series.push(series);
    }
    let (_, (knee_old_at, knee_old)) = knees[0];
    let (_, (knee_new_at, knee_new)) = knees[1];
    fig.note(format!(
        "serialized knee: {knee_old:.0} inv/s from {knee_old_at:.0} clients \
         (ceiling 1/35 µs ≈ 28 571/s); sharded+batched sustains {knee_new:.0} inv/s \
         from {knee_new_at:.0} clients — knee moved {:.1}×",
        knee_new / knee_old
    ));
    fig.note(format!("{grand_total} invocations total across the sweep"));
    vec![fig]
}

/// Runs the sweep for a single dispatcher (the bin's `--dispatch=` A/B
/// flag): `Serialized` unbatched, anything sharded with wire batching.
pub fn run_mode(quick: bool, mode: DispatchMode) -> Vec<Figure> {
    let (label, batch) = match &mode {
        DispatchMode::Serialized => ("Serialized (unbatched)", 1),
        DispatchMode::Sharded(_) => ("Sharded + batched", BATCH),
    };
    let mut fig = figure();
    let (series, total) = sweep(label, &mode, batch, quick);
    let (at, plateau) = knee(&series);
    fig.note(format!(
        "{label}: plateau {plateau:.0} inv/s from {at:.0} clients; {total} invocations total"
    ));
    fig.series.push(series);
    vec![fig]
}

fn figure() -> Figure {
    Figure::new(
        "cluster",
        "Dispatch throughput vs. concurrent clients (8 V100s, MCI)",
        "concurrent clients",
        "sustained invocations per second",
    )
}

/// Renders the figures as a small JSON document (for
/// `results/cluster.json`). Hand-rolled: the repo carries no JSON
/// dependency, and the schema is three levels deep.
pub fn to_json(figs: &[Figure]) -> String {
    let mut out = String::from("{\n  \"bench\": \"cluster\",\n  \"gpus\": 8,\n  \"figures\": [\n");
    for (i, f) in figs.iter().enumerate() {
        out.push_str(&format!(
            "    {{\n      \"id\": \"{}\",\n      \"series\": [\n",
            f.id
        ));
        for (j, s) in f.series.iter().enumerate() {
            out.push_str(&format!(
                "        {{\"label\": \"{}\", \"points\": [",
                s.label
            ));
            let pts: Vec<String> = s
                .points
                .iter()
                .map(|(x, y)| format!("{{\"clients\": {x}, \"throughput\": {y:.3}}}"))
                .collect();
            out.push_str(&pts.join(", "));
            out.push_str("]}");
            out.push_str(if j + 1 < f.series.len() { ",\n" } else { "\n" });
        }
        out.push_str("      ],\n      \"notes\": [");
        let notes: Vec<String> = f
            .notes
            .iter()
            .map(|n| format!("\"{}\"", n.replace('"', "\\\"")))
            .collect();
        out.push_str(&notes.join(", "));
        out.push_str("]\n    }");
        out.push_str(if i + 1 < figs.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialized_knees_near_the_dispatch_ceiling() {
        let s = run_load(DispatchMode::Serialized, 64, 16, 1);
        // The router lock admits one 35 µs critical section at a time:
        // 64 closed-loop clients sit well past the knee.
        assert!(
            (20_000.0..29_000.0).contains(&s.throughput),
            "serialized plateau {:.0} inv/s (ceiling 1/35 µs ≈ 28 571)",
            s.throughput
        );
    }

    #[test]
    fn sharded_and_batched_breaks_the_knee() {
        let serialized = run_load(DispatchMode::Serialized, 64, 16, 1);
        let sharded = run_load(DispatchMode::default(), 64, 16, 8);
        let ratio = sharded.throughput / serialized.throughput;
        assert!(
            ratio >= 4.0,
            "sharded+batched should move the knee ≥4×, got {ratio:.2}× \
             ({:.0} vs {:.0} inv/s)",
            sharded.throughput,
            serialized.throughput
        );
    }

    #[test]
    fn same_seed_reruns_are_bit_identical() {
        let a = run_load(DispatchMode::default(), 32, 8, 4);
        let b = run_load(DispatchMode::default(), 32, 8, 4);
        assert_eq!(a, b, "sharded dispatch must replay identically");
    }

    #[test]
    fn json_rendering_is_wellformed_enough() {
        let mut fig = figure();
        let mut s = Series::new("demo");
        s.push(2.0, 123.456);
        fig.series.push(s);
        fig.note("a \"quoted\" note");
        let json = to_json(&[fig]);
        assert!(json.contains("\"bench\": \"cluster\""));
        assert!(json.contains("{\"clients\": 2, \"throughput\": 123.456}"));
        assert!(json.contains("\\\"quoted\\\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
