//! Figure 14: six GPU kernels (DTW, GA, GNN, MCI, MM, QC), baseline
//! (MPS space sharing, always GPU 0) vs. KaaS (§5.6.1).
//!
//! Includes the paper's GA anomaly: KaaS spreads invocations across the
//! cluster's GPUs, whose performance varies by up to 14.3 %, while the
//! baseline always lands on the (fastest) default GPU — so the iterative
//! GA gets *slower* under KaaS at the largest generation count.

use std::rc::Rc;

use kaas_core::baseline::run_space_sharing;
use kaas_core::{KaasClient, RoundRobin};
use kaas_kernels::{
    GaGeneration, GnnTraining, Kernel, MatMul, MonteCarlo, QcSimulation, SoftDtw, Value,
    GENERATIONS,
};
use kaas_simtime::{now, sleep, Simulation};

use crate::common::{
    deploy, experiment_server_config, host_cpu_profile, p100_cluster, reduction_pct, Figure, Series,
};

/// Builds one of the six evaluated kernels by name.
pub fn kernel_by_name(name: &str) -> Rc<dyn Kernel> {
    match name {
        "dtw" => Rc::new(SoftDtw::default()),
        "ga" => Rc::new(GaGeneration::default()),
        "gnn" => Rc::new(GnnTraining::new()),
        "mci" => Rc::new(MonteCarlo::default()),
        "matmul" => Rc::new(MatMul::new()),
        "qc" => Rc::new(QcSimulation::new()),
        other => panic!("unknown Fig. 14 kernel '{other}'"),
    }
}

/// Input payload for a kernel at granularity `n` (descriptor-sized for
/// the data-heavy ones).
fn input_for(name: &str, n: u64) -> Value {
    match name {
        "matmul" => Value::sized(2 * 8 * n * n, Value::U64(n)),
        "dtw" => Value::sized(200 * 10 * 8 * n, Value::U64(n)),
        _ => Value::U64(n),
    }
}

/// Whether the workload is iterative (one invocation per GA generation).
fn is_iterative(name: &str) -> bool {
    name == "ga"
}

/// The sweep for each kernel (granularity parameter N).
pub fn sweep_for(name: &str, quick: bool) -> Vec<u64> {
    let full: &[u64] = match name {
        "dtw" => &[128, 256, 512, 768, 1024],
        "ga" => &[256, 1024, 2048, 4096],
        "gnn" => &[512, 1024, 2048, 4096],
        "mci" => &[1024, 8192, 16384, 65536],
        "matmul" => &[1000, 4000, 8000, 16000],
        "qc" => &[1024, 8192, 32768, 65536],
        other => panic!("unknown Fig. 14 kernel '{other}'"),
    };
    if quick {
        vec![full[0], *full.last().expect("non-empty sweep")]
    } else {
        full.to_vec()
    }
}

/// Baseline: space sharing on the default GPU, one standalone program
/// per task (for GA: one program iterating the ten generations with a
/// device round-trip per generation).
fn baseline_time(name: &'static str, n: u64) -> f64 {
    let mut sim = Simulation::new();
    sim.block_on(async move {
        let host = host_cpu_profile();
        let cluster = p100_cluster();
        let gpu0 = cluster[0].clone();
        let kernel = kernel_by_name(name);
        let t0 = now();
        if is_iterative(name) {
            // One program: launch + import + context once, then a kernel
            // execution (with data movement) per generation.
            sleep(host.python_launch).await;
            let gpu = gpu0.as_gpu();
            sleep(gpu.profile().runtime_import).await;
            gpu.create_context().await;
            let mut population = Value::U64(n);
            for g in 0..GENERATIONS {
                let work = kernel.work(population.payload()).expect("valid");
                gpu.execute(&work, kernel.demand(), g == 0).await;
                population = kernel.execute(population.payload()).expect("valid");
            }
            gpu.destroy_context();
            sleep(gpu.profile().process_cleanup).await;
        } else {
            run_space_sharing(&gpu0, kernel.as_ref(), &input_for(name, n), &host)
                .await
                .expect("valid input");
        }
        (now() - t0).as_secs_f64()
    })
}

/// KaaS: round-robin across four prewarmed runners (one per GPU).
fn kaas_time(name: &'static str, n: u64) -> f64 {
    let mut sim = Simulation::new();
    sim.block_on(async move {
        let host = host_cpu_profile();
        let config = experiment_server_config().with_scheduler(RoundRobin::default());
        let dep = deploy(p100_cluster(), vec![kernel_by_name(name)], config);
        dep.server.prewarm(name, 4).await.expect("prewarm");
        let mut client = dep.local_client().await;
        // Warm every runner once so the sweep measures warm behaviour.
        for _ in 0..4 {
            client
                .call(name)
                .arg(input_for(name, n.clamp(8, 64)))
                .out_of_band()
                .send()
                .await
                .expect("warm-up");
        }
        let t0 = now();
        sleep(host.python_launch).await;
        if is_iterative(name) {
            ga_rounds(&mut client, name, n).await;
        } else {
            client
                .call(name)
                .arg(input_for(name, n))
                .out_of_band()
                .send()
                .await
                .expect("invocation succeeds");
        }
        (now() - t0).as_secs_f64()
    })
}

async fn ga_rounds(client: &mut KaasClient, name: &str, n: u64) {
    let mut population = Value::U64(n);
    for _ in 0..GENERATIONS {
        let inv = client
            .call(name)
            .arg(population)
            .out_of_band()
            .send()
            .await
            .expect("generation succeeds");
        population = inv.output;
    }
}

/// The six evaluated kernel names, in the paper's panel order.
pub fn kernels() -> [&'static str; 6] {
    ["dtw", "ga", "gnn", "mci", "matmul", "qc"]
}

/// Reproduces Figure 14 (one sub-figure per kernel).
pub fn run(quick: bool) -> Vec<Figure> {
    let mut figs = Vec::new();
    for name in kernels() {
        let mut fig = Figure::new(
            match name {
                "dtw" => "fig14-dtw",
                "ga" => "fig14-ga",
                "gnn" => "fig14-gnn",
                "mci" => "fig14-mci",
                "matmul" => "fig14-mm",
                _ => "fig14-qc",
            },
            format!("{name} task completion, baseline (MPS) vs KaaS"),
            "task granularity (N)",
            "task completion time (s)",
        );
        let mut base = Series::new("Baseline");
        let mut kaas = Series::new("KaaS");
        for n in sweep_for(name, quick) {
            base.push(n as f64, baseline_time(name, n));
            kaas.push(n as f64, kaas_time(name, n));
        }
        let best_reduction = base
            .points
            .iter()
            .zip(&kaas.points)
            .map(|(&(_, b), &(_, k))| reduction_pct(b, k))
            .fold(f64::MIN, f64::max);
        fig.note(format!(
            "{name}: best task-time reduction {best_reduction:.1}% \
             (paper: up to 96% across kernels; GA at N=4096 is ~5.8% slower under KaaS)"
        ));
        fig.series = vec![base, kaas];
        figs.push(fig);
    }
    figs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kaas_wins_for_every_non_iterative_kernel() {
        for name in ["dtw", "gnn", "mci", "matmul", "qc"] {
            let n = sweep_for(name, true)[0];
            let b = baseline_time(name, n);
            let k = kaas_time(name, n);
            assert!(k < b, "{name}@{n}: kaas {k} !< baseline {b}");
        }
    }

    #[test]
    fn mci_reduction_is_extreme() {
        // The paper's headline: up to 96 % reduction, achieved by MCI
        // (tiny kernel, pure overhead elimination).
        let b = baseline_time("mci", 65_536);
        let k = kaas_time("mci", 65_536);
        let red = reduction_pct(b, k);
        assert!(red > 80.0, "MCI reduction {red}% (paper: 96%)");
    }

    #[test]
    fn ga_at_large_n_is_slower_under_kaas() {
        // The §5.6.1 anomaly: KaaS's even spread across variable-speed
        // GPUs loses to the baseline's fastest-GPU pinning for the
        // iterative GA at the largest size.
        let b = baseline_time("ga", 4096);
        let k = kaas_time("ga", 4096);
        let change = (k - b) / b * 100.0;
        assert!(
            (0.0..20.0).contains(&change),
            "GA@4096 should be a few % slower under KaaS: {change:.1}% (paper: +5.8%)"
        );
    }

    #[test]
    fn ga_at_small_n_still_benefits() {
        let b = baseline_time("ga", 256);
        let k = kaas_time("ga", 256);
        assert!(k < b, "kaas {k} !< baseline {b}");
    }
}
