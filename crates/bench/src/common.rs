//! Shared infrastructure for the figure-reproduction harness: testbed
//! builders matching the paper's hardware, a KaaS deployment helper, and
//! a small table/series output format.

use std::rc::Rc;

use kaas_accel::{
    CpuDevice, CpuProfile, Device, DeviceId, FpgaDevice, FpgaProfile, GpuDevice, GpuProfile,
    QpuDevice, QpuProfile, TpuDevice, TpuProfile,
};
use kaas_core::{
    DispatchMode, KaasClient, KaasNetwork, KaasServer, KernelRegistry, ServerConfig, ShardConfig,
};
use kaas_kernels::Kernel;
use kaas_net::{LinkProfile, SerializationProfile, SharedMemory};
use kaas_simtime::spawn;

/// Server address used by every experiment.
pub const KAAS_ADDR: &str = "kaas:7000";

/// One plotted line: `(x, y)` points with a label.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// `(x, y)` samples in x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(label: impl Into<String>) -> Self {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// The y value at the given x (exact match).
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|(px, _)| (*px - x).abs() < 1e-9)
            .map(|(_, y)| *y)
    }

    /// Final y value.
    pub fn last_y(&self) -> f64 {
        self.points.last().map(|&(_, y)| y).unwrap_or(f64::NAN)
    }

    /// First y value.
    pub fn first_y(&self) -> f64 {
        self.points.first().map(|&(_, y)| y).unwrap_or(f64::NAN)
    }
}

/// A reproduced figure: series plus free-text findings, printable as CSV.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure {
    /// Paper figure id, e.g. "fig06a".
    pub id: &'static str,
    /// Human title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The plotted series.
    pub series: Vec<Series>,
    /// Headline observations (paper-vs-measured notes).
    pub notes: Vec<String>,
}

impl Figure {
    /// Creates an empty figure.
    pub fn new(
        id: &'static str,
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Figure {
            id,
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Looks a series up by label.
    pub fn series(&self, label: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.label == label)
    }

    /// Adds an observation note.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    /// Renders the figure as commented CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("# {} — {}\n", self.id, self.title));
        out.push_str(&format!("# x: {} | y: {}\n", self.x_label, self.y_label));
        for s in &self.series {
            out.push_str(&format!("series,{}\n", s.label));
            for (x, y) in &s.points {
                out.push_str(&format!("{x},{y:.6}\n"));
            }
        }
        for n in &self.notes {
            out.push_str(&format!("# note: {n}\n"));
        }
        out
    }

    /// Prints the CSV to stdout.
    pub fn print(&self) {
        print!("{}", self.to_csv());
    }
}

/// The §5.1 GPU testbed: four Tesla P100s. Speed factors encode the
/// §5.6.1 observation of up to 14.3 % performance spread between
/// "identical" GPUs (GPU 0, the numba default, is the fastest).
pub fn p100_cluster() -> Vec<Device> {
    let factors = [1.0, 0.857, 0.86, 0.875];
    factors
        .iter()
        .enumerate()
        .map(|(i, &f)| {
            GpuDevice::new(DeviceId(i as u32), GpuProfile::p100().with_speed_factor(f)).into()
        })
        .collect()
}

/// The §5.4 scaling testbed: `n` Tesla V100s.
pub fn v100_cluster(n: u32) -> Vec<Device> {
    (0..n)
        .map(|i| GpuDevice::new(DeviceId(i), GpuProfile::v100()).into())
        .collect()
}

/// The GPU-host CPUs (2× Xeon E5-2698 v4).
pub fn host_cpu_profile() -> CpuProfile {
    CpuProfile::xeon_e5_2698v4_dual()
}

/// A host CPU device for CPU-only baselines.
pub fn host_cpu(id: u32) -> CpuDevice {
    CpuDevice::new(DeviceId(id), host_cpu_profile())
}

/// The §5.6.2 FPGA testbed (Alveo U250).
pub fn fpga_testbed() -> Vec<Device> {
    vec![FpgaDevice::new(DeviceId(0), FpgaProfile::alveo_u250()).into()]
}

/// The §5.6.3 TPU testbed (one v3-8 board).
pub fn tpu_testbed() -> Vec<Device> {
    vec![TpuDevice::new(DeviceId(0), TpuProfile::v3_8()).into()]
}

/// A QPU deployment for one backend profile.
pub fn qpu_testbed(profile: QpuProfile) -> Vec<Device> {
    vec![QpuDevice::new(DeviceId(0), profile).into()]
}

/// The experiment-default server configuration: array-friendly
/// serialization, the paper's dispatch overhead and in-flight cap.
pub fn experiment_server_config() -> ServerConfig {
    ServerConfig::default().with_serialization(SerializationProfile::numpy())
}

/// A running KaaS deployment (inside an active simulation).
#[derive(Debug)]
pub struct Deployment {
    /// The server handle (metrics, prewarm, ...).
    pub server: KaasServer,
    /// The simulated network it listens on.
    pub net: KaasNetwork,
    /// The host shared-memory region for out-of-band transfer.
    pub shm: SharedMemory,
}

/// Connects a same-host client (loopback + shared memory + fast array
/// serialization) to a deployment's network. The free-function form
/// suits spawned tasks that only captured the network and region.
pub async fn connect_local(net: &KaasNetwork, shm: SharedMemory) -> KaasClient {
    KaasClient::connect(net, KAAS_ADDR, LinkProfile::loopback())
        .await
        .expect("deployment is listening")
        .with_shared_memory(shm)
        .with_serialization(SerializationProfile::numpy())
}

impl Deployment {
    /// Connects a same-host client (loopback + shared memory + fast
    /// array serialization).
    pub async fn local_client(&self) -> KaasClient {
        connect_local(&self.net, self.shm.clone()).await
    }

    /// Connects a remote client over the paper's 1 Gbps LAN (in-band
    /// only — no shared memory across hosts).
    pub async fn remote_client(&self) -> KaasClient {
        KaasClient::connect(&self.net, KAAS_ADDR, LinkProfile::lan_1gbps())
            .await
            .expect("deployment is listening")
            .with_serialization(SerializationProfile::numpy())
    }
}

/// Boots a KaaS server for `devices`/`kernels` and starts its accept
/// loop. Must be called inside a running simulation.
pub fn deploy(
    devices: Vec<Device>,
    kernels: Vec<Rc<dyn Kernel>>,
    config: ServerConfig,
) -> Deployment {
    let registry = KernelRegistry::new();
    for k in kernels {
        registry
            .register_rc(k)
            .expect("kernel names must be unique per deployment");
    }
    let shm = SharedMemory::host();
    let server = KaasServer::new(devices, registry, shm.clone(), config);
    let net = KaasNetwork::new();
    let listener = net.listen(KAAS_ADDR).expect("fresh network");
    spawn(server.clone().serve(listener));
    Deployment { server, net, shm }
}

/// Parses the dispatcher A/B flag from the process arguments:
/// `--dispatch=serialized` selects the historical single-lock router,
/// `--dispatch=sharded` the default sharded engine. Returns `None` when
/// the flag is absent so callers keep their own default.
pub fn dispatch_mode_from_args() -> Option<DispatchMode> {
    std::env::args().find_map(|a| match a.strip_prefix("--dispatch=") {
        Some("serialized") => Some(DispatchMode::Serialized),
        Some("sharded") => Some(DispatchMode::Sharded(ShardConfig::default())),
        Some(other) => panic!("unknown --dispatch value {other:?} (expected serialized|sharded)"),
        None => None,
    })
}

/// Percentage reduction from `baseline` to `improved`.
pub fn reduction_pct(baseline: f64, improved: f64) -> f64 {
    100.0 * (baseline - improved) / baseline
}

#[cfg(test)]
mod tests {
    use super::*;
    use kaas_kernels::{MonteCarlo, Value};
    use kaas_simtime::Simulation;

    #[test]
    fn series_helpers() {
        let mut s = Series::new("a");
        s.push(1.0, 10.0);
        s.push(2.0, 20.0);
        assert_eq!(s.y_at(2.0), Some(20.0));
        assert_eq!(s.y_at(3.0), None);
        assert_eq!(s.first_y(), 10.0);
        assert_eq!(s.last_y(), 20.0);
    }

    #[test]
    fn figure_csv_contains_everything() {
        let mut f = Figure::new("figXX", "demo", "x", "y");
        let mut s = Series::new("model");
        s.push(1.0, 2.0);
        f.series.push(s);
        f.note("hello");
        let csv = f.to_csv();
        assert!(csv.contains("figXX"));
        assert!(csv.contains("series,model"));
        assert!(csv.contains("1,2.000000"));
        assert!(csv.contains("note: hello"));
    }

    #[test]
    fn p100_cluster_has_variability() {
        let cluster = p100_cluster();
        assert_eq!(cluster.len(), 4);
        let speeds: Vec<f64> = cluster
            .iter()
            .map(|d| d.as_gpu().profile().speed_factor)
            .collect();
        let max = speeds.iter().cloned().fold(f64::MIN, f64::max);
        let min = speeds.iter().cloned().fold(f64::MAX, f64::min);
        // ≈14.3 % spread (§5.6.1).
        assert!(((max - min) / max - 0.143).abs() < 0.02);
    }

    #[test]
    fn deploy_and_invoke_roundtrip() {
        let mut sim = Simulation::new();
        let out = sim.block_on(async {
            let dep = deploy(
                p100_cluster(),
                vec![Rc::new(MonteCarlo::default())],
                experiment_server_config(),
            );
            let mut client = dep.local_client().await;
            client
                .call("mci")
                .arg(Value::U64(50_000))
                .send()
                .await
                .unwrap()
        });
        assert!(matches!(out.output, Value::F64(v) if (v - 10f64.ln()).abs() < 0.2));
        assert!(out.report.cold_start);
    }

    #[test]
    fn reduction_math() {
        assert_eq!(reduction_pct(10.0, 1.0), 90.0);
        assert_eq!(reduction_pct(4.0, 4.0), 0.0);
    }
}
