//! Regenerates Figure 08 of the KaaS paper. Pass `--quick` for a
//! reduced sweep.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    for fig in kaas_bench::fig08::run(quick) {
        fig.print();
        println!();
    }
}
