//! Regenerates Figure 12 of the KaaS paper. Pass `--quick` for a
//! reduced sweep and `--dispatch=serialized|sharded` to pin the
//! dispatch engine (default: sharded).

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mode = kaas_bench::common::dispatch_mode_from_args().unwrap_or_default();
    for fig in kaas_bench::fig12::run_with(quick, mode) {
        fig.print();
        println!();
    }
}
