//! Guest-kernel cold-start benchmark: full instantiate vs snapshot
//! restore across init-table sizes, with forced cold starts. Pass
//! `--quick` for the reduced CI sweep (whose output must be
//! byte-identical run to run) and `--seed=N` to stamp the report.
//! Full runs also archive the rows to `results/coldstart.json`.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let seed = std::env::args()
        .find_map(|a| a.strip_prefix("--seed=").and_then(|s| s.parse().ok()))
        .unwrap_or(2026);
    let report = kaas_bench::coldstart::run(quick, seed);
    print!("{}", kaas_bench::coldstart::to_table(&report));
    if !quick {
        std::fs::create_dir_all("results").ok();
        std::fs::write(
            "results/coldstart.json",
            kaas_bench::coldstart::to_json(&report),
        )
        .expect("write results/coldstart.json");
        eprintln!("wrote results/coldstart.json");
    }
}
