//! Cluster-scale dispatch benchmark: the serialized router-contention
//! knee vs. the sharded+batched engine at 10⁵+ invocations. Pass
//! `--quick` for a reduced sweep (used by CI's determinism diff) and
//! `--dispatch=serialized|sharded` to run one side of the A/B alone.
//! Full A/B runs also archive the series to `results/cluster.json`.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mode = kaas_bench::common::dispatch_mode_from_args();
    let ab = mode.is_none();
    let figs = match mode {
        Some(mode) => kaas_bench::cluster::run_mode(quick, mode),
        None => kaas_bench::cluster::run(quick),
    };
    for fig in &figs {
        fig.print();
        println!();
    }
    if !quick && ab {
        std::fs::create_dir_all("results").ok();
        std::fs::write("results/cluster.json", kaas_bench::cluster::to_json(&figs))
            .expect("write results/cluster.json");
        eprintln!("wrote results/cluster.json");
    }
}
