//! Runs the device-resident data-plane experiments (GA reference reuse,
//! ResNet batch re-scoring, LRU eviction pressure). Pass `--quick` for
//! a reduced sweep.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    for fig in kaas_bench::dataplane::run(quick) {
        fig.print();
        println!();
    }
}
