//! Runs the design-choice ablations (scheduler, fusion, transport,
//! idle reaping).

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    for fig in kaas_bench::ablation::run(quick) {
        fig.print();
        println!();
    }
}
