//! Replays a synthetic diurnal serverless trace through KaaS and prints
//! latency/cold-start/energy statistics for keep-warm vs reaping.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    for fig in kaas_bench::trace_replay::run(quick) {
        fig.print();
        println!();
    }
}
