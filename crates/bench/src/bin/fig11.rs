//! Regenerates Figure 11 of the KaaS paper. Pass `--quick` for a
//! reduced sweep.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    for fig in kaas_bench::fig11::run(quick) {
        fig.print();
        println!();
    }
}
