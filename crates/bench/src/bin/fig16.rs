//! Regenerates Figure 16 of the KaaS paper. Pass `--quick` for a
//! reduced sweep.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    for fig in kaas_bench::fig16::run(quick) {
        fig.print();
        println!();
    }
}
