//! Metastable-failure chaos bench: a seeded 10× burst against a
//! near-knee dispatcher, A/B-ing the overload controls (adaptive
//! admission, bounded/ejecting queues, retry budgets, `retry_after`).
//! Pass `--quick` for the reduced timeline (used by CI's determinism
//! diff) and `--seed=N` to pick the seed. Full runs archive the A/B to
//! `results/overload.json`.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let seed = std::env::args()
        .find_map(|a| a.strip_prefix("--seed=").map(str::to_owned))
        .map(|s| s.parse().expect("--seed must be an integer"))
        .unwrap_or(7);
    let report = kaas_bench::overload::run(seed, quick);
    print!("{}", kaas_bench::overload::render(&report));
    if !quick {
        std::fs::create_dir_all("results").ok();
        std::fs::write(
            "results/overload.json",
            kaas_bench::overload::to_json(&report),
        )
        .expect("write results/overload.json");
        eprintln!("wrote results/overload.json");
    }
}
