//! Verifier fast-path benchmark: checking interpreter vs the
//! certificate-backed fast path, with costs modeled from the
//! interpreter's own instruction/check counters. Pass `--quick` for the
//! reduced CI sweep (whose output must be byte-identical run to run)
//! and `--seed=N` to reseed the input streams. Full runs also archive
//! the rows to `results/verify.json`.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let seed = std::env::args()
        .find_map(|a| a.strip_prefix("--seed=").and_then(|s| s.parse().ok()))
        .unwrap_or(2026);
    let report = kaas_bench::verify::run(quick, seed);
    print!("{}", kaas_bench::verify::to_table(&report));
    if !quick {
        std::fs::create_dir_all("results").ok();
        std::fs::write("results/verify.json", kaas_bench::verify::to_json(&report))
            .expect("write results/verify.json");
        eprintln!("wrote results/verify.json");
    }
}
