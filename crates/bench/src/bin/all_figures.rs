//! Regenerates every figure of the KaaS paper in one run. Pass
//! `--quick` for reduced sweeps.

type FigureRun = fn(bool) -> Vec<kaas_bench::common::Figure>;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let runs: Vec<(&str, FigureRun)> = vec![
        ("fig02", kaas_bench::fig02::run),
        ("fig06", kaas_bench::fig06::run),
        ("fig07", kaas_bench::fig07::run),
        ("fig08", kaas_bench::fig08::run),
        ("fig09", kaas_bench::fig09::run),
        ("fig10", kaas_bench::fig10::run),
        ("fig11", kaas_bench::fig11::run),
        ("fig12", kaas_bench::fig12::run),
        ("fig13", kaas_bench::fig13::run),
        ("fig14", kaas_bench::fig14::run),
        ("fig15", kaas_bench::fig15::run),
        ("fig16", kaas_bench::fig16::run),
        ("fig17", kaas_bench::fig17::run),
    ];
    for (name, run) in runs {
        eprintln!("== running {name} ==");
        for fig in run(quick) {
            fig.print();
            println!();
        }
    }
}
