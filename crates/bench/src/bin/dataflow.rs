//! Runs the server-side dataflow experiments (registered flow vs
//! client-driven pipelines over a remote link). Pass `--quick` for a
//! reduced sweep.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    for fig in kaas_bench::dataflow::run(quick) {
        fig.print();
        println!();
    }
}
