//! Figure 16: TPU conv2d under exclusive, shared, and KaaS use — four
//! parallel kernel instances on a v3-8 board (§5.6.3).

use std::rc::Rc;

use kaas_core::baseline::{run_space_sharing, run_time_sharing};
use kaas_core::{RoundRobin, RunnerConfig};
use kaas_kernels::{Conv2d, Value};
use kaas_simtime::{now, sleep, spawn, Simulation};

use crate::common::{
    deploy, experiment_server_config, host_cpu_profile, reduction_pct, tpu_testbed, Figure, Series,
};

/// Parallel kernel instances, per the paper.
pub const INSTANCES: usize = 4;

/// TPU usage model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TpuModel {
    /// Each execution blocks (and uses) the whole board.
    Exclusive,
    /// Each instance pins one chip; libraries import in parallel.
    Shared,
    /// Warm per-chip task runners.
    Kaas,
}

impl TpuModel {
    /// Legend label.
    pub fn label(self) -> &'static str {
        match self {
            TpuModel::Exclusive => "Exclusive",
            TpuModel::Shared => "Shared",
            TpuModel::Kaas => "KaaS",
        }
    }

    /// All models in legend order.
    pub fn all() -> [TpuModel; 3] {
        [TpuModel::Exclusive, TpuModel::Shared, TpuModel::Kaas]
    }
}

/// Mean (TPU time, total task time) over the four parallel instances.
pub fn run_model(model: TpuModel, n: u64) -> (f64, f64) {
    let mut sim = Simulation::new();
    sim.block_on(async move {
        let host = host_cpu_profile();
        let mut results: Vec<(f64, f64)> = Vec::with_capacity(INSTANCES);
        match model {
            TpuModel::Exclusive | TpuModel::Shared => {
                let tpu = tpu_testbed().remove(0);
                let mut handles = Vec::new();
                for _ in 0..INSTANCES {
                    let tpu = tpu.clone();
                    handles.push(spawn(async move {
                        let conv = Conv2d::new();
                        let r = if model == TpuModel::Exclusive {
                            run_time_sharing(&tpu, &conv, &Value::U64(n), &host).await
                        } else {
                            run_space_sharing(&tpu, &conv, &Value::U64(n), &host).await
                        }
                        .expect("valid input");
                        (r.kernel_time.as_secs_f64(), r.total.as_secs_f64())
                    }));
                }
                for h in handles {
                    results.push(h.await);
                }
            }
            TpuModel::Kaas => {
                let config = experiment_server_config()
                    .with_scheduler(RoundRobin::default())
                    .with_runner(RunnerConfig {
                        max_inflight: 1,
                        ..RunnerConfig::default()
                    });
                let dep = deploy(tpu_testbed(), vec![Rc::new(Conv2d::new())], config);
                dep.server
                    .prewarm("conv2d", INSTANCES)
                    .await
                    .expect("prewarm");
                let mut handles = Vec::new();
                for _ in 0..INSTANCES {
                    let mut client = dep.local_client().await;
                    handles.push(spawn(async move {
                        let t0 = now();
                        sleep(host_cpu_profile().python_launch).await;
                        let inv = client
                            .call("conv2d")
                            .arg(Value::U64(n))
                            .out_of_band()
                            .send()
                            .await
                            .expect("invocation succeeds");
                        (
                            inv.report.kernel_time().as_secs_f64(),
                            (now() - t0).as_secs_f64(),
                        )
                    }));
                }
                for h in handles {
                    results.push(h.await);
                }
            }
        }
        let k = results.iter().map(|r| r.0).sum::<f64>() / results.len() as f64;
        let t = results.iter().map(|r| r.1).sum::<f64>() / results.len() as f64;
        (k, t)
    })
}

/// The sweep of matrix dimensions.
pub fn sweep(quick: bool) -> Vec<u64> {
    if quick {
        vec![1000, 4096, 7000]
    } else {
        vec![1000, 2000, 3000, 4096, 5000, 6000, 7000]
    }
}

/// Reproduces Figures 16a (TPU time) and 16b (task completion).
pub fn run(quick: bool) -> Vec<Figure> {
    let sizes = sweep(quick);
    let mut fig_a = Figure::new(
        "fig16a",
        "TPU time of four parallel conv2d instances",
        "task granularity (N)",
        "TPU time (s)",
    );
    let mut fig_b = Figure::new(
        "fig16b",
        "Task completion of four parallel conv2d instances",
        "task granularity (N)",
        "task completion time (s)",
    );
    for model in TpuModel::all() {
        let mut sa = Series::new(model.label());
        let mut sb = Series::new(model.label());
        for &n in &sizes {
            let (k, t) = run_model(model, n);
            sa.push(n as f64, k);
            sb.push(n as f64, t);
        }
        fig_a.series.push(sa);
        fig_b.series.push(sb);
    }
    let ex_k = fig_a.series("Exclusive").unwrap().first_y();
    let ka_k = fig_a.series("KaaS").unwrap().first_y();
    fig_a.note(format!(
        "KaaS cuts TPU time by {:.1}% at N=1000 (paper: 81.3–99.6% across sizes)",
        reduction_pct(ex_k, ka_k)
    ));
    let ex_t = fig_b.series("Exclusive").unwrap().last_y();
    let ka_t = fig_b.series("KaaS").unwrap().last_y();
    fig_b.note(format!(
        "KaaS cuts task completion by {:.1}% at N=7000 (paper: 95.9–98.6%)",
        reduction_pct(ex_t, ka_t)
    ));
    vec![fig_a, fig_b]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kaas_tpu_time_reduction_in_paper_band() {
        for n in [1000, 7000] {
            let (ex, _) = run_model(TpuModel::Exclusive, n);
            let (ka, _) = run_model(TpuModel::Kaas, n);
            let red = reduction_pct(ex, ka);
            assert!(
                (60.0..99.9).contains(&red),
                "TPU-time reduction {red}% at N={n} (paper: 81.3–99.6%)"
            );
        }
    }

    #[test]
    fn kaas_task_completion_reduction_in_paper_band() {
        let (_, ex) = run_model(TpuModel::Exclusive, 4096);
        let (_, ka) = run_model(TpuModel::Kaas, 4096);
        let red = reduction_pct(ex, ka);
        assert!(
            (90.0..99.5).contains(&red),
            "task reduction {red}% (paper: 95.9–98.6%)"
        );
    }

    #[test]
    fn exclusive_kernel_beats_shared_kernel() {
        // Whole-board execution is faster per kernel than one chip.
        let (ex, _) = run_model(TpuModel::Exclusive, 4096);
        let (sh, _) = run_model(TpuModel::Shared, 4096);
        // Both pay XLA compile; exclusive computes 4× faster.
        assert!(ex < sh, "exclusive {ex} !< shared {sh}");
    }

    #[test]
    fn exclusive_total_time_is_worst() {
        // Serialized TensorFlow imports dominate the exclusive totals.
        let (_, ex) = run_model(TpuModel::Exclusive, 2000);
        let (_, sh) = run_model(TpuModel::Shared, 2000);
        let (_, ka) = run_model(TpuModel::Kaas, 2000);
        assert!(ex > sh, "exclusive {ex} !> shared {sh}");
        assert!(sh > ka, "shared {sh} !> kaas {ka}");
    }

    #[test]
    fn tpu_time_is_non_monotone_in_n() {
        // The TensorFlow algorithm-selection effect (Fig. 16a).
        let ks: Vec<f64> = [1000u64, 2000, 3000, 4096, 5000]
            .iter()
            .map(|&n| run_model(TpuModel::Kaas, n).0)
            .collect();
        let inc = ks.windows(2).all(|w| w[1] >= w[0]);
        let dec = ks.windows(2).all(|w| w[1] <= w[0]);
        assert!(!inc && !dec, "TPU time should be non-monotone: {ks:?}");
    }
}
