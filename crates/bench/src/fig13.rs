//! Figure 13: autoscaling KaaS across eight GPUs under a growing number
//! of parallel clients (§5.5): one new client every ten seconds, four
//! in-flight tasks per runner, new runners started on fresh GPUs on
//! demand.

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

use kaas_core::{DispatchMode, FillFirst, RunnerConfig};
use kaas_simtime::{now, sleep, spawn, Simulation};

use crate::common::{deploy, experiment_server_config, v100_cluster, Figure, Series};
use crate::fig06::mm_input;

/// One sample of the experiment's time series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimelineSample {
    /// Experiment time (s).
    pub t: f64,
    /// Active parallel clients.
    pub clients: usize,
    /// Task runners started so far.
    pub runners: usize,
    /// Aggregate GPU utilization in percent (0–800 for eight GPUs).
    pub gpu_utilization_pct: f64,
    /// Mean completion time of tasks finished in the last window (s).
    pub task_completion: f64,
}

/// Runs the autoscaling experiment for `duration_s` of simulated time,
/// adding a client every `ramp_s` seconds; samples once per second.
/// Uses the default (sharded) dispatcher.
pub fn run_timeline(duration_s: u64, ramp_s: u64) -> Vec<TimelineSample> {
    run_timeline_with(duration_s, ramp_s, DispatchMode::default())
}

/// [`run_timeline`] with an explicit dispatch engine (the
/// `--dispatch=serialized` CLI flag keeps the historical baseline
/// reproducible).
pub fn run_timeline_with(duration_s: u64, ramp_s: u64, mode: DispatchMode) -> Vec<TimelineSample> {
    let mut sim = Simulation::new();
    sim.block_on(async move {
        let config = experiment_server_config()
            .with_scheduler(FillFirst)
            .with_autoscale(true)
            .with_dispatch(mode)
            .with_runner(RunnerConfig {
                max_inflight: 4,
                ..RunnerConfig::default()
            });
        let dep = deploy(
            v100_cluster(8),
            vec![Rc::new(kaas_kernels::MatMul::new())],
            config,
        );
        let clients_active = Rc::new(RefCell::new(0usize));
        let completions: Rc<RefCell<Vec<(f64, f64)>>> = Rc::new(RefCell::new(Vec::new()));

        // Client spawner: one new looping client every ramp_s seconds.
        {
            let dep_net = dep.net.clone();
            let shm = dep.shm.clone();
            let clients_active = Rc::clone(&clients_active);
            let completions = Rc::clone(&completions);
            let end = now() + Duration::from_secs(duration_s);
            spawn(async move {
                loop {
                    if now() >= end {
                        break;
                    }
                    let clients_active2 = Rc::clone(&clients_active);
                    let completions2 = Rc::clone(&completions);
                    let net = dep_net.clone();
                    let shm = shm.clone();
                    *clients_active.borrow_mut() += 1;
                    spawn(async move {
                        let mut client = kaas_core::KaasClient::connect(
                            &net,
                            crate::common::KAAS_ADDR,
                            kaas_net::LinkProfile::loopback(),
                        )
                        .await
                        .expect("server listening")
                        .with_shared_memory(shm)
                        .with_serialization(kaas_net::SerializationProfile::numpy());
                        loop {
                            if now() >= end {
                                break;
                            }
                            let t0 = now();
                            if client
                                .call("matmul")
                                .arg(mm_input(10_000))
                                .out_of_band()
                                .send()
                                .await
                                .is_err()
                            {
                                break;
                            }
                            completions2
                                .borrow_mut()
                                .push((now().as_secs_f64(), (now() - t0).as_secs_f64()));
                            // Client-side turnaround: receive, log, and
                            // prepare the next invocation (§5.5: "some
                            // work ... is done on the client").
                            sleep(Duration::from_millis(500)).await;
                        }
                        *clients_active2.borrow_mut() -= 1;
                    });
                    sleep(Duration::from_secs(ramp_s)).await;
                }
            });
        }

        // Sampler: once per simulated second.
        let mut samples = Vec::with_capacity(duration_s as usize);
        let mut done_idx = 0usize;
        for t in 1..=duration_s {
            sleep(Duration::from_secs(1)).await;
            let gpu_util: f64 = dep
                .server
                .devices()
                .iter()
                .map(|d| d.as_gpu().utilization() * 100.0)
                .sum();
            let comp = completions.borrow();
            let recent = &comp[done_idx.min(comp.len())..];
            let task_completion = if recent.is_empty() {
                samples
                    .last()
                    .map(|s: &TimelineSample| s.task_completion)
                    .unwrap_or(0.0)
            } else {
                recent.iter().map(|&(_, d)| d).sum::<f64>() / recent.len() as f64
            };
            done_idx = comp.len();
            samples.push(TimelineSample {
                t: t as f64,
                clients: *clients_active.borrow(),
                runners: dep.server.snapshot().runners("matmul"),
                gpu_utilization_pct: gpu_util,
                task_completion,
            });
        }
        samples
    })
}

/// Reproduces Figure 13 (full run: 300 s, one client per 10 s).
pub fn run(quick: bool) -> Vec<Figure> {
    run_with(quick, DispatchMode::default())
}

/// [`run`] under an explicit dispatch engine
/// (`--bin fig13 -- --dispatch=serialized` for the A/B baseline).
pub fn run_with(quick: bool, mode: DispatchMode) -> Vec<Figure> {
    let (duration, ramp) = if quick { (120, 10) } else { (300, 10) };
    let samples = run_timeline_with(duration, ramp, mode);
    let mut fig = Figure::new(
        "fig13",
        "Autoscaling task runners under a growing client count",
        "experiment time (s)",
        "see series (clients / runners / GPU % / completion s)",
    );
    let mut clients = Series::new("Number of Clients");
    let mut runners = Series::new("Number of Task Runners");
    let mut util = Series::new("GPU Utilization (%)");
    let mut completion = Series::new("Task Completion Time (s)");
    for s in &samples {
        clients.push(s.t, s.clients as f64);
        runners.push(s.t, s.runners as f64);
        util.push(s.t, s.gpu_utilization_pct);
        completion.push(s.t, s.task_completion);
    }
    let final_clients = clients.last_y();
    let final_runners = runners.last_y();
    fig.note(format!(
        "{final_clients} clients served by {final_runners} runners at t={duration}s \
         (paper: 32 clients on 7 runners — client turnaround lets runners \
         oversubscribe their nominal 4-in-flight cap)"
    ));
    fig.series = vec![clients, runners, util, completion];
    vec![fig]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runners_scale_with_demand() {
        let samples = run_timeline(120, 10);
        let early = &samples[14];
        let late = samples.last().unwrap();
        assert!(late.clients > early.clients);
        assert!(
            late.runners > early.runners,
            "runners should grow: early {early:?}, late {late:?}"
        );
        // Fewer runners than clients: each handles several in flight.
        assert!(late.runners < late.clients);
    }

    #[test]
    fn completion_time_stays_steady() {
        let samples = run_timeline(150, 10);
        let mid: Vec<f64> = samples[40..]
            .iter()
            .map(|s| s.task_completion)
            .filter(|&c| c > 0.0)
            .collect();
        let max = mid.iter().cloned().fold(f64::MIN, f64::max);
        let min = mid.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            max / min < 2.0,
            "completion time should stay steady: {min:.2}–{max:.2} s"
        );
    }

    #[test]
    fn utilization_grows_with_runners() {
        let samples = run_timeline(120, 10);
        let early = samples[20].gpu_utilization_pct;
        let late = samples.last().unwrap().gpu_utilization_pct;
        assert!(late > early, "util should grow: {early} → {late}");
        assert!(late <= 800.0 + 1e-9);
    }

    #[test]
    fn runners_never_exceed_gpus() {
        let samples = run_timeline(120, 5);
        for s in &samples {
            assert!(s.runners <= 8, "{s:?}");
        }
    }
}
