//! Data-plane benchmark: repeated-argument workloads with and without
//! device-resident operands.
//!
//! The paper's out-of-band path (§4.1) removes serialization but not
//! the host→device copy: iterative workloads — the Fig. 11 GA shipping
//! its population every generation, ResNet batches re-scoring the same
//! evaluation set — re-upload identical bytes on every invocation. The
//! `kaas-core` data plane stores the operand once (`put` + `seal`),
//! passes a 24-byte content address (`arg_ref`), and serves repeat
//! invocations from device memory with zero `copy_in`.
//!
//! Three experiments:
//!
//! 1. **GA, 10 generations** against a fixed reference population —
//!    total task time per transfer mode, over population size.
//! 2. **ResNet-50 batch re-scoring** — mean per-invocation latency as
//!    the same batch is re-scored K times (the upload amortizes).
//! 3. **Eviction pressure** — hit rate as the round-robin working set
//!    grows past device memory (a capacity-limited GPU), with the
//!    eviction count alongside.

use std::rc::Rc;
use std::time::Duration;

use kaas_accel::{Device, DeviceId, GpuDevice, GpuProfile};
use kaas_core::{InvokeError, KaasClient};
use kaas_kernels::{GaGeneration, Kernel, ResNet50, Value, GENERATIONS, IMAGE_BYTES};
use kaas_simtime::{now, Simulation};

use crate::common::{deploy, experiment_server_config, p100_cluster, Figure, Series};

/// How the repeated operand travels to the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transfer {
    /// Serialized with the request on every invocation.
    InBand,
    /// Through shared memory on every invocation (no serialization,
    /// full host→device copy each time).
    OutOfBand,
    /// Stored once in the object store, sealed, and referenced by
    /// content address; resident in device memory after the first use.
    DataPlaneRef,
}

impl Transfer {
    /// Legend label.
    pub fn label(self) -> &'static str {
        match self {
            Transfer::InBand => "Local (in-band)",
            Transfer::OutOfBand => "Local (out-of-band)",
            Transfer::DataPlaneRef => "Data plane (arg_ref)",
        }
    }

    /// All modes in legend order.
    pub fn all() -> [Transfer; 3] {
        [
            Transfer::InBand,
            Transfer::OutOfBand,
            Transfer::DataPlaneRef,
        ]
    }
}

/// Invokes `kernel` `repeats` times with the same operand under the
/// given transfer mode, returning (total seconds, summed `copy_in`).
async fn repeat_invoke(
    client: &mut KaasClient,
    kernel: &str,
    operand: Value,
    repeats: usize,
    transfer: Transfer,
) -> Result<(f64, Duration), InvokeError> {
    let t0 = now();
    let mut copy_in = Duration::ZERO;
    let r = match transfer {
        Transfer::DataPlaneRef => {
            let r = client.put(operand.clone()).await?;
            client.seal(r).await?;
            Some(r)
        }
        _ => None,
    };
    for _ in 0..repeats {
        let inv = match transfer {
            Transfer::InBand => client.call(kernel).arg(operand.clone()).send().await?,
            Transfer::OutOfBand => {
                client
                    .call(kernel)
                    .arg(operand.clone())
                    .out_of_band()
                    .send()
                    .await?
            }
            // `.out_of_band()` on a ref call returns the (large) output
            // through shared memory, matching the OutOfBand baseline.
            Transfer::DataPlaneRef => {
                client
                    .call(kernel)
                    .arg_ref(r.unwrap())
                    .out_of_band()
                    .send()
                    .await?
            }
        };
        copy_in += inv.report.copy_in;
    }
    Ok(((now() - t0).as_secs_f64(), copy_in))
}

/// Ten GA generations against a fixed reference population of size `n`:
/// total task time for one transfer mode.
pub fn run_ga(transfer: Transfer, n: u64) -> (f64, Duration) {
    let mut sim = Simulation::new();
    sim.block_on(async move {
        let dep = deploy(
            p100_cluster(),
            vec![Rc::new(GaGeneration::default()) as Rc<dyn Kernel>],
            experiment_server_config(),
        );
        dep.server.prewarm("ga", 1).await.expect("prewarm");
        let mut client = dep.local_client().await;
        repeat_invoke(
            &mut client,
            "ga",
            Value::U64(n),
            GENERATIONS as usize,
            transfer,
        )
        .await
        .expect("ga runs")
    })
}

/// Re-scores one fixed 8-image ResNet batch `repeats` times: mean
/// per-invocation latency (ms) for one transfer mode.
pub fn run_resnet(transfer: Transfer, repeats: usize) -> f64 {
    let mut sim = Simulation::new();
    sim.block_on(async move {
        let dep = deploy(
            p100_cluster(),
            vec![Rc::new(ResNet50::new()) as Rc<dyn Kernel>],
            experiment_server_config(),
        );
        dep.server.prewarm("resnet50", 1).await.expect("prewarm");
        let mut client = dep.local_client().await;
        // The batch as a sized envelope: eight preprocessed images.
        let batch = Value::sized(8 * IMAGE_BYTES, Value::U64(8));
        let (total, _) = repeat_invoke(&mut client, "resnet50", batch, repeats, transfer)
            .await
            .expect("resnet runs");
        total * 1e3 / repeats as f64
    })
}

/// Round-robin over `objects` distinct sealed operands on a GPU that
/// holds at most [`EVICT_CAPACITY_OBJECTS`] of them: returns
/// (hit rate, evictions) over `rounds` full cycles.
pub fn run_eviction(objects: usize, rounds: usize) -> (f64, u64) {
    let mut sim = Simulation::new();
    sim.block_on(async move {
        // Every operand is a 2 MiB reference matrix; the device holds
        // four (8 MiB + a little).
        const OBJ_BYTES: u64 = 2 << 20;
        let gpu: Device = GpuDevice::new(
            DeviceId(0),
            GpuProfile {
                mem_bytes: EVICT_CAPACITY_OBJECTS * OBJ_BYTES + (OBJ_BYTES / 2),
                ..GpuProfile::p100()
            },
        )
        .into();
        let dep = deploy(
            vec![gpu],
            vec![Rc::new(GaGeneration::default()) as Rc<dyn Kernel>],
            experiment_server_config(),
        );
        dep.server.prewarm("ga", 1).await.expect("prewarm");
        let mut client = dep.local_client().await;
        let mut refs = Vec::new();
        for i in 0..objects {
            // Distinct content, identical cost: same declared size,
            // different population seed.
            let r = client
                .put(Value::sized(OBJ_BYTES, Value::U64(1024 + i as u64)))
                .await
                .expect("put");
            client.seal(r).await.expect("seal");
            refs.push(r);
        }
        for _ in 0..rounds {
            for r in &refs {
                client.call("ga").arg_ref(*r).send().await.expect("ga runs");
            }
        }
        let m = dep.server.metrics_registry();
        let hits = m.counter("dataplane.hits") as f64;
        let misses = m.counter("dataplane.misses") as f64;
        (hits / (hits + misses), m.counter("dataplane.evictions"))
    })
}

/// Device capacity of the eviction experiment, in operands.
pub const EVICT_CAPACITY_OBJECTS: u64 = 4;

/// Runs the three data-plane experiments.
pub fn run(quick: bool) -> Vec<Figure> {
    let mut figures = Vec::new();

    // 1. GA: 10 generations, fixed reference population.
    let sizes: &[u64] = if quick {
        &[512, 4096]
    } else {
        &[128, 512, 2048, 4096, 8192]
    };
    let mut ga = Figure::new(
        "dataplane-ga",
        "GA, 10 generations on a fixed reference population",
        "population size N",
        "task completion time (s)",
    );
    let mut ga_ref_copy_in = Duration::ZERO;
    for transfer in Transfer::all() {
        let mut series = Series::new(transfer.label());
        for &n in sizes {
            let (total, copy_in) = run_ga(transfer, n);
            series.push(n as f64, total);
            if transfer == Transfer::DataPlaneRef {
                ga_ref_copy_in = copy_in;
            }
        }
        ga.series.push(series);
    }
    let oob = ga.series(Transfer::OutOfBand.label()).unwrap().last_y();
    let dp = ga.series(Transfer::DataPlaneRef.label()).unwrap().last_y();
    ga.note(format!(
        "arg_ref removes {:.1}% of the out-of-band task time at N={} \
         (1 upload, {} cache hits)",
        crate::common::reduction_pct(oob, dp),
        sizes.last().unwrap(),
        GENERATIONS - 1,
    ));
    ga.note(format!(
        "total copy_in across 10 ref generations: {:.3} ms (miss upload only)",
        ga_ref_copy_in.as_secs_f64() * 1e3
    ));
    figures.push(ga);

    // 2. ResNet: amortization of the one-time upload.
    let repeat_counts: &[usize] = if quick {
        &[1, 8, 32]
    } else {
        &[1, 2, 4, 8, 16, 32, 64]
    };
    let mut rn = Figure::new(
        "dataplane-resnet",
        "ResNet-50: re-scoring one 8-image batch",
        "invocations of the same batch",
        "mean per-invocation latency (ms)",
    );
    for transfer in [Transfer::OutOfBand, Transfer::DataPlaneRef] {
        let mut series = Series::new(transfer.label());
        for &k in repeat_counts {
            series.push(k as f64, run_resnet(transfer, k));
        }
        rn.series.push(series);
    }
    let oob1 = rn.series(Transfer::OutOfBand.label()).unwrap().last_y();
    let dp1 = rn.series(Transfer::DataPlaneRef.label()).unwrap().last_y();
    rn.note(format!(
        "steady-state per-batch latency drops {:.1}% once the batch is resident",
        crate::common::reduction_pct(oob1, dp1)
    ));
    figures.push(rn);

    // 3. Eviction: hit rate over working-set size.
    let rounds = if quick { 3 } else { 8 };
    let set_sizes: &[usize] = if quick {
        &[2, 4, 6]
    } else {
        &[1, 2, 3, 4, 5, 6, 8]
    };
    let mut ev = Figure::new(
        "dataplane-evict",
        "LRU eviction under working-set pressure (device holds 4 operands)",
        "distinct operands in round-robin",
        "cache hit rate",
    );
    let mut hit_series = Series::new("hit rate");
    let mut evict_series = Series::new("evictions");
    for &objects in set_sizes {
        let (hit_rate, evictions) = run_eviction(objects, rounds);
        hit_series.push(objects as f64, hit_rate);
        evict_series.push(objects as f64, evictions as f64);
    }
    ev.series.push(hit_series);
    ev.series.push(evict_series);
    ev.note(format!(
        "within capacity the steady-state hit rate is 1; past {} operands \
         round-robin + LRU thrashes to 0 with every access a miss+eviction",
        EVICT_CAPACITY_OBJECTS
    ));
    figures.push(ev);

    figures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ref_path_beats_oob_for_iterative_ga() {
        let (oob, oob_copy) = run_ga(Transfer::OutOfBand, 4096);
        let (dp, dp_copy) = run_ga(Transfer::DataPlaneRef, 4096);
        assert!(dp < oob, "arg_ref {dp}s must beat out-of-band {oob}s");
        // Nine of ten copies are eliminated (only the upload remains).
        assert!(
            dp_copy < oob_copy / 5,
            "ref copy_in {dp_copy:?} vs oob {oob_copy:?}"
        );
    }

    #[test]
    fn resnet_upload_amortizes() {
        let single = run_resnet(Transfer::DataPlaneRef, 1);
        let steady = run_resnet(Transfer::DataPlaneRef, 32);
        let oob = run_resnet(Transfer::OutOfBand, 32);
        assert!(
            steady < single,
            "mean latency must fall as the upload amortizes"
        );
        assert!(steady < oob, "resident batch must beat per-call copies");
    }

    #[test]
    fn eviction_kicks_in_past_capacity() {
        let (fit_rate, fit_evictions) = run_eviction(EVICT_CAPACITY_OBJECTS as usize, 3);
        let (over_rate, over_evictions) = run_eviction(EVICT_CAPACITY_OBJECTS as usize + 2, 3);
        assert_eq!(fit_evictions, 0, "a fitting working set never evicts");
        assert!(fit_rate > 0.6, "fitting set mostly hits: {fit_rate}");
        assert!(over_evictions > 0, "over-capacity set must evict");
        assert!(over_rate < fit_rate, "thrashing must hurt the hit rate");
    }

    #[test]
    fn quick_run_is_deterministic() {
        let csv = |figs: Vec<Figure>| {
            figs.iter()
                .map(|f| f.to_csv())
                .collect::<Vec<_>>()
                .join("\n")
        };
        let a = csv(run(true));
        let b = csv(run(true));
        assert_eq!(a, b, "bench must replay byte-identically");
    }
}
