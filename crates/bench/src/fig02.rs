//! Figure 2: the motivating example — the Fig. 1 image workflow
//! (preprocessing → bitmap conversion → ML inference) executed CPU-only
//! vs. with naive accelerator use, with a per-component breakdown.
//!
//! Testbed per the paper: two 10-core Xeon E5-2650 v3, an Alveo U250,
//! and an A100 80 GB. Naively using the accelerators (fresh runtimes and
//! contexts per task) makes the workflow *slower* than CPU-only: "copying
//! data and running the kernel accounts for only 75.9 % (FPGA) and 1.7 %
//! (GPU) task completion time".

use kaas_accel::{
    CpuDevice, CpuProfile, Device, DeviceId, FpgaDevice, FpgaProfile, GpuDevice, GpuProfile,
};
use kaas_core::baseline::{run_cpu_only, run_time_sharing};
use kaas_kernels::{BitmapConversion, Kernel, Preprocess, ResNet50, Value};
use kaas_simtime::Simulation;

use crate::common::{Figure, Series};

/// One breakdown component of the stacked bar.
#[derive(Debug, Clone, PartialEq)]
pub struct Component {
    /// Pipeline stage ("Preprocess", "Bitmap", "Inference").
    pub stage: &'static str,
    /// Component label (e.g. "FPGA Init", "Kernel Run").
    pub label: &'static str,
    /// Seconds spent.
    pub seconds: f64,
}

/// The motivating 4K frame (pixels of the Fig. 1 input image).
const FRAME_PIXELS: u64 = 3840 * 2160;

fn testbed() -> (CpuDevice, Device, Device) {
    let cpu = CpuDevice::new(DeviceId(0), CpuProfile::xeon_e5_2650v3_dual());
    let fpga: Device = FpgaDevice::new(DeviceId(1), FpgaProfile::alveo_u250()).into();
    let gpu: Device = GpuDevice::new(DeviceId(2), GpuProfile::a100()).into();
    (cpu, fpga, gpu)
}

/// Runs the three-stage workflow CPU-only; returns per-stage components.
pub fn cpu_only_breakdown() -> Vec<Component> {
    let mut sim = Simulation::new();
    sim.block_on(async move {
        let (cpu, _, _) = testbed();
        let mut out = Vec::new();
        for (stage, kernel, input) in stages() {
            let r = run_cpu_only(&cpu, kernel.as_ref(), &input)
                .await
                .expect("valid");
            out.push(Component {
                stage,
                label: "App. Init",
                seconds: (r.total - r.kernel_time).as_secs_f64(),
            });
            out.push(Component {
                stage,
                label: "Kernel Run",
                seconds: r.kernel_time.as_secs_f64(),
            });
        }
        out
    })
}

fn stages() -> Vec<(&'static str, std::rc::Rc<dyn Kernel>, Value)> {
    vec![
        (
            "Preprocess",
            std::rc::Rc::new(Preprocess::new()) as std::rc::Rc<dyn Kernel>,
            Value::U64(FRAME_PIXELS),
        ),
        (
            "Bitmap",
            std::rc::Rc::new(BitmapConversion::default()),
            // The bitmap task converts a short burst of frames, so the
            // pipeline (copy + kernel) dominates its stage as in the
            // paper ("75.9% ... task completion time").
            Value::U64(4 * FRAME_PIXELS),
        ),
        (
            "Inference",
            std::rc::Rc::new(ResNet50::new()),
            Value::U64(1),
        ),
    ]
}

/// Runs the workflow with naive accelerator use; returns components.
pub fn accelerator_breakdown() -> Vec<Component> {
    let mut sim = Simulation::new();
    sim.block_on(async move {
        let (cpu, fpga, gpu) = testbed();
        let host = *cpu.profile();
        let mut out = Vec::new();

        // Stage 1: preprocessing stays on the CPU.
        let stages_list = stages();
        let (_, preprocess, pre_in) = &stages_list[0];
        let r = run_cpu_only(&cpu, preprocess.as_ref(), pre_in)
            .await
            .expect("valid");
        out.push(Component {
            stage: "Preprocess",
            label: "App. Init",
            seconds: (r.total - r.kernel_time).as_secs_f64(),
        });
        out.push(Component {
            stage: "Preprocess",
            label: "Kernel Run",
            seconds: r.kernel_time.as_secs_f64(),
        });

        // Stage 2: bitmap conversion on the FPGA (fresh PYNQ runtime).
        let (_, bitmap, bm_in) = &stages_list[1];
        let r = run_time_sharing(&fpga, bitmap.as_ref(), bm_in, &host)
            .await
            .expect("valid");
        out.push(Component {
            stage: "Bitmap",
            label: "FPGA Init",
            seconds: (r.total - r.kernel_time).as_secs_f64(),
        });
        out.push(Component {
            stage: "Bitmap",
            label: "Kernel Run",
            seconds: r.kernel_time.as_secs_f64(),
        });

        // Stage 3: inference on the GPU (fresh CUDA context).
        let (_, resnet, inf_in) = &stages_list[2];
        let r = run_time_sharing(&gpu, resnet.as_ref(), inf_in, &host)
            .await
            .expect("valid");
        out.push(Component {
            stage: "Inference",
            label: "GPU Init",
            seconds: (r.total - r.kernel_time - r.device_init).as_secs_f64(),
        });
        out.push(Component {
            stage: "Inference",
            label: "CUDA Init",
            seconds: r.device_init.as_secs_f64(),
        });
        out.push(Component {
            stage: "Inference",
            label: "Kernel Run",
            seconds: r.kernel_time.as_secs_f64(),
        });
        out
    })
}

/// Reproduces Figure 2 (stacked-bar data as series of components).
pub fn run(_quick: bool) -> Vec<Figure> {
    let mut fig = Figure::new(
        "fig02",
        "Motivating workflow: CPU-only vs naive accelerator use",
        "component index",
        "time (s)",
    );
    let cpu = cpu_only_breakdown();
    let accel = accelerator_breakdown();
    let mut s_cpu = Series::new("CPU-only");
    for (i, c) in cpu.iter().enumerate() {
        s_cpu.push(i as f64, c.seconds);
    }
    let mut s_accel = Series::new("Accelerator");
    for (i, c) in accel.iter().enumerate() {
        s_accel.push(i as f64, c.seconds);
    }
    let cpu_total: f64 = cpu.iter().map(|c| c.seconds).sum();
    let accel_total: f64 = accel.iter().map(|c| c.seconds).sum();
    let gpu_stage: f64 = accel
        .iter()
        .filter(|c| c.stage == "Inference")
        .map(|c| c.seconds)
        .sum();
    let gpu_kernel: f64 = accel
        .iter()
        .filter(|c| c.stage == "Inference" && c.label == "Kernel Run")
        .map(|c| c.seconds)
        .sum();
    fig.note(format!(
        "CPU-only total {cpu_total:.2}s vs accelerator total {accel_total:.2}s \
         (paper: accelerators are slower end-to-end)"
    ));
    fig.note(format!(
        "GPU kernel is {:.1}% of its stage (paper: 1.7%)",
        100.0 * gpu_kernel / gpu_stage
    ));
    for c in accel {
        fig.note(format!(
            "accel {} / {}: {:.3}s",
            c.stage, c.label, c.seconds
        ));
    }
    fig.series = vec![s_cpu, s_accel];
    vec![fig]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_accelerator_use_is_slower_than_cpu_only() {
        let cpu: f64 = cpu_only_breakdown().iter().map(|c| c.seconds).sum();
        let accel: f64 = accelerator_breakdown().iter().map(|c| c.seconds).sum();
        assert!(
            accel > cpu,
            "naive accelerator use ({accel:.2}s) must lose to CPU-only ({cpu:.2}s)"
        );
    }

    #[test]
    fn gpu_kernel_fraction_is_tiny() {
        let accel = accelerator_breakdown();
        let stage: f64 = accel
            .iter()
            .filter(|c| c.stage == "Inference")
            .map(|c| c.seconds)
            .sum();
        let kernel: f64 = accel
            .iter()
            .filter(|c| c.stage == "Inference" && c.label == "Kernel Run")
            .map(|c| c.seconds)
            .sum();
        let frac = kernel / stage;
        // Paper: 1.7 % of GPU task completion is copy+kernel.
        assert!(frac < 0.1, "GPU kernel fraction {frac} (paper: 0.017)");
    }

    #[test]
    fn fpga_kernel_fraction_is_dominant_but_not_all() {
        let accel = accelerator_breakdown();
        let stage: f64 = accel
            .iter()
            .filter(|c| c.stage == "Bitmap")
            .map(|c| c.seconds)
            .sum();
        let kernel: f64 = accel
            .iter()
            .filter(|c| c.stage == "Bitmap" && c.label == "Kernel Run")
            .map(|c| c.seconds)
            .sum();
        let frac = kernel / stage;
        // Paper: 75.9 % of FPGA task completion is copy+kernel.
        assert!((0.2..0.9).contains(&frac), "FPGA kernel fraction {frac}");
    }
}
