//! # kaas-bench — the figure-reproduction harness
//!
//! One module per figure of the KaaS paper's evaluation (§5). Each
//! exposes `run(quick) -> Vec<Figure>`; the matching binary prints the
//! series as commented CSV. `quick` trims sweeps for CI; binaries run
//! the full parameter grids.

#![warn(missing_docs)]

pub mod ablation;
pub mod cluster;
pub mod coldstart;
pub mod common;
pub mod dataflow;
pub mod dataplane;
pub mod fig02;
pub mod fig06;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod overload;
pub mod sharing;
pub mod trace_replay;
pub mod verify;
