//! Verifier fast-path benchmark: the checking interpreter vs the
//! certificate-backed fast path on the same programs and inputs.
//!
//! Wall-clock time is banned in the deterministic crates (and CI diffs
//! two same-seed runs byte for byte), so the bench models per-invocation
//! cost from the interpreter's own [`RunStats`] counters: every retired
//! instruction costs [`OP_NS`] and every dynamic type/underflow check
//! costs [`CHECK_NS`]. The fast path executes the same instruction
//! stream with `checks = 0` — the verifier discharged them at
//! registration — so the modeled speedup isolates exactly the work the
//! certificate removes. Outputs, traps, and fuel are asserted identical
//! on both paths for every invocation, making the sweep a differential
//! check as well as a benchmark.

use kaas_accel::DeviceClass;
use kaas_guest::{verify, FuelBound, GuestProgram, InputClass, Instance, Op, RunStats};
use kaas_kernels::Value;
use kaas_simtime::rng::DetRng;
use std::rc::Rc;

/// Modeled cost of retiring one instruction, nanoseconds.
pub const OP_NS: u64 = 6;
/// Modeled cost of one dynamic type/underflow check, nanoseconds.
pub const CHECK_NS: u64 = 2;

/// One benched program: modeled checking-path vs fast-path cost.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyRun {
    /// Program label.
    pub program: &'static str,
    /// The input class every invocation used (all verify `Clean`).
    pub class: &'static str,
    /// The verifier's worst-case fuel verdict, rendered.
    pub fuel_bound: String,
    /// Invocations measured.
    pub invocations: u64,
    /// Instructions retired across all invocations (identical on both
    /// paths).
    pub ops: u64,
    /// Dynamic checks the checking path performed (the fast path's is
    /// zero by construction).
    pub checks: u64,
    /// Modeled checking-path cost, microseconds.
    pub checked_us: f64,
    /// Modeled fast-path cost, microseconds.
    pub fast_us: f64,
}

impl VerifyRun {
    /// How many times cheaper the fast path is.
    pub fn speedup(&self) -> f64 {
        self.checked_us / self.fast_us
    }
}

/// The whole sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyReport {
    /// The input-stream seed.
    pub seed: u64,
    /// One row per benched program.
    pub runs: Vec<VerifyRun>,
}

/// A benched program plus its per-invocation input generator.
struct Case {
    label: &'static str,
    program: GuestProgram,
    input: fn(&mut DetRng) -> Value,
}

fn cases() -> Vec<Case> {
    let prog = |name: &str, fuel: u64, body: Vec<Op>| {
        GuestProgram::new(name, DeviceClass::Cpu)
            .with_fuel(fuel)
            .with_body(body)
    };
    vec![
        // Scalar loop: count the u64 input down to zero.
        Case {
            label: "countdown",
            program: prog(
                "countdown",
                1 << 16,
                vec![
                    Op::Input,
                    Op::Dup,
                    Op::JumpIfZero(6),
                    Op::PushU(1),
                    Op::Sub,
                    Op::Jump(1),
                    Op::Return,
                ],
            ),
            input: |rng| Value::U64(rng.gen_range(16u64..96)),
        },
        // Loop-free float polynomial: x*x + 3x + 1.
        Case {
            label: "poly",
            program: prog(
                "poly",
                1 << 16,
                vec![
                    Op::Input,
                    Op::Dup,
                    Op::Mul,
                    Op::Input,
                    Op::PushF(3.0),
                    Op::Mul,
                    Op::Add,
                    Op::PushF(1.0),
                    Op::Add,
                    Op::Return,
                ],
            ),
            input: |rng| Value::F64(rng.gen_range(-4.0..4.0)),
        },
        // Vector pipeline over the input vector.
        Case {
            label: "pipeline",
            program: prog(
                "pipeline",
                1 << 20,
                vec![
                    Op::Input,
                    Op::PushF(2.5),
                    Op::VecScale,
                    Op::Input,
                    Op::VecAdd,
                    Op::VecSum,
                    Op::Return,
                ],
            ),
            input: |rng| {
                let n = rng.gen_range(8usize..64);
                Value::F64s((0..n).map(|_| rng.gen_range(-1.0..1.0)).collect())
            },
        },
        // Dot product against an init-built table.
        Case {
            label: "table-dot",
            program: GuestProgram::new("table-dot", DeviceClass::Cpu)
                .with_fuel(1 << 20)
                .with_init(
                    1,
                    vec![Op::PushU(32), Op::PushF(0.5), Op::VecFill, Op::SetGlobal(0)],
                )
                .with_body(vec![Op::Global(0), Op::Input, Op::VecDot, Op::Return]),
            input: |rng| Value::F64s((0..32).map(|_| rng.gen_range(-1.0..1.0)).collect()),
        },
        // Branchy scalar control flow over a u64 input.
        Case {
            label: "branchy",
            program: prog(
                "branchy",
                1 << 16,
                vec![
                    Op::Input,         // 0
                    Op::PushU(2),      // 1
                    Op::Rem,           // 2: parity
                    Op::JumpIfZero(7), // 3
                    Op::Input,         // 4: odd: 3n + 1
                    Op::PushU(3),      // 5
                    Op::Jump(9),       // 6
                    Op::Input,         // 7: even: n * 1
                    Op::PushU(1),      // 8
                    Op::Mul,           // 9
                    Op::PushU(1),      // 10
                    Op::Add,           // 11
                    Op::Return,        // 12
                ],
            ),
            input: |rng| Value::U64(rng.gen_range(1u64..1000)),
        },
    ]
}

fn measure(case: &Case, invocations: u64, seed: u64) -> VerifyRun {
    let cert = verify(&case.program).expect("bench programs verify");
    let fuel_bound = match cert.fuel_bound {
        FuelBound::Bounded(n) => format!("bounded({n})"),
        FuelBound::Unbounded { cap } => format!("unbounded(cap {cap})"),
    };
    let inst = Instance::instantiate(Rc::new(case.program.clone())).expect("init succeeds");
    let mut rng = DetRng::seed_from_u64(seed);
    let mut checked = RunStats::default();
    let mut fast = RunStats::default();
    let mut class = None;
    for _ in 0..invocations {
        let input = (case.input)(&mut rng);
        class.get_or_insert_with(|| InputClass::of(&input).name());
        let (v_slow, fuel_slow, s) = inst.run_counted(&input).expect("checking path succeeds");
        let (v_fast, fuel_fast, f, took_fast) = inst
            .run_verified_counted(&cert, &input)
            .expect("fast path succeeds");
        assert!(took_fast, "{}: input class must verify clean", case.label);
        assert_eq!(v_slow, v_fast, "{}: outputs diverge", case.label);
        assert_eq!(fuel_slow, fuel_fast, "{}: fuel diverges", case.label);
        assert!(
            fuel_slow <= cert.fuel_bound.worst_case(),
            "{}: fuel exceeds the static bound",
            case.label
        );
        checked.ops += s.ops;
        checked.checks += s.checks;
        fast.ops += f.ops;
        fast.checks += f.checks;
    }
    assert_eq!(checked.ops, fast.ops, "both paths retire the same stream");
    assert_eq!(fast.checks, 0, "the fast path performs no checks");
    let model = |s: &RunStats| (s.ops * OP_NS + s.checks * CHECK_NS) as f64 / 1e3;
    VerifyRun {
        program: case.label,
        class: class.unwrap_or("other"),
        fuel_bound,
        invocations,
        ops: checked.ops,
        checks: checked.checks,
        checked_us: model(&checked),
        fast_us: model(&fast),
    }
}

/// Runs the sweep. `quick` trims the invocation count for CI.
pub fn run(quick: bool, seed: u64) -> VerifyReport {
    let invocations = if quick { 200 } else { 5_000 };
    let runs = cases()
        .iter()
        .enumerate()
        .map(|(i, case)| measure(case, invocations, seed.wrapping_add(i as u64)))
        .collect();
    VerifyReport { seed, runs }
}

/// Renders the report as a fixed-width table (deterministic — CI diffs
/// two same-seed runs byte for byte).
pub fn to_table(report: &VerifyReport) -> String {
    let mut out = String::new();
    out.push_str("# verify — checking interpreter vs certificate fast path (modeled ns/op)\n");
    out.push_str(&format!(
        "# seed: {} (op = {OP_NS} ns, check = {CHECK_NS} ns)\n",
        report.seed
    ));
    out.push_str("program,class,fuel_bound,invocations,ops,checks,checked_us,fast_us,speedup\n");
    for r in &report.runs {
        out.push_str(&format!(
            "{},{},{},{},{},{},{:.3},{:.3},{:.3}\n",
            r.program,
            r.class,
            r.fuel_bound,
            r.invocations,
            r.ops,
            r.checks,
            r.checked_us,
            r.fast_us,
            r.speedup()
        ));
    }
    out
}

/// Renders the report as a small JSON document for
/// `results/verify.json` (hand-rolled — no JSON dependency).
pub fn to_json(report: &VerifyReport) -> String {
    let rows: Vec<String> = report
        .runs
        .iter()
        .map(|r| {
            format!(
                "    {{\"program\": \"{}\", \"class\": \"{}\", \"fuel_bound\": \"{}\", \
                 \"invocations\": {}, \"ops\": {}, \"checks\": {}, \"checked_us\": {:.3}, \
                 \"fast_us\": {:.3}, \"speedup\": {:.4}}}",
                r.program,
                r.class,
                r.fuel_bound,
                r.invocations,
                r.ops,
                r.checks,
                r.checked_us,
                r.fast_us,
                r.speedup()
            )
        })
        .collect();
    format!(
        "{{\n  \"bench\": \"verify\",\n  \"seed\": {},\n  \"op_ns\": {OP_NS},\n  \
         \"check_ns\": {CHECK_NS},\n  \"runs\": [\n{}\n  ]\n}}\n",
        report.seed,
        rows.join(",\n")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_path_is_measurably_faster_on_every_program() {
        let report = run(true, 7);
        assert_eq!(report.runs.len(), 5);
        for r in &report.runs {
            assert!(r.checks > 0, "{}: no checks to discharge", r.program);
            assert!(
                r.speedup() > 1.1,
                "{}: only {:.3}× faster",
                r.program,
                r.speedup()
            );
        }
    }

    #[test]
    fn loop_free_programs_carry_exact_bounds() {
        let report = run(true, 7);
        let poly = report.runs.iter().find(|r| r.program == "poly").unwrap();
        assert_eq!(poly.fuel_bound, "bounded(10)");
        let countdown = report
            .runs
            .iter()
            .find(|r| r.program == "countdown")
            .unwrap();
        assert!(countdown.fuel_bound.starts_with("unbounded"));
    }

    #[test]
    fn report_rendering_is_deterministic() {
        let a = run(true, 7);
        let b = run(true, 7);
        assert_eq!(to_table(&a), to_table(&b));
        assert_eq!(to_json(&a), to_json(&b));
    }
}
