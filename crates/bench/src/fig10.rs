//! Figure 10: energy efficiency (FLOPS/W) of the three sharing models
//! and a CPU-only execution, across task granularities.

use kaas_core::baseline::run_cpu_only;
use kaas_kernels::{MatMul, Value};
use kaas_simtime::{now, spawn, Simulation};

use crate::common::{host_cpu, Figure, Series};
use crate::sharing::{run_model, sweep_sizes, Model, CONCURRENCY};

/// Eight concurrent CPU-only matrix multiplications on the host.
fn cpu_run(n: u64, tasks: usize) -> f64 {
    let mut sim = Simulation::new();
    sim.block_on(async move {
        let cpu = host_cpu(0);
        let start = now();
        let mut handles = Vec::new();
        for _ in 0..tasks {
            let cpu = cpu.clone();
            handles.push(spawn(async move {
                run_cpu_only(&cpu, &MatMul::new(), &Value::U64(n))
                    .await
                    .expect("valid input")
            }));
        }
        for h in handles {
            h.await;
        }
        let window = now() - start;
        let flops = tasks as f64 * 2.0 * (n as f64).powi(3);
        // Package energy: compute busy time plus the interpreter
        // launch/import overhead, all active on the host CPU.
        let p = *cpu.profile();
        let overhead_busy =
            tasks as f64 * (p.python_launch.as_secs_f64() + p.runtime_import.as_secs_f64());
        let energy = p
            .power
            .energy_joules(window, cpu.busy_seconds() + overhead_busy);
        flops / energy
    })
}

/// Reproduces Figure 10.
pub fn run(quick: bool) -> Vec<Figure> {
    let mut fig = Figure::new(
        "fig10",
        "Energy efficiency by sharing model (8 concurrent tasks)",
        "task granularity (matrix elements)",
        "efficiency (FLOPS/W)",
    );
    let sizes = sweep_sizes(quick);
    for model in Model::all() {
        let mut series = Series::new(model.label());
        for &n in &sizes {
            let stats = run_model(model, n, CONCURRENCY);
            series.push((n * n) as f64, stats.flops_per_watt());
        }
        fig.series.push(series);
    }
    let mut cpu_series = Series::new("CPU");
    for &n in &sizes {
        cpu_series.push((n * n) as f64, cpu_run(n, CONCURRENCY));
    }
    fig.series.push(cpu_series);
    let kaas_large = fig.series("KaaS").unwrap().last_y();
    let cpu_large = fig.series("CPU").unwrap().last_y();
    fig.note(format!(
        "large tasks: GPU (KaaS) {:.2} GFLOPS/W vs CPU {:.2} GFLOPS/W \
         (paper: ≈4 vs ≈0.7 GFLOPS/W)",
        kaas_large / 1e9,
        cpu_large / 1e9
    ));
    fig.note("paper: for the smallest tasks only KaaS beats the CPU-only execution".to_owned());
    vec![fig]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_beats_cpu_at_large_sizes() {
        let figs = run(true);
        let fig = &figs[0];
        let kaas = fig.series("KaaS").unwrap().last_y();
        let cpu = fig.series("CPU").unwrap().last_y();
        assert!(kaas > cpu * 3.0, "kaas={kaas}, cpu={cpu}");
        // Paper's absolute levels: ≈4 GFLOPS/W GPU, ≈0.7 GFLOPS/W CPU.
        // Our coarse power model lands the GPU somewhat higher; the
        // ordering and orders of magnitude are what must hold.
        assert!((1.0e9..2.0e10).contains(&kaas), "kaas={kaas}");
        assert!((0.2e9..1.5e9).contains(&cpu), "cpu={cpu}");
    }

    #[test]
    fn only_kaas_beats_cpu_for_small_tasks() {
        let figs = run(true);
        let fig = &figs[0];
        let kaas = fig.series("KaaS").unwrap().first_y();
        let mps = fig.series("Space Sharing").unwrap().first_y();
        let time = fig.series("Time Sharing").unwrap().first_y();
        let cpu = fig.series("CPU").unwrap().first_y();
        assert!(kaas > cpu, "KaaS {kaas} must beat CPU {cpu} at small sizes");
        assert!(mps < cpu, "MPS {mps} loses to CPU {cpu} at small sizes");
        assert!(time < cpu, "time sharing {time} loses to CPU {cpu}");
    }

    #[test]
    fn efficiency_rises_with_task_size() {
        let figs = run(true);
        for s in &figs[0].series {
            assert!(
                s.last_y() > s.first_y(),
                "{}: efficiency should grow with task size",
                s.label
            );
        }
    }
}
