//! Figure 11: transparent remote invocation with the genetic-algorithm
//! kernel (§5.3). Four scenarios: remote client over 1 Gbps, local
//! client in-band, local client out-of-band, and local CPU execution.
//!
//! The GA is iterative — ten generations, each a separate kernel
//! invocation with the population shipped both ways — which is what makes
//! the network cost visible (≈0.5–0.8 s at N = 4096 in the paper).

use std::rc::Rc;

use kaas_core::{InvokeError, KaasClient};
use kaas_kernels::{GaGeneration, MatMul, Value, GENERATIONS};
use kaas_simtime::{now, sleep, Simulation};

use crate::common::{
    deploy, experiment_server_config, host_cpu, host_cpu_profile, p100_cluster, Figure, Series,
};

/// The four evaluated scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// Client on another host, serialized in-band transfer over 1 Gbps.
    Remote,
    /// Client on the GPU host, serialized in-band transfer.
    LocalInBand,
    /// Client on the GPU host, shared-memory out-of-band transfer.
    LocalOutOfBand,
    /// The whole GA runs on the client's CPU.
    Cpu,
}

impl Scenario {
    /// Legend label.
    pub fn label(self) -> &'static str {
        match self {
            Scenario::Remote => "Remote",
            Scenario::LocalInBand => "Local (in-band)",
            Scenario::LocalOutOfBand => "Local (out-of-band)",
            Scenario::Cpu => "CPU",
        }
    }

    /// All scenarios in legend order.
    pub fn all() -> [Scenario; 4] {
        [
            Scenario::LocalInBand,
            Scenario::LocalOutOfBand,
            Scenario::Remote,
            Scenario::Cpu,
        ]
    }
}

/// Runs the full ten-generation GA through a client, shipping the
/// population each generation.
async fn ga_task(client: &mut KaasClient, n: u64, oob: bool) -> Result<(), InvokeError> {
    let mut population = Value::U64(n);
    for _ in 0..GENERATIONS {
        let inv = if oob {
            client
                .call("ga")
                .arg(population)
                .out_of_band()
                .send()
                .await?
        } else {
            client.call("ga").arg(population).send().await?
        };
        population = inv.output;
    }
    Ok(())
}

/// Total task completion time for one scenario at population size `n`.
pub fn run_scenario(scenario: Scenario, n: u64) -> f64 {
    let mut sim = Simulation::new();
    sim.block_on(async move {
        let host = host_cpu_profile();
        match scenario {
            Scenario::Cpu => {
                // Ten generations on the client CPU, one program.
                let cpu = host_cpu(8);
                let t0 = now();
                sleep(cpu.profile().python_launch).await;
                sleep(cpu.profile().runtime_import).await;
                let ga = GaGeneration::default();
                let mut population = Value::U64(n);
                for _ in 0..GENERATIONS {
                    let work = kaas_kernels::Kernel::work(&ga, &population).expect("valid");
                    cpu.run(&work).await;
                    population = kaas_kernels::Kernel::execute(&ga, &population).expect("valid");
                }
                (now() - t0).as_secs_f64()
            }
            _ => {
                let dep = deploy(
                    p100_cluster(),
                    vec![
                        Rc::new(GaGeneration::default()) as Rc<dyn kaas_kernels::Kernel>,
                        Rc::new(MatMul::new()),
                    ],
                    experiment_server_config(),
                );
                dep.server.prewarm("ga", 1).await.expect("prewarm");
                let mut client = match scenario {
                    Scenario::Remote => dep.remote_client().await,
                    _ => dep.local_client().await,
                };
                let t0 = now();
                sleep(host.python_launch).await;
                let oob = scenario == Scenario::LocalOutOfBand;
                ga_task(&mut client, n, oob).await.expect("ga runs");
                (now() - t0).as_secs_f64()
            }
        }
    })
}

/// Reproduces Figure 11.
pub fn run(quick: bool) -> Vec<Figure> {
    let sizes: &[u64] = if quick {
        &[32, 512, 4096]
    } else {
        &[32, 64, 128, 256, 512, 1024, 2048, 4096]
    };
    let mut fig = Figure::new(
        "fig11",
        "Remote vs local GA invocation (10 generations)",
        "task granularity (population size N)",
        "task completion time (s)",
    );
    for scenario in Scenario::all() {
        let mut series = Series::new(scenario.label());
        for &n in sizes {
            series.push(n as f64, run_scenario(scenario, n));
        }
        fig.series.push(series);
    }
    let remote = fig.series("Remote").unwrap().last_y();
    let local = fig.series("Local (in-band)").unwrap().last_y();
    let cpu = fig.series("CPU").unwrap().last_y();
    fig.note(format!(
        "remote adds {:.0} ms over local in-band at N=4096 (paper: 490–832 ms)",
        (remote - local) * 1e3
    ));
    fig.note(format!(
        "CPU is {:.1}× slower than remote at N=4096 (paper: ≈5×)",
        cpu / remote
    ));
    vec![fig]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remote_overhead_in_paper_band() {
        let remote = run_scenario(Scenario::Remote, 4096);
        let local = run_scenario(Scenario::LocalInBand, 4096);
        let delta = remote - local;
        assert!(
            (0.3..1.0).contains(&delta),
            "remote delta {delta}s (paper: 0.49–0.83 s)"
        );
    }

    #[test]
    fn in_band_and_out_of_band_are_indistinguishable() {
        let inband = run_scenario(Scenario::LocalInBand, 2048);
        let oob = run_scenario(Scenario::LocalOutOfBand, 2048);
        let rel = (inband - oob).abs() / oob;
        assert!(rel < 0.05, "in-band {inband}s vs oob {oob}s ({rel:.3} rel)");
    }

    #[test]
    fn cpu_is_much_slower_than_remote_gpu_at_large_n() {
        let cpu = run_scenario(Scenario::Cpu, 4096);
        let remote = run_scenario(Scenario::Remote, 4096);
        let ratio = cpu / remote;
        assert!(
            (2.5..8.0).contains(&ratio),
            "CPU/remote ratio {ratio} (paper: ≈5×)"
        );
    }

    #[test]
    fn small_tasks_have_similar_times_everywhere() {
        // Paper: "admittedly similar in run time for smaller tasks" —
        // both sub-second, nothing like the large-N gap.
        let cpu = run_scenario(Scenario::Cpu, 32);
        let remote = run_scenario(Scenario::Remote, 32);
        assert!(cpu < 1.0, "cpu={cpu}");
        assert!(remote < 1.0, "remote={remote}");
        let large_gap = run_scenario(Scenario::Cpu, 4096) / run_scenario(Scenario::Remote, 4096);
        assert!(
            cpu / remote < large_gap,
            "small gap must be below large gap"
        );
    }
}
