//! Metastable-failure chaos bench: a 10× load burst against a
//! dispatcher running near its knee, with and without the overload
//! controls (adaptive admission, bounded queues with deadline ejection,
//! retry budgets, `retry_after`-honoring clients).
//!
//! The uncontrolled system reproduces the classic metastable shape
//! (Bronson et al., HotOS '21): the burst builds a queue whose wait
//! exceeds every client's deadline, so the server spends all of its
//! dispatch capacity on dead requests while client timeouts re-inject
//! the same work — goodput stays collapsed **after the trigger
//! clears**, because retries alone hold arrivals above capacity. The
//! controlled system sheds the burst at the front door (cheap, before
//! the dispatch overhead is paid), ejects expired work at dequeue,
//! clamps admissions with AIMD, and paces client retries through a
//! token-bucket budget plus the server's deterministic `retry_after`
//! hints — goodput dips during the burst and recovers.
//!
//! Everything is seeded and closed-loop: same-seed runs produce
//! byte-identical reports (CI diffs two `--quick` runs).

use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::time::Duration;

use kaas_core::{
    AimdConfig, ClientRetryConfig, DispatchMode, ExponentialBackoff, InvokeError, RetryBudget,
    RetryBudgetConfig, RoundRobin, RunnerConfig, ServerConfig, ShardConfig,
};
use kaas_kernels::{MonteCarlo, Value};
use kaas_simtime::{now, sleep, spawn, Simulation};

use crate::common::{deploy, experiment_server_config, v100_cluster};

/// Four V100s behind a single-shard dispatcher: the dispatch worker,
/// not the devices, is the contended resource.
pub const GPUS: u32 = 4;
/// Monte-Carlo samples per invocation — tiny on purpose.
pub const SAMPLES: u64 = 1_000;
/// Per-dispatch overhead: one shard at 200 µs caps service at 5 000/s.
pub const OVERHEAD: Duration = Duration::from_micros(200);
/// Client-side deadline *and* round-trip timeout per attempt: a request
/// that waits longer than this is dead on arrival at the worker.
pub const DEADLINE: Duration = Duration::from_millis(3);
/// Goodput accounting window.
pub const WINDOW: Duration = Duration::from_millis(100);
/// Steady base load: 20 closed-loop clients thinking 5 ms ≈ 3.6 k/s
/// offered, ~72 % of the 5 k/s dispatch ceiling.
pub const BASE_CLIENTS: usize = 20;
const BASE_THINK: Duration = Duration::from_millis(5);
/// The trigger: a 10×-the-base-fleet client burst.
pub const BURST_CLIENTS: usize = 200;
const BURST_THINK: Duration = Duration::from_millis(2);

/// The shape of one run's timeline, in whole windows.
#[derive(Debug, Clone, Copy)]
struct Timeline {
    /// Total horizon in windows.
    windows: usize,
    /// Window in which the burst starts.
    burst_from: usize,
    /// First window after the burst stops.
    burst_until: usize,
}

impl Timeline {
    fn new(quick: bool) -> Self {
        if quick {
            // 600 ms: 200 ms steady, 100 ms burst, 300 ms aftermath.
            Timeline {
                windows: 6,
                burst_from: 2,
                burst_until: 3,
            }
        } else {
            // 1 s: 300 ms steady, 150 ms burst, 550 ms aftermath.
            Timeline {
                windows: 10,
                burst_from: 3,
                burst_until: 5, // burst runs [300 ms, 450 ms)
            }
        }
    }

    fn horizon(&self) -> Duration {
        WINDOW * self.windows as u32
    }

    fn burst_start(&self) -> Duration {
        WINDOW * self.burst_from as u32
    }

    fn burst_len(&self) -> Duration {
        // The full timeline's burst covers 1.5 windows.
        if self.burst_until - self.burst_from == 2 {
            WINDOW + WINDOW / 2
        } else {
            WINDOW
        }
    }
}

/// One measured run of the scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct OverloadRun {
    /// `"uncontrolled"` or `"controlled"`.
    pub label: &'static str,
    /// Successful invocations per [`WINDOW`].
    pub goodput: Vec<u64>,
    /// `Overloaded` replies observed client-side (sheds, per attempt).
    pub shed: u64,
    /// Attempts that timed out or blew their deadline, client-side.
    pub dead: u64,
    /// Requests the server shed or ejected from its shard queues
    /// (always zero for the uncontrolled config — its queues are
    /// unbounded and nothing ejects).
    pub ejected: u64,
    /// Retries denied by the shared client retry budget.
    pub budget_exhausted: u64,
    /// Mean goodput/window over the steady windows before the burst.
    pub pre: f64,
    /// Mean goodput/window over the final two windows.
    pub post: f64,
}

impl OverloadRun {
    /// Post-trigger goodput as a fraction of the pre-burst knee.
    pub fn recovery(&self) -> f64 {
        if self.pre == 0.0 {
            0.0
        } else {
            self.post / self.pre
        }
    }
}

/// Both sides of the A/B for one seed.
#[derive(Debug, Clone, PartialEq)]
pub struct OverloadReport {
    /// The seed both runs shared.
    pub seed: u64,
    /// No admission limiter, unbounded queues, naive immediate retries.
    pub uncontrolled: OverloadRun,
    /// AIMD admission + bounded/ejecting queues + budgeted, hint-paced
    /// retries.
    pub controlled: OverloadRun,
}

fn overload_config(controlled: bool) -> ServerConfig {
    let shard = ShardConfig {
        shards: 1,
        queue_cap: if controlled { Some(32) } else { None },
        ..ShardConfig::default()
    };
    let config = experiment_server_config()
        .with_scheduler(RoundRobin::default())
        .with_autoscale(false)
        .with_dispatch_overhead(OVERHEAD)
        .with_dispatch(DispatchMode::Sharded(shard))
        .with_runner(RunnerConfig {
            max_inflight: 16,
            ..RunnerConfig::default()
        });
    if controlled {
        config.with_adaptive_admission(
            AimdConfig::default()
                .with_target_queue_wait(Duration::from_millis(1))
                .with_limit_range(4, 32)
                .with_initial_limit(16)
                .with_cooldown(Duration::from_millis(5)),
        )
    } else {
        config.with_admission_policy(None)
    }
}

/// Per-window success counters plus client-side error tallies, shared
/// by every client task of one run.
struct Tally {
    goodput: RefCell<Vec<u64>>,
    shed: Cell<u64>,
    dead: Cell<u64>,
}

async fn client_loop(
    mut client: kaas_core::KaasClient,
    start: kaas_simtime::SimTime,
    stop: kaas_simtime::SimTime,
    think: Duration,
    tally: Rc<Tally>,
) {
    while now() < stop {
        let res = client
            .call("mci")
            .arg(Value::U64(SAMPLES))
            .deadline(DEADLINE)
            .timeout(DEADLINE)
            .send()
            .await;
        match res {
            Ok(_) => {
                let w = ((now().saturating_since(start)).as_nanos() / WINDOW.as_nanos()) as usize;
                let mut goodput = tally.goodput.borrow_mut();
                if w < goodput.len() {
                    goodput[w] += 1;
                }
            }
            Err(InvokeError::Overloaded { .. }) => tally.shed.set(tally.shed.get() + 1),
            Err(InvokeError::TimedOut | InvokeError::DeadlineExceeded) => {
                tally.dead.set(tally.dead.get() + 1)
            }
            Err(e) => panic!("unexpected overload-bench error: {e:?}"),
        }
        sleep(think).await;
    }
}

/// Runs one side of the A/B and measures windowed goodput.
pub fn run_mode(controlled: bool, seed: u64, quick: bool) -> OverloadRun {
    let timeline = Timeline::new(quick);
    let mut sim = Simulation::new();
    sim.block_on(async move {
        let dep = deploy(
            v100_cluster(GPUS),
            vec![Rc::new(MonteCarlo::default())],
            overload_config(controlled),
        );
        dep.server
            .prewarm("mci", GPUS as usize)
            .await
            .expect("prewarm");
        let budget = Rc::new(RetryBudget::new(RetryBudgetConfig::default()));
        let retry = |stream: u64| {
            if controlled {
                ClientRetryConfig::new(4)
                    .with_backoff(
                        ExponentialBackoff::new(Duration::from_millis(1))
                            .with_jitter(0.5, seed ^ stream),
                    )
                    .with_budget(Rc::clone(&budget))
            } else {
                // The naive fleet: immediate re-send on every failure,
                // no budget — the retry amplifier that sustains the
                // metastable state.
                ClientRetryConfig::new(4)
            }
        };
        let tally = Rc::new(Tally {
            goodput: RefCell::new(vec![0; timeline.windows]),
            shed: Cell::new(0),
            dead: Cell::new(0),
        });

        let start = now();
        let stop = start + timeline.horizon();
        let mut handles = Vec::new();
        for i in 0..BASE_CLIENTS {
            let client = dep.local_client().await.with_retry(retry(i as u64));
            handles.push(spawn(client_loop(
                client,
                start,
                stop,
                BASE_THINK,
                Rc::clone(&tally),
            )));
        }
        // The trigger: after the steady phase, a 10× client burst
        // arrives, runs for the burst window, and leaves.
        let burst_handle = {
            let dep_net = dep.net.clone();
            let dep_shm = dep.shm.clone();
            let tally = Rc::clone(&tally);
            let budget = Rc::clone(&budget);
            let burst_start = start + timeline.burst_start();
            let burst_stop = burst_start + timeline.burst_len();
            spawn(async move {
                sleep(burst_start.saturating_since(now())).await;
                let mut inner = Vec::new();
                for i in 0..BURST_CLIENTS {
                    let retry = if controlled {
                        ClientRetryConfig::new(4)
                            .with_backoff(
                                ExponentialBackoff::new(Duration::from_millis(1))
                                    .with_jitter(0.5, seed ^ (1000 + i as u64)),
                            )
                            .with_budget(Rc::clone(&budget))
                    } else {
                        ClientRetryConfig::new(4)
                    };
                    let client = crate::common::connect_local(&dep_net, dep_shm.clone())
                        .await
                        .with_retry(retry);
                    inner.push(spawn(client_loop(
                        client,
                        start,
                        burst_stop,
                        BURST_THINK,
                        Rc::clone(&tally),
                    )));
                }
                for h in inner {
                    h.await;
                }
            })
        };
        for h in handles {
            h.await;
        }
        burst_handle.await;
        // Let the uncontrolled backlog drain before the server drops,
        // so shutdown invariants (no queued jobs) hold in both modes.
        sleep(Duration::from_secs(3)).await;

        let snapshot = dep.server.snapshot();
        let goodput = tally.goodput.borrow().clone();
        let mean = |w: &[u64]| w.iter().sum::<u64>() as f64 / w.len() as f64;
        let pre = mean(&goodput[..timeline.burst_from]);
        let post = mean(&goodput[timeline.windows - 2..]);
        OverloadRun {
            label: if controlled {
                "controlled"
            } else {
                "uncontrolled"
            },
            goodput,
            shed: tally.shed.get(),
            dead: tally.dead.get(),
            ejected: snapshot.dispatch_ejected,
            budget_exhausted: budget.exhausted(),
            pre,
            post,
        }
    })
}

/// Runs the full A/B under one seed.
pub fn run(seed: u64, quick: bool) -> OverloadReport {
    OverloadReport {
        seed,
        uncontrolled: run_mode(false, seed, quick),
        controlled: run_mode(true, seed, quick),
    }
}

/// Renders a report as deterministic, diffable text.
pub fn render(report: &OverloadReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# overload — metastable-failure A/B (seed {}, {} base + {} burst clients, \
         1 shard @ {:?}/dispatch)\n",
        report.seed, BASE_CLIENTS, BURST_CLIENTS, OVERHEAD
    ));
    for run in [&report.uncontrolled, &report.controlled] {
        out.push_str(&format!(
            "{}: goodput/window {:?}\n\
             {}: pre {:.1}/win, post {:.1}/win, recovery {:.0}%, shed {}, dead {}, \
             ejected {}, budget_exhausted {}\n",
            run.label,
            run.goodput,
            run.label,
            run.pre,
            run.post,
            100.0 * run.recovery(),
            run.shed,
            run.dead,
            run.ejected,
            run.budget_exhausted,
        ));
    }
    out
}

/// Renders the report as a small JSON document for
/// `results/overload.json` (hand-rolled — no JSON dependency).
pub fn to_json(report: &OverloadReport) -> String {
    let run_json = |r: &OverloadRun| {
        let pts: Vec<String> = r.goodput.iter().map(|g| g.to_string()).collect();
        format!(
            "    {{\n      \"label\": \"{}\",\n      \"goodput_per_window\": [{}],\n      \
             \"pre_per_window\": {:.3},\n      \"post_per_window\": {:.3},\n      \
             \"recovery\": {:.4},\n      \"shed\": {},\n      \"dead\": {},\n      \
             \"ejected\": {},\n      \"budget_exhausted\": {}\n    }}",
            r.label,
            pts.join(", "),
            r.pre,
            r.post,
            r.recovery(),
            r.shed,
            r.dead,
            r.ejected,
            r.budget_exhausted
        )
    };
    format!(
        "{{\n  \"bench\": \"overload\",\n  \"seed\": {},\n  \"window_ms\": {},\n  \
         \"runs\": [\n{},\n{}\n  ]\n}}\n",
        report.seed,
        WINDOW.as_millis(),
        run_json(&report.uncontrolled),
        run_json(&report.controlled)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontrolled_run_is_metastable_after_the_trigger_clears() {
        let run = run_mode(false, 7, true);
        assert!(run.pre > 200.0, "healthy knee expected, got {:?}", run);
        assert!(
            run.post < 0.5 * run.pre,
            "uncontrolled goodput should stay collapsed after the burst: \
             pre {:.0}/win, post {:.0}/win ({:?})",
            run.pre,
            run.post,
            run.goodput
        );
        assert_eq!(run.ejected, 0, "unbounded queues never eject");
    }

    #[test]
    fn controlled_run_recovers_past_ninety_percent() {
        let run = run_mode(true, 7, true);
        assert!(run.pre > 200.0, "healthy knee expected, got {:?}", run);
        assert!(
            run.recovery() >= 0.9,
            "controlled goodput should recover to ≥90% of the knee: \
             pre {:.0}/win, post {:.0}/win ({:?})",
            run.pre,
            run.post,
            run.goodput
        );
        assert!(
            run.shed + run.ejected > 0,
            "the controls must actually have engaged"
        );
    }

    #[test]
    fn same_seed_reruns_are_byte_identical() {
        let a = run(7, true);
        let b = run(7, true);
        assert_eq!(a, b, "overload bench must replay identically");
        assert_eq!(to_json(&a), to_json(&b));
    }
}
