//! Figure 17: VQE on five quantum backends (three simulators, two Falcon
//! processors), baseline cold estimator calls vs. KaaS cached copies
//! (§5.6.4).
//!
//! The VQE's classical optimizer drives a sequence of estimator calls;
//! the baseline re-initializes the runtime session and re-transpiles the
//! circuit for every call, while KaaS calls into a warm cached kernel.

use std::rc::Rc;

use kaas_accel::QpuProfile;
use kaas_core::baseline::run_time_sharing;
use kaas_kernels::VqeEstimator;
use kaas_kernels::{Kernel, Value};
use kaas_simtime::{now, sleep, Simulation};

use crate::common::{
    deploy, experiment_server_config, host_cpu_profile, qpu_testbed, reduction_pct, Figure, Series,
};

/// Estimator calls per single-point VQE calculation (a short optimizer
/// trace; each call is one "quantum kernel" invocation).
pub const ESTIMATOR_CALLS: usize = 10;

/// Shots per estimator call.
pub const SHOTS: u64 = 4096;

/// A short deterministic parameter trace standing in for the optimizer's
/// query sequence (4 parameters for the 2-qubit, 1-rep ansatz).
fn parameter_trace() -> Vec<Vec<f64>> {
    (0..ESTIMATOR_CALLS)
        .map(|i| {
            let t = i as f64 * 0.37;
            vec![0.1 + t, -0.2 + 0.5 * t, 0.3 - 0.1 * t, 0.05 * t]
        })
        .collect()
}

/// Total VQE task time with per-call cold starts (baseline).
pub fn baseline_time(profile: QpuProfile) -> f64 {
    let mut sim = Simulation::new();
    sim.block_on(async move {
        let qpu = qpu_testbed(profile).remove(0);
        let host = host_cpu_profile();
        let estimator = VqeEstimator::h2(SHOTS);
        let t0 = now();
        for params in parameter_trace() {
            // Each estimator call is a standalone quantum operation:
            // session init + transpile + execute.
            let r = run_time_sharing(&qpu, &estimator, &Value::F64s(params), &host)
                .await
                .expect("valid parameters");
            // The host-side python launch happens once per *task*, not per
            // call: refund it for all but the first call.
            let _ = r;
        }
        // Subtract the per-call python launches beyond the first (the
        // client program runs once for the whole VQE).
        let extra_launches = (ESTIMATOR_CALLS - 1) as f64 * host.python_launch.as_secs_f64();
        (now() - t0).as_secs_f64() - extra_launches
    })
}

/// Total VQE task time through KaaS (warm cached kernel).
pub fn kaas_time(profile: QpuProfile) -> f64 {
    let mut sim = Simulation::new();
    sim.block_on(async move {
        let dep = deploy(
            qpu_testbed(profile),
            vec![Rc::new(VqeEstimator::h2(SHOTS)) as Rc<dyn Kernel>],
            experiment_server_config(),
        );
        dep.server
            .prewarm("vqe-estimator", 1)
            .await
            .expect("prewarm");
        let mut client = dep.local_client().await;
        client
            .call("vqe-estimator")
            .arg(Value::F64s(vec![0.0; 4]))
            .out_of_band()
            .send()
            .await
            .expect("warm-up");
        let t0 = now();
        sleep(host_cpu_profile().python_launch).await;
        for params in parameter_trace() {
            client
                .call("vqe-estimator")
                .arg(Value::F64s(params))
                .out_of_band()
                .send()
                .await
                .expect("estimator call succeeds");
        }
        (now() - t0).as_secs_f64()
    })
}

/// Reproduces Figure 17.
pub fn run(_quick: bool) -> Vec<Figure> {
    let backends = QpuProfile::figure17_backends();
    let paper = [34.9, 34.8, 34.3, 33.3, 27.3];
    let mut fig = Figure::new(
        "fig17",
        "VQE task completion per quantum backend, baseline vs KaaS",
        "backend index (QASM, MPS, StateVector, Falcon r5.11H, Falcon r4T)",
        "task completion time (s)",
    );
    let mut base = Series::new("Baseline");
    let mut kaas = Series::new("KaaS");
    for (i, backend) in backends.iter().enumerate() {
        base.push(i as f64, baseline_time(*backend));
        kaas.push(i as f64, kaas_time(*backend));
    }
    for (i, backend) in backends.iter().enumerate() {
        let b = base.y_at(i as f64).unwrap();
        let k = kaas.y_at(i as f64).unwrap();
        fig.note(format!(
            "{}: reduction {:.1}% (paper: {:.1}%)",
            backend.name,
            reduction_pct(b, k),
            paper[i]
        ));
    }
    fig.series = vec![base, kaas];
    vec![fig]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulator_reductions_match_paper_band() {
        for profile in [
            QpuProfile::qasm_simulator(),
            QpuProfile::mps_simulator(),
            QpuProfile::statevector_simulator(),
        ] {
            let b = baseline_time(profile);
            let k = kaas_time(profile);
            let red = reduction_pct(b, k);
            assert!(
                (28.0..42.0).contains(&red),
                "{}: reduction {red}% (paper: ≈34–35%)",
                profile.name
            );
        }
    }

    #[test]
    fn hardware_gains_less_than_simulators() {
        let sim_red = {
            let b = baseline_time(QpuProfile::qasm_simulator());
            let k = kaas_time(QpuProfile::qasm_simulator());
            reduction_pct(b, k)
        };
        let hw_red = {
            let b = baseline_time(QpuProfile::falcon_r4t());
            let k = kaas_time(QpuProfile::falcon_r4t());
            reduction_pct(b, k)
        };
        assert!(
            hw_red < sim_red,
            "hardware {hw_red}% should gain less than simulator {sim_red}%"
        );
        assert!(
            (20.0..33.0).contains(&hw_red),
            "Falcon r4T reduction {hw_red}% (paper: 27.3%)"
        );
    }

    #[test]
    fn task_times_land_on_the_paper_axis() {
        // Fig. 17's y-axis is roughly 0–12 s; the slowest backend's
        // baseline should sit at that scale (seconds, not minutes).
        let b = baseline_time(QpuProfile::falcon_r4t());
        assert!((4.0..16.0).contains(&b), "baseline {b}s");
        let fast = baseline_time(QpuProfile::qasm_simulator());
        assert!(
            (6.0..14.0).contains(&fast),
            "QASM baseline {fast}s (paper: ≈10 s)"
        );
    }
}
