//! Guest-kernel cold-start benchmark: full instantiate vs snapshot
//! restore.
//!
//! A guest kernel that builds a lookup table at init time pays that
//! work on every fresh runner — unless it opted into the
//! Proto-Faaslet-style snapshot path, where the post-init image is
//! captured once at registration and each cold start merely maps it
//! back in. This bench sweeps the init-table size, forces repeated
//! cold starts on both paths (by crashing the runner between
//! invocations), and reports the mean warm-init cost of each path from
//! the server's `guest.cold_start.{full,restore}` histograms.

use kaas_accel::{DeviceClass, GpuDevice, GpuProfile};
use kaas_core::KaasServer;
use kaas_guest::{GuestProgram, Op};
use kaas_kernels::Value;
use kaas_simtime::Simulation;

use crate::common::{deploy, experiment_server_config, Deployment};

/// One swept init-table size, both cold-start paths measured.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ColdStartRun {
    /// Init-time lookup-table entries (f64s built by `VecFill`).
    pub table: u64,
    /// Cold starts forced per path.
    pub cold_starts: u64,
    /// Mean full-instantiate warm-init cost, microseconds.
    pub full_us: f64,
    /// Mean snapshot-restore warm-init cost, microseconds.
    pub restore_us: f64,
}

impl ColdStartRun {
    /// How many times cheaper the restore path is.
    pub fn speedup(&self) -> f64 {
        self.full_us / self.restore_us
    }
}

/// The whole sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ColdStartReport {
    /// Seed recorded for provenance (the sweep itself is deterministic).
    pub seed: u64,
    /// One row per swept table size.
    pub runs: Vec<ColdStartRun>,
}

fn table_program(table: u64, snapshot: bool) -> GuestProgram {
    let p = GuestProgram::new("lut", DeviceClass::Gpu)
        .with_init(
            1,
            vec![
                Op::PushU(table),
                Op::PushF(1.0),
                Op::VecFill,
                Op::SetGlobal(0),
            ],
        )
        .with_body(vec![Op::Global(0), Op::VecSum, Op::Return]);
    if snapshot {
        p.with_snapshot()
    } else {
        p
    }
}

async fn force_cold_starts(dep: &Deployment, full_name: &str, colds: u64) {
    let mut client = dep.local_client().await;
    for i in 0..colds {
        let out = client
            .call(full_name)
            .arg(Value::Unit)
            .send()
            .await
            .expect("guest invocation succeeds");
        assert!(
            matches!(out.output.payload(), Value::F64(_)),
            "table sum expected"
        );
        if i + 1 < colds {
            // Kill the warm runner so the next invocation cold-starts.
            dep.server
                .pool()
                .crash_runner(full_name)
                .expect("a warm runner to crash");
        }
    }
}

fn mean_us(server: &KaasServer, path: &str, expect_count: u64) -> f64 {
    let s = server
        .metrics_registry()
        .summary(&format!("guest.cold_start.{path}"))
        .expect("cold-start histogram populated");
    assert_eq!(s.count, expect_count, "one observation per cold start");
    s.sum / s.count as f64 * 1e6
}

fn measure(table: u64, snapshot: bool, colds: u64) -> f64 {
    let mut sim = Simulation::new();
    sim.block_on(async move {
        let dep = deploy(
            vec![GpuDevice::new(kaas_accel::DeviceId(0), GpuProfile::p100()).into()],
            vec![],
            experiment_server_config(),
        );
        let mut client = dep.local_client().await;
        let full_name = client
            .register_kernel("bench", &table_program(table, snapshot))
            .await
            .expect("registration succeeds");
        force_cold_starts(&dep, &full_name, colds).await;
        let path = if snapshot { "restore" } else { "full" };
        mean_us(&dep.server, path, colds)
    })
}

/// Runs the sweep. `quick` trims the grid for CI.
pub fn run(quick: bool, seed: u64) -> ColdStartReport {
    let (tables, colds): (&[u64], u64) = if quick {
        (&[256, 4096], 2)
    } else {
        (&[256, 1024, 4096, 16384], 5)
    };
    let runs = tables
        .iter()
        .map(|&table| ColdStartRun {
            table,
            cold_starts: colds,
            full_us: measure(table, false, colds),
            restore_us: measure(table, true, colds),
        })
        .collect();
    ColdStartReport { seed, runs }
}

/// Renders the report as a fixed-width table (deterministic — CI diffs
/// two same-seed runs byte for byte).
pub fn to_table(report: &ColdStartReport) -> String {
    let mut out = String::new();
    out.push_str("# coldstart — guest warm-init: full instantiate vs snapshot restore\n");
    out.push_str(&format!("# seed: {}\n", report.seed));
    out.push_str("table_entries,cold_starts,full_us,restore_us,speedup\n");
    for r in &report.runs {
        out.push_str(&format!(
            "{},{},{:.3},{:.3},{:.2}\n",
            r.table,
            r.cold_starts,
            r.full_us,
            r.restore_us,
            r.speedup()
        ));
    }
    out
}

/// Renders the report as a small JSON document for
/// `results/coldstart.json` (hand-rolled — no JSON dependency).
pub fn to_json(report: &ColdStartReport) -> String {
    let rows: Vec<String> = report
        .runs
        .iter()
        .map(|r| {
            format!(
                "    {{\"table_entries\": {}, \"cold_starts\": {}, \"full_us\": {:.3}, \
                 \"restore_us\": {:.3}, \"speedup\": {:.4}}}",
                r.table,
                r.cold_starts,
                r.full_us,
                r.restore_us,
                r.speedup()
            )
        })
        .collect();
    format!(
        "{{\n  \"bench\": \"coldstart\",\n  \"seed\": {},\n  \"runs\": [\n{}\n  ]\n}}\n",
        report.seed,
        rows.join(",\n")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn restore_is_at_least_three_times_cheaper_at_every_size() {
        let report = run(true, 7);
        assert_eq!(report.runs.len(), 2);
        for r in &report.runs {
            assert!(
                r.speedup() >= 3.0,
                "table {} only sped up {:.2}×",
                r.table,
                r.speedup()
            );
        }
    }

    #[test]
    fn bigger_init_tables_widen_the_absolute_gap() {
        let report = run(true, 7);
        let (small, large) = (&report.runs[0], &report.runs[1]);
        assert!(large.table > small.table);
        assert!(
            large.full_us - large.restore_us > small.full_us - small.restore_us,
            "the snapshot path must save more as init work grows: {report:?}"
        );
    }

    #[test]
    fn report_rendering_is_deterministic() {
        let a = run(true, 7);
        let b = run(true, 7);
        assert_eq!(to_table(&a), to_table(&b));
        assert_eq!(to_json(&a), to_json(&b));
    }
}
