//! Property-based tests of the kernel computations' mathematical
//! invariants.

use proptest::prelude::*;

use kaas_kernels::{
    box_resize, evolve_generation, histogram256, matmul, rastrigin, soft_dtw, Kernel, MatMul,
    SoftDtw, Value, GENES,
};
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// (A·B)·C == A·(B·C) for random square matrices.
    #[test]
    fn matmul_is_associative(
        vals in prop::collection::vec(-2.0f64..2.0, 27 * 3),
    ) {
        let n = 3;
        let a = &vals[0..9];
        let b = &vals[9..18];
        let c = &vals[18..27];
        let ab_c = matmul(&matmul(a, b, n, n, n), c, n, n, n);
        let a_bc = matmul(a, &matmul(b, c, n, n, n), n, n, n);
        for (x, y) in ab_c.iter().zip(&a_bc) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    /// Multiplying by the identity changes nothing (any size).
    #[test]
    fn matmul_identity(n in 1usize..12, seed in 0u64..100) {
        use rand::Rng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a: Vec<f64> = (0..n * n).map(|_| rng.gen_range(-5.0..5.0)).collect();
        let mut id = vec![0.0; n * n];
        for i in 0..n {
            id[i * n + i] = 1.0;
        }
        let out = matmul(&a, &id, n, n, n);
        for (x, y) in out.iter().zip(&a) {
            prop_assert!((x - y).abs() < 1e-12);
        }
    }

    /// Soft-DTW: symmetric, non-negative for γ=0, zero on identical
    /// inputs, and a lower bound of the hard distance for γ>0.
    #[test]
    fn soft_dtw_properties(
        a in prop::collection::vec(-3.0f64..3.0, 1..40),
        b in prop::collection::vec(-3.0f64..3.0, 1..40),
        gamma in 0.01f64..2.0,
    ) {
        let hard = soft_dtw(&a, &b, 0.0);
        let soft = soft_dtw(&a, &b, gamma);
        prop_assert!(hard >= 0.0);
        prop_assert!(soft <= hard + 1e-9, "soft {soft} > hard {hard}");
        prop_assert!((soft_dtw(&a, &b, gamma) - soft_dtw(&b, &a, gamma)).abs() < 1e-9);
        prop_assert!(soft_dtw(&a, &a, 0.0).abs() < 1e-12);
    }

    /// Histograms conserve mass and count correctly per bin.
    #[test]
    fn histogram_conserves_mass(data in prop::collection::vec(any::<u8>(), 0..2000)) {
        let bins = histogram256(&data);
        prop_assert_eq!(bins.iter().sum::<u64>(), data.len() as u64);
        for (value, &count) in bins.iter().enumerate() {
            let expected = data.iter().filter(|&&b| b as usize == value).count() as u64;
            prop_assert_eq!(count, expected);
        }
    }

    /// GA generations preserve population shape and bounds, and never
    /// invent NaNs.
    #[test]
    fn ga_generation_is_well_formed(n in 1usize..20, seed in 0u64..200) {
        use rand::Rng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let pop: Vec<f64> = (0..n * GENES).map(|_| rng.gen_range(-5.12..5.12)).collect();
        let next = evolve_generation(&pop, &mut rng);
        prop_assert_eq!(next.len(), pop.len());
        prop_assert!(next.iter().all(|g| g.is_finite() && (-5.12..=5.12).contains(g)));
    }

    /// Rastrigin is non-negative with its global minimum at the origin.
    #[test]
    fn rastrigin_bounds(x in prop::collection::vec(-5.12f64..5.12, 1..50)) {
        prop_assert!(rastrigin(&x) >= -1e-9);
    }

    /// Box resize preserves the global min/max envelope of the image.
    #[test]
    fn box_resize_stays_in_range(
        w in 4usize..40,
        h in 4usize..40,
        target in 1usize..32,
        seed in 0u64..100,
    ) {
        use rand::Rng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let img: Vec<u8> = (0..w * h).map(|_| rng.gen()).collect();
        let lo = *img.iter().min().unwrap();
        let hi = *img.iter().max().unwrap();
        let out = box_resize(&img, w, h, 1, target);
        prop_assert_eq!(out.len(), target * target);
        prop_assert!(out.iter().all(|&p| (lo..=hi).contains(&p)));
    }

    /// Every kernel's work profile is sane for any granularity: finite,
    /// non-negative FLOPs, and monotone in N.
    #[test]
    fn matmul_work_profile_is_monotone(n1 in 8u64..4000, delta in 1u64..4000) {
        let k = MatMul::new();
        let w1 = k.work(&Value::U64(n1)).unwrap();
        let w2 = k.work(&Value::U64(n1 + delta)).unwrap();
        prop_assert!(w1.flops.is_finite() && w1.flops >= 0.0);
        prop_assert!(w2.flops > w1.flops);
        prop_assert!(w2.bytes_in > w1.bytes_in);
    }

    /// The DTW kernel accepts any positive N and its real execution is
    /// finite (soft-DTW may legitimately go negative for γ > 0, so only
    /// finiteness is required).
    #[test]
    fn dtw_kernel_total_and_finite(n in 2u64..300) {
        let k = SoftDtw::default();
        let out = k.execute(&Value::U64(n)).unwrap();
        match out {
            Value::F64(v) => prop_assert!(v.is_finite()),
            other => prop_assert!(false, "unexpected output {other:?}"),
        }
    }
}
