//! Property-style tests of the kernel computations' mathematical
//! invariants.
//!
//! Randomized cases come from the in-tree deterministic RNG instead of
//! an external property-test framework, so the suite builds with no
//! registry access. Enable with `--features proptest-tests`.
#![cfg(feature = "proptest-tests")]

use kaas_kernels::{
    box_resize, evolve_generation, histogram256, matmul, rastrigin, soft_dtw, Kernel, MatMul,
    SoftDtw, Value, GENES,
};
use kaas_simtime::rng::det_rng;

const CASES: u64 = 48;

/// (A·B)·C == A·(B·C) for random square matrices.
#[test]
fn matmul_is_associative() {
    for case in 0..CASES {
        let mut rng = det_rng(0xE0_0000 + case);
        let vals: Vec<f64> = (0..27 * 3).map(|_| rng.gen_range(-2.0..2.0f64)).collect();
        let n = 3;
        let a = &vals[0..9];
        let b = &vals[9..18];
        let c = &vals[18..27];
        let ab_c = matmul(&matmul(a, b, n, n, n), c, n, n, n);
        let a_bc = matmul(a, &matmul(b, c, n, n, n), n, n, n);
        for (x, y) in ab_c.iter().zip(&a_bc) {
            assert!((x - y).abs() < 1e-9);
        }
    }
}

/// Multiplying by the identity changes nothing (any size).
#[test]
fn matmul_identity() {
    for case in 0..CASES {
        let mut rng = det_rng(0xE1_0000 + case);
        let n = rng.gen_range(1..12usize);
        let a: Vec<f64> = (0..n * n).map(|_| rng.gen_range(-5.0..5.0f64)).collect();
        let mut id = vec![0.0; n * n];
        for i in 0..n {
            id[i * n + i] = 1.0;
        }
        let out = matmul(&a, &id, n, n, n);
        for (x, y) in out.iter().zip(&a) {
            assert!((x - y).abs() < 1e-12);
        }
    }
}

/// Soft-DTW: symmetric, non-negative for γ=0, zero on identical
/// inputs, and a lower bound of the hard distance for γ>0.
#[test]
fn soft_dtw_properties() {
    for case in 0..CASES {
        let mut rng = det_rng(0xE2_0000 + case);
        let la = rng.gen_range(1..40usize);
        let lb = rng.gen_range(1..40usize);
        let a: Vec<f64> = (0..la).map(|_| rng.gen_range(-3.0..3.0f64)).collect();
        let b: Vec<f64> = (0..lb).map(|_| rng.gen_range(-3.0..3.0f64)).collect();
        let gamma = rng.gen_range(0.01..2.0f64);

        let hard = soft_dtw(&a, &b, 0.0);
        let soft = soft_dtw(&a, &b, gamma);
        assert!(hard >= 0.0);
        assert!(soft <= hard + 1e-9, "soft {soft} > hard {hard}");
        assert!((soft_dtw(&a, &b, gamma) - soft_dtw(&b, &a, gamma)).abs() < 1e-9);
        assert!(soft_dtw(&a, &a, 0.0).abs() < 1e-12);
    }
}

/// Histograms conserve mass and count correctly per bin.
#[test]
fn histogram_conserves_mass() {
    for case in 0..CASES {
        let mut rng = det_rng(0xE3_0000 + case);
        let n = rng.gen_range(0..2000usize);
        let data: Vec<u8> = (0..n).map(|_| rng.gen()).collect();

        let bins = histogram256(&data);
        assert_eq!(bins.iter().sum::<u64>(), data.len() as u64);
        for (value, &count) in bins.iter().enumerate() {
            let expected = data.iter().filter(|&&b| b as usize == value).count() as u64;
            assert_eq!(count, expected);
        }
    }
}

/// GA generations preserve population shape and bounds, and never
/// invent NaNs.
#[test]
fn ga_generation_is_well_formed() {
    for case in 0..CASES {
        let mut rng = det_rng(0xE4_0000 + case);
        let n = rng.gen_range(1..20usize);
        let pop: Vec<f64> = (0..n * GENES)
            .map(|_| rng.gen_range(-5.12..5.12f64))
            .collect();
        let next = evolve_generation(&pop, &mut rng);
        assert_eq!(next.len(), pop.len());
        assert!(next
            .iter()
            .all(|g| g.is_finite() && (-5.12..=5.12).contains(g)));
    }
}

/// Rastrigin is non-negative with its global minimum at the origin.
#[test]
fn rastrigin_bounds() {
    for case in 0..CASES {
        let mut rng = det_rng(0xE5_0000 + case);
        let n = rng.gen_range(1..50usize);
        let x: Vec<f64> = (0..n).map(|_| rng.gen_range(-5.12..5.12f64)).collect();
        assert!(rastrigin(&x) >= -1e-9);
    }
}

/// Box resize preserves the global min/max envelope of the image.
#[test]
fn box_resize_stays_in_range() {
    for case in 0..CASES {
        let mut rng = det_rng(0xE6_0000 + case);
        let w = rng.gen_range(4..40usize);
        let h = rng.gen_range(4..40usize);
        let target = rng.gen_range(1..32usize);
        let img: Vec<u8> = (0..w * h).map(|_| rng.gen()).collect();
        let lo = *img.iter().min().unwrap();
        let hi = *img.iter().max().unwrap();
        let out = box_resize(&img, w, h, 1, target);
        assert_eq!(out.len(), target * target);
        assert!(out.iter().all(|&p| (lo..=hi).contains(&p)));
    }
}

/// Every kernel's work profile is sane for any granularity: finite,
/// non-negative FLOPs, and monotone in N.
#[test]
fn matmul_work_profile_is_monotone() {
    for case in 0..CASES {
        let mut rng = det_rng(0xE7_0000 + case);
        let n1 = rng.gen_range(8..4000u64);
        let delta = rng.gen_range(1..4000u64);
        let k = MatMul::new();
        let w1 = k.work(&Value::U64(n1)).unwrap();
        let w2 = k.work(&Value::U64(n1 + delta)).unwrap();
        assert!(w1.flops.is_finite() && w1.flops >= 0.0);
        assert!(w2.flops > w1.flops);
        assert!(w2.bytes_in > w1.bytes_in);
    }
}

/// The DTW kernel accepts any positive N and its real execution is
/// finite (soft-DTW may legitimately go negative for γ > 0, so only
/// finiteness is required).
#[test]
fn dtw_kernel_total_and_finite() {
    for case in 0..CASES {
        let mut rng = det_rng(0xE8_0000 + case);
        let n = rng.gen_range(2..300u64);
        let k = SoftDtw::default();
        let out = k.execute(&Value::U64(n)).unwrap();
        match out {
            Value::F64(v) => assert!(v.is_finite()),
            other => panic!("unexpected output {other:?}"),
        }
    }
}
