//! ResNet-50 inference (the paper's §5.4 scaling workload).
//!
//! Reproducing Fig. 12 needs the *cost structure* of ResNet-50, not its
//! weights: the experiment measures dispatch and device scaling of 8 000
//! batches of eight images. We therefore carry a layer-accurate FLOP
//! table derived from the actual architecture (He et al. 2016) and
//! execute a checksum-producing reduced computation.

use kaas_accel::{DeviceClass, WorkUnits};

use crate::conv2d::conv2d_direct;
use crate::kernel::{require_n, Kernel, KernelError};
use crate::value::Value;

/// One convolution stage of the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvStage {
    /// Output spatial resolution (square).
    pub resolution: usize,
    /// Input channels.
    pub c_in: usize,
    /// Output channels.
    pub c_out: usize,
    /// Filter size (square).
    pub kernel: usize,
    /// Number of such convolutions in the network.
    pub count: usize,
}

impl ConvStage {
    /// Multiply-accumulate count for this stage (×2 for FLOPs).
    pub fn macs(&self) -> f64 {
        (self.resolution * self.resolution) as f64
            * (self.kernel * self.kernel) as f64
            * self.c_in as f64
            * self.c_out as f64
            * self.count as f64
    }
}

/// The ResNet-50 stage table (bottleneck blocks: 1×1 → 3×3 → 1×1, four
/// stages of 3/4/6/3 blocks, plus stem and classifier).
pub fn resnet50_stages() -> Vec<ConvStage> {
    let mut stages = vec![
        // Stem: 7×7/2, 3→64 at 112².
        ConvStage {
            resolution: 112,
            c_in: 3,
            c_out: 64,
            kernel: 7,
            count: 1,
        },
    ];
    // (blocks, resolution, width) per stage; bottleneck expansion ×4.
    let specs = [
        (3usize, 56usize, 64usize),
        (4, 28, 128),
        (6, 14, 256),
        (3, 7, 512),
    ];
    for (blocks, res, width) in specs {
        let expanded = width * 4;
        // Per block: 1×1 reduce, 3×3, 1×1 expand (input channel counts
        // vary by position; use the steady-state width — the aggregate
        // FLOP total lands on the canonical ≈4.1 GFLOP figure).
        stages.push(ConvStage {
            resolution: res,
            c_in: expanded,
            c_out: width,
            kernel: 1,
            count: blocks,
        });
        stages.push(ConvStage {
            resolution: res,
            c_in: width,
            c_out: width,
            kernel: 3,
            count: blocks,
        });
        stages.push(ConvStage {
            resolution: res,
            c_in: width,
            c_out: expanded,
            kernel: 1,
            count: blocks,
        });
    }
    // Classifier: 2048 → 1000 fully connected.
    stages.push(ConvStage {
        resolution: 1,
        c_in: 2048,
        c_out: 1000,
        kernel: 1,
        count: 1,
    });
    stages
}

/// Total inference FLOPs for one 224×224 image.
pub fn resnet50_flops_per_image() -> f64 {
    resnet50_stages().iter().map(|s| 2.0 * s.macs()).sum()
}

/// Input bytes for one image (224×224×3, fp32 after preprocessing).
pub const IMAGE_BYTES: u64 = 224 * 224 * 3 * 4;

/// ResNet-50 batch inference.
///
/// Input: `Value::U64(batch_size)` (the paper uses 8). Output:
/// `Value::F64s` of `batch_size` pseudo-logit checksums produced by a
/// real reduced convolution per image.
#[derive(Debug, Clone, Default)]
pub struct ResNet50;

impl ResNet50 {
    /// Creates the kernel.
    pub fn new() -> Self {
        ResNet50
    }
}

impl Kernel for ResNet50 {
    fn name(&self) -> &str {
        "resnet50"
    }

    fn device_class(&self) -> DeviceClass {
        DeviceClass::Gpu
    }

    fn demand(&self) -> f64 {
        0.5
    }

    fn work(&self, input: &Value) -> Result<WorkUnits, KernelError> {
        let batch = require_n("resnet50", input)?;
        if batch == 0 {
            return Err(KernelError::BadInput("batch must be non-empty".into()));
        }
        Ok(WorkUnits::new(batch as f64 * resnet50_flops_per_image())
            .with_bytes(batch * IMAGE_BYTES, batch * 1000 * 4)
            // Mixed-precision tensor cores push past the dense-GEMM
            // baseline rate (calibrated to ≈8.75 ms per 8-image batch on
            // a V100, Fig. 12a's 70.02 s for 8 000 batches).
            .with_efficiency(1.5))
    }

    fn execute(&self, input: &Value) -> Result<Value, KernelError> {
        let batch = require_n("resnet50", input)?;
        if batch == 0 {
            return Err(KernelError::BadInput("batch must be non-empty".into()));
        }
        // Reduced real computation: one 3×3 conv over a 32² crop per
        // image, deterministic per image index.
        let mut out = Vec::with_capacity(batch.min(64) as usize);
        for img in 0..batch.min(64) {
            let n = 32usize;
            let input: Vec<f64> = (0..n * n)
                .map(|i| (((i as u64 + img * 7919) % 251) as f64) / 251.0)
                .collect();
            let filter = vec![1.0 / 9.0; 9];
            let conv = conv2d_direct(&input, n, &filter, 3);
            out.push(conv.iter().sum::<f64>());
        }
        Ok(Value::F64s(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_count_matches_canonical_figure() {
        // torchvision reports ≈ 4.09 GMACs for ResNet-50 (often quoted
        // as "4.1 GFLOPs"); our steady-state table should land in the
        // 3.3–4.5 GMAC band (FLOPs = 2 × MACs).
        let gmacs = resnet50_flops_per_image() / 2.0;
        assert!(
            (3.3e9..4.5e9).contains(&gmacs),
            "ResNet-50 MACs/image = {gmacs:e}"
        );
    }

    #[test]
    fn stage_table_has_all_stages() {
        let stages = resnet50_stages();
        // Stem + 4 stages × 3 convs + classifier.
        assert_eq!(stages.len(), 1 + 12 + 1);
        // The 3×3 convolutions dominate cost within each stage.
        assert!(stages.iter().any(|s| s.kernel == 7));
        assert!(stages.iter().any(|s| s.kernel == 3));
    }

    #[test]
    fn batch_work_is_linear() {
        let k = ResNet50::new();
        let w1 = k.work(&Value::U64(1)).unwrap();
        let w8 = k.work(&Value::U64(8)).unwrap();
        assert!((w8.flops / w1.flops - 8.0).abs() < 1e-12);
        assert_eq!(w8.bytes_in, 8 * IMAGE_BYTES);
    }

    #[test]
    fn v100_batch_time_lands_near_paper() {
        // 8 images × flops / (4.4 TFLOP/s × 1.5) ≈ 8.75 ms (Fig. 12a).
        let k = ResNet50::new();
        let w = k.work(&Value::U64(8)).unwrap();
        let secs = w.flops / w.efficiency / 4.4e12;
        assert!((secs - 0.00875).abs() < 0.0015, "batch time {secs}s");
    }

    #[test]
    fn execute_returns_per_image_checksums() {
        let k = ResNet50::new();
        match k.execute(&Value::U64(8)).unwrap() {
            Value::F64s(v) => {
                assert_eq!(v.len(), 8);
                assert!(v.iter().all(|x| x.is_finite()));
                // Images differ, so checksums should not be all equal.
                assert!(v.windows(2).any(|w| w[0] != w[1]));
            }
            other => panic!("expected F64s, got {other:?}"),
        }
    }

    #[test]
    fn empty_batch_rejected() {
        assert!(ResNet50::new().work(&Value::U64(0)).is_err());
    }
}
