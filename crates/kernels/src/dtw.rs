//! Soft dynamic time warping (the paper's §5.6.1 DTW kernel, implemented
//! as soft-DTW after Cuturi & Blondel 2017).

use kaas_accel::{DeviceClass, WorkUnits};
use kaas_simtime::rng::DetRng;

use crate::kernel::{Kernel, KernelError};
use crate::value::Value;

/// The paper batches 200 groups of ten sequences per task.
const BATCHES: u64 = 200;
const SEQS_PER_BATCH: u64 = 10;
/// Longest sequence `execute` computes for real in descriptor mode.
const EXEC_CAP: usize = 256;

/// Numerically stable soft-minimum with smoothing `gamma`.
fn soft_min(a: f64, b: f64, c: f64, gamma: f64) -> f64 {
    if gamma <= 0.0 {
        return a.min(b).min(c);
    }
    let m = a.min(b).min(c);
    let sum = (-(a - m) / gamma).exp() + (-(b - m) / gamma).exp() + (-(c - m) / gamma).exp();
    m - gamma * sum.ln()
}

/// Computes the soft-DTW discrepancy between two sequences.
///
/// With `gamma == 0` this reduces to classic DTW.
///
/// # Panics
///
/// Panics if either sequence is empty.
pub fn soft_dtw(a: &[f64], b: &[f64], gamma: f64) -> f64 {
    assert!(
        !a.is_empty() && !b.is_empty(),
        "sequences must be non-empty"
    );
    let (n, m) = (a.len(), b.len());
    let inf = f64::INFINITY;
    // One rolling row of the DP table, with a virtual border of +inf.
    let mut prev = vec![inf; m + 1];
    let mut curr = vec![inf; m + 1];
    prev[0] = 0.0;
    for i in 1..=n {
        curr[0] = inf;
        for j in 1..=m {
            let cost = (a[i - 1] - b[j - 1]).powi(2);
            curr[j] = cost + soft_min(prev[j - 1], prev[j], curr[j - 1], gamma);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[m]
}

/// The DTW kernel: 200 batches of ten random sequences of length `N`
/// scored against a per-batch query (2 000 soft-DTW evaluations).
///
/// Input modes:
///
/// * `Value::U64(n)` — descriptor mode (sequence length `n`); `execute`
///   scores one representative batch at `min(n, 256)` and returns the
///   mean discrepancy.
/// * `Value::List([a, b])` of two `F64s` — one real soft-DTW evaluation.
#[derive(Debug, Clone)]
pub struct SoftDtw {
    gamma: f64,
}

impl Default for SoftDtw {
    fn default() -> Self {
        Self::new(1.0)
    }
}

impl SoftDtw {
    /// Creates the kernel with smoothing `gamma`.
    pub fn new(gamma: f64) -> Self {
        assert!(gamma >= 0.0, "gamma must be non-negative");
        SoftDtw { gamma }
    }
}

impl Kernel for SoftDtw {
    fn name(&self) -> &str {
        "dtw"
    }

    fn device_class(&self) -> DeviceClass {
        DeviceClass::Gpu
    }

    fn demand(&self) -> f64 {
        0.2
    }

    fn work(&self, input: &Value) -> Result<WorkUnits, KernelError> {
        match input {
            Value::U64(n) => {
                let n = *n as f64;
                // 9 FLOPs per DP cell (cost + 3 exp-class soft-min ops).
                let flops = BATCHES as f64 * SEQS_PER_BATCH as f64 * n * n * 9.0;
                Ok(WorkUnits::new(flops)
                    // Sequences in, one score per (batch, sequence) out.
                    .with_bytes(
                        BATCHES * SEQS_PER_BATCH * (n as u64) * 8,
                        BATCHES * SEQS_PER_BATCH * 8,
                    )
                    // Wavefront dependences keep GPU efficiency low.
                    .with_efficiency(0.0047))
            }
            Value::List(items) if items.len() == 2 => {
                let a = items[0]
                    .as_f64s()
                    .ok_or_else(|| KernelError::BadInput("dtw expects F64s".into()))?;
                let b = items[1]
                    .as_f64s()
                    .ok_or_else(|| KernelError::BadInput("dtw expects F64s".into()))?;
                Ok(WorkUnits::new((a.len() * b.len()) as f64 * 9.0)
                    .with_bytes(8 * (a.len() + b.len()) as u64, 8)
                    .with_efficiency(0.0047))
            }
            other => Err(KernelError::BadInput(format!(
                "dtw expects U64(n) or List([a, b]), got {other:?}"
            ))),
        }
    }

    fn execute(&self, input: &Value) -> Result<Value, KernelError> {
        match input {
            Value::U64(n) => {
                let len = (*n as usize).clamp(2, EXEC_CAP);
                let mut rng = DetRng::seed_from_u64(7 ^ *n);
                let query: Vec<f64> = (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect();
                let mut total = 0.0;
                for _ in 0..SEQS_PER_BATCH {
                    let seq: Vec<f64> = (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect();
                    total += soft_dtw(&query, &seq, self.gamma);
                }
                Ok(Value::F64(total / SEQS_PER_BATCH as f64))
            }
            Value::List(items) if items.len() == 2 => {
                let a = items[0]
                    .as_f64s()
                    .ok_or_else(|| KernelError::BadInput("dtw expects F64s".into()))?;
                let b = items[1]
                    .as_f64s()
                    .ok_or_else(|| KernelError::BadInput("dtw expects F64s".into()))?;
                if a.is_empty() || b.is_empty() {
                    return Err(KernelError::BadInput(
                        "dtw sequences must be non-empty".into(),
                    ));
                }
                Ok(Value::F64(soft_dtw(a, b, self.gamma)))
            }
            other => Err(KernelError::BadInput(format!(
                "dtw expects U64(n) or List([a, b]), got {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::require_n;

    #[test]
    fn identical_sequences_have_zero_hard_dtw() {
        let a = vec![0.0, 1.0, 2.0, 1.0];
        assert_eq!(soft_dtw(&a, &a, 0.0), 0.0);
    }

    #[test]
    fn hard_dtw_matches_hand_computed() {
        // a=[0,1], b=[0,1,1]: perfect warp, distance 0.
        assert_eq!(soft_dtw(&[0.0, 1.0], &[0.0, 1.0, 1.0], 0.0), 0.0);
        // a=[0], b=[2]: single cell (0-2)² = 4.
        assert_eq!(soft_dtw(&[0.0], &[2.0], 0.0), 4.0);
    }

    #[test]
    fn soft_dtw_lower_bounds_hard_dtw() {
        // soft-min ≤ min, so soft-DTW ≤ DTW for γ > 0.
        let a = vec![0.0, 0.5, 1.3, -0.4, 0.9];
        let b = vec![0.1, 0.4, 1.0, -0.2];
        assert!(soft_dtw(&a, &b, 1.0) <= soft_dtw(&a, &b, 0.0) + 1e-12);
    }

    #[test]
    fn gamma_zero_limit_is_continuous() {
        let a = vec![0.3, 1.1, 0.2];
        let b = vec![0.2, 1.0, 0.4];
        let hard = soft_dtw(&a, &b, 0.0);
        let soft = soft_dtw(&a, &b, 1e-6);
        assert!((hard - soft).abs() < 1e-3);
    }

    #[test]
    fn dtw_is_symmetric() {
        let a = vec![0.0, 1.0, 0.5, 0.2];
        let b = vec![0.3, 0.8, 0.1];
        assert!((soft_dtw(&a, &b, 0.5) - soft_dtw(&b, &a, 0.5)).abs() < 1e-12);
    }

    #[test]
    fn kernel_work_scales_quadratically() {
        let k = SoftDtw::default();
        let w1 = k.work(&Value::U64(100)).unwrap().flops;
        let w2 = k.work(&Value::U64(200)).unwrap().flops;
        assert!((w2 / w1 - 4.0).abs() < 1e-12);
    }

    #[test]
    fn kernel_executes_both_modes() {
        let k = SoftDtw::default();
        let by_n = k.execute(&Value::U64(64)).unwrap();
        assert!(matches!(by_n, Value::F64(v) if v.is_finite()));
        let pair = Value::List(vec![
            Value::F64s(vec![0.0, 1.0]),
            Value::F64s(vec![0.0, 1.0]),
        ]);
        let direct = k.execute(&pair).unwrap();
        assert!(matches!(direct, Value::F64(v) if v <= 1e-9));
        let _ = require_n("dtw", &Value::U64(1)).unwrap();
    }

    #[test]
    fn empty_sequence_rejected() {
        let k = SoftDtw::default();
        let pair = Value::List(vec![Value::F64s(vec![]), Value::F64s(vec![1.0])]);
        assert!(k.execute(&pair).is_err());
    }
}
