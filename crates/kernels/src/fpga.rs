//! FPGA kernels (§5.6.2): integer histogram and bitmap conversion, as
//! PyLog-class pipelines. Both computations are fully real; the declared
//! cycle counts model the unoptimized PyLog pipelines the paper measures
//! (≈ 0.4 s on the Alveo U250, versus 80–100 ms hand-tuned RTL).

use kaas_accel::{DeviceClass, WorkUnits};
use kaas_simtime::rng::DetRng;

use crate::kernel::{Kernel, KernelError};
use crate::value::Value;

/// The paper's histogram input length (a random array of 2 097 504
/// integers in 0..=255).
pub const HISTOGRAM_LEN: u64 = 2_097_504;
/// PyLog pipeline cost per element (56 cycles ≈ 0.39 s at 300 MHz for
/// the paper's input).
const HIST_CYCLES_PER_ELEM: f64 = 56.0;
/// Default bitmap-conversion frame (4K RGB).
pub const BITMAP_WIDTH: usize = 3840;
/// Default bitmap-conversion frame height.
pub const BITMAP_HEIGHT: usize = 2160;
/// PyLog pipeline cost per pixel.
const BITMAP_CYCLES_PER_PIXEL: f64 = 9.0;
/// Pixel cap for real execution in descriptor mode.
const EXEC_PIXEL_CAP: usize = 1 << 20;

/// Computes the 256-bin histogram of a byte buffer.
pub fn histogram256(data: &[u8]) -> [u64; 256] {
    let mut bins = [0u64; 256];
    for &b in data {
        bins[b as usize] += 1;
    }
    bins
}

/// 256-bin integer histogram (FPGA class).
///
/// Input modes: `Value::U64(len)` (deterministic random array of `len`
/// bytes) or `Value::Bytes(data)`. Output: `Value::F64s` of 256 counts.
#[derive(Debug, Clone, Default)]
pub struct Histogram;

impl Histogram {
    /// Creates the kernel.
    pub fn new() -> Self {
        Histogram
    }
}

impl Kernel for Histogram {
    fn name(&self) -> &str {
        "histogram"
    }

    fn device_class(&self) -> DeviceClass {
        DeviceClass::Fpga
    }

    fn work(&self, input: &Value) -> Result<WorkUnits, KernelError> {
        let len = match input {
            Value::U64(len) => *len,
            Value::Bytes(b) => b.len() as u64,
            other => {
                return Err(KernelError::BadInput(format!(
                    "histogram expects U64(len) or Bytes, got {other:?}"
                )))
            }
        };
        Ok(WorkUnits::new(len as f64)
            .with_bytes(len * 4, 256 * 8)
            .with_fpga_cycles(len as f64 * HIST_CYCLES_PER_ELEM))
    }

    fn execute(&self, input: &Value) -> Result<Value, KernelError> {
        let data: Vec<u8> = match input {
            Value::U64(len) => {
                let real_len = (*len as usize).min(EXEC_PIXEL_CAP);
                let mut rng = DetRng::seed_from_u64(0x415 ^ len);
                (0..real_len).map(|_| rng.gen()).collect()
            }
            Value::Bytes(b) => b.clone(),
            other => {
                return Err(KernelError::BadInput(format!(
                    "histogram expects U64(len) or Bytes, got {other:?}"
                )))
            }
        };
        let bins = histogram256(&data);
        Ok(Value::F64s(bins.iter().map(|&c| c as f64).collect()))
    }
}

/// Converts an interleaved-RGB (or grayscale) image to a 1-bit-per-pixel
/// bitmap via luma thresholding; returns one byte per pixel (0/1).
pub fn to_bitmap(pixels: &[u8], channels: usize, threshold: u8) -> Vec<u8> {
    assert!(channels == 1 || channels == 3, "1 or 3 channels supported");
    pixels
        .chunks_exact(channels)
        .map(|px| {
            let luma = if channels == 3 {
                // Integer BT.601 luma.
                (px[0] as u32 * 299 + px[1] as u32 * 587 + px[2] as u32 * 114) / 1000
            } else {
                px[0] as u32
            };
            u8::from(luma as u8 >= threshold)
        })
        .collect()
}

/// Bitmap conversion (the Fig. 1 workflow's middle task and the second
/// §5.6.2 FPGA kernel).
///
/// Input modes: `Value::U64(pixels)` (synthetic gradient frame) or a
/// `Value::Image`. Output: `Value::Image` with one 0/1 byte per pixel.
#[derive(Debug, Clone)]
pub struct BitmapConversion {
    threshold: u8,
}

impl Default for BitmapConversion {
    fn default() -> Self {
        Self::new(128)
    }
}

impl BitmapConversion {
    /// Creates the kernel with a luma threshold.
    pub fn new(threshold: u8) -> Self {
        BitmapConversion { threshold }
    }

    /// Builds the deterministic synthetic test frame used in descriptor
    /// mode (a diagonal gradient).
    pub fn synthetic_frame(width: usize, height: usize) -> Value {
        let pixels: Vec<u8> = (0..height)
            .flat_map(|y| (0..width).map(move |x| (((x + y) * 255) / (width + height)) as u8))
            .flat_map(|g| [g, g, g])
            .collect();
        Value::image(pixels, width, height, 3)
    }
}

impl Kernel for BitmapConversion {
    fn name(&self) -> &str {
        "bitmap"
    }

    fn device_class(&self) -> DeviceClass {
        DeviceClass::Fpga
    }

    fn work(&self, input: &Value) -> Result<WorkUnits, KernelError> {
        let (pixels, channels) = match input {
            Value::U64(p) => (*p, 3u64),
            Value::Image {
                width,
                height,
                channels,
                ..
            } => ((width * height) as u64, *channels as u64),
            other => {
                return Err(KernelError::BadInput(format!(
                    "bitmap expects U64(pixels) or Image, got {other:?}"
                )))
            }
        };
        Ok(WorkUnits::new(pixels as f64 * 5.0)
            .with_bytes(pixels * channels, pixels)
            .with_fpga_cycles(pixels as f64 * BITMAP_CYCLES_PER_PIXEL))
    }

    fn execute(&self, input: &Value) -> Result<Value, KernelError> {
        let (pixels, width, height, channels) = match input {
            Value::U64(p) => {
                // Synthetic square-ish frame capped for real execution.
                let p = (*p as usize).min(EXEC_PIXEL_CAP);
                let w = (p as f64).sqrt() as usize;
                let w = w.max(1);
                let h = (p / w).max(1);
                match Self::synthetic_frame(w, h) {
                    Value::Image {
                        pixels,
                        width,
                        height,
                        channels,
                    } => (pixels, width, height, channels),
                    _ => unreachable!(),
                }
            }
            Value::Image {
                pixels,
                width,
                height,
                channels,
            } => (pixels.clone(), *width, *height, *channels),
            other => {
                return Err(KernelError::BadInput(format!(
                    "bitmap expects U64(pixels) or Image, got {other:?}"
                )))
            }
        };
        if channels != 1 && channels != 3 {
            return Err(KernelError::BadInput(format!(
                "bitmap supports 1 or 3 channels, got {channels}"
            )));
        }
        let bits = to_bitmap(&pixels, channels, self.threshold);
        Ok(Value::image(bits, width, height, 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_counts_every_element() {
        let data = vec![0u8, 0, 1, 255, 255, 255];
        let bins = histogram256(&data);
        assert_eq!(bins[0], 2);
        assert_eq!(bins[1], 1);
        assert_eq!(bins[255], 3);
        assert_eq!(bins.iter().sum::<u64>(), 6);
    }

    #[test]
    fn histogram_kernel_total_matches_len() {
        let k = Histogram::new();
        let out = k.execute(&Value::U64(10_000)).unwrap();
        if let Value::F64s(bins) = out {
            assert_eq!(bins.len(), 256);
            let total: f64 = bins.iter().sum();
            assert_eq!(total, 10_000.0);
        } else {
            panic!("expected F64s");
        }
    }

    #[test]
    fn histogram_paper_input_cycles() {
        let k = Histogram::new();
        let w = k.work(&Value::U64(HISTOGRAM_LEN)).unwrap();
        // ≈ 0.39 s at 300 MHz — the PyLog-class kernel time of Fig. 15.
        let secs = w.fpga_cycles / 300.0e6;
        assert!((secs - 0.39).abs() < 0.02, "secs={secs}");
    }

    #[test]
    fn bitmap_thresholds_gradient() {
        let frame = BitmapConversion::synthetic_frame(64, 64);
        let k = BitmapConversion::new(128);
        let out = k.execute(&frame).unwrap();
        if let Value::Image {
            pixels, channels, ..
        } = out
        {
            assert_eq!(channels, 1);
            assert!(pixels.iter().all(|&b| b <= 1));
            // A gradient must produce both black and white regions.
            assert!(pixels.contains(&0) && pixels.contains(&1));
        } else {
            panic!("expected Image");
        }
    }

    #[test]
    fn bitmap_grayscale_passthrough() {
        let img = Value::image(vec![10, 200, 90, 255], 2, 2, 1);
        let out = BitmapConversion::new(100).execute(&img).unwrap();
        if let Value::Image { pixels, .. } = out {
            assert_eq!(pixels, vec![0, 1, 0, 1]);
        } else {
            panic!("expected Image");
        }
    }

    #[test]
    fn bitmap_work_counts_pixels() {
        let k = BitmapConversion::default();
        let w = k
            .work(&Value::U64((BITMAP_WIDTH * BITMAP_HEIGHT) as u64))
            .unwrap();
        assert_eq!(w.bytes_in, (BITMAP_WIDTH * BITMAP_HEIGHT * 3) as u64);
        assert!(w.fpga_cycles > 0.0);
    }

    #[test]
    fn bad_inputs_rejected() {
        assert!(Histogram::new().execute(&Value::Unit).is_err());
        assert!(BitmapConversion::default().execute(&Value::Unit).is_err());
    }
}
