//! Graph-neural-network training (the paper's §5.6.1 GNN kernel): node
//! classification with a two-layer graph convolutional network, trained
//! with full-batch gradient descent and a manually derived backward pass.
//! The training loop is fully real on a synthetic citation-style graph.

use kaas_accel::{DeviceClass, WorkUnits};
use kaas_simtime::rng::DetRng;

use crate::kernel::{require_n, Kernel, KernelError};
use crate::matmul::matmul;
use crate::value::Value;

/// Synthetic graph size used by the real training loop.
const NODES: usize = 128;
const FEATURES: usize = 8;
const HIDDEN: usize = 16;
const CLASSES: usize = 4;
/// Real training iterations are capped (timing uses the declared count).
const EXEC_CAP: u64 = 60;
/// Declared per-iteration device work, calibrated to a Cora-scale DGL
/// graph on the paper's P100 (Fig. 14 GNN axis: ~tens of seconds at
/// N=4 096 iterations including per-invocation baseline overhead).
const FLOPS_PER_ITER: f64 = 3.5e9;

/// A dense symmetric-normalized adjacency with self-loops (Â = D^-½ (A+I) D^-½).
#[derive(Debug, Clone)]
pub struct Graph {
    /// Number of nodes.
    pub nodes: usize,
    /// Row-major normalized adjacency, `nodes × nodes`.
    pub adj: Vec<f64>,
    /// Row-major features, `nodes × FEATURES`.
    pub features: Vec<f64>,
    /// One label per node in `0..CLASSES`.
    pub labels: Vec<usize>,
}

impl Graph {
    /// Builds a deterministic synthetic graph: a ring plus random chords,
    /// with features correlated with labels so the task is learnable.
    pub fn synthetic(seed: u64) -> Graph {
        let mut rng = DetRng::seed_from_u64(seed);
        let n = NODES;
        let mut a = vec![0.0; n * n];
        // Self loops + ring.
        for i in 0..n {
            a[i * n + i] = 1.0;
            let j = (i + 1) % n;
            a[i * n + j] = 1.0;
            a[j * n + i] = 1.0;
        }
        // Random chords.
        for _ in 0..n {
            let i = rng.gen_range(0..n);
            let j = rng.gen_range(0..n);
            if i != j {
                a[i * n + j] = 1.0;
                a[j * n + i] = 1.0;
            }
        }
        // Symmetric normalization.
        let deg: Vec<f64> = (0..n)
            .map(|i| (0..n).map(|j| a[i * n + j]).sum::<f64>())
            .collect();
        for i in 0..n {
            for j in 0..n {
                if a[i * n + j] != 0.0 {
                    a[i * n + j] /= (deg[i] * deg[j]).sqrt();
                }
            }
        }
        // Labels by quadrant, features = one-hot-ish label signal + noise.
        let labels: Vec<usize> = (0..n).map(|i| i * CLASSES / n).collect();
        let mut features = vec![0.0; n * FEATURES];
        for i in 0..n {
            for f in 0..FEATURES {
                let signal = if f % CLASSES == labels[i] { 1.0 } else { 0.0 };
                features[i * FEATURES + f] = signal + rng.gen_range(-0.3..0.3);
            }
        }
        Graph {
            nodes: n,
            adj: a,
            features,
            labels,
        }
    }
}

/// Two-layer GCN parameters.
#[derive(Debug, Clone)]
pub struct GcnModel {
    w1: Vec<f64>, // FEATURES × HIDDEN
    w2: Vec<f64>, // HIDDEN × CLASSES
}

impl GcnModel {
    /// Xavier-ish deterministic initialization.
    pub fn new(seed: u64) -> Self {
        let mut rng = DetRng::seed_from_u64(seed);
        let mut init = |len: usize, fan_in: usize| -> Vec<f64> {
            let scale = (1.0 / fan_in as f64).sqrt();
            (0..len).map(|_| rng.gen_range(-scale..scale)).collect()
        };
        GcnModel {
            w1: init(FEATURES * HIDDEN, FEATURES),
            w2: init(HIDDEN * CLASSES, HIDDEN),
        }
    }

    /// One full-batch training step; returns the cross-entropy loss
    /// *before* the update.
    pub fn train_step(&mut self, g: &Graph, lr: f64) -> f64 {
        let n = g.nodes;
        // Forward: ax = Â X; h_pre = ax·W1; h = relu(h_pre);
        // ah = Â h; logits = ah·W2.
        let ax = matmul(&g.adj, &g.features, n, n, FEATURES);
        let h_pre = matmul(&ax, &self.w1, n, FEATURES, HIDDEN);
        let h: Vec<f64> = h_pre.iter().map(|v| v.max(0.0)).collect();
        let ah = matmul(&g.adj, &h, n, n, HIDDEN);
        let logits = matmul(&ah, &self.w2, n, HIDDEN, CLASSES);

        // Softmax cross-entropy and its gradient dL/dlogits.
        let mut loss = 0.0;
        let mut dlogits = vec![0.0; n * CLASSES];
        for i in 0..n {
            let row = &logits[i * CLASSES..(i + 1) * CLASSES];
            let m = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let exps: Vec<f64> = row.iter().map(|v| (v - m).exp()).collect();
            let sum: f64 = exps.iter().sum();
            let label = g.labels[i];
            loss -= (exps[label] / sum).ln();
            for c in 0..CLASSES {
                let p = exps[c] / sum;
                dlogits[i * CLASSES + c] = (p - if c == label { 1.0 } else { 0.0 }) / n as f64;
            }
        }
        loss /= n as f64;

        // Backward. dW2 = ahᵀ · dlogits.
        let ah_t = transpose(&ah, n, HIDDEN);
        let dw2 = matmul(&ah_t, &dlogits, HIDDEN, n, CLASSES);
        // dah = dlogits · W2ᵀ; dh = Âᵀ dah (Â symmetric) masked by relu.
        let w2_t = transpose(&self.w2, HIDDEN, CLASSES);
        let dah = matmul(&dlogits, &w2_t, n, CLASSES, HIDDEN);
        let dh = matmul(&g.adj, &dah, n, n, HIDDEN);
        let dh_pre: Vec<f64> = dh
            .iter()
            .zip(&h_pre)
            .map(|(g, pre)| if *pre > 0.0 { *g } else { 0.0 })
            .collect();
        // dW1 = axᵀ · dh_pre.
        let ax_t = transpose(&ax, n, FEATURES);
        let dw1 = matmul(&ax_t, &dh_pre, FEATURES, n, HIDDEN);

        for (w, d) in self.w1.iter_mut().zip(&dw1) {
            *w -= lr * d;
        }
        for (w, d) in self.w2.iter_mut().zip(&dw2) {
            *w -= lr * d;
        }
        loss
    }

    /// Classification accuracy on the graph.
    pub fn accuracy(&self, g: &Graph) -> f64 {
        let n = g.nodes;
        let ax = matmul(&g.adj, &g.features, n, n, FEATURES);
        let h_pre = matmul(&ax, &self.w1, n, FEATURES, HIDDEN);
        let h: Vec<f64> = h_pre.iter().map(|v| v.max(0.0)).collect();
        let ah = matmul(&g.adj, &h, n, n, HIDDEN);
        let logits = matmul(&ah, &self.w2, n, HIDDEN, CLASSES);
        let mut correct = 0;
        for i in 0..n {
            let row = &logits[i * CLASSES..(i + 1) * CLASSES];
            let pred = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                .map(|(c, _)| c)
                .expect("classes");
            if pred == g.labels[i] {
                correct += 1;
            }
        }
        correct as f64 / n as f64
    }
}

fn transpose(m: &[f64], rows: usize, cols: usize) -> Vec<f64> {
    let mut t = vec![0.0; m.len()];
    for r in 0..rows {
        for c in 0..cols {
            t[c * rows + r] = m[r * cols + c];
        }
    }
    t
}

/// GCN node-classification training for `N` iterations.
///
/// Input: `Value::U64(iterations)`. Output: `Value::F64` (final loss).
#[derive(Debug, Clone, Default)]
pub struct GnnTraining;

impl GnnTraining {
    /// Creates the kernel.
    pub fn new() -> Self {
        GnnTraining
    }
}

impl Kernel for GnnTraining {
    fn name(&self) -> &str {
        "gnn"
    }

    fn device_class(&self) -> DeviceClass {
        DeviceClass::Gpu
    }

    fn demand(&self) -> f64 {
        0.35
    }

    fn work(&self, input: &Value) -> Result<WorkUnits, KernelError> {
        let iters = require_n("gnn", input)?;
        Ok(WorkUnits::new(iters as f64 * FLOPS_PER_ITER)
            // Graph + features shipped once per invocation, loss back.
            .with_bytes(9 * 1024 * 1024, 64)
            .with_efficiency(0.14))
    }

    fn execute(&self, input: &Value) -> Result<Value, KernelError> {
        let iters = require_n("gnn", input)?;
        if iters == 0 {
            return Err(KernelError::BadInput(
                "gnn needs at least one iteration".into(),
            ));
        }
        let g = Graph::synthetic(3);
        let mut model = GcnModel::new(4);
        let mut loss = f64::NAN;
        for _ in 0..iters.min(EXEC_CAP) {
            loss = model.train_step(&g, 0.5);
        }
        Ok(Value::F64(loss))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adjacency_is_normalized_and_symmetric() {
        let g = Graph::synthetic(1);
        for i in 0..g.nodes {
            for j in 0..g.nodes {
                let (a, b) = (g.adj[i * g.nodes + j], g.adj[j * g.nodes + i]);
                assert!((a - b).abs() < 1e-12, "asymmetry at ({i},{j})");
            }
        }
        // Spectral norm of the symmetric normalization is ≤ 1; cheap
        // proxy: all entries within [0, 1].
        assert!(g.adj.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn training_reduces_loss() {
        let g = Graph::synthetic(3);
        let mut model = GcnModel::new(4);
        let first = model.train_step(&g, 0.5);
        let mut last = first;
        for _ in 0..40 {
            last = model.train_step(&g, 0.5);
        }
        assert!(
            last < first * 0.8,
            "loss should drop: first={first}, last={last}"
        );
    }

    #[test]
    fn training_improves_accuracy_over_chance() {
        let g = Graph::synthetic(3);
        let mut model = GcnModel::new(4);
        for _ in 0..60 {
            model.train_step(&g, 0.5);
        }
        let acc = model.accuracy(&g);
        assert!(acc > 0.5, "accuracy {acc} barely above 1/{CLASSES} chance");
    }

    #[test]
    fn kernel_runs_and_reports_finite_loss() {
        let k = GnnTraining::new();
        match k.execute(&Value::U64(10)).unwrap() {
            Value::F64(loss) => assert!(loss.is_finite() && loss > 0.0),
            other => panic!("expected F64 loss, got {other:?}"),
        }
    }

    #[test]
    fn work_scales_with_iterations() {
        let k = GnnTraining::new();
        let w1 = k.work(&Value::U64(100)).unwrap().flops;
        let w4 = k.work(&Value::U64(400)).unwrap().flops;
        assert!((w4 / w1 - 4.0).abs() < 1e-12);
    }

    #[test]
    fn zero_iterations_rejected() {
        assert!(GnnTraining::new().execute(&Value::U64(0)).is_err());
    }
}
