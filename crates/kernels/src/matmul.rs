//! Matrix multiplication (the paper's §5.1 MM kernel).

use kaas_accel::{DeviceClass, WorkUnits};
use kaas_simtime::rng::DetRng;

use crate::kernel::{Kernel, KernelError};
use crate::value::Value;

/// Largest dimension `execute` computes for real when given a descriptor
/// input (timing always uses the declared dimension).
const EXEC_CAP: usize = 128;

/// Dense `N×N · N×N` matrix multiplication.
///
/// Two input modes:
///
/// * `Value::U64(n)` — descriptor mode, as in the paper's experiments
///   (the client controls task granularity through `n`). `execute`
///   multiplies a deterministic `min(n, 128)²` instance and returns a
///   checksum; `work` describes the full `n` cost.
/// * `Value::List([a, b])` of two matrices — computes the real product.
///
/// # Examples
///
/// ```
/// use kaas_kernels::{Kernel, MatMul, Value};
///
/// let k = MatMul::new();
/// let a = Value::matrix(vec![1.0, 2.0, 3.0, 4.0], 2, 2);
/// let b = Value::matrix(vec![5.0, 6.0, 7.0, 8.0], 2, 2);
/// let c = k.execute(&Value::List(vec![a, b])).unwrap();
/// assert_eq!(c, Value::matrix(vec![19.0, 22.0, 43.0, 50.0], 2, 2));
/// ```
#[derive(Debug, Clone, Default)]
pub struct MatMul;

impl MatMul {
    /// Creates the kernel.
    pub fn new() -> Self {
        MatMul
    }
}

/// Multiplies row-major `a (n×m)` by `b (m×p)` with blocked loops.
pub fn matmul(a: &[f64], b: &[f64], n: usize, m: usize, p: usize) -> Vec<f64> {
    assert_eq!(a.len(), n * m, "lhs shape mismatch");
    assert_eq!(b.len(), m * p, "rhs shape mismatch");
    const BLOCK: usize = 32;
    let mut c = vec![0.0; n * p];
    for ii in (0..n).step_by(BLOCK) {
        for kk in (0..m).step_by(BLOCK) {
            for jj in (0..p).step_by(BLOCK) {
                for i in ii..(ii + BLOCK).min(n) {
                    for k in kk..(kk + BLOCK).min(m) {
                        let aik = a[i * m + k];
                        let row = &b[k * p + jj..k * p + (jj + BLOCK).min(p)];
                        let out = &mut c[i * p + jj..i * p + (jj + BLOCK).min(p)];
                        for (cij, bkj) in out.iter_mut().zip(row) {
                            *cij += aik * bkj;
                        }
                    }
                }
            }
        }
    }
    c
}

/// GPU efficiency of an `n×n` product relative to the device's sustained
/// rate: small products underutilize the SMs.
fn mm_efficiency(n: u64) -> f64 {
    (n as f64 / 1024.0).clamp(0.02, 1.0)
}

impl Kernel for MatMul {
    fn name(&self) -> &str {
        "matmul"
    }

    fn device_class(&self) -> DeviceClass {
        DeviceClass::Gpu
    }

    fn work(&self, input: &Value) -> Result<WorkUnits, KernelError> {
        let (n, m, p) = match input {
            Value::U64(n) => (*n, *n, *n),
            Value::List(items) if items.len() == 2 => match (&items[0], &items[1]) {
                (
                    Value::Matrix { rows, cols, .. },
                    Value::Matrix {
                        rows: r2, cols: c2, ..
                    },
                ) if cols == r2 => (*rows as u64, *cols as u64, *c2 as u64),
                other => {
                    return Err(KernelError::BadInput(format!(
                        "matmul expects two compatible matrices, got {other:?}"
                    )))
                }
            },
            other => {
                return Err(KernelError::BadInput(format!(
                    "matmul expects U64(n) or List([a, b]), got {other:?}"
                )))
            }
        };
        Ok(WorkUnits::new(2.0 * n as f64 * m as f64 * p as f64)
            .with_bytes(8 * (n * m + m * p), 8 * n * p)
            .with_efficiency(mm_efficiency(n.max(p)))
            // numba's CPU path still runs a vectorized product at the
            // host's full sustained rate.
            .with_cpu_efficiency(1.0)
            .with_device_mem(8 * (n * m + m * p + n * p)))
    }

    fn execute(&self, input: &Value) -> Result<Value, KernelError> {
        match input {
            Value::U64(n) => {
                let n = (*n as usize).clamp(1, EXEC_CAP);
                let mut rng = DetRng::seed_from_u64(42 ^ n as u64);
                let a: Vec<f64> = (0..n * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
                let b: Vec<f64> = (0..n * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
                let c = matmul(&a, &b, n, n, n);
                Ok(Value::F64(c.iter().sum()))
            }
            Value::List(items) if items.len() == 2 => match (&items[0], &items[1]) {
                (
                    Value::Matrix {
                        data: a,
                        rows: n,
                        cols: m,
                    },
                    Value::Matrix {
                        data: b,
                        rows: r2,
                        cols: p,
                    },
                ) if m == r2 => Ok(Value::matrix(matmul(a, b, *n, *m, *p), *n, *p)),
                other => Err(KernelError::BadInput(format!(
                    "matmul expects compatible matrices, got {other:?}"
                ))),
            },
            other => Err(KernelError::BadInput(format!(
                "matmul expects U64(n) or List([a, b]), got {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::require_n;

    fn naive(a: &[f64], b: &[f64], n: usize) -> Vec<f64> {
        let mut c = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    c[i * n + j] += a[i * n + k] * b[k * n + j];
                }
            }
        }
        c
    }

    #[test]
    fn blocked_matches_naive() {
        let mut rng = DetRng::seed_from_u64(1);
        for n in [1usize, 7, 32, 50, 65] {
            let a: Vec<f64> = (0..n * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let b: Vec<f64> = (0..n * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let fast = matmul(&a, &b, n, n, n);
            let slow = naive(&a, &b, n);
            for (f, s) in fast.iter().zip(&slow) {
                assert!((f - s).abs() < 1e-9, "mismatch at n={n}");
            }
        }
    }

    #[test]
    fn rectangular_shapes_work() {
        // (2×3)·(3×1)
        let a = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let b = vec![1.0, 0.0, -1.0];
        let c = matmul(&a, &b, 2, 3, 1);
        assert_eq!(c, vec![-2.0, -2.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let a = vec![3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0, 5.0];
        let mut id = vec![0.0; 9];
        for i in 0..3 {
            id[i * 3 + i] = 1.0;
        }
        assert_eq!(matmul(&a, &id, 3, 3, 3), a);
    }

    #[test]
    fn work_profile_counts_flops_and_bytes() {
        let k = MatMul::new();
        let w = k.work(&Value::U64(500)).unwrap();
        assert_eq!(w.flops, 2.0 * 500f64.powi(3));
        assert_eq!(w.bytes_in, 2 * 500 * 500 * 8);
        assert_eq!(w.bytes_out, 500 * 500 * 8);
    }

    #[test]
    fn small_tasks_have_low_efficiency() {
        let k = MatMul::new();
        let small = k.work(&Value::U64(100)).unwrap().efficiency;
        let large = k.work(&Value::U64(10_000)).unwrap().efficiency;
        assert!(small < 0.2);
        assert_eq!(large, 1.0);
    }

    #[test]
    fn descriptor_execution_is_deterministic() {
        let k = MatMul::new();
        let a = k.execute(&Value::U64(64)).unwrap();
        let b = k.execute(&Value::U64(64)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn bad_input_is_rejected() {
        let k = MatMul::new();
        assert!(k.execute(&Value::Unit).is_err());
        assert!(k.work(&Value::Unit).is_err());
        // Incompatible shapes.
        let a = Value::matrix(vec![0.0; 4], 2, 2);
        let b = Value::matrix(vec![0.0; 3], 3, 1);
        assert!(k.execute(&Value::List(vec![a, b])).is_err());
    }

    #[test]
    fn kernel_metadata() {
        let k = MatMul::new();
        assert_eq!(k.name(), "matmul");
        assert_eq!(k.device_class(), DeviceClass::Gpu);
        let _ = require_n("matmul", &Value::U64(1)).unwrap();
    }
}
