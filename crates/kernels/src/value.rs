//! [`Value`]: the dynamic payload type exchanged between clients, the
//! KaaS server, and kernels (the prototype passes Python objects; we pass
//! a small algebraic data type with known wire sizes).

/// A dynamically typed kernel input/output value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// No payload.
    Unit,
    /// An unsigned scalar (task-granularity parameters `N`).
    U64(u64),
    /// A float scalar.
    F64(f64),
    /// A float vector.
    F64s(Vec<f64>),
    /// A byte buffer.
    Bytes(Vec<u8>),
    /// A dense row-major matrix.
    Matrix {
        /// Row-major data of length `rows * cols`.
        data: Vec<f64>,
        /// Number of rows.
        rows: usize,
        /// Number of columns.
        cols: usize,
    },
    /// An 8-bit grayscale or packed image.
    Image {
        /// Pixel bytes (row-major, `channels` interleaved).
        pixels: Vec<u8>,
        /// Width in pixels.
        width: usize,
        /// Height in pixels.
        height: usize,
        /// Channels per pixel (1 = grayscale, 3 = RGB).
        channels: usize,
    },
    /// A short text (kernel names, labels).
    Text(String),
    /// An ordered collection.
    List(Vec<Value>),
    /// A transport envelope: a (small) body with an overridden wire
    /// size. Lets experiments ship gigabyte-scale payloads — charged at
    /// full size by every transfer model — without allocating them.
    Sized {
        /// Declared wire size in bytes.
        bytes: u64,
        /// The actual (small) content.
        body: Box<Value>,
    },
}

impl Value {
    /// Builds a matrix value, validating dimensions.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn matrix(data: Vec<f64>, rows: usize, cols: usize) -> Value {
        assert_eq!(data.len(), rows * cols, "matrix shape mismatch");
        Value::Matrix { data, rows, cols }
    }

    /// Builds an image value, validating dimensions.
    ///
    /// # Panics
    ///
    /// Panics if the pixel buffer does not match the dimensions.
    pub fn image(pixels: Vec<u8>, width: usize, height: usize, channels: usize) -> Value {
        assert_eq!(
            pixels.len(),
            width * height * channels,
            "image shape mismatch"
        );
        Value::Image {
            pixels,
            width,
            height,
            channels,
        }
    }

    /// Logical wire size in bytes when sent in-band (used for
    /// serialization and transmission costs).
    pub fn wire_bytes(&self) -> u64 {
        match self {
            Value::Unit => 8,
            Value::U64(_) | Value::F64(_) => 16,
            Value::F64s(v) => 16 + 8 * v.len() as u64,
            Value::Bytes(b) => 16 + b.len() as u64,
            Value::Matrix { data, .. } => 32 + 8 * data.len() as u64,
            Value::Image { pixels, .. } => 32 + pixels.len() as u64,
            Value::Text(s) => 16 + s.len() as u64,
            Value::List(items) => 16 + items.iter().map(Value::wire_bytes).sum::<u64>(),
            Value::Sized { bytes, .. } => *bytes,
        }
    }

    /// Wraps `body` in a transport envelope of `bytes` declared size.
    pub fn sized(bytes: u64, body: Value) -> Value {
        Value::Sized {
            bytes,
            body: Box::new(body),
        }
    }

    /// The content of a [`Value::Sized`] envelope (recursively), or the
    /// value itself.
    pub fn payload(&self) -> &Value {
        match self {
            Value::Sized { body, .. } => body.payload(),
            other => other,
        }
    }

    /// The scalar `N` if this is a `U64` (the common task-granularity
    /// parameter).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(n) => Some(*n),
            _ => None,
        }
    }

    /// The float vector if this is an `F64s`.
    pub fn as_f64s(&self) -> Option<&[f64]> {
        match self {
            Value::F64s(v) => Some(v),
            _ => None,
        }
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Value {
        Value::U64(n)
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Value {
        Value::F64(x)
    }
}

impl From<Vec<f64>> for Value {
    fn from(v: Vec<f64>) -> Value {
        Value::F64s(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_bytes_scale_with_content() {
        assert_eq!(Value::U64(5).wire_bytes(), 16);
        assert_eq!(Value::F64s(vec![0.0; 100]).wire_bytes(), 816);
        let m = Value::matrix(vec![0.0; 6], 2, 3);
        assert_eq!(m.wire_bytes(), 32 + 48);
    }

    #[test]
    fn list_bytes_are_recursive() {
        let l = Value::List(vec![Value::U64(1), Value::U64(2)]);
        assert_eq!(l.wire_bytes(), 16 + 32);
    }

    #[test]
    #[should_panic(expected = "shape")]
    fn bad_matrix_shape_panics() {
        let _ = Value::matrix(vec![0.0; 5], 2, 3);
    }

    #[test]
    fn sized_overrides_wire_bytes_and_unwraps() {
        let v = Value::sized(1_000_000, Value::U64(7));
        assert_eq!(v.wire_bytes(), 1_000_000);
        assert_eq!(v.payload(), &Value::U64(7));
        // Nested envelopes unwrap fully.
        let nested = Value::sized(5, Value::sized(3, Value::F64(1.0)));
        assert_eq!(nested.payload(), &Value::F64(1.0));
        // Non-envelopes are themselves.
        assert_eq!(Value::U64(1).payload(), &Value::U64(1));
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3u64).as_u64(), Some(3));
        assert_eq!(Value::from(2.5f64), Value::F64(2.5));
        assert!(Value::from(vec![1.0]).as_f64s().is_some());
        assert_eq!(Value::Unit.as_u64(), None);
    }
}
