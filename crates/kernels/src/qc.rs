//! Quantum-computing kernels: the §5.6.1 GPU state-vector simulation
//! workload (QC) and the §5.6.4 VQE estimator primitive (QPU).

use std::cell::RefCell;

use kaas_accel::{CircuitCost, DeviceClass, WorkUnits};
use kaas_quantum::{estimate, transpile, Circuit, EstimatorMode, Hamiltonian, TwoLocalAnsatz};
use kaas_simtime::rng::DetRng;

use crate::kernel::{require_n, Kernel, KernelError};
use crate::value::Value;

/// Declared simulation width for the QC workload's timing (the paper
/// simulates circuits "of N CX gates" on the GPU AerSimulator).
const DECLARED_QUBITS: u32 = 20;
/// Width/size caps for the real execution.
const EXEC_QUBITS: usize = 10;
const EXEC_GATE_CAP: u64 = 2_000;

/// GPU state-vector simulation of a circuit of `N` CX gates (§5.6.1 QC).
///
/// Input: `Value::U64(n_gates)`. Output: `Value::F64` (state norm of a
/// real reduced-width simulation — always ≈ 1, a checksum that the
/// simulation actually ran).
#[derive(Debug, Clone, Default)]
pub struct QcSimulation;

impl QcSimulation {
    /// Creates the kernel.
    pub fn new() -> Self {
        QcSimulation
    }
}

impl Kernel for QcSimulation {
    fn name(&self) -> &str {
        "qc"
    }

    fn device_class(&self) -> DeviceClass {
        DeviceClass::Gpu
    }

    fn demand(&self) -> f64 {
        0.4
    }

    fn work(&self, input: &Value) -> Result<WorkUnits, KernelError> {
        let gates = require_n("qc", input)?;
        // Each gate streams the full 2^q state with a handful of complex
        // fused multiply-adds per amplitude.
        let amps = 2f64.powi(DECLARED_QUBITS as i32);
        Ok(WorkUnits::new(gates as f64 * amps * 8.0)
            .with_bytes(1024 + gates * 16, 16 * amps as u64)
            .with_efficiency(0.035))
    }

    fn execute(&self, input: &Value) -> Result<Value, KernelError> {
        let gates = require_n("qc", input)?;
        if gates == 0 {
            return Err(KernelError::BadInput("qc needs at least one gate".into()));
        }
        let mut rng = DetRng::seed_from_u64(0x51C ^ gates);
        let qc = Circuit::random_cx(EXEC_QUBITS, gates.min(EXEC_GATE_CAP) as usize, &mut rng);
        Ok(Value::F64(qc.statevector().norm()))
    }
}

/// The VQE estimator primitive (§5.6.4): evaluates the H₂ Hamiltonian
/// energy of the two-local ansatz at the supplied parameters. The
/// expectation is computed for real by `kaas-quantum`; the QPU device
/// model charges session/transpile/queue/shot time around it.
///
/// Input: `Value::F64s(params)`. Output: `Value::F64` (energy).
#[derive(Debug)]
pub struct VqeEstimator {
    ansatz: TwoLocalAnsatz,
    hamiltonian: Hamiltonian,
    shots: u64,
    mode: EstimatorMode,
    rng: RefCell<DetRng>,
}

impl Default for VqeEstimator {
    fn default() -> Self {
        Self::h2(1024)
    }
}

impl VqeEstimator {
    /// The standard H₂/STO-3G estimator with the given shot budget
    /// (0 shots = exact expectation).
    pub fn h2(shots: u64) -> Self {
        VqeEstimator {
            ansatz: TwoLocalAnsatz::new(2, 1),
            hamiltonian: Hamiltonian::h2_sto3g(),
            shots,
            mode: if shots == 0 {
                EstimatorMode::Exact
            } else {
                EstimatorMode::Shots(shots)
            },
            rng: RefCell::new(DetRng::seed_from_u64(0xE57)),
        }
    }

    /// The ansatz bound by this estimator.
    pub fn ansatz(&self) -> TwoLocalAnsatz {
        self.ansatz
    }

    /// Transpiled circuit cost for the QPU device model.
    pub fn circuit_cost(&self) -> CircuitCost {
        let params = vec![0.0; self.ansatz.parameter_count()];
        let qc = self.ansatz.bind(&params);
        let (_, stats) = transpile(&qc);
        CircuitCost {
            qubits: self.ansatz.qubits as u32,
            gates: stats.gates_after as u64,
            shots: self.shots.max(1),
        }
    }
}

impl Kernel for VqeEstimator {
    fn name(&self) -> &str {
        "vqe-estimator"
    }

    fn device_class(&self) -> DeviceClass {
        DeviceClass::Qpu
    }

    fn work(&self, input: &Value) -> Result<WorkUnits, KernelError> {
        let params = input
            .as_f64s()
            .ok_or_else(|| KernelError::BadInput("estimator expects F64s(params)".into()))?;
        if params.len() != self.ansatz.parameter_count() {
            return Err(KernelError::BadInput(format!(
                "expected {} parameters, got {}",
                self.ansatz.parameter_count(),
                params.len()
            )));
        }
        Ok(WorkUnits::new(0.0)
            .with_bytes(8 * params.len() as u64 + 64, 64)
            .with_circuit(self.circuit_cost()))
    }

    fn execute(&self, input: &Value) -> Result<Value, KernelError> {
        let params = input
            .as_f64s()
            .ok_or_else(|| KernelError::BadInput("estimator expects F64s(params)".into()))?;
        if params.len() != self.ansatz.parameter_count() {
            return Err(KernelError::BadInput(format!(
                "expected {} parameters, got {}",
                self.ansatz.parameter_count(),
                params.len()
            )));
        }
        let qc = self.ansatz.bind(params);
        let mut rng = self.rng.borrow_mut();
        Ok(Value::F64(estimate(
            &qc,
            &self.hamiltonian,
            self.mode,
            &mut rng,
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qc_norm_is_one() {
        let k = QcSimulation::new();
        match k.execute(&Value::U64(500)).unwrap() {
            Value::F64(norm) => assert!((norm - 1.0).abs() < 1e-9),
            other => panic!("expected F64, got {other:?}"),
        }
    }

    #[test]
    fn qc_work_scales_with_gates() {
        let k = QcSimulation::new();
        let w1 = k.work(&Value::U64(1_000)).unwrap().flops;
        let w2 = k.work(&Value::U64(65_000)).unwrap().flops;
        assert!((w2 / w1 - 65.0).abs() < 1e-9);
    }

    #[test]
    fn estimator_matches_exact_expectation() {
        let k = VqeEstimator::h2(0);
        let params = vec![0.2, -0.4, 0.8, 0.3];
        let out = match k.execute(&Value::F64s(params.clone())).unwrap() {
            Value::F64(e) => e,
            other => panic!("expected F64, got {other:?}"),
        };
        let qc = TwoLocalAnsatz::new(2, 1).bind(&params);
        let exact = Hamiltonian::h2_sto3g().expectation(&qc.statevector());
        assert!((out - exact).abs() < 1e-12);
    }

    #[test]
    fn estimator_reports_circuit_cost() {
        let k = VqeEstimator::h2(4096);
        let cost = k.circuit_cost();
        assert_eq!(cost.qubits, 2);
        assert!(cost.gates >= 1);
        assert_eq!(cost.shots, 4096);
        let w = k.work(&Value::F64s(vec![0.0; 4])).unwrap();
        assert!(w.circuit.is_some());
    }

    #[test]
    fn estimator_rejects_wrong_arity() {
        let k = VqeEstimator::h2(0);
        assert!(k.execute(&Value::F64s(vec![0.0; 3])).is_err());
        assert!(k.execute(&Value::Unit).is_err());
    }

    #[test]
    fn kernel_classes() {
        assert_eq!(QcSimulation::new().device_class(), DeviceClass::Gpu);
        assert_eq!(VqeEstimator::default().device_class(), DeviceClass::Qpu);
    }
}
