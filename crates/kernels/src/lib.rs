//! # kaas-kernels — real accelerator kernel implementations
//!
//! Every workload the KaaS paper evaluates, implemented as a
//! [`Kernel`]: a *real computation* plus a [`kaas_accel::WorkUnits`]
//! profile that the device models turn into virtual time.
//!
//! | Kernel | Paper section | Device class | Computation |
//! |---|---|---|---|
//! | [`MatMul`] | §5.1 | GPU | blocked dense product |
//! | [`SoftDtw`] | §5.6.1 | GPU | soft-DTW dynamic program |
//! | [`GaGeneration`] | §5.3/§5.6.1 | GPU | tournament GA over Rastrigin |
//! | [`GnnTraining`] | §5.6.1 | GPU | 2-layer GCN with manual backprop |
//! | [`MonteCarlo`] | §5.6.1 | GPU | ∫₁¹⁰ dx/x sampling |
//! | [`QcSimulation`] | §5.6.1 | GPU | state-vector CX circuits |
//! | [`Histogram`] | §5.6.2 | FPGA | 256-bin integer histogram |
//! | [`BitmapConversion`] | §5.6.2 / Fig. 1 | FPGA | luma thresholding |
//! | [`Conv2d`] | §5.6.3 | TPU | 64-channel 7×7 convolution |
//! | [`VqeEstimator`] | §5.6.4 | QPU | H₂ energy estimator |
//! | [`ResNet50`] | §5.4 | GPU | layer-accurate inference descriptor |
//! | [`Preprocess`] | Fig. 1 | CPU | box-filter image resize |
//!
//! ```
//! use kaas_kernels::{Kernel, MatMul, Value};
//!
//! let k = MatMul::new();
//! let work = k.work(&Value::U64(500)).unwrap();
//! assert_eq!(work.flops, 2.0 * 500f64.powi(3));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod conv2d;
mod dtw;
mod fpga;
mod ga;
mod gnn;
mod image;
mod kernel;
mod matmul;
mod mci;
mod qc;
mod resnet;
mod value;

pub use conv2d::{conv2d_direct, Conv2d, ConvAlgorithm};
pub use dtw::{soft_dtw, SoftDtw};
pub use fpga::{
    histogram256, to_bitmap, BitmapConversion, Histogram, BITMAP_HEIGHT, BITMAP_WIDTH,
    HISTOGRAM_LEN,
};
pub use ga::{evolve_generation, mean_fitness, rastrigin, GaGeneration, GENERATIONS, GENES};
pub use gnn::{GcnModel, GnnTraining, Graph};
pub use image::{box_resize, Preprocess, TARGET};
pub use kernel::{Kernel, KernelError, Warmup};
pub use matmul::{matmul, MatMul};
pub use mci::{estimate_integral, MonteCarlo};
pub use qc::{QcSimulation, VqeEstimator};
pub use resnet::{resnet50_flops_per_image, resnet50_stages, ConvStage, ResNet50, IMAGE_BYTES};
pub use value::Value;
