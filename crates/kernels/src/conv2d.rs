//! 2-D convolution (the paper's §5.6.3 TPU kernel, `tf.nn.conv2d`).
//!
//! The paper observes that "the TPU execution time does not scale
//! proportionally with the input data size … we attribute it to internal
//! optimizations that TensorFlow makes in choosing a convolution
//! implementation based on the input parameters". We model that
//! algorithm-selection effect explicitly: the effective efficiency
//! depends non-monotonically on `N` through a deterministic chooser.

use kaas_accel::{DeviceClass, WorkUnits};

use crate::kernel::{require_n, Kernel, KernelError};
use crate::value::Value;

/// Deep-convolution shape matching a seconds-scale TPU workload:
/// 64→64 channels with a 7×7 filter.
const CHANNELS: f64 = 64.0;
const FILTER: usize = 7;
/// Real-execution cap on the spatial dimension.
const EXEC_CAP: usize = 96;

/// Which implementation the framework would select for a given size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConvAlgorithm {
    /// Naive sliding window.
    Direct,
    /// Winograd minimal filtering (fast but shape-picky).
    Winograd,
    /// FFT-based convolution.
    Fft,
    /// im2col + matrix multiply.
    Im2col,
}

impl ConvAlgorithm {
    /// The deterministic TensorFlow-style chooser: picks by tile
    /// divisibility, which makes efficiency non-monotone in `n`.
    pub fn select(n: u64) -> ConvAlgorithm {
        // Multiples of 1024 map perfectly onto the systolic array tiles.
        if n.is_multiple_of(1024) {
            ConvAlgorithm::Winograd
        } else if n.is_multiple_of(1000) && (n / 1000) % 2 == 1 {
            // Odd thousands: padded direct convolution.
            ConvAlgorithm::Direct
        } else if n > 4096 {
            ConvAlgorithm::Fft
        } else {
            ConvAlgorithm::Im2col
        }
    }

    /// Sustained fraction of peak on the TPU's systolic array.
    pub fn efficiency(self) -> f64 {
        match self {
            ConvAlgorithm::Winograd => 0.85,
            ConvAlgorithm::Fft => 0.55,
            ConvAlgorithm::Im2col => 0.45,
            ConvAlgorithm::Direct => 0.22,
        }
    }
}

/// Computes a real single-channel 2-D convolution (valid padding).
pub fn conv2d_direct(input: &[f64], n: usize, filter: &[f64], k: usize) -> Vec<f64> {
    assert_eq!(input.len(), n * n, "input shape mismatch");
    assert_eq!(filter.len(), k * k, "filter shape mismatch");
    assert!(k <= n, "filter larger than input");
    let out_n = n - k + 1;
    let mut out = vec![0.0; out_n * out_n];
    for oy in 0..out_n {
        for ox in 0..out_n {
            let mut acc = 0.0;
            for fy in 0..k {
                for fx in 0..k {
                    acc += input[(oy + fy) * n + (ox + fx)] * filter[fy * k + fx];
                }
            }
            out[oy * out_n + ox] = acc;
        }
    }
    out
}

/// The TPU conv2d kernel: a 64→64-channel 7×7 convolution over an `N×N`
/// feature map.
///
/// Input: `Value::U64(n)`. Output: `Value::F64` (checksum of a real
/// reduced single-channel instance).
#[derive(Debug, Clone, Default)]
pub struct Conv2d;

impl Conv2d {
    /// Creates the kernel.
    pub fn new() -> Self {
        Conv2d
    }
}

impl Kernel for Conv2d {
    fn name(&self) -> &str {
        "conv2d"
    }

    fn device_class(&self) -> DeviceClass {
        DeviceClass::Tpu
    }

    fn work(&self, input: &Value) -> Result<WorkUnits, KernelError> {
        let n = require_n("conv2d", input)?;
        if n < FILTER as u64 {
            return Err(KernelError::BadInput(format!(
                "conv2d needs N ≥ {FILTER}, got {n}"
            )));
        }
        let algo = ConvAlgorithm::select(n);
        let nf = n as f64;
        let flops = nf * nf * (FILTER * FILTER) as f64 * CHANNELS * CHANNELS * 2.0;
        Ok(WorkUnits::new(flops)
            // Host↔device traffic is the single-channel fp32 feature map
            // (the deep channels live on-device).
            .with_bytes(n * n * 4, n * n * 4)
            .with_efficiency(algo.efficiency()))
    }

    fn execute(&self, input: &Value) -> Result<Value, KernelError> {
        let n = require_n("conv2d", input)?;
        if n < FILTER as u64 {
            return Err(KernelError::BadInput(format!(
                "conv2d needs N ≥ {FILTER}, got {n}"
            )));
        }
        let n_real = (n as usize).min(EXEC_CAP);
        // Deterministic input and box filter.
        let input: Vec<f64> = (0..n_real * n_real)
            .map(|i| ((i % 97) as f64) / 97.0)
            .collect();
        let filter = vec![1.0 / (FILTER * FILTER) as f64; FILTER * FILTER];
        let out = conv2d_direct(&input, n_real, &filter, FILTER);
        Ok(Value::F64(out.iter().sum()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_filter_preserves_interior() {
        let n = 5;
        let input: Vec<f64> = (0..n * n).map(|i| i as f64).collect();
        let mut filter = vec![0.0; 9];
        filter[4] = 1.0; // centre tap
        let out = conv2d_direct(&input, n, &filter, 3);
        // Output (3×3) equals the interior of the input.
        assert_eq!(out[0], input[n + 1]);
        assert_eq!(out[8], input[3 * n + 3]);
    }

    #[test]
    fn box_filter_averages() {
        let input = vec![1.0; 16];
        let filter = vec![1.0 / 9.0; 9];
        let out = conv2d_direct(&input, 4, &filter, 3);
        for v in out {
            assert!((v - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn algorithm_selection_is_non_monotone() {
        // Efficiency as a function of N must not be monotone — the
        // Fig. 16a "TensorFlow implementation choice" effect.
        let effs: Vec<f64> = (1..=7)
            .map(|k| ConvAlgorithm::select(k * 1000).efficiency())
            .collect();
        let increasing = effs.windows(2).all(|w| w[1] >= w[0]);
        let decreasing = effs.windows(2).all(|w| w[1] <= w[0]);
        assert!(!increasing && !decreasing, "effs={effs:?}");
    }

    #[test]
    fn selection_is_deterministic() {
        for n in [1000u64, 2048, 3000, 5000, 7000] {
            assert_eq!(ConvAlgorithm::select(n), ConvAlgorithm::select(n));
        }
    }

    #[test]
    fn work_has_tpu_scale_flops() {
        let k = Conv2d::new();
        let w = k.work(&Value::U64(7000)).unwrap();
        assert!(w.flops > 1e13, "flops={}", w.flops);
    }

    #[test]
    fn kernel_executes_reduced_instance() {
        let k = Conv2d::new();
        match k.execute(&Value::U64(4096)).unwrap() {
            Value::F64(checksum) => assert!(checksum.is_finite() && checksum > 0.0),
            other => panic!("expected F64, got {other:?}"),
        }
    }

    #[test]
    fn too_small_input_rejected() {
        let k = Conv2d::new();
        assert!(k.work(&Value::U64(3)).is_err());
        assert!(k.execute(&Value::U64(3)).is_err());
    }
}
