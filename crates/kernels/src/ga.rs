//! Genetic algorithm (the paper's §5.6.1/§5.3 GA kernel).
//!
//! "The GA iteratively mutates a population of N 100-element vectors ten
//! times, using a fitness function optimized for GPUs." We expose **one
//! generation per invocation** — that is what makes the workload
//! iterative, with the population shipped between client and kernel each
//! generation (the data-movement behaviour behind the paper's Fig. 11
//! remote-invocation costs and the Fig. 14 GA variability anomaly).
//!
//! The evolutionary logic (tournament selection, blend crossover,
//! Gaussian mutation, Rastrigin fitness) runs for real; the *declared*
//! per-individual FLOP count models the paper's expensive GPU-optimized
//! fitness function.

use std::cell::RefCell;

use kaas_accel::{DeviceClass, WorkUnits};
use kaas_simtime::rng::DetRng;

use crate::kernel::{Kernel, KernelError};
use crate::value::Value;

/// Vector length per individual (fixed by the paper).
pub const GENES: usize = 100;
/// Generations per task (fixed by the paper).
pub const GENERATIONS: u32 = 10;
/// Declared fitness cost per individual per generation, calibrated so a
/// 4 096-individual generation occupies a P100 for ≈ 1.25 s — which puts
/// the ten-generation task at the Fig. 14 axis scale (~14 s), makes the
/// CPU-only run ≈5× slower than remote invocation (Fig. 11), and lets
/// the cluster's GPU speed variability outweigh the amortized per-task
/// initialization (the Fig. 14 GA anomaly).
const FLOPS_PER_INDIVIDUAL: f64 = 2.136e8;

/// One GA generation over a population of `n` 100-element vectors.
///
/// Input modes:
///
/// * `Value::U64(n)` — generates a deterministic random population of
///   `n` individuals and evolves it one generation.
/// * `Value::F64s(flat)` — evolves the provided population (length must
///   be a multiple of 100); this is what an iterating client sends back
///   each generation.
///
/// Output: `Value::F64s` — the next population, flattened.
#[derive(Debug)]
pub struct GaGeneration {
    rng: RefCell<DetRng>,
}

impl Default for GaGeneration {
    fn default() -> Self {
        Self::seeded(0xD1CE)
    }
}

impl GaGeneration {
    /// Creates the kernel with a deterministic RNG seed.
    pub fn seeded(seed: u64) -> Self {
        GaGeneration {
            rng: RefCell::new(DetRng::seed_from_u64(seed)),
        }
    }

    fn population_from(&self, input: &Value) -> Result<Vec<f64>, KernelError> {
        match input {
            Value::U64(n) => {
                let n = *n as usize;
                if n == 0 {
                    return Err(KernelError::BadInput("population must be non-empty".into()));
                }
                let mut rng = DetRng::seed_from_u64(0xBEEF ^ n as u64);
                Ok((0..n * GENES).map(|_| rng.gen_range(-5.12..5.12)).collect())
            }
            Value::F64s(flat) => {
                if flat.is_empty() || flat.len() % GENES != 0 {
                    return Err(KernelError::BadInput(format!(
                        "population length {} is not a positive multiple of {GENES}",
                        flat.len()
                    )));
                }
                Ok(flat.clone())
            }
            other => Err(KernelError::BadInput(format!(
                "ga expects U64(n) or F64s(population), got {other:?}"
            ))),
        }
    }
}

/// Rastrigin fitness (minimization): the real stand-in for the paper's
/// GPU-optimized fitness function.
pub fn rastrigin(x: &[f64]) -> f64 {
    10.0 * x.len() as f64
        + x.iter()
            .map(|v| v * v - 10.0 * (2.0 * std::f64::consts::PI * v).cos())
            .sum::<f64>()
}

/// Evolves `population` (flattened `n×GENES`) one generation.
pub fn evolve_generation(population: &[f64], rng: &mut DetRng) -> Vec<f64> {
    let n = population.len() / GENES;
    let individual = |i: usize| &population[i * GENES..(i + 1) * GENES];
    let fitness: Vec<f64> = (0..n).map(|i| rastrigin(individual(i))).collect();
    let mut next = Vec::with_capacity(population.len());
    for _ in 0..n {
        // Tournament selection of two parents (lower fitness wins).
        let pick = |rng: &mut DetRng| {
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            if fitness[a] <= fitness[b] {
                a
            } else {
                b
            }
        };
        let pa = pick(rng);
        let pb = pick(rng);
        // Blend crossover plus Gaussian-ish mutation.
        for g in 0..GENES {
            let alpha: f64 = rng.gen();
            let mut gene = alpha * individual(pa)[g] + (1.0 - alpha) * individual(pb)[g];
            if rng.gen::<f64>() < 0.02 {
                gene += rng.gen_range(-0.5..0.5);
            }
            next.push(gene.clamp(-5.12, 5.12));
        }
    }
    next
}

/// Mean fitness of a flattened population (for convergence checks).
pub fn mean_fitness(population: &[f64]) -> f64 {
    let n = population.len() / GENES;
    (0..n)
        .map(|i| rastrigin(&population[i * GENES..(i + 1) * GENES]))
        .sum::<f64>()
        / n as f64
}

impl Kernel for GaGeneration {
    fn name(&self) -> &str {
        "ga"
    }

    fn device_class(&self) -> DeviceClass {
        DeviceClass::Gpu
    }

    fn demand(&self) -> f64 {
        0.3
    }

    fn work(&self, input: &Value) -> Result<WorkUnits, KernelError> {
        let n = match input {
            Value::U64(n) => *n,
            Value::F64s(flat) => (flat.len() / GENES) as u64,
            other => {
                return Err(KernelError::BadInput(format!(
                    "ga expects U64(n) or F64s(population), got {other:?}"
                )))
            }
        };
        let bytes = 8 * n * GENES as u64;
        Ok(WorkUnits::new(n as f64 * FLOPS_PER_INDIVIDUAL)
            .with_bytes(bytes, bytes)
            // The branchy fitness sustains far below the GPU's dense-GEMM
            // rate, but vectorizes fully on the host — this fixes the
            // paper's ≈5× remote-GPU-vs-CPU ratio (Fig. 11).
            .with_efficiency(0.233)
            .with_cpu_efficiency(1.0))
    }

    fn execute(&self, input: &Value) -> Result<Value, KernelError> {
        let population = self.population_from(input)?;
        let mut rng = self.rng.borrow_mut();
        Ok(Value::F64s(evolve_generation(&population, &mut rng)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rastrigin_minimum_at_origin() {
        assert!(rastrigin(&[0.0; 10]).abs() < 1e-9);
        assert!(rastrigin(&[1.0; 10]) > 0.0);
    }

    #[test]
    fn evolution_preserves_population_shape() {
        let k = GaGeneration::default();
        let out = k.execute(&Value::U64(32)).unwrap();
        match out {
            Value::F64s(flat) => assert_eq!(flat.len(), 32 * GENES),
            other => panic!("expected F64s, got {other:?}"),
        }
    }

    #[test]
    fn ten_generations_improve_mean_fitness() {
        let k = GaGeneration::seeded(99);
        let mut pop = match k.execute(&Value::U64(64)).unwrap() {
            Value::F64s(f) => f,
            _ => unreachable!(),
        };
        let before = mean_fitness(&pop);
        for _ in 1..GENERATIONS {
            pop = match k.execute(&Value::F64s(pop)).unwrap() {
                Value::F64s(f) => f,
                _ => unreachable!(),
            };
        }
        let after = mean_fitness(&pop);
        assert!(
            after < before,
            "fitness should improve: {before} -> {after}"
        );
    }

    #[test]
    fn genes_stay_in_bounds() {
        let k = GaGeneration::default();
        let out = k.execute(&Value::U64(16)).unwrap();
        if let Value::F64s(flat) = out {
            assert!(flat.iter().all(|g| (-5.12..=5.12).contains(g)));
        }
    }

    #[test]
    fn work_scales_linearly_with_population() {
        let k = GaGeneration::default();
        let w1 = k.work(&Value::U64(100)).unwrap();
        let w2 = k.work(&Value::U64(200)).unwrap();
        assert!((w2.flops / w1.flops - 2.0).abs() < 1e-12);
        assert_eq!(w1.bytes_in, w1.bytes_out);
    }

    #[test]
    fn invalid_inputs_rejected() {
        let k = GaGeneration::default();
        assert!(k.execute(&Value::U64(0)).is_err());
        assert!(k.execute(&Value::F64s(vec![1.0; 50])).is_err());
        assert!(k.execute(&Value::Unit).is_err());
    }
}
