//! Monte-Carlo integration (the paper's §5.6.1 MCI kernel): estimates
//! `∫₁¹⁰ 1/x dx = ln 10` with `N` samples. Fully real.

use std::cell::RefCell;

use kaas_accel::{DeviceClass, WorkUnits};
use kaas_simtime::rng::DetRng;

use crate::kernel::{require_n, Kernel, KernelError};
use crate::value::Value;

/// Sample cap for the real computation (timing always uses the declared
/// sample count; beyond the cap the estimate is already tight).
const EXEC_CAP: u64 = 1_000_000;

/// Monte-Carlo estimator of `∫₁¹⁰ dx/x` with `N` samples.
///
/// Input: `Value::U64(n)` (sample count). Output: `Value::F64` estimate.
///
/// # Examples
///
/// ```
/// use kaas_kernels::{Kernel, MonteCarlo, Value};
///
/// let k = MonteCarlo::seeded(7);
/// let est = match k.execute(&Value::U64(200_000)).unwrap() {
///     Value::F64(v) => v,
///     _ => unreachable!(),
/// };
/// assert!((est - 10f64.ln()).abs() < 0.05);
/// ```
#[derive(Debug)]
pub struct MonteCarlo {
    rng: RefCell<DetRng>,
}

impl Default for MonteCarlo {
    fn default() -> Self {
        Self::seeded(0x4D43) // "MC"
    }
}

impl MonteCarlo {
    /// Creates the kernel with a deterministic RNG seed.
    pub fn seeded(seed: u64) -> Self {
        MonteCarlo {
            rng: RefCell::new(DetRng::seed_from_u64(seed)),
        }
    }
}

/// Direct sampling estimate of the integral with the given RNG.
pub fn estimate_integral(samples: u64, rng: &mut DetRng) -> f64 {
    assert!(samples > 0, "need at least one sample");
    let width = 9.0; // x ∈ [1, 10]
    let mut acc = 0.0;
    for _ in 0..samples {
        let x: f64 = 1.0 + rng.gen::<f64>() * width;
        acc += 1.0 / x;
    }
    acc / samples as f64 * width
}

impl Kernel for MonteCarlo {
    fn name(&self) -> &str {
        "mci"
    }

    fn device_class(&self) -> DeviceClass {
        DeviceClass::Gpu
    }

    fn demand(&self) -> f64 {
        0.15
    }

    fn work(&self, input: &Value) -> Result<WorkUnits, KernelError> {
        let n = require_n("mci", input)?;
        // RNG + reciprocal + reduction per sample.
        Ok(WorkUnits::new(n as f64 * 25.0)
            .with_bytes(64, 16)
            .with_efficiency(0.12))
    }

    fn execute(&self, input: &Value) -> Result<Value, KernelError> {
        let n = require_n("mci", input)?;
        if n == 0 {
            return Err(KernelError::BadInput(
                "mci needs at least one sample".into(),
            ));
        }
        let mut rng = self.rng.borrow_mut();
        Ok(Value::F64(estimate_integral(n.min(EXEC_CAP), &mut rng)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimate_converges_to_ln10() {
        let mut rng = DetRng::seed_from_u64(11);
        let est = estimate_integral(500_000, &mut rng);
        assert!((est - 10f64.ln()).abs() < 0.01, "est={est}");
    }

    #[test]
    fn more_samples_reduce_error() {
        let err = |n: u64| {
            let mut worst: f64 = 0.0;
            for seed in 0..5 {
                let mut rng = DetRng::seed_from_u64(seed);
                worst = worst.max((estimate_integral(n, &mut rng) - 10f64.ln()).abs());
            }
            worst
        };
        assert!(err(100_000) < err(100));
    }

    #[test]
    fn kernel_rejects_zero_samples() {
        let k = MonteCarlo::default();
        assert!(k.execute(&Value::U64(0)).is_err());
    }

    #[test]
    fn work_is_linear_and_tiny_on_wire() {
        let k = MonteCarlo::default();
        let w = k.work(&Value::U64(65_536)).unwrap();
        assert_eq!(w.flops, 65_536.0 * 25.0);
        assert!(w.total_bytes() < 128, "MCI moves almost no data");
    }
}
