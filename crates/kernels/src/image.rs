//! Image preprocessing (the Fig. 1 workflow's CPU task): decode-style
//! normalization plus box-filter downsampling to the 224×224 inference
//! resolution. Fully real.

use kaas_accel::{DeviceClass, WorkUnits};

use crate::kernel::{Kernel, KernelError};
use crate::value::Value;

/// Target edge length after preprocessing.
pub const TARGET: usize = 224;

/// Downsamples a `channels`-interleaved image to `target×target` with box
/// averaging.
pub fn box_resize(
    pixels: &[u8],
    width: usize,
    height: usize,
    channels: usize,
    target: usize,
) -> Vec<u8> {
    assert_eq!(pixels.len(), width * height * channels, "shape mismatch");
    assert!(target >= 1 && width >= 1 && height >= 1);
    let mut out = vec![0u8; target * target * channels];
    for ty in 0..target {
        let y0 = ty * height / target;
        let y1 = (((ty + 1) * height).div_ceil(target))
            .min(height)
            .max(y0 + 1);
        for tx in 0..target {
            let x0 = tx * width / target;
            let x1 = (((tx + 1) * width).div_ceil(target)).min(width).max(x0 + 1);
            for c in 0..channels {
                let mut acc = 0u64;
                for y in y0..y1 {
                    for x in x0..x1 {
                        acc += pixels[(y * width + x) * channels + c] as u64;
                    }
                }
                let count = ((y1 - y0) * (x1 - x0)) as u64;
                out[(ty * target + tx) * channels + c] = (acc / count) as u8;
            }
        }
    }
    out
}

/// CPU image-preprocessing kernel: resize to 224² (keeping channels).
///
/// Input: a `Value::Image` or `Value::U64(pixels)` (synthetic frame).
/// Output: `Value::Image` at 224×224.
#[derive(Debug, Clone, Default)]
pub struct Preprocess;

impl Preprocess {
    /// Creates the kernel.
    pub fn new() -> Self {
        Preprocess
    }
}

impl Kernel for Preprocess {
    fn name(&self) -> &str {
        "preprocess"
    }

    fn device_class(&self) -> DeviceClass {
        DeviceClass::Cpu
    }

    fn work(&self, input: &Value) -> Result<WorkUnits, KernelError> {
        let (pixels, channels) = match input {
            Value::U64(p) => (*p, 3u64),
            Value::Image {
                width,
                height,
                channels,
                ..
            } => ((width * height) as u64, *channels as u64),
            other => {
                return Err(KernelError::BadInput(format!(
                    "preprocess expects Image or U64(pixels), got {other:?}"
                )))
            }
        };
        // Decode-class per-pixel cost plus the resize accumulation.
        Ok(WorkUnits::new(pixels as f64 * 40.0)
            .with_bytes(pixels * channels, (TARGET * TARGET) as u64 * channels)
            .with_efficiency(0.35))
    }

    fn execute(&self, input: &Value) -> Result<Value, KernelError> {
        let (pixels, width, height, channels) = match input {
            Value::U64(p) => {
                let p = (*p as usize).clamp(1, 1 << 21);
                let w = ((p as f64).sqrt() as usize).max(1);
                let h = (p / w).max(1);
                let pix: Vec<u8> = (0..w * h * 3).map(|i| ((i * 37) % 251) as u8).collect();
                (pix, w, h, 3)
            }
            Value::Image {
                pixels,
                width,
                height,
                channels,
            } => (pixels.clone(), *width, *height, *channels),
            other => {
                return Err(KernelError::BadInput(format!(
                    "preprocess expects Image or U64(pixels), got {other:?}"
                )))
            }
        };
        let out = box_resize(&pixels, width, height, channels, TARGET);
        Ok(Value::image(out, TARGET, TARGET, channels))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resize_of_uniform_image_is_uniform() {
        let img = vec![100u8; 448 * 448 * 3];
        let out = box_resize(&img, 448, 448, 3, TARGET);
        assert_eq!(out.len(), TARGET * TARGET * 3);
        assert!(out.iter().all(|&p| p == 100));
    }

    #[test]
    fn resize_preserves_gradient_direction() {
        // A left-to-right ramp must stay increasing after downsampling.
        let w = 512;
        let img: Vec<u8> = (0..w * w).map(|i| ((i % w) * 255 / w) as u8).collect();
        let out = box_resize(&img, w, w, 1, 64);
        let row = &out[0..64];
        assert!(row.windows(2).all(|p| p[1] >= p[0]));
    }

    #[test]
    fn upscaling_small_inputs_works() {
        let img = vec![7u8; 4 * 4];
        let out = box_resize(&img, 4, 4, 1, 8);
        assert_eq!(out.len(), 64);
        assert!(out.iter().all(|&p| p == 7));
    }

    #[test]
    fn kernel_produces_target_resolution() {
        let k = Preprocess::new();
        let out = k.execute(&Value::U64(1920 * 1080)).unwrap();
        if let Value::Image { width, height, .. } = out {
            assert_eq!((width, height), (TARGET, TARGET));
        } else {
            panic!("expected Image");
        }
    }

    #[test]
    fn work_counts_input_pixels() {
        let k = Preprocess::new();
        let w = k.work(&Value::U64(1_000_000)).unwrap();
        assert_eq!(w.flops, 4.0e7);
        assert_eq!(w.bytes_in, 3_000_000);
    }
}
