//! The [`Kernel`] trait: what developers register with a KaaS server.
//!
//! A kernel couples a *real computation* ([`Kernel::execute`]) with a
//! *work profile* ([`Kernel::work`]) that device models turn into virtual
//! time. For workloads whose full-scale computation is infeasible on a
//! laptop (e.g. a 20 000×20 000 matrix product), `execute` computes a
//! truth-preserving reduced instance while `work` still describes the
//! full-scale cost — the timing experiments depend only on `work`.

use std::time::Duration;

use kaas_accel::{DeviceClass, WorkUnits};

use crate::value::Value;

/// Errors raised by kernels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelError {
    /// The input value has the wrong shape or type for this kernel.
    BadInput(String),
    /// A guest kernel trapped (division by zero, out-of-bounds access,
    /// type confusion, …). The computation is deterministic, so retrying
    /// the same input traps the same way.
    Trap(String),
    /// A guest kernel ran out of fuel before returning.
    FuelExhausted(String),
}

impl std::fmt::Display for KernelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KernelError::BadInput(msg) => write!(f, "bad kernel input: {msg}"),
            KernelError::Trap(msg) => write!(f, "guest kernel trapped: {msg}"),
            KernelError::FuelExhausted(msg) => write!(f, "guest kernel out of fuel: {msg}"),
        }
    }
}

/// How a kernel comes up on a fresh runner (the last cold-start phase).
///
/// Compiled-in kernels are [`Warmup::Resident`]: their code is part of
/// the runner binary, so bringing one up costs nothing beyond the
/// process/context phases the runner already pays. Guest kernels pay an
/// extra warm-init phase whose cost depends on the path the tenant
/// registered them with: a full instantiate (parse + validate + run the
/// init program) or a Proto-Faaslet-style restore of a pre-initialized
/// interpreter image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Warmup {
    /// Compiled into the runner; no warm-init cost.
    Resident,
    /// Full instantiate: parse + validate + run the init program.
    Instantiate(Duration),
    /// Restore a pre-initialized snapshot image.
    Restore(Duration),
}

impl Warmup {
    /// The warm-init cost, if any, with its cold-start path label
    /// (`"full"` or `"restore"` — the `guest.cold_start.{path}` hole).
    pub fn cost(&self) -> Option<(&'static str, Duration)> {
        match self {
            Warmup::Resident => None,
            Warmup::Instantiate(d) => Some(("full", *d)),
            Warmup::Restore(d) => Some(("restore", *d)),
        }
    }
}

impl std::error::Error for KernelError {}

/// A registrable accelerator kernel (the paper's §3.1 unit of
/// registration and invocation).
pub trait Kernel {
    /// Unique kernel name used at registration/invocation time.
    fn name(&self) -> &str;

    /// The device family this kernel targets.
    fn device_class(&self) -> DeviceClass;

    /// Reference standalone occupancy on a large GPU (fraction of the
    /// device a single instance can use). Scaled per device by
    /// `GpuProfile::demand_scale`.
    fn demand(&self) -> f64 {
        0.25
    }

    /// How this kernel comes up on a fresh runner. Compiled-in kernels
    /// are resident in the runner binary; guest kernels override this
    /// with their instantiate/restore cost.
    fn warmup(&self) -> Warmup {
        Warmup::Resident
    }

    /// The work profile for `input` (FLOPs, transfer volumes, efficiency,
    /// FPGA cycles, circuit cost).
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::BadInput`] if `input` has the wrong shape.
    fn work(&self, input: &Value) -> Result<WorkUnits, KernelError>;

    /// Runs the computation.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::BadInput`] if `input` has the wrong shape.
    fn execute(&self, input: &Value) -> Result<Value, KernelError>;
}

/// Convenience: validates and extracts the `U64` task-granularity
/// parameter most kernels take.
pub(crate) fn require_n(kernel: &str, input: &Value) -> Result<u64, KernelError> {
    input.as_u64().ok_or_else(|| {
        KernelError::BadInput(format!("{kernel} expects Value::U64(n), got {input:?}"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo;

    impl Kernel for Echo {
        fn name(&self) -> &str {
            "echo"
        }
        fn device_class(&self) -> DeviceClass {
            DeviceClass::Cpu
        }
        fn work(&self, input: &Value) -> Result<WorkUnits, KernelError> {
            Ok(WorkUnits::new(0.0).with_bytes(input.wire_bytes(), input.wire_bytes()))
        }
        fn execute(&self, input: &Value) -> Result<Value, KernelError> {
            Ok(input.clone())
        }
    }

    #[test]
    fn trait_object_is_usable() {
        let k: Box<dyn Kernel> = Box::new(Echo);
        assert_eq!(k.name(), "echo");
        assert_eq!(k.demand(), 0.25);
        let out = k.execute(&Value::U64(3)).unwrap();
        assert_eq!(out, Value::U64(3));
        assert_eq!(k.work(&Value::U64(3)).unwrap().bytes_in, 16);
    }

    #[test]
    fn require_n_rejects_non_scalars() {
        assert!(require_n("k", &Value::Unit).is_err());
        assert_eq!(require_n("k", &Value::U64(9)).unwrap(), 9);
    }

    #[test]
    fn error_display() {
        let e = KernelError::BadInput("nope".into());
        assert!(e.to_string().contains("nope"));
        assert!(KernelError::Trap("div".into()).to_string().contains("div"));
        assert!(KernelError::FuelExhausted("f".into())
            .to_string()
            .contains("fuel"));
    }

    #[test]
    fn warmup_defaults_and_costs() {
        let k: Box<dyn Kernel> = Box::new(Echo);
        assert_eq!(k.warmup(), Warmup::Resident);
        assert_eq!(Warmup::Resident.cost(), None);
        let d = Duration::from_micros(5);
        assert_eq!(Warmup::Instantiate(d).cost(), Some(("full", d)));
        assert_eq!(Warmup::Restore(d).cost(), Some(("restore", d)));
    }
}
