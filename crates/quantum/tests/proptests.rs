//! Property-style tests of the quantum stack's physical invariants.
//!
//! Randomized circuits come from the in-tree deterministic RNG instead
//! of an external property-test framework, so the suite builds with no
//! registry access. Enable with `--features proptest-tests`.
#![cfg(feature = "proptest-tests")]

use kaas_quantum::{transpile, Circuit, Gate, Hamiltonian, Op, StateVector};
use kaas_simtime::rng::DetRng;

const CASES: u64 = 48;

/// An arbitrary op on `qubits` qubits.
fn arb_op(qubits: usize, rng: &mut DetRng) -> Op {
    if rng.gen_range(0..5usize) < 3 {
        let q = rng.gen_range(0..qubits);
        let theta = rng.gen_range(-3.2..3.2f64);
        let gate = match rng.gen_range(0..8usize) {
            0 => Gate::H,
            1 => Gate::X,
            2 => Gate::Y,
            3 => Gate::Z,
            4 => Gate::S,
            5 => Gate::Rx(theta),
            6 => Gate::Ry(theta),
            _ => Gate::Rz(theta),
        };
        Op::Gate1 { gate, qubit: q }
    } else {
        let a = rng.gen_range(0..qubits);
        let off = rng.gen_range(1..qubits.max(2));
        let b = (a + off) % qubits;
        let (a, b) = if a == b {
            (a, (a + 1) % qubits)
        } else {
            (a, b)
        };
        match rng.gen_range(0..3usize) {
            0 => Op::Cx {
                control: a,
                target: b,
            },
            1 => Op::Cz { a, b },
            _ => Op::Swap { a, b },
        }
    }
}

fn arb_circuit(qubits: usize, max_ops: usize, rng: &mut DetRng) -> Circuit {
    let n = rng.gen_range(0..max_ops);
    let mut qc = Circuit::new(qubits);
    for _ in 0..n {
        qc.push(arb_op(qubits, rng));
    }
    qc
}

/// Every circuit is norm-preserving (all gates are unitary).
#[test]
fn circuits_preserve_norm() {
    for case in 0..CASES {
        let mut rng = DetRng::seed_from_u64(0x900_000 + case);
        let qc = arb_circuit(4, 60, &mut rng);
        let psi = qc.statevector();
        assert!((psi.norm() - 1.0).abs() < 1e-9);
    }
}

/// Transpiled circuits are equivalent up to global phase (fidelity 1
/// against the original on a random input state).
#[test]
fn transpile_preserves_semantics() {
    for case in 0..CASES {
        let mut rng = DetRng::seed_from_u64(0x901_000 + case);
        let qc = arb_circuit(3, 40, &mut rng);
        let (lowered, stats) = transpile(&qc);
        assert!(stats.gates_after <= stats.gates_before * 7 + 1);
        let prep = Circuit::random_cx(3, 5, &mut rng);
        let mut a = prep.statevector();
        let mut b = a.clone();
        qc.run_on(&mut a);
        lowered.run_on(&mut b);
        assert!(
            (a.fidelity(&b) - 1.0).abs() < 1e-8,
            "fidelity {} after transpiling {:?}",
            a.fidelity(&b),
            qc
        );
    }
}

/// Applying a gate twice where G² = I returns to the original state.
#[test]
fn involutory_gates_square_to_identity() {
    for case in 0..CASES {
        let mut rng = DetRng::seed_from_u64(0x902_000 + case);
        let qc = arb_circuit(3, 20, &mut rng);
        let which = rng.gen_range(0..4usize);
        let q = rng.gen_range(0..3usize);
        let gate = [Gate::H, Gate::X, Gate::Y, Gate::Z][which];
        let mut psi = qc.statevector();
        let reference = psi.clone();
        psi.apply(Op::Gate1 { gate, qubit: q });
        psi.apply(Op::Gate1 { gate, qubit: q });
        assert!((psi.fidelity(&reference) - 1.0).abs() < 1e-9);
    }
}

/// Pauli expectations are bounded by the operator norm: |⟨P⟩| ≤ 1.
#[test]
fn pauli_expectations_are_bounded() {
    for case in 0..CASES {
        let mut rng = DetRng::seed_from_u64(0x903_000 + case);
        let qc = arb_circuit(3, 30, &mut rng);
        let q = rng.gen_range(0..3usize);
        let psi = qc.statevector();
        for p in ['X', 'Y', 'Z'] {
            let e = psi.pauli_expectation(&[(q, p)]);
            assert!(e.abs() <= 1.0 + 1e-9, "<{p}> = {e}");
        }
    }
}

/// Energies of arbitrary states respect the variational bound of the
/// H₂ Hamiltonian's ground energy.
#[test]
fn variational_bound_holds() {
    for case in 0..CASES {
        let mut rng = DetRng::seed_from_u64(0x904_000 + case);
        let qc = arb_circuit(2, 30, &mut rng);
        let h = Hamiltonian::h2_sto3g();
        let e = h.expectation(&qc.statevector());
        assert!(e >= Hamiltonian::h2_ground_energy() - 1e-9, "e = {e}");
    }
}

/// Probabilities sum to one and every amplitude is bounded.
#[test]
fn probabilities_form_a_distribution() {
    for case in 0..CASES {
        let mut rng = DetRng::seed_from_u64(0x905_000 + case);
        let qc = arb_circuit(4, 40, &mut rng);
        let psi = qc.statevector();
        let probs = psi.probabilities();
        let total: f64 = probs.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(probs.iter().all(|&p| (0.0..=1.0 + 1e-12).contains(&p)));
    }
}

/// Sampling only produces basis states with nonzero probability.
#[test]
fn samples_come_from_the_support() {
    for case in 0..CASES {
        let mut rng = DetRng::seed_from_u64(0x906_000 + case);
        let qc = Circuit::random_cx(4, 12, &mut rng);
        let psi = qc.statevector();
        let probs = psi.probabilities();
        let samples = psi.sample(200, &mut rng);
        for s in samples {
            assert!(probs[s] > 1e-12, "sampled zero-probability state {s}");
        }
    }
}

/// Circuit depth is never larger than the gate count and never
/// smaller than gates-per-qubit.
#[test]
fn depth_bounds() {
    for case in 0..CASES {
        let mut rng = DetRng::seed_from_u64(0x907_000 + case);
        let qc = arb_circuit(4, 50, &mut rng);
        let depth = qc.depth();
        assert!(depth <= qc.gate_count());
        let per_qubit_max = (0..4)
            .map(|q| {
                qc.ops()
                    .iter()
                    .filter(|op| op.qubits().contains(&q))
                    .count()
            })
            .max()
            .unwrap_or(0);
        assert!(depth >= per_qubit_max.min(qc.gate_count()));
    }
}

/// StateVector::inner is conjugate-symmetric: ⟨a|b⟩ = conj(⟨b|a⟩).
#[test]
fn inner_product_conjugate_symmetry() {
    for case in 0..CASES {
        let mut rng = DetRng::seed_from_u64(0x908_000 + case);
        let a = arb_circuit(3, 25, &mut rng);
        let b = arb_circuit(3, 25, &mut rng);
        let pa: StateVector = a.statevector();
        let pb: StateVector = b.statevector();
        let ab = pa.inner(&pb);
        let ba = pb.inner(&pa);
        assert!((ab.re - ba.re).abs() < 1e-9);
        assert!((ab.im + ba.im).abs() < 1e-9);
    }
}
