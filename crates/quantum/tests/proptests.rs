//! Property-based tests of the quantum stack's physical invariants.

use proptest::prelude::*;
use rand::SeedableRng;

use kaas_quantum::{transpile, Circuit, Gate, Hamiltonian, Op, StateVector};

/// Strategy: an arbitrary op on `qubits` qubits.
fn arb_op(qubits: usize) -> impl Strategy<Value = Op> {
    let single = (0..qubits, 0..8usize, -3.2f64..3.2).prop_map(|(q, which, theta)| {
        let gate = match which {
            0 => Gate::H,
            1 => Gate::X,
            2 => Gate::Y,
            3 => Gate::Z,
            4 => Gate::S,
            5 => Gate::Rx(theta),
            6 => Gate::Ry(theta),
            _ => Gate::Rz(theta),
        };
        Op::Gate1 { gate, qubit: q }
    });
    let two = (0..qubits, 1..qubits, 0..3usize).prop_map(move |(a, off, kind)| {
        let b = (a + off) % qubits;
        let (a, b) = if a == b { (a, (a + 1) % qubits) } else { (a, b) };
        match kind {
            0 => Op::Cx { control: a, target: b },
            1 => Op::Cz { a, b },
            _ => Op::Swap { a, b },
        }
    });
    prop_oneof![3 => single, 2 => two]
}

fn arb_circuit(qubits: usize, max_ops: usize) -> impl Strategy<Value = Circuit> {
    prop::collection::vec(arb_op(qubits), 0..max_ops).prop_map(move |ops| {
        let mut qc = Circuit::new(qubits);
        for op in ops {
            qc.push(op);
        }
        qc
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every circuit is norm-preserving (all gates are unitary).
    #[test]
    fn circuits_preserve_norm(qc in arb_circuit(4, 60)) {
        let psi = qc.statevector();
        prop_assert!((psi.norm() - 1.0).abs() < 1e-9);
    }

    /// Transpiled circuits are equivalent up to global phase (fidelity 1
    /// against the original on a random input state).
    #[test]
    fn transpile_preserves_semantics(qc in arb_circuit(3, 40), seed in 0u64..1000) {
        let (lowered, stats) = transpile(&qc);
        prop_assert!(stats.gates_after <= stats.gates_before * 7 + 1);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let prep = Circuit::random_cx(3, 5, &mut rng);
        let mut a = prep.statevector();
        let mut b = a.clone();
        qc.run_on(&mut a);
        lowered.run_on(&mut b);
        prop_assert!((a.fidelity(&b) - 1.0).abs() < 1e-8,
            "fidelity {} after transpiling {:?}", a.fidelity(&b), qc);
    }

    /// Applying a gate twice where G² = I returns to the original state.
    #[test]
    fn involutory_gates_square_to_identity(
        qc in arb_circuit(3, 20),
        which in 0..4usize,
        q in 0..3usize,
    ) {
        let gate = [Gate::H, Gate::X, Gate::Y, Gate::Z][which];
        let mut psi = qc.statevector();
        let reference = psi.clone();
        psi.apply(Op::Gate1 { gate, qubit: q });
        psi.apply(Op::Gate1 { gate, qubit: q });
        prop_assert!((psi.fidelity(&reference) - 1.0).abs() < 1e-9);
    }

    /// Pauli expectations are bounded by the operator norm: |⟨P⟩| ≤ 1.
    #[test]
    fn pauli_expectations_are_bounded(qc in arb_circuit(3, 30), q in 0..3usize) {
        let psi = qc.statevector();
        for p in ['X', 'Y', 'Z'] {
            let e = psi.pauli_expectation(&[(q, p)]);
            prop_assert!(e.abs() <= 1.0 + 1e-9, "<{p}> = {e}");
        }
    }

    /// Energies of arbitrary states respect the variational bound of the
    /// H₂ Hamiltonian's ground energy.
    #[test]
    fn variational_bound_holds(qc in arb_circuit(2, 30)) {
        let h = Hamiltonian::h2_sto3g();
        let e = h.expectation(&qc.statevector());
        prop_assert!(e >= Hamiltonian::h2_ground_energy() - 1e-9, "e = {e}");
    }

    /// Probabilities sum to one and every amplitude is bounded.
    #[test]
    fn probabilities_form_a_distribution(qc in arb_circuit(4, 40)) {
        let psi = qc.statevector();
        let probs = psi.probabilities();
        let total: f64 = probs.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert!(probs.iter().all(|&p| (0.0..=1.0 + 1e-12).contains(&p)));
    }

    /// Sampling only produces basis states with nonzero probability.
    #[test]
    fn samples_come_from_the_support(seed in 0u64..500) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let qc = Circuit::random_cx(4, 12, &mut rng);
        let psi = qc.statevector();
        let probs = psi.probabilities();
        let samples = psi.sample(200, &mut rng);
        for s in samples {
            prop_assert!(probs[s] > 1e-12, "sampled zero-probability state {s}");
        }
    }

    /// Circuit depth is never larger than the gate count and never
    /// smaller than gates-per-qubit.
    #[test]
    fn depth_bounds(qc in arb_circuit(4, 50)) {
        let depth = qc.depth();
        prop_assert!(depth <= qc.gate_count());
        let per_qubit_max = (0..4)
            .map(|q| qc.ops().iter().filter(|op| op.qubits().contains(&q)).count())
            .max()
            .unwrap_or(0);
        prop_assert!(depth >= per_qubit_max.min(qc.gate_count()));
    }

    /// StateVector::inner is conjugate-symmetric: ⟨a|b⟩ = conj(⟨b|a⟩).
    #[test]
    fn inner_product_conjugate_symmetry(
        a in arb_circuit(3, 25),
        b in arb_circuit(3, 25),
    ) {
        let pa: StateVector = a.statevector();
        let pb: StateVector = b.statevector();
        let ab = pa.inner(&pb);
        let ba = pb.inner(&pa);
        prop_assert!((ab.re - ba.re).abs() < 1e-9);
        prop_assert!((ab.im + ba.im).abs() < 1e-9);
    }
}
