//! The estimator primitive: expectation values of observables over
//! parametrized circuits (the paper's §5.6.4 "quantum kernel").

use crate::circuit::Circuit;
use crate::pauli::Hamiltonian;
use kaas_simtime::rng::DetRng;

/// Exact or shot-sampled expectation estimation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EstimatorMode {
    /// Exact expectation from the state vector.
    Exact,
    /// Shot-noise-corrupted estimate with the given number of shots.
    Shots(u64),
}

/// Evaluates ⟨ψ(circuit)|H|ψ(circuit)⟩.
///
/// # Examples
///
/// ```
/// use kaas_quantum::{estimate, Circuit, EstimatorMode, Hamiltonian};
/// use kaas_simtime::rng::DetRng;
///
/// let mut qc = Circuit::new(2);
/// qc.x(0);
/// let h = Hamiltonian::h2_sto3g();
/// let mut rng = DetRng::seed_from_u64(1);
/// let e = estimate(&qc, &h, EstimatorMode::Exact, &mut rng);
/// assert!(e < -1.7);
/// ```
pub fn estimate(
    circuit: &Circuit,
    observable: &Hamiltonian,
    mode: EstimatorMode,
    rng: &mut DetRng,
) -> f64 {
    let psi = circuit.statevector();
    let exact = observable.expectation(&psi);
    match mode {
        EstimatorMode::Exact => exact,
        EstimatorMode::Shots(shots) => {
            // Model shot noise as Gaussian with variance ∝ 1/shots around
            // the exact value (standard estimator error model); the spread
            // scales with the observable's total Pauli weight.
            let weight: f64 = observable.terms().iter().map(|t| t.coefficient.abs()).sum();
            let sigma = weight / (shots.max(1) as f64).sqrt();
            // Box–Muller from two uniforms.
            let u1: f64 = rng.gen::<f64>().max(1e-12);
            let u2: f64 = rng.gen();
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            exact + sigma * z
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_matches_direct_expectation() {
        let mut qc = Circuit::new(2);
        qc.ry(0.4, 0).cx(0, 1);
        let h = Hamiltonian::h2_sto3g();
        let mut rng = DetRng::seed_from_u64(0);
        let e = estimate(&qc, &h, EstimatorMode::Exact, &mut rng);
        assert!((e - h.expectation(&qc.statevector())).abs() < 1e-12);
    }

    #[test]
    fn shot_noise_shrinks_with_shots() {
        let mut qc = Circuit::new(2);
        qc.h(0);
        let h = Hamiltonian::h2_sto3g();
        let exact = h.expectation(&qc.statevector());
        let spread = |shots: u64, seed: u64| -> f64 {
            let mut rng = DetRng::seed_from_u64(seed);
            let mut worst: f64 = 0.0;
            for _ in 0..50 {
                let e = estimate(&qc, &h, EstimatorMode::Shots(shots), &mut rng);
                worst = worst.max((e - exact).abs());
            }
            worst
        };
        assert!(spread(1_000_000, 1) < spread(100, 1));
    }

    #[test]
    fn shot_estimates_are_deterministic_per_seed() {
        let qc = Circuit::new(2);
        let h = Hamiltonian::h2_sto3g();
        let mut a = DetRng::seed_from_u64(9);
        let mut b = DetRng::seed_from_u64(9);
        let ea = estimate(&qc, &h, EstimatorMode::Shots(512), &mut a);
        let eb = estimate(&qc, &h, EstimatorMode::Shots(512), &mut b);
        assert_eq!(ea, eb);
    }
}
