//! A small transpiler: basis translation to `{H, Rz, CX}` → optional
//! hardware basis `{Rz, Sx, X, CX}`, plus peephole optimization passes
//! (rotation fusion, adjacent-CX cancellation).
//!
//! In the paper's QPU prototype (§5.6.4) transpilation happens on
//! classical hardware before circuits reach the backend; KaaS caches the
//! transpiled circuit across estimator calls.

use std::f64::consts::{FRAC_PI_2, PI};

use crate::circuit::Circuit;
use crate::gate::{Gate, Op};

/// Transpilation report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TranspileStats {
    /// Gates before.
    pub gates_before: usize,
    /// Gates after.
    pub gates_after: usize,
    /// Two-qubit gates after.
    pub two_qubit_after: usize,
}

/// Translates a circuit to the hardware basis `{Rz, Sx, X, CX}` and runs
/// the optimization passes. The result is equivalent up to global phase.
///
/// # Examples
///
/// ```
/// use kaas_quantum::{transpile, Circuit};
///
/// let mut qc = Circuit::new(2);
/// qc.h(0).cx(0, 1).h(0);
/// let (out, stats) = transpile(&qc);
/// assert_eq!(stats.two_qubit_after, 1);
/// assert!(out.ops().iter().all(|op| match op {
///     kaas_quantum::Op::Gate1 { gate, .. } => gate.in_hardware_basis(),
///     _ => true,
/// }));
/// ```
pub fn transpile(qc: &Circuit) -> (Circuit, TranspileStats) {
    let gates_before = qc.gate_count();
    let mut out = Circuit::new(qc.qubits());
    for op in qc.ops() {
        lower_op(*op, &mut out);
    }
    let out = optimize(&out);
    let stats = TranspileStats {
        gates_before,
        gates_after: out.gate_count(),
        two_qubit_after: out.two_qubit_count(),
    };
    (out, stats)
}

/// Lowers one op into the hardware basis.
fn lower_op(op: Op, out: &mut Circuit) {
    match op {
        Op::Gate1 { gate, qubit } => lower_gate(gate, qubit, out),
        Op::Cx { .. } => {
            out.push(op);
        }
        Op::Cz { a, b } => {
            // CZ = H(b) · CX(a→b) · H(b).
            lower_gate(Gate::H, b, out);
            out.cx(a, b);
            lower_gate(Gate::H, b, out);
        }
        Op::Swap { a, b } => {
            out.cx(a, b).cx(b, a).cx(a, b);
        }
    }
}

/// Lowers a single-qubit gate to `{Rz, Sx, X}` (up to global phase).
fn lower_gate(gate: Gate, q: usize, out: &mut Circuit) {
    match gate {
        Gate::Rz(t) => {
            out.rz(t, q);
        }
        Gate::Sx | Gate::X => {
            out.gate(gate, q);
        }
        // H = Rz(π/2) · Sx · Rz(π/2) up to global phase.
        Gate::H => {
            out.rz(FRAC_PI_2, q).gate(Gate::Sx, q).rz(FRAC_PI_2, q);
        }
        Gate::Z => {
            out.rz(PI, q);
        }
        Gate::S => {
            out.rz(FRAC_PI_2, q);
        }
        Gate::Sdg => {
            out.rz(-FRAC_PI_2, q);
        }
        Gate::T => {
            out.rz(PI / 4.0, q);
        }
        Gate::Tdg => {
            out.rz(-PI / 4.0, q);
        }
        Gate::Phase(l) => {
            out.rz(l, q);
        }
        // Y ∝ Z·X: apply X then Z (right-to-left operator order).
        Gate::Y => {
            out.gate(Gate::X, q).rz(PI, q);
        }
        // Rx(θ) = H · Rz(θ) · H exactly.
        Gate::Rx(t) => {
            lower_gate(Gate::H, q, out);
            out.rz(t, q);
            lower_gate(Gate::H, q, out);
        }
        // Ry(θ) = Rz(π/2) · Rx(θ) · Rz(-π/2) — the rightmost factor is
        // applied first, so Rz(-π/2) is pushed first.
        Gate::Ry(t) => {
            out.rz(-FRAC_PI_2, q);
            lower_gate(Gate::Rx(t), q, out);
            out.rz(FRAC_PI_2, q);
        }
    }
}

/// Peephole optimization: fuses adjacent Rz on the same qubit (dropping
/// zero rotations) and cancels adjacent identical CX pairs. Adjacency is
/// tracked per qubit, so unrelated gates in between do not block fusion.
pub fn optimize(qc: &Circuit) -> Circuit {
    // Work on a simple op list with tombstones.
    let mut ops: Vec<Option<Op>> = qc.ops().iter().copied().map(Some).collect();
    // last_op[q] = index of the most recent surviving op touching q.
    let mut last_op: Vec<Option<usize>> = vec![None; qc.qubits()];
    for i in 0..ops.len() {
        let Some(op) = ops[i] else { continue };
        match op {
            Op::Gate1 {
                gate: Gate::Rz(t),
                qubit,
            } => {
                if let Some(j) = last_op[qubit] {
                    if let Some(Op::Gate1 {
                        gate: Gate::Rz(prev),
                        ..
                    }) = ops[j]
                    {
                        // Fuse into the earlier rotation.
                        let sum = prev + t;
                        ops[i] = None;
                        if sum.abs() < 1e-12 {
                            ops[j] = None;
                            last_op[qubit] = None;
                        } else {
                            ops[j] = Some(Op::Gate1 {
                                gate: Gate::Rz(sum),
                                qubit,
                            });
                        }
                        continue;
                    }
                }
                if t.abs() < 1e-12 {
                    ops[i] = None;
                    continue;
                }
                last_op[qubit] = Some(i);
            }
            Op::Cx { control, target } => {
                if let (Some(jc), Some(jt)) = (last_op[control], last_op[target]) {
                    if jc == jt {
                        if let Some(Op::Cx {
                            control: pc,
                            target: pt,
                        }) = ops[jc]
                        {
                            if pc == control && pt == target {
                                // CX · CX = I.
                                ops[i] = None;
                                ops[jc] = None;
                                last_op[control] = None;
                                last_op[target] = None;
                                continue;
                            }
                        }
                    }
                }
                last_op[control] = Some(i);
                last_op[target] = Some(i);
            }
            other => {
                for q in other.qubits() {
                    last_op[q] = Some(i);
                }
            }
        }
    }
    let mut out = Circuit::new(qc.qubits());
    for op in ops.into_iter().flatten() {
        out.push(op);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use kaas_simtime::rng::DetRng;

    /// Equivalence up to global phase, checked on several random input
    /// states prepared by a fixed random prefix circuit.
    fn assert_equivalent(a: &Circuit, b: &Circuit) {
        let mut rng = DetRng::seed_from_u64(77);
        for _ in 0..4 {
            let prep = Circuit::random_cx(a.qubits().max(2), 6, &mut rng);
            let mut psi_a = prep.statevector();
            let mut psi_b = psi_a.clone();
            // Inputs may have more qubits than the circuit; only run when
            // sizes match (tests construct matching sizes).
            assert_eq!(psi_a.qubits(), a.qubits());
            a.run_on(&mut psi_a);
            b.run_on(&mut psi_b);
            let f = psi_a.fidelity(&psi_b);
            assert!((f - 1.0).abs() < 1e-9, "fidelity {f} for {a:?} vs {b:?}");
        }
    }

    #[test]
    fn every_gate_lowers_equivalently() {
        let gates = [
            Gate::H,
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::Sx,
            Gate::S,
            Gate::Sdg,
            Gate::T,
            Gate::Tdg,
            Gate::Rx(0.81),
            Gate::Ry(1.23),
            Gate::Rz(-0.4),
            Gate::Phase(0.9),
        ];
        for g in gates {
            let mut qc = Circuit::new(2);
            qc.gate(g, 0).gate(g, 1);
            let (lowered, _) = transpile(&qc);
            assert_equivalent(&qc, &lowered);
            for op in lowered.ops() {
                if let Op::Gate1 { gate, .. } = op {
                    assert!(
                        gate.in_hardware_basis(),
                        "{gate:?} left in output for {g:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn cz_and_swap_lower_to_cx() {
        let mut qc = Circuit::new(3);
        qc.h(0).cz(0, 1).push(Op::Swap { a: 1, b: 2 });
        let (lowered, stats) = transpile(&qc);
        assert_equivalent(&qc, &lowered);
        assert_eq!(stats.two_qubit_after, 4); // 1 (CZ) + 3 (swap)
    }

    #[test]
    fn rz_fusion_collapses_chains() {
        let mut qc = Circuit::new(1);
        qc.rz(0.25, 0).rz(0.25, 0).rz(-0.5, 0);
        let (out, stats) = transpile(&qc);
        assert_eq!(stats.gates_after, 0, "rotations should cancel: {out:?}");
    }

    #[test]
    fn adjacent_cx_pairs_cancel() {
        let mut qc = Circuit::new(2);
        qc.cx(0, 1).cx(0, 1).h(0);
        let (out, _) = transpile(&qc);
        assert_eq!(out.two_qubit_count(), 0);
        assert_equivalent(&qc, &out);
    }

    #[test]
    fn interleaved_cx_does_not_cancel() {
        let mut qc = Circuit::new(2);
        // An X on the control between the two CX gates blocks cancellation.
        qc.cx(0, 1).x(0).cx(0, 1);
        let (out, _) = transpile(&qc);
        assert_eq!(out.two_qubit_count(), 2);
        assert_equivalent(&qc, &out);
    }

    #[test]
    fn random_circuits_survive_transpilation() {
        let mut rng = DetRng::seed_from_u64(21);
        for seed in 0..5 {
            let _ = seed;
            let qc = Circuit::random_cx(4, 30, &mut rng);
            let (out, stats) = transpile(&qc);
            assert_equivalent(&qc, &out);
            assert!(stats.gates_after >= stats.two_qubit_after);
        }
    }
}
