//! [`StateVector`]: a full Schrödinger wave-function simulator.

use kaas_simtime::rng::DetRng;

use crate::complex::C64;
use crate::gate::{Gate, Op};

/// A normalized quantum state over `n` qubits (qubit 0 is the least
/// significant bit of the basis index).
///
/// # Examples
///
/// ```
/// use kaas_quantum::{StateVector, Gate, Op};
///
/// let mut psi = StateVector::new(2);
/// psi.apply(Op::Gate1 { gate: Gate::H, qubit: 0 });
/// psi.apply(Op::Cx { control: 0, target: 1 });
/// // Bell state: |00> and |11> each with probability 1/2.
/// let p = psi.probabilities();
/// assert!((p[0] - 0.5).abs() < 1e-12);
/// assert!((p[3] - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StateVector {
    n: usize,
    amps: Vec<C64>,
}

impl StateVector {
    /// Creates |0…0⟩ over `n` qubits.
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0 or large enough to overflow memory (> 26 here).
    pub fn new(n: usize) -> Self {
        assert!(
            (1..=26).contains(&n),
            "qubit count {n} out of supported range 1..=26"
        );
        let mut amps = vec![C64::ZERO; 1 << n];
        amps[0] = C64::ONE;
        StateVector { n, amps }
    }

    /// Number of qubits.
    pub fn qubits(&self) -> usize {
        self.n
    }

    /// Basis amplitudes (length `2^n`).
    pub fn amplitudes(&self) -> &[C64] {
        &self.amps
    }

    /// ⟨ψ|ψ⟩ (should be 1 up to rounding).
    pub fn norm(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sq()).sum()
    }

    /// Per-basis-state probabilities.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amps.iter().map(|a| a.norm_sq()).collect()
    }

    /// Applies one operation in place.
    ///
    /// # Panics
    ///
    /// Panics if an op addresses a qubit out of range or a two-qubit op
    /// uses the same qubit twice.
    pub fn apply(&mut self, op: Op) {
        match op {
            Op::Gate1 { gate, qubit } => self.apply_1q(qubit, gate.matrix()),
            Op::Cx { control, target } => self.apply_controlled(control, target, Gate::X.matrix()),
            Op::Cz { a, b } => self.apply_controlled(a, b, Gate::Z.matrix()),
            Op::Swap { a, b } => {
                assert!(a != b, "swap qubits must differ");
                self.apply(Op::Cx {
                    control: a,
                    target: b,
                });
                self.apply(Op::Cx {
                    control: b,
                    target: a,
                });
                self.apply(Op::Cx {
                    control: a,
                    target: b,
                });
            }
        }
    }

    /// Applies a sequence of operations.
    pub fn apply_all<'a>(&mut self, ops: impl IntoIterator<Item = &'a Op>) {
        for op in ops {
            self.apply(*op);
        }
    }

    fn apply_1q(&mut self, q: usize, m: [[C64; 2]; 2]) {
        assert!(
            q < self.n,
            "qubit {q} out of range for {}-qubit state",
            self.n
        );
        let bit = 1usize << q;
        for i in 0..self.amps.len() {
            if i & bit == 0 {
                let j = i | bit;
                let a0 = self.amps[i];
                let a1 = self.amps[j];
                self.amps[i] = m[0][0] * a0 + m[0][1] * a1;
                self.amps[j] = m[1][0] * a0 + m[1][1] * a1;
            }
        }
    }

    fn apply_controlled(&mut self, c: usize, t: usize, m: [[C64; 2]; 2]) {
        assert!(c < self.n && t < self.n, "qubit out of range");
        assert!(c != t, "control and target must differ");
        let cbit = 1usize << c;
        let tbit = 1usize << t;
        for i in 0..self.amps.len() {
            if i & cbit != 0 && i & tbit == 0 {
                let j = i | tbit;
                let a0 = self.amps[i];
                let a1 = self.amps[j];
                self.amps[i] = m[0][0] * a0 + m[0][1] * a1;
                self.amps[j] = m[1][0] * a0 + m[1][1] * a1;
            }
        }
    }

    /// ⟨ψ|φ⟩ for two states of equal size.
    ///
    /// # Panics
    ///
    /// Panics if the states have different qubit counts.
    pub fn inner(&self, other: &StateVector) -> C64 {
        assert_eq!(self.n, other.n, "qubit counts differ");
        let mut acc = C64::ZERO;
        for (a, b) in self.amps.iter().zip(&other.amps) {
            acc += a.conj() * *b;
        }
        acc
    }

    /// |⟨ψ|φ⟩|² — 1.0 means equal up to global phase.
    pub fn fidelity(&self, other: &StateVector) -> f64 {
        self.inner(other).norm_sq()
    }

    /// Samples `shots` measurement outcomes in the computational basis.
    pub fn sample(&self, shots: u64, rng: &mut DetRng) -> Vec<usize> {
        let probs = self.probabilities();
        let mut cumulative = Vec::with_capacity(probs.len());
        let mut acc = 0.0;
        for p in &probs {
            acc += p;
            cumulative.push(acc);
        }
        (0..shots)
            .map(|_| {
                let r: f64 = rng.gen::<f64>() * acc;
                cumulative.partition_point(|&c| c < r).min(probs.len() - 1)
            })
            .collect()
    }

    /// Projectively measures one qubit in the computational basis,
    /// collapsing the state: returns the observed bit.
    ///
    /// # Panics
    ///
    /// Panics if `qubit` is out of range.
    pub fn measure_qubit(&mut self, qubit: usize, rng: &mut DetRng) -> bool {
        assert!(qubit < self.n, "qubit {qubit} out of range");
        let bit = 1usize << qubit;
        let p_one: f64 = self
            .amps
            .iter()
            .enumerate()
            .filter(|(i, _)| i & bit != 0)
            .map(|(_, a)| a.norm_sq())
            .sum();
        let outcome = rng.gen::<f64>() < p_one;
        let keep_mask = if outcome { bit } else { 0 };
        let norm = if outcome { p_one } else { 1.0 - p_one };
        let scale = 1.0 / norm.max(f64::MIN_POSITIVE).sqrt();
        for (i, a) in self.amps.iter_mut().enumerate() {
            if i & bit == keep_mask {
                *a = a.scale(scale);
            } else {
                *a = C64::ZERO;
            }
        }
        outcome
    }

    /// Expectation value of a tensor product of Paulis given as a slice of
    /// `(qubit, pauli)` pairs, where pauli ∈ {'X','Y','Z'}.
    ///
    /// # Panics
    ///
    /// Panics on an unknown Pauli letter or out-of-range qubit.
    pub fn pauli_expectation(&self, paulis: &[(usize, char)]) -> f64 {
        // Compute P|ψ> then take <ψ|P|ψ>.
        let mut phi = self.clone();
        for &(q, p) in paulis {
            let gate = match p {
                'X' => Gate::X,
                'Y' => Gate::Y,
                'Z' => Gate::Z,
                other => panic!("unknown Pauli '{other}'"),
            };
            phi.apply(Op::Gate1 { gate, qubit: q });
        }
        self.inner(&phi).re
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_state_is_all_zeros() {
        let psi = StateVector::new(3);
        assert_eq!(psi.qubits(), 3);
        assert!((psi.probabilities()[0] - 1.0).abs() < 1e-15);
        assert!((psi.norm() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn x_flips_a_qubit() {
        let mut psi = StateVector::new(2);
        psi.apply(Op::Gate1 {
            gate: Gate::X,
            qubit: 1,
        });
        let p = psi.probabilities();
        assert!((p[0b10] - 1.0).abs() < 1e-15);
    }

    #[test]
    fn h_twice_is_identity() {
        let mut psi = StateVector::new(1);
        psi.apply(Op::Gate1 {
            gate: Gate::H,
            qubit: 0,
        });
        psi.apply(Op::Gate1 {
            gate: Gate::H,
            qubit: 0,
        });
        assert!((psi.probabilities()[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ghz_state_probabilities() {
        let mut psi = StateVector::new(3);
        psi.apply(Op::Gate1 {
            gate: Gate::H,
            qubit: 0,
        });
        psi.apply(Op::Cx {
            control: 0,
            target: 1,
        });
        psi.apply(Op::Cx {
            control: 1,
            target: 2,
        });
        let p = psi.probabilities();
        assert!((p[0b000] - 0.5).abs() < 1e-12);
        assert!((p[0b111] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn norm_preserved_by_random_circuit() {
        let mut rng = DetRng::seed_from_u64(11);
        let mut psi = StateVector::new(5);
        for _ in 0..200 {
            let q = rng.gen_range(0..5);
            match rng.gen_range(0..4) {
                0 => psi.apply(Op::Gate1 {
                    gate: Gate::H,
                    qubit: q,
                }),
                1 => psi.apply(Op::Gate1 {
                    gate: Gate::Ry(rng.gen::<f64>()),
                    qubit: q,
                }),
                2 => psi.apply(Op::Gate1 {
                    gate: Gate::Rz(rng.gen::<f64>()),
                    qubit: q,
                }),
                _ => {
                    let t = (q + 1) % 5;
                    psi.apply(Op::Cx {
                        control: q,
                        target: t,
                    });
                }
            }
        }
        assert!((psi.norm() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn swap_exchanges_qubits() {
        let mut psi = StateVector::new(2);
        psi.apply(Op::Gate1 {
            gate: Gate::X,
            qubit: 0,
        });
        psi.apply(Op::Swap { a: 0, b: 1 });
        assert!((psi.probabilities()[0b10] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn z_expectation_signs() {
        let mut psi = StateVector::new(1);
        assert!((psi.pauli_expectation(&[(0, 'Z')]) - 1.0).abs() < 1e-12);
        psi.apply(Op::Gate1 {
            gate: Gate::X,
            qubit: 0,
        });
        assert!((psi.pauli_expectation(&[(0, 'Z')]) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn x_expectation_on_plus_state() {
        let mut psi = StateVector::new(1);
        psi.apply(Op::Gate1 {
            gate: Gate::H,
            qubit: 0,
        });
        assert!((psi.pauli_expectation(&[(0, 'X')]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bell_state_correlations() {
        let mut psi = StateVector::new(2);
        psi.apply(Op::Gate1 {
            gate: Gate::H,
            qubit: 0,
        });
        psi.apply(Op::Cx {
            control: 0,
            target: 1,
        });
        // <Z0 Z1> = 1, <X0 X1> = 1 for |Φ+>.
        assert!((psi.pauli_expectation(&[(0, 'Z'), (1, 'Z')]) - 1.0).abs() < 1e-12);
        assert!((psi.pauli_expectation(&[(0, 'X'), (1, 'X')]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_matches_distribution() {
        let mut psi = StateVector::new(1);
        psi.apply(Op::Gate1 {
            gate: Gate::H,
            qubit: 0,
        });
        let mut rng = DetRng::seed_from_u64(3);
        let samples = psi.sample(10_000, &mut rng);
        let ones = samples.iter().filter(|&&s| s == 1).count();
        let frac = ones as f64 / 10_000.0;
        assert!((frac - 0.5).abs() < 0.02, "frac={frac}");
    }

    #[test]
    fn measurement_collapses_and_normalizes() {
        let mut rng = DetRng::seed_from_u64(17);
        // Bell state: the two qubits' outcomes must agree, and the
        // post-measurement state is normalized and deterministic.
        for _ in 0..20 {
            let mut psi = StateVector::new(2);
            psi.apply(Op::Gate1 {
                gate: Gate::H,
                qubit: 0,
            });
            psi.apply(Op::Cx {
                control: 0,
                target: 1,
            });
            let first = psi.measure_qubit(0, &mut rng);
            assert!((psi.norm() - 1.0).abs() < 1e-12);
            let second = psi.measure_qubit(1, &mut rng);
            assert_eq!(first, second, "Bell correlations");
            assert!((psi.norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn measurement_of_definite_state_is_certain() {
        let mut rng = DetRng::seed_from_u64(3);
        let mut psi = StateVector::new(2);
        psi.apply(Op::Gate1 {
            gate: Gate::X,
            qubit: 1,
        });
        for _ in 0..5 {
            assert!(!psi.measure_qubit(0, &mut rng));
            assert!(psi.measure_qubit(1, &mut rng));
        }
    }

    #[test]
    fn measurement_statistics_match_probabilities() {
        let mut rng = DetRng::seed_from_u64(8);
        let mut ones = 0u32;
        for _ in 0..2000 {
            let mut psi = StateVector::new(1);
            psi.apply(Op::Gate1 {
                gate: Gate::Ry(1.0),
                qubit: 0,
            });
            if psi.measure_qubit(0, &mut rng) {
                ones += 1;
            }
        }
        // P(1) = sin²(0.5) ≈ 0.2298.
        let frac = ones as f64 / 2000.0;
        assert!((frac - 0.2298).abs() < 0.03, "frac={frac}");
    }

    #[test]
    fn fidelity_of_identical_states_is_one() {
        let mut a = StateVector::new(2);
        a.apply(Op::Gate1 {
            gate: Gate::Ry(0.7),
            qubit: 0,
        });
        let b = a.clone();
        assert!((a.fidelity(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_qubit_panics() {
        let mut psi = StateVector::new(2);
        psi.apply(Op::Gate1 {
            gate: Gate::X,
            qubit: 5,
        });
    }

    #[test]
    #[should_panic(expected = "differ")]
    fn cx_same_qubit_panics() {
        let mut psi = StateVector::new(2);
        psi.apply(Op::Cx {
            control: 1,
            target: 1,
        });
    }
}
