//! # kaas-quantum — a state-vector quantum computing stack
//!
//! A from-scratch replacement for the Qiskit pieces the KaaS paper's QPU
//! prototype uses (§4.2, §5.6.4): full state-vector simulation, a
//! transpiler to the IBM-style hardware basis, an estimator primitive,
//! and a Variational Quantum Eigensolver with the standard H₂/STO-3G
//! single-point electronic-structure benchmark.
//!
//! The simulator is **real** — circuits are executed exactly, and the VQE
//! converges to the known ground-state energy — while execution *timing*
//! on the five evaluated backends (three simulators, two Falcon
//! processors) is modelled by `kaas-accel`'s `QpuDevice` cost profiles.
//!
//! ```
//! use kaas_quantum::{Circuit, Hamiltonian};
//!
//! // Prepare the Bell state and measure its H₂-Hamiltonian energy.
//! let mut qc = Circuit::new(2);
//! qc.h(0).cx(0, 1);
//! let energy = Hamiltonian::h2_sto3g().expectation(&qc.statevector());
//! assert!(energy.is_finite());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod circuit;
mod complex;
mod estimator;
mod gate;
mod optimize;
mod pauli;
mod state;
mod transpile;
mod vqe;

pub use circuit::Circuit;
pub use complex::C64;
pub use estimator::{estimate, EstimatorMode};
pub use gate::{Gate, Op};
pub use optimize::{nelder_mead, spsa, OptimizeResult};
pub use pauli::{Hamiltonian, PauliTerm};
pub use state::StateVector;
pub use transpile::{optimize, transpile, TranspileStats};
pub use vqe::{vqe, TwoLocalAnsatz, VqeOptimizer, VqeResult};
