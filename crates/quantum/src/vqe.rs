//! Variational Quantum Eigensolver: the paper's §5.6.4 workload
//! ("a single point electronic structure calculation using the
//! Variational Quantum Eigensolver").

use kaas_simtime::rng::DetRng;

use crate::circuit::Circuit;
use crate::estimator::{estimate, EstimatorMode};
use crate::gate::Gate;
use crate::optimize::{nelder_mead, spsa, OptimizeResult};
use crate::pauli::Hamiltonian;

/// Hardware-efficient ansatz: alternating Ry layers and a linear CX
/// entangler, repeated `reps` times, closed with a final Ry layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TwoLocalAnsatz {
    /// Number of qubits.
    pub qubits: usize,
    /// Entangling-layer repetitions.
    pub reps: usize,
}

impl TwoLocalAnsatz {
    /// Creates the ansatz.
    pub fn new(qubits: usize, reps: usize) -> Self {
        assert!(qubits >= 1, "ansatz needs qubits");
        TwoLocalAnsatz { qubits, reps }
    }

    /// Number of variational parameters.
    pub fn parameter_count(&self) -> usize {
        self.qubits * (self.reps + 1)
    }

    /// Binds parameters into a concrete circuit.
    ///
    /// # Panics
    ///
    /// Panics if `params.len() != self.parameter_count()`.
    pub fn bind(&self, params: &[f64]) -> Circuit {
        assert_eq!(
            params.len(),
            self.parameter_count(),
            "expected {} parameters",
            self.parameter_count()
        );
        let mut qc = Circuit::new(self.qubits);
        let mut p = params.iter();
        for rep in 0..=self.reps {
            for q in 0..self.qubits {
                qc.gate(Gate::Ry(*p.next().expect("counted")), q);
            }
            if rep < self.reps && self.qubits > 1 {
                for q in 0..self.qubits - 1 {
                    qc.cx(q, q + 1);
                }
            }
        }
        qc
    }
}

/// Which classical optimizer drives the VQE loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VqeOptimizer {
    /// Deterministic Nelder–Mead simplex (exact estimator runs).
    NelderMead {
        /// Maximum iterations.
        max_iters: usize,
    },
    /// SPSA (robust under shot noise).
    Spsa {
        /// Iterations (two estimator calls each).
        iterations: usize,
    },
}

/// Outcome of a VQE run.
#[derive(Debug, Clone, PartialEq)]
pub struct VqeResult {
    /// Lowest energy found.
    pub energy: f64,
    /// Optimal parameters.
    pub params: Vec<f64>,
    /// Estimator invocations (each is one "quantum kernel" call in the
    /// paper's KaaS mapping).
    pub estimator_calls: usize,
    /// Best energy per optimizer iteration.
    pub history: Vec<f64>,
}

/// Runs VQE for `hamiltonian` with the given ansatz and optimizer.
///
/// # Examples
///
/// ```
/// use kaas_quantum::{vqe, Hamiltonian, TwoLocalAnsatz, VqeOptimizer, EstimatorMode};
/// use kaas_simtime::rng::DetRng;
///
/// let mut rng = DetRng::seed_from_u64(2);
/// let result = vqe(
///     &Hamiltonian::h2_sto3g(),
///     TwoLocalAnsatz::new(2, 1),
///     VqeOptimizer::NelderMead { max_iters: 250 },
///     EstimatorMode::Exact,
///     &mut rng,
/// );
/// assert!((result.energy - Hamiltonian::h2_ground_energy()).abs() < 1e-3);
/// ```
pub fn vqe(
    hamiltonian: &Hamiltonian,
    ansatz: TwoLocalAnsatz,
    optimizer: VqeOptimizer,
    mode: EstimatorMode,
    rng: &mut DetRng,
) -> VqeResult {
    assert!(
        ansatz.qubits >= hamiltonian.qubits(),
        "ansatz must cover the Hamiltonian's qubits"
    );
    let mut calls = 0usize;
    // Start near (but not at) zero: a zero start sits on a gradient
    // plateau for product states.
    let x0: Vec<f64> = (0..ansatz.parameter_count())
        .map(|i| 0.1 + 0.05 * i as f64)
        .collect();

    let result: OptimizeResult = match optimizer {
        VqeOptimizer::NelderMead { max_iters } => {
            let mut shot_rng = DetRng::seed_from_u64(rng.gen());
            nelder_mead(
                |params| {
                    calls += 1;
                    let qc = ansatz.bind(params);
                    estimate(&qc, hamiltonian, mode, &mut shot_rng)
                },
                &x0,
                0.4,
                max_iters,
            )
        }
        VqeOptimizer::Spsa { iterations } => {
            let mut shot_rng = DetRng::seed_from_u64(rng.gen());
            spsa(
                |params| {
                    calls += 1;
                    let qc = ansatz.bind(params);
                    estimate(&qc, hamiltonian, mode, &mut shot_rng)
                },
                &x0,
                iterations,
                rng,
            )
        }
    };

    VqeResult {
        energy: result.value,
        params: result.params,
        estimator_calls: calls,
        history: result.history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ansatz_parameter_count() {
        let a = TwoLocalAnsatz::new(4, 2);
        assert_eq!(a.parameter_count(), 12);
        let qc = a.bind(&[0.1; 12]);
        assert_eq!(qc.qubits(), 4);
        assert_eq!(qc.two_qubit_count(), 6); // 2 reps × 3 CX
    }

    #[test]
    #[should_panic(expected = "parameters")]
    fn wrong_parameter_count_panics() {
        TwoLocalAnsatz::new(2, 1).bind(&[0.0; 3]);
    }

    #[test]
    fn vqe_finds_h2_ground_state_exactly() {
        let mut rng = DetRng::seed_from_u64(1);
        let res = vqe(
            &Hamiltonian::h2_sto3g(),
            TwoLocalAnsatz::new(2, 1),
            VqeOptimizer::NelderMead { max_iters: 300 },
            EstimatorMode::Exact,
            &mut rng,
        );
        let err = (res.energy - Hamiltonian::h2_ground_energy()).abs();
        assert!(err < 1e-4, "energy={} err={err}", res.energy);
        assert!(res.estimator_calls > 20);
    }

    #[test]
    fn vqe_energy_respects_variational_bound() {
        let mut rng = DetRng::seed_from_u64(3);
        let res = vqe(
            &Hamiltonian::h2_sto3g(),
            TwoLocalAnsatz::new(2, 2),
            VqeOptimizer::NelderMead { max_iters: 150 },
            EstimatorMode::Exact,
            &mut rng,
        );
        assert!(res.energy >= Hamiltonian::h2_ground_energy() - 1e-9);
    }

    #[test]
    fn vqe_with_shots_gets_close() {
        let mut rng = DetRng::seed_from_u64(5);
        let res = vqe(
            &Hamiltonian::h2_sto3g(),
            TwoLocalAnsatz::new(2, 1),
            VqeOptimizer::Spsa { iterations: 150 },
            EstimatorMode::Shots(4096),
            &mut rng,
        );
        let err = (res.energy - Hamiltonian::h2_ground_energy()).abs();
        assert!(err < 0.08, "energy={} err={err}", res.energy);
    }

    #[test]
    fn history_tracks_progress() {
        let mut rng = DetRng::seed_from_u64(8);
        let res = vqe(
            &Hamiltonian::h2_sto3g(),
            TwoLocalAnsatz::new(2, 1),
            VqeOptimizer::NelderMead { max_iters: 100 },
            EstimatorMode::Exact,
            &mut rng,
        );
        assert!(!res.history.is_empty());
        assert!(res.history.last().unwrap() <= res.history.first().unwrap());
    }
}
