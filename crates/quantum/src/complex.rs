//! A minimal complex-number type (keeps the crate dependency-free).

use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A double-precision complex number.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl C64 {
    /// Zero.
    pub const ZERO: C64 = C64 { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: C64 = C64 { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: C64 = C64 { re: 0.0, im: 1.0 };

    /// Creates `re + im·i`.
    pub const fn new(re: f64, im: f64) -> Self {
        C64 { re, im }
    }

    /// `e^{iθ}`.
    pub fn from_polar(theta: f64) -> Self {
        C64 {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        C64 {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude.
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    pub fn abs(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Scales by a real factor.
    pub fn scale(self, k: f64) -> Self {
        C64 {
            re: self.re * k,
            im: self.im * k,
        }
    }
}

impl Add for C64 {
    type Output = C64;
    fn add(self, o: C64) -> C64 {
        C64::new(self.re + o.re, self.im + o.im)
    }
}

impl AddAssign for C64 {
    fn add_assign(&mut self, o: C64) {
        self.re += o.re;
        self.im += o.im;
    }
}

impl Sub for C64 {
    type Output = C64;
    fn sub(self, o: C64) -> C64 {
        C64::new(self.re - o.re, self.im - o.im)
    }
}

impl Mul for C64 {
    type Output = C64;
    fn mul(self, o: C64) -> C64 {
        C64::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

impl Neg for C64 {
    type Output = C64;
    fn neg(self) -> C64 {
        C64::new(-self.re, -self.im)
    }
}

impl std::fmt::Display for C64 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.6}+{:.6}i", self.re, self.im)
        } else {
            write!(f, "{:.6}-{:.6}i", self.re, -self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let a = C64::new(1.0, 2.0);
        let b = C64::new(3.0, -1.0);
        assert_eq!(a + b, C64::new(4.0, 1.0));
        assert_eq!(a - b, C64::new(-2.0, 3.0));
        assert_eq!(a * b, C64::new(5.0, 5.0));
        assert_eq!(-a, C64::new(-1.0, -2.0));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert_eq!(C64::I * C64::I, C64::new(-1.0, 0.0));
    }

    #[test]
    fn conj_and_norm() {
        let a = C64::new(3.0, 4.0);
        assert_eq!(a.conj(), C64::new(3.0, -4.0));
        assert_eq!(a.norm_sq(), 25.0);
        assert_eq!(a.abs(), 5.0);
    }

    #[test]
    fn polar_unit_circle() {
        let c = C64::from_polar(std::f64::consts::FRAC_PI_2);
        assert!((c.re).abs() < 1e-15);
        assert!((c.im - 1.0).abs() < 1e-15);
    }
}
