//! Quantum gates and circuit operations.

use crate::complex::C64;

/// A single-qubit gate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Gate {
    /// Hadamard.
    H,
    /// Pauli-X.
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
    /// √X.
    Sx,
    /// Phase gate S = Rz(π/2) up to global phase.
    S,
    /// S†.
    Sdg,
    /// T = Rz(π/4) up to global phase.
    T,
    /// T†.
    Tdg,
    /// Rotation about X by the angle.
    Rx(f64),
    /// Rotation about Y by the angle.
    Ry(f64),
    /// Rotation about Z by the angle.
    Rz(f64),
    /// Phase(λ) = diag(1, e^{iλ}).
    Phase(f64),
}

impl Gate {
    /// The gate's 2×2 unitary matrix `[[a, b], [c, d]]`.
    pub fn matrix(&self) -> [[C64; 2]; 2] {
        use std::f64::consts::FRAC_1_SQRT_2 as R;
        let z = C64::ZERO;
        let o = C64::ONE;
        let i = C64::I;
        match *self {
            Gate::H => [
                [C64::new(R, 0.0), C64::new(R, 0.0)],
                [C64::new(R, 0.0), C64::new(-R, 0.0)],
            ],
            Gate::X => [[z, o], [o, z]],
            Gate::Y => [[z, -i], [i, z]],
            Gate::Z => [[o, z], [z, -o]],
            Gate::Sx => [
                [C64::new(0.5, 0.5), C64::new(0.5, -0.5)],
                [C64::new(0.5, -0.5), C64::new(0.5, 0.5)],
            ],
            Gate::S => [[o, z], [z, i]],
            Gate::Sdg => [[o, z], [z, -i]],
            Gate::T => [[o, z], [z, C64::from_polar(std::f64::consts::FRAC_PI_4)]],
            Gate::Tdg => [[o, z], [z, C64::from_polar(-std::f64::consts::FRAC_PI_4)]],
            Gate::Rx(t) => {
                let (c, s) = ((t / 2.0).cos(), (t / 2.0).sin());
                [
                    [C64::new(c, 0.0), C64::new(0.0, -s)],
                    [C64::new(0.0, -s), C64::new(c, 0.0)],
                ]
            }
            Gate::Ry(t) => {
                let (c, s) = ((t / 2.0).cos(), (t / 2.0).sin());
                [
                    [C64::new(c, 0.0), C64::new(-s, 0.0)],
                    [C64::new(s, 0.0), C64::new(c, 0.0)],
                ]
            }
            Gate::Rz(t) => [
                [C64::from_polar(-t / 2.0), z],
                [z, C64::from_polar(t / 2.0)],
            ],
            Gate::Phase(l) => [[o, z], [z, C64::from_polar(l)]],
        }
    }

    /// Whether the gate belongs to the IBM-style hardware basis
    /// `{Rz, Sx, X}` (plus CX at the two-qubit level).
    pub fn in_hardware_basis(&self) -> bool {
        matches!(self, Gate::Rz(_) | Gate::Sx | Gate::X)
    }

    /// The adjoint (inverse) gate: G† such that G†·G = I.
    pub fn adjoint(&self) -> Gate {
        match *self {
            Gate::H | Gate::X | Gate::Y | Gate::Z => *self,
            Gate::Sx => Gate::Rx(-std::f64::consts::FRAC_PI_2),
            Gate::S => Gate::Sdg,
            Gate::Sdg => Gate::S,
            Gate::T => Gate::Tdg,
            Gate::Tdg => Gate::T,
            Gate::Rx(t) => Gate::Rx(-t),
            Gate::Ry(t) => Gate::Ry(-t),
            Gate::Rz(t) => Gate::Rz(-t),
            Gate::Phase(l) => Gate::Phase(-l),
        }
    }

    /// Short lowercase mnemonic (QASM style).
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Gate::H => "h",
            Gate::X => "x",
            Gate::Y => "y",
            Gate::Z => "z",
            Gate::Sx => "sx",
            Gate::S => "s",
            Gate::Sdg => "sdg",
            Gate::T => "t",
            Gate::Tdg => "tdg",
            Gate::Rx(_) => "rx",
            Gate::Ry(_) => "ry",
            Gate::Rz(_) => "rz",
            Gate::Phase(_) => "p",
        }
    }
}

/// One operation in a circuit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// A single-qubit gate on `qubit`.
    Gate1 {
        /// The gate.
        gate: Gate,
        /// Target qubit.
        qubit: usize,
    },
    /// Controlled-X.
    Cx {
        /// Control qubit.
        control: usize,
        /// Target qubit.
        target: usize,
    },
    /// Controlled-Z (symmetric).
    Cz {
        /// First qubit.
        a: usize,
        /// Second qubit.
        b: usize,
    },
    /// Swap two qubits.
    Swap {
        /// First qubit.
        a: usize,
        /// Second qubit.
        b: usize,
    },
}

impl Op {
    /// The qubits this op touches.
    pub fn qubits(&self) -> Vec<usize> {
        match *self {
            Op::Gate1 { qubit, .. } => vec![qubit],
            Op::Cx { control, target } => vec![control, target],
            Op::Cz { a, b } | Op::Swap { a, b } => vec![a, b],
        }
    }

    /// Whether this is a two-qubit operation.
    pub fn is_two_qubit(&self) -> bool {
        !matches!(self, Op::Gate1 { .. })
    }

    /// The inverse operation (CX, CZ, and Swap are involutions).
    pub fn inverse(&self) -> Op {
        match *self {
            Op::Gate1 { gate, qubit } => Op::Gate1 {
                gate: gate.adjoint(),
                qubit,
            },
            other => other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_unitary(m: [[C64; 2]; 2]) -> bool {
        // m† m == I
        let dot = |a: [C64; 2], b: [C64; 2]| a[0].conj() * b[0] + a[1].conj() * b[1];
        let col = |j: usize| [m[0][j], m[1][j]];
        let e00 = dot(col(0), col(0));
        let e11 = dot(col(1), col(1));
        let e01 = dot(col(0), col(1));
        (e00 - C64::ONE).abs() < 1e-12 && (e11 - C64::ONE).abs() < 1e-12 && e01.abs() < 1e-12
    }

    #[test]
    fn all_gates_are_unitary() {
        let gates = [
            Gate::H,
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::Sx,
            Gate::S,
            Gate::Sdg,
            Gate::T,
            Gate::Tdg,
            Gate::Rx(0.3),
            Gate::Ry(1.1),
            Gate::Rz(-2.2),
            Gate::Phase(0.7),
        ];
        for g in gates {
            assert!(is_unitary(g.matrix()), "{g:?} is not unitary");
        }
    }

    #[test]
    fn sx_squared_is_x() {
        let m = Gate::Sx.matrix();
        let x = Gate::X.matrix();
        for r in 0..2 {
            for c in 0..2 {
                let acc = (0..2).fold(C64::ZERO, |acc, k| acc + m[r][k] * m[k][c]);
                assert!((acc - x[r][c]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn op_qubits_are_reported() {
        assert_eq!(
            Op::Cx {
                control: 1,
                target: 3
            }
            .qubits(),
            vec![1, 3]
        );
        assert!(Op::Cz { a: 0, b: 1 }.is_two_qubit());
        assert!(!Op::Gate1 {
            gate: Gate::H,
            qubit: 0
        }
        .is_two_qubit());
    }

    #[test]
    fn adjoints_invert_their_gates() {
        let gates = [
            Gate::H,
            Gate::X,
            Gate::Sx,
            Gate::S,
            Gate::T,
            Gate::Rx(0.7),
            Gate::Ry(-1.2),
            Gate::Rz(2.5),
            Gate::Phase(0.4),
        ];
        for g in gates {
            let m = g.matrix();
            let a = g.adjoint().matrix();
            // a · m ≈ global-phase × I: check off-diagonals vanish and
            // diagonals have equal magnitude 1.
            let mut prod = [[C64::ZERO; 2]; 2];
            for r in 0..2 {
                for c in 0..2 {
                    for k in 0..2 {
                        prod[r][c] += a[r][k] * m[k][c];
                    }
                }
            }
            assert!(prod[0][1].abs() < 1e-12, "{g:?}");
            assert!(prod[1][0].abs() < 1e-12, "{g:?}");
            assert!((prod[0][0].abs() - 1.0).abs() < 1e-12, "{g:?}");
            assert!((prod[0][0] - prod[1][1]).abs() < 1e-12, "{g:?}");
        }
    }

    #[test]
    fn mnemonics_are_lowercase() {
        assert_eq!(Gate::Ry(0.5).mnemonic(), "ry");
        assert_eq!(Gate::H.mnemonic(), "h");
    }
}
