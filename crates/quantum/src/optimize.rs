//! Classical optimizers used by VQE: Nelder–Mead simplex and SPSA.

use kaas_simtime::rng::DetRng;

/// Result of an optimization run.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizeResult {
    /// Best parameter vector found.
    pub params: Vec<f64>,
    /// Objective value at `params`.
    pub value: f64,
    /// Number of objective evaluations performed.
    pub evaluations: usize,
    /// Best value after each iteration (for convergence plots).
    pub history: Vec<f64>,
}

/// Nelder–Mead simplex minimization (deterministic).
///
/// # Examples
///
/// ```
/// use kaas_quantum::nelder_mead;
///
/// let res = nelder_mead(|x| (x[0] - 3.0).powi(2) + x[1].powi(2), &[0.0, 1.0], 0.5, 200);
/// assert!((res.params[0] - 3.0).abs() < 1e-3);
/// assert!(res.value < 1e-5);
/// ```
pub fn nelder_mead<F>(mut f: F, x0: &[f64], step: f64, max_iters: usize) -> OptimizeResult
where
    F: FnMut(&[f64]) -> f64,
{
    let n = x0.len();
    assert!(n >= 1, "need at least one parameter");
    let (alpha, gamma, rho, sigma) = (1.0, 2.0, 0.5, 0.5);
    let mut evals = 0usize;
    let eval = |f: &mut F, x: &[f64], evals: &mut usize| -> f64 {
        *evals += 1;
        f(x)
    };

    // Initial simplex: x0 plus per-axis offsets.
    let mut simplex: Vec<(Vec<f64>, f64)> = Vec::with_capacity(n + 1);
    let v0 = eval(&mut f, x0, &mut evals);
    simplex.push((x0.to_vec(), v0));
    for i in 0..n {
        let mut x = x0.to_vec();
        x[i] += step;
        let v = eval(&mut f, &x, &mut evals);
        simplex.push((x, v));
    }

    let mut history = Vec::with_capacity(max_iters);
    for _ in 0..max_iters {
        simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN objective"));
        history.push(simplex[0].1);

        // Convergence: tiny simplex spread.
        if (simplex[n].1 - simplex[0].1).abs() < 1e-10 {
            break;
        }

        // Centroid of all but the worst.
        let mut centroid = vec![0.0; n];
        for (x, _) in &simplex[..n] {
            for (c, xi) in centroid.iter_mut().zip(x) {
                *c += xi / n as f64;
            }
        }
        let worst = simplex[n].clone();
        let lerp = |a: &[f64], b: &[f64], t: f64| -> Vec<f64> {
            a.iter().zip(b).map(|(ai, bi)| ai + t * (bi - ai)).collect()
        };

        // Reflection.
        let xr = lerp(&centroid, &worst.0, -alpha);
        let vr = eval(&mut f, &xr, &mut evals);
        if vr < simplex[0].1 {
            // Expansion.
            let xe = lerp(&centroid, &worst.0, -gamma);
            let ve = eval(&mut f, &xe, &mut evals);
            simplex[n] = if ve < vr { (xe, ve) } else { (xr, vr) };
        } else if vr < simplex[n - 1].1 {
            simplex[n] = (xr, vr);
        } else {
            // Contraction.
            let xc = lerp(&centroid, &worst.0, rho);
            let vc = eval(&mut f, &xc, &mut evals);
            if vc < worst.1 {
                simplex[n] = (xc, vc);
            } else {
                // Shrink towards the best.
                let best = simplex[0].0.clone();
                for entry in simplex.iter_mut().skip(1) {
                    entry.0 = lerp(&best, &entry.0, sigma);
                    entry.1 = eval(&mut f, &entry.0, &mut evals);
                }
            }
        }
    }
    simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN objective"));
    OptimizeResult {
        params: simplex[0].0.clone(),
        value: simplex[0].1,
        evaluations: evals,
        history,
    }
}

/// Simultaneous-perturbation stochastic approximation (two evaluations
/// per iteration; robust to shot noise).
pub fn spsa<F>(mut f: F, x0: &[f64], iterations: usize, rng: &mut DetRng) -> OptimizeResult
where
    F: FnMut(&[f64]) -> f64,
{
    let n = x0.len();
    assert!(n >= 1, "need at least one parameter");
    let mut x = x0.to_vec();
    let mut evals = 0usize;
    let mut history = Vec::with_capacity(iterations);
    let (a, c, big_a, alpha, gamma) = (2.0, 0.2, iterations as f64 * 0.1, 0.602, 0.101);
    let mut best = (x.clone(), f64::INFINITY);
    for k in 0..iterations {
        let ak = a / (k as f64 + 1.0 + big_a).powf(alpha);
        let ck = c / (k as f64 + 1.0).powf(gamma);
        let delta: Vec<f64> = (0..n)
            .map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 })
            .collect();
        let xp: Vec<f64> = x.iter().zip(&delta).map(|(xi, d)| xi + ck * d).collect();
        let xm: Vec<f64> = x.iter().zip(&delta).map(|(xi, d)| xi - ck * d).collect();
        let fp = f(&xp);
        let fm = f(&xm);
        evals += 2;
        for i in 0..n {
            let g = (fp - fm) / (2.0 * ck * delta[i]);
            x[i] -= ak * g;
        }
        let fx = fp.min(fm);
        if fx < best.1 {
            best = (if fp < fm { xp } else { xm }, fx);
        }
        history.push(best.1);
    }
    let final_val = f(&x);
    evals += 1;
    if final_val < best.1 {
        best = (x, final_val);
    }
    OptimizeResult {
        params: best.0,
        value: best.1,
        evaluations: evals,
        history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sphere(x: &[f64]) -> f64 {
        x.iter().map(|v| v * v).sum()
    }

    #[test]
    fn nelder_mead_minimizes_sphere() {
        let res = nelder_mead(sphere, &[2.0, -1.5, 0.7], 0.5, 400);
        assert!(res.value < 1e-6, "value={}", res.value);
        assert!(res.evaluations > 10);
    }

    #[test]
    fn nelder_mead_minimizes_rosenbrock() {
        let rosen = |x: &[f64]| (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2);
        let res = nelder_mead(rosen, &[-1.0, 1.0], 0.5, 2000);
        assert!(
            (res.params[0] - 1.0).abs() < 1e-2,
            "params={:?}",
            res.params
        );
    }

    #[test]
    fn nelder_mead_history_is_monotone() {
        let res = nelder_mead(sphere, &[3.0, 3.0], 1.0, 100);
        for w in res.history.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
    }

    #[test]
    fn spsa_reduces_objective() {
        let mut rng = DetRng::seed_from_u64(4);
        let start = sphere(&[2.0, 2.0]);
        let res = spsa(sphere, &[2.0, 2.0], 300, &mut rng);
        assert!(res.value < start / 10.0, "value={}", res.value);
    }

    #[test]
    fn spsa_is_deterministic_per_seed() {
        let run = |seed| {
            let mut rng = DetRng::seed_from_u64(seed);
            spsa(sphere, &[1.0, -1.0], 50, &mut rng).value
        };
        assert_eq!(run(7), run(7));
    }
}
