//! [`Circuit`]: an ordered list of operations with builder conveniences.

use crate::gate::{Gate, Op};
use crate::state::StateVector;
use kaas_simtime::rng::DetRng;

/// A quantum circuit over a fixed number of qubits.
///
/// # Examples
///
/// ```
/// use kaas_quantum::Circuit;
///
/// let mut qc = Circuit::new(2);
/// qc.h(0).cx(0, 1);
/// let psi = qc.statevector();
/// assert!((psi.probabilities()[3] - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Circuit {
    qubits: usize,
    ops: Vec<Op>,
}

impl Circuit {
    /// Creates an empty circuit over `qubits` qubits.
    pub fn new(qubits: usize) -> Self {
        assert!(qubits >= 1, "circuit needs at least one qubit");
        Circuit {
            qubits,
            ops: Vec::new(),
        }
    }

    /// Number of qubits.
    pub fn qubits(&self) -> usize {
        self.qubits
    }

    /// The operation list.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Total gate count.
    pub fn gate_count(&self) -> usize {
        self.ops.len()
    }

    /// Two-qubit gate count.
    pub fn two_qubit_count(&self) -> usize {
        self.ops.iter().filter(|o| o.is_two_qubit()).count()
    }

    /// Circuit depth (longest chain of ops per qubit timeline).
    pub fn depth(&self) -> usize {
        let mut level = vec![0usize; self.qubits];
        let mut depth = 0;
        for op in &self.ops {
            let qs = op.qubits();
            let l = qs.iter().map(|&q| level[q]).max().unwrap_or(0) + 1;
            for q in qs {
                level[q] = l;
            }
            depth = depth.max(l);
        }
        depth
    }

    /// Appends an arbitrary op.
    ///
    /// # Panics
    ///
    /// Panics if the op addresses a qubit out of range.
    pub fn push(&mut self, op: Op) -> &mut Self {
        for q in op.qubits() {
            assert!(q < self.qubits, "qubit {q} out of range");
        }
        self.ops.push(op);
        self
    }

    /// Appends a single-qubit gate.
    pub fn gate(&mut self, gate: Gate, qubit: usize) -> &mut Self {
        self.push(Op::Gate1 { gate, qubit })
    }

    /// Hadamard.
    pub fn h(&mut self, q: usize) -> &mut Self {
        self.gate(Gate::H, q)
    }

    /// Pauli-X.
    pub fn x(&mut self, q: usize) -> &mut Self {
        self.gate(Gate::X, q)
    }

    /// Y-rotation.
    pub fn ry(&mut self, theta: f64, q: usize) -> &mut Self {
        self.gate(Gate::Ry(theta), q)
    }

    /// Z-rotation.
    pub fn rz(&mut self, theta: f64, q: usize) -> &mut Self {
        self.gate(Gate::Rz(theta), q)
    }

    /// Controlled-X.
    pub fn cx(&mut self, control: usize, target: usize) -> &mut Self {
        self.push(Op::Cx { control, target })
    }

    /// Controlled-Z.
    pub fn cz(&mut self, a: usize, b: usize) -> &mut Self {
        self.push(Op::Cz { a, b })
    }

    /// The inverse circuit: adjoint ops in reverse order, so
    /// `qc.inverse()` undoes `qc` up to global phase.
    pub fn inverse(&self) -> Circuit {
        let mut inv = Circuit::new(self.qubits);
        for op in self.ops.iter().rev() {
            inv.push(op.inverse());
        }
        inv
    }

    /// Applies the circuit to |0…0⟩ and returns the final state.
    pub fn statevector(&self) -> StateVector {
        let mut psi = StateVector::new(self.qubits);
        psi.apply_all(self.ops());
        psi
    }

    /// Applies the circuit to an existing state.
    ///
    /// # Panics
    ///
    /// Panics if the state's qubit count differs.
    pub fn run_on(&self, psi: &mut StateVector) {
        assert_eq!(psi.qubits(), self.qubits, "qubit counts differ");
        psi.apply_all(self.ops());
    }

    /// Builds the paper's QC workload (§5.6.1): a circuit of `n_gates` CX
    /// gates (preceded by a Hadamard layer so the state is nontrivial)
    /// over `qubits` qubits, with pseudo-random wiring.
    pub fn random_cx(qubits: usize, n_gates: usize, rng: &mut DetRng) -> Self {
        assert!(qubits >= 2, "CX circuits need at least two qubits");
        let mut qc = Circuit::new(qubits);
        for q in 0..qubits {
            qc.h(q);
        }
        for _ in 0..n_gates {
            let c = rng.gen_range(0..qubits);
            let mut t = rng.gen_range(0..qubits - 1);
            if t >= c {
                t += 1;
            }
            qc.cx(c, t);
        }
        qc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains_and_counts() {
        let mut qc = Circuit::new(3);
        qc.h(0).cx(0, 1).cx(1, 2).rz(0.5, 2);
        assert_eq!(qc.gate_count(), 4);
        assert_eq!(qc.two_qubit_count(), 2);
        assert_eq!(qc.qubits(), 3);
    }

    #[test]
    fn depth_accounts_for_parallelism() {
        let mut qc = Circuit::new(4);
        // Two disjoint CX gates can run in parallel: depth 1.
        qc.cx(0, 1).cx(2, 3);
        assert_eq!(qc.depth(), 1);
        // A chained CX adds a level.
        qc.cx(1, 2);
        assert_eq!(qc.depth(), 2);
    }

    #[test]
    fn random_cx_has_requested_gates() {
        let mut rng = DetRng::seed_from_u64(5);
        let qc = Circuit::random_cx(8, 100, &mut rng);
        assert_eq!(qc.gate_count(), 8 + 100);
        assert_eq!(qc.two_qubit_count(), 100);
        // Norm must be preserved through all 100 CX gates.
        assert!((qc.statevector().norm() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn inverse_undoes_the_circuit() {
        let mut rng = DetRng::seed_from_u64(31);
        let qc = Circuit::random_cx(4, 25, &mut rng);
        let mut psi = qc.statevector();
        qc.inverse().run_on(&mut psi);
        let ground = StateVector::new(4);
        assert!((psi.fidelity(&ground) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn inverse_of_rotations_cancels() {
        let mut qc = Circuit::new(2);
        qc.ry(0.37, 0).rz(-1.2, 1).cx(0, 1).h(0);
        let mut psi = qc.statevector();
        qc.inverse().run_on(&mut psi);
        assert!((psi.probabilities()[0] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn statevector_of_empty_circuit_is_ground() {
        let qc = Circuit::new(2);
        assert!((qc.statevector().probabilities()[0] - 1.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_push_panics() {
        let mut qc = Circuit::new(1);
        qc.x(3);
    }
}
