//! Pauli strings and observables ([`Hamiltonian`]).

use crate::state::StateVector;

/// A weighted tensor product of Pauli operators, e.g. `0.5 · Z₀X₂`.
#[derive(Debug, Clone, PartialEq)]
pub struct PauliTerm {
    /// Real coefficient.
    pub coefficient: f64,
    /// `(qubit, pauli)` factors with pauli ∈ {'X','Y','Z'}; identity on
    /// every unlisted qubit. An empty list is the identity term.
    pub factors: Vec<(usize, char)>,
}

impl PauliTerm {
    /// Creates a term.
    ///
    /// # Panics
    ///
    /// Panics on an unknown Pauli letter or a duplicated qubit.
    pub fn new(coefficient: f64, factors: Vec<(usize, char)>) -> Self {
        for &(q, p) in &factors {
            assert!(matches!(p, 'X' | 'Y' | 'Z'), "unknown Pauli '{p}'");
            assert_eq!(
                factors.iter().filter(|&&(q2, _)| q2 == q).count(),
                1,
                "qubit {q} appears twice in a Pauli term"
            );
        }
        PauliTerm {
            coefficient,
            factors,
        }
    }

    /// The identity term `c · I`.
    pub fn identity(coefficient: f64) -> Self {
        PauliTerm::new(coefficient, Vec::new())
    }

    /// ⟨ψ| this |ψ⟩.
    pub fn expectation(&self, psi: &StateVector) -> f64 {
        if self.factors.is_empty() {
            return self.coefficient;
        }
        self.coefficient * psi.pauli_expectation(&self.factors)
    }
}

/// A Hermitian observable as a sum of Pauli terms.
///
/// # Examples
///
/// ```
/// use kaas_quantum::{Gate, Hamiltonian, Op, StateVector};
///
/// let h = Hamiltonian::h2_sto3g();
/// // |01> is the Hartree–Fock determinant: energy ≈ -1.84 Ha for H₂.
/// let mut psi = StateVector::new(2);
/// psi.apply(Op::Gate1 { gate: Gate::X, qubit: 0 });
/// let e = h.expectation(&psi);
/// assert!(e < -1.8 && e > -1.9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Hamiltonian {
    terms: Vec<PauliTerm>,
}

impl Hamiltonian {
    /// Builds an observable from terms.
    pub fn new(terms: Vec<PauliTerm>) -> Self {
        Hamiltonian { terms }
    }

    /// The terms.
    pub fn terms(&self) -> &[PauliTerm] {
        &self.terms
    }

    /// Highest qubit index referenced, plus one (0 for a pure identity).
    pub fn qubits(&self) -> usize {
        self.terms
            .iter()
            .flat_map(|t| t.factors.iter().map(|&(q, _)| q + 1))
            .max()
            .unwrap_or(0)
    }

    /// ⟨ψ|H|ψ⟩.
    pub fn expectation(&self, psi: &StateVector) -> f64 {
        self.terms.iter().map(|t| t.expectation(psi)).sum()
    }

    /// The two-qubit reduced Hamiltonian of molecular H₂ in the STO-3G
    /// basis at 0.735 Å bond distance (the standard VQE benchmark used in
    /// single-point electronic-structure calculations like the paper's
    /// §5.6.4 workload). Ground-state energy ≈ −1.8573 Ha.
    pub fn h2_sto3g() -> Self {
        Hamiltonian::new(vec![
            PauliTerm::identity(-1.052373245772859),
            PauliTerm::new(0.39793742484318045, vec![(0, 'Z')]),
            PauliTerm::new(-0.39793742484318045, vec![(1, 'Z')]),
            PauliTerm::new(-0.01128010425623538, vec![(0, 'Z'), (1, 'Z')]),
            PauliTerm::new(0.18093119978423156, vec![(0, 'X'), (1, 'X')]),
        ])
    }

    /// Reference ground-state energy of [`Hamiltonian::h2_sto3g`].
    pub fn h2_ground_energy() -> f64 {
        -1.857_275_030_202_382
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::{Gate, Op};

    #[test]
    fn identity_term_is_constant() {
        let t = PauliTerm::identity(2.5);
        let psi = StateVector::new(3);
        assert_eq!(t.expectation(&psi), 2.5);
    }

    #[test]
    fn z_term_on_excited_qubit_flips_sign() {
        let t = PauliTerm::new(1.0, vec![(0, 'Z')]);
        let mut psi = StateVector::new(1);
        assert!((t.expectation(&psi) - 1.0).abs() < 1e-12);
        psi.apply(Op::Gate1 {
            gate: Gate::X,
            qubit: 0,
        });
        assert!((t.expectation(&psi) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn h2_qubit_count() {
        assert_eq!(Hamiltonian::h2_sto3g().qubits(), 2);
    }

    #[test]
    fn h2_hartree_fock_energy() {
        // |01> (occupied orbital) vs |00>: the mapped HF determinant for
        // this reduced Hamiltonian is |01>.
        let h = Hamiltonian::h2_sto3g();
        let mut psi = StateVector::new(2);
        psi.apply(Op::Gate1 {
            gate: Gate::X,
            qubit: 0,
        });
        let e_01 = h.expectation(&psi);
        // HF energy for H2/STO-3G at 0.735 Å is ≈ -1.117 + nuclear rep?
        // In this reduced mapping the HF determinant sits close to the
        // exact ground energy; just require it to be within 0.1 Ha.
        assert!(
            (e_01 - Hamiltonian::h2_ground_energy()).abs() < 0.1,
            "e={e_01}"
        );
    }

    #[test]
    fn ground_energy_is_spectrum_minimum() {
        // Exhaustively check all four basis states are above the reported
        // ground energy (variational principle sanity).
        let h = Hamiltonian::h2_sto3g();
        for basis in 0..4u32 {
            let mut psi = StateVector::new(2);
            if basis & 1 != 0 {
                psi.apply(Op::Gate1 {
                    gate: Gate::X,
                    qubit: 0,
                });
            }
            if basis & 2 != 0 {
                psi.apply(Op::Gate1 {
                    gate: Gate::X,
                    qubit: 1,
                });
            }
            assert!(h.expectation(&psi) >= Hamiltonian::h2_ground_energy() - 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "twice")]
    fn duplicate_qubit_rejected() {
        let _ = PauliTerm::new(1.0, vec![(0, 'X'), (0, 'Z')]);
    }
}
