//! [`SharedProcessor`]: a demand-weighted processor-sharing compute
//! resource.
//!
//! Models spatial sharing of an accelerator's compute fabric (e.g. Nvidia
//! MPS, Fig. 4b of the paper). `capacity` is the *standalone sustained
//! rate* of a resident kernel; each kernel *j* additionally declares a
//! `demand` dⱼ ∈ (0, 1] — the fraction of the device it occupies (grid
//! size vs. SM count). While the device is under-subscribed (Σd ≤ 1)
//! every kernel runs at its standalone rate (the paper's Fig. 13
//! observation that one GPU absorbs four matrix multiplications "without
//! significant impact"); once over-subscribed, all rates shrink by the
//! common contention factor:
//!
//! ```text
//! rate_j = capacity · min(1, 1 / Σ d_i)
//! ```
//!
//! which yields the Fig. 9 spatial-sharing slowdown while conserving the
//! device's aggregate peak of `capacity / d`.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;
use std::time::Duration;

use kaas_simtime::sync::Event;
use kaas_simtime::{now, timeout, SimTime};

/// Work smaller than one nanosecond at full capacity counts as done
/// (absorbs floating-point settling error).
fn epsilon(capacity: f64) -> f64 {
    capacity * 1e-9
}

#[derive(Debug, Clone, Copy)]
struct Job {
    remaining: f64,
    demand: f64,
}

struct PsState {
    capacity: f64,
    jobs: BTreeMap<u64, Job>,
    total_demand: f64,
    next_id: u64,
    last_settle: SimTime,
    epoch: Event,
    busy_seconds: f64,
}

impl PsState {
    /// The common contention factor min(1, 1/Σd).
    fn contention(&self) -> f64 {
        (1.0 / self.total_demand.max(1.0)).min(1.0)
    }

    fn rate(&self) -> f64 {
        self.capacity * self.contention()
    }

    /// Advances all jobs to `t` at the current (constant) rates.
    fn settle(&mut self, t: SimTime) {
        let dt = t.saturating_since(self.last_settle).as_secs_f64();
        self.last_settle = t;
        if dt == 0.0 || self.jobs.is_empty() {
            return;
        }
        self.busy_seconds += dt * self.total_demand.min(1.0);
        let rate = self.rate();
        for job in self.jobs.values_mut() {
            job.remaining = (job.remaining - dt * rate).max(0.0);
        }
    }

    /// Signals a rate change to every waiting job.
    fn bump_epoch(&mut self) {
        let old = std::mem::replace(&mut self.epoch, Event::new());
        old.set();
    }

    fn recompute_demand(&mut self) {
        self.total_demand = self.jobs.values().map(|j| j.demand).sum();
    }
}

/// A demand-weighted processor-sharing compute resource.
///
/// # Examples
///
/// ```
/// use kaas_accel::SharedProcessor;
/// use kaas_simtime::{Simulation, spawn};
///
/// let mut sim = Simulation::new();
/// sim.block_on(async {
///     let ps = SharedProcessor::new(100.0); // 100 flop/s
///     let ps2 = ps.clone();
///     // Two full-demand 100-flop jobs sharing the processor: 2 s each.
///     let a = spawn(async move { ps2.execute(100.0).await });
///     let b = ps.execute(100.0).await;
///     assert_eq!(b.as_secs_f64(), 2.0);
///     assert_eq!(a.await.as_secs_f64(), 2.0);
/// });
/// ```
#[derive(Clone)]
pub struct SharedProcessor {
    state: Rc<RefCell<PsState>>,
}

impl std::fmt::Debug for SharedProcessor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.state.borrow();
        f.debug_struct("SharedProcessor")
            .field("capacity", &s.capacity)
            .field("active_jobs", &s.jobs.len())
            .field("total_demand", &s.total_demand)
            .finish()
    }
}

impl SharedProcessor {
    /// Creates a processor with `capacity` work units per second.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not strictly positive and finite.
    pub fn new(capacity: f64) -> Self {
        assert!(
            capacity > 0.0 && capacity.is_finite(),
            "capacity must be positive and finite, got {capacity}"
        );
        SharedProcessor {
            state: Rc::new(RefCell::new(PsState {
                capacity,
                jobs: BTreeMap::new(),
                total_demand: 0.0,
                next_id: 0,
                last_settle: SimTime::ZERO,
                epoch: Event::new(),
                busy_seconds: 0.0,
            })),
        }
    }

    /// The configured capacity in work units per second.
    pub fn capacity(&self) -> f64 {
        self.state.borrow().capacity
    }

    /// Number of currently resident jobs.
    pub fn active_jobs(&self) -> usize {
        self.state.borrow().jobs.len()
    }

    /// Instantaneous utilization in `[0, 1]`: total resident demand,
    /// capped at 1 (a fully subscribed device).
    pub fn current_load(&self) -> f64 {
        self.state.borrow().total_demand.min(1.0)
    }

    /// Utilization-weighted busy time (device-seconds at full activity)
    /// accumulated since construction.
    pub fn busy_seconds(&self) -> f64 {
        let mut s = self.state.borrow_mut();
        let t = kaas_simtime::Handle::try_current()
            .map(|h| h.now())
            .unwrap_or(s.last_settle);
        s.settle(t);
        s.busy_seconds
    }

    /// Executes `work` units at full demand; see
    /// [`execute_with_demand`](Self::execute_with_demand).
    pub async fn execute(&self, work: f64) -> Duration {
        self.execute_with_demand(work, 1.0).await
    }

    /// Executes `work` units with standalone occupancy `demand` ∈ (0, 1],
    /// sharing capacity with concurrent jobs proportionally to demand.
    /// Returns the occupancy duration (arrival to completion).
    ///
    /// Zero work completes immediately.
    ///
    /// # Panics
    ///
    /// Panics if `work` is negative/NaN or `demand` is outside `(0, 1]`.
    pub async fn execute_with_demand(&self, work: f64, demand: f64) -> Duration {
        assert!(work >= 0.0 && work.is_finite(), "invalid work: {work}");
        assert!(
            demand > 0.0 && demand <= 1.0,
            "demand must be in (0, 1], got {demand}"
        );
        let start = now();
        if work == 0.0 {
            return Duration::ZERO;
        }
        let id = {
            let mut s = self.state.borrow_mut();
            s.settle(start);
            let id = s.next_id;
            s.next_id += 1;
            s.jobs.insert(
                id,
                Job {
                    remaining: work,
                    demand,
                },
            );
            s.recompute_demand();
            s.bump_epoch();
            id
        };
        loop {
            let (epoch, finish_in) = {
                let s = self.state.borrow();
                let job = s.jobs[&id];
                (
                    s.epoch.clone(),
                    Duration::from_secs_f64(job.remaining / s.rate()),
                )
            };
            match timeout(finish_in, epoch.wait()).await {
                Err(_) => {
                    // Ran undisturbed until our estimated finish: settle and
                    // check we are really done (guards rounding).
                    let mut s = self.state.borrow_mut();
                    let t = now();
                    s.settle(t);
                    let eps = epsilon(s.capacity);
                    if s.jobs[&id].remaining <= eps {
                        s.jobs.remove(&id);
                        s.recompute_demand();
                        s.bump_epoch();
                        return t - start;
                    }
                }
                Ok(()) => {
                    // Rates shifted (arrival/departure); re-estimate. The
                    // epoch bumper already settled the state.
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kaas_simtime::{sleep, spawn, Simulation};

    #[test]
    fn single_job_runs_at_full_rate() {
        let mut sim = Simulation::new();
        let d = sim.block_on(async {
            let ps = SharedProcessor::new(1000.0);
            ps.execute(500.0).await
        });
        assert!((d.as_secs_f64() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn zero_work_is_instant() {
        let mut sim = Simulation::new();
        let d = sim.block_on(async { SharedProcessor::new(1.0).execute(0.0).await });
        assert_eq!(d, Duration::ZERO);
    }

    #[test]
    fn equal_jobs_share_equally() {
        let mut sim = Simulation::new();
        let (a, b) = sim.block_on(async {
            let ps = SharedProcessor::new(100.0);
            let ps2 = ps.clone();
            let h = spawn(async move { ps2.execute(100.0).await });
            let b = ps.execute(100.0).await;
            (h.await, b)
        });
        assert!((a.as_secs_f64() - 2.0).abs() < 1e-6);
        assert!((b.as_secs_f64() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn low_demand_jobs_coexist_without_slowdown() {
        let mut sim = Simulation::new();
        let times = sim.block_on(async {
            let ps = SharedProcessor::new(100.0);
            let mut hs = Vec::new();
            // Four jobs at demand 0.25 fit exactly: each runs at its full
            // standalone rate of 100/s.
            for _ in 0..4 {
                let ps = ps.clone();
                hs.push(spawn(
                    async move { ps.execute_with_demand(100.0, 0.25).await },
                ));
            }
            let mut out = Vec::new();
            for h in hs {
                out.push(h.await.as_secs_f64());
            }
            out
        });
        for t in times {
            assert!((t - 1.0).abs() < 1e-6, "expected 1 s, got {t}");
        }
    }

    #[test]
    fn oversubscription_divides_proportionally() {
        let mut sim = Simulation::new();
        let times = sim.block_on(async {
            let ps = SharedProcessor::new(100.0);
            let mut hs = Vec::new();
            // Two jobs at demand 0.7 oversubscribe (Σ=1.4): both slow to
            // 100/1.4 ≈ 71.4/s.
            for _ in 0..2 {
                let ps = ps.clone();
                hs.push(spawn(
                    async move { ps.execute_with_demand(100.0, 0.7).await },
                ));
            }
            let mut out = Vec::new();
            for h in hs {
                out.push(h.await.as_secs_f64());
            }
            out
        });
        for t in times {
            assert!((t - 1.4).abs() < 1e-6, "expected 1.4 s, got {t}");
        }
    }

    #[test]
    fn late_arrival_slows_resident_job() {
        let mut sim = Simulation::new();
        let (first, second) = sim.block_on(async {
            let ps = SharedProcessor::new(100.0);
            let ps2 = ps.clone();
            // Job A: 100 units, alone for 0.5 s (50 done), then shares.
            let a = spawn(async move { ps2.execute(100.0).await });
            sleep(Duration::from_millis(500)).await;
            let ps3 = ps.clone();
            let b = spawn(async move { ps3.execute(100.0).await });
            (a.await, b.await)
        });
        // A: 0.5 s alone + 1.0 s shared (50 units at 50/s) = 1.5 s total.
        assert!((first.as_secs_f64() - 1.5).abs() < 1e-6, "A took {first:?}");
        // B: shares for 1.0 s (50 done when A leaves), then 0.5 s alone.
        assert!(
            (second.as_secs_f64() - 1.5).abs() < 1e-6,
            "B took {second:?}"
        );
    }

    #[test]
    fn throughput_is_conserved_under_sharing() {
        // Total completion time of n equal full-demand jobs equals the
        // serial total (PS conserves work).
        let mut sim = Simulation::new();
        let t_end = sim.block_on(async {
            let ps = SharedProcessor::new(10.0);
            let mut hs = Vec::new();
            for _ in 0..5 {
                let ps = ps.clone();
                hs.push(spawn(async move { ps.execute(10.0).await }));
            }
            for h in hs {
                h.await;
            }
            now()
        });
        assert!((t_end.as_secs_f64() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn busy_seconds_weighted_by_utilization() {
        let mut sim = Simulation::new();
        let busy = sim.block_on(async {
            let ps = SharedProcessor::new(100.0);
            // Demand 0.5 for 1 s of occupancy (100 units at the full
            // 100/s standalone rate): busy 0.5 device-seconds.
            ps.execute_with_demand(100.0, 0.5).await;
            sleep(Duration::from_secs(5)).await;
            // Full demand 1 s: busy 1.0.
            ps.execute(100.0).await;
            ps.busy_seconds()
        });
        assert!((busy - 1.5).abs() < 1e-6, "busy={busy}");
    }

    #[test]
    fn active_jobs_and_load_reflect_residency() {
        let mut sim = Simulation::new();
        sim.block_on(async {
            let ps = SharedProcessor::new(10.0);
            assert_eq!(ps.active_jobs(), 0);
            assert_eq!(ps.current_load(), 0.0);
            let ps2 = ps.clone();
            let h = spawn(async move { ps2.execute_with_demand(5.0, 0.5).await });
            sleep(Duration::from_millis(100)).await;
            assert_eq!(ps.active_jobs(), 1);
            assert!((ps.current_load() - 0.5).abs() < 1e-12);
            h.await;
            assert_eq!(ps.active_jobs(), 0);
        });
    }

    #[test]
    fn unequal_jobs_finish_in_size_order() {
        let mut sim = Simulation::new();
        let (small, large) = sim.block_on(async {
            let ps = SharedProcessor::new(100.0);
            let ps2 = ps.clone();
            let l = spawn(async move { ps2.execute(300.0).await });
            let s = ps.execute(100.0).await;
            (s, l.await)
        });
        // Small: shares at 50/s for 2 s => done at t=2.
        assert!((small.as_secs_f64() - 2.0).abs() < 1e-6, "small={small:?}");
        // Large: 100 done by t=2, 200 left alone at 100/s => done at t=4.
        assert!((large.as_secs_f64() - 4.0).abs() < 1e-6, "large={large:?}");
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = SharedProcessor::new(0.0);
    }

    #[test]
    #[should_panic(expected = "demand")]
    fn excess_demand_rejected() {
        let mut sim = Simulation::new();
        sim.block_on(async {
            SharedProcessor::new(1.0)
                .execute_with_demand(1.0, 1.5)
                .await;
        });
    }
}
