//! TPU device model (Google Cloud TPU v3-8 class).
//!
//! Calibration (§5.6.3 / Fig. 16): a v3-8 board has four dual-core chips
//! that "can be controlled individually", but "running multiple processes
//! on the same TPU chip leads to errors" — so KaaS allocates one task
//! runner per chip. In exclusive mode each kernel execution blocks (and
//! uses) the entire board; in shared mode each concurrent instance pins
//! one chip. The dominant overheads KaaS removes are the TensorFlow
//! import ("a large part of the total task completion time … is the time
//! required to import the necessary libraries, most notably TensorFlow",
//! which also initializes the TPU system) and per-process XLA
//! compilation; removing them cuts TPU time by 81.3–99.6 % and total task
//! time by 95.9–98.6 %.

use std::rc::Rc;
use std::time::Duration;

use kaas_simtime::sleep;
use kaas_simtime::sync::{Semaphore, SemaphoreGuard};

use crate::device::DeviceId;
use crate::power::PowerProfile;
use crate::ps::SharedProcessor;
use crate::work::WorkUnits;

/// Static parameters of a TPU board.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TpuProfile {
    /// Marketing name.
    pub name: &'static str,
    /// Number of individually controllable chips.
    pub chips: u32,
    /// Sustained per-chip throughput in FLOP/s (at efficiency 1.0).
    pub flops_per_chip: f64,
    /// Per-process TensorFlow import + TPU system initialization.
    pub runtime_init: Duration,
    /// Per-process XLA compilation of the kernel graph (cached inside a
    /// warm runner).
    pub xla_compile: Duration,
    /// Host→TPU infeed bandwidth.
    pub infeed_bps: f64,
    /// Per-chip power.
    pub power_per_chip: PowerProfile,
}

impl TpuProfile {
    /// Google Cloud v3-8: four chips, eight cores, 16 GB/chip.
    pub fn v3_8() -> Self {
        TpuProfile {
            name: "TPU v3-8",
            chips: 4,
            flops_per_chip: 4.2e13,
            runtime_init: Duration::from_millis(12_000),
            xla_compile: Duration::from_millis(10_000),
            infeed_bps: 10.0e9,
            power_per_chip: PowerProfile::tpu_v3_chip(),
        }
    }
}

struct TpuInner {
    id: DeviceId,
    profile: TpuProfile,
    chips: Vec<SharedProcessor>,
    board: Semaphore,
    exclusive_busy: std::cell::Cell<f64>,
    next_chip: std::cell::Cell<u32>,
    online: std::cell::Cell<bool>,
}

/// A simulated TPU board: per-chip compute plus a board-exclusive mode.
///
/// # Examples
///
/// ```
/// use kaas_accel::{TpuDevice, TpuProfile, WorkUnits, DeviceId};
/// use kaas_simtime::Simulation;
///
/// let mut sim = Simulation::new();
/// let t = sim.block_on(async {
///     let tpu = TpuDevice::new(DeviceId(0), TpuProfile::v3_8());
///     tpu.run_on_chip(0, &WorkUnits::new(4.2e12)).await
/// });
/// assert!((t.as_secs_f64() - 0.1).abs() < 1e-6);
/// ```
#[derive(Clone)]
pub struct TpuDevice {
    inner: Rc<TpuInner>,
}

impl std::fmt::Debug for TpuDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TpuDevice")
            .field("id", &self.inner.id)
            .field("name", &self.inner.profile.name)
            .field("chips", &self.inner.profile.chips)
            .finish()
    }
}

impl TpuDevice {
    /// Creates a TPU board with the given identity and profile.
    pub fn new(id: DeviceId, profile: TpuProfile) -> Self {
        let chips = (0..profile.chips)
            .map(|_| SharedProcessor::new(profile.flops_per_chip))
            .collect();
        TpuDevice {
            inner: Rc::new(TpuInner {
                id,
                chips,
                board: Semaphore::new(profile.chips as usize),
                exclusive_busy: std::cell::Cell::new(0.0),
                next_chip: std::cell::Cell::new(0),
                online: std::cell::Cell::new(true),
                profile,
            }),
        }
    }

    /// Whether the device is online (fault injection can flip this).
    pub fn is_online(&self) -> bool {
        self.inner.online.get()
    }

    /// Takes the device offline (or back online) — the fault-injection
    /// hook; an offline device serves no new work.
    pub fn set_online(&self, online: bool) {
        self.inner.online.set(online);
    }

    /// Device identity.
    pub fn id(&self) -> DeviceId {
        self.inner.id
    }

    /// Static profile.
    pub fn profile(&self) -> &TpuProfile {
        &self.inner.profile
    }

    /// Number of chips.
    pub fn chips(&self) -> u32 {
        self.inner.profile.chips
    }

    /// Imports TensorFlow and initializes the TPU system (baselines pay
    /// this per task; KaaS once per runner).
    pub async fn init_runtime(&self) {
        sleep(self.inner.profile.runtime_init).await;
    }

    /// Compiles the kernel graph with XLA (cached inside a warm runner).
    pub async fn compile(&self) {
        sleep(self.inner.profile.xla_compile).await;
    }

    /// Runs `work` on one chip (shared/KaaS mode).
    ///
    /// # Panics
    ///
    /// Panics if `chip` is out of range.
    pub async fn run_on_chip(&self, chip: u32, work: &WorkUnits) -> Duration {
        let ps = &self.inner.chips[chip as usize];
        let infeed =
            Duration::from_secs_f64(work.total_bytes() as f64 / self.inner.profile.infeed_bps);
        sleep(infeed).await;
        infeed + ps.execute(work.flops / work.efficiency).await
    }

    /// Acquires every chip (exclusive mode). Holding this guard, use
    /// [`TpuDevice::run_board`] to execute — it does not re-acquire.
    pub async fn lock_board(&self) -> SemaphoreGuard {
        self.inner
            .board
            .acquire(self.inner.profile.chips as usize)
            .await
    }

    /// Runs `work` using the whole board (exclusive mode): acquires every
    /// chip, then computes at `chips ×` per-chip rate.
    pub async fn run_exclusive(&self, work: &WorkUnits) -> Duration {
        let _board = self.lock_board().await;
        self.run_board(work).await
    }

    /// Executes `work` across all chips **without acquiring the board
    /// lock** — the caller must hold the [`TpuDevice::lock_board`] guard
    /// (this split lets baselines hold the board across TensorFlow import
    /// and XLA compilation, as real exclusive TPU use does).
    pub async fn run_board(&self, work: &WorkUnits) -> Duration {
        let start = kaas_simtime::now();
        let infeed =
            Duration::from_secs_f64(work.total_bytes() as f64 / self.inner.profile.infeed_bps);
        sleep(infeed).await;
        let rate = self.inner.profile.flops_per_chip * self.inner.profile.chips as f64;
        let compute = Duration::from_secs_f64(work.flops / work.efficiency / rate);
        sleep(compute).await;
        // All chips are busy for the compute interval.
        self.inner.exclusive_busy.set(
            self.inner.exclusive_busy.get()
                + compute.as_secs_f64() * self.inner.profile.chips as f64,
        );
        kaas_simtime::now() - start
    }

    /// Reserves one chip slot (shared-mode admission).
    pub async fn acquire_chip_slot(&self) -> SemaphoreGuard {
        self.inner.board.acquire(1).await
    }

    /// Hands out chip indices round-robin (how the shared baseline pins
    /// "each concurrent instance … one of the four TPU chips", §5.6.3).
    pub fn assign_chip(&self) -> u32 {
        let i = self.inner.next_chip.get();
        self.inner.next_chip.set(i.wrapping_add(1));
        i % self.inner.profile.chips
    }

    /// Utilization-weighted busy seconds summed over chips (including
    /// board-exclusive runs).
    pub fn busy_seconds(&self) -> f64 {
        self.inner
            .chips
            .iter()
            .map(|c| c.busy_seconds())
            .sum::<f64>()
            + self.inner.exclusive_busy.get()
    }

    /// Energy drawn over a window of `total` (all chips powered).
    pub fn energy_joules(&self, total: Duration) -> f64 {
        let p = &self.inner.profile;
        let idle_all = p.power_per_chip.idle_w * p.chips as f64 * total.as_secs_f64();
        let dynamic = (p.power_per_chip.active_w - p.power_per_chip.idle_w)
            * self
                .busy_seconds()
                .min(total.as_secs_f64() * p.chips as f64);
        idle_all + dynamic
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kaas_simtime::{now, spawn, Simulation};

    fn v3_8() -> TpuDevice {
        TpuDevice::new(DeviceId(0), TpuProfile::v3_8())
    }

    #[test]
    fn exclusive_uses_whole_board() {
        let mut sim = Simulation::new();
        let (chip, board) = sim.block_on(async {
            let tpu = v3_8();
            let w = WorkUnits::new(1.68e14);
            let c = tpu.run_on_chip(0, &w).await;
            let b = tpu.run_exclusive(&w).await;
            (c, b)
        });
        assert!((chip.as_secs_f64() - 4.0).abs() < 1e-6);
        assert!((board.as_secs_f64() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn exclusive_blocks_chip_users() {
        let mut sim = Simulation::new();
        let t = sim.block_on(async {
            let tpu = v3_8();
            let t2 = tpu.clone();
            let w = WorkUnits::new(1.68e14);
            let h = spawn(async move { t2.run_exclusive(&w).await });
            kaas_simtime::yield_now().await;
            // A chip-slot user must wait for the exclusive run to finish.
            let _slot = tpu.acquire_chip_slot().await;
            h.await;
            now()
        });
        assert!((t.as_secs_f64() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn chips_run_independently() {
        let mut sim = Simulation::new();
        let t = sim.block_on(async {
            let tpu = v3_8();
            let w = WorkUnits::new(4.2e13);
            let mut hs = Vec::new();
            for chip in 0..4 {
                let tpu = tpu.clone();
                hs.push(spawn(async move { tpu.run_on_chip(chip, &w).await }));
            }
            for h in hs {
                let d = h.await;
                assert!((d.as_secs_f64() - 1.0).abs() < 1e-6);
            }
            now()
        });
        // All four chips in parallel: wall clock is one second.
        assert!((t.as_secs_f64() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn runtime_init_dominates_small_kernels() {
        let p = TpuProfile::v3_8();
        assert!(p.runtime_init + p.xla_compile > Duration::from_secs(20));
    }

    #[test]
    #[should_panic]
    fn bad_chip_index_panics() {
        let mut sim = Simulation::new();
        sim.block_on(async {
            v3_8().run_on_chip(9, &WorkUnits::new(1.0)).await;
        });
    }
}
