//! GPU device model (Nvidia P100 / V100 / A100 class).
//!
//! Calibration sources (sections/figures of the KaaS paper):
//!
//! * **Per-execution CUDA initialization ≈ 410 ms** — §5.1: "The KaaS
//!   approach reduces general computation time by 406 ms to 419 ms,
//!   regardless of task size. We expect this reduction to be caused by the
//!   additional CUDA initialization that has to be performed for each
//!   execution in the baseline model."
//! * **Baseline process overhead ≈ 689 ms at small sizes** — Fig. 7:
//!   "this overhead is reduced from 689 ms to 123 ms" for 500×500
//!   matrices. We split it into Python launch (120 ms, which the thin
//!   KaaS client also pays), the `numba` import (430 ms), and CUDA
//!   cleanup (139 ms).
//! * **Fresh contexts pay a flat lazy-initialization penalty on their
//!   copies** (allocator and staging-buffer setup) — drives the Fig. 9
//!   kernel-time slowdown of time/space sharing at small sizes while
//!   keeping exclusive kernel time near-isolated at large sizes.
//! * **Per-GPU performance variability up to 14.3 %** — §5.6.1 observes
//!   a 1.85 s (14.3 %) completion-time spread between the GPUs of the
//!   same cluster, which makes KaaS's round-robin placement *lose* to the
//!   baseline's always-GPU-0 placement for the GA kernel.

use std::cell::Cell;
use std::rc::Rc;
use std::time::Duration;

use kaas_simtime::sleep;
use kaas_simtime::sync::{Semaphore, SemaphoreGuard};

use crate::device::DeviceId;
use crate::power::PowerProfile;
use crate::ps::SharedProcessor;
use crate::work::WorkUnits;
use crate::xfer::TransferEngine;

/// Static timing/throughput parameters of a GPU model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuProfile {
    /// Marketing name.
    pub name: &'static str,
    /// Sustained single-kernel throughput at efficiency 1.0, in FLOP/s.
    pub effective_flops: f64,
    /// PCIe copy bandwidth with pinned, pooled buffers (warm context).
    pub pcie_pinned_bps: f64,
    /// Flat lazy-initialization penalty added to each copy direction in
    /// a fresh context (allocator/staging setup on the first touch).
    pub fresh_copy_penalty: Duration,
    /// CUDA context creation cost, paid per process in the baselines and
    /// once per task-runner cold start in KaaS.
    pub context_init: Duration,
    /// Kernel launch overhead.
    pub launch_overhead: Duration,
    /// Device memory capacity in bytes.
    pub mem_bytes: u64,
    /// Idle/active power draw.
    pub power: PowerProfile,
    /// Relative performance of this physical unit (1.0 = nominal); §5.6.1
    /// observed up to 14.3 % spread across "identical" GPUs.
    pub speed_factor: f64,
    /// Multiplier applied to a kernel's reference demand: smaller dies
    /// saturate at lower concurrency.
    pub demand_scale: f64,
    /// Per-process `import numba`/`import torch` cost (baselines pay it
    /// per task; a KaaS runner pays it once at spawn).
    pub runtime_import: Duration,
    /// Per-process CUDA teardown (cudaFree, stream destruction, ...).
    pub process_cleanup: Duration,
}

impl GpuProfile {
    /// Nvidia Tesla P100 PCIe, 56 SMs, 16 GB (the §5.1–5.2 testbed).
    pub fn p100() -> Self {
        GpuProfile {
            name: "Tesla P100",
            effective_flops: 3.0e12,
            pcie_pinned_bps: 12.0e9,
            fresh_copy_penalty: Duration::from_millis(25),
            context_init: Duration::from_millis(410),
            launch_overhead: Duration::from_micros(8),
            mem_bytes: 16 * 1024 * 1024 * 1024,
            power: PowerProfile::gpu_p100(),
            speed_factor: 1.0,
            demand_scale: 2.8,
            runtime_import: Duration::from_millis(430),
            process_cleanup: Duration::from_millis(139),
        }
    }

    /// Nvidia Tesla V100 SXM2, 80 SMs, 32 GB (the §5.4–5.5 testbed).
    pub fn v100() -> Self {
        GpuProfile {
            name: "Tesla V100",
            effective_flops: 4.4e12,
            pcie_pinned_bps: 13.0e9,
            fresh_copy_penalty: Duration::from_millis(25),
            // §5.4: "a static mean 1.22 s cold start overhead".
            context_init: Duration::from_millis(1_220),
            launch_overhead: Duration::from_micros(6),
            mem_bytes: 32 * 1024 * 1024 * 1024,
            power: PowerProfile::gpu_v100(),
            speed_factor: 1.0,
            demand_scale: 1.0,
            runtime_import: Duration::from_millis(430),
            process_cleanup: Duration::from_millis(139),
        }
    }

    /// Nvidia A100 80 GB (the Fig. 2 motivating-example testbed).
    pub fn a100() -> Self {
        GpuProfile {
            name: "A100 80GB",
            effective_flops: 8.0e12,
            pcie_pinned_bps: 24.0e9,
            fresh_copy_penalty: Duration::from_millis(20),
            context_init: Duration::from_millis(380),
            launch_overhead: Duration::from_micros(5),
            mem_bytes: 80 * 1024 * 1024 * 1024,
            power: PowerProfile::new(40.0, 300.0),
            speed_factor: 1.0,
            demand_scale: 0.8,
            runtime_import: Duration::from_millis(430),
            process_cleanup: Duration::from_millis(139),
        }
    }

    /// Returns the profile with a different per-unit speed factor.
    pub fn with_speed_factor(mut self, factor: f64) -> Self {
        assert!(factor > 0.0 && factor.is_finite(), "invalid speed factor");
        self.speed_factor = factor;
        self
    }
}

/// Timing breakdown of the device-side phases of one invocation.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct GpuTimings {
    /// Host→device copy time.
    pub copy_in: Duration,
    /// Kernel occupancy (launch + compute).
    pub kernel: Duration,
    /// Device→host copy time.
    pub copy_out: Duration,
}

impl GpuTimings {
    /// Copy + compute total ("kernel time" in the paper's terminology).
    pub fn kernel_time(&self) -> Duration {
        self.copy_in + self.kernel + self.copy_out
    }

    /// The device-side phases as ordered `(name, duration)` sub-spans.
    /// The phases run back to back on the device, so a tracer can tile
    /// them backwards from the invocation's end instant.
    pub fn phases(&self) -> [(&'static str, Duration); 3] {
        [
            ("copy_in", self.copy_in),
            ("kernel_exec", self.kernel),
            ("copy_out", self.copy_out),
        ]
    }
}

struct GpuInner {
    id: DeviceId,
    profile: GpuProfile,
    compute: SharedProcessor,
    pcie: TransferEngine,
    exclusive: Semaphore,
    contexts: Cell<u32>,
    online: Cell<bool>,
}

/// A simulated GPU: demand-weighted spatially shared compute (MPS model)
/// plus a serialized PCIe copy engine.
///
/// # Examples
///
/// ```
/// use kaas_accel::{GpuDevice, GpuProfile, WorkUnits, DeviceId};
/// use kaas_simtime::Simulation;
///
/// let mut sim = Simulation::new();
/// let t = sim.block_on(async {
///     let gpu = GpuDevice::new(DeviceId(0), GpuProfile::p100());
///     let work = WorkUnits::new(7.0e10).with_bytes(1_200_000, 0);
///     gpu.execute(&work, 0.5, false).await.kernel_time()
/// });
/// assert!(t.as_secs_f64() > 0.01);
/// ```
#[derive(Clone)]
pub struct GpuDevice {
    inner: Rc<GpuInner>,
}

impl std::fmt::Debug for GpuDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GpuDevice")
            .field("id", &self.inner.id)
            .field("name", &self.inner.profile.name)
            .field("speed_factor", &self.inner.profile.speed_factor)
            .finish()
    }
}

impl GpuDevice {
    /// Creates a GPU with the given identity and profile.
    pub fn new(id: DeviceId, profile: GpuProfile) -> Self {
        GpuDevice {
            inner: Rc::new(GpuInner {
                id,
                compute: SharedProcessor::new(profile.effective_flops * profile.speed_factor),
                pcie: TransferEngine::new(profile.pcie_pinned_bps),
                exclusive: Semaphore::new(1),
                contexts: Cell::new(0),
                online: Cell::new(true),
                profile,
            }),
        }
    }

    /// Device identity.
    pub fn id(&self) -> DeviceId {
        self.inner.id
    }

    /// Whether the device is online (fault injection can flip this).
    pub fn is_online(&self) -> bool {
        self.inner.online.get()
    }

    /// Takes the device offline (or back online) — the fault-injection
    /// hook; an offline device serves no new work.
    pub fn set_online(&self, online: bool) {
        self.inner.online.set(online);
    }

    /// Static profile.
    pub fn profile(&self) -> &GpuProfile {
        &self.inner.profile
    }

    /// Creates a CUDA context: sleeps for the context-init cost and
    /// registers the context. Baselines call this per task; KaaS once per
    /// runner.
    pub async fn create_context(&self) {
        sleep(self.inner.profile.context_init).await;
        self.inner.contexts.set(self.inner.contexts.get() + 1);
    }

    /// Number of live contexts (≈ resident processes/runners).
    pub fn context_count(&self) -> u32 {
        self.inner.contexts.get()
    }

    /// Destroys a context (bookkeeping only; the paper's cleanup cost is
    /// charged via [`GpuProfile::process_cleanup`] by the delivery model).
    pub fn destroy_context(&self) {
        let c = self.inner.contexts.get();
        self.inner.contexts.set(c.saturating_sub(1));
    }

    /// Copies `bytes` host→device. `fresh` contexts pay the flat
    /// lazy-initialization penalty.
    pub async fn copy_in(&self, bytes: u64, fresh: bool) -> Duration {
        let extra = if fresh {
            self.inner.profile.fresh_copy_penalty
        } else {
            Duration::ZERO
        };
        self.inner.pcie.transfer(bytes, extra).await
    }

    /// Copies `bytes` device→host. `fresh` contexts pay the flat
    /// lazy-initialization penalty.
    pub async fn copy_out(&self, bytes: u64, fresh: bool) -> Duration {
        self.copy_in(bytes, fresh).await
    }

    /// Launches a kernel of `work` FLOPs (at the work's efficiency) with
    /// standalone occupancy `demand_ref` (scaled by the device's
    /// [`GpuProfile::demand_scale`]). Returns occupancy time.
    pub async fn launch_kernel(&self, work: &WorkUnits, demand_ref: f64) -> Duration {
        let p = &self.inner.profile;
        sleep(p.launch_overhead).await;
        let demand = (demand_ref * p.demand_scale).clamp(1e-3, 1.0);
        let scaled = work.flops / work.efficiency;
        p.launch_overhead + self.inner.compute.execute_with_demand(scaled, demand).await
    }

    /// Full device-side sequence for one invocation: copy-in, kernel,
    /// copy-out. `demand_ref` is the kernel's reference occupancy and
    /// `fresh` selects fresh-context copy rates.
    pub async fn execute(&self, work: &WorkUnits, demand_ref: f64, fresh: bool) -> GpuTimings {
        let copy_in = self.copy_in(work.bytes_in, fresh).await;
        let kernel = self.launch_kernel(work, demand_ref).await;
        let copy_out = self.copy_out(work.bytes_out, fresh).await;
        GpuTimings {
            copy_in,
            kernel,
            copy_out,
        }
    }

    /// Acquires the whole device (time-sharing / exclusive mode).
    pub async fn lock_exclusive(&self) -> SemaphoreGuard {
        self.inner.exclusive.acquire(1).await
    }

    /// Instantaneous compute utilization in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        self.inner.compute.current_load()
    }

    /// Number of kernels currently resident.
    pub fn active_kernels(&self) -> usize {
        self.inner.compute.active_jobs()
    }

    /// Utilization-weighted busy seconds (compute + copies).
    pub fn busy_seconds(&self) -> f64 {
        self.inner.compute.busy_seconds() + self.inner.pcie.busy_seconds()
    }

    /// Energy drawn over a window of `total` given this device's recorded
    /// busy time.
    pub fn energy_joules(&self, total: Duration) -> f64 {
        self.inner
            .profile
            .power
            .energy_joules(total, self.busy_seconds())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kaas_simtime::{spawn, Simulation};

    fn p100(id: u32) -> GpuDevice {
        GpuDevice::new(DeviceId(id), GpuProfile::p100())
    }

    #[test]
    fn kernel_time_scales_with_flops() {
        let mut sim = Simulation::new();
        let (t1, t2) = sim.block_on(async {
            let gpu = p100(0);
            let a = gpu.launch_kernel(&WorkUnits::new(3.0e12), 1.0).await;
            let b = gpu.launch_kernel(&WorkUnits::new(6.0e12), 1.0).await;
            (a, b)
        });
        assert!((t1.as_secs_f64() - 1.0).abs() < 1e-3, "t1={t1:?}");
        assert!((t2.as_secs_f64() - 2.0).abs() < 1e-3, "t2={t2:?}");
    }

    #[test]
    fn efficiency_stretches_kernel_time() {
        let mut sim = Simulation::new();
        let t = sim.block_on(async {
            let gpu = p100(0);
            gpu.launch_kernel(&WorkUnits::new(3.0e12).with_efficiency(0.5), 1.0)
                .await
        });
        assert!((t.as_secs_f64() - 2.0).abs() < 1e-3);
    }

    #[test]
    fn fresh_copies_pay_a_flat_penalty() {
        let mut sim = Simulation::new();
        let (warm, fresh) = sim.block_on(async {
            let gpu = p100(0);
            let w = gpu.copy_in(1_200_000_000, false).await;
            let f = gpu.copy_in(1_200_000_000, true).await;
            (w, f)
        });
        assert!((warm.as_secs_f64() - 0.1).abs() < 1e-6);
        // Same bandwidth plus the 25 ms lazy-init penalty.
        assert!(
            (fresh.as_secs_f64() - 0.125).abs() < 1e-6,
            "fresh={fresh:?}"
        );
    }

    #[test]
    fn two_heavy_kernels_contend_on_p100() {
        // MM-style kernels (reference demand 0.25, P100 scale 2.8 → 0.7
        // each) oversubscribe at 2 concurrent (Σ = 1.4): each slows by
        // the 1.4× contention factor.
        let mut sim = Simulation::new();
        let times = sim.block_on(async {
            let gpu = p100(0);
            let mut hs = Vec::new();
            for _ in 0..2 {
                let gpu = gpu.clone();
                hs.push(spawn(async move {
                    gpu.launch_kernel(&WorkUnits::new(3.0e12), 0.25).await
                }));
            }
            let mut out = Vec::new();
            for h in hs {
                out.push(h.await.as_secs_f64());
            }
            out
        });
        for t in &times {
            assert!((*t - 1.4).abs() < 1e-3, "expected 1.4 s shared, got {t}");
        }
    }

    #[test]
    fn four_light_kernels_coexist_on_v100() {
        // Fig. 13: a V100 absorbs four MM tasks without significant
        // slowdown (reference demand 0.25, scale 1.0 → Σ = 1.0): each
        // still runs at its standalone rate.
        let mut sim = Simulation::new();
        let times = sim.block_on(async {
            let gpu = GpuDevice::new(DeviceId(0), GpuProfile::v100());
            let mut hs = Vec::new();
            for _ in 0..4 {
                let gpu = gpu.clone();
                hs.push(spawn(async move {
                    gpu.launch_kernel(&WorkUnits::new(4.4e11), 0.25).await
                }));
            }
            let mut out = Vec::new();
            for h in hs {
                out.push(h.await.as_secs_f64());
            }
            out
        });
        for t in &times {
            assert!((*t - 0.1).abs() < 1e-2, "expected ~0.1 s unshared, got {t}");
        }
    }

    #[test]
    fn speed_factor_slows_the_unit() {
        let mut sim = Simulation::new();
        let (fast, slow) = sim.block_on(async {
            let fast = GpuDevice::new(DeviceId(0), GpuProfile::p100());
            let slow = GpuDevice::new(DeviceId(1), GpuProfile::p100().with_speed_factor(0.875));
            let w = WorkUnits::new(3.0e12);
            (
                fast.launch_kernel(&w, 1.0).await,
                slow.launch_kernel(&w, 1.0).await,
            )
        });
        let ratio = slow.as_secs_f64() / fast.as_secs_f64();
        assert!((ratio - 1.0 / 0.875).abs() < 1e-3, "ratio={ratio}");
    }

    #[test]
    fn context_lifecycle_tracks_count() {
        let mut sim = Simulation::new();
        sim.block_on(async {
            let gpu = p100(0);
            assert_eq!(gpu.context_count(), 0);
            gpu.create_context().await;
            gpu.create_context().await;
            assert_eq!(gpu.context_count(), 2);
            gpu.destroy_context();
            assert_eq!(gpu.context_count(), 1);
        });
    }

    #[test]
    fn context_creation_costs_410ms_on_p100() {
        let mut sim = Simulation::new();
        let t = sim.block_on(async {
            let gpu = p100(0);
            gpu.create_context().await;
            kaas_simtime::now()
        });
        assert_eq!(t.as_secs_f64(), 0.41);
    }

    #[test]
    fn exclusive_lock_serializes() {
        let mut sim = Simulation::new();
        let t = sim.block_on(async {
            let gpu = p100(0);
            let g2 = gpu.clone();
            let h = spawn(async move {
                let _g = g2.lock_exclusive().await;
                g2.launch_kernel(&WorkUnits::new(3.0e12), 1.0).await;
            });
            kaas_simtime::yield_now().await;
            let _g = gpu.lock_exclusive().await;
            gpu.launch_kernel(&WorkUnits::new(3.0e12), 1.0).await;
            h.await;
            kaas_simtime::now()
        });
        assert!((t.as_secs_f64() - 2.0).abs() < 1e-3, "t={t:?}");
    }

    #[test]
    fn energy_accounts_busy_and_idle() {
        let mut sim = Simulation::new();
        let joules = sim.block_on(async {
            let gpu = p100(0);
            // 1 s busy at full demand.
            gpu.launch_kernel(&WorkUnits::new(3.0e12), 1.0).await;
            kaas_simtime::sleep(Duration::from_secs(9)).await;
            gpu.energy_joules(Duration::from_secs(10))
        });
        // 10 s idle floor (30 W) + 1 s dynamic (220 W) = 520 J.
        assert!((joules - 520.0).abs() < 1.0, "joules={joules}");
    }
}
