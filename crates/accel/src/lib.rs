//! # kaas-accel — calibrated accelerator device models
//!
//! Simulated GPU, FPGA, TPU, QPU, and CPU devices for the KaaS
//! (Middleware '23) reproduction. Each model translates a
//! device-independent [`WorkUnits`] profile into virtual time through
//! throughput, bandwidth, and initialization constants calibrated against
//! the numbers the paper reports (each constant's doc comment cites its
//! source figure/section).
//!
//! The compute fabric of spatially shared devices is a demand-weighted
//! processor-sharing queue ([`SharedProcessor`]); copies ride serialized
//! [`TransferEngine`]s; energy is integrated per device from
//! utilization-weighted busy time ([`PowerProfile`]).
//!
//! ```
//! use kaas_accel::{GpuDevice, GpuProfile, DeviceId, WorkUnits};
//! use kaas_simtime::Simulation;
//!
//! let mut sim = Simulation::new();
//! let timings = sim.block_on(async {
//!     let gpu = GpuDevice::new(DeviceId(0), GpuProfile::p100());
//!     gpu.create_context().await;
//!     // 500×500 matrix multiplication, warm context.
//!     let n = 500u64;
//!     let work = WorkUnits::new(2.0 * (n as f64).powi(3))
//!         .with_bytes(2 * n * n * 8, n * n * 8)
//!         .with_efficiency(0.4);
//!     gpu.execute(&work, 0.25, false).await
//! });
//! assert!(timings.kernel_time().as_secs_f64() < 0.01);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cpu;
mod device;
mod fpga;
mod gpu;
mod memory;
mod power;
mod ps;
mod qpu;
mod tpu;
mod work;
mod xfer;

pub use cpu::{CpuDevice, CpuProfile};
pub use device::{Device, DeviceClass, DeviceId};
pub use fpga::{FpgaDevice, FpgaProfile, FpgaTimings};
pub use gpu::{GpuDevice, GpuProfile, GpuTimings};
pub use memory::{MemoryManager, OomError};
pub use power::PowerProfile;
pub use ps::SharedProcessor;
pub use qpu::{QpuDevice, QpuKind, QpuProfile};
pub use tpu::{TpuDevice, TpuProfile};
pub use work::{CircuitCost, WorkUnits};
pub use xfer::TransferEngine;
