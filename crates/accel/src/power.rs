//! Power modelling: per-device idle/active draw and energy accounting
//! (the paper's Fig. 10 reports FLOPS/W measured via RAPL and GPU power
//! counters; we integrate the same quantities analytically).

use std::time::Duration;

/// Idle and active power draw of a device in watts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerProfile {
    /// Draw while powered but idle.
    pub idle_w: f64,
    /// Draw while fully busy.
    pub active_w: f64,
}

impl PowerProfile {
    /// Creates a profile.
    ///
    /// # Panics
    ///
    /// Panics if `active_w < idle_w` or either is negative.
    pub fn new(idle_w: f64, active_w: f64) -> Self {
        assert!(idle_w >= 0.0 && active_w >= idle_w, "invalid power profile");
        PowerProfile { idle_w, active_w }
    }

    /// Nvidia Tesla P100 (250 W TDP).
    pub fn gpu_p100() -> Self {
        PowerProfile::new(30.0, 250.0)
    }

    /// Nvidia Tesla V100 SXM2 (300 W TDP).
    pub fn gpu_v100() -> Self {
        PowerProfile::new(35.0, 300.0)
    }

    /// Dual-socket Xeon server package power (RAPL view).
    pub fn cpu_dual_xeon() -> Self {
        PowerProfile::new(60.0, 270.0)
    }

    /// Alveo U250 data-center FPGA.
    pub fn fpga_u250() -> Self {
        PowerProfile::new(25.0, 110.0)
    }

    /// Single TPU v3 chip.
    pub fn tpu_v3_chip() -> Self {
        PowerProfile::new(35.0, 200.0)
    }

    /// Energy in joules for a window of `total` during which the device
    /// was busy for `busy_seconds`.
    ///
    /// `busy_seconds` is clamped to the window length.
    pub fn energy_joules(&self, total: Duration, busy_seconds: f64) -> f64 {
        let total_s = total.as_secs_f64();
        let busy = busy_seconds.clamp(0.0, total_s);
        self.idle_w * total_s + (self.active_w - self.idle_w) * busy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_only_window() {
        let p = PowerProfile::new(10.0, 100.0);
        let e = p.energy_joules(Duration::from_secs(5), 0.0);
        assert!((e - 50.0).abs() < 1e-9);
    }

    #[test]
    fn fully_busy_window() {
        let p = PowerProfile::new(10.0, 100.0);
        let e = p.energy_joules(Duration::from_secs(5), 5.0);
        assert!((e - 500.0).abs() < 1e-9);
    }

    #[test]
    fn busy_is_clamped_to_window() {
        let p = PowerProfile::new(10.0, 100.0);
        let e = p.energy_joules(Duration::from_secs(1), 10.0);
        assert!((e - 100.0).abs() < 1e-9);
    }

    #[test]
    fn mixed_window_interpolates() {
        let p = PowerProfile::new(0.0, 100.0);
        let e = p.energy_joules(Duration::from_secs(10), 2.5);
        assert!((e - 250.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "invalid power")]
    fn active_below_idle_rejected() {
        let _ = PowerProfile::new(100.0, 10.0);
    }
}
