//! CPU device model: the general-purpose host that runs clients, the KaaS
//! server, and CPU-only baselines.

use std::rc::Rc;
use std::time::Duration;

use crate::device::DeviceId;
use crate::power::PowerProfile;
use crate::ps::SharedProcessor;
use crate::work::WorkUnits;

/// Static parameters of a CPU (dual-socket server view).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuProfile {
    /// Marketing name.
    pub name: &'static str,
    /// Physical cores across sockets.
    pub cores: u32,
    /// Sustained aggregate throughput (parallel numba-class code) in
    /// FLOP/s.
    pub effective_flops: f64,
    /// Package power (RAPL view).
    pub power: PowerProfile,
    /// Cost of launching a bare Python client process (the thin KaaS
    /// client pays only this; Fig. 7's 123 ms small-task KaaS overhead is
    /// dominated by it).
    pub python_launch: Duration,
    /// Cost of importing the numeric stack (numpy/numba) for CPU-only
    /// compute programs; KaaS clients skip it ("our client code has no
    /// need to import the numba dependency", §5.1).
    pub runtime_import: Duration,
}

impl CpuProfile {
    /// Two 20-core Xeon E5-2698 v4 (the §5.1 GPU-host CPUs).
    pub fn xeon_e5_2698v4_dual() -> Self {
        CpuProfile {
            name: "2x Xeon E5-2698 v4",
            cores: 40,
            effective_flops: 140.0e9,
            power: PowerProfile::cpu_dual_xeon(),
            python_launch: Duration::from_millis(120),
            runtime_import: Duration::from_millis(350),
        }
    }

    /// Two 32-core AMD EPYC 7513 (the §5.3 remote-client host).
    pub fn epyc_7513_dual() -> Self {
        CpuProfile {
            name: "2x EPYC 7513",
            cores: 64,
            effective_flops: 260.0e9,
            power: PowerProfile::new(70.0, 330.0),
            python_launch: Duration::from_millis(110),
            runtime_import: Duration::from_millis(350),
        }
    }

    /// Two 10-core Xeon E5-2650 v3 (the Fig. 2 motivating-example host).
    pub fn xeon_e5_2650v3_dual() -> Self {
        CpuProfile {
            name: "2x Xeon E5-2650 v3",
            cores: 20,
            effective_flops: 70.0e9,
            power: PowerProfile::new(40.0, 210.0),
            python_launch: Duration::from_millis(130),
            runtime_import: Duration::from_millis(350),
        }
    }
}

struct CpuInner {
    id: DeviceId,
    profile: CpuProfile,
    compute: SharedProcessor,
    online: std::cell::Cell<bool>,
}

/// A simulated CPU with processor-sharing cores.
///
/// # Examples
///
/// ```
/// use kaas_accel::{CpuDevice, CpuProfile, WorkUnits, DeviceId};
/// use kaas_simtime::Simulation;
///
/// let mut sim = Simulation::new();
/// let t = sim.block_on(async {
///     let cpu = CpuDevice::new(DeviceId(0), CpuProfile::xeon_e5_2698v4_dual());
///     cpu.run(&WorkUnits::new(14.0e9)).await
/// });
/// assert!((t.as_secs_f64() - 0.1).abs() < 1e-6);
/// ```
#[derive(Clone)]
pub struct CpuDevice {
    inner: Rc<CpuInner>,
}

impl std::fmt::Debug for CpuDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CpuDevice")
            .field("id", &self.inner.id)
            .field("name", &self.inner.profile.name)
            .finish()
    }
}

impl CpuDevice {
    /// Creates a CPU with the given identity and profile.
    pub fn new(id: DeviceId, profile: CpuProfile) -> Self {
        CpuDevice {
            inner: Rc::new(CpuInner {
                id,
                compute: SharedProcessor::new(profile.effective_flops),
                online: std::cell::Cell::new(true),
                profile,
            }),
        }
    }

    /// Device identity.
    pub fn id(&self) -> DeviceId {
        self.inner.id
    }

    /// Whether the device is online (fault injection can flip this).
    pub fn is_online(&self) -> bool {
        self.inner.online.get()
    }

    /// Takes the device offline (or back online) — the fault-injection
    /// hook; an offline device serves no new work.
    pub fn set_online(&self, online: bool) {
        self.inner.online.set(online);
    }

    /// Static profile.
    pub fn profile(&self) -> &CpuProfile {
        &self.inner.profile
    }

    /// Runs `work` using all cores (demand 1), sharing with concurrent
    /// jobs. Returns the occupancy duration.
    pub async fn run(&self, work: &WorkUnits) -> Duration {
        self.run_with_demand(work, 1.0).await
    }

    /// Runs `work` at a core-fraction `demand` ∈ (0, 1].
    ///
    /// Accelerator-class kernels may carry a CPU-specific efficiency
    /// override (`WorkUnits::cpu_efficiency`); it takes precedence here.
    pub async fn run_with_demand(&self, work: &WorkUnits, demand: f64) -> Duration {
        let efficiency = work.cpu_efficiency.unwrap_or(work.efficiency);
        self.inner
            .compute
            .execute_with_demand(work.flops / efficiency, demand)
            .await
    }

    /// Utilization-weighted busy seconds.
    pub fn busy_seconds(&self) -> f64 {
        self.inner.compute.busy_seconds()
    }

    /// Instantaneous utilization in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        self.inner.compute.current_load()
    }

    /// Energy drawn over a window of `total`.
    pub fn energy_joules(&self, total: Duration) -> f64 {
        self.inner
            .profile
            .power
            .energy_joules(total, self.busy_seconds())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kaas_simtime::{spawn, Simulation};

    #[test]
    fn concurrent_jobs_share_cores() {
        let mut sim = Simulation::new();
        let times = sim.block_on(async {
            let cpu = CpuDevice::new(DeviceId(0), CpuProfile::xeon_e5_2698v4_dual());
            let mut hs = Vec::new();
            for _ in 0..2 {
                let cpu = cpu.clone();
                hs.push(spawn(async move { cpu.run(&WorkUnits::new(14.0e9)).await }));
            }
            let mut out = Vec::new();
            for h in hs {
                out.push(h.await.as_secs_f64());
            }
            out
        });
        for t in times {
            assert!(
                (t - 0.2).abs() < 1e-6,
                "two sharers double the time, got {t}"
            );
        }
    }

    #[test]
    fn cpu_is_much_slower_than_gpu_for_matmul() {
        let cpu = CpuProfile::xeon_e5_2698v4_dual();
        let gpu = crate::GpuProfile::p100();
        assert!(gpu.effective_flops / cpu.effective_flops > 4.0);
    }

    #[test]
    fn energy_includes_idle_floor() {
        let mut sim = Simulation::new();
        let j = sim.block_on(async {
            let cpu = CpuDevice::new(DeviceId(0), CpuProfile::xeon_e5_2698v4_dual());
            cpu.run(&WorkUnits::new(140.0e9)).await; // 1 s busy
            kaas_simtime::sleep(Duration::from_secs(1)).await;
            cpu.energy_joules(Duration::from_secs(2))
        });
        // 2 s × 60 W idle + 1 s × 210 W dynamic = 330 J.
        assert!((j - 330.0).abs() < 1.0, "j={j}");
    }
}
