//! QPU device model (IBM Quantum backends via a Qiskit-runtime-style
//! interface).
//!
//! Calibration (§5.6.4 / Fig. 17): the VQE "quantum kernel" is an
//! estimator primitive; the baseline pays session/runtime setup and
//! circuit transpilation on every estimator call, while KaaS calls into a
//! cached copy. Measured reductions in mean task completion: 34.9 %
//! (QASM simulator), 34.8 % (MPS simulator), 34.3 % (StateVector
//! simulator), 33.3 % (Falcon r5.11H), 27.3 % (Falcon r4T) — real
//! hardware gains less because queueing/shot time is paid either way.

use std::rc::Rc;
use std::time::Duration;

use kaas_simtime::sleep;
use kaas_simtime::sync::{Semaphore, SemaphoreGuard};

use crate::device::DeviceId;
use crate::work::CircuitCost;

/// What executes the circuits behind the backend interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QpuKind {
    /// Classical simulator sampling measurement outcomes (QASM-style).
    SamplingSimulator,
    /// Classical matrix-product-state simulator.
    MpsSimulator,
    /// Classical full state-vector simulator.
    StateVectorSimulator,
    /// A physical superconducting processor.
    Hardware,
}

/// Static parameters of a quantum backend.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QpuProfile {
    /// Backend name as reported by the provider.
    pub name: &'static str,
    /// Execution substrate.
    pub kind: QpuKind,
    /// Qubit capacity.
    pub qubits: u32,
    /// Per-call session/runtime setup the baseline pays every estimator
    /// call and KaaS pays once (cold).
    pub session_init: Duration,
    /// Circuit transpilation (classical), cached by KaaS.
    pub transpile: Duration,
    /// Queue wait per submitted job (hardware backends).
    pub queue_wait: Duration,
    /// Fixed per-job execution overhead.
    pub job_overhead: Duration,
    /// Per-gate execution cost (simulators scale with circuit width; we
    /// fold that into the per-gate figure for the evaluated circuits).
    pub per_gate: Duration,
    /// Per-shot sampling cost.
    pub per_shot: Duration,
}

impl QpuProfile {
    /// 32-qubit QASM sampling simulator.
    pub fn qasm_simulator() -> Self {
        QpuProfile {
            name: "QASM Sim.",
            kind: QpuKind::SamplingSimulator,
            qubits: 32,
            session_init: Duration::from_millis(360),
            transpile: Duration::from_millis(60),
            queue_wait: Duration::ZERO,
            job_overhead: Duration::from_millis(120),
            per_gate: Duration::from_micros(110),
            per_shot: Duration::from_micros(160),
        }
    }

    /// 100-qubit matrix-product-state simulator.
    pub fn mps_simulator() -> Self {
        QpuProfile {
            name: "MPS Sim.",
            kind: QpuKind::MpsSimulator,
            qubits: 100,
            session_init: Duration::from_millis(360),
            transpile: Duration::from_millis(65),
            queue_wait: Duration::ZERO,
            job_overhead: Duration::from_millis(130),
            per_gate: Duration::from_micros(140),
            per_shot: Duration::from_micros(155),
        }
    }

    /// 32-qubit Schrödinger wave-function simulator.
    pub fn statevector_simulator() -> Self {
        QpuProfile {
            name: "StateVector Sim.",
            kind: QpuKind::StateVectorSimulator,
            qubits: 32,
            session_init: Duration::from_millis(355),
            transpile: Duration::from_millis(60),
            queue_wait: Duration::ZERO,
            job_overhead: Duration::from_millis(110),
            per_gate: Duration::from_micros(150),
            per_shot: Duration::from_micros(150),
        }
    }

    /// IBM Falcon r5.11H, seven superconducting qubits.
    pub fn falcon_r5_11h() -> Self {
        QpuProfile {
            name: "Falcon r5.11H",
            kind: QpuKind::Hardware,
            qubits: 7,
            session_init: Duration::from_millis(340),
            transpile: Duration::from_millis(75),
            queue_wait: Duration::from_millis(230),
            job_overhead: Duration::from_millis(160),
            per_gate: Duration::ZERO,
            per_shot: Duration::from_micros(105),
        }
    }

    /// IBM Falcon r4T, five superconducting qubits.
    pub fn falcon_r4t() -> Self {
        QpuProfile {
            name: "Falcon r4T",
            kind: QpuKind::Hardware,
            qubits: 5,
            session_init: Duration::from_millis(340),
            transpile: Duration::from_millis(80),
            queue_wait: Duration::from_millis(420),
            job_overhead: Duration::from_millis(190),
            per_gate: Duration::ZERO,
            per_shot: Duration::from_micros(122),
        }
    }

    /// The five backends evaluated in Fig. 17, in plot order.
    pub fn figure17_backends() -> Vec<QpuProfile> {
        vec![
            Self::qasm_simulator(),
            Self::mps_simulator(),
            Self::statevector_simulator(),
            Self::falcon_r5_11h(),
            Self::falcon_r4t(),
        ]
    }

    /// Execution time of one job for `cost` (excludes session/transpile).
    pub fn job_time(&self, cost: &CircuitCost) -> Duration {
        self.queue_wait
            + self.job_overhead
            + self.per_gate * u32::try_from(cost.gates.min(u32::MAX as u64)).expect("bounded")
            + Duration::from_secs_f64(self.per_shot.as_secs_f64() * cost.shots as f64)
    }
}

struct QpuInner {
    id: DeviceId,
    profile: QpuProfile,
    lock: Semaphore,
    busy: std::cell::Cell<f64>,
    online: std::cell::Cell<bool>,
}

/// A simulated quantum backend executing one job at a time.
///
/// # Examples
///
/// ```
/// use kaas_accel::{QpuDevice, QpuProfile, CircuitCost, DeviceId};
/// use kaas_simtime::Simulation;
///
/// let mut sim = Simulation::new();
/// let t = sim.block_on(async {
///     let qpu = QpuDevice::new(DeviceId(0), QpuProfile::qasm_simulator());
///     qpu.execute(&CircuitCost { qubits: 4, gates: 60, shots: 1024 }).await
/// });
/// assert!(t.as_secs_f64() > 0.1);
/// ```
#[derive(Clone)]
pub struct QpuDevice {
    inner: Rc<QpuInner>,
}

impl std::fmt::Debug for QpuDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QpuDevice")
            .field("id", &self.inner.id)
            .field("name", &self.inner.profile.name)
            .finish()
    }
}

impl QpuDevice {
    /// Creates a backend with the given identity and profile.
    pub fn new(id: DeviceId, profile: QpuProfile) -> Self {
        QpuDevice {
            inner: Rc::new(QpuInner {
                id,
                lock: Semaphore::new(1),
                busy: std::cell::Cell::new(0.0),
                online: std::cell::Cell::new(true),
                profile,
            }),
        }
    }

    /// Device identity.
    pub fn id(&self) -> DeviceId {
        self.inner.id
    }

    /// Whether the device is online (fault injection can flip this).
    pub fn is_online(&self) -> bool {
        self.inner.online.get()
    }

    /// Takes the device offline (or back online) — the fault-injection
    /// hook; an offline device serves no new work.
    pub fn set_online(&self, online: bool) {
        self.inner.online.set(online);
    }

    /// Static profile.
    pub fn profile(&self) -> &QpuProfile {
        &self.inner.profile
    }

    /// Opens a runtime session (baseline: per estimator call; KaaS: once).
    pub async fn init_session(&self) {
        sleep(self.inner.profile.session_init).await;
    }

    /// Transpiles a circuit for this backend (cached by KaaS).
    pub async fn transpile(&self) {
        sleep(self.inner.profile.transpile).await;
    }

    /// Executes one job, serializing on the backend.
    ///
    /// # Panics
    ///
    /// Panics if the circuit needs more qubits than the backend has.
    pub async fn execute(&self, cost: &CircuitCost) -> Duration {
        assert!(
            cost.qubits <= self.inner.profile.qubits,
            "circuit needs {} qubits, backend {} has {}",
            cost.qubits,
            self.inner.profile.name,
            self.inner.profile.qubits
        );
        let _job = self.inner.lock.acquire(1).await;
        let d = self.inner.profile.job_time(cost);
        sleep(d).await;
        self.inner.busy.set(self.inner.busy.get() + d.as_secs_f64());
        d
    }

    /// Acquires the backend exclusively.
    pub async fn lock_exclusive(&self) -> SemaphoreGuard {
        self.inner.lock.acquire(1).await
    }

    /// Accumulated busy seconds.
    pub fn busy_seconds(&self) -> f64 {
        self.inner.busy.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kaas_simtime::Simulation;

    #[test]
    fn hardware_backends_pay_queue_wait() {
        let sim_t = QpuProfile::qasm_simulator().job_time(&CircuitCost {
            qubits: 4,
            gates: 0,
            shots: 0,
        });
        let hw_t = QpuProfile::falcon_r4t().job_time(&CircuitCost {
            qubits: 4,
            gates: 0,
            shots: 0,
        });
        assert!(hw_t > sim_t);
    }

    #[test]
    fn shots_scale_job_time() {
        let p = QpuProfile::qasm_simulator();
        let small = p.job_time(&CircuitCost {
            qubits: 4,
            gates: 10,
            shots: 100,
        });
        let big = p.job_time(&CircuitCost {
            qubits: 4,
            gates: 10,
            shots: 10_000,
        });
        assert!(big > small);
    }

    #[test]
    #[should_panic(expected = "qubits")]
    fn oversized_circuit_rejected() {
        let mut sim = Simulation::new();
        sim.block_on(async {
            let qpu = QpuDevice::new(DeviceId(0), QpuProfile::falcon_r4t());
            qpu.execute(&CircuitCost {
                qubits: 12,
                gates: 1,
                shots: 1,
            })
            .await;
        });
    }

    #[test]
    fn figure17_has_five_backends() {
        let backends = QpuProfile::figure17_backends();
        assert_eq!(backends.len(), 5);
        assert_eq!(
            backends
                .iter()
                .filter(|b| b.kind == QpuKind::Hardware)
                .count(),
            2
        );
    }

    #[test]
    fn busy_seconds_accumulate() {
        let mut sim = Simulation::new();
        let busy = sim.block_on(async {
            let qpu = QpuDevice::new(DeviceId(0), QpuProfile::statevector_simulator());
            let c = CircuitCost {
                qubits: 4,
                gates: 100,
                shots: 1000,
            };
            let d = qpu.execute(&c).await;
            assert!((qpu.busy_seconds() - d.as_secs_f64()).abs() < 1e-9);
            qpu.busy_seconds()
        });
        assert!(busy > 0.0);
    }
}
