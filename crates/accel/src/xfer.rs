//! [`TransferEngine`]: a serialized DMA/PCIe copy engine.

use std::cell::Cell;
use std::rc::Rc;
use std::time::Duration;

use kaas_simtime::sleep;
use kaas_simtime::sync::Semaphore;

/// A copy engine that serializes transfers (one DMA at a time, FIFO) at a
/// fixed byte rate — the PCIe link of a GPU, the DMA engine of an FPGA.
///
/// # Examples
///
/// ```
/// use kaas_accel::TransferEngine;
/// use kaas_simtime::Simulation;
/// use std::time::Duration;
///
/// let mut sim = Simulation::new();
/// let d = sim.block_on(async {
///     let pcie = TransferEngine::new(12.0e9); // 12 GB/s
///     pcie.transfer(12_000_000, Duration::ZERO).await
/// });
/// assert!((d.as_secs_f64() - 0.001).abs() < 1e-9);
/// ```
#[derive(Clone)]
pub struct TransferEngine {
    bytes_per_sec: f64,
    lock: Semaphore,
    busy_secs: Rc<Cell<f64>>,
}

impl std::fmt::Debug for TransferEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TransferEngine")
            .field("bytes_per_sec", &self.bytes_per_sec)
            .field("busy_secs", &self.busy_secs.get())
            .finish()
    }
}

impl TransferEngine {
    /// Creates an engine with the given copy bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` is not strictly positive and finite.
    pub fn new(bytes_per_sec: f64) -> Self {
        assert!(
            bytes_per_sec > 0.0 && bytes_per_sec.is_finite(),
            "bandwidth must be positive and finite"
        );
        TransferEngine {
            bytes_per_sec,
            lock: Semaphore::new(1),
            busy_secs: Rc::new(Cell::new(0.0)),
        }
    }

    /// Copies `bytes`, plus a fixed `extra` overhead (e.g. a lazy-init
    /// penalty on the first copy in a fresh context). Transfers queue
    /// FIFO. Returns the time spent holding the engine.
    pub async fn transfer(&self, bytes: u64, extra: Duration) -> Duration {
        let _guard = self.lock.acquire(1).await;
        let d = Duration::from_secs_f64(bytes as f64 / self.bytes_per_sec) + extra;
        sleep(d).await;
        self.busy_secs.set(self.busy_secs.get() + d.as_secs_f64());
        d
    }

    /// Configured bandwidth.
    pub fn bytes_per_sec(&self) -> f64 {
        self.bytes_per_sec
    }

    /// Accumulated seconds the engine has spent copying.
    pub fn busy_seconds(&self) -> f64 {
        self.busy_secs.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kaas_simtime::{now, spawn, Simulation};

    #[test]
    fn transfers_serialize_fifo() {
        let mut sim = Simulation::new();
        let t = sim.block_on(async {
            let eng = TransferEngine::new(1e6);
            let mut hs = Vec::new();
            for _ in 0..2 {
                let e = eng.clone();
                hs.push(spawn(async move {
                    e.transfer(500_000, Duration::ZERO).await;
                }));
            }
            eng.transfer(500_000, Duration::ZERO).await;
            for h in hs {
                h.await;
            }
            now()
        });
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-9, "t={t:?}");
    }

    #[test]
    fn extra_overhead_is_added() {
        let mut sim = Simulation::new();
        let d = sim.block_on(async {
            TransferEngine::new(1e9)
                .transfer(0, Duration::from_millis(80))
                .await
        });
        assert_eq!(d, Duration::from_millis(80));
    }

    #[test]
    fn busy_seconds_accumulate() {
        let mut sim = Simulation::new();
        let busy = sim.block_on(async {
            let eng = TransferEngine::new(1e6);
            eng.transfer(1_000_000, Duration::ZERO).await;
            eng.transfer(2_000_000, Duration::ZERO).await;
            eng.busy_seconds()
        });
        assert!((busy - 3.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn invalid_bandwidth_rejected() {
        let _ = TransferEngine::new(f64::NAN);
    }
}
