//! Common device identity types and the heterogeneous [`Device`] wrapper.

use std::time::Duration;

use crate::cpu::CpuDevice;
use crate::fpga::FpgaDevice;
use crate::gpu::GpuDevice;
use crate::qpu::QpuDevice;
use crate::tpu::TpuDevice;

/// The accelerator families KaaS targets (§4.2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DeviceClass {
    /// General-purpose host processors.
    Cpu,
    /// Graphics processing units.
    Gpu,
    /// Field-programmable gate arrays.
    Fpga,
    /// Tensor processing units.
    Tpu,
    /// Quantum processing units.
    Qpu,
}

impl std::fmt::Display for DeviceClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DeviceClass::Cpu => "CPU",
            DeviceClass::Gpu => "GPU",
            DeviceClass::Fpga => "FPGA",
            DeviceClass::Tpu => "TPU",
            DeviceClass::Qpu => "QPU",
        };
        f.write_str(s)
    }
}

/// Identity of a physical device within a deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DeviceId(pub u32);

impl std::fmt::Display for DeviceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "dev{}", self.0)
    }
}

/// A heterogeneous device handle (enum dispatch over the five families).
///
/// Cloning is cheap: devices are shared handles onto the same simulated
/// hardware.
#[derive(Debug, Clone)]
pub enum Device {
    /// A CPU.
    Cpu(CpuDevice),
    /// A GPU.
    Gpu(GpuDevice),
    /// An FPGA.
    Fpga(FpgaDevice),
    /// A TPU board.
    Tpu(TpuDevice),
    /// A quantum backend.
    Qpu(QpuDevice),
}

impl Device {
    /// The device's family.
    pub fn class(&self) -> DeviceClass {
        match self {
            Device::Cpu(_) => DeviceClass::Cpu,
            Device::Gpu(_) => DeviceClass::Gpu,
            Device::Fpga(_) => DeviceClass::Fpga,
            Device::Tpu(_) => DeviceClass::Tpu,
            Device::Qpu(_) => DeviceClass::Qpu,
        }
    }

    /// The device's identity.
    pub fn id(&self) -> DeviceId {
        match self {
            Device::Cpu(d) => d.id(),
            Device::Gpu(d) => d.id(),
            Device::Fpga(d) => d.id(),
            Device::Tpu(d) => d.id(),
            Device::Qpu(d) => d.id(),
        }
    }

    /// Human-readable model name.
    pub fn name(&self) -> &'static str {
        match self {
            Device::Cpu(d) => d.profile().name,
            Device::Gpu(d) => d.profile().name,
            Device::Fpga(d) => d.profile().name,
            Device::Tpu(d) => d.profile().name,
            Device::Qpu(d) => d.profile().name,
        }
    }

    /// Per-process runtime/library initialization cost for this device's
    /// toolchain (numba, PyLog/PYNQ, TensorFlow, Qiskit session) — the
    /// overhead baselines pay per task and KaaS pays once per runner.
    pub fn runtime_init(&self) -> Duration {
        match self {
            Device::Cpu(_) => Duration::ZERO,
            Device::Gpu(d) => d.profile().runtime_import,
            Device::Fpga(d) => d.profile().runtime_init,
            Device::Tpu(d) => d.profile().runtime_init,
            Device::Qpu(d) => d.profile().session_init,
        }
    }

    /// Device context/session creation cost (CUDA context, XLA compile,
    /// circuit transpilation).
    pub fn context_init(&self) -> Duration {
        match self {
            Device::Cpu(_) => Duration::ZERO,
            Device::Gpu(d) => d.profile().context_init,
            Device::Fpga(_) => Duration::ZERO,
            Device::Tpu(d) => d.profile().xla_compile,
            Device::Qpu(d) => d.profile().transpile,
        }
    }

    /// Whether the device is online. Offline devices (see
    /// [`set_online`](Device::set_online)) host no new runners and fail
    /// in-flight work — the fault-injection model of a device dropping
    /// off the bus / out of the cluster.
    pub fn is_online(&self) -> bool {
        match self {
            Device::Cpu(d) => d.is_online(),
            Device::Gpu(d) => d.is_online(),
            Device::Fpga(d) => d.is_online(),
            Device::Tpu(d) => d.is_online(),
            Device::Qpu(d) => d.is_online(),
        }
    }

    /// Takes the device offline (or back online). Shared across every
    /// clone of the handle: the fault-injection hook used to simulate
    /// device flaps.
    pub fn set_online(&self, online: bool) {
        match self {
            Device::Cpu(d) => d.set_online(online),
            Device::Gpu(d) => d.set_online(online),
            Device::Fpga(d) => d.set_online(online),
            Device::Tpu(d) => d.set_online(online),
            Device::Qpu(d) => d.set_online(online),
        }
    }

    /// Device memory capacity in bytes — the budget the data plane's
    /// per-device [`MemoryManager`](crate::MemoryManager) manages. GPUs
    /// report their profile's HBM size; the other families use fixed
    /// representative capacities (host DRAM for CPUs, on-card DDR for
    /// FPGAs, per-board HBM for TPUs, a small classical staging buffer
    /// for QPU control stacks).
    pub fn mem_bytes(&self) -> u64 {
        const GIB: u64 = 1 << 30;
        match self {
            Device::Cpu(_) => 256 * GIB,
            Device::Gpu(d) => d.profile().mem_bytes,
            Device::Fpga(_) => 64 * GIB,
            Device::Tpu(_) => 128 * GIB,
            Device::Qpu(_) => GIB,
        }
    }

    /// Accumulated utilization-weighted busy time, in device-seconds
    /// (dispatches to each family's own accounting). Divide by elapsed
    /// virtual time for a utilization fraction.
    pub fn busy_seconds(&self) -> f64 {
        match self {
            Device::Cpu(d) => d.busy_seconds(),
            Device::Gpu(d) => d.busy_seconds(),
            Device::Fpga(d) => d.busy_seconds(),
            Device::Tpu(d) => d.busy_seconds(),
            Device::Qpu(d) => d.busy_seconds(),
        }
    }

    /// Borrows the GPU handle.
    ///
    /// # Panics
    ///
    /// Panics if the device is not a GPU.
    pub fn as_gpu(&self) -> &GpuDevice {
        match self {
            Device::Gpu(d) => d,
            other => panic!("expected a GPU, found {}", other.class()),
        }
    }

    /// Borrows the CPU handle.
    ///
    /// # Panics
    ///
    /// Panics if the device is not a CPU.
    pub fn as_cpu(&self) -> &CpuDevice {
        match self {
            Device::Cpu(d) => d,
            other => panic!("expected a CPU, found {}", other.class()),
        }
    }

    /// Borrows the FPGA handle.
    ///
    /// # Panics
    ///
    /// Panics if the device is not an FPGA.
    pub fn as_fpga(&self) -> &FpgaDevice {
        match self {
            Device::Fpga(d) => d,
            other => panic!("expected an FPGA, found {}", other.class()),
        }
    }

    /// Borrows the TPU handle.
    ///
    /// # Panics
    ///
    /// Panics if the device is not a TPU.
    pub fn as_tpu(&self) -> &TpuDevice {
        match self {
            Device::Tpu(d) => d,
            other => panic!("expected a TPU, found {}", other.class()),
        }
    }

    /// Borrows the QPU handle.
    ///
    /// # Panics
    ///
    /// Panics if the device is not a QPU.
    pub fn as_qpu(&self) -> &QpuDevice {
        match self {
            Device::Qpu(d) => d,
            other => panic!("expected a QPU, found {}", other.class()),
        }
    }
}

impl From<CpuDevice> for Device {
    fn from(d: CpuDevice) -> Self {
        Device::Cpu(d)
    }
}
impl From<GpuDevice> for Device {
    fn from(d: GpuDevice) -> Self {
        Device::Gpu(d)
    }
}
impl From<FpgaDevice> for Device {
    fn from(d: FpgaDevice) -> Self {
        Device::Fpga(d)
    }
}
impl From<TpuDevice> for Device {
    fn from(d: TpuDevice) -> Self {
        Device::Tpu(d)
    }
}
impl From<QpuDevice> for Device {
    fn from(d: QpuDevice) -> Self {
        Device::Qpu(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CpuProfile, FpgaProfile, GpuProfile, QpuProfile, TpuProfile};

    fn all_devices() -> Vec<Device> {
        vec![
            CpuDevice::new(DeviceId(0), CpuProfile::xeon_e5_2698v4_dual()).into(),
            GpuDevice::new(DeviceId(1), GpuProfile::p100()).into(),
            FpgaDevice::new(DeviceId(2), FpgaProfile::alveo_u250()).into(),
            TpuDevice::new(DeviceId(3), TpuProfile::v3_8()).into(),
            QpuDevice::new(DeviceId(4), QpuProfile::qasm_simulator()).into(),
        ]
    }

    #[test]
    fn classes_cover_all_families() {
        let classes: Vec<DeviceClass> = all_devices().iter().map(Device::class).collect();
        assert_eq!(
            classes,
            vec![
                DeviceClass::Cpu,
                DeviceClass::Gpu,
                DeviceClass::Fpga,
                DeviceClass::Tpu,
                DeviceClass::Qpu
            ]
        );
    }

    #[test]
    fn ids_and_names_roundtrip() {
        for (i, d) in all_devices().iter().enumerate() {
            assert_eq!(d.id(), DeviceId(i as u32));
            assert!(!d.name().is_empty());
        }
    }

    #[test]
    fn accelerators_have_nonzero_runtime_init() {
        for d in all_devices() {
            if d.class() != DeviceClass::Cpu {
                assert!(d.runtime_init() > Duration::ZERO, "{}", d.class());
            }
        }
    }

    #[test]
    fn online_flag_is_shared_across_clones() {
        for d in all_devices() {
            let clone = d.clone();
            assert!(d.is_online());
            clone.set_online(false);
            assert!(!d.is_online(), "{}", d.class());
            d.set_online(true);
            assert!(clone.is_online());
        }
    }

    #[test]
    #[should_panic(expected = "expected a GPU")]
    fn wrong_downcast_panics() {
        let d: Device = CpuDevice::new(DeviceId(0), CpuProfile::epyc_7513_dual()).into();
        let _ = d.as_gpu();
    }

    #[test]
    fn every_family_reports_memory_capacity() {
        for d in all_devices() {
            assert!(d.mem_bytes() > 0, "{}", d.class());
        }
        let gpu: Device = GpuDevice::new(DeviceId(1), GpuProfile::p100()).into();
        assert_eq!(gpu.mem_bytes(), 16 * (1u64 << 30));
    }

    #[test]
    fn display_formats() {
        assert_eq!(DeviceClass::Gpu.to_string(), "GPU");
        assert_eq!(DeviceId(3).to_string(), "dev3");
    }
}
