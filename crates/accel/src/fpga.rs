//! FPGA device model (Xilinx Alveo U250 class, PyLog/PYNQ toolchain).
//!
//! Calibration (Fig. 15 of the paper): KaaS reduces mean task completion
//! by 68.5 % (histogram) and 74.9 % (bitmap conversion) by keeping "the
//! FPGA and PyLog initialized for subsequent executions". PyLog-generated
//! kernels run orders of magnitude slower than hand-tuned RTL ("hand-tuned
//! kernels show completion times between 80 and 100 ms on our test
//! system" while the PyLog versions sit at ~0.4 s): our cycle counts model
//! the PyLog pipeline, not hand-tuned IP. Bitstream configuration ("tens
//! of seconds") is excluded, as in the paper.

use std::rc::Rc;
use std::time::Duration;

use kaas_simtime::sleep;
use kaas_simtime::sync::{Semaphore, SemaphoreGuard};

use crate::device::DeviceId;
use crate::power::PowerProfile;
use crate::work::WorkUnits;
use crate::xfer::TransferEngine;

/// Static parameters of an FPGA card.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FpgaProfile {
    /// Marketing name.
    pub name: &'static str,
    /// Kernel clock for PyLog-generated pipelines.
    pub clock_hz: f64,
    /// DMA bandwidth to off-chip card memory.
    pub dma_bps: f64,
    /// Per-process PYNQ/PyLog runtime initialization (overlay handle,
    /// driver setup) — the overhead KaaS amortizes.
    pub runtime_init: Duration,
    /// Per-invocation Python dispatch cost inside the runtime.
    pub dispatch_overhead: Duration,
    /// Full bitstream configuration (excluded from task timings; kept for
    /// documentation and deploy-time modelling).
    pub bitstream_config: Duration,
    /// Idle/active power.
    pub power: PowerProfile,
}

impl FpgaProfile {
    /// Xilinx Alveo U250 (the §5.6.2 testbed).
    pub fn alveo_u250() -> Self {
        FpgaProfile {
            name: "Alveo U250",
            clock_hz: 300.0e6,
            dma_bps: 6.0e9,
            runtime_init: Duration::from_millis(1_150),
            dispatch_overhead: Duration::from_millis(6),
            bitstream_config: Duration::from_secs(28),
            power: PowerProfile::fpga_u250(),
        }
    }
}

/// Timing breakdown of one FPGA kernel execution.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FpgaTimings {
    /// DMA host→card.
    pub dma_in: Duration,
    /// Pipeline execution.
    pub kernel: Duration,
    /// DMA card→host.
    pub dma_out: Duration,
}

impl FpgaTimings {
    /// Copy + compute total.
    pub fn kernel_time(&self) -> Duration {
        self.dma_in + self.kernel + self.dma_out
    }

    /// The device-side phases as ordered `(name, duration)` sub-spans
    /// (see [`GpuTimings::phases`](crate::GpuTimings::phases)).
    pub fn phases(&self) -> [(&'static str, Duration); 3] {
        [
            ("copy_in", self.dma_in),
            ("kernel_exec", self.kernel),
            ("copy_out", self.dma_out),
        ]
    }
}

struct FpgaInner {
    id: DeviceId,
    profile: FpgaProfile,
    lock: Semaphore,
    dma: TransferEngine,
    busy: std::cell::Cell<f64>,
    online: std::cell::Cell<bool>,
}

/// A simulated FPGA: one kernel at a time (PyLog offers no spatial
/// sharing — §4.2), serialized DMA, and a cycle-accurate pipeline model.
///
/// # Examples
///
/// ```
/// use kaas_accel::{FpgaDevice, FpgaProfile, WorkUnits, DeviceId};
/// use kaas_simtime::Simulation;
///
/// let mut sim = Simulation::new();
/// let t = sim.block_on(async {
///     let fpga = FpgaDevice::new(DeviceId(0), FpgaProfile::alveo_u250());
///     let work = WorkUnits::new(0.0)
///         .with_bytes(8_390_016, 1024)
///         .with_fpga_cycles(117_000_000.0);
///     fpga.execute(&work).await.kernel_time()
/// });
/// assert!(t.as_secs_f64() > 0.3);
/// ```
#[derive(Clone)]
pub struct FpgaDevice {
    inner: Rc<FpgaInner>,
}

impl std::fmt::Debug for FpgaDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FpgaDevice")
            .field("id", &self.inner.id)
            .field("name", &self.inner.profile.name)
            .finish()
    }
}

impl FpgaDevice {
    /// Creates an FPGA with the given identity and profile.
    pub fn new(id: DeviceId, profile: FpgaProfile) -> Self {
        FpgaDevice {
            inner: Rc::new(FpgaInner {
                id,
                lock: Semaphore::new(1),
                dma: TransferEngine::new(profile.dma_bps),
                busy: std::cell::Cell::new(0.0),
                online: std::cell::Cell::new(true),
                profile,
            }),
        }
    }

    /// Device identity.
    pub fn id(&self) -> DeviceId {
        self.inner.id
    }

    /// Whether the device is online (fault injection can flip this).
    pub fn is_online(&self) -> bool {
        self.inner.online.get()
    }

    /// Takes the device offline (or back online) — the fault-injection
    /// hook; an offline device serves no new work.
    pub fn set_online(&self, online: bool) {
        self.inner.online.set(online);
    }

    /// Static profile.
    pub fn profile(&self) -> &FpgaProfile {
        &self.inner.profile
    }

    /// Initializes the PYNQ/PyLog runtime (baselines pay this per task;
    /// KaaS once per runner).
    pub async fn init_runtime(&self) {
        sleep(self.inner.profile.runtime_init).await;
    }

    /// Runs one kernel: waits for the (exclusive) fabric, DMAs input,
    /// executes `fpga_cycles` at the kernel clock, DMAs output.
    pub async fn execute(&self, work: &WorkUnits) -> FpgaTimings {
        let p = &self.inner.profile;
        let _fabric = self.inner.lock.acquire(1).await;
        sleep(p.dispatch_overhead).await;
        let dma_in = self.inner.dma.transfer(work.bytes_in, Duration::ZERO).await;
        let kernel = Duration::from_secs_f64(work.fpga_cycles / p.clock_hz);
        sleep(kernel).await;
        let dma_out = self
            .inner
            .dma
            .transfer(work.bytes_out, Duration::ZERO)
            .await;
        let t = FpgaTimings {
            dma_in,
            kernel,
            dma_out,
        };
        self.inner
            .busy
            .set(self.inner.busy.get() + t.kernel_time().as_secs_f64());
        t
    }

    /// Acquires the fabric exclusively (for multi-kernel compositions).
    pub async fn lock_exclusive(&self) -> SemaphoreGuard {
        self.inner.lock.acquire(1).await
    }

    /// Accumulated busy seconds.
    pub fn busy_seconds(&self) -> f64 {
        self.inner.busy.get()
    }

    /// Energy drawn over a window of `total`.
    pub fn energy_joules(&self, total: Duration) -> f64 {
        self.inner
            .profile
            .power
            .energy_joules(total, self.busy_seconds())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kaas_simtime::{now, spawn, Simulation};

    fn u250() -> FpgaDevice {
        FpgaDevice::new(DeviceId(0), FpgaProfile::alveo_u250())
    }

    #[test]
    fn kernel_time_is_cycles_over_clock() {
        let mut sim = Simulation::new();
        let t = sim.block_on(async {
            let fpga = u250();
            let w = WorkUnits::new(0.0).with_fpga_cycles(300.0e6);
            fpga.execute(&w).await.kernel
        });
        assert!((t.as_secs_f64() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn executions_serialize_on_the_fabric() {
        let mut sim = Simulation::new();
        let t = sim.block_on(async {
            let fpga = u250();
            let f2 = fpga.clone();
            let w = WorkUnits::new(0.0).with_fpga_cycles(300.0e6);
            let h = spawn(async move { f2.execute(&w).await });
            fpga.execute(&w).await;
            h.await;
            now()
        });
        // Two 1 s kernels + 2×6 ms dispatch must serialize.
        assert!((t.as_secs_f64() - 2.012).abs() < 1e-6, "t={t:?}");
    }

    #[test]
    fn dma_time_matches_bandwidth() {
        let mut sim = Simulation::new();
        let t = sim.block_on(async {
            let fpga = u250();
            let w = WorkUnits::new(0.0).with_bytes(6_000_000_000, 0);
            fpga.execute(&w).await.dma_in
        });
        assert!((t.as_secs_f64() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn runtime_init_is_the_big_cost() {
        // The whole point of KaaS on FPGAs: init ≫ typical kernel time.
        let p = FpgaProfile::alveo_u250();
        assert!(p.runtime_init > Duration::from_millis(500));
    }

    #[test]
    fn busy_seconds_accumulate() {
        let mut sim = Simulation::new();
        let busy = sim.block_on(async {
            let fpga = u250();
            let w = WorkUnits::new(0.0).with_fpga_cycles(150.0e6);
            fpga.execute(&w).await;
            fpga.execute(&w).await;
            fpga.busy_seconds()
        });
        assert!((busy - 1.0).abs() < 1e-9, "busy={busy}");
    }
}
