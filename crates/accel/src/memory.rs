//! [`MemoryManager`]: runtime-managed device memory residency.
//!
//! Once accelerator memory is decoupled from the application (the KaaS
//! runner owns the device, not the client process), *something* must
//! decide which uploaded objects stay resident and which get evicted
//! under pressure. The manager tracks one device's capacity and the set
//! of content-addressed objects currently resident on it, serving the
//! data plane's cache decisions:
//!
//! * [`insert`](MemoryManager::insert) admits an object, evicting
//!   least-recently-used victims until it fits — or fails with
//!   [`OomError`] when pinned/in-use objects block the space.
//! * [`pin`](MemoryManager::pin) protects an object from eviction
//!   permanently; [`retain`](MemoryManager::retain) /
//!   [`release`](MemoryManager::release) refcount objects while an
//!   invocation reads them, so in-flight operands are never evicted.
//! * [`clear`](MemoryManager::clear) models the total loss of device
//!   state when the owning runner process dies.
//!
//! Recency is a logical clock (bumped per touch), not wall time, so
//! identical operation sequences evict identically — the determinism
//! contract the rest of the simulation relies on. Ties (same clock
//! value, impossible through the public API but cheap to defend) break
//! by object hash.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;

/// Why an object could not be admitted into device memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OomError {
    /// Bytes the rejected object needed.
    pub requested: u64,
    /// Total device memory capacity.
    pub capacity: u64,
    /// Bytes that could have been freed by evicting unpinned, idle
    /// objects (everything else is pinned or referenced in flight).
    pub evictable: u64,
}

impl std::fmt::Display for OomError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "need {} B but only {} B evictable of {} B capacity",
            self.requested, self.evictable, self.capacity
        )
    }
}

impl std::error::Error for OomError {}

#[derive(Debug, Clone, Copy)]
struct Resident {
    bytes: u64,
    pinned: bool,
    refs: u32,
    last_use: u64,
}

/// Tracks which content-addressed objects are resident in one device's
/// memory: capacity accounting, LRU eviction, pinning, and in-flight
/// refcounts.
///
/// # Examples
///
/// ```
/// use kaas_accel::MemoryManager;
///
/// let mm = MemoryManager::new(100);
/// mm.insert(1, 60).unwrap();
/// mm.insert(2, 60).unwrap(); // evicts object 1 (LRU)
/// assert!(!mm.contains(1));
/// assert!(mm.contains(2));
/// assert_eq!(mm.evictions(), 1);
/// ```
#[derive(Debug)]
pub struct MemoryManager {
    capacity: u64,
    objects: RefCell<BTreeMap<u64, Resident>>,
    bytes_resident: Cell<u64>,
    clock: Cell<u64>,
    evictions: Cell<u64>,
    ref_underflows: Cell<u64>,
}

impl MemoryManager {
    /// Creates a manager for a device with `capacity` bytes of memory.
    pub fn new(capacity: u64) -> Self {
        MemoryManager {
            capacity,
            objects: RefCell::new(BTreeMap::new()),
            bytes_resident: Cell::new(0),
            clock: Cell::new(0),
            evictions: Cell::new(0),
            ref_underflows: Cell::new(0),
        }
    }

    /// Total device memory capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently resident. Never exceeds
    /// [`capacity`](MemoryManager::capacity).
    pub fn bytes_resident(&self) -> u64 {
        self.bytes_resident.get()
    }

    /// Objects evicted under pressure so far.
    pub fn evictions(&self) -> u64 {
        self.evictions.get()
    }

    /// Whether the object is resident.
    pub fn contains(&self, hash: u64) -> bool {
        self.objects.borrow().contains_key(&hash)
    }

    /// Number of resident objects.
    pub fn len(&self) -> usize {
        self.objects.borrow().len()
    }

    /// Whether nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.objects.borrow().is_empty()
    }

    /// Resident object hashes in ascending order.
    pub fn resident(&self) -> Vec<u64> {
        self.objects.borrow().keys().copied().collect()
    }

    fn tick(&self) -> u64 {
        let t = self.clock.get() + 1;
        self.clock.set(t);
        t
    }

    /// Marks the object most-recently-used (a cache hit). Returns
    /// whether it was resident.
    pub fn touch(&self, hash: u64) -> bool {
        let mut objects = self.objects.borrow_mut();
        match objects.get_mut(&hash) {
            Some(o) => {
                o.last_use = self.tick();
                true
            }
            None => false,
        }
    }

    /// Admits an object of `bytes`, evicting least-recently-used
    /// unpinned, unreferenced objects until it fits. Returns the evicted
    /// hashes (oldest first). Inserting an already-resident object just
    /// touches it.
    ///
    /// # Errors
    ///
    /// [`OomError`] when the object exceeds capacity outright or every
    /// candidate victim is pinned or referenced in flight. Nothing is
    /// evicted on failure.
    pub fn insert(&self, hash: u64, bytes: u64) -> Result<Vec<u64>, OomError> {
        if self.touch(hash) {
            return Ok(Vec::new());
        }
        let oom = |evictable| OomError {
            requested: bytes,
            capacity: self.capacity,
            evictable,
        };
        if bytes > self.capacity {
            return Err(oom(self.evictable_bytes()));
        }
        // Plan the evictions first so a failed admission changes nothing.
        let mut victims = Vec::new();
        {
            let objects = self.objects.borrow();
            let mut need = (self.bytes_resident.get() + bytes).saturating_sub(self.capacity);
            let mut candidates: Vec<(&u64, &Resident)> = objects
                .iter()
                .filter(|(_, o)| !o.pinned && o.refs == 0)
                .collect();
            candidates.sort_by_key(|(h, o)| (o.last_use, **h));
            for (h, o) in candidates {
                if need == 0 {
                    break;
                }
                victims.push(*h);
                need = need.saturating_sub(o.bytes);
            }
            if need > 0 {
                return Err(oom(self.evictable_bytes()));
            }
        }
        for victim in &victims {
            let o = self
                .objects
                .borrow_mut()
                .remove(victim)
                .expect("planned victim is resident");
            self.bytes_resident.set(self.bytes_resident.get() - o.bytes);
            self.evictions.set(self.evictions.get() + 1);
        }
        self.objects.borrow_mut().insert(
            hash,
            Resident {
                bytes,
                pinned: false,
                refs: 0,
                last_use: self.tick(),
            },
        );
        self.bytes_resident.set(self.bytes_resident.get() + bytes);
        Ok(victims)
    }

    fn evictable_bytes(&self) -> u64 {
        self.objects
            .borrow()
            .values()
            .filter(|o| !o.pinned && o.refs == 0)
            .map(|o| o.bytes)
            .sum()
    }

    /// Pins a resident object: it is never chosen as an eviction victim
    /// until [`unpin`](MemoryManager::unpin). Returns whether the object
    /// was resident.
    pub fn pin(&self, hash: u64) -> bool {
        match self.objects.borrow_mut().get_mut(&hash) {
            Some(o) => {
                o.pinned = true;
                true
            }
            None => false,
        }
    }

    /// Removes a pin. Returns whether the object was resident.
    pub fn unpin(&self, hash: u64) -> bool {
        match self.objects.borrow_mut().get_mut(&hash) {
            Some(o) => {
                o.pinned = false;
                true
            }
            None => false,
        }
    }

    /// Takes an in-flight reference: the object cannot be evicted while
    /// any reference is held. Returns whether the object was resident.
    pub fn retain(&self, hash: u64) -> bool {
        match self.objects.borrow_mut().get_mut(&hash) {
            Some(o) => {
                o.refs += 1;
                true
            }
            None => false,
        }
    }

    /// Releases an in-flight reference taken with
    /// [`retain`](MemoryManager::retain). A release for an object that
    /// was since invalidated (runner crash) is a no-op.
    pub fn release(&self, hash: u64) {
        if let Some(o) = self.objects.borrow_mut().get_mut(&hash) {
            if o.refs == 0 {
                // A release with no matching retain on a still-resident
                // object is an accounting bug; the saturating arithmetic
                // keeps the simulation alive but the underflow is
                // recorded so the sanitizer can fail the run.
                self.ref_underflows.set(self.ref_underflows.get() + 1);
            }
            o.refs = o.refs.saturating_sub(1);
        }
    }

    /// Unmatched [`release`](MemoryManager::release) calls observed on
    /// still-resident objects (each one is a refcount underflow the
    /// saturating arithmetic papered over). Always zero in a correct
    /// run.
    pub fn ref_underflows(&self) -> u64 {
        self.ref_underflows.get()
    }

    /// Total in-flight references currently held across resident
    /// objects.
    pub fn refs_in_flight(&self) -> u64 {
        self.objects.borrow().values().map(|o| o.refs as u64).sum()
    }

    /// Checks the manager's internal invariants, returning a description
    /// of the first violation:
    ///
    /// * the `bytes_resident` running total equals the sum of resident
    ///   object sizes (two independent accountings of the same memory),
    /// * residency never exceeds capacity,
    /// * recency stamps are unique (the LRU order is a total order, so
    ///   eviction is deterministic),
    /// * no refcount underflow has ever been observed.
    pub fn validate(&self) -> Result<(), String> {
        let objects = self.objects.borrow();
        let summed: u64 = objects.values().map(|o| o.bytes).sum();
        if summed != self.bytes_resident.get() {
            return Err(format!(
                "bytes_resident {} != sum of resident object sizes {}",
                self.bytes_resident.get(),
                summed
            ));
        }
        if self.bytes_resident.get() > self.capacity {
            return Err(format!(
                "bytes_resident {} exceeds capacity {}",
                self.bytes_resident.get(),
                self.capacity
            ));
        }
        let mut stamps: Vec<u64> = objects.values().map(|o| o.last_use).collect();
        stamps.sort_unstable();
        if stamps.windows(2).any(|w| w[0] == w[1]) {
            return Err("duplicate LRU recency stamps: eviction order is ambiguous".into());
        }
        if self.ref_underflows.get() > 0 {
            return Err(format!(
                "{} refcount underflow(s): release without a matching retain",
                self.ref_underflows.get()
            ));
        }
        Ok(())
    }

    /// Drops one object regardless of recency (a failed upload must not
    /// look resident). Pins and references do not protect against an
    /// explicit remove. Returns whether it was resident.
    pub fn remove(&self, hash: u64) -> bool {
        match self.objects.borrow_mut().remove(&hash) {
            Some(o) => {
                self.bytes_resident.set(self.bytes_resident.get() - o.bytes);
                true
            }
            None => false,
        }
    }

    /// Drops everything — the device's memory contents are gone (owning
    /// runner crashed, device fell off the bus). Pins and refcounts do
    /// not survive: the physical allocations no longer exist. Returns
    /// the number of objects invalidated.
    pub fn clear(&self) -> usize {
        let n = self.objects.borrow().len();
        self.objects.borrow_mut().clear();
        self.bytes_resident.set(0);
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_tracks_bytes_and_dedupes() {
        let mm = MemoryManager::new(100);
        assert_eq!(mm.insert(1, 40).unwrap(), Vec::<u64>::new());
        assert_eq!(mm.bytes_resident(), 40);
        // Re-inserting is a touch, not a second copy.
        assert_eq!(mm.insert(1, 40).unwrap(), Vec::<u64>::new());
        assert_eq!(mm.bytes_resident(), 40);
        assert_eq!(mm.len(), 1);
    }

    #[test]
    fn lru_evicts_oldest_first() {
        let mm = MemoryManager::new(100);
        mm.insert(1, 40).unwrap();
        mm.insert(2, 40).unwrap();
        mm.touch(1); // 2 is now the LRU victim
        assert_eq!(mm.insert(3, 40).unwrap(), vec![2]);
        assert!(mm.contains(1) && mm.contains(3) && !mm.contains(2));
        assert_eq!(mm.evictions(), 1);
        assert!(mm.bytes_resident() <= mm.capacity());
    }

    #[test]
    fn eviction_can_take_multiple_victims() {
        let mm = MemoryManager::new(100);
        mm.insert(1, 30).unwrap();
        mm.insert(2, 30).unwrap();
        mm.insert(3, 30).unwrap();
        assert_eq!(mm.insert(4, 70).unwrap(), vec![1, 2]);
        assert_eq!(mm.bytes_resident(), 100);
    }

    #[test]
    fn pinned_objects_are_never_victims() {
        let mm = MemoryManager::new(100);
        mm.insert(1, 60).unwrap();
        assert!(mm.pin(1));
        let err = mm.insert(2, 60).unwrap_err();
        assert_eq!(err.evictable, 0);
        assert!(mm.contains(1));
        // Unpinning frees it for eviction again.
        mm.unpin(1);
        assert_eq!(mm.insert(2, 60).unwrap(), vec![1]);
    }

    #[test]
    fn referenced_objects_are_never_victims() {
        let mm = MemoryManager::new(100);
        mm.insert(1, 60).unwrap();
        assert!(mm.retain(1));
        assert!(mm.insert(2, 60).is_err());
        mm.release(1);
        assert_eq!(mm.insert(2, 60).unwrap(), vec![1]);
    }

    #[test]
    fn oversized_object_is_oom() {
        let mm = MemoryManager::new(100);
        let err = mm.insert(1, 101).unwrap_err();
        assert_eq!(err.requested, 101);
        assert_eq!(err.capacity, 100);
        assert!(err.to_string().contains("101"));
    }

    #[test]
    fn failed_insert_evicts_nothing() {
        let mm = MemoryManager::new(100);
        mm.insert(1, 40).unwrap();
        mm.insert(2, 40).unwrap();
        mm.pin(2);
        // Needs 80 free, only 40 evictable: fail without touching 1.
        assert!(mm.insert(3, 100).is_err());
        assert!(mm.contains(1) && mm.contains(2));
        assert_eq!(mm.evictions(), 0);
    }

    #[test]
    fn clear_drops_pins_and_refs() {
        let mm = MemoryManager::new(100);
        mm.insert(1, 40).unwrap();
        mm.pin(1);
        mm.retain(1);
        assert_eq!(mm.clear(), 1);
        assert_eq!(mm.bytes_resident(), 0);
        assert!(mm.is_empty());
        // Stale release after invalidation is harmless.
        mm.release(1);
    }

    #[test]
    fn remove_ignores_protection() {
        let mm = MemoryManager::new(100);
        mm.insert(1, 40).unwrap();
        mm.pin(1);
        assert!(mm.remove(1));
        assert!(!mm.remove(1));
        assert_eq!(mm.bytes_resident(), 0);
        // No eviction counted: removal is not memory pressure.
        assert_eq!(mm.evictions(), 0);
    }

    #[test]
    fn resident_lists_sorted_hashes() {
        let mm = MemoryManager::new(100);
        mm.insert(9, 10).unwrap();
        mm.insert(3, 10).unwrap();
        assert_eq!(mm.resident(), vec![3, 9]);
    }
}
