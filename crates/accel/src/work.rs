//! [`WorkUnits`]: a device-independent description of what a kernel
//! invocation costs, produced by kernel implementations and consumed by
//! device models.

/// Cost of executing a quantum circuit (consumed by
/// [`crate::QpuDevice`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CircuitCost {
    /// Number of qubits the circuit addresses.
    pub qubits: u32,
    /// Total gate count after transpilation.
    pub gates: u64,
    /// Shots (samples) requested.
    pub shots: u64,
}

/// A device-independent work profile for one kernel invocation.
///
/// Kernels (in `kaas-kernels`) compute a `WorkUnits` for a given input;
/// device models translate it into virtual time through their throughput
/// and bandwidth parameters.
///
/// # Examples
///
/// ```
/// use kaas_accel::WorkUnits;
///
/// // A 500×500 matrix multiplication: 2·N³ FLOPs, two input matrices,
/// // one output, all f64.
/// let n = 500u64;
/// let w = WorkUnits::new(2.0 * (n as f64).powi(3))
///     .with_bytes(2 * n * n * 8, n * n * 8);
/// assert_eq!(w.bytes_in, 4_000_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkUnits {
    /// Floating-point operations on the device.
    pub flops: f64,
    /// Bytes copied host → device before the kernel runs.
    pub bytes_in: u64,
    /// Bytes copied device → host after the kernel runs.
    pub bytes_out: u64,
    /// Fraction of the device's baseline throughput this kernel sustains.
    /// Memory-bound or branchy kernels sit well below 1.0; kernels that
    /// exploit specialized units the baseline rate does not count (GPU
    /// tensor cores, TPU systolic arrays in low precision) may exceed 1.0
    /// (up to 8.0).
    pub efficiency: f64,
    /// FPGA pipeline cycles (for FPGA-class kernels).
    pub fpga_cycles: f64,
    /// Quantum circuit cost (for QPU-class kernels).
    pub circuit: Option<CircuitCost>,
    /// Device memory working set in bytes.
    pub device_mem: u64,
    /// Efficiency override when an accelerator-class kernel runs on a
    /// CPU instead (the GPU/CPU speed ratio is kernel-specific: a
    /// cuBLAS-backed matmul gains far more from the GPU than a branchy
    /// fitness function).
    pub cpu_efficiency: Option<f64>,
}

impl WorkUnits {
    /// Creates a compute-only profile of `flops` at full efficiency.
    pub fn new(flops: f64) -> Self {
        assert!(flops >= 0.0 && flops.is_finite(), "invalid flops: {flops}");
        WorkUnits {
            flops,
            bytes_in: 0,
            bytes_out: 0,
            efficiency: 1.0,
            fpga_cycles: 0.0,
            circuit: None,
            device_mem: 0,
            cpu_efficiency: None,
        }
    }

    /// Sets host↔device transfer volumes.
    pub fn with_bytes(mut self, bytes_in: u64, bytes_out: u64) -> Self {
        self.bytes_in = bytes_in;
        self.bytes_out = bytes_out;
        self
    }

    /// Sets the sustained-efficiency fraction.
    ///
    /// # Panics
    ///
    /// Panics unless `efficiency` is in `(0, 8]` (values above 1 model
    /// specialized-unit speedups such as tensor cores).
    pub fn with_efficiency(mut self, efficiency: f64) -> Self {
        assert!(
            efficiency > 0.0 && efficiency <= 8.0,
            "efficiency must be in (0, 8], got {efficiency}"
        );
        self.efficiency = efficiency;
        self
    }

    /// Sets the FPGA pipeline cycle count.
    pub fn with_fpga_cycles(mut self, cycles: f64) -> Self {
        self.fpga_cycles = cycles;
        self
    }

    /// Sets the quantum circuit cost.
    pub fn with_circuit(mut self, circuit: CircuitCost) -> Self {
        self.circuit = Some(circuit);
        self
    }

    /// Sets the device-memory working set.
    pub fn with_device_mem(mut self, bytes: u64) -> Self {
        self.device_mem = bytes;
        self
    }

    /// Sets the CPU-execution efficiency override.
    ///
    /// # Panics
    ///
    /// Panics unless `efficiency` is in `(0, 8]`.
    pub fn with_cpu_efficiency(mut self, efficiency: f64) -> Self {
        assert!(
            efficiency > 0.0 && efficiency <= 8.0,
            "cpu efficiency must be in (0, 8], got {efficiency}"
        );
        self.cpu_efficiency = Some(efficiency);
        self
    }

    /// Total bytes moved across the host↔device boundary.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_in + self.bytes_out
    }
}

impl Default for WorkUnits {
    fn default() -> Self {
        WorkUnits::new(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let w = WorkUnits::new(1e9)
            .with_bytes(100, 50)
            .with_efficiency(0.5)
            .with_device_mem(4096);
        assert_eq!(w.flops, 1e9);
        assert_eq!(w.total_bytes(), 150);
        assert_eq!(w.efficiency, 0.5);
        assert_eq!(w.device_mem, 4096);
    }

    #[test]
    #[should_panic(expected = "efficiency")]
    fn zero_efficiency_rejected() {
        let _ = WorkUnits::new(1.0).with_efficiency(0.0);
    }

    #[test]
    #[should_panic(expected = "invalid flops")]
    fn negative_flops_rejected() {
        let _ = WorkUnits::new(-1.0);
    }

    #[test]
    fn default_is_empty() {
        let w = WorkUnits::default();
        assert_eq!(w.flops, 0.0);
        assert_eq!(w.total_bytes(), 0);
        assert_eq!(w.efficiency, 1.0);
    }
}
