//! Property-style tests of the device models' conservation laws.
//!
//! Randomized cases come from the in-tree deterministic RNG instead of
//! an external property-test framework, so the suite builds with no
//! registry access. Enable with `--features proptest-tests`.
#![cfg(feature = "proptest-tests")]

use std::time::Duration;

use kaas_accel::{PowerProfile, SharedProcessor, TransferEngine};
use kaas_simtime::rng::det_rng;
use kaas_simtime::{now, spawn, Simulation};

const CASES: u64 = 48;

/// Processor sharing conserves work: the makespan of any batch of
/// full-demand jobs equals total work / capacity.
#[test]
fn ps_conserves_work() {
    for case in 0..CASES {
        let mut rng = det_rng(0xAC_0000 + case);
        let n = rng.gen_range(1..20usize);
        let jobs: Vec<f64> = (0..n).map(|_| rng.gen_range(1.0..500.0f64)).collect();
        let capacity = rng.gen_range(10.0..1000.0f64);

        let total: f64 = jobs.iter().sum();
        let mut sim = Simulation::new();
        let end = sim.block_on(async move {
            let ps = SharedProcessor::new(capacity);
            let mut handles = Vec::new();
            for w in jobs {
                let ps = ps.clone();
                handles.push(spawn(async move { ps.execute(w).await }));
            }
            for h in handles {
                h.await;
            }
            now()
        });
        let expected = total / capacity;
        assert!(
            (end.as_secs_f64() - expected).abs() < 1e-6 + expected * 1e-9,
            "makespan {} vs expected {expected}",
            end.as_secs_f64()
        );
    }
}

/// No job finishes before its isolated lower bound (work/capacity) or
/// after the whole batch's serial time.
#[test]
fn ps_completion_bounds() {
    for case in 0..CASES {
        let mut rng = det_rng(0xAD_0000 + case);
        let n = rng.gen_range(1..12usize);
        let jobs: Vec<f64> = (0..n).map(|_| rng.gen_range(1.0..200.0f64)).collect();
        let capacity = rng.gen_range(10.0..500.0f64);

        let total: f64 = jobs.iter().sum();
        let mut sim = Simulation::new();
        let durations = sim.block_on(async move {
            let ps = SharedProcessor::new(capacity);
            let mut handles = Vec::new();
            for w in jobs.clone() {
                let ps = ps.clone();
                handles.push(spawn(async move { (w, ps.execute(w).await) }));
            }
            let mut out = Vec::new();
            for h in handles {
                out.push(h.await);
            }
            out
        });
        for (w, d) in durations {
            let lower = w / capacity;
            let upper = total / capacity;
            let d = d.as_secs_f64();
            assert!(d >= lower - 1e-9, "{d} < isolated bound {lower}");
            assert!(d <= upper + 1e-6, "{d} > serial bound {upper}");
        }
    }
}

/// Busy seconds never exceed elapsed time and equal total work /
/// capacity for full-demand jobs.
#[test]
fn ps_busy_accounting() {
    for case in 0..CASES {
        let mut rng = det_rng(0xAE_0000 + case);
        let n = rng.gen_range(1..10usize);
        let jobs: Vec<f64> = (0..n).map(|_| rng.gen_range(1.0..100.0f64)).collect();
        let capacity = rng.gen_range(10.0..200.0f64);

        let total: f64 = jobs.iter().sum();
        let mut sim = Simulation::new();
        let (busy, end) = sim.block_on(async move {
            let ps = SharedProcessor::new(capacity);
            let mut handles = Vec::new();
            for w in jobs {
                let ps = ps.clone();
                handles.push(spawn(async move { ps.execute(w).await }));
            }
            for h in handles {
                h.await;
            }
            (ps.busy_seconds(), now())
        });
        assert!(busy <= end.as_secs_f64() + 1e-9);
        assert!((busy - total / capacity).abs() < 1e-6);
    }
}

/// Transfer engines serialize: total time equals the sum of the
/// individual transfer times.
#[test]
fn transfers_serialize_exactly() {
    for case in 0..CASES {
        let mut rng = det_rng(0xAF_0000 + case);
        let n = rng.gen_range(1..12usize);
        let sizes: Vec<u64> = (0..n).map(|_| rng.gen_range(1..10_000_000u64)).collect();
        let bw = rng.gen_range(1.0e6..1.0e9f64);

        let expected: f64 = sizes.iter().map(|&b| b as f64 / bw).sum();
        let mut sim = Simulation::new();
        let end = sim.block_on(async move {
            let eng = TransferEngine::new(bw);
            let mut handles = Vec::new();
            for b in sizes {
                let eng = eng.clone();
                handles.push(spawn(async move {
                    eng.transfer(b, Duration::ZERO).await;
                }));
            }
            for h in handles {
                h.await;
            }
            now()
        });
        assert!((end.as_secs_f64() - expected).abs() < 1e-6 + expected * 1e-9);
    }
}

/// Energy is monotone in busy time and bounded by idle/active rails.
#[test]
fn energy_bounds() {
    for case in 0..CASES {
        let mut rng = det_rng(0xB0_0000 + case);
        let idle = rng.gen_range(0.0..100.0f64);
        let dynamic = rng.gen_range(0.0..400.0f64);
        let window_s = rng.gen_range(0.1..100.0f64);
        let busy_a = rng.gen_range(0.0..100.0f64);
        let busy_b = rng.gen_range(0.0..100.0f64);

        let p = PowerProfile::new(idle, idle + dynamic);
        let window = Duration::from_secs_f64(window_s);
        let (lo, hi) = if busy_a <= busy_b {
            (busy_a, busy_b)
        } else {
            (busy_b, busy_a)
        };
        let e_lo = p.energy_joules(window, lo);
        let e_hi = p.energy_joules(window, hi);
        assert!(e_lo <= e_hi + 1e-9);
        let floor = idle * window_s;
        let ceil = (idle + dynamic) * window_s;
        assert!(e_lo >= floor - 1e-6 * (1.0 + floor.abs()));
        assert!(e_hi <= ceil + 1e-6 * (1.0 + ceil.abs()));
    }
}
