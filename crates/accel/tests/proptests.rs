//! Property-based tests of the device models' conservation laws.

use proptest::prelude::*;
use std::time::Duration;

use kaas_accel::{PowerProfile, SharedProcessor, TransferEngine};
use kaas_simtime::{now, spawn, Simulation};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Processor sharing conserves work: the makespan of any batch of
    /// full-demand jobs equals total work / capacity.
    #[test]
    fn ps_conserves_work(
        jobs in prop::collection::vec(1.0f64..500.0, 1..20),
        capacity in 10.0f64..1000.0,
    ) {
        let total: f64 = jobs.iter().sum();
        let mut sim = Simulation::new();
        let end = sim.block_on(async move {
            let ps = SharedProcessor::new(capacity);
            let mut handles = Vec::new();
            for w in jobs {
                let ps = ps.clone();
                handles.push(spawn(async move { ps.execute(w).await }));
            }
            for h in handles {
                h.await;
            }
            now()
        });
        let expected = total / capacity;
        prop_assert!(
            (end.as_secs_f64() - expected).abs() < 1e-6 + expected * 1e-9,
            "makespan {} vs expected {expected}",
            end.as_secs_f64()
        );
    }

    /// No job finishes before its isolated lower bound (work/capacity) or
    /// after the whole batch's serial time.
    #[test]
    fn ps_completion_bounds(
        jobs in prop::collection::vec(1.0f64..200.0, 1..12),
        capacity in 10.0f64..500.0,
    ) {
        let total: f64 = jobs.iter().sum();
        let mut sim = Simulation::new();
        let durations = sim.block_on(async move {
            let ps = SharedProcessor::new(capacity);
            let mut handles = Vec::new();
            for w in jobs.clone() {
                let ps = ps.clone();
                handles.push(spawn(async move { (w, ps.execute(w).await) }));
            }
            let mut out = Vec::new();
            for h in handles {
                out.push(h.await);
            }
            out
        });
        for (w, d) in durations {
            let lower = w / capacity;
            let upper = total / capacity;
            let d = d.as_secs_f64();
            prop_assert!(d >= lower - 1e-9, "{d} < isolated bound {lower}");
            prop_assert!(d <= upper + 1e-6, "{d} > serial bound {upper}");
        }
    }

    /// Busy seconds never exceed elapsed time and equal total work /
    /// capacity for full-demand jobs.
    #[test]
    fn ps_busy_accounting(
        jobs in prop::collection::vec(1.0f64..100.0, 1..10),
        capacity in 10.0f64..200.0,
    ) {
        let total: f64 = jobs.iter().sum();
        let mut sim = Simulation::new();
        let (busy, end) = sim.block_on(async move {
            let ps = SharedProcessor::new(capacity);
            let mut handles = Vec::new();
            for w in jobs {
                let ps = ps.clone();
                handles.push(spawn(async move { ps.execute(w).await }));
            }
            for h in handles {
                h.await;
            }
            (ps.busy_seconds(), now())
        });
        prop_assert!(busy <= end.as_secs_f64() + 1e-9);
        prop_assert!((busy - total / capacity).abs() < 1e-6);
    }

    /// Transfer engines serialize: total time equals the sum of the
    /// individual transfer times.
    #[test]
    fn transfers_serialize_exactly(
        sizes in prop::collection::vec(1u64..10_000_000, 1..12),
        bw in 1.0e6f64..1.0e9,
    ) {
        let expected: f64 = sizes.iter().map(|&b| b as f64 / bw).sum();
        let mut sim = Simulation::new();
        let end = sim.block_on(async move {
            let eng = TransferEngine::new(bw);
            let mut handles = Vec::new();
            for b in sizes {
                let eng = eng.clone();
                handles.push(spawn(async move {
                    eng.transfer(b, Duration::ZERO).await;
                }));
            }
            for h in handles {
                h.await;
            }
            now()
        });
        prop_assert!((end.as_secs_f64() - expected).abs() < 1e-6 + expected * 1e-9);
    }

    /// Energy is monotone in busy time and bounded by idle/active rails.
    #[test]
    fn energy_bounds(
        idle in 0.0f64..100.0,
        dynamic in 0.0f64..400.0,
        window_s in 0.1f64..100.0,
        busy_a in 0.0f64..100.0,
        busy_b in 0.0f64..100.0,
    ) {
        let p = PowerProfile::new(idle, idle + dynamic);
        let window = Duration::from_secs_f64(window_s);
        let (lo, hi) = if busy_a <= busy_b { (busy_a, busy_b) } else { (busy_b, busy_a) };
        let e_lo = p.energy_joules(window, lo);
        let e_hi = p.energy_joules(window, hi);
        prop_assert!(e_lo <= e_hi + 1e-9);
        let floor = idle * window_s;
        let ceil = (idle + dynamic) * window_s;
        prop_assert!(e_lo >= floor - 1e-6 * (1.0 + floor.abs()));
        prop_assert!(e_hi <= ceil + 1e-6 * (1.0 + ceil.abs()));
    }
}
