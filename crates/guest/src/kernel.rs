//! [`GuestKernel`]: the adapter that makes a warm guest instance look
//! like any compiled-in kernel to the dispatch path, plus the cumulative
//! per-kernel meters the server bills tenants from.

use std::cell::Cell;
use std::rc::Rc;

use kaas_accel::{DeviceClass, WorkUnits};
use kaas_kernels::{Kernel, KernelError, Value, Warmup};

use crate::interp::{full_instantiate_cost, restore_cost, Instance, Trap};
use crate::program::GuestProgram;
use crate::verify::Verified;

/// Cumulative usage counters for one registered guest kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GuestMeter {
    /// Body invocations completed successfully.
    pub invocations: u64,
    /// Fuel consumed by successful invocations.
    pub fuel: u64,
    /// Wire bytes moved (input + output) by successful invocations.
    pub bytes: u64,
}

/// A registered, warm, versioned guest kernel.
///
/// One `GuestKernel` backs every runner for its `tenant/name@vN` — the
/// instance is immutable post-init (validation forbids body writes to
/// globals), so sharing it is sound and replay-deterministic. The
/// cold-start path a fresh runner pays is carried by [`Kernel::warmup`]:
/// full instantiate, or restore of the snapshot image taken here at
/// registration time.
#[derive(Debug)]
pub struct GuestKernel {
    full_name: String,
    instance: Instance,
    cert: Option<Verified>,
    warmup: Warmup,
    image: Option<Vec<u8>>,
    invocations: Cell<u64>,
    fuel: Cell<u64>,
    bytes: Cell<u64>,
}

impl GuestKernel {
    /// Instantiates a validated program under its server-assigned
    /// `tenant/name@vN` identity, taking the snapshot image now if the
    /// program opted into the restore path.
    ///
    /// # Errors
    ///
    /// Propagates a [`Trap`] from the init program.
    pub fn instantiate(full_name: &str, program: Rc<GuestProgram>) -> Result<GuestKernel, Trap> {
        Self::build(full_name, program, None)
    }

    /// [`instantiate`](GuestKernel::instantiate), carrying a verifier
    /// certificate: invocations whose input class verified `Clean` run
    /// the fast-path interpreter, and [`predicted_fuel`] exposes the
    /// static worst-case bound to the registry. A certificate that does
    /// not cover `program` (content hash) is discarded — execution then
    /// stays on the checking path.
    ///
    /// [`predicted_fuel`]: GuestKernel::predicted_fuel
    ///
    /// # Errors
    ///
    /// Propagates a [`Trap`] from the init program.
    pub fn instantiate_verified(
        full_name: &str,
        program: Rc<GuestProgram>,
        cert: Verified,
    ) -> Result<GuestKernel, Trap> {
        let cert = cert.covers(&program).then_some(cert);
        Self::build(full_name, program, cert)
    }

    fn build(
        full_name: &str,
        program: Rc<GuestProgram>,
        cert: Option<Verified>,
    ) -> Result<GuestKernel, Trap> {
        let instance = Instance::instantiate(program.clone())?;
        let (warmup, image) = if program.snapshot {
            let image = instance.snapshot();
            (Warmup::Restore(restore_cost(image.len())), Some(image))
        } else {
            (
                Warmup::Instantiate(full_instantiate_cost(&program, instance.init_fuel())),
                None,
            )
        };
        Ok(GuestKernel {
            full_name: full_name.to_string(),
            instance,
            cert,
            warmup,
            image,
            invocations: Cell::new(0),
            fuel: Cell::new(0),
            bytes: Cell::new(0),
        })
    }

    /// The warm instance (exposed for snapshot bit-equivalence checks).
    pub fn instance(&self) -> &Instance {
        &self.instance
    }

    /// The snapshot image, when registered on the restore path.
    pub fn image(&self) -> Option<&[u8]> {
        self.image.as_deref()
    }

    /// The verification certificate, when registered through
    /// [`instantiate_verified`](GuestKernel::instantiate_verified).
    pub fn certificate(&self) -> Option<&Verified> {
        self.cert.as_ref()
    }

    /// The static worst-case fuel for one invocation, when verified —
    /// the registry's predicted-cost hint.
    pub fn predicted_fuel(&self) -> Option<u64> {
        self.cert.as_ref().map(Verified::predicted_fuel)
    }

    /// Cumulative usage since registration.
    pub fn meter(&self) -> GuestMeter {
        GuestMeter {
            invocations: self.invocations.get(),
            fuel: self.fuel.get(),
            bytes: self.bytes.get(),
        }
    }
}

impl Kernel for GuestKernel {
    fn name(&self) -> &str {
        &self.full_name
    }

    fn device_class(&self) -> DeviceClass {
        self.instance.program().device_class
    }

    fn work(&self, input: &Value) -> Result<WorkUnits, KernelError> {
        let p = self.instance.program();
        let bytes_in = input.wire_bytes();
        let flops = p.base_flops + p.flops_per_byte * bytes_in as f64;
        Ok(WorkUnits::new(flops.max(0.0)).with_bytes(bytes_in, p.bytes_out_hint))
    }

    fn execute(&self, input: &Value) -> Result<Value, KernelError> {
        let run = match &self.cert {
            Some(cert) => self.instance.run_verified(cert, input),
            None => self.instance.run(input),
        };
        match run {
            Ok((output, fuel)) => {
                self.invocations.set(self.invocations.get() + 1);
                self.fuel.set(self.fuel.get() + fuel);
                self.bytes
                    .set(self.bytes.get() + input.wire_bytes() + output.wire_bytes());
                Ok(output)
            }
            Err(Trap::FuelExhausted { limit }) => Err(KernelError::FuelExhausted(format!(
                "{}: fuel limit {limit} exhausted",
                self.full_name
            ))),
            Err(trap) => Err(KernelError::Trap(format!("{}: {trap}", self.full_name))),
        }
    }

    fn warmup(&self) -> Warmup {
        self.warmup
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Op;

    fn doubler(snapshot: bool) -> GuestKernel {
        let mut p = GuestProgram::new("double", DeviceClass::Gpu)
            .with_fuel(1000)
            .with_work(10.0, 1.0, 16)
            .with_body(vec![Op::Input, Op::PushU(2), Op::Mul, Op::Return]);
        if snapshot {
            p = p.with_snapshot();
        }
        p.validate().unwrap();
        GuestKernel::instantiate("acme/double@v1", Rc::new(p)).unwrap()
    }

    #[test]
    fn behaves_like_a_kernel() {
        let k = doubler(false);
        assert_eq!(k.name(), "acme/double@v1");
        assert_eq!(k.device_class(), DeviceClass::Gpu);
        assert!(matches!(k.warmup(), Warmup::Instantiate(_)));
        assert!(k.image().is_none());
        let out = k.execute(&Value::U64(21)).unwrap();
        assert_eq!(out, Value::U64(42));
        let w = k.work(&Value::U64(21)).unwrap();
        assert_eq!(w.bytes_in, 16);
        assert_eq!(w.flops, 10.0 + 16.0);
    }

    #[test]
    fn meters_accumulate_on_success_only() {
        let k = doubler(false);
        k.execute(&Value::U64(1)).unwrap();
        k.execute(&Value::U64(2)).unwrap();
        let m = k.meter();
        assert_eq!(m.invocations, 2);
        assert_eq!(m.fuel, 2 * 4);
        assert_eq!(m.bytes, 2 * 32);
        // A trap leaves the meters untouched.
        assert!(k.execute(&Value::F64s(vec![1.0])).is_err());
        assert_eq!(k.meter(), m);
    }

    #[test]
    fn snapshot_path_reports_restore_warmup() {
        let k = doubler(true);
        assert!(matches!(k.warmup(), Warmup::Restore(_)));
        let image = k.image().unwrap().to_vec();
        let restored = Instance::restore(k.instance().program().clone(), &image).unwrap();
        assert_eq!(restored.image_bytes(), image);
    }

    #[test]
    fn verified_registration_runs_fast_and_predicts_fuel() {
        let p = GuestProgram::new("double", DeviceClass::Cpu)
            .with_fuel(1000)
            .with_body(vec![Op::Input, Op::PushU(2), Op::Mul, Op::Return]);
        let cert = crate::verify::verify(&p).unwrap();
        let k = GuestKernel::instantiate_verified("t/double@v1", Rc::new(p), cert).unwrap();
        assert_eq!(k.predicted_fuel(), Some(4));
        assert!(k.certificate().is_some());
        assert_eq!(k.execute(&Value::U64(21)).unwrap(), Value::U64(42));
        // Non-clean inputs fall back to the checking path and still
        // trap honestly.
        assert!(matches!(
            k.execute(&Value::F64s(vec![1.0])),
            Err(KernelError::Trap(_))
        ));
        // A certificate for a different program is discarded.
        let other = GuestProgram::new("other", DeviceClass::Cpu)
            .with_fuel(1000)
            .with_body(vec![Op::Input, Op::Return]);
        let stale = crate::verify::verify(&other).unwrap();
        let p2 = GuestProgram::new("double", DeviceClass::Cpu)
            .with_fuel(1000)
            .with_body(vec![Op::Input, Op::PushU(2), Op::Mul, Op::Return]);
        let k = GuestKernel::instantiate_verified("t/double@v2", Rc::new(p2), stale).unwrap();
        assert!(k.certificate().is_none());
        assert_eq!(k.predicted_fuel(), None);
    }

    #[test]
    fn error_mapping_is_kind_preserving() {
        let spin = GuestProgram::new("spin", DeviceClass::Cpu)
            .with_fuel(8)
            .with_body(vec![Op::Jump(0)]);
        let k = GuestKernel::instantiate("t/spin@v1", Rc::new(spin)).unwrap();
        assert!(matches!(
            k.execute(&Value::Unit),
            Err(KernelError::FuelExhausted(_))
        ));
        let div = GuestProgram::new("div", DeviceClass::Cpu)
            .with_fuel(100)
            .with_body(vec![Op::Input, Op::PushU(0), Op::Div, Op::Return]);
        let k = GuestKernel::instantiate("t/div@v1", Rc::new(div)).unwrap();
        assert!(matches!(
            k.execute(&Value::U64(1)),
            Err(KernelError::Trap(_))
        ));
    }
}
