//! # kaas-guest — deterministic guest kernel runtime
//!
//! The paper's tenants *bring* their kernels; this crate is the runtime
//! that makes that possible without compiling them in. A guest kernel is
//! a small stack-machine program ([`GuestProgram`]) over the existing
//! [`Value`](kaas_kernels::Value) type: fuel-metered, sandboxed (no host
//! calls, no ambient time or randomness), and statically validated at
//! registration. A warm [`Instance`] pairs the program with its
//! post-init globals; [`GuestKernel`] adapts it to the ordinary
//! [`Kernel`](kaas_kernels::Kernel) trait so dispatch, placement, and
//! device models treat tenant code exactly like compiled-in kernels.
//!
//! Cold start is a two-path artifact (Faasm's Proto-Faaslets, applied to
//! the KaaS runner model): a fresh runner either pays **full
//! instantiate** (parse + validate + replay the init program) or
//! **restores** a pre-initialized snapshot image serialized at register
//! time — [`full_instantiate_cost`] vs [`restore_cost`] in virtual time,
//! with [`Instance::snapshot`]/[`Instance::restore`] carrying the bytes.
//!
//! Registration also runs [`verify`]: an abstract interpreter that
//! types every reachable instruction, proves stack depths, bounds
//! worst-case fuel, and rejects programs that provably trap. The
//! resulting [`Verified`] certificate lets clean input classes run a
//! fast-path interpreter with every type and underflow check
//! discharged statically.
//!
//! ```
//! use std::rc::Rc;
//! use kaas_accel::DeviceClass;
//! use kaas_guest::{verify, FuelBound, GuestKernel, GuestProgram, Op};
//! use kaas_kernels::{Kernel, Value};
//!
//! let program = GuestProgram::new("double", DeviceClass::Cpu)
//!     .with_fuel(100)
//!     .with_body(vec![Op::Input, Op::PushU(2), Op::Mul, Op::Return]);
//! let cert = verify(&program).unwrap();
//! assert_eq!(cert.fuel_bound, FuelBound::Bounded(4));
//! let kernel = GuestKernel::instantiate_verified("acme/double@v1", Rc::new(program), cert)
//!     .unwrap();
//! assert_eq!(kernel.predicted_fuel(), Some(4));
//! assert_eq!(kernel.execute(&Value::U64(21)).unwrap(), Value::U64(42));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod interp;
mod kernel;
mod program;
mod verify;

pub use interp::{full_instantiate_cost, restore_cost, Instance, RestoreError, RunStats, Trap};
pub use kernel::{GuestKernel, GuestMeter};
pub use program::{GuestProgram, Op, ProgramError, MAX_VEC_LEN, PROGRAM_TAG};
pub use verify::{
    verify, AbsTy, ClassVerdict, FuelBound, InputClass, SeqFacts, SeqName, Verified, VerifyDiag,
    VerifyError,
};
