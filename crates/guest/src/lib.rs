//! # kaas-guest — deterministic guest kernel runtime
//!
//! The paper's tenants *bring* their kernels; this crate is the runtime
//! that makes that possible without compiling them in. A guest kernel is
//! a small stack-machine program ([`GuestProgram`]) over the existing
//! [`Value`](kaas_kernels::Value) type: fuel-metered, sandboxed (no host
//! calls, no ambient time or randomness), and statically validated at
//! registration. A warm [`Instance`] pairs the program with its
//! post-init globals; [`GuestKernel`] adapts it to the ordinary
//! [`Kernel`](kaas_kernels::Kernel) trait so dispatch, placement, and
//! device models treat tenant code exactly like compiled-in kernels.
//!
//! Cold start is a two-path artifact (Faasm's Proto-Faaslets, applied to
//! the KaaS runner model): a fresh runner either pays **full
//! instantiate** (parse + validate + replay the init program) or
//! **restores** a pre-initialized snapshot image serialized at register
//! time — [`full_instantiate_cost`] vs [`restore_cost`] in virtual time,
//! with [`Instance::snapshot`]/[`Instance::restore`] carrying the bytes.
//!
//! ```
//! use std::rc::Rc;
//! use kaas_accel::DeviceClass;
//! use kaas_guest::{GuestKernel, GuestProgram, Op};
//! use kaas_kernels::{Kernel, Value};
//!
//! let program = GuestProgram::new("double", DeviceClass::Cpu)
//!     .with_fuel(100)
//!     .with_body(vec![Op::Input, Op::PushU(2), Op::Mul, Op::Return]);
//! program.validate().unwrap();
//! let kernel = GuestKernel::instantiate("acme/double@v1", Rc::new(program)).unwrap();
//! assert_eq!(kernel.execute(&Value::U64(21)).unwrap(), Value::U64(42));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod interp;
mod kernel;
mod program;

pub use interp::{full_instantiate_cost, restore_cost, Instance, RestoreError, Trap};
pub use kernel::{GuestKernel, GuestMeter};
pub use program::{GuestProgram, Op, ProgramError, MAX_VEC_LEN, PROGRAM_TAG};
