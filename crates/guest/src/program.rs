//! Guest-kernel bytecode: the [`Op`] instruction set, the [`GuestProgram`]
//! container tenants register, static validation, and the tagged
//! [`Value`] wire encoding used by `_kaas/code/register`.

use kaas_accel::DeviceClass;
use kaas_kernels::Value;

/// Wire tag identifying an encoded [`GuestProgram`] (first element of the
/// tagged list produced by [`GuestProgram::to_value`]).
pub const PROGRAM_TAG: &str = "kaas.guest.program";

/// Hard cap on vector lengths a guest may materialize (per value).
pub const MAX_VEC_LEN: u64 = 1 << 22;

/// One stack-machine instruction.
///
/// The machine operates on [`Value`]s: scalars (`U64`, `F64`) and flat
/// float vectors (`F64s`). There is no heap, no host calls, no ambient
/// time or randomness — a program is a pure function of its input and
/// its post-init globals, which is what makes registered kernels safe to
/// replay and snapshot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// Push an unsigned integer literal.
    PushU(u64),
    /// Push a float literal.
    PushF(f64),
    /// Push a copy of the invocation input (Unit during init).
    Input,
    /// Push a copy of global `g`.
    Global(u8),
    /// Pop into global `g`. Valid only in the init program; validation
    /// rejects it in the body so instances are immutable once warm.
    SetGlobal(u8),
    /// Duplicate the top of stack.
    Dup,
    /// Drop the top of stack.
    Pop,
    /// Swap the top two stack slots.
    Swap,
    /// Pop b, pop a, push a + b (wrapping on integers).
    Add,
    /// Pop b, pop a, push a − b (wrapping on integers).
    Sub,
    /// Pop b, pop a, push a × b (wrapping on integers).
    Mul,
    /// Pop b, pop a, push a ÷ b; traps on a zero divisor.
    Div,
    /// Pop b, pop a, push a mod b; traps on a zero divisor.
    Rem,
    /// Pop a, push −a (as a float).
    Neg,
    /// Pop a, push √a; traps on negative input.
    Sqrt,
    /// Pop b, pop a, push min(a, b).
    Min,
    /// Pop b, pop a, push max(a, b).
    Max,
    /// Pop b, pop a, push 1 if a < b else 0.
    Lt,
    /// Pop b, pop a, push 1 if a = b else 0.
    Eq,
    /// Pop a value, push its element count (vector/bytes/text/list).
    Len,
    /// Pop index i, pop vector v, push v\[i\]; traps out of bounds.
    Get,
    /// Pop fill value f, pop count n, push a vector of n copies of f.
    VecFill,
    /// Pop scalar s, pop vector v, push v scaled by s.
    VecScale,
    /// Pop vector b, pop vector a, push a + b elementwise.
    VecAdd,
    /// Pop vector v, push the sum of its elements.
    VecSum,
    /// Pop vector b, pop vector a, push their dot product.
    VecDot,
    /// Unconditional jump to absolute instruction index.
    Jump(u16),
    /// Pop condition c, jump to absolute index if c is zero.
    JumpIfZero(u16),
    /// Pop the top of stack and return it as the kernel output.
    Return,
}

impl Op {
    /// Wire mnemonic (the name used in encodings and in verifier
    /// diagnostics).
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Op::PushU(_) => "push.u",
            Op::PushF(_) => "push.f",
            Op::Input => "input",
            Op::Global(_) => "global",
            Op::SetGlobal(_) => "set_global",
            Op::Dup => "dup",
            Op::Pop => "pop",
            Op::Swap => "swap",
            Op::Add => "add",
            Op::Sub => "sub",
            Op::Mul => "mul",
            Op::Div => "div",
            Op::Rem => "rem",
            Op::Neg => "neg",
            Op::Sqrt => "sqrt",
            Op::Min => "min",
            Op::Max => "max",
            Op::Lt => "lt",
            Op::Eq => "eq",
            Op::Len => "len",
            Op::Get => "get",
            Op::VecFill => "vec.fill",
            Op::VecScale => "vec.scale",
            Op::VecAdd => "vec.add",
            Op::VecSum => "vec.sum",
            Op::VecDot => "vec.dot",
            Op::Jump(_) => "jump",
            Op::JumpIfZero(_) => "jump.ez",
            Op::Return => "return",
        }
    }
}

/// A validated-on-registration guest kernel program.
///
/// `init` runs once per instance (at register time, and conceptually on
/// every full-instantiate cold start); `body` runs per invocation with
/// read-only globals. `fuel_limit` bounds both.
#[derive(Debug, Clone, PartialEq)]
pub struct GuestProgram {
    /// Kernel name (no `/`, `@`, whitespace, or leading `_`); the server
    /// namespaces it as `tenant/name@vN`.
    pub name: String,
    /// Device family the kernel targets.
    pub device_class: DeviceClass,
    /// Fuel budget per run (init and each body invocation separately).
    pub fuel_limit: u64,
    /// Declared work profile: fixed FLOPs per invocation…
    pub base_flops: f64,
    /// …plus FLOPs per input wire byte.
    pub flops_per_byte: f64,
    /// Declared output size for transfer modeling.
    pub bytes_out_hint: u64,
    /// Number of global slots.
    pub globals: u8,
    /// Register with a pre-initialized snapshot image (restore-path cold
    /// start) instead of paying full instantiate on every fresh runner.
    pub snapshot: bool,
    /// Runs once at instantiate time; may write globals.
    pub init: Vec<Op>,
    /// Runs per invocation; globals are read-only.
    pub body: Vec<Op>,
}

/// Why a program failed validation or decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// The kernel name is empty or contains reserved characters.
    BadName(String),
    /// `fuel_limit` is zero.
    ZeroFuel,
    /// The body is empty (nothing to run).
    EmptyBody,
    /// An instruction sequence exceeds the `u16` addressing range.
    TooLong(usize),
    /// A jump targets past the end of its sequence.
    BadJump {
        /// Instruction index of the offending jump.
        at: usize,
        /// Its (invalid) target.
        target: u16,
    },
    /// A global index is out of range for the declared slot count.
    BadGlobal {
        /// Instruction index of the offending access.
        at: usize,
        /// The out-of-range slot index.
        slot: u8,
    },
    /// `SetGlobal` appeared in the body (instances must stay immutable).
    SetGlobalInBody(usize),
    /// The wire encoding could not be decoded.
    Malformed(String),
}

impl std::fmt::Display for ProgramError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProgramError::BadName(n) => write!(f, "bad kernel name {n:?}"),
            ProgramError::ZeroFuel => write!(f, "fuel_limit must be positive"),
            ProgramError::EmptyBody => write!(f, "body has no instructions"),
            ProgramError::TooLong(n) => write!(f, "program too long ({n} ops)"),
            ProgramError::BadJump { at, target } => {
                write!(f, "op {at}: jump target {target} out of range")
            }
            ProgramError::BadGlobal { at, slot } => {
                write!(f, "op {at}: global slot {slot} out of range")
            }
            ProgramError::SetGlobalInBody(at) => {
                write!(f, "op {at}: set_global is init-only")
            }
            ProgramError::Malformed(msg) => write!(f, "malformed program encoding: {msg}"),
        }
    }
}

impl std::error::Error for ProgramError {}

impl GuestProgram {
    /// A minimal program skeleton; fill in `init`/`body` and tune the
    /// knobs with the `with_*` builders.
    pub fn new(name: &str, device_class: DeviceClass) -> Self {
        GuestProgram {
            name: name.to_string(),
            device_class,
            fuel_limit: 1 << 20,
            base_flops: 0.0,
            flops_per_byte: 0.0,
            bytes_out_hint: 16,
            globals: 0,
            snapshot: false,
            init: Vec::new(),
            body: Vec::new(),
        }
    }

    /// Sets the per-run fuel budget.
    pub fn with_fuel(mut self, fuel_limit: u64) -> Self {
        self.fuel_limit = fuel_limit;
        self
    }

    /// Declares the work profile used for device-time modeling.
    pub fn with_work(mut self, base_flops: f64, flops_per_byte: f64, bytes_out_hint: u64) -> Self {
        self.base_flops = base_flops;
        self.flops_per_byte = flops_per_byte;
        self.bytes_out_hint = bytes_out_hint;
        self
    }

    /// Declares `n` global slots and the init program that fills them.
    pub fn with_init(mut self, globals: u8, init: Vec<Op>) -> Self {
        self.globals = globals;
        self.init = init;
        self
    }

    /// Sets the per-invocation body.
    pub fn with_body(mut self, body: Vec<Op>) -> Self {
        self.body = body;
        self
    }

    /// Opts into the pre-initialized snapshot/restore cold-start path.
    pub fn with_snapshot(mut self) -> Self {
        self.snapshot = true;
        self
    }

    /// Statically validates the program: name shape, fuel, jump targets,
    /// global indices, and init-only `SetGlobal`.
    ///
    /// # Errors
    ///
    /// Returns the first [`ProgramError`] found.
    pub fn validate(&self) -> Result<(), ProgramError> {
        let bad_name = self.name.is_empty()
            || self.name.starts_with('_')
            || self
                .name
                .chars()
                .any(|c| c == '/' || c == '@' || c.is_whitespace());
        if bad_name {
            return Err(ProgramError::BadName(self.name.clone()));
        }
        if self.fuel_limit == 0 {
            return Err(ProgramError::ZeroFuel);
        }
        if self.body.is_empty() {
            return Err(ProgramError::EmptyBody);
        }
        for seq in [&self.init, &self.body] {
            if seq.len() > u16::MAX as usize {
                return Err(ProgramError::TooLong(seq.len()));
            }
        }
        self.check_seq(&self.init, true)?;
        self.check_seq(&self.body, false)
    }

    fn check_seq(&self, seq: &[Op], allow_set: bool) -> Result<(), ProgramError> {
        for (at, op) in seq.iter().enumerate() {
            match *op {
                Op::Jump(target) | Op::JumpIfZero(target) if target as usize > seq.len() => {
                    return Err(ProgramError::BadJump { at, target });
                }
                Op::SetGlobal(_) if !allow_set => {
                    return Err(ProgramError::SetGlobalInBody(at));
                }
                Op::Global(slot) | Op::SetGlobal(slot) if slot >= self.globals => {
                    return Err(ProgramError::BadGlobal { at, slot });
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Content hash (FNV-1a over the canonical encoding); snapshot images
    /// embed it so a restore against the wrong program is rejected.
    pub fn hash(&self) -> u64 {
        let mut h = Fnv::new();
        h.update(self.name.as_bytes());
        h.update(self.device_class.to_string().as_bytes());
        h.update(&self.fuel_limit.to_le_bytes());
        h.update(&self.base_flops.to_bits().to_le_bytes());
        h.update(&self.flops_per_byte.to_bits().to_le_bytes());
        h.update(&self.bytes_out_hint.to_le_bytes());
        h.update(&[self.globals, self.snapshot as u8]);
        for seq in [&self.init, &self.body] {
            h.update(&(seq.len() as u64).to_le_bytes());
            for op in seq {
                for v in encode_op(op) {
                    match v {
                        Value::Text(t) => h.update(t.as_bytes()),
                        Value::U64(n) => h.update(&n.to_le_bytes()),
                        Value::F64(x) => h.update(&x.to_bits().to_le_bytes()),
                        _ => {}
                    }
                }
            }
        }
        h.finish()
    }

    /// Encodes the program as a tagged [`Value::List`] for the wire.
    pub fn to_value(&self) -> Value {
        Value::List(vec![
            Value::Text(PROGRAM_TAG.to_string()),
            Value::Text(self.name.clone()),
            Value::Text(self.device_class.to_string()),
            Value::U64(self.fuel_limit),
            Value::F64(self.base_flops),
            Value::F64(self.flops_per_byte),
            Value::U64(self.bytes_out_hint),
            Value::U64(self.globals as u64),
            Value::U64(self.snapshot as u64),
            Value::List(
                self.init
                    .iter()
                    .map(|op| Value::List(encode_op(op)))
                    .collect(),
            ),
            Value::List(
                self.body
                    .iter()
                    .map(|op| Value::List(encode_op(op)))
                    .collect(),
            ),
        ])
    }

    /// Decodes a program from its tagged wire encoding. Does **not**
    /// validate — call [`GuestProgram::validate`] afterwards.
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError::Malformed`] on any structural mismatch.
    pub fn from_value(v: &Value) -> Result<GuestProgram, ProgramError> {
        let bad = |msg: &str| ProgramError::Malformed(msg.to_string());
        let items = match v {
            Value::List(items) if items.len() == 11 => items,
            _ => return Err(bad("expected an 11-element tagged list")),
        };
        match &items[0] {
            Value::Text(t) if t == PROGRAM_TAG => {}
            _ => return Err(bad("missing program tag")),
        }
        let text = |i: usize| match &items[i] {
            Value::Text(t) => Ok(t.clone()),
            _ => Err(bad("expected text field")),
        };
        let u64f = |i: usize| match &items[i] {
            Value::U64(n) => Ok(*n),
            _ => Err(bad("expected u64 field")),
        };
        let f64f = |i: usize| match &items[i] {
            Value::F64(x) => Ok(*x),
            _ => Err(bad("expected f64 field")),
        };
        let device_class = match text(2)?.as_str() {
            "CPU" => DeviceClass::Cpu,
            "GPU" => DeviceClass::Gpu,
            "FPGA" => DeviceClass::Fpga,
            "TPU" => DeviceClass::Tpu,
            "QPU" => DeviceClass::Qpu,
            other => {
                return Err(ProgramError::Malformed(format!(
                    "unknown device class {other:?}"
                )))
            }
        };
        let ops = |i: usize| -> Result<Vec<Op>, ProgramError> {
            let list = match &items[i] {
                Value::List(l) => l,
                _ => return Err(bad("expected op list")),
            };
            list.iter()
                .map(|item| match item {
                    Value::List(parts) => decode_op(parts),
                    _ => Err(bad("expected op encoding list")),
                })
                .collect()
        };
        let globals = u64f(7)?;
        if globals > u8::MAX as u64 {
            return Err(bad("too many globals"));
        }
        Ok(GuestProgram {
            name: text(1)?,
            device_class,
            fuel_limit: u64f(3)?,
            base_flops: f64f(4)?,
            flops_per_byte: f64f(5)?,
            bytes_out_hint: u64f(6)?,
            globals: globals as u8,
            snapshot: u64f(8)? != 0,
            init: ops(9)?,
            body: ops(10)?,
        })
    }
}

fn encode_op(op: &Op) -> Vec<Value> {
    let mut parts = vec![Value::Text(op.mnemonic().to_string())];
    match *op {
        Op::PushU(n) => parts.push(Value::U64(n)),
        Op::PushF(x) => parts.push(Value::F64(x)),
        Op::Global(g) | Op::SetGlobal(g) => parts.push(Value::U64(g as u64)),
        Op::Jump(target) | Op::JumpIfZero(target) => parts.push(Value::U64(target as u64)),
        _ => {}
    }
    parts
}

fn decode_op(parts: &[Value]) -> Result<Op, ProgramError> {
    let bad = |msg: String| ProgramError::Malformed(msg);
    let name = match parts.first() {
        Some(Value::Text(t)) => t.as_str(),
        _ => return Err(bad("op missing mnemonic".to_string())),
    };
    let arg_u64 = || match parts.get(1) {
        Some(Value::U64(n)) => Ok(*n),
        _ => Err(bad(format!("op {name} missing u64 argument"))),
    };
    let arg_u8 = || {
        arg_u64().and_then(|n| {
            u8::try_from(n).map_err(|_| bad(format!("op {name} argument {n} exceeds u8")))
        })
    };
    let arg_u16 = || {
        arg_u64().and_then(|n| {
            u16::try_from(n).map_err(|_| bad(format!("op {name} argument {n} exceeds u16")))
        })
    };
    Ok(match name {
        "push.u" => Op::PushU(arg_u64()?),
        "push.f" => match parts.get(1) {
            Some(Value::F64(x)) => Op::PushF(*x),
            _ => return Err(bad("op push.f missing f64 argument".to_string())),
        },
        "input" => Op::Input,
        "global" => Op::Global(arg_u8()?),
        "set_global" => Op::SetGlobal(arg_u8()?),
        "dup" => Op::Dup,
        "pop" => Op::Pop,
        "swap" => Op::Swap,
        "add" => Op::Add,
        "sub" => Op::Sub,
        "mul" => Op::Mul,
        "div" => Op::Div,
        "rem" => Op::Rem,
        "neg" => Op::Neg,
        "sqrt" => Op::Sqrt,
        "min" => Op::Min,
        "max" => Op::Max,
        "lt" => Op::Lt,
        "eq" => Op::Eq,
        "len" => Op::Len,
        "get" => Op::Get,
        "vec.fill" => Op::VecFill,
        "vec.scale" => Op::VecScale,
        "vec.add" => Op::VecAdd,
        "vec.sum" => Op::VecSum,
        "vec.dot" => Op::VecDot,
        "jump" => Op::Jump(arg_u16()?),
        "jump.ez" => Op::JumpIfZero(arg_u16()?),
        "return" => Op::Return,
        other => return Err(bad(format!("unknown op {other:?}"))),
    })
}

/// Incremental FNV-1a (64-bit).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> GuestProgram {
        GuestProgram::new("axpy", DeviceClass::Gpu)
            .with_fuel(10_000)
            .with_work(100.0, 2.0, 64)
            .with_init(
                1,
                vec![Op::PushU(4), Op::PushF(2.5), Op::VecFill, Op::SetGlobal(0)],
            )
            .with_body(vec![Op::Input, Op::Global(0), Op::VecDot, Op::Return])
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let p = sample();
        p.validate().unwrap();
        let decoded = GuestProgram::from_value(&p.to_value()).unwrap();
        assert_eq!(decoded, p);
        assert_eq!(decoded.hash(), p.hash());
    }

    #[test]
    fn hash_is_content_sensitive() {
        let p = sample();
        let mut q = sample();
        q.body.push(Op::Pop);
        assert_ne!(p.hash(), q.hash());
    }

    #[test]
    fn validation_rejects_bad_shapes() {
        let mut p = sample();
        p.name = "a/b".to_string();
        assert!(matches!(p.validate(), Err(ProgramError::BadName(_))));
        let mut p = sample();
        p.name = "_sneaky".to_string();
        assert!(matches!(p.validate(), Err(ProgramError::BadName(_))));
        let mut p = sample();
        p.fuel_limit = 0;
        assert_eq!(p.validate(), Err(ProgramError::ZeroFuel));
        let mut p = sample();
        p.body.clear();
        assert_eq!(p.validate(), Err(ProgramError::EmptyBody));
        let mut p = sample();
        p.body = vec![Op::Jump(99), Op::Return];
        assert_eq!(
            p.validate(),
            Err(ProgramError::BadJump { at: 0, target: 99 })
        );
        let mut p = sample();
        p.body = vec![Op::Global(7), Op::Return];
        assert_eq!(
            p.validate(),
            Err(ProgramError::BadGlobal { at: 0, slot: 7 })
        );
        let mut p = sample();
        p.body = vec![Op::PushU(1), Op::SetGlobal(0), Op::Return];
        assert_eq!(p.validate(), Err(ProgramError::SetGlobalInBody(1)));
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(GuestProgram::from_value(&Value::U64(1)).is_err());
        assert!(GuestProgram::from_value(&Value::List(vec![])).is_err());
        let mut items = match sample().to_value() {
            Value::List(items) => items,
            _ => unreachable!(),
        };
        items[0] = Value::Text("wrong.tag".to_string());
        assert!(GuestProgram::from_value(&Value::List(items)).is_err());
    }
}
