//! Registration-time bytecode verification: an abstract interpreter
//! that proves type- and stack-safety of a guest program before it is
//! admitted to the registry (the eBPF/Wasm-verifier analogue for the
//! guest instruction set).
//!
//! For each instruction sequence (init and body) the verifier walks the
//! control-flow graph with a worklist, carrying an abstract stack over
//! the lattice `U64 ⊔ F64 = Num`, `Vec`, `Unit`, everything ⊔ `Any`
//! (⊤). Constants feeding `vec.fill` and vector lengths are tracked so
//! fuel costs stay exact where they can be. The pass computes the exact
//! stack depth at every pc (merge points must agree, Wasm-style, so the
//! per-pc minimum and maximum coincide), flags unreachable code, and
//! rejects any program with a reachable instruction that provably traps:
//! a definite operand type mismatch, a stack underflow, or a body path
//! that falls off the end without `Return`.
//!
//! **Input polymorphism.** A body's `input` type is unknown until
//! invocation, so the body is analyzed once with the input at ⊤ (the
//! *acceptance* pass — its faults reject the program) and once per
//! concrete input class (`u64` / `f64` / vector / other). A class whose
//! pass needs no dynamic type dispatch is [`ClassVerdict::Clean`]:
//! invocations with that input shape run the unchecked fast path
//! ([`Instance::run_verified`](crate::Instance::run_verified)), which
//! skips every per-op type and underflow check. Classes that still need
//! a check — or provably trap — fall back to the checking interpreter,
//! which traps honestly at runtime.
//!
//! **Soundness argument.** The fast path is only entered when every
//! reachable instruction, under the concrete input class, has fully
//! known operand types that satisfy its signature and an entry stack
//! depth at least its arity. Value-dependent faults (division by zero,
//! out-of-bounds `get`, vector length mismatch, oversized `vec.fill`,
//! negative `sqrt`, fuel exhaustion) stay dynamically checked on both
//! paths — the verifier only discharges *type* and *underflow* checks.
//!
//! **Fuel bounds.** Loop-free programs whose vector costs are statically
//! known get an exact worst-case bound (the longest acyclic path through
//! the cost-annotated CFG). A reachable backward jump, or a vector op
//! over input-dependent lengths, makes intrinsic termination unprovable:
//! the verdict is [`FuelBound::Unbounded`] and the only sound cap is the
//! program's own fuel limit, which the interpreter enforces per run.

use kaas_kernels::Value;
use std::collections::VecDeque;

use crate::program::{GuestProgram, Op};

/// Abstract value type: the verifier's lattice.
///
/// Ordering (⊑): `U64(Some(k)) ⊑ U64(None) ⊑ Num ⊑ Any`, likewise for
/// `F64 ⊑ Num` and `Vec(Some(n)) ⊑ Vec(None) ⊑ Any`, `Unit ⊑ Any`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbsTy {
    /// An unsigned integer, optionally a known constant.
    U64(Option<u64>),
    /// A float scalar.
    F64,
    /// A scalar of unknown width (join of `U64` and `F64`).
    Num,
    /// A float vector, optionally of known length.
    Vec(Option<u64>),
    /// The unit value (the init program's input).
    Unit,
    /// ⊤ — anything, e.g. an invocation input of unknown shape.
    Any,
}

impl AbsTy {
    fn join(self, other: AbsTy) -> AbsTy {
        match (self, other) {
            (a, b) if a == b => a,
            (AbsTy::U64(x), AbsTy::U64(y)) => AbsTy::U64(if x == y { x } else { None }),
            (AbsTy::Vec(x), AbsTy::Vec(y)) => AbsTy::Vec(if x == y { x } else { None }),
            (AbsTy::U64(_) | AbsTy::F64 | AbsTy::Num, AbsTy::U64(_) | AbsTy::F64 | AbsTy::Num) => {
                AbsTy::Num
            }
            _ => AbsTy::Any,
        }
    }

    fn name(self) -> &'static str {
        match self {
            AbsTy::U64(_) => "u64",
            AbsTy::F64 => "f64",
            AbsTy::Num => "scalar",
            AbsTy::Vec(_) => "vector",
            AbsTy::Unit => "unit",
            AbsTy::Any => "⊤",
        }
    }
}

/// The shape class of an invocation input, as the verifier partitions
/// it. Each class gets its own typing pass and [`ClassVerdict`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputClass {
    /// `Value::U64`.
    U64,
    /// `Value::F64`.
    F64,
    /// `Value::F64s`.
    Vec,
    /// Anything else (unit, bytes, text, lists).
    Other,
}

impl InputClass {
    /// Every class, in verdict-table order.
    pub const ALL: [InputClass; 4] = [
        InputClass::U64,
        InputClass::F64,
        InputClass::Vec,
        InputClass::Other,
    ];

    /// Classifies a concrete invocation input.
    pub fn of(v: &Value) -> InputClass {
        match v {
            Value::U64(_) => InputClass::U64,
            Value::F64(_) => InputClass::F64,
            Value::F64s(_) => InputClass::Vec,
            _ => InputClass::Other,
        }
    }

    fn ty(self) -> AbsTy {
        match self {
            InputClass::U64 => AbsTy::U64(None),
            InputClass::F64 => AbsTy::F64,
            InputClass::Vec => AbsTy::Vec(None),
            InputClass::Other => AbsTy::Any,
        }
    }

    fn index(self) -> usize {
        match self {
            InputClass::U64 => 0,
            InputClass::F64 => 1,
            InputClass::Vec => 2,
            InputClass::Other => 3,
        }
    }

    /// Stable lowercase label (bench/report output).
    pub fn name(self) -> &'static str {
        match self {
            InputClass::U64 => "u64",
            InputClass::F64 => "f64",
            InputClass::Vec => "vec",
            InputClass::Other => "other",
        }
    }
}

/// What the typing pass concluded for one input class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClassVerdict {
    /// Every reachable instruction is fully typed: the unchecked fast
    /// path is sound for inputs of this class.
    Clean,
    /// Some instruction still consumes a ⊤-typed operand: run the
    /// checking interpreter (it may trap honestly at runtime).
    Checked,
    /// Some reachable instruction provably traps under this class:
    /// the checking interpreter reports the trap when it is reached.
    Trapping,
}

impl ClassVerdict {
    /// Stable lowercase label (bench/report output).
    pub fn name(self) -> &'static str {
        match self {
            ClassVerdict::Clean => "clean",
            ClassVerdict::Checked => "checked",
            ClassVerdict::Trapping => "trapping",
        }
    }
}

/// The verifier's worst-case fuel verdict for the body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FuelBound {
    /// Loop-free with statically known costs: no run — successful or
    /// trapping — spends more fuel than this.
    Bounded(u64),
    /// A reachable backward jump or an input-dependent vector cost:
    /// intrinsic termination is unprovable, so the only sound cap is
    /// the program's own fuel limit (enforced per run).
    Unbounded {
        /// The program's `fuel_limit`.
        cap: u64,
    },
}

impl FuelBound {
    /// The sound worst-case fuel any single run can consume.
    pub fn worst_case(&self) -> u64 {
        match self {
            FuelBound::Bounded(n) => *n,
            FuelBound::Unbounded { cap } => *cap,
        }
    }
}

/// Which instruction sequence a diagnostic points into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeqName {
    /// The init program.
    Init,
    /// The per-invocation body.
    Body,
    /// A program-level fault with no single pc (shape validation).
    Program,
}

impl std::fmt::Display for SeqName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SeqName::Init => write!(f, "init"),
            SeqName::Body => write!(f, "body"),
            SeqName::Program => write!(f, "program"),
        }
    }
}

/// One structured, file-free verifier finding: an instruction sequence,
/// a pc into it, a stable rule slug, and a rendered message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyDiag {
    /// The sequence the finding is in.
    pub seq: SeqName,
    /// Instruction index (`seq.len()` marks the fall-off-the-end point;
    /// meaningless for [`SeqName::Program`]).
    pub pc: usize,
    /// Stable rule slug: `type`, `underflow`, `depth`, `no-return`,
    /// `unreachable`, or `validate`.
    pub rule: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl std::fmt::Display for VerifyDiag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.seq {
            SeqName::Program => write!(f, "program: [{}] {}", self.rule, self.message),
            seq => write!(f, "{seq}@{}: [{}] {}", self.pc, self.rule, self.message),
        }
    }
}

/// Verification rejected the program. Carries every finding, in
/// discovery order (deterministic for a given program).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// The findings that caused rejection.
    pub diags: Vec<VerifyDiag>,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, d) in self.diags.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

impl std::error::Error for VerifyError {}

/// Per-sequence facts the typing pass computed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeqFacts {
    /// Exact stack depth at entry to each pc (`None` = unreachable).
    /// Index `len` is the fall-off-the-end point. Merge points must
    /// agree on depth, so per-pc min and max coincide.
    pub depth: Vec<Option<usize>>,
    /// The deepest stack any execution of the sequence can reach —
    /// the fast path preallocates exactly this.
    pub max_stack: usize,
}

/// The certificate a program carries out of [`verify`]: proof-derived
/// facts the interpreter and the registry consume.
#[derive(Debug, Clone, PartialEq)]
pub struct Verified {
    hash: u64,
    fuel_limit: u64,
    /// Stack facts for the init program.
    pub init: SeqFacts,
    /// Stack facts for the body.
    pub body: SeqFacts,
    classes: [ClassVerdict; 4],
    /// Worst-case fuel verdict for one body invocation.
    pub fuel_bound: FuelBound,
    /// Non-fatal findings (unreachable code), in discovery order.
    pub warnings: Vec<VerifyDiag>,
}

impl Verified {
    /// Does this certificate belong to `program` (content hash)?
    pub fn covers(&self, program: &GuestProgram) -> bool {
        self.hash == program.hash()
    }

    /// The verdict for one input class.
    pub fn verdict_for(&self, class: InputClass) -> ClassVerdict {
        self.classes[class.index()]
    }

    /// All four class verdicts, in [`InputClass::ALL`] order.
    pub fn classes(&self) -> [ClassVerdict; 4] {
        self.classes
    }

    /// The registry's predicted-cost hint: the worst-case fuel one
    /// invocation can consume, clamped to the fuel limit the
    /// interpreter enforces anyway.
    pub fn predicted_fuel(&self) -> u64 {
        self.fuel_bound.worst_case().min(self.fuel_limit)
    }

    /// The body's exact maximum stack depth.
    pub fn max_stack(&self) -> usize {
        self.body.max_stack
    }
}

/// One abstract machine state: the typed stack plus the global table.
#[derive(Debug, Clone, PartialEq, Eq)]
struct State {
    stack: Vec<AbsTy>,
    globals: Vec<AbsTy>,
}

/// What the abstract step of one instruction concluded.
enum StepFault {
    Underflow { need: usize, have: usize },
    Type { message: String },
}

struct StepOk {
    /// Worst-case fuel this instruction spends (`None` = data-dependent).
    cost: Option<u64>,
    /// Did the instruction consume a ⊤-typed operand (dynamic check)?
    checked: bool,
}

/// Operand requirement of a typed slot.
enum Req {
    Scalar,
    ExactU64,
    Vector,
    Sized,
}

/// `Ok(true)` = needs a dynamic check, `Ok(false)` = statically fine.
fn require(t: AbsTy, req: Req, op: Op) -> Result<bool, StepFault> {
    let ok = |fine: bool| Ok(fine);
    let bad = |expected: &str| {
        Err(StepFault::Type {
            message: format!(
                "{}: {} operand where {expected} is required",
                op.mnemonic(),
                t.name()
            ),
        })
    };
    match (req, t) {
        (Req::Scalar, AbsTy::U64(_) | AbsTy::F64 | AbsTy::Num) => ok(false),
        (Req::Scalar, AbsTy::Any) => ok(true),
        (Req::Scalar, _) => bad("a scalar"),
        (Req::ExactU64, AbsTy::U64(_)) => ok(false),
        (Req::ExactU64, AbsTy::Num | AbsTy::Any) => ok(true),
        (Req::ExactU64, _) => bad("a u64"),
        (Req::Vector, AbsTy::Vec(_)) => ok(false),
        (Req::Vector, AbsTy::Any) => ok(true),
        (Req::Vector, _) => bad("a float vector"),
        // `len` accepts vectors plus the sized wire kinds only an
        // invocation input can carry (bytes/text/list) — so ⊤ stays
        // dynamically checked and scalars/unit are definite faults.
        (Req::Sized, AbsTy::Vec(_)) => ok(false),
        (Req::Sized, AbsTy::Any) => ok(true),
        (Req::Sized, _) => bad("a sized value"),
    }
}

fn arity(op: Op) -> usize {
    match op {
        Op::PushU(_) | Op::PushF(_) | Op::Input | Op::Global(_) | Op::Jump(_) => 0,
        Op::SetGlobal(_)
        | Op::Dup
        | Op::Pop
        | Op::Neg
        | Op::Sqrt
        | Op::Len
        | Op::VecSum
        | Op::JumpIfZero(_)
        | Op::Return => 1,
        Op::Swap
        | Op::Add
        | Op::Sub
        | Op::Mul
        | Op::Div
        | Op::Rem
        | Op::Min
        | Op::Max
        | Op::Lt
        | Op::Eq
        | Op::Get
        | Op::VecFill
        | Op::VecScale
        | Op::VecAdd
        | Op::VecDot => 2,
    }
}

/// Abstractly executes `op` against `st` (stack and, in init, globals).
/// On success the state reflects the post-instruction machine.
fn step(op: Op, st: &mut State, input: AbsTy) -> Result<StepOk, StepFault> {
    let need = arity(op);
    let have = st.stack.len();
    if have < need {
        return Err(StepFault::Underflow { need, have });
    }
    let mut checked = false;
    let mut cost = Some(1u64);
    // Worst-case extra fuel of a vector op whose length operand is `t`.
    let vec_extra = |t: AbsTy| match t {
        AbsTy::Vec(Some(n)) => Some(1 + n / 16),
        _ => None,
    };
    match op {
        Op::PushU(n) => st.stack.push(AbsTy::U64(Some(n))),
        Op::PushF(_) => st.stack.push(AbsTy::F64),
        Op::Input => st.stack.push(input),
        Op::Global(g) => st.stack.push(st.globals[g as usize]),
        Op::SetGlobal(g) => {
            // Body occurrences are rejected by `validate()` before the
            // verifier runs, so this write is init-only by construction.
            let v = st.stack.pop().expect("arity checked");
            st.globals[g as usize] = v;
        }
        Op::Dup => {
            let top = *st.stack.last().expect("arity checked");
            st.stack.push(top);
        }
        Op::Pop => {
            st.stack.pop();
        }
        Op::Swap => {
            let len = st.stack.len();
            st.stack.swap(len - 1, len - 2);
        }
        Op::Add | Op::Sub | Op::Mul | Op::Div | Op::Rem | Op::Min | Op::Max => {
            let b = st.stack.pop().expect("arity checked");
            let a = st.stack.pop().expect("arity checked");
            checked |= require(a, Req::Scalar, op)?;
            checked |= require(b, Req::Scalar, op)?;
            // (u64, u64) stays integral; any float operand promotes.
            let out = match (a, b) {
                (AbsTy::U64(_), AbsTy::U64(_)) => AbsTy::U64(None),
                (AbsTy::F64, AbsTy::U64(_) | AbsTy::F64) | (AbsTy::U64(_), AbsTy::F64) => {
                    AbsTy::F64
                }
                _ => AbsTy::Num,
            };
            st.stack.push(out);
        }
        Op::Neg | Op::Sqrt => {
            let x = st.stack.pop().expect("arity checked");
            checked |= require(x, Req::Scalar, op)?;
            st.stack.push(AbsTy::F64);
        }
        Op::Lt | Op::Eq => {
            let b = st.stack.pop().expect("arity checked");
            let a = st.stack.pop().expect("arity checked");
            checked |= require(a, Req::Scalar, op)?;
            checked |= require(b, Req::Scalar, op)?;
            st.stack.push(AbsTy::U64(None));
        }
        Op::Len => {
            let v = st.stack.pop().expect("arity checked");
            checked |= require(v, Req::Sized, op)?;
            let out = match v {
                AbsTy::Vec(n) => AbsTy::U64(n),
                _ => AbsTy::U64(None),
            };
            st.stack.push(out);
        }
        Op::Get => {
            let index = st.stack.pop().expect("arity checked");
            let v = st.stack.pop().expect("arity checked");
            checked |= require(index, Req::ExactU64, op)?;
            checked |= require(v, Req::Sized, op)?;
            // A vector element is f64; a ⊤ container may be bytes
            // (u64 elements), so the result degrades to scalar.
            let out = match v {
                AbsTy::Vec(_) => AbsTy::F64,
                _ => AbsTy::Num,
            };
            st.stack.push(out);
        }
        Op::VecFill => {
            let fill = st.stack.pop().expect("arity checked");
            let count = st.stack.pop().expect("arity checked");
            checked |= require(fill, Req::Scalar, op)?;
            checked |= require(count, Req::ExactU64, op)?;
            let len = match count {
                AbsTy::U64(k) => k,
                _ => None,
            };
            cost = len.map(|n| 1 + n / 16);
            st.stack.push(AbsTy::Vec(len));
        }
        Op::VecScale => {
            let s = st.stack.pop().expect("arity checked");
            let v = st.stack.pop().expect("arity checked");
            checked |= require(s, Req::Scalar, op)?;
            checked |= require(v, Req::Vector, op)?;
            cost = vec_extra(v);
            let out = match v {
                AbsTy::Vec(n) => AbsTy::Vec(n),
                _ => AbsTy::Vec(None),
            };
            st.stack.push(out);
        }
        Op::VecAdd | Op::VecDot => {
            let b = st.stack.pop().expect("arity checked");
            let a = st.stack.pop().expect("arity checked");
            checked |= require(a, Req::Vector, op)?;
            checked |= require(b, Req::Vector, op)?;
            if let (AbsTy::Vec(Some(x)), AbsTy::Vec(Some(y))) = (a, b) {
                if x != y {
                    return Err(StepFault::Type {
                        message: format!(
                            "{}: vectors of provably different lengths ({x} vs {y})",
                            op.mnemonic()
                        ),
                    });
                }
            }
            cost = vec_extra(a);
            let out = if matches!(op, Op::VecDot) {
                AbsTy::F64
            } else {
                match (a, b) {
                    (AbsTy::Vec(n), _) => AbsTy::Vec(n),
                    _ => AbsTy::Vec(None),
                }
            };
            st.stack.push(out);
        }
        Op::VecSum => {
            let v = st.stack.pop().expect("arity checked");
            checked |= require(v, Req::Vector, op)?;
            cost = vec_extra(v);
            st.stack.push(AbsTy::F64);
        }
        Op::Jump(_) => {}
        Op::JumpIfZero(_) => {
            let c = st.stack.pop().expect("arity checked");
            checked |= require(c, Req::ExactU64, op)?;
        }
        Op::Return => {
            st.stack.pop();
        }
    }
    Ok(StepOk { cost, checked })
}

/// Everything one typing pass over one sequence computed.
struct SeqAnalysis {
    /// Abstract state at entry to each pc; index `len` is the
    /// fall-off-the-end exit.
    states: Vec<Option<State>>,
    /// Definite faults, in discovery order.
    faults: Vec<VerifyDiag>,
    /// Any reachable instruction needed a dynamic type check.
    needs_check: bool,
    /// Join of the global table over every exit (Return or fall-off);
    /// `None` when no exit is reachable.
    exit_globals: Option<Vec<AbsTy>>,
    /// Worst-case fuel per pc (`None` = data-dependent), where reachable.
    costs: Vec<Option<u64>>,
    /// A reachable jump targets itself or an earlier pc.
    back_edge: bool,
    max_stack: usize,
}

impl SeqAnalysis {
    fn falloff_reachable(&self) -> bool {
        self.states.last().is_some_and(Option::is_some)
    }

    fn facts(&self) -> SeqFacts {
        SeqFacts {
            depth: self
                .states
                .iter()
                .map(|s| s.as_ref().map(|st| st.stack.len()))
                .collect(),
            max_stack: self.max_stack,
        }
    }
}

/// Worklist fixpoint over one instruction sequence.
fn analyze(seq: &[Op], name: SeqName, input: AbsTy, globals_in: &[AbsTy]) -> SeqAnalysis {
    let n = seq.len();
    let mut states: Vec<Option<State>> = vec![None; n + 1];
    states[0] = Some(State {
        stack: Vec::new(),
        globals: globals_in.to_vec(),
    });
    let mut faults: Vec<VerifyDiag> = Vec::new();
    let mut step_faulted = vec![false; n];
    let mut depth_faulted = vec![false; n + 1];
    let mut costs: Vec<Option<u64>> = vec![None; n];
    let mut needs_check = false;
    let mut back_edge = false;
    let mut exit_globals: Option<Vec<AbsTy>> = None;
    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut queued = vec![false; n];
    if n > 0 {
        queue.push_back(0);
        queued[0] = true;
    }
    let join_globals = |slot: &mut Option<Vec<AbsTy>>, g: &[AbsTy]| match slot {
        Some(cur) => {
            for (c, v) in cur.iter_mut().zip(g) {
                *c = c.join(*v);
            }
        }
        None => *slot = Some(g.to_vec()),
    };
    while let Some(pc) = queue.pop_front() {
        queued[pc] = false;
        let Some(entry) = states[pc].clone() else {
            continue;
        };
        let op = seq[pc];
        let mut st = entry;
        let out = match step(op, &mut st, input) {
            Ok(out) => out,
            Err(fault) => {
                // A definite fault kills the path: execution cannot
                // continue past it, so successors get no state.
                if !step_faulted[pc] {
                    step_faulted[pc] = true;
                    let (rule, message) = match fault {
                        StepFault::Underflow { need, have } => (
                            "underflow",
                            format!("{}: pops {need} with stack depth {have}", op.mnemonic()),
                        ),
                        StepFault::Type { message } => ("type", message),
                    };
                    faults.push(VerifyDiag {
                        seq: name,
                        pc,
                        rule,
                        message,
                    });
                }
                continue;
            }
        };
        costs[pc] = out.cost;
        needs_check |= out.checked;
        let succs: [Option<usize>; 2] = match op {
            Op::Jump(t) => [Some(t as usize), None],
            Op::JumpIfZero(t) => [Some(t as usize), Some(pc + 1)],
            Op::Return => {
                join_globals(&mut exit_globals, &st.globals);
                [None, None]
            }
            _ => [Some(pc + 1), None],
        };
        if matches!(op, Op::Jump(_) | Op::JumpIfZero(_)) {
            let t = match op {
                Op::Jump(t) | Op::JumpIfZero(t) => t as usize,
                _ => unreachable!(),
            };
            back_edge |= t <= pc;
        }
        for succ in succs.into_iter().flatten() {
            match &mut states[succ] {
                None => {
                    states[succ] = Some(st.clone());
                    if succ < n && !queued[succ] {
                        queue.push_back(succ);
                        queued[succ] = true;
                    }
                }
                Some(old) => {
                    if old.stack.len() != st.stack.len() {
                        if !depth_faulted[succ] {
                            depth_faulted[succ] = true;
                            faults.push(VerifyDiag {
                                seq: name,
                                pc: succ,
                                rule: "depth",
                                message: format!(
                                    "inconsistent stack depth at join ({} vs {})",
                                    old.stack.len(),
                                    st.stack.len()
                                ),
                            });
                        }
                        continue;
                    }
                    let mut changed = false;
                    for (o, v) in old.stack.iter_mut().zip(&st.stack) {
                        let j = o.join(*v);
                        changed |= j != *o;
                        *o = j;
                    }
                    for (o, v) in old.globals.iter_mut().zip(&st.globals) {
                        let j = o.join(*v);
                        changed |= j != *o;
                        *o = j;
                    }
                    if changed && succ < n && !queued[succ] {
                        queue.push_back(succ);
                        queued[succ] = true;
                    }
                }
            }
        }
    }
    if let Some(fall) = states[n].as_ref() {
        join_globals(&mut exit_globals, &fall.globals);
    }
    let max_stack = states
        .iter()
        .flatten()
        .map(|s| s.stack.len())
        .max()
        .unwrap_or(0);
    SeqAnalysis {
        states,
        faults,
        needs_check,
        exit_globals,
        costs,
        back_edge,
        max_stack,
    }
}

/// Unreachable-code warnings: one per contiguous dead range.
fn unreachable_warnings(name: SeqName, an: &SeqAnalysis, out: &mut Vec<VerifyDiag>) {
    let n = an.states.len() - 1;
    let mut pc = 0;
    while pc < n {
        if an.states[pc].is_some() {
            pc += 1;
            continue;
        }
        let start = pc;
        while pc < n && an.states[pc].is_none() {
            pc += 1;
        }
        out.push(VerifyDiag {
            seq: name,
            pc: start,
            rule: "unreachable",
            message: if pc - start == 1 {
                format!("op {start} is unreachable")
            } else {
                format!("ops {start}..{} are unreachable", pc - 1)
            },
        });
    }
}

/// Worst-case fuel for the body from the acceptance pass: the longest
/// path through the (acyclic, forward-edge-only) cost-annotated CFG, or
/// `Unbounded` when a back edge or data-dependent cost blocks that.
fn fuel_bound(seq: &[Op], an: &SeqAnalysis, fuel_limit: u64) -> FuelBound {
    if an.back_edge {
        return FuelBound::Unbounded { cap: fuel_limit };
    }
    let n = seq.len();
    for pc in 0..n {
        if an.states[pc].is_some() && an.costs[pc].is_none() {
            return FuelBound::Unbounded { cap: fuel_limit };
        }
    }
    // No back edges ⇒ every jump target is strictly greater than its
    // source, so increasing pc order is a topological order.
    let mut dist: Vec<Option<u64>> = vec![None; n + 2]; // n = fall-off, n+1 = return
    dist[0] = Some(0);
    for pc in 0..n {
        let (Some(d), Some(_)) = (dist[pc], an.states[pc].as_ref()) else {
            continue;
        };
        let total = d.saturating_add(an.costs[pc].unwrap_or(1));
        let mut relax = |t: usize| {
            let slot = &mut dist[t.min(n + 1)];
            *slot = Some(slot.map_or(total, |old: u64| old.max(total)));
        };
        match seq[pc] {
            Op::Jump(t) => relax(t as usize),
            Op::JumpIfZero(t) => {
                relax(t as usize);
                relax(pc + 1);
            }
            Op::Return => relax(n + 1),
            _ => relax(pc + 1),
        }
    }
    FuelBound::Bounded(dist[n].unwrap_or(0).max(dist[n + 1].unwrap_or(0)))
}

/// Verifies a guest program, producing a [`Verified`] certificate or
/// the full list of findings that reject it.
///
/// Runs shape validation first (so the verifier never indexes out of
/// range on malformed input), then the init pass (input is `Unit`), the
/// body acceptance pass (input at ⊤), and one typing pass per concrete
/// input class for the fast-path verdicts.
///
/// # Errors
///
/// Returns every [`VerifyDiag`] finding when the program has a
/// reachable provable trap: a type mismatch, a stack underflow, an
/// inconsistent-depth join, or a body path that falls off the end.
pub fn verify(program: &GuestProgram) -> Result<Verified, VerifyError> {
    if let Err(e) = program.validate() {
        return Err(VerifyError {
            diags: vec![VerifyDiag {
                seq: SeqName::Program,
                pc: 0,
                rule: "validate",
                message: e.to_string(),
            }],
        });
    }
    let globals0 = vec![AbsTy::Unit; program.globals as usize];
    let init_an = analyze(&program.init, SeqName::Init, AbsTy::Unit, &globals0);
    // If init provably never completes (no reachable exit) the fuel
    // meter stops it at instantiate time; analyze the body under ⊤
    // globals so that failure surfaces with its honest runtime kind.
    let body_globals = init_an
        .exit_globals
        .clone()
        .unwrap_or_else(|| vec![AbsTy::Any; program.globals as usize]);
    let body_an = analyze(&program.body, SeqName::Body, AbsTy::Any, &body_globals);
    let mut diags = init_an.faults.clone();
    diags.extend(body_an.faults.clone());
    if body_an.falloff_reachable() {
        diags.push(VerifyDiag {
            seq: SeqName::Body,
            pc: program.body.len(),
            rule: "no-return",
            message: "a path falls off the end without `return`".to_string(),
        });
    }
    if !diags.is_empty() {
        return Err(VerifyError { diags });
    }
    let classes = InputClass::ALL.map(|class| {
        let an = analyze(&program.body, SeqName::Body, class.ty(), &body_globals);
        if !an.faults.is_empty() {
            ClassVerdict::Trapping
        } else if an.needs_check {
            ClassVerdict::Checked
        } else {
            ClassVerdict::Clean
        }
    });
    let bound = fuel_bound(&program.body, &body_an, program.fuel_limit);
    let mut warnings = Vec::new();
    unreachable_warnings(SeqName::Init, &init_an, &mut warnings);
    unreachable_warnings(SeqName::Body, &body_an, &mut warnings);
    Ok(Verified {
        hash: program.hash(),
        fuel_limit: program.fuel_limit,
        init: init_an.facts(),
        body: body_an.facts(),
        classes,
        fuel_bound: bound,
        warnings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kaas_accel::DeviceClass;

    fn prog(body: Vec<Op>) -> GuestProgram {
        GuestProgram::new("t", DeviceClass::Cpu)
            .with_fuel(10_000)
            .with_body(body)
    }

    #[test]
    fn accepts_and_classifies_a_polymorphic_doubler() {
        let cert = verify(&prog(vec![Op::Input, Op::PushU(2), Op::Mul, Op::Return])).unwrap();
        assert_eq!(cert.verdict_for(InputClass::U64), ClassVerdict::Clean);
        assert_eq!(cert.verdict_for(InputClass::F64), ClassVerdict::Clean);
        assert_eq!(cert.verdict_for(InputClass::Vec), ClassVerdict::Trapping);
        assert_eq!(cert.verdict_for(InputClass::Other), ClassVerdict::Checked);
        assert_eq!(cert.fuel_bound, FuelBound::Bounded(4));
        assert_eq!(cert.max_stack(), 2);
        assert_eq!(
            cert.body.depth,
            vec![Some(0), Some(1), Some(2), Some(1), None]
        );
        assert!(cert.warnings.is_empty());
    }

    #[test]
    fn rejects_provable_underflow() {
        let err = verify(&prog(vec![Op::Pop, Op::Return])).unwrap_err();
        assert_eq!(err.diags.len(), 1);
        assert_eq!(err.diags[0].rule, "underflow");
        assert_eq!(err.diags[0].seq, SeqName::Body);
        assert_eq!(err.diags[0].pc, 0);
    }

    #[test]
    fn rejects_fall_off_the_end() {
        let err = verify(&prog(vec![Op::PushU(1), Op::Pop])).unwrap_err();
        assert!(err.diags.iter().any(|d| d.rule == "no-return"));
        // A jump straight to the end is the same fault.
        let err = verify(&prog(vec![Op::Jump(1)])).unwrap_err();
        assert!(err.diags.iter().any(|d| d.rule == "no-return"));
    }

    #[test]
    fn rejects_definite_type_faults() {
        // A float condition always traps `jump.ez`.
        let err = verify(&prog(vec![
            Op::PushF(1.0),
            Op::JumpIfZero(0),
            Op::PushU(1),
            Op::Return,
        ]))
        .unwrap_err();
        assert!(err.diags.iter().any(|d| d.rule == "type" && d.pc == 1));
        // Arithmetic over a vector operand always traps.
        let err = verify(&prog(vec![
            Op::PushU(2),
            Op::PushF(1.0),
            Op::VecFill,
            Op::PushU(1),
            Op::Add,
            Op::Return,
        ]))
        .unwrap_err();
        assert!(err.diags.iter().any(|d| d.rule == "type" && d.pc == 4));
        // Provably mismatched vector lengths.
        let err = verify(&prog(vec![
            Op::PushU(2),
            Op::PushF(1.0),
            Op::VecFill,
            Op::PushU(3),
            Op::PushF(1.0),
            Op::VecFill,
            Op::VecAdd,
            Op::Return,
        ]))
        .unwrap_err();
        assert!(err.diags.iter().any(|d| d.rule == "type" && d.pc == 6));
    }

    #[test]
    fn rejects_inconsistent_join_depths() {
        // The taken branch reaches pc 3 with depth 0, the fallthrough
        // with depth 1.
        let err = verify(&prog(vec![
            Op::Input,
            Op::JumpIfZero(3),
            Op::PushU(1),
            Op::Return,
        ]))
        .unwrap_err();
        assert!(err.diags.iter().any(|d| d.rule == "depth" && d.pc == 3));
    }

    #[test]
    fn warns_on_unreachable_code_without_rejecting() {
        let cert = verify(&prog(vec![Op::PushU(1), Op::Return, Op::Pop, Op::Pop])).unwrap();
        assert_eq!(cert.warnings.len(), 1);
        assert_eq!(cert.warnings[0].rule, "unreachable");
        assert_eq!(cert.warnings[0].pc, 2);
        assert_eq!(cert.body.depth[2], None);
    }

    #[test]
    fn fuel_bound_is_exact_on_loop_free_known_costs() {
        // 5 base ops + vec.fill(64)/16 + vec.sum(64)/16 = 5 + 4 + 4.
        let cert = verify(&prog(vec![
            Op::PushU(64),
            Op::PushF(1.0),
            Op::VecFill,
            Op::VecSum,
            Op::Return,
        ]))
        .unwrap();
        assert_eq!(cert.fuel_bound, FuelBound::Bounded(13));
        // Branches take the longest path: the expensive arm dominates.
        let cert = verify(&prog(vec![
            Op::Input,         // 0
            Op::JumpIfZero(5), // 1
            Op::PushU(64),     // 2
            Op::PushF(1.0),    // 3
            Op::Jump(7),       // 4
            Op::PushU(0),      // 5
            Op::PushF(0.0),    // 6
            Op::VecFill,       // 7
            Op::VecSum,        // 8 (length differs per path -> unknown)
            Op::Return,        // 9
        ]))
        .unwrap();
        assert_eq!(cert.fuel_bound, FuelBound::Unbounded { cap: 10_000 });
    }

    #[test]
    fn fuel_bound_caps_loops_and_input_vectors_at_the_limit() {
        let mut p = prog(vec![Op::Jump(0)]);
        p.fuel_limit = 64;
        assert_eq!(
            verify(&p).unwrap().fuel_bound,
            FuelBound::Unbounded { cap: 64 }
        );
        let cert = verify(&prog(vec![Op::Input, Op::VecSum, Op::Return])).unwrap();
        assert_eq!(cert.fuel_bound, FuelBound::Unbounded { cap: 10_000 });
        assert_eq!(cert.predicted_fuel(), 10_000);
    }

    #[test]
    fn loops_over_u64_inputs_verify_clean() {
        let cert = verify(&prog(vec![
            Op::Input,
            Op::Dup,
            Op::JumpIfZero(6),
            Op::PushU(1),
            Op::Sub,
            Op::Jump(1),
            Op::Return,
        ]))
        .unwrap();
        assert_eq!(cert.verdict_for(InputClass::U64), ClassVerdict::Clean);
        assert_eq!(cert.verdict_for(InputClass::F64), ClassVerdict::Trapping);
        assert!(matches!(cert.fuel_bound, FuelBound::Unbounded { .. }));
    }

    #[test]
    fn init_globals_type_the_body() {
        // Global 0 is a 4-vector, global 1 a float; the body is fully
        // typed for every input class (input unused).
        let p = GuestProgram::new("t", DeviceClass::Cpu)
            .with_fuel(10_000)
            .with_init(
                2,
                vec![
                    Op::PushU(4),
                    Op::PushF(0.5),
                    Op::VecFill,
                    Op::SetGlobal(0),
                    Op::PushF(3.0),
                    Op::SetGlobal(1),
                ],
            )
            .with_body(vec![
                Op::Global(0),
                Op::Global(1),
                Op::VecScale,
                Op::VecSum,
                Op::Return,
            ]);
        let cert = verify(&p).unwrap();
        for class in InputClass::ALL {
            assert_eq!(cert.verdict_for(class), ClassVerdict::Clean);
        }
        // 5 base ops, both vector ops over a known 4-vector (4/16 = 0).
        assert_eq!(cert.fuel_bound, FuelBound::Bounded(5));
        // An un-set global stays Unit: summing it is a definite fault.
        let mut q = p.clone();
        q.init.truncate(4);
        q.body = vec![Op::Global(1), Op::VecSum, Op::Return];
        let err = verify(&q).unwrap_err();
        assert!(err.diags.iter().any(|d| d.rule == "type"));
    }

    #[test]
    fn certificate_covers_its_program_only() {
        let p = prog(vec![Op::Input, Op::Return]);
        let cert = verify(&p).unwrap();
        assert!(cert.covers(&p));
        let q = prog(vec![Op::PushU(1), Op::Return]);
        assert!(!cert.covers(&q));
    }

    #[test]
    fn malformed_shapes_fail_with_validate_rule() {
        let mut p = prog(vec![Op::Return]);
        p.body = vec![Op::Jump(99), Op::Return];
        let err = verify(&p).unwrap_err();
        assert_eq!(err.diags[0].rule, "validate");
        assert_eq!(err.diags[0].seq, SeqName::Program);
    }

    #[test]
    fn diagnostics_render_file_free() {
        let err = verify(&prog(vec![Op::Pop, Op::Return])).unwrap_err();
        assert_eq!(
            err.to_string(),
            "body@0: [underflow] pop: pops 1 with stack depth 0"
        );
    }
}
