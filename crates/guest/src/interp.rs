//! The fuel-metered stack interpreter, instance snapshot/restore, and
//! the virtual-time cold-start cost model.

use std::rc::Rc;
use std::time::Duration;

use kaas_kernels::Value;

use crate::program::{GuestProgram, Op, MAX_VEC_LEN};
use crate::verify::{ClassVerdict, InputClass, Verified};

/// A runtime fault inside a guest program. Traps are deterministic:
/// the same program and input trap identically on every run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Trap {
    /// Integer or float division (or remainder) by zero.
    DivByZero,
    /// Vector access past the end.
    OobIndex {
        /// The requested index.
        index: u64,
        /// The vector length.
        len: u64,
    },
    /// An operand had the wrong type for the instruction.
    TypeMismatch(&'static str),
    /// `set_global` executed outside the init program.
    InitOnly,
    /// A binary vector op over vectors of different lengths.
    LengthMismatch {
        /// Length of the left operand.
        left: u64,
        /// Length of the right operand.
        right: u64,
    },
    /// An instruction popped an empty stack.
    StackUnderflow,
    /// The body ran off the end without executing `Return`.
    NoReturn,
    /// A math-domain fault (negative sqrt, oversized vector, …).
    Domain(&'static str),
    /// The fuel budget ran out mid-program.
    FuelExhausted {
        /// The program's fuel limit.
        limit: u64,
    },
}

impl std::fmt::Display for Trap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Trap::DivByZero => write!(f, "division by zero"),
            Trap::OobIndex { index, len } => {
                write!(f, "index {index} out of bounds for length {len}")
            }
            Trap::TypeMismatch(what) => write!(f, "type mismatch: {what}"),
            Trap::InitOnly => write!(f, "set_global outside init"),
            Trap::LengthMismatch { left, right } => {
                write!(f, "vector length mismatch: {left} vs {right}")
            }
            Trap::StackUnderflow => write!(f, "stack underflow"),
            Trap::NoReturn => write!(f, "body ended without return"),
            Trap::Domain(what) => write!(f, "domain fault: {what}"),
            Trap::FuelExhausted { limit } => write!(f, "fuel limit {limit} exhausted"),
        }
    }
}

impl std::error::Error for Trap {}

/// Per-run execution counters: retired instructions plus the dynamic
/// type/underflow checks the interpreter performed. The verified fast
/// path discharges those checks statically, so its `checks` stays 0 —
/// the delta is what the `verify` bench turns into modeled time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Instructions retired.
    pub ops: u64,
    /// Dynamic type and underflow checks performed.
    pub checks: u64,
}

/// Execution metering, monomorphized away on the uncounted paths.
trait Meter {
    fn op(&mut self);
    fn checks(&mut self, n: u64);
}

struct NoMeter;

impl Meter for NoMeter {
    #[inline(always)]
    fn op(&mut self) {}
    #[inline(always)]
    fn checks(&mut self, _: u64) {}
}

impl Meter for RunStats {
    #[inline(always)]
    fn op(&mut self) {
        self.ops += 1;
    }
    #[inline(always)]
    fn checks(&mut self, n: u64) {
        self.checks += n;
    }
}

/// The global table as one execution phase sees it: init may write,
/// invocations share the post-init table read-only (so `run` never
/// clones it).
enum Globals<'a> {
    Init(&'a mut [Value]),
    Frozen(&'a [Value]),
}

impl Globals<'_> {
    fn get(&self, g: u8) -> &Value {
        match self {
            Globals::Init(xs) => &xs[g as usize],
            Globals::Frozen(xs) => &xs[g as usize],
        }
    }

    fn set(&mut self, g: u8, v: Value) -> Result<(), Trap> {
        match self {
            Globals::Init(xs) => {
                xs[g as usize] = v;
                Ok(())
            }
            Globals::Frozen(_) => Err(Trap::InitOnly),
        }
    }
}

/// Why a snapshot image failed to restore.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RestoreError {
    /// The image was built from a different program (content hash).
    HashMismatch,
    /// The image ended mid-field.
    Truncated,
    /// An unknown value tag in the global table.
    BadTag(u8),
    /// The image's global count disagrees with the program's.
    WrongGlobals,
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreError::HashMismatch => write!(f, "snapshot is for a different program"),
            RestoreError::Truncated => write!(f, "snapshot image truncated"),
            RestoreError::BadTag(t) => write!(f, "snapshot image has unknown value tag {t}"),
            RestoreError::WrongGlobals => write!(f, "snapshot global count mismatch"),
        }
    }
}

impl std::error::Error for RestoreError {}

/// A warm guest-kernel instance: the program plus its post-init globals.
///
/// Because validation forbids `SetGlobal` in the body, an instance never
/// mutates after init — invocations are pure reads, so one instance can
/// back any number of runners and a snapshot taken at register time
/// stays valid forever.
#[derive(Debug, Clone)]
pub struct Instance {
    program: Rc<GuestProgram>,
    globals: Vec<Value>,
    init_fuel: u64,
}

impl Instance {
    /// Full instantiate: run the init program against fresh globals.
    ///
    /// # Errors
    ///
    /// Propagates any [`Trap`] raised by the init program.
    pub fn instantiate(program: Rc<GuestProgram>) -> Result<Instance, Trap> {
        let mut globals = vec![Value::Unit; program.globals as usize];
        let (_, init_fuel) = exec(
            &program.init,
            Globals::Init(&mut globals),
            &Value::Unit,
            program.fuel_limit,
            &mut NoMeter,
        )?;
        Ok(Instance {
            program,
            globals,
            init_fuel,
        })
    }

    /// The program this instance was built from.
    pub fn program(&self) -> &Rc<GuestProgram> {
        &self.program
    }

    /// Fuel the init program consumed (drives the full-instantiate cost).
    pub fn init_fuel(&self) -> u64 {
        self.init_fuel
    }

    /// Runs the body once. Returns the output and the fuel consumed.
    ///
    /// # Errors
    ///
    /// Returns the [`Trap`] the body raised, if any.
    pub fn run(&self, input: &Value) -> Result<(Value, u64), Trap> {
        let (v, fuel, _) = self.run_metered(input, &mut NoMeter)?;
        Ok((v, fuel))
    }

    /// [`run`](Instance::run) plus the [`RunStats`] the checking
    /// interpreter accumulated.
    ///
    /// # Errors
    ///
    /// Returns the [`Trap`] the body raised, if any.
    pub fn run_counted(&self, input: &Value) -> Result<(Value, u64, RunStats), Trap> {
        let mut stats = RunStats::default();
        self.run_metered(input, &mut stats)
            .map(|(v, fuel, _)| (v, fuel, stats))
    }

    /// Runs the body under a verification certificate: inputs whose
    /// class verdict is [`ClassVerdict::Clean`] take the fast path,
    /// which skips every per-op type and underflow check the verifier
    /// discharged; every other class falls back to the checking
    /// interpreter. Results and traps are identical on both paths.
    ///
    /// # Errors
    ///
    /// Returns the [`Trap`] the body raised, if any.
    ///
    /// # Panics
    ///
    /// Debug builds assert the certificate covers this program
    /// (content hash) — a stale certificate is a caller bug.
    pub fn run_verified(&self, cert: &Verified, input: &Value) -> Result<(Value, u64), Trap> {
        let (v, fuel, _) = self.run_verified_metered(cert, input, &mut NoMeter)?;
        Ok((v, fuel))
    }

    /// [`run_verified`](Instance::run_verified) plus [`RunStats`] and
    /// whether the fast path was taken.
    ///
    /// # Errors
    ///
    /// Returns the [`Trap`] the body raised, if any.
    pub fn run_verified_counted(
        &self,
        cert: &Verified,
        input: &Value,
    ) -> Result<(Value, u64, RunStats, bool), Trap> {
        let mut stats = RunStats::default();
        self.run_verified_metered(cert, input, &mut stats)
            .map(|(v, fuel, fast)| (v, fuel, stats, fast))
    }

    fn run_metered<M: Meter>(&self, input: &Value, m: &mut M) -> Result<(Value, u64, bool), Trap> {
        let (out, fuel) = exec(
            &self.program.body,
            Globals::Frozen(&self.globals),
            input,
            self.program.fuel_limit,
            m,
        )?;
        match out {
            Some(v) => Ok((v, fuel, false)),
            None => Err(Trap::NoReturn),
        }
    }

    fn run_verified_metered<M: Meter>(
        &self,
        cert: &Verified,
        input: &Value,
        m: &mut M,
    ) -> Result<(Value, u64, bool), Trap> {
        debug_assert!(
            cert.covers(&self.program),
            "certificate is for a different program"
        );
        if cert.verdict_for(InputClass::of(input)) == ClassVerdict::Clean {
            let (v, fuel) = exec_fast(
                &self.program.body,
                &self.globals,
                input,
                self.program.fuel_limit,
                cert.max_stack(),
                m,
            )?;
            Ok((v, fuel, true))
        } else {
            self.run_metered(input, m)
        }
    }

    /// The canonical byte image of this instance: program hash, init
    /// fuel, then the serialized global table. Two instances of the same
    /// program always produce byte-identical images — the bit-equivalence
    /// the snapshot path depends on.
    pub fn image_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&self.program.hash().to_le_bytes());
        out.extend_from_slice(&self.init_fuel.to_le_bytes());
        out.extend_from_slice(&(self.globals.len() as u64).to_le_bytes());
        for g in &self.globals {
            encode_value(g, &mut out);
        }
        out
    }

    /// Serializes the pre-initialized image (alias of [`image_bytes`]
    /// kept for intent at call sites).
    ///
    /// [`image_bytes`]: Instance::image_bytes
    pub fn snapshot(&self) -> Vec<u8> {
        self.image_bytes()
    }

    /// Proto-Faaslet-style restore: rebuild a warm instance from a
    /// snapshot image without re-running init.
    ///
    /// # Errors
    ///
    /// Returns a [`RestoreError`] if the image is corrupt or belongs to
    /// a different program.
    pub fn restore(program: Rc<GuestProgram>, image: &[u8]) -> Result<Instance, RestoreError> {
        let mut cur = Cursor { buf: image, at: 0 };
        let hash = u64::from_le_bytes(cur.take8()?);
        if hash != program.hash() {
            return Err(RestoreError::HashMismatch);
        }
        let init_fuel = u64::from_le_bytes(cur.take8()?);
        let n = u64::from_le_bytes(cur.take8()?);
        if n != program.globals as u64 {
            return Err(RestoreError::WrongGlobals);
        }
        let mut globals = Vec::with_capacity(n as usize);
        for _ in 0..n {
            globals.push(decode_value(&mut cur)?);
        }
        if cur.at != image.len() {
            return Err(RestoreError::Truncated);
        }
        Ok(Instance {
            program,
            globals,
            init_fuel,
        })
    }
}

/// Virtual-time cost of a full instantiate on a fresh runner: a fixed
/// parse/validate floor, a per-op compile pass, and replaying the init
/// program at 1 µs per unit of init fuel.
pub fn full_instantiate_cost(program: &GuestProgram, init_fuel: u64) -> Duration {
    let ops = (program.init.len() + program.body.len()) as u64;
    Duration::from_nanos(200_000 + 2_000 * ops + 1_000 * init_fuel)
}

/// Virtual-time cost of restoring a pre-initialized snapshot image:
/// a small fixed mapping cost plus a per-byte copy.
pub fn restore_cost(image_len: usize) -> Duration {
    Duration::from_nanos(30_000 + 2 * image_len as u64)
}

struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], RestoreError> {
        if self.at + n > self.buf.len() {
            return Err(RestoreError::Truncated);
        }
        let slice = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(slice)
    }
    fn take8(&mut self) -> Result<[u8; 8], RestoreError> {
        let mut out = [0u8; 8];
        out.copy_from_slice(self.take(8)?);
        Ok(out)
    }
}

fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Unit => out.push(0),
        Value::U64(n) => {
            out.push(1);
            out.extend_from_slice(&n.to_le_bytes());
        }
        Value::F64(x) => {
            out.push(2);
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        Value::F64s(xs) => {
            out.push(3);
            out.extend_from_slice(&(xs.len() as u64).to_le_bytes());
            for x in xs {
                out.extend_from_slice(&x.to_bits().to_le_bytes());
            }
        }
        // Init programs can only produce the four kinds above (their
        // input is Unit), so anything else marks the image unrestorable.
        _ => out.push(255),
    }
}

fn decode_value(cur: &mut Cursor<'_>) -> Result<Value, RestoreError> {
    let tag = cur.take(1)?[0];
    Ok(match tag {
        0 => Value::Unit,
        1 => Value::U64(u64::from_le_bytes(cur.take8()?)),
        2 => Value::F64(f64::from_bits(u64::from_le_bytes(cur.take8()?))),
        3 => {
            let n = u64::from_le_bytes(cur.take8()?);
            let mut xs = Vec::with_capacity(n as usize);
            for _ in 0..n {
                xs.push(f64::from_bits(u64::from_le_bytes(cur.take8()?)));
            }
            Value::F64s(xs)
        }
        other => return Err(RestoreError::BadTag(other)),
    })
}

/// Dynamic type and underflow checks the checking interpreter performs
/// for one instruction — exactly the checks the verifier discharges, so
/// exactly what [`RunStats::checks`] counts. Value guards (div-by-zero,
/// bounds, domain, length, fuel) run on both paths and are not counted.
fn discharged_checks(op: Op) -> u64 {
    match op {
        Op::PushU(_) | Op::PushF(_) | Op::Input | Op::Global(_) | Op::Jump(_) => 0,
        Op::SetGlobal(_) | Op::Dup | Op::Pop | Op::Return => 1,
        Op::Neg | Op::Sqrt | Op::Len | Op::VecSum | Op::JumpIfZero(_) | Op::Swap => 2,
        Op::Add
        | Op::Sub
        | Op::Mul
        | Op::Div
        | Op::Rem
        | Op::Min
        | Op::Max
        | Op::Lt
        | Op::Eq
        | Op::Get
        | Op::VecFill
        | Op::VecScale
        | Op::VecAdd
        | Op::VecDot => 4,
    }
}

/// Runs one instruction sequence. Returns the value passed to `Return`
/// (or `None` if the sequence ran off the end) and the fuel consumed.
fn exec<M: Meter>(
    ops: &[Op],
    mut globals: Globals<'_>,
    input: &Value,
    fuel_limit: u64,
    m: &mut M,
) -> Result<(Option<Value>, u64), Trap> {
    let mut stack: Vec<Value> = Vec::new();
    let mut pc: usize = 0;
    let mut fuel: u64 = 0;
    let spend = |fuel: &mut u64, cost: u64| -> Result<(), Trap> {
        *fuel = fuel.saturating_add(cost);
        if *fuel > fuel_limit {
            return Err(Trap::FuelExhausted { limit: fuel_limit });
        }
        Ok(())
    };
    while pc < ops.len() {
        let op = ops[pc];
        pc += 1;
        spend(&mut fuel, 1)?;
        m.op();
        m.checks(discharged_checks(op));
        match op {
            Op::PushU(n) => stack.push(Value::U64(n)),
            Op::PushF(x) => stack.push(Value::F64(x)),
            Op::Input => stack.push(input.clone()),
            Op::Global(g) => stack.push(globals.get(g).clone()),
            Op::SetGlobal(g) => {
                let v = pop(&mut stack)?;
                globals.set(g, v)?;
            }
            Op::Dup => {
                let top = stack.last().ok_or(Trap::StackUnderflow)?.clone();
                stack.push(top);
            }
            Op::Pop => {
                pop(&mut stack)?;
            }
            Op::Swap => {
                let b = pop(&mut stack)?;
                let a = pop(&mut stack)?;
                stack.push(b);
                stack.push(a);
            }
            Op::Add | Op::Sub | Op::Mul | Op::Div | Op::Rem | Op::Min | Op::Max => {
                let b = pop(&mut stack)?;
                let a = pop(&mut stack)?;
                stack.push(arith(op, &a, &b)?);
            }
            Op::Neg => {
                let x = pop_num(&mut stack)?;
                stack.push(Value::F64(-x));
            }
            Op::Sqrt => {
                let x = pop_num(&mut stack)?;
                if x < 0.0 {
                    return Err(Trap::Domain("sqrt of negative"));
                }
                stack.push(Value::F64(x.sqrt()));
            }
            Op::Lt | Op::Eq => {
                let b = pop_num(&mut stack)?;
                let a = pop_num(&mut stack)?;
                let hit = if matches!(op, Op::Lt) { a < b } else { a == b };
                stack.push(Value::U64(hit as u64));
            }
            Op::Len => {
                let v = pop(&mut stack)?;
                let len = match &v {
                    Value::F64s(xs) => xs.len() as u64,
                    Value::Bytes(bs) => bs.len() as u64,
                    Value::Text(t) => t.len() as u64,
                    Value::List(items) => items.len() as u64,
                    _ => return Err(Trap::TypeMismatch("len of scalar")),
                };
                stack.push(Value::U64(len));
            }
            Op::Get => {
                let index = pop_u64(&mut stack)?;
                let v = pop(&mut stack)?;
                match &v {
                    Value::F64s(xs) => {
                        let x = *xs.get(index as usize).ok_or(Trap::OobIndex {
                            index,
                            len: xs.len() as u64,
                        })?;
                        stack.push(Value::F64(x));
                    }
                    Value::Bytes(bs) => {
                        let b = *bs.get(index as usize).ok_or(Trap::OobIndex {
                            index,
                            len: bs.len() as u64,
                        })?;
                        stack.push(Value::U64(b as u64));
                    }
                    _ => return Err(Trap::TypeMismatch("get on non-vector")),
                }
            }
            Op::VecFill => {
                let fill = pop_num(&mut stack)?;
                let n = pop_u64(&mut stack)?;
                if n > MAX_VEC_LEN {
                    return Err(Trap::Domain("vector too large"));
                }
                spend(&mut fuel, n / 16)?;
                stack.push(Value::F64s(vec![fill; n as usize]));
            }
            Op::VecScale => {
                let s = pop_num(&mut stack)?;
                let mut xs = pop_vec(&mut stack)?;
                spend(&mut fuel, xs.len() as u64 / 16)?;
                for x in &mut xs {
                    *x *= s;
                }
                stack.push(Value::F64s(xs));
            }
            Op::VecAdd => {
                let b = pop_vec(&mut stack)?;
                let mut a = pop_vec(&mut stack)?;
                if a.len() != b.len() {
                    return Err(Trap::LengthMismatch {
                        left: a.len() as u64,
                        right: b.len() as u64,
                    });
                }
                spend(&mut fuel, a.len() as u64 / 16)?;
                for (x, y) in a.iter_mut().zip(&b) {
                    *x += *y;
                }
                stack.push(Value::F64s(a));
            }
            Op::VecSum => {
                let xs = pop_vec(&mut stack)?;
                spend(&mut fuel, xs.len() as u64 / 16)?;
                stack.push(Value::F64(xs.iter().sum()));
            }
            Op::VecDot => {
                let b = pop_vec(&mut stack)?;
                let a = pop_vec(&mut stack)?;
                if a.len() != b.len() {
                    return Err(Trap::LengthMismatch {
                        left: a.len() as u64,
                        right: b.len() as u64,
                    });
                }
                spend(&mut fuel, a.len() as u64 / 16)?;
                let dot: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
                stack.push(Value::F64(dot));
            }
            Op::Jump(target) => pc = target as usize,
            Op::JumpIfZero(target) => {
                if pop_u64(&mut stack)? == 0 {
                    pc = target as usize;
                }
            }
            Op::Return => return Ok((Some(pop(&mut stack)?), fuel)),
        }
    }
    Ok((None, fuel))
}

fn pop(stack: &mut Vec<Value>) -> Result<Value, Trap> {
    stack.pop().ok_or(Trap::StackUnderflow)
}

fn pop_num(stack: &mut Vec<Value>) -> Result<f64, Trap> {
    match pop(stack)? {
        Value::U64(n) => Ok(n as f64),
        Value::F64(x) => Ok(x),
        _ => Err(Trap::TypeMismatch("expected a scalar")),
    }
}

fn pop_u64(stack: &mut Vec<Value>) -> Result<u64, Trap> {
    match pop(stack)? {
        Value::U64(n) => Ok(n),
        _ => Err(Trap::TypeMismatch("expected a u64")),
    }
}

fn pop_vec(stack: &mut Vec<Value>) -> Result<Vec<f64>, Trap> {
    match pop(stack)? {
        Value::F64s(xs) => Ok(xs),
        _ => Err(Trap::TypeMismatch("expected a float vector")),
    }
}

fn arith(op: Op, a: &Value, b: &Value) -> Result<Value, Trap> {
    if let (Value::U64(x), Value::U64(y)) = (a, b) {
        let out = match op {
            Op::Add => x.wrapping_add(*y),
            Op::Sub => x.wrapping_sub(*y),
            Op::Mul => x.wrapping_mul(*y),
            Op::Div => x.checked_div(*y).ok_or(Trap::DivByZero)?,
            Op::Rem => x.checked_rem(*y).ok_or(Trap::DivByZero)?,
            Op::Min => *x.min(y),
            Op::Max => *x.max(y),
            _ => unreachable!("arith called with non-arith op"),
        };
        return Ok(Value::U64(out));
    }
    let num = |v: &Value| match v {
        Value::U64(n) => Ok(*n as f64),
        Value::F64(x) => Ok(*x),
        _ => Err(Trap::TypeMismatch("expected a scalar")),
    };
    let (x, y) = (num(a)?, num(b)?);
    let out = match op {
        Op::Add => x + y,
        Op::Sub => x - y,
        Op::Mul => x * y,
        Op::Div | Op::Rem => {
            if y == 0.0 {
                return Err(Trap::DivByZero);
            }
            if matches!(op, Op::Div) {
                x / y
            } else {
                x % y
            }
        }
        Op::Min => x.min(y),
        Op::Max => x.max(y),
        _ => unreachable!("arith called with non-arith op"),
    };
    Ok(Value::F64(out))
}

/// The fast path hit a state the verifier proved impossible. Kept as a
/// cold panic (not UB) so a verifier bug can never corrupt the host;
/// release builds pay one never-taken branch per discharged check.
#[cold]
#[inline(never)]
fn unsound(what: &'static str) -> ! {
    panic!("verifier fast-path invariant violated: {what}");
}

fn take(stack: &mut Vec<Value>) -> Value {
    debug_assert!(!stack.is_empty(), "fast path: stack underflow");
    stack.pop().unwrap_or_else(|| unsound("stack underflow"))
}

fn take_num(stack: &mut Vec<Value>) -> f64 {
    match take(stack) {
        Value::U64(n) => n as f64,
        Value::F64(x) => x,
        _ => unsound("scalar operand"),
    }
}

fn take_u64(stack: &mut Vec<Value>) -> u64 {
    match take(stack) {
        Value::U64(n) => n,
        _ => unsound("u64 operand"),
    }
}

fn take_vec(stack: &mut Vec<Value>) -> Vec<f64> {
    match take(stack) {
        Value::F64s(xs) => xs,
        _ => unsound("vector operand"),
    }
}

fn arith_fast(op: Op, a: Value, b: Value) -> Result<Value, Trap> {
    if let (Value::U64(x), Value::U64(y)) = (&a, &b) {
        let out = match op {
            Op::Add => x.wrapping_add(*y),
            Op::Sub => x.wrapping_sub(*y),
            Op::Mul => x.wrapping_mul(*y),
            Op::Div => x.checked_div(*y).ok_or(Trap::DivByZero)?,
            Op::Rem => x.checked_rem(*y).ok_or(Trap::DivByZero)?,
            Op::Min => *x.min(y),
            Op::Max => *x.max(y),
            _ => unreachable!("arith called with non-arith op"),
        };
        return Ok(Value::U64(out));
    }
    let num = |v: Value| match v {
        Value::U64(n) => n as f64,
        Value::F64(x) => x,
        _ => unsound("scalar operand"),
    };
    let (x, y) = (num(a), num(b));
    let out = match op {
        Op::Add => x + y,
        Op::Sub => x - y,
        Op::Mul => x * y,
        Op::Div | Op::Rem => {
            if y == 0.0 {
                return Err(Trap::DivByZero);
            }
            if matches!(op, Op::Div) {
                x / y
            } else {
                x % y
            }
        }
        Op::Min => x.min(y),
        Op::Max => x.max(y),
        _ => unreachable!("arith called with non-arith op"),
    };
    Ok(Value::F64(out))
}

/// The verified fast path: runs a body whose class verdict is `Clean`,
/// skipping every type and underflow check the verifier discharged
/// (each survives only as a debug assert backed by a cold panic). Value
/// guards — division by zero, bounds, domain, vector length, fuel —
/// stay, so traps and results are identical to the checking path.
fn exec_fast<M: Meter>(
    ops: &[Op],
    globals: &[Value],
    input: &Value,
    fuel_limit: u64,
    max_stack: usize,
    m: &mut M,
) -> Result<(Value, u64), Trap> {
    let mut stack: Vec<Value> = Vec::with_capacity(max_stack);
    let mut pc: usize = 0;
    let mut fuel: u64 = 0;
    let spend = |fuel: &mut u64, cost: u64| -> Result<(), Trap> {
        *fuel = fuel.saturating_add(cost);
        if *fuel > fuel_limit {
            return Err(Trap::FuelExhausted { limit: fuel_limit });
        }
        Ok(())
    };
    while pc < ops.len() {
        let op = ops[pc];
        pc += 1;
        spend(&mut fuel, 1)?;
        m.op();
        match op {
            Op::PushU(n) => stack.push(Value::U64(n)),
            Op::PushF(x) => stack.push(Value::F64(x)),
            Op::Input => stack.push(input.clone()),
            Op::Global(g) => stack.push(globals[g as usize].clone()),
            Op::SetGlobal(_) => unsound("set_global in body"),
            Op::Dup => {
                let top = stack
                    .last()
                    .cloned()
                    .unwrap_or_else(|| unsound("dup on empty stack"));
                stack.push(top);
            }
            Op::Pop => {
                take(&mut stack);
            }
            Op::Swap => {
                let b = take(&mut stack);
                let a = take(&mut stack);
                stack.push(b);
                stack.push(a);
            }
            Op::Add | Op::Sub | Op::Mul | Op::Div | Op::Rem | Op::Min | Op::Max => {
                let b = take(&mut stack);
                let a = take(&mut stack);
                stack.push(arith_fast(op, a, b)?);
            }
            Op::Neg => {
                let x = take_num(&mut stack);
                stack.push(Value::F64(-x));
            }
            Op::Sqrt => {
                let x = take_num(&mut stack);
                if x < 0.0 {
                    return Err(Trap::Domain("sqrt of negative"));
                }
                stack.push(Value::F64(x.sqrt()));
            }
            Op::Lt | Op::Eq => {
                let b = take_num(&mut stack);
                let a = take_num(&mut stack);
                let hit = if matches!(op, Op::Lt) { a < b } else { a == b };
                stack.push(Value::U64(hit as u64));
            }
            Op::Len => {
                let xs = take_vec(&mut stack);
                stack.push(Value::U64(xs.len() as u64));
            }
            Op::Get => {
                let index = take_u64(&mut stack);
                let xs = take_vec(&mut stack);
                let x = *xs.get(index as usize).ok_or(Trap::OobIndex {
                    index,
                    len: xs.len() as u64,
                })?;
                stack.push(Value::F64(x));
            }
            Op::VecFill => {
                let fill = take_num(&mut stack);
                let n = take_u64(&mut stack);
                if n > MAX_VEC_LEN {
                    return Err(Trap::Domain("vector too large"));
                }
                spend(&mut fuel, n / 16)?;
                stack.push(Value::F64s(vec![fill; n as usize]));
            }
            Op::VecScale => {
                let s = take_num(&mut stack);
                let mut xs = take_vec(&mut stack);
                spend(&mut fuel, xs.len() as u64 / 16)?;
                for x in &mut xs {
                    *x *= s;
                }
                stack.push(Value::F64s(xs));
            }
            Op::VecAdd => {
                let b = take_vec(&mut stack);
                let mut a = take_vec(&mut stack);
                if a.len() != b.len() {
                    return Err(Trap::LengthMismatch {
                        left: a.len() as u64,
                        right: b.len() as u64,
                    });
                }
                spend(&mut fuel, a.len() as u64 / 16)?;
                for (x, y) in a.iter_mut().zip(&b) {
                    *x += *y;
                }
                stack.push(Value::F64s(a));
            }
            Op::VecSum => {
                let xs = take_vec(&mut stack);
                spend(&mut fuel, xs.len() as u64 / 16)?;
                stack.push(Value::F64(xs.iter().sum()));
            }
            Op::VecDot => {
                let b = take_vec(&mut stack);
                let a = take_vec(&mut stack);
                if a.len() != b.len() {
                    return Err(Trap::LengthMismatch {
                        left: a.len() as u64,
                        right: b.len() as u64,
                    });
                }
                spend(&mut fuel, a.len() as u64 / 16)?;
                let dot: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
                stack.push(Value::F64(dot));
            }
            Op::Jump(target) => pc = target as usize,
            Op::JumpIfZero(target) => {
                if take_u64(&mut stack) == 0 {
                    pc = target as usize;
                }
            }
            Op::Return => return Ok((take(&mut stack), fuel)),
        }
    }
    unsound("fell off the end")
}

#[cfg(test)]
mod tests {
    use super::*;
    use kaas_accel::DeviceClass;

    fn program(body: Vec<Op>) -> Rc<GuestProgram> {
        Rc::new(
            GuestProgram::new("t", DeviceClass::Cpu)
                .with_fuel(10_000)
                .with_body(body),
        )
    }

    fn run(body: Vec<Op>, input: Value) -> Result<(Value, u64), Trap> {
        let inst = Instance::instantiate(program(body)).unwrap();
        inst.run(&input)
    }

    #[test]
    fn scalar_arithmetic_and_coercion() {
        let (v, fuel) = run(
            vec![Op::Input, Op::PushU(3), Op::Add, Op::Return],
            Value::U64(4),
        )
        .unwrap();
        assert_eq!(v, Value::U64(7));
        assert_eq!(fuel, 4);
        let (v, _) = run(
            vec![Op::PushU(3), Op::PushF(0.5), Op::Mul, Op::Return],
            Value::Unit,
        )
        .unwrap();
        assert_eq!(v, Value::F64(1.5));
    }

    #[test]
    fn loops_jumps_and_compare() {
        // Count input down to zero, then return what's left (0).
        let body = vec![
            Op::Input,         // 0: [i]
            Op::Dup,           // 1: loop head, [i, i]
            Op::JumpIfZero(6), // 2: exit when i == 0
            Op::PushU(1),      // 3
            Op::Sub,           // 4: i -= 1
            Op::Jump(1),       // 5
            Op::Return,        // 6
        ];
        let (v, fuel) = run(body, Value::U64(5)).unwrap();
        assert_eq!(v, Value::U64(0));
        assert_eq!(fuel, 1 + 5 * 5 + 3);
        let (lt, _) = run(
            vec![Op::PushU(2), Op::PushU(3), Op::Lt, Op::Return],
            Value::Unit,
        )
        .unwrap();
        assert_eq!(lt, Value::U64(1));
        let (eq, _) = run(
            vec![Op::PushF(2.0), Op::PushU(2), Op::Eq, Op::Return],
            Value::Unit,
        )
        .unwrap();
        assert_eq!(eq, Value::U64(1));
    }

    #[test]
    fn vector_ops_match_hand_math() {
        let xs = Value::F64s(vec![1.0, 2.0, 3.0]);
        let (v, _) = run(
            vec![
                Op::Input,
                Op::PushF(2.0),
                Op::VecScale,
                Op::VecSum,
                Op::Return,
            ],
            xs.clone(),
        )
        .unwrap();
        assert_eq!(v, Value::F64(12.0));
        let (v, _) = run(
            vec![Op::Input, Op::Input, Op::VecDot, Op::Return],
            xs.clone(),
        )
        .unwrap();
        assert_eq!(v, Value::F64(14.0));
        let (v, _) = run(vec![Op::Input, Op::Len, Op::Return], xs).unwrap();
        assert_eq!(v, Value::U64(3));
    }

    #[test]
    fn traps_are_precise() {
        assert_eq!(
            run(
                vec![Op::PushU(1), Op::PushU(0), Op::Div, Op::Return],
                Value::Unit
            ),
            Err(Trap::DivByZero)
        );
        assert_eq!(
            run(
                vec![Op::Input, Op::PushU(9), Op::Get, Op::Return],
                Value::F64s(vec![1.0, 2.0])
            ),
            Err(Trap::OobIndex { index: 9, len: 2 })
        );
        assert_eq!(
            run(vec![Op::Pop, Op::Return], Value::Unit),
            Err(Trap::StackUnderflow)
        );
        assert_eq!(
            run(vec![Op::PushF(-1.0), Op::Sqrt, Op::Return], Value::Unit),
            Err(Trap::Domain("sqrt of negative"))
        );
        assert_eq!(
            run(vec![Op::PushU(1), Op::Pop], Value::Unit),
            Err(Trap::NoReturn)
        );
    }

    #[test]
    fn fuel_exhaustion_stops_infinite_loops() {
        let p = Rc::new(
            GuestProgram::new("spin", DeviceClass::Cpu)
                .with_fuel(64)
                .with_body(vec![Op::Jump(0)]),
        );
        let inst = Instance::instantiate(p).unwrap();
        assert_eq!(
            inst.run(&Value::Unit),
            Err(Trap::FuelExhausted { limit: 64 })
        );
    }

    #[test]
    fn snapshot_restore_is_bit_equivalent() {
        let p = Rc::new(
            GuestProgram::new("warm", DeviceClass::Gpu)
                .with_fuel(100_000)
                .with_init(
                    2,
                    vec![
                        Op::PushU(128),
                        Op::PushF(0.25),
                        Op::VecFill,
                        Op::SetGlobal(0),
                        Op::PushF(3.0),
                        Op::SetGlobal(1),
                    ],
                )
                .with_body(vec![
                    Op::Global(0),
                    Op::Global(1),
                    Op::VecScale,
                    Op::VecSum,
                    Op::Return,
                ]),
        );
        let full = Instance::instantiate(p.clone()).unwrap();
        let image = full.snapshot();
        let restored = Instance::restore(p.clone(), &image).unwrap();
        assert_eq!(restored.image_bytes(), full.image_bytes());
        assert_eq!(
            restored.run(&Value::Unit).unwrap(),
            full.run(&Value::Unit).unwrap()
        );

        // Wrong-program restores are rejected by the content hash.
        let other = Rc::new(
            GuestProgram::new("other", DeviceClass::Gpu)
                .with_fuel(100_000)
                .with_body(vec![Op::Input, Op::Return]),
        );
        assert_eq!(
            Instance::restore(other, &image).err(),
            Some(RestoreError::HashMismatch)
        );
        assert_eq!(
            Instance::restore(p, &image[..image.len() - 1]).err(),
            Some(RestoreError::Truncated)
        );
    }

    #[test]
    fn init_only_and_length_traps_are_named_honestly() {
        // An unvalidated program (built by hand) that writes a global
        // from the body traps with the dedicated InitOnly kind.
        let p = Rc::new(GuestProgram {
            body: vec![Op::PushU(1), Op::SetGlobal(0), Op::Return],
            globals: 1,
            ..GuestProgram::new("raw", DeviceClass::Cpu)
        });
        let inst = Instance::instantiate(p).unwrap();
        assert_eq!(inst.run(&Value::Unit), Err(Trap::InitOnly));
        assert_eq!(Trap::InitOnly.to_string(), "set_global outside init");
        // Mismatched vector lengths carry both lengths.
        let err = run(
            vec![
                Op::Input,
                Op::PushU(2),
                Op::PushF(0.0),
                Op::VecFill,
                Op::VecAdd,
                Op::Return,
            ],
            Value::F64s(vec![1.0, 2.0, 3.0]),
        )
        .unwrap_err();
        assert_eq!(err, Trap::LengthMismatch { left: 3, right: 2 });
    }

    #[test]
    fn fast_path_matches_checking_path() {
        let body = vec![
            Op::Input,         // 0
            Op::Dup,           // 1
            Op::JumpIfZero(6), // 2
            Op::PushU(1),      // 3
            Op::Sub,           // 4
            Op::Jump(1),       // 5
            Op::PushU(7),      // 6
            Op::Add,           // 7
            Op::Return,        // 8
        ];
        let p = program(body);
        let cert = crate::verify::verify(&p).unwrap();
        let inst = Instance::instantiate(p).unwrap();
        for n in [0u64, 1, 5, 100] {
            let input = Value::U64(n);
            let slow = inst.run_counted(&input).unwrap();
            let (v, fuel, stats, fast) = inst.run_verified_counted(&cert, &input).unwrap();
            assert!(fast, "u64 inputs verify clean");
            assert_eq!((v, fuel), (slow.0, slow.1));
            assert_eq!(stats.ops, slow.2.ops);
            assert_eq!(stats.checks, 0);
            assert!(slow.2.checks > 0);
        }
        // A non-clean class falls back to the checking interpreter and
        // traps exactly as `run` does.
        assert_eq!(
            inst.run_verified(&cert, &Value::F64s(vec![1.0])),
            inst.run(&Value::F64s(vec![1.0]))
        );
        // Fuel exhaustion still fires on the fast path.
        let spin = Rc::new(
            GuestProgram::new("spin", DeviceClass::Cpu)
                .with_fuel(64)
                .with_body(vec![Op::PushU(1), Op::Pop, Op::Jump(0)]),
        );
        let cert = crate::verify::verify(&spin).unwrap();
        let inst = Instance::instantiate(spin).unwrap();
        assert_eq!(
            inst.run_verified(&cert, &Value::Unit),
            Err(Trap::FuelExhausted { limit: 64 })
        );
    }

    #[test]
    fn cost_model_favors_restore() {
        let p = Rc::new(
            GuestProgram::new("table", DeviceClass::Gpu)
                .with_fuel(1 << 20)
                .with_init(
                    1,
                    vec![
                        Op::PushU(1024),
                        Op::PushF(1.0),
                        Op::VecFill,
                        Op::SetGlobal(0),
                    ],
                )
                .with_body(vec![Op::Global(0), Op::VecSum, Op::Return]),
        );
        let inst = Instance::instantiate(p.clone()).unwrap();
        let full = full_instantiate_cost(&p, inst.init_fuel());
        let restore = restore_cost(inst.snapshot().len());
        assert!(
            full >= restore * 3,
            "full {full:?} should dominate restore {restore:?}"
        );
    }
}
