//! Seeded differential property test for the bytecode verifier.
//!
//! Generates a corpus of random guest programs (structured stack-aware
//! bodies, injected loops, and fully random chaos) from
//! `kaas_simtime`'s deterministic RNG, then checks the verifier's
//! soundness contract on every accepted program:
//!
//! * the checking interpreter and the certificate fast path agree on
//!   every input — same output, same fuel, same trap;
//! * no input ever hits `StackUnderflow`, `NoReturn`, or `InitOnly`
//!   (depth and placement analysis is input-independent);
//! * inputs whose class verdict is `Clean` never hit `TypeMismatch`;
//! * every successful run's fuel is within the static worst-case bound.

use std::rc::Rc;

use kaas_accel::DeviceClass;
use kaas_guest::{verify, ClassVerdict, GuestProgram, InputClass, Instance, Op, Trap};
use kaas_kernels::Value;
use kaas_simtime::rng::DetRng;

const FUEL: u64 = 10_000;

/// Ops that push one value from nothing (any stack depth).
fn gen_source(rng: &mut DetRng, globals: u8) -> Op {
    match rng.gen_range(0..if globals > 0 { 4u32 } else { 3 }) {
        0 => Op::Input,
        1 => Op::PushU(rng.gen_range(0u64..64)),
        2 => Op::PushF(rng.gen_range(-8.0..8.0)),
        _ => Op::Global(rng.gen_range(0..globals as u32) as u8),
    }
}

/// Ops legal at the given tracked stack depth (type-blind — the
/// verifier is the one deciding whether the types work out).
fn gen_op(rng: &mut DetRng, depth: usize, globals: u8) -> Op {
    if depth == 0 {
        return gen_source(rng, globals);
    }
    if depth == 1 || rng.gen_bool(0.4) {
        return match rng.gen_range(0..8u32) {
            0 => gen_source(rng, globals),
            1 => Op::Dup,
            2 => Op::Pop,
            3 => Op::Neg,
            4 => Op::Sqrt,
            5 => Op::VecSum,
            6 => Op::Len,
            _ => gen_source(rng, globals),
        };
    }
    match rng.gen_range(0..14u32) {
        0 => Op::Add,
        1 => Op::Sub,
        2 => Op::Mul,
        3 => Op::Div,
        4 => Op::Rem,
        5 => Op::Min,
        6 => Op::Max,
        7 => Op::Lt,
        8 => Op::Eq,
        9 => Op::Swap,
        10 => Op::Get,
        11 => Op::VecFill,
        12 => Op::VecScale,
        _ => Op::VecDot,
    }
}

fn stack_effect(op: Op) -> (usize, usize) {
    match op {
        Op::Input | Op::PushU(_) | Op::PushF(_) | Op::Global(_) => (0, 1),
        Op::Dup => (1, 2),
        Op::Pop => (1, 0),
        Op::Neg | Op::Sqrt | Op::VecSum | Op::Len => (1, 1),
        Op::Swap => (2, 2),
        Op::Add
        | Op::Sub
        | Op::Mul
        | Op::Div
        | Op::Rem
        | Op::Min
        | Op::Max
        | Op::Lt
        | Op::Eq
        | Op::Get
        | Op::VecFill
        | Op::VecScale
        | Op::VecAdd
        | Op::VecDot => (2, 1),
        Op::SetGlobal(_) | Op::JumpIfZero(_) | Op::Return => (1, 0),
        Op::Jump(_) => (0, 0),
    }
}

/// A structured body: depth-tracked random ops, optionally prefixed
/// with a countdown loop over the input, always ending in `Return`.
fn gen_structured_body(rng: &mut DetRng, globals: u8) -> Vec<Op> {
    let mut body = Vec::new();
    let mut depth = 0usize;
    if rng.gen_bool(0.25) {
        // Countdown loop skeleton; leaves the exhausted counter (0) on
        // the stack at the exit.
        body.extend([
            Op::Input,
            Op::Dup,
            Op::JumpIfZero(6),
            Op::PushU(1),
            Op::Sub,
            Op::Jump(1),
        ]);
        depth = 1;
    }
    for _ in 0..rng.gen_range(2usize..14) {
        let op = gen_op(rng, depth, globals);
        let (pops, pushes) = stack_effect(op);
        assert!(depth >= pops, "generator tracks depth");
        depth = depth - pops + pushes;
        body.push(op);
    }
    if depth == 0 {
        body.push(gen_source(rng, globals));
    }
    body.push(Op::Return);
    body
}

/// Pure chaos: random ops with random (in-range) jump targets. Almost
/// always rejected — exercises the verifier's rejection paths and the
/// property that it never panics or accepts an unsound program.
fn gen_chaos_body(rng: &mut DetRng, globals: u8) -> Vec<Op> {
    let len = rng.gen_range(1usize..12);
    (0..len)
        .map(|_| match rng.gen_range(0..10u32) {
            0..=3 => gen_source(rng, globals),
            4 => Op::Jump(rng.gen_range(0..len as u32 + 1) as u16),
            5 => Op::JumpIfZero(rng.gen_range(0..len as u32 + 1) as u16),
            6 => Op::Return,
            7 => Op::Pop,
            8 => Op::Add,
            _ => Op::VecDot,
        })
        .collect()
}

fn gen_program(rng: &mut DetRng, i: u64) -> GuestProgram {
    let globals = rng.gen_range(0u8..3);
    let mut init = Vec::new();
    for g in 0..globals {
        match rng.gen_range(0..3u32) {
            0 => init.push(Op::PushF(rng.gen_range(-2.0..2.0))),
            1 => init.push(Op::PushU(rng.gen_range(0u64..32))),
            _ => init.extend([
                Op::PushU(rng.gen_range(1u64..24)),
                Op::PushF(rng.gen_range(-1.0..1.0)),
                Op::VecFill,
            ]),
        }
        init.push(Op::SetGlobal(g));
    }
    let body = if rng.gen_bool(0.3) {
        gen_chaos_body(rng, globals)
    } else {
        gen_structured_body(rng, globals)
    };
    let mut p = GuestProgram::new(&format!("p{i}"), DeviceClass::Cpu)
        .with_fuel(FUEL)
        .with_init(globals, init)
        .with_body(body);
    p.globals = globals;
    p
}

fn gen_inputs(rng: &mut DetRng) -> Vec<Value> {
    let vec_len = rng.gen_range(0usize..9);
    vec![
        Value::Unit,
        Value::U64(0),
        Value::U64(rng.gen_range(1u64..24)),
        Value::F64(rng.gen_range(-4.0..4.0)),
        Value::F64s((0..vec_len).map(|_| rng.gen_range(-2.0..2.0)).collect()),
        Value::F64s(vec![1.0, -2.0, 3.0]),
        Value::Bytes(vec![3, 1, 4]),
        Value::Text("abc".to_string()),
    ]
}

/// Traps the verifier promises can never escape an accepted program,
/// regardless of input class.
fn statically_impossible(trap: &Trap) -> bool {
    matches!(trap, Trap::StackUnderflow | Trap::NoReturn | Trap::InitOnly)
}

#[test]
fn accepted_programs_never_break_the_static_contract() {
    let mut rng = DetRng::seed_from_u64(0x5EED_2026);
    let (mut accepted, mut clean_classes, mut rejected) = (0u64, 0u64, 0u64);
    for i in 0..400 {
        let program = gen_program(&mut rng, i);
        if program.validate().is_err() {
            // Shape-invalid programs must be rejected, never accepted.
            assert!(verify(&program).is_err(), "program {i} validates nowhere");
            rejected += 1;
            continue;
        }
        let cert = match verify(&program) {
            Ok(cert) => cert,
            Err(_) => {
                rejected += 1;
                continue;
            }
        };
        accepted += 1;
        let inst = match Instance::instantiate(Rc::new(program)) {
            Ok(inst) => inst,
            Err(trap) => {
                // Init may still fault on values (div by zero, fuel, …)
                // but never on anything the verifier discharged.
                assert!(
                    !statically_impossible(&trap) && !matches!(trap, Trap::TypeMismatch(_)),
                    "program {i}: init hit verifier-discharged trap {trap:?}"
                );
                continue;
            }
        };
        for input in gen_inputs(&mut rng) {
            let class = InputClass::of(&input);
            let verdict = cert.verdict_for(class);
            if verdict == ClassVerdict::Clean {
                clean_classes += 1;
            }
            let slow = inst.run(&input);
            let fast = inst.run_verified(&cert, &input);
            assert_eq!(
                slow, fast,
                "program {i}: paths diverge on {input:?} (verdict {verdict:?})"
            );
            match &slow {
                Ok((_, fuel)) => assert!(
                    *fuel <= cert.fuel_bound.worst_case(),
                    "program {i}: fuel {fuel} exceeds static bound {:?}",
                    cert.fuel_bound
                ),
                Err(trap) => {
                    assert!(
                        !statically_impossible(trap),
                        "program {i}: accepted but trapped {trap:?} on {input:?}"
                    );
                    if verdict == ClassVerdict::Clean {
                        assert!(
                            !matches!(trap, Trap::TypeMismatch(_)),
                            "program {i}: Clean class hit {trap:?} on {input:?}"
                        );
                    }
                }
            }
        }
    }
    // The corpus must actually exercise both outcomes and the fast path.
    assert!(
        accepted >= 100,
        "only {accepted} accepted — generator too hostile"
    );
    assert!(
        rejected >= 50,
        "only {rejected} rejected — generator too tame"
    );
    assert!(
        clean_classes >= 100,
        "fast path rarely exercised: {clean_classes}"
    );
}

#[test]
fn corpus_is_seed_deterministic() {
    let gen_all = |seed: u64| {
        let mut rng = DetRng::seed_from_u64(seed);
        (0..40)
            .map(|i| gen_program(&mut rng, i))
            .collect::<Vec<_>>()
    };
    let (a, b) = (gen_all(7), gen_all(7));
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.hash(), y.hash(), "same seed, same corpus");
    }
}
