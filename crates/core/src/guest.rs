//! Tenant-registered guest kernels: the `_kaas/code/*` control plane,
//! the per-tenant versioned registry, and usage accounting.
//!
//! The paper's programming model has tenants *bring* their kernels; the
//! [`kaas_guest`] runtime makes that concrete. A tenant registers a
//! validated [`GuestProgram`] through the reserved `_kaas/code/register`
//! control kernel and gets back a versioned identity `tenant/name@vN` —
//! registration never mutates an existing version, so in-flight and
//! retried invocations keep resolving the exact code they started with.
//! Dispatch resolves guest names alongside compiled-in kernels: a plain
//! `tenant/name` means "latest live version", an explicit `@vN` pins
//! one. Removal tombstones versions (ids are never reused).
//!
//! Every successful guest invocation is fuel- and byte-metered into the
//! per-tenant `guest.*` counters, billed from each kernel's cumulative
//! meter so retries and interleavings can never double-count.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;

use kaas_guest::{GuestKernel, GuestMeter, GuestProgram, Trap};
use kaas_kernels::Value;
use kaas_simtime::sleep;

use crate::metrics::registry::MetricsRegistry;
use crate::metrics::InvocationReport;
use crate::protocol::{DataRef, InvokeError, Request};
use crate::server::KaasServer;

/// Prefix of the reserved guest-code control kernels.
pub const CODE_KERNEL_PREFIX: &str = "_kaas/code/";
/// Control kernel registering a guest program, answering with its
/// versioned `tenant/name@vN` identity.
pub const CODE_REGISTER_KERNEL: &str = "_kaas/code/register";
/// Control kernel listing a tenant's live guest kernel versions.
pub const CODE_LIST_KERNEL: &str = "_kaas/code/list";
/// Control kernel tombstoning a guest kernel (one version or all).
pub const CODE_REMOVE_KERNEL: &str = "_kaas/code/remove";

const CODE_REGISTER_TAG: &str = "kaas.code.register";

/// Encodes a registration payload: tenant identity plus the program.
pub(crate) fn encode_register(tenant: &str, program: &GuestProgram) -> Value {
    Value::List(vec![
        Value::Text(CODE_REGISTER_TAG.to_owned()),
        Value::Text(tenant.to_owned()),
        program.to_value(),
    ])
}

fn decode_register(v: &Value) -> Result<(String, GuestProgram), InvokeError> {
    match v.payload() {
        Value::List(items) => match items.as_slice() {
            [Value::Text(tag), Value::Text(tenant), program] if tag == CODE_REGISTER_TAG => {
                let program = GuestProgram::from_value(program)
                    .map_err(|e| InvokeError::BadInput(e.to_string()))?;
                Ok((tenant.clone(), program))
            }
            _ => Err(InvokeError::BadInput(
                "expected a tagged (tenant, program) registration".into(),
            )),
        },
        _ => Err(InvokeError::BadInput(
            "expected a tagged (tenant, program) registration".into(),
        )),
    }
}

/// Is `name` shaped like a guest kernel reference (`tenant/...`) rather
/// than a compiled-in kernel or a reserved `_kaas/` control name?
pub(crate) fn is_guest_name(name: &str) -> bool {
    name.contains('/') && !name.starts_with("_kaas/")
}

struct GuestEntry {
    kernel: Rc<GuestKernel>,
    /// Cumulative meter already billed into the metrics registry.
    billed: Cell<GuestMeter>,
}

/// Per-server guest kernel registry: `tenant/name` → versions, where a
/// version slot is `None` once tombstoned (indices are never reused, so
/// `@vN` stays stable forever).
pub(crate) struct GuestState {
    kernels: RefCell<BTreeMap<String, Vec<Option<GuestEntry>>>>,
}

impl std::fmt::Debug for GuestState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let map = self.kernels.borrow();
        let live: usize = map.values().map(|vs| vs.iter().flatten().count()).sum();
        f.debug_struct("GuestState")
            .field("names", &map.len())
            .field("live_versions", &live)
            .finish()
    }
}

impl GuestState {
    pub(crate) fn new() -> Self {
        GuestState {
            kernels: RefCell::new(BTreeMap::new()),
        }
    }

    /// Validates and instantiates `program` under `tenant`, assigning
    /// the next version id. Returns the full `tenant/name@vN` identity.
    fn register(&self, tenant: &str, program: GuestProgram) -> Result<String, InvokeError> {
        let bad_tenant = tenant.is_empty()
            || tenant.starts_with('_')
            || tenant
                .chars()
                .any(|c| c == '/' || c == '@' || c.is_whitespace());
        if bad_tenant {
            return Err(InvokeError::BadInput(format!(
                "bad tenant identity {tenant:?}"
            )));
        }
        program
            .validate()
            .map_err(|e| InvokeError::BadInput(e.to_string()))?;
        // The abstract interpreter rejects programs that provably trap
        // (type mismatch, underflow, fall-off-the-end) before they ever
        // reach a runner; its certificate enables the fast-path
        // interpreter and carries the worst-case fuel bound.
        let cert =
            kaas_guest::verify(&program).map_err(|e| InvokeError::VerifyRejected(e.to_string()))?;
        let key = format!("{tenant}/{}", program.name);
        let mut map = self.kernels.borrow_mut();
        let versions = map.entry(key.clone()).or_default();
        let full = format!("{key}@v{}", versions.len() + 1);
        let kernel = GuestKernel::instantiate_verified(&full, Rc::new(program), cert).map_err(
            |e| match e {
                Trap::FuelExhausted { .. } => InvokeError::FuelExhausted(format!("{full}: {e}")),
                _ => InvokeError::GuestTrap(format!("{full} failed init: {e}")),
            },
        )?;
        versions.push(Some(GuestEntry {
            kernel: Rc::new(kernel),
            billed: Cell::new(GuestMeter::default()),
        }));
        Ok(full)
    }

    /// Resolves `tenant/name` (latest live version) or `tenant/name@vN`
    /// (that exact version, if still live).
    pub(crate) fn resolve(&self, name: &str) -> Option<Rc<GuestKernel>> {
        let map = self.kernels.borrow();
        match name.rsplit_once("@v") {
            Some((base, v)) => {
                let version: usize = v.parse().ok().filter(|&n| n >= 1)?;
                map.get(base)?
                    .get(version - 1)?
                    .as_ref()
                    .map(|e| e.kernel.clone())
            }
            None => map
                .get(name)?
                .iter()
                .rev()
                .flatten()
                .next()
                .map(|e| e.kernel.clone()),
        }
    }

    /// Every live `tenant/name@vN` under `tenant`, in name-then-version
    /// order.
    fn list(&self, tenant: &str) -> Vec<String> {
        let prefix = format!("{tenant}/");
        self.kernels
            .borrow()
            .iter()
            .filter(|(key, _)| key.starts_with(&prefix))
            .flat_map(|(key, versions)| {
                versions
                    .iter()
                    .enumerate()
                    .filter_map(move |(i, e)| e.as_ref().map(|_| format!("{key}@v{}", i + 1)))
            })
            .collect()
    }

    /// Tombstones one version (`tenant/name@vN`) or every live version
    /// (`tenant/name`). Returns how many versions were removed.
    fn remove(&self, name: &str) -> u64 {
        let mut map = self.kernels.borrow_mut();
        match name.rsplit_once("@v") {
            Some((base, v)) => {
                let Some(version) = v.parse::<usize>().ok().filter(|&n| n >= 1) else {
                    return 0;
                };
                map.get_mut(base)
                    .and_then(|vs| vs.get_mut(version - 1))
                    .and_then(Option::take)
                    .is_some() as u64
            }
            None => match map.get_mut(name) {
                Some(versions) => {
                    let mut removed = 0;
                    for slot in versions.iter_mut() {
                        removed += slot.take().is_some() as u64;
                    }
                    removed
                }
                None => 0,
            },
        }
    }

    /// Bills everything `full_name` has metered since the last call into
    /// the `guest.*` counters. Cumulative-meter deltas make this safe to
    /// call after every invocation regardless of interleaving: usage is
    /// counted exactly once. No-op for tombstoned or unknown names.
    pub(crate) fn account(&self, full_name: &str, m: &MetricsRegistry) {
        let map = self.kernels.borrow();
        let Some((base, v)) = full_name.rsplit_once("@v") else {
            return;
        };
        let Some(version) = v.parse::<usize>().ok().filter(|&n| n >= 1) else {
            return;
        };
        let Some(entry) = map
            .get(base)
            .and_then(|vs| vs.get(version - 1))
            .and_then(|e| e.as_ref())
        else {
            return;
        };
        let cur = entry.kernel.meter();
        let prev = entry.billed.get();
        if cur == prev {
            return;
        }
        entry.billed.set(cur);
        m.add("guest.invocations", cur.invocations - prev.invocations);
        m.add("guest.fuel_used", cur.fuel - prev.fuel);
        m.add("guest.bytes", cur.bytes - prev.bytes);
        let tenant = base.split('/').next().unwrap_or(base);
        m.add(&format!("guest.tenant.{tenant}.fuel"), cur.fuel - prev.fuel);
    }
}

impl KaasServer {
    /// The verifier's worst-case fuel bound for a registered guest
    /// kernel (`tenant/name` or `tenant/name@vN`) — the predicted
    /// per-invocation cost admission and placement can consult before
    /// running anything.
    pub fn guest_fuel_bound(&self, name: &str) -> Option<u64> {
        self.inner()
            .guests
            .resolve(name)
            .and_then(|k| k.predicted_fuel())
    }

    /// Serves one `_kaas/code/*` control operation (register/list/
    /// remove) against the guest registry. Like the data plane, control
    /// operations bypass placement but pay ordinary transport costs.
    pub(crate) async fn code_op(
        &self,
        req: Request,
    ) -> Result<(DataRef, InvocationReport), InvokeError> {
        let inner = self.inner();
        let oob = matches!(req.data, DataRef::OutOfBand(_)) || req.reply_out_of_band;
        let input = match req.data {
            DataRef::InBand(v) => {
                sleep(inner.config.serialization.time(v.wire_bytes())).await;
                v
            }
            DataRef::OutOfBand(h) => inner.shm.take(h).await.ok_or(InvokeError::BadHandle)?,
            DataRef::Object(r) => inner.dataplane.resolve(&r).ok_or(InvokeError::BadHandle)?,
        };
        let m = &inner.metrics_registry;
        let text = |v: &Value, what: &str| match v.payload() {
            Value::Text(t) => Ok(t.clone()),
            _ => Err(InvokeError::BadInput(format!("expected {what} as text"))),
        };
        let op = req.kernel.strip_prefix(CODE_KERNEL_PREFIX).unwrap_or("");
        let output = match op {
            "register" => {
                let (tenant, program) = decode_register(&input)?;
                let full = inner.guests.register(&tenant, program)?;
                m.inc("guest.registered");
                Value::Text(full)
            }
            "list" => {
                let tenant = text(&input, "a tenant identity")?;
                Value::List(
                    inner
                        .guests
                        .list(&tenant)
                        .into_iter()
                        .map(Value::Text)
                        .collect(),
                )
            }
            "remove" => {
                let name = text(&input, "a guest kernel name")?;
                let removed = inner.guests.remove(&name);
                if removed == 0 {
                    return Err(InvokeError::UnknownGuestKernel(name));
                }
                m.add("guest.removed", removed);
                Value::U64(removed)
            }
            _ => return Err(InvokeError::UnknownKernel(req.kernel.clone())),
        };
        let report = self.control_report(&req.kernel);
        let data = if oob {
            let bytes = output.wire_bytes();
            DataRef::OutOfBand(inner.shm.put(output, bytes).await)
        } else {
            sleep(inner.config.serialization.time(output.wire_bytes())).await;
            DataRef::InBand(output)
        };
        Ok((data, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kaas_accel::DeviceClass;
    use kaas_guest::Op;
    use kaas_kernels::Kernel;

    fn program(name: &str) -> GuestProgram {
        GuestProgram::new(name, DeviceClass::Cpu)
            .with_fuel(100)
            .with_body(vec![Op::Input, Op::Return])
    }

    #[test]
    fn versions_are_stable_and_tombstoned() {
        let state = GuestState::new();
        assert_eq!(
            state.register("acme", program("echo")).unwrap(),
            "acme/echo@v1"
        );
        assert_eq!(
            state.register("acme", program("echo")).unwrap(),
            "acme/echo@v2"
        );
        // Bare name resolves latest; @vN pins.
        assert_eq!(state.resolve("acme/echo").unwrap().name(), "acme/echo@v2");
        assert_eq!(
            state.resolve("acme/echo@v1").unwrap().name(),
            "acme/echo@v1"
        );
        assert!(state.resolve("acme/echo@v3").is_none());
        assert!(state.resolve("other/echo").is_none());
        // Removing v2 falls back to v1; ids are never reused.
        assert_eq!(state.remove("acme/echo@v2"), 1);
        assert_eq!(state.remove("acme/echo@v2"), 0);
        assert_eq!(state.resolve("acme/echo").unwrap().name(), "acme/echo@v1");
        assert_eq!(
            state.register("acme", program("echo")).unwrap(),
            "acme/echo@v3"
        );
        assert_eq!(state.remove("acme/echo"), 2);
        assert!(state.resolve("acme/echo").is_none());
    }

    #[test]
    fn listing_is_per_tenant() {
        let state = GuestState::new();
        state.register("a", program("x")).unwrap();
        state.register("a", program("y")).unwrap();
        state.register("ab", program("z")).unwrap();
        assert_eq!(state.list("a"), vec!["a/x@v1", "a/y@v1"]);
        assert_eq!(state.list("ab"), vec!["ab/z@v1"]);
        assert!(state.list("nobody").is_empty());
    }

    #[test]
    fn register_rejects_bad_tenants_and_programs() {
        let state = GuestState::new();
        for tenant in ["", "_sys", "a/b", "a@b", "a b"] {
            assert!(matches!(
                state.register(tenant, program("k")),
                Err(InvokeError::BadInput(_))
            ));
        }
        let mut bad = program("k");
        bad.body.clear();
        assert!(matches!(
            state.register("acme", bad),
            Err(InvokeError::BadInput(_))
        ));
        // An init that traps surfaces as a guest trap at register time.
        let mut trapping = program("boom");
        trapping.globals = 1;
        trapping.init = vec![Op::PushU(1), Op::PushU(0), Op::Div, Op::SetGlobal(0)];
        assert!(matches!(
            state.register("acme", trapping),
            Err(InvokeError::GuestTrap(_))
        ));
    }

    #[test]
    fn register_runs_the_verifier() {
        let state = GuestState::new();
        // A provable stack underflow is rejected before instantiation,
        // with the verifier's structured diagnostics in the payload.
        let mut bad = program("under");
        bad.body = vec![Op::Pop, Op::Return];
        let err = state.register("acme", bad).unwrap_err();
        assert!(matches!(err, InvokeError::VerifyRejected(_)));
        assert_eq!(err.kind(), "verify-rejected");
        assert!(err.to_string().contains("body@0: [underflow]"));
        // Accepted programs carry the static fuel bound into the
        // registry entry.
        let full = state.register("acme", program("echo")).unwrap();
        let k = state.resolve(&full).unwrap();
        assert_eq!(k.predicted_fuel(), Some(2));
        assert!(k.certificate().is_some());
    }

    #[test]
    fn accounting_bills_deltas_exactly_once() {
        let state = GuestState::new();
        let full = state.register("acme", program("echo")).unwrap();
        let k = state.resolve(&full).unwrap();
        k.execute(&Value::U64(1)).unwrap();
        k.execute(&Value::U64(2)).unwrap();
        let m = MetricsRegistry::new();
        state.account(&full, &m);
        assert_eq!(m.counter("guest.invocations"), 2);
        assert_eq!(
            m.counter("guest.tenant.acme.fuel"),
            m.counter("guest.fuel_used")
        );
        // Re-accounting with no new work adds nothing.
        state.account(&full, &m);
        assert_eq!(m.counter("guest.invocations"), 2);
        k.execute(&Value::U64(3)).unwrap();
        state.account(&full, &m);
        assert_eq!(m.counter("guest.invocations"), 3);
    }

    #[test]
    fn guest_name_shapes() {
        assert!(is_guest_name("acme/echo"));
        assert!(is_guest_name("acme/echo@v2"));
        assert!(!is_guest_name("matmul"));
        assert!(!is_guest_name("_kaas/code/register"));
    }
}
