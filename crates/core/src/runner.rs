//! [`TaskRunner`]: a warm, device-resident copy of a kernel (§4.1:
//! "Python-based host processes combining developer-provided kernel code
//! with a wrapper").
//!
//! A runner is created by a **cold start** — process spawn, runtime
//! import, device context/compile/transpile — and then serves invocations
//! at warm cost: data copies plus kernel execution only.

use std::cell::Cell;
use std::rc::Rc;
use std::time::Duration;

use kaas_accel::{Device, DeviceId};
use kaas_kernels::{Kernel, KernelError, Value};
use kaas_simtime::sleep;
use kaas_simtime::sync::Semaphore;

use crate::metrics::RunnerId;
use crate::protocol::InvokeError;

/// Runner tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunnerConfig {
    /// Maximum concurrently served invocations per runner (the paper's
    /// §5.5 autoscaling experiment caps this at four).
    pub max_inflight: usize,
    /// Cost of forking the runner process from the KaaS server's
    /// pre-initialized pool.
    pub spawn_process: Duration,
    /// Whether runners fork from a pool with accelerator libraries
    /// already imported (§5.1: on a KaaS cold start "the kernel is
    /// already registered in host memory and large dependencies such as
    /// numba are initialized"). When false, each cold start re-imports
    /// the runtime like a baseline process.
    pub preloaded_runtime: bool,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        RunnerConfig {
            max_inflight: 4,
            spawn_process: Duration::from_millis(60),
            preloaded_runtime: true,
        }
    }
}

/// Device-side timing of one invocation.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunnerTimings {
    /// Host→device copy.
    pub copy_in: Duration,
    /// Kernel occupancy.
    pub kernel_exec: Duration,
    /// Device→host copy.
    pub copy_out: Duration,
    /// Whether this was the runner's first (cold) invocation.
    pub first_invocation: bool,
}

/// A warm kernel instance bound to one device (and, on TPUs, one chip).
pub struct TaskRunner {
    id: RunnerId,
    kernel: Rc<dyn Kernel>,
    device: Device,
    chip: u32,
    admission: Semaphore,
    invocations: Cell<u64>,
    alive: Cell<bool>,
}

impl std::fmt::Debug for TaskRunner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskRunner")
            .field("id", &self.id)
            .field("kernel", &self.kernel.name())
            .field("device", &self.device.id())
            .field("alive", &self.alive.get())
            .finish()
    }
}

impl TaskRunner {
    /// Cold-starts a runner: process spawn + runtime import + device
    /// context creation / kernel compilation / circuit transpilation.
    pub async fn cold_start(
        id: RunnerId,
        kernel: Rc<dyn Kernel>,
        device: Device,
        chip: u32,
        config: RunnerConfig,
    ) -> TaskRunner {
        sleep(config.spawn_process).await;
        if !config.preloaded_runtime {
            sleep(device.runtime_init()).await;
        }
        match &device {
            Device::Gpu(gpu) => gpu.create_context().await,
            Device::Tpu(tpu) => tpu.compile().await,
            Device::Qpu(qpu) => qpu.transpile().await,
            Device::Cpu(_) | Device::Fpga(_) => {}
        }
        // Warm-init is the last phase: compiled-in kernels are resident
        // in the runner binary (free), while guest kernels pay either a
        // full instantiate or a snapshot restore here.
        if let Some((_, cost)) = kernel.warmup().cost() {
            sleep(cost).await;
        }
        TaskRunner {
            id,
            kernel,
            device,
            chip,
            admission: Semaphore::new(config.max_inflight),
            invocations: Cell::new(0),
            alive: Cell::new(true),
        }
    }

    /// Runner identity.
    pub fn id(&self) -> RunnerId {
        self.id
    }

    /// The device this runner occupies.
    pub fn device_id(&self) -> DeviceId {
        self.device.id()
    }

    /// Bound TPU chip (0 on other devices).
    pub fn chip(&self) -> u32 {
        self.chip
    }

    /// Invocations served (or in flight) so far.
    pub fn invocation_count(&self) -> u64 {
        self.invocations.get()
    }

    /// Simulates a runner crash: subsequent invocations fail.
    pub fn kill(&self) {
        self.alive.set(false);
    }

    /// Whether the runner is alive.
    pub fn is_alive(&self) -> bool {
        self.alive.get()
    }

    /// Serves one invocation: admission (FIFO, capped in-flight), device
    /// copies and kernel occupancy in virtual time, and the *real*
    /// computation of the kernel.
    ///
    /// # Errors
    ///
    /// [`InvokeError::RunnerFailed`] if the runner was killed;
    /// [`InvokeError::BadInput`] if the kernel rejects `input`.
    pub async fn invoke(&self, input: &Value) -> Result<(Value, RunnerTimings), InvokeError> {
        self.invoke_inner(input, false).await
    }

    /// Serves one invocation whose input is already resident in this
    /// runner's device memory (a data-plane cache hit): the host→device
    /// copy is skipped entirely, so `copy_in` comes back zero.
    ///
    /// # Errors
    ///
    /// As for [`invoke`](TaskRunner::invoke).
    pub async fn invoke_cached(
        &self,
        input: &Value,
    ) -> Result<(Value, RunnerTimings), InvokeError> {
        self.invoke_inner(input, true).await
    }

    async fn invoke_inner(
        &self,
        input: &Value,
        input_resident: bool,
    ) -> Result<(Value, RunnerTimings), InvokeError> {
        self.check_healthy()?;
        let _permit = self.admission.acquire(1).await;
        self.check_healthy()?;
        // Transport envelopes are a framing concern; kernels see content.
        let input = input.payload();
        let mut work = self.kernel.work(input).map_err(kernel_error)?;
        if input_resident {
            // The operand never crosses the host↔device boundary.
            work.bytes_in = 0;
        }
        let first = self.invocations.get() == 0;
        self.invocations.set(self.invocations.get() + 1);

        let timings = match &self.device {
            Device::Gpu(gpu) => {
                // KaaS runners copy through the server's pre-pinned
                // buffer pool even on their first invocation.
                let t = gpu.execute(&work, self.kernel.demand(), false).await;
                RunnerTimings {
                    copy_in: t.copy_in,
                    kernel_exec: t.kernel,
                    copy_out: t.copy_out,
                    first_invocation: first,
                }
            }
            Device::Cpu(cpu) => RunnerTimings {
                kernel_exec: cpu.run(&work).await,
                first_invocation: first,
                ..Default::default()
            },
            Device::Fpga(fpga) => {
                let t = fpga.execute(&work).await;
                RunnerTimings {
                    copy_in: t.dma_in,
                    kernel_exec: t.kernel,
                    copy_out: t.dma_out,
                    first_invocation: first,
                }
            }
            Device::Tpu(tpu) => RunnerTimings {
                kernel_exec: tpu.run_on_chip(self.chip, &work).await,
                first_invocation: first,
                ..Default::default()
            },
            Device::Qpu(qpu) => {
                let cost = work.circuit.ok_or_else(|| {
                    InvokeError::BadInput("QPU kernels must declare a circuit cost".into())
                })?;
                RunnerTimings {
                    kernel_exec: qpu.execute(&cost).await,
                    first_invocation: first,
                    ..Default::default()
                }
            }
        };

        // A crash or device flap during the device work above means the
        // result never made it back to the server process.
        self.check_healthy()?;

        // The real computation (costless in virtual time — its cost is
        // the device model above).
        let output = self.kernel.execute(input).map_err(kernel_error)?;
        Ok((output, timings))
    }

    /// Fails fast when the runner process is dead or its device is
    /// offline — checked at entry, after admission, and again after the
    /// device work so mid-flight faults surface as `RunnerFailed`.
    fn check_healthy(&self) -> Result<(), InvokeError> {
        if !self.alive.get() {
            return Err(InvokeError::RunnerFailed(format!("{} is dead", self.id)));
        }
        if !self.device.is_online() {
            return Err(InvokeError::RunnerFailed(format!(
                "{} lost its device ({} offline)",
                self.id,
                self.device.id()
            )));
        }
        Ok(())
    }
}

/// Maps kernel faults onto the wire error space, preserving the guest
/// trap/fuel kinds so clients can tell "my code is wrong" from "my
/// budget is too small" from "my input is malformed".
fn kernel_error(e: KernelError) -> InvokeError {
    // Pass the inner message through: each `InvokeError` variant's
    // Display adds its own prefix, so keeping `e.to_string()` here
    // would double it ("guest kernel trapped: guest kernel trapped:").
    match e {
        KernelError::BadInput(m) => InvokeError::BadInput(m),
        KernelError::Trap(m) => InvokeError::GuestTrap(m),
        KernelError::FuelExhausted(m) => InvokeError::FuelExhausted(m),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kaas_accel::{CpuDevice, CpuProfile, GpuDevice, GpuProfile};
    use kaas_kernels::{MatMul, MonteCarlo};
    use kaas_simtime::{now, Simulation};

    fn gpu_device() -> Device {
        GpuDevice::new(DeviceId(0), GpuProfile::p100()).into()
    }

    #[test]
    fn cold_start_pays_spawn_and_context_only() {
        let mut sim = Simulation::new();
        let t = sim.block_on(async {
            let _runner = TaskRunner::cold_start(
                RunnerId(0),
                Rc::new(MatMul::new()),
                gpu_device(),
                0,
                RunnerConfig::default(),
            )
            .await;
            now()
        });
        // 60 ms pooled fork + 410 ms CUDA context; numba is pre-imported.
        assert!((t.as_secs_f64() - 0.47).abs() < 1e-6, "t={t:?}");
    }

    #[test]
    fn unpooled_cold_start_also_imports_the_runtime() {
        let mut sim = Simulation::new();
        let t = sim.block_on(async {
            let _runner = TaskRunner::cold_start(
                RunnerId(0),
                Rc::new(MatMul::new()),
                gpu_device(),
                0,
                RunnerConfig {
                    preloaded_runtime: false,
                    ..RunnerConfig::default()
                },
            )
            .await;
            now()
        });
        // + 430 ms numba import.
        assert!((t.as_secs_f64() - 0.90).abs() < 1e-6, "t={t:?}");
    }

    #[test]
    fn invocations_report_first_flag() {
        let mut sim = Simulation::new();
        sim.block_on(async {
            let runner = TaskRunner::cold_start(
                RunnerId(0),
                Rc::new(MatMul::new()),
                gpu_device(),
                0,
                RunnerConfig::default(),
            )
            .await;
            let (_, a) = runner.invoke(&Value::U64(500)).await.unwrap();
            let (_, b) = runner.invoke(&Value::U64(500)).await.unwrap();
            assert!(a.first_invocation);
            assert!(!b.first_invocation);
        });
    }

    #[test]
    fn cached_invocation_skips_copy_in() {
        let mut sim = Simulation::new();
        sim.block_on(async {
            let runner = TaskRunner::cold_start(
                RunnerId(0),
                Rc::new(MatMul::new()),
                gpu_device(),
                0,
                RunnerConfig::default(),
            )
            .await;
            let (_, miss) = runner.invoke(&Value::U64(500)).await.unwrap();
            let (_, hit) = runner.invoke_cached(&Value::U64(500)).await.unwrap();
            assert!(miss.copy_in > Duration::ZERO);
            assert_eq!(hit.copy_in, Duration::ZERO);
            assert!(
                hit.copy_out > Duration::ZERO,
                "only the inbound copy is cached"
            );
            assert_eq!(hit.kernel_exec, miss.kernel_exec);
        });
    }

    #[test]
    fn admission_caps_in_flight() {
        let mut sim = Simulation::new();
        let t = sim.block_on(async {
            let runner = Rc::new(
                TaskRunner::cold_start(
                    RunnerId(0),
                    Rc::new(MonteCarlo::default()),
                    Device::Cpu(CpuDevice::new(
                        DeviceId(0),
                        CpuProfile::xeon_e5_2698v4_dual(),
                    )),
                    0,
                    RunnerConfig {
                        max_inflight: 1,
                        spawn_process: Duration::ZERO,
                        preloaded_runtime: true,
                    },
                )
                .await,
            );
            // Two invocations with cap 1 must serialize.
            let r2 = Rc::clone(&runner);
            let h = kaas_simtime::spawn(async move {
                r2.invoke(&Value::U64(5_600_000_000)).await.unwrap();
            });
            runner.invoke(&Value::U64(5_600_000_000)).await.unwrap();
            h.await;
            now()
        });
        // Each runs 1 s on the CPU (5.6e9×25 flops at 140 GF/s, eff 0.5 →
        // 2.8e11/1.4e11 = 2 s each... cap forces them to serialize, and
        // CPU PS would have shared otherwise; with cap 1 total = 2 runs.
        assert!(t.as_secs_f64() > 1.5, "t={t:?}");
    }

    #[test]
    fn killed_runner_rejects() {
        let mut sim = Simulation::new();
        sim.block_on(async {
            let runner = TaskRunner::cold_start(
                RunnerId(3),
                Rc::new(MatMul::new()),
                gpu_device(),
                0,
                RunnerConfig::default(),
            )
            .await;
            assert!(runner.is_alive());
            runner.kill();
            let err = runner.invoke(&Value::U64(10)).await.unwrap_err();
            assert!(matches!(err, InvokeError::RunnerFailed(_)));
        });
    }

    #[test]
    fn bad_input_propagates() {
        let mut sim = Simulation::new();
        sim.block_on(async {
            let runner = TaskRunner::cold_start(
                RunnerId(0),
                Rc::new(MatMul::new()),
                gpu_device(),
                0,
                RunnerConfig::default(),
            )
            .await;
            let err = runner.invoke(&Value::Unit).await.unwrap_err();
            assert!(matches!(err, InvokeError::BadInput(_)));
        });
    }
}
