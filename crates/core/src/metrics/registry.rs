//! [`MetricsRegistry`]: the server's structured metric store.
//!
//! Replaces ad-hoc aggregation over raw [`InvocationReport`]
//! (crate::InvocationReport) lists with three first-class metric kinds:
//!
//! * **counters** — monotone event counts (invocations, cold starts,
//!   errors),
//! * **gauges** — instantaneous levels (queue depth, in-flight work,
//!   per-device utilization),
//! * **histograms** — log-bucketed latency distributions with exact
//!   mean and p50/p95/p99 estimates ([`Histogram`]).
//!
//! All maps are ordered (`BTreeMap`) and all state is deterministic, so
//! [`MetricsRegistry::render`] output is byte-identical across
//! identical runs.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::rc::Rc;

use super::histogram::{Histogram, HistogramSummary};

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

/// A shared, clonable registry of counters, gauges, and histograms.
///
/// # Examples
///
/// ```
/// use kaas_core::MetricsRegistry;
///
/// let reg = MetricsRegistry::new();
/// reg.inc("invocations");
/// reg.set_gauge("in_flight", 3.0);
/// reg.observe("latency.server", 0.042);
/// assert_eq!(reg.counter("invocations"), 1);
/// let s = reg.summary("latency.server").unwrap();
/// assert_eq!(s.count, 1);
/// assert_eq!(s.p99, 0.042);
/// ```
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    inner: Rc<RefCell<RegistryInner>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("MetricsRegistry")
            .field("counters", &inner.counters.len())
            .field("gauges", &inner.gauges.len())
            .field("histograms", &inner.histograms.len())
            .finish()
    }
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments counter `name` by one (creating it at zero).
    pub fn inc(&self, name: &str) {
        self.add(name, 1);
    }

    /// Increments counter `name` by `delta`.
    pub fn add(&self, name: &str, delta: u64) {
        let mut inner = self.inner.borrow_mut();
        *inner.counters.entry(name.to_owned()).or_insert(0) += delta;
    }

    /// Current value of counter `name` (zero if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.inner.borrow().counters.get(name).copied().unwrap_or(0)
    }

    /// Sets gauge `name` to `value`.
    pub fn set_gauge(&self, name: &str, value: f64) {
        self.inner
            .borrow_mut()
            .gauges
            .insert(name.to_owned(), value);
    }

    /// Current value of gauge `name`, if ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.inner.borrow().gauges.get(name).copied()
    }

    /// Records `value` (seconds, for latencies) into histogram `name`.
    pub fn observe(&self, name: &str, value: f64) {
        self.inner
            .borrow_mut()
            .histograms
            .entry(name.to_owned())
            .or_default()
            .observe(value);
    }

    /// A snapshot of histogram `name`, if it exists.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.inner.borrow().histograms.get(name).cloned()
    }

    /// Count/mean/p50/p95/p99 summary of histogram `name` (`None` if
    /// the histogram is missing or empty).
    pub fn summary(&self, name: &str) -> Option<HistogramSummary> {
        self.inner
            .borrow()
            .histograms
            .get(name)
            .and_then(Histogram::summary)
    }

    /// Names of all registered counters, gauges, and histograms, each
    /// sorted alphabetically.
    pub fn names(&self) -> (Vec<String>, Vec<String>, Vec<String>) {
        let inner = self.inner.borrow();
        (
            inner.counters.keys().cloned().collect(),
            inner.gauges.keys().cloned().collect(),
            inner.histograms.keys().cloned().collect(),
        )
    }

    /// Renders every metric in a Prometheus-style text format, sorted by
    /// name — counters as `name <n>`, gauges as `name <v>`, histograms
    /// as `name{stat="..."} <v>` lines for count/mean/p50/p95/p99.
    /// Deterministic: identical runs render identical text.
    pub fn render(&self) -> String {
        let inner = self.inner.borrow();
        let mut out = String::new();
        for (name, v) in &inner.counters {
            let _ = writeln!(out, "{name} {v}");
        }
        for (name, v) in &inner.gauges {
            let _ = writeln!(out, "{name} {v:.9}");
        }
        for (name, h) in &inner.histograms {
            if let Some(s) = h.summary() {
                let _ = writeln!(out, "{name}{{stat=\"count\"}} {}", s.count);
                for (stat, v) in [
                    ("mean", s.mean),
                    ("p50", s.p50),
                    ("p95", s.p95),
                    ("p99", s.p99),
                ] {
                    let _ = writeln!(out, "{name}{{stat=\"{stat}\"}} {v:.9}");
                }
            }
        }
        out
    }

    /// Drops every metric.
    pub fn clear(&self) {
        let mut inner = self.inner.borrow_mut();
        inner.counters.clear();
        inner.gauges.clear();
        inner.histograms.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let reg = MetricsRegistry::new();
        assert_eq!(reg.counter("x"), 0);
        reg.inc("x");
        reg.add("x", 4);
        assert_eq!(reg.counter("x"), 5);
    }

    #[test]
    fn gauges_overwrite() {
        let reg = MetricsRegistry::new();
        assert_eq!(reg.gauge("depth"), None);
        reg.set_gauge("depth", 2.0);
        reg.set_gauge("depth", 7.0);
        assert_eq!(reg.gauge("depth"), Some(7.0));
    }

    #[test]
    fn clones_share_state() {
        let reg = MetricsRegistry::new();
        let other = reg.clone();
        other.inc("shared");
        other.observe("h", 1.0);
        assert_eq!(reg.counter("shared"), 1);
        assert_eq!(reg.summary("h").unwrap().count, 1);
    }

    #[test]
    fn render_is_sorted_and_deterministic() {
        let build = || {
            let reg = MetricsRegistry::new();
            reg.inc("b.count");
            reg.inc("a.count");
            reg.set_gauge("z.gauge", 1.5);
            for i in 1..=10 {
                reg.observe("lat", i as f64 * 0.01);
            }
            reg.render()
        };
        let text = build();
        assert_eq!(text, build());
        let a = text.find("a.count").unwrap();
        let b = text.find("b.count").unwrap();
        assert!(a < b, "metrics must render in sorted order:\n{text}");
        assert!(text.contains("lat{stat=\"count\"} 10"));
        assert!(text.contains("lat{stat=\"p95\"}"));
    }

    #[test]
    fn missing_histograms_have_no_summary() {
        let reg = MetricsRegistry::new();
        assert!(reg.summary("nope").is_none());
        assert!(reg.histogram("nope").is_none());
    }
}
