//! Log-bucketed latency histograms.
//!
//! A [`Histogram`] spreads observations over geometrically growing
//! buckets (eight per power of two, ≈9.05 % wide), so quantile queries
//! cost O(buckets) with a bounded relative error of half a bucket
//! (≈±4.4 %) while `count`/`sum`/`min`/`max` — and therefore the mean —
//! stay exact. Everything is plain integer/float state: identical runs
//! produce identical histograms.

/// Smallest representable observation (1 ns, in seconds). Anything
/// smaller lands in the first bucket.
const MIN_VALUE: f64 = 1e-9;

/// Buckets per power of two.
const BUCKETS_PER_OCTAVE: f64 = 8.0;

/// Total bucket count: 8 × 64 octaves spans 1 ns to ≈1.8e10 s.
const NUM_BUCKETS: usize = 512;

/// A fixed-layout logarithmic histogram of non-negative samples
/// (by convention, seconds).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: Vec::new(),
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

/// Exact count/sum statistics plus quantile estimates of one histogram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Exact sum of all observations.
    pub sum: f64,
    /// Exact mean (`sum / count`).
    pub mean: f64,
    /// Exact smallest observation.
    pub min: f64,
    /// Exact largest observation.
    pub max: f64,
    /// Median estimate (exact for 0- and 1-sample histograms).
    pub p50: f64,
    /// 95th-percentile estimate.
    pub p95: f64,
    /// 99th-percentile estimate.
    pub p99: f64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Index of the bucket holding `value`.
    fn bucket_index(value: f64) -> usize {
        if value <= MIN_VALUE {
            return 0;
        }
        let i = ((value / MIN_VALUE).log2() * BUCKETS_PER_OCTAVE).floor() as usize;
        i.min(NUM_BUCKETS - 1)
    }

    /// `[lo, hi)` value range of bucket `i`.
    pub fn bucket_bounds(i: usize) -> (f64, f64) {
        let lo = if i == 0 {
            0.0
        } else {
            MIN_VALUE * (i as f64 / BUCKETS_PER_OCTAVE).exp2()
        };
        let hi = MIN_VALUE * ((i + 1) as f64 / BUCKETS_PER_OCTAVE).exp2();
        (lo, hi)
    }

    /// Records one observation.
    ///
    /// # Panics
    ///
    /// Panics on a negative or non-finite sample — observations are
    /// durations, which are always finite and non-negative.
    pub fn observe(&mut self, value: f64) {
        assert!(
            value.is_finite() && value >= 0.0,
            "histogram samples must be finite and non-negative, got {value}"
        );
        let i = Self::bucket_index(value);
        if self.counts.len() <= i {
            self.counts.resize(i + 1, 0);
        }
        self.counts[i] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether nothing was observed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Exact mean, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// The `q`-quantile (0 ≤ q ≤ 1), or `None` when empty.
    ///
    /// The estimate is the geometric midpoint of the bucket containing
    /// the rank-`q` sample, clamped to the exact observed `[min, max]`
    /// — so a single-sample histogram reports that sample exactly, and
    /// `quantile(0.0)` / `quantile(1.0)` are always exact.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.count == 0 {
            return None;
        }
        if q == 0.0 {
            return Some(self.min);
        }
        if q == 1.0 {
            return Some(self.max);
        }
        // Rank of the target sample, matching linear-interpolation
        // percentile conventions on the sample count.
        let rank = (q * (self.count - 1) as f64).round() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if c > 0 && seen > rank {
                let (lo, hi) = Self::bucket_bounds(i);
                let mid = if lo == 0.0 {
                    hi / 2.0
                } else {
                    (lo * hi).sqrt()
                };
                return Some(mid.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Count/sum/quantile summary, or `None` when empty.
    pub fn summary(&self) -> Option<HistogramSummary> {
        (self.count > 0).then(|| HistogramSummary {
            count: self.count,
            sum: self.sum,
            mean: self.sum / self.count as f64,
            min: self.min,
            max: self.max,
            p50: self.quantile(0.50).expect("non-empty"),
            p95: self.quantile(0.95).expect("non-empty"),
            p99: self.quantile(0.99).expect("non-empty"),
        })
    }

    /// Non-empty buckets as `(lo, hi, count)` triples, in value order.
    pub fn buckets(&self) -> Vec<(f64, f64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = Self::bucket_bounds(i);
                (lo, hi, c)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.mean(), None);
        assert!(h.summary().is_none());
    }

    #[test]
    fn single_sample_is_exact_everywhere() {
        let mut h = Histogram::new();
        h.observe(0.125);
        let s = h.summary().unwrap();
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 0.125);
        assert_eq!(s.min, 0.125);
        assert_eq!(s.max, 0.125);
        // min == max clamping makes every quantile exact.
        assert_eq!(s.p50, 0.125);
        assert_eq!(s.p95, 0.125);
        assert_eq!(s.p99, 0.125);
    }

    #[test]
    fn bucket_boundaries_are_geometric_and_contiguous() {
        // Each bucket's hi is the next bucket's lo, and hi/lo is the
        // eighth root of two.
        for i in 1..64 {
            let (lo, hi) = Histogram::bucket_bounds(i);
            let (next_lo, _) = Histogram::bucket_bounds(i + 1);
            assert!((hi - next_lo).abs() < 1e-18);
            assert!((hi / lo - 2f64.powf(1.0 / 8.0)).abs() < 1e-12);
        }
        // The first bucket catches everything at or below 1 ns.
        assert_eq!(Histogram::bucket_index(0.0), 0);
        assert_eq!(Histogram::bucket_index(1e-9), 0);
        assert_eq!(Histogram::bucket_index(0.5e-9), 0);
        // Values on a power-of-two boundary land in the bucket starting
        // there.
        let i = Histogram::bucket_index(2e-9);
        let (lo, hi) = Histogram::bucket_bounds(i);
        assert!(lo <= 2e-9 && 2e-9 < hi, "{lo} <= 2e-9 < {hi}");
    }

    #[test]
    fn mean_is_exact_quantiles_within_bucket_width() {
        let mut h = Histogram::new();
        let samples: Vec<f64> = (1..=1000).map(|i| i as f64 * 1e-3).collect();
        for &s in &samples {
            h.observe(s);
        }
        let s = h.summary().unwrap();
        let exact_mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((s.mean - exact_mean).abs() < 1e-12);
        // One bucket is ≈9 % wide; the midpoint estimate is within ±5 %.
        for (q, exact) in [(0.50, 0.5), (0.95, 0.95), (0.99, 0.99)] {
            let est = h.quantile(q).unwrap();
            assert!((est - exact).abs() / exact < 0.05, "q{q}: {est} vs {exact}");
        }
        assert_eq!(s.min, 1e-3);
        assert_eq!(s.max, 1.0);
    }

    #[test]
    fn extreme_quantiles_are_exact() {
        let mut h = Histogram::new();
        for v in [0.004, 1.7, 0.9, 0.031] {
            h.observe(v);
        }
        assert_eq!(h.quantile(0.0), Some(0.004));
        assert_eq!(h.quantile(1.0), Some(1.7));
    }

    #[test]
    fn zero_samples_land_in_the_first_bucket() {
        let mut h = Histogram::new();
        h.observe(0.0);
        h.observe(0.0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile(0.5), Some(0.0));
        assert_eq!(h.buckets()[0].2, 2);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn bad_quantile_rejected() {
        let mut h = Histogram::new();
        h.observe(1.0);
        h.quantile(1.5);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn negative_sample_rejected() {
        Histogram::new().observe(-1.0);
    }

    #[test]
    fn huge_samples_saturate_the_last_bucket() {
        let mut h = Histogram::new();
        h.observe(1e80);
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile(0.5), Some(1e80)); // clamped to max
    }
}
