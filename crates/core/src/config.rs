//! Server configuration: tuning knobs plus the pluggable control-plane
//! policies ([`Scheduler`], [`AutoscalePolicy`]).
//!
//! `ServerConfig` stays [`Default`]-constructible and clonable; policy
//! fields hold trait objects, set from the built-in policy structs
//! ([`WarmFirst`](crate::WarmFirst), [`NoScale`](crate::NoScale), …) or
//! from custom implementations:
//!
//! ```
//! use kaas_core::{ServerConfig, TargetUtilization, WarmFirst};
//!
//! let config = ServerConfig::default()
//!     .with_scheduler(WarmFirst)
//!     .with_autoscaler(TargetUtilization { target: 0.8 })
//!     .with_tenant_quota(4);
//! ```

use std::time::Duration;

use kaas_net::SerializationProfile;
use kaas_simtime::SpanSink;

use crate::admission::{AdmissionConfig, AdmissionPolicy, AimdConfig};
use crate::autoscaler::{AutoscalePolicy, InFlightThreshold, NoScale};
use crate::resilience::{
    BreakerConfig, EvictionConfig, FallbackConfig, RetryBudgetConfig, RetryConfig,
};
use crate::runner::RunnerConfig;
use crate::scheduler::Scheduler;

/// Which dispatch engine the server runs.
///
/// [`DispatchMode::Serialized`] is the historical single-lock path: one
/// router critical section of [`ServerConfig::dispatch_overhead`] per
/// invocation, which saturates near `1 / dispatch_overhead`
/// dispatches/s (the paper's router-contention knee). It is kept behind
/// this flag for A/B experiments — the `cluster` bench reproduces the
/// knee with it.
///
/// [`DispatchMode::Sharded`] (the default) splits dispatch into a thin
/// front door that only classifies + enqueues, and per-shard worker
/// tasks that own placement, the cache step, retry, and the runner
/// handoff. Shard workers are ordinary simtime tasks, so same-seed
/// replay stays byte-identical.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DispatchMode {
    /// The historical serialized dispatcher (one global router lock).
    Serialized,
    /// The sharded dispatcher: front door + per-shard worker queues.
    Sharded(ShardConfig),
}

impl Default for DispatchMode {
    fn default() -> Self {
        DispatchMode::Sharded(ShardConfig::default())
    }
}

impl DispatchMode {
    /// Short stable name, used by benches and logs (`serialized` /
    /// `sharded`).
    pub fn name(&self) -> &'static str {
        match self {
            DispatchMode::Serialized => "serialized",
            DispatchMode::Sharded(_) => "sharded",
        }
    }
}

/// Tuning for [`DispatchMode::Sharded`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardConfig {
    /// Number of dispatch shards; `0` (the default) means one shard per
    /// device, keeping shard queues device-local so residency-aware
    /// placement stays cheap.
    pub shards: usize,
    /// How requests map onto shards.
    pub policy: ShardPolicy,
    /// Cost of the front-door classify + enqueue step. This is the only
    /// serialized per-invocation work left; the default 2 µs moves the
    /// saturation ceiling from `1/35 µs ≈ 28.6 k/s` to `500 k/s`.
    pub front_door_overhead: Duration,
    /// Seed for shard-choice tie-breaks ([`ShardPolicy::LeastLoaded`])
    /// and hash mixing ([`ShardPolicy::KernelAffinity`]); part of the
    /// deterministic-replay contract.
    pub seed: u64,
    /// Bound on each shard queue's depth. A full queue sheds new work
    /// at enqueue with [`InvokeError::Overloaded`][crate::InvokeError]
    /// (carrying a drain-time `retry_after` hint), and expired work is
    /// ejected lazily at dequeue — dead requests never reach placement.
    /// `None` (the default) keeps the historic unbounded queues.
    pub queue_cap: Option<usize>,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            shards: 0,
            policy: ShardPolicy::RoundRobin,
            front_door_overhead: Duration::from_micros(2),
            seed: 0,
            queue_cap: None,
        }
    }
}

impl ShardConfig {
    /// Sets (or clears, with `None`) the per-shard queue-depth bound.
    pub fn with_queue_cap(mut self, cap: impl Into<Option<usize>>) -> Self {
        self.queue_cap = cap.into();
        self
    }
}

/// Shard-selection policy for [`DispatchMode::Sharded`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardPolicy {
    /// Rotate through shards in request order (the default: perfectly
    /// balanced under uniform load, and single-kernel workloads still
    /// spread across all shards).
    #[default]
    RoundRobin,
    /// Route by FNV-1a hash of the kernel name (mixed with the seed):
    /// one kernel's requests always land on one shard, which keeps its
    /// placement decisions and device-cache state on a single queue.
    KernelAffinity,
    /// Route to the shallowest queue; ties broken by the seeded RNG.
    LeastLoaded,
}

impl ShardPolicy {
    /// Short stable name (`round-robin` / `kernel-affinity` /
    /// `least-loaded`).
    pub fn name(&self) -> &'static str {
        match self {
            ShardPolicy::RoundRobin => "round-robin",
            ShardPolicy::KernelAffinity => "kernel-affinity",
            ShardPolicy::LeastLoaded => "least-loaded",
        }
    }
}

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Per-invocation routing cost on the server CPU (calibrated to the
    /// Fig. 12b weak-scaling offset: ≈ 35 µs/invocation). Under
    /// [`DispatchMode::Serialized`] this is the global router critical
    /// section; under [`DispatchMode::Sharded`] each shard worker pays
    /// it per invocation, so shards overlap it.
    pub dispatch_overhead: Duration,
    /// Dispatch engine selection (default: sharded; see
    /// [`DispatchMode`] for the A/B story).
    pub dispatch: DispatchMode,
    /// Runner settings.
    pub runner: RunnerConfig,
    /// Placement policy (default: [`FillFirst`](crate::FillFirst)).
    pub scheduler: Box<dyn Scheduler>,
    /// Scale-out policy (default: [`InFlightThreshold`], the paper's
    /// §5.5 behaviour; use [`NoScale`] for prewarmed-only capacity).
    pub autoscaler: Box<dyn AutoscalePolicy>,
    /// Reap runners that stay idle for this long (§6: energy-aware
    /// scale-*down*; the next invocation after a reap cold-starts).
    /// `None` keeps runners warm forever.
    pub idle_timeout: Option<Duration>,
    /// Admission control (tenant quotas, overload shedding).
    pub admission: AdmissionConfig,
    /// Serializer for in-band payloads.
    pub serialization: SerializationProfile,
    /// Span sink for server-side invocation tracing (`None` disables
    /// recording). Share one sink between clients and the server to see
    /// a whole invocation across every hop.
    pub tracer: Option<SpanSink>,
    /// Retry behaviour of the dispatch path (default: three immediate
    /// attempts — the historical hard-coded behaviour).
    pub retry: RetryConfig,
    /// Per-device circuit breakers (default: `None`, disabled).
    pub breaker: Option<BreakerConfig>,
    /// Health-driven runner eviction (default: quarantine on the first
    /// failure — the historical behaviour).
    pub eviction: EvictionConfig,
    /// Degraded fallback routing between device classes (default: no
    /// routes; placement failures surface as errors).
    pub fallback: FallbackConfig,
    /// Retry budget governing the *server's own* retry amplification —
    /// today the flow executor's step retries. `None` (the default)
    /// keeps the historic unmetered behaviour.
    pub retry_budget: Option<RetryBudgetConfig>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            dispatch_overhead: Duration::from_micros(35),
            dispatch: DispatchMode::default(),
            runner: RunnerConfig::default(),
            scheduler: Box::new(crate::scheduler::FillFirst),
            autoscaler: Box::new(InFlightThreshold),
            idle_timeout: None,
            admission: AdmissionConfig::default(),
            serialization: SerializationProfile::python_pickle(),
            tracer: None,
            retry: RetryConfig::default(),
            breaker: None,
            eviction: EvictionConfig::default(),
            fallback: FallbackConfig::none(),
            retry_budget: None,
        }
    }
}

impl ServerConfig {
    /// Sets the per-invocation dispatch overhead.
    pub fn with_dispatch_overhead(mut self, overhead: Duration) -> Self {
        self.dispatch_overhead = overhead;
        self
    }

    /// Selects the dispatch engine: [`DispatchMode::Serialized`] for
    /// the historical single-lock router (the A/B baseline), or
    /// [`DispatchMode::Sharded`] with explicit [`ShardConfig`] tuning.
    pub fn with_dispatch(mut self, dispatch: DispatchMode) -> Self {
        self.dispatch = dispatch;
        self
    }

    /// Sets the runner configuration.
    pub fn with_runner(mut self, runner: RunnerConfig) -> Self {
        self.runner = runner;
        self
    }

    /// Sets the placement policy — a built-in policy struct
    /// ([`FillFirst`](crate::FillFirst),
    /// [`RoundRobin`][crate::RoundRobin], …) or any custom
    /// [`Scheduler`] implementation.
    pub fn with_scheduler(mut self, scheduler: impl Into<Box<dyn Scheduler>>) -> Self {
        self.scheduler = scheduler.into();
        self
    }

    /// Sets the scale-out policy.
    pub fn with_autoscaler(mut self, autoscaler: impl Into<Box<dyn AutoscalePolicy>>) -> Self {
        self.autoscaler = autoscaler.into();
        self
    }

    /// Boolean shorthand for the classic configurations: `true` is the
    /// paper's [`InFlightThreshold`] policy, `false` is [`NoScale`]
    /// (prewarmed capacity only).
    pub fn with_autoscale(self, autoscale: bool) -> Self {
        if autoscale {
            self.with_autoscaler(InFlightThreshold)
        } else {
            self.with_autoscaler(NoScale)
        }
    }

    /// Sets (or clears, with `None`) the idle-runner reap timeout.
    pub fn with_idle_timeout(mut self, timeout: impl Into<Option<Duration>>) -> Self {
        self.idle_timeout = timeout.into();
        self
    }

    /// Sets (or clears, with `None`) the per-tenant concurrency quota.
    pub fn with_tenant_quota(mut self, quota: impl Into<Option<usize>>) -> Self {
        self.admission.tenant_quota = quota.into();
        self
    }

    /// Sets (or clears, with `None`) a *static* server-wide
    /// admitted-request ceiling ([`AdmissionPolicy::FixedCap`]); excess
    /// requests fail with
    /// [`InvokeError::Overloaded`][crate::InvokeError::Overloaded].
    /// Prefer [`with_adaptive_admission`](Self::with_adaptive_admission)
    /// unless you are A/B-ing against the historic fixed cap.
    pub fn with_max_in_flight(mut self, max: impl Into<Option<usize>>) -> Self {
        self.admission.limiter = max.into().map(AdmissionPolicy::FixedCap);
        self
    }

    /// Enables the adaptive (AIMD-on-queue-wait) admission limiter —
    /// the default [`AdmissionPolicy`] — with the given tuning.
    pub fn with_adaptive_admission(mut self, aimd: AimdConfig) -> Self {
        self.admission.limiter = Some(AdmissionPolicy::Adaptive(aimd));
        self
    }

    /// Sets (or clears, with `None`) the admission limiter policy
    /// directly.
    pub fn with_admission_policy(mut self, policy: impl Into<Option<AdmissionPolicy>>) -> Self {
        self.admission.limiter = policy.into();
        self
    }

    /// Enables a retry budget for server-side retry loops (the flow
    /// executor's step retries).
    pub fn with_retry_budget(mut self, budget: RetryBudgetConfig) -> Self {
        self.retry_budget = Some(budget);
        self
    }

    /// Sets the in-band payload serializer.
    pub fn with_serialization(mut self, serialization: SerializationProfile) -> Self {
        self.serialization = serialization;
        self
    }

    /// Attaches a span sink for server-side tracing: admission, dispatch,
    /// queueing, cold starts, and device phases record spans into it.
    pub fn with_tracer(mut self, tracer: SpanSink) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// Sets the dispatch retry policy (attempts, backoff, budget).
    pub fn with_retry(mut self, retry: RetryConfig) -> Self {
        self.retry = retry;
        self
    }

    /// Enables per-device circuit breakers with the given tuning.
    pub fn with_breaker(mut self, breaker: BreakerConfig) -> Self {
        self.breaker = Some(breaker);
        self
    }

    /// Sets the health-driven runner eviction threshold.
    pub fn with_eviction(mut self, eviction: EvictionConfig) -> Self {
        self.eviction = eviction;
        self
    }

    /// Sets degraded fallback routes between device classes.
    pub fn with_fallback(mut self, fallback: FallbackConfig) -> Self {
        self.fallback = fallback;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{RoundRobin, SchedCtx, SlotChoice};

    #[test]
    fn default_matches_the_paper_setup() {
        let c = ServerConfig::default();
        assert_eq!(c.dispatch_overhead, Duration::from_micros(35));
        // Sharded dispatch is the default; one shard per device,
        // round-robin, 2 µs front door.
        assert_eq!(c.dispatch.name(), "sharded");
        match &c.dispatch {
            DispatchMode::Sharded(s) => {
                assert_eq!(s.shards, 0, "0 = one shard per device");
                assert_eq!(s.policy, ShardPolicy::RoundRobin);
                assert_eq!(s.front_door_overhead, Duration::from_micros(2));
                assert_eq!(s.seed, 0);
            }
            DispatchMode::Serialized => unreachable!(),
        }
        assert_eq!(DispatchMode::Serialized.name(), "serialized");
        assert_eq!(c.scheduler.name(), "fill-first");
        assert_eq!(c.autoscaler.name(), "in-flight-threshold");
        assert_eq!(c.admission, AdmissionConfig::default());
        assert!(c.idle_timeout.is_none());
        // Resilience defaults reproduce the pre-resilience behaviour.
        assert_eq!(c.retry.max_attempts, 3);
        assert!(c.breaker.is_none());
        assert_eq!(c.eviction.failure_threshold, 1);
        assert!(c.fallback.is_empty());
    }

    #[test]
    fn builders_compose() {
        let c = ServerConfig::default()
            .with_scheduler(RoundRobin::default())
            .with_autoscale(false)
            .with_tenant_quota(3)
            .with_max_in_flight(64)
            .with_idle_timeout(Duration::from_secs(60));
        assert_eq!(c.scheduler.name(), "round-robin");
        assert_eq!(c.autoscaler.name(), "no-scale");
        assert_eq!(c.admission.tenant_quota, Some(3));
        assert_eq!(
            c.admission.limiter,
            Some(AdmissionPolicy::FixedCap(64)),
            "with_max_in_flight keeps the historic static-cap semantics"
        );
        assert_eq!(c.idle_timeout, Some(Duration::from_secs(60)));

        let c = c.with_adaptive_admission(AimdConfig::default());
        assert_eq!(
            c.admission.limiter,
            Some(AdmissionPolicy::Adaptive(AimdConfig::default()))
        );
        assert_eq!(
            AdmissionPolicy::default(),
            AdmissionPolicy::Adaptive(AimdConfig::default()),
            "adaptive is the default limiter policy"
        );
    }

    #[test]
    fn custom_policies_plug_in() {
        #[derive(Debug, Clone)]
        struct Always0;
        impl Scheduler for Always0 {
            fn name(&self) -> &'static str {
                "always-0"
            }
            fn pick(&self, _ctx: &SchedCtx) -> Option<SlotChoice> {
                Some(SlotChoice { index: 0 })
            }
            fn box_clone(&self) -> Box<dyn Scheduler> {
                Box::new(self.clone())
            }
        }
        let c = ServerConfig::default().with_scheduler(Always0);
        assert_eq!(c.scheduler.name(), "always-0");
        // Clone preserves the policy.
        assert_eq!(c.clone().scheduler.name(), "always-0");
    }
}
