//! Pluggable scale-out policy: when to start additional runners.
//!
//! The server consults its [`AutoscalePolicy`] on every invocation —
//! once proactively before scheduling
//! ([`on_invocation`][AutoscalePolicy::on_invocation]) and, if the
//! scheduler declines to place because every eligible runner is
//! saturated, once reactively
//! ([`on_saturated`](AutoscalePolicy::on_saturated)). A
//! [`ScaleUp`][ScaleDecision::ScaleUp] verdict makes the server try to spawn one
//! runner through the [pool](crate::pool); if no device has room the
//! invocation queues on the least-loaded runner instead, so a policy
//! can never exceed the physical device count.
//!
//! Scale *down* is handled orthogonally by the pool's idle reaper
//! ([`ServerConfig::idle_timeout`](crate::ServerConfig::idle_timeout)).
//!
//! Built-in policies: [`InFlightThreshold`] (the paper's §5.5
//! behaviour, Fig. 13/14), [`NoScale`] (prewarmed capacity only), and
//! [`TargetUtilization`] (proactive, scales before saturation).

/// A point-in-time view of one kernel's serving state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScaleCtx<'a> {
    /// Kernel being invoked.
    pub kernel: &'a str,
    /// Usable runners (starting or warm) for this kernel.
    pub runners: usize,
    /// Invocations currently claimed across those runners.
    pub in_flight: usize,
    /// Per-runner in-flight cap.
    pub cap_per_runner: usize,
    /// Physical ceiling: total runner capacity across devices of the
    /// kernel's class (one per device, one per chip on TPUs).
    pub device_capacity: usize,
}

/// An autoscaler's verdict for one event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleDecision {
    /// Keep the current fleet.
    Hold,
    /// Start one more runner (best-effort; bounded by device capacity).
    ScaleUp,
}

/// Scale-out policy, evaluated on invocation events.
///
/// Implementations must be deterministic functions of their own state
/// and the [`ScaleCtx`] so simulations replay bit-for-bit.
pub trait AutoscalePolicy {
    /// Short policy name (used in `Debug` output).
    fn name(&self) -> &'static str;

    /// Proactive hook: called for every invocation before scheduling.
    /// Default: [`ScaleDecision::Hold`].
    fn on_invocation(&self, ctx: &ScaleCtx) -> ScaleDecision {
        let _ = ctx;
        ScaleDecision::Hold
    }

    /// Reactive hook: called when the scheduler declined to place
    /// because every eligible runner is at its in-flight cap.
    fn on_saturated(&self, ctx: &ScaleCtx) -> ScaleDecision;

    /// Clones the policy, preserving its internal state.
    fn box_clone(&self) -> Box<dyn AutoscalePolicy>;
}

impl Clone for Box<dyn AutoscalePolicy> {
    fn clone(&self) -> Self {
        self.box_clone()
    }
}

impl<P: AutoscalePolicy + 'static> From<P> for Box<dyn AutoscalePolicy> {
    fn from(policy: P) -> Self {
        Box::new(policy)
    }
}

impl std::fmt::Debug for Box<dyn AutoscalePolicy> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AutoscalePolicy({})", self.name())
    }
}

/// The paper's §5.5 policy: start another runner exactly when demand
/// has filled every existing runner to its in-flight threshold (Figs.
/// 13–14). This is the default.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InFlightThreshold;

impl AutoscalePolicy for InFlightThreshold {
    fn name(&self) -> &'static str {
        "in-flight-threshold"
    }

    fn on_saturated(&self, ctx: &ScaleCtx) -> ScaleDecision {
        // The scheduler only reports saturation once all runners carry
        // `cap_per_runner` claims; confirm and scale.
        if ctx.in_flight >= ctx.runners * ctx.cap_per_runner {
            ScaleDecision::ScaleUp
        } else {
            ScaleDecision::Hold
        }
    }

    fn box_clone(&self) -> Box<dyn AutoscalePolicy> {
        Box::new(*self)
    }
}

/// Never scales: capacity comes exclusively from
/// [`prewarm`](crate::KaasServer::prewarm)ed runners (plus the
/// bootstrap runner a cold deployment starts for its first request).
/// The old `autoscale: false` configuration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoScale;

impl AutoscalePolicy for NoScale {
    fn name(&self) -> &'static str {
        "no-scale"
    }

    fn on_saturated(&self, _ctx: &ScaleCtx) -> ScaleDecision {
        ScaleDecision::Hold
    }

    fn box_clone(&self) -> Box<dyn AutoscalePolicy> {
        Box::new(*self)
    }
}

/// Proactive utilization target: starts a runner as soon as fleet
/// utilization (`in_flight / (runners · cap)`) crosses `target`,
/// absorbing bursts before they saturate (at the cost of running more
/// runners than strictly necessary).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TargetUtilization {
    /// Utilization fraction in `(0, 1]` above which to scale out.
    pub target: f64,
}

impl Default for TargetUtilization {
    /// Scale at 75 % utilization.
    fn default() -> Self {
        TargetUtilization { target: 0.75 }
    }
}

impl AutoscalePolicy for TargetUtilization {
    fn name(&self) -> &'static str {
        "target-utilization"
    }

    fn on_invocation(&self, ctx: &ScaleCtx) -> ScaleDecision {
        let capacity = (ctx.runners * ctx.cap_per_runner) as f64;
        if capacity <= 0.0 || ctx.in_flight as f64 / capacity >= self.target {
            ScaleDecision::ScaleUp
        } else {
            ScaleDecision::Hold
        }
    }

    fn on_saturated(&self, _ctx: &ScaleCtx) -> ScaleDecision {
        ScaleDecision::ScaleUp
    }

    fn box_clone(&self) -> Box<dyn AutoscalePolicy> {
        Box::new(*self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(runners: usize, in_flight: usize, cap: usize) -> ScaleCtx<'static> {
        ScaleCtx {
            kernel: "k",
            runners,
            in_flight,
            cap_per_runner: cap,
            device_capacity: 8,
        }
    }

    #[test]
    fn threshold_policy_scales_exactly_at_the_cap() {
        let p = InFlightThreshold;
        // Below the aggregate threshold: hold (a spurious saturation
        // report must not trigger growth).
        assert_eq!(p.on_saturated(&ctx(2, 7, 4)), ScaleDecision::Hold);
        // At the paper's threshold (all runners full): scale.
        assert_eq!(p.on_saturated(&ctx(2, 8, 4)), ScaleDecision::ScaleUp);
        // Proactive hook never fires for the reactive paper policy.
        assert_eq!(p.on_invocation(&ctx(2, 8, 4)), ScaleDecision::Hold);
    }

    #[test]
    fn no_scale_always_holds() {
        let p = NoScale;
        assert_eq!(p.on_saturated(&ctx(1, 99, 4)), ScaleDecision::Hold);
        assert_eq!(p.on_invocation(&ctx(1, 99, 4)), ScaleDecision::Hold);
    }

    #[test]
    fn target_utilization_scales_before_saturation() {
        let p = TargetUtilization { target: 0.75 };
        // 5/8 = 62.5 % < 75 %: hold.
        assert_eq!(p.on_invocation(&ctx(2, 5, 4)), ScaleDecision::Hold);
        // 6/8 = 75 %: scale proactively, well before all slots fill.
        assert_eq!(p.on_invocation(&ctx(2, 6, 4)), ScaleDecision::ScaleUp);
        assert_eq!(p.on_saturated(&ctx(2, 8, 4)), ScaleDecision::ScaleUp);
    }
}
