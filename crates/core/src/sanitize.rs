//! The runtime invariant sanitizer (`sim-sanitizer` feature): an
//! [`Auditor`] attached to every [`KaasServer`](crate::KaasServer),
//! re-checked after each executor step and at server drop.
//!
//! The static pass in `kaas-audit` proves the *code* cannot observe
//! nondeterminism; this module proves the *run* kept its resource
//! accounting honest. Every check is an equality between two
//! independently maintained views of the same state, so a single-sided
//! bookkeeping bug (a missed decrement, a leaked guard, a stale cache)
//! shows up as a divergence:
//!
//! * **Claim balance** — the per-device claim ledger (moved only by
//!   [`InFlightGuard`](crate::pool::InFlightGuard)) equals the sum of
//!   per-slot claim counts on that device, and is never negative.
//! * **Memory accounting** — each device's
//!   [`MemoryManager`](kaas_accel::MemoryManager) passes
//!   [`validate`](kaas_accel::MemoryManager::validate): the running
//!   `bytes_resident` total equals the sum of resident object sizes,
//!   residency never exceeds capacity, LRU recency stamps are unique,
//!   and no refcount underflow was ever observed.
//! * **Dispatch-queue accounting** — the sharded dispatcher's global
//!   queued-job counter equals the sum of per-shard depth counters
//!   (front door and workers move them only in paired, await-free
//!   updates), and no job is still queued at shutdown.
//! * **Ejection accounting** — every request the overloaded dispatcher
//!   sheds or ejects is counted identically in three independent views
//!   (per-shard cells, the global total, the `dispatch.ejected`
//!   counter): no silent shedding.
//! * **Admission control** — the adaptive concurrency limit never
//!   escapes its configured `[min, max]` band, and the permit ledger
//!   conserves (`issued - released == admitted`, and zero at
//!   shutdown).
//! * **Metric names** — every name that appears in the live
//!   [`MetricsRegistry`](crate::MetricsRegistry) matches a pattern
//!   declared in `metrics/INVENTORY` (the same file rule R2 of the
//!   static pass enforces at emission sites).
//! * **Span geometry** — a recorded span whose parent is recorded on
//!   the *same track* lies inside its parent's interval, and same-track
//!   siblings never overlap (the tiling contract the tracing tests
//!   assert end-to-end, upheld continuously).
//! * **Shutdown leaks** — when the server's last reference drops, no
//!   in-flight claim and no device-memory reference survives.
//!
//! Violations are reported as panics naming the invariant, so a failing
//! run points at the broken contract rather than at a downstream
//! symptom.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Weak;

use kaas_simtime::{SimTime, Span, SpanId, SpanSink};

use crate::server::ServerInner;

/// The metric-name inventory, shared verbatim with the static pass.
const INVENTORY: &str = include_str!("metrics/INVENTORY");

/// A recorded span's geometry: `(track, start, end)`.
type SpanGeometry = (String, SimTime, SimTime);
/// Sibling intervals under one `(parent, track)` key.
type SiblingIndex = BTreeMap<(SpanId, String), Vec<(SimTime, SimTime, SpanId)>>;

/// Runtime invariant checker for one server. Holds only a weak
/// reference: a dropped server silently retires its auditor.
pub(crate) struct Auditor {
    inner: Weak<ServerInner>,
    /// Metric names already validated against the INVENTORY.
    seen_metrics: RefCell<BTreeSet<String>>,
    /// How many sink spans have been ingested so far.
    span_cursor: Cell<usize>,
    /// Recorded spans by id: `(track, start, end)`.
    span_index: RefCell<BTreeMap<SpanId, SpanGeometry>>,
    /// Same-track sibling intervals per `(parent, track)`.
    siblings: RefCell<SiblingIndex>,
    /// Spans whose parent has not been recorded yet (open spans hand
    /// out ids before their interval exists).
    pending: RefCell<Vec<Span>>,
}

fn violation(invariant: &str, detail: &str) -> ! {
    panic!("sim-sanitizer invariant violated [{invariant}]: {detail}");
}

impl Auditor {
    pub(crate) fn new(inner: Weak<ServerInner>) -> Self {
        Auditor {
            inner,
            seen_metrics: RefCell::new(BTreeSet::new()),
            span_cursor: Cell::new(0),
            span_index: RefCell::new(BTreeMap::new()),
            siblings: RefCell::new(BTreeMap::new()),
            pending: RefCell::new(Vec::new()),
        }
    }

    /// One full invariant sweep; installed as an executor step hook.
    pub(crate) fn check_step(&self) {
        let Some(inner) = self.inner.upgrade() else {
            return;
        };
        check_claim_balance(&inner);
        check_memory(&inner);
        check_dispatch_queue(&inner);
        check_ejection_accounting(&inner);
        check_admission(&inner);
        self.check_metric_names(&inner);
        if let Some(tracer) = &inner.config.tracer {
            self.check_spans(tracer);
        }
    }

    /// Validates any metric names that appeared since the last sweep.
    fn check_metric_names(&self, inner: &ServerInner) {
        let (counters, gauges, histograms) = inner.metrics_registry.names();
        let mut seen = self.seen_metrics.borrow_mut();
        for name in counters.iter().chain(&gauges).chain(&histograms) {
            if seen.contains(name) {
                continue;
            }
            if !kaas_audit::inventory_matches(INVENTORY, name) {
                violation(
                    "metric-inventory",
                    &format!("live metric `{name}` matches no pattern in metrics/INVENTORY"),
                );
            }
            seen.insert(name.clone());
        }
    }

    /// Ingests spans recorded since the last sweep and checks the
    /// same-track containment/tiling contract.
    fn check_spans(&self, tracer: &SpanSink) {
        let len = tracer.len();
        let cursor = self.span_cursor.get();
        if len < cursor {
            // The sink was cleared; history (by-id intervals) stays
            // valid because ids are never reused.
            self.span_cursor.set(len);
            return;
        }
        if len == cursor {
            return;
        }
        let spans = tracer.spans();
        for span in &spans[cursor..] {
            self.ingest(span);
        }
        self.span_cursor.set(len);
        // Children recorded before their (open) parent: retry now that
        // more parents are known.
        let mut still_pending = Vec::new();
        for span in self.pending.borrow_mut().drain(..) {
            if self
                .span_index
                .borrow()
                .contains_key(&span.parent.expect("only parented spans are pended"))
            {
                self.check_against_parent(&span);
            } else {
                still_pending.push(span);
            }
        }
        *self.pending.borrow_mut() = still_pending;
    }

    fn ingest(&self, span: &Span) {
        self.span_index
            .borrow_mut()
            .insert(span.id, (span.track.clone(), span.start, span.end));
        match span.parent {
            Some(p) if self.span_index.borrow().contains_key(&p) => {
                self.check_against_parent(span);
            }
            Some(_) => self.pending.borrow_mut().push(span.clone()),
            None => {}
        }
    }

    fn check_against_parent(&self, span: &Span) {
        let parent_id = span.parent.expect("checked by caller");
        let index = self.span_index.borrow();
        let (ptrack, pstart, pend) = &index[&parent_id];
        if *ptrack != span.track {
            // Cross-track parenting (client → server → runner) crosses
            // clock domains on purpose: a reply can outlive a timed-out
            // roundtrip. Only same-track nesting promises containment.
            return;
        }
        if span.start < *pstart || span.end > *pend {
            violation(
                "span-containment",
                &format!(
                    "span `{}` [{:?}, {:?}] escapes its same-track parent `{parent_id}` \
                     [{pstart:?}, {pend:?}] on track `{}`",
                    span.name, span.start, span.end, span.track
                ),
            );
        }
        drop(index);
        let key = (parent_id, span.track.clone());
        let mut siblings = self.siblings.borrow_mut();
        let list = siblings.entry(key).or_default();
        for (start, end, id) in list.iter() {
            if span.start < *end && *start < span.end {
                violation(
                    "span-tiling",
                    &format!(
                        "span `{}` [{:?}, {:?}] overlaps same-track sibling `{id}` \
                         [{start:?}, {end:?}] under parent `{parent_id}`",
                        span.name, span.start, span.end
                    ),
                );
            }
        }
        list.push((span.start, span.end, span.id));
    }
}

/// Per-device claim ledger vs per-slot claim counts.
fn check_claim_balance(inner: &ServerInner) {
    for (device, ledger, counted) in inner.pool.claim_balances() {
        if ledger < 0 {
            violation(
                "claim-balance",
                &format!("device {device} claim ledger is negative ({ledger})"),
            );
        }
        if ledger != counted {
            violation(
                "claim-balance",
                &format!(
                    "device {device} claim ledger ({ledger}) != sum of per-slot claims \
                     ({counted})"
                ),
            );
        }
    }
}

/// The sharded dispatcher's two queue views: per-shard depth counters
/// vs the global queued-work counter (both moved only in paired,
/// await-free updates by the front door and the shard workers).
fn check_dispatch_queue(inner: &ServerInner) {
    let depths = inner.dispatch.shard_depths();
    let queued = inner.dispatch.queued();
    let sum: usize = depths.iter().sum();
    if sum != queued {
        violation(
            "dispatch-queue",
            &format!(
                "sum of per-shard dispatch depths ({sum}, {depths:?}) != queued dispatch \
                 jobs ({queued})"
            ),
        );
    }
}

/// Honest shedding: every ejected request is counted three ways —
/// per-shard cells, the global total, and the `dispatch.ejected`
/// metric — and all three views must agree at every step. A shed that
/// bumps one view but not the others is a silent drop.
fn check_ejection_accounting(inner: &ServerInner) {
    let per_shard: u64 = inner.dispatch.shard_ejected().iter().sum();
    let total = inner.dispatch.ejected();
    let counter = inner.metrics_registry.counter("dispatch.ejected");
    if per_shard != total || total != counter {
        violation(
            "ejection-accounting",
            &format!(
                "ejection views diverge: per-shard sum {per_shard}, global total {total}, \
                 `dispatch.ejected` counter {counter}"
            ),
        );
    }
}

/// Admission-control sanity: the adaptive limit stays inside its
/// configured `[min, max]` band, and the permit ledger conserves —
/// permits issued minus permits released equals the in-flight count.
fn check_admission(inner: &ServerInner) {
    use crate::admission::AdmissionPolicy;
    if let Some(AdmissionPolicy::Adaptive(aimd)) = inner.admission.policy() {
        let limit = inner
            .admission
            .current_limit()
            .expect("an adaptive policy always has a limit");
        if limit < aimd.min_limit || limit > aimd.max_limit {
            violation(
                "admission-limit",
                &format!(
                    "adaptive admission limit {limit} escaped its configured band \
                     [{}, {}]",
                    aimd.min_limit, aimd.max_limit
                ),
            );
        }
    }
    let issued = inner.admission.issued();
    let released = inner.admission.released();
    let admitted = inner.admission.admitted() as u64;
    if issued - released != admitted {
        violation(
            "admission-conservation",
            &format!(
                "admission permit ledger diverged: issued {issued} - released {released} \
                 != admitted {admitted}"
            ),
        );
    }
}

/// Every device memory manager's internal accounting.
fn check_memory(inner: &ServerInner) {
    for device in inner.pool.devices() {
        let Some(mgr) = inner.dataplane.manager(device.id()) else {
            continue;
        };
        if let Err(e) = mgr.validate() {
            violation(
                "device-memory",
                &format!("device {} memory accounting broken: {e}", device.id()),
            );
        }
    }
}

/// Shutdown leak detection, run from `ServerInner`'s drop: nothing may
/// still be claimed or referenced when the server's last handle goes.
pub(crate) fn check_shutdown(inner: &ServerInner) {
    let queued = inner.dispatch.queued();
    if queued != 0 {
        violation(
            "shutdown-leak",
            &format!("{queued} dispatch job(s) still queued at server drop"),
        );
    }
    for (device, ledger, counted) in inner.pool.claim_balances() {
        if ledger != 0 || counted != 0 {
            violation(
                "shutdown-leak",
                &format!(
                    "device {device} still has in-flight claims at server drop \
                     (ledger {ledger}, per-slot {counted})"
                ),
            );
        }
    }
    let admitted = inner.admission.admitted();
    if admitted != 0 {
        violation(
            "shutdown-leak",
            &format!("{admitted} admission permit(s) never released at server drop"),
        );
    }
    for device in inner.pool.devices() {
        let Some(mgr) = inner.dataplane.manager(device.id()) else {
            continue;
        };
        if let Err(e) = mgr.validate() {
            violation(
                "shutdown-leak",
                &format!(
                    "device {} memory accounting broken at drop: {e}",
                    device.id()
                ),
            );
        }
        let refs = mgr.refs_in_flight();
        if refs != 0 {
            violation(
                "shutdown-leak",
                &format!(
                    "device {} still holds {refs} in-flight object reference(s) at \
                     server drop",
                    device.id()
                ),
            );
        }
    }
    // Completed flows must release every intermediate: no run still
    // active, no flow-lifetime pin outstanding.
    let active = inner.flows.active();
    if active != 0 {
        violation(
            "shutdown-leak",
            &format!("{active} workflow run(s) still active at server drop"),
        );
    }
    let pins = inner.flows.intermediates_live();
    if pins != 0 {
        violation(
            "shutdown-leak",
            &format!("{pins} flow intermediate pin(s) never released at server drop"),
        );
    }
}

#[cfg(test)]
mod tests {
    use std::rc::Rc;
    use std::time::Duration;

    use kaas_accel::{Device, DeviceId, GpuDevice, GpuProfile};
    use kaas_kernels::MonteCarlo;
    use kaas_net::SharedMemory;
    use kaas_simtime::{sleep, Simulation};

    use crate::config::ServerConfig;
    use crate::pool::InFlightGuard;
    use crate::registry::KernelRegistry;
    use crate::runner::RunnerConfig;
    use crate::server::KaasServer;

    fn server() -> KaasServer {
        let registry = KernelRegistry::new();
        registry.register(MonteCarlo::default()).unwrap();
        let gpu: Device = GpuDevice::new(DeviceId(0), GpuProfile::p100()).into();
        KaasServer::new(
            vec![gpu],
            registry,
            SharedMemory::host(),
            ServerConfig::default(),
        )
    }

    /// A forgotten in-flight guard never releases its claim: the
    /// shutdown sweep must name the leak.
    #[test]
    #[should_panic(expected = "shutdown-leak")]
    fn leaked_claim_is_caught_at_shutdown() {
        let mut sim = Simulation::new();
        sim.block_on(async {
            let server = server();
            let k: Rc<dyn kaas_kernels::Kernel> = Rc::new(MonteCarlo::default());
            let slot = server
                .pool()
                .spawn_runner("mci", &k, RunnerConfig::default())
                .unwrap();
            std::mem::forget(InFlightGuard::claim(&slot));
            // The server drops here with the claim still open.
        });
    }

    /// An unmatched release on a resident object is a refcount
    /// underflow: the next executor step must fail the run.
    #[test]
    #[should_panic(expected = "device-memory")]
    fn refcount_underflow_is_caught_at_next_step() {
        let mut sim = Simulation::new();
        sim.block_on(async {
            let server = server();
            let mgr = Rc::clone(server.dataplane().manager(DeviceId(0)).unwrap());
            mgr.insert(42, 10).unwrap();
            mgr.release(42); // no matching retain
            sleep(Duration::from_millis(1)).await; // let a step hook run
            drop(server);
        });
    }
}
