//! Federated deployments (§1: "workflows ... that can be dynamically
//! composed and deployed on heterogeneous infrastructure" across
//! "increasingly federated and distributed cluster deployments").
//!
//! A [`FederatedClient`] connects to several KaaS sites, discovers which
//! kernels each serves, and routes every invocation to a serving site —
//! transparently to the application, exactly like a single-site client.
//! Sites are addressed through [`SiteHandle`]s, consistent with how
//! registered workflows are addressed through
//! [`WorkflowHandle`](crate::WorkflowHandle)s.
//!
//! Workflows that span sites are split into contiguous same-site
//! **segments**, each registered as a server-side dataflow at its site
//! ([`FederatedClient::register_workflow`] →  [`FederatedFlow`]).
//! Running the flow pays one round trip per segment: within a segment
//! the intermediates chain device-to-device and never leave the site;
//! at a segment boundary only the output's content address returns to
//! the client, which ships the value site-to-site over the federation
//! fabric — the client's wire carries refs, not payloads (replacing the
//! §6 data-shipping loop that hauled every intermediate through the
//! client).

use std::collections::BTreeMap;

use kaas_kernels::Value;
use kaas_net::{LinkProfile, NetError, SharedMemory};

use crate::client::{Invocation, KaasClient};
use crate::protocol::InvokeError;
use crate::server::DISCOVERY_KERNEL;
use crate::workflow::{
    FlowError, StepReport, Workflow, WorkflowHandle, WorkflowReport, WorkflowRun,
};
use crate::KaasNetwork;

/// Where and how to reach one KaaS site.
#[derive(Debug, Clone)]
pub struct SiteSpec {
    /// Listener address of the site's server (doubles as the site's
    /// name in [`FederatedClient::site`]).
    pub addr: String,
    /// Link timing from this client to the site.
    pub link: LinkProfile,
    /// Shared memory for out-of-band transfer (same-host sites only).
    pub shm: Option<SharedMemory>,
    /// Link timing of the federation fabric used to ship intermediates
    /// **into** this site from a peer site at a segment boundary.
    pub fabric: LinkProfile,
}

impl SiteSpec {
    /// A remote site over the paper's 1 Gbps LAN.
    pub fn remote(addr: impl Into<String>) -> Self {
        SiteSpec {
            addr: addr.into(),
            link: LinkProfile::lan_1gbps(),
            shm: None,
            fabric: LinkProfile::lan_1gbps(),
        }
    }

    /// A same-host site with shared-memory transfer.
    pub fn local(addr: impl Into<String>, shm: SharedMemory) -> Self {
        SiteSpec {
            addr: addr.into(),
            link: LinkProfile::loopback(),
            shm: Some(shm),
            fabric: LinkProfile::lan_1gbps(),
        }
    }

    /// Overrides the inter-site fabric link used when a federated flow
    /// ships an intermediate into this site.
    pub fn with_fabric(mut self, fabric: LinkProfile) -> Self {
        self.fabric = fabric;
        self
    }
}

/// An opaque reference to one connected site, handed out by
/// [`FederatedClient::site`] and [`FederatedClient::route`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteHandle {
    index: usize,
    name: String,
}

impl SiteHandle {
    /// The site's name (its listener address).
    pub fn name(&self) -> &str {
        &self.name
    }
}

struct Site {
    spec: SiteSpec,
    client: KaasClient,
    /// A second connection over the federation fabric: segment-boundary
    /// shipments pay this link's timing, not the client link's.
    fabric: KaasClient,
    kernels: Vec<String>,
}

/// A client spanning multiple KaaS sites with kernel-based routing.
pub struct FederatedClient {
    sites: Vec<Site>,
    routes: BTreeMap<String, usize>,
}

impl std::fmt::Debug for FederatedClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FederatedClient")
            .field("sites", &self.sites.len())
            .field("kernels", &self.routes.len())
            .finish()
    }
}

/// One same-site run of contiguous workflow steps, registered as a
/// server-side dataflow at that site.
#[derive(Debug, Clone)]
struct Segment {
    site: usize,
    handle: WorkflowHandle,
}

/// A workflow registered across a federation: one server-side dataflow
/// per same-site segment. Create via
/// [`FederatedClient::register_workflow`], run via
/// [`FederatedClient::run_flow`].
#[derive(Debug, Clone)]
pub struct FederatedFlow {
    name: String,
    segments: Vec<Segment>,
}

impl FederatedFlow {
    /// The workflow's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Same-site segments the workflow was split into — also the
    /// number of client↔server round trips one run costs.
    #[must_use]
    pub fn segments(&self) -> usize {
        self.segments.len()
    }
}

impl FederatedClient {
    /// Connects to every site and discovers its kernel registry.
    ///
    /// Kernels served by several sites route to the earliest-listed one.
    ///
    /// # Errors
    ///
    /// Propagates the first connection failure ([`NetError`]).
    pub async fn connect(
        net: &KaasNetwork,
        specs: Vec<SiteSpec>,
    ) -> Result<FederatedClient, NetError> {
        let mut sites = Vec::with_capacity(specs.len());
        let mut routes = BTreeMap::new();
        for (index, spec) in specs.into_iter().enumerate() {
            let mut client = KaasClient::connect(net, &spec.addr, spec.link).await?;
            if let Some(shm) = &spec.shm {
                client = client.with_shared_memory(shm.clone());
            }
            let fabric = KaasClient::connect(net, &spec.addr, spec.fabric).await?;
            let kernels = discover(&mut client).await;
            for k in &kernels {
                routes.entry(k.clone()).or_insert(index);
            }
            sites.push(Site {
                spec,
                client,
                fabric,
                kernels,
            });
        }
        Ok(FederatedClient { sites, routes })
    }

    /// Number of connected sites.
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    /// Handles to every connected site, in connect order.
    pub fn sites(&self) -> Vec<SiteHandle> {
        self.sites
            .iter()
            .enumerate()
            .map(|(index, s)| SiteHandle {
                index,
                name: s.spec.addr.clone(),
            })
            .collect()
    }

    /// The handle of the site named `name` (its listener address).
    pub fn site(&self, name: &str) -> Option<SiteHandle> {
        self.sites
            .iter()
            .position(|s| s.spec.addr == name)
            .map(|index| SiteHandle {
                index,
                name: name.to_owned(),
            })
    }

    /// Every kernel reachable through this client, sorted.
    pub fn kernels(&self) -> Vec<String> {
        let mut names: Vec<String> = self.routes.keys().cloned().collect();
        names.sort();
        names
    }

    /// The site a kernel routes to.
    pub fn route(&self, kernel: &str) -> Option<SiteHandle> {
        self.routes.get(kernel).map(|&index| SiteHandle {
            index,
            name: self.sites[index].spec.addr.clone(),
        })
    }

    /// Kernels served by one site (as discovered at connect time).
    pub fn site_kernels(&self, site: &SiteHandle) -> &[String] {
        &self.sites[site.index].kernels
    }

    /// Invokes `kernel` on whichever site serves it, using out-of-band
    /// transfer where the site is local and in-band otherwise.
    ///
    /// # Errors
    ///
    /// [`InvokeError::UnknownKernel`] if no site serves the kernel;
    /// otherwise whatever the serving site reports.
    pub async fn invoke(&mut self, kernel: &str, input: Value) -> Result<Invocation, InvokeError> {
        let index = self
            .routes
            .get(kernel)
            .copied()
            .ok_or_else(|| InvokeError::UnknownKernel(kernel.to_owned()))?;
        let site = &mut self.sites[index];
        let call = site.client.call(kernel).arg(input);
        if site.spec.shm.is_some() {
            call.out_of_band().send().await
        } else {
            call.send().await
        }
    }

    /// Registers `workflow` across the federation: splits it into
    /// contiguous same-site segments (by each step's kernel route) and
    /// registers each segment as a server-side dataflow at its site.
    ///
    /// A workflow whose steps all route to one site registers as a
    /// single segment regardless of shape; a workflow that hops sites
    /// must be linear — a DAG cannot be cut into a chain of segments.
    ///
    /// # Errors
    ///
    /// [`InvokeError::UnknownKernel`] if no site serves some step;
    /// [`InvokeError::BadInput`] for a site-hopping non-linear
    /// workflow; otherwise whatever a site's registration reports.
    pub async fn register_workflow(
        &mut self,
        workflow: &Workflow,
    ) -> Result<FederatedFlow, InvokeError> {
        // Route every step first so an unroutable kernel fails before
        // any site holds a half-registered flow.
        let mut sites_per_step = Vec::with_capacity(workflow.len());
        for step in workflow.steps() {
            let index = self
                .routes
                .get(step.kernel())
                .copied()
                .ok_or_else(|| InvokeError::UnknownKernel(step.kernel().to_owned()))?;
            sites_per_step.push(index);
        }
        let one_site = sites_per_step.windows(2).all(|w| w[0] == w[1]);
        if one_site {
            let site = &mut self.sites[sites_per_step[0]];
            let handle = site.client.register_workflow(workflow).await?;
            return Ok(FederatedFlow {
                name: workflow.name().to_owned(),
                segments: vec![Segment {
                    site: sites_per_step[0],
                    handle,
                }],
            });
        }
        if !workflow.is_linear() {
            return Err(InvokeError::BadInput(
                "a site-hopping workflow must be linear (DAGs cannot split into segments)".into(),
            ));
        }
        // Cut the chain at every site change and register each run of
        // steps as its own linear flow.
        let mut segments = Vec::new();
        let mut start = 0;
        let steps = workflow.steps();
        for i in 1..=steps.len() {
            if i < steps.len() && sites_per_step[i] == sites_per_step[start] {
                continue;
            }
            let kernels: Vec<&str> = steps[start..i].iter().map(|s| s.kernel()).collect();
            let segment =
                Workflow::linear(format!("{}[{}]", workflow.name(), segments.len()), kernels)
                    .map_err(|e| InvokeError::BadInput(e.to_string()))?;
            let site = &mut self.sites[sites_per_step[start]];
            let handle = site.client.register_workflow(&segment).await?;
            segments.push(Segment {
                site: sites_per_step[start],
                handle,
            });
            start = i;
        }
        Ok(FederatedFlow {
            name: workflow.name().to_owned(),
            segments,
        })
    }

    /// Runs a registered federated flow: one round trip per segment.
    /// Non-final segments reply with the segment output's content
    /// address only; the value is fetched from the producing site and
    /// shipped over the federation fabric into the next segment's site,
    /// where the next trigger chains off it by ref.
    ///
    /// # Errors
    ///
    /// [`FlowError`] from the failing segment, carrying the step
    /// reports of every step that completed across all segments so far.
    pub async fn run_flow(
        &mut self,
        flow: &FederatedFlow,
        input: Value,
    ) -> Result<WorkflowRun, FlowError> {
        let start = kaas_simtime::now();
        let n = flow.segments.len();
        let mut steps: Vec<StepReport> = Vec::new();
        let mut current = input;
        let mut current_ref = None;
        for (i, segment) in flow.segments.iter().enumerate() {
            let last = i + 1 == n;
            let site = &mut self.sites[segment.site];
            let mut trigger = site.client.flow(&segment.handle);
            trigger = match current_ref.take() {
                Some(r) => trigger.input_ref(r),
                None => trigger.input(std::mem::replace(&mut current, Value::Unit)),
            };
            if last {
                let run = trigger.send().await.map_err(|e| FlowError {
                    error: e.error,
                    partial: merge_steps(&steps, e.partial),
                })?;
                steps.extend(relabel(run.report.steps, steps.len()));
                return Ok(WorkflowRun {
                    output: run.output,
                    report: WorkflowReport {
                        flow: flow.segments[0].handle.id(),
                        name: flow.name.clone(),
                        steps,
                    },
                    latency: kaas_simtime::now() - start,
                    round_trips: n,
                });
            }
            let (r, report) = trigger.send_ref().await.map_err(|e| FlowError {
                error: e.error,
                partial: merge_steps(&steps, e.partial),
            })?;
            steps.extend(relabel(report.steps, steps.len()));
            // Segment boundary: pull the intermediate from the
            // producing site and push it into the next site over the
            // federation fabric, then chain by ref.
            let value = site.client.get(r).await.map_err(|e| FlowError {
                error: e,
                partial: steps.clone(),
            })?;
            let next = &mut self.sites[flow.segments[i + 1].site];
            let shipped = next.fabric.put(value).await.map_err(|e| FlowError {
                error: e,
                partial: steps.clone(),
            })?;
            next.fabric.seal(shipped).await.map_err(|e| FlowError {
                error: e,
                partial: steps.clone(),
            })?;
            current_ref = Some(shipped);
        }
        // A registered flow always has at least one segment.
        Err(FlowError::from(InvokeError::BadInput(
            "federated flow has no segments".into(),
        )))
    }
}

/// Re-numbers a segment's step reports into whole-workflow step order.
fn relabel(reports: Vec<StepReport>, offset: usize) -> Vec<StepReport> {
    reports
        .into_iter()
        .map(|mut r| {
            r.step += offset;
            r
        })
        .collect()
}

/// Joins completed-segment reports with the failing segment's partials.
fn merge_steps(done: &[StepReport], partial: Vec<StepReport>) -> Vec<StepReport> {
    let mut out = done.to_vec();
    let offset = done.len();
    out.extend(relabel(partial, offset));
    out
}

/// Queries a site's kernel list through the reserved discovery endpoint.
async fn discover(client: &mut KaasClient) -> Vec<String> {
    match client.call(DISCOVERY_KERNEL).send().await {
        Ok(inv) => match inv.output.payload() {
            Value::List(items) => items
                .iter()
                .filter_map(|v| match v {
                    Value::Text(name) => Some(name.clone()),
                    _ => None,
                })
                .collect(),
            _ => Vec::new(),
        },
        Err(_) => Vec::new(),
    }
}
