//! Federated deployments (§1: "workflows ... that can be dynamically
//! composed and deployed on heterogeneous infrastructure" across
//! "increasingly federated and distributed cluster deployments").
//!
//! A [`FederatedClient`] connects to several KaaS sites, discovers which
//! kernels each serves, and routes every invocation to a serving site —
//! transparently to the application, exactly like a single-site client.
//! Workflows may hop sites between steps; intermediate data travels
//! through the client (the data-shipping architecture §6 discusses).

use std::collections::BTreeMap;

use kaas_kernels::Value;
use kaas_net::{LinkProfile, NetError, SharedMemory};

use crate::client::{Invocation, KaasClient};
use crate::protocol::InvokeError;
use crate::server::DISCOVERY_KERNEL;
use crate::workflow::{Workflow, WorkflowRun};
use crate::KaasNetwork;

/// Where and how to reach one KaaS site.
#[derive(Debug, Clone)]
pub struct SiteSpec {
    /// Listener address of the site's server.
    pub addr: String,
    /// Link timing from this client to the site.
    pub link: LinkProfile,
    /// Shared memory for out-of-band transfer (same-host sites only).
    pub shm: Option<SharedMemory>,
}

impl SiteSpec {
    /// A remote site over the paper's 1 Gbps LAN.
    pub fn remote(addr: impl Into<String>) -> Self {
        SiteSpec {
            addr: addr.into(),
            link: LinkProfile::lan_1gbps(),
            shm: None,
        }
    }

    /// A same-host site with shared-memory transfer.
    pub fn local(addr: impl Into<String>, shm: SharedMemory) -> Self {
        SiteSpec {
            addr: addr.into(),
            link: LinkProfile::loopback(),
            shm: Some(shm),
        }
    }
}

struct Site {
    spec: SiteSpec,
    client: KaasClient,
    kernels: Vec<String>,
}

/// A client spanning multiple KaaS sites with kernel-based routing.
pub struct FederatedClient {
    sites: Vec<Site>,
    routes: BTreeMap<String, usize>,
}

impl std::fmt::Debug for FederatedClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FederatedClient")
            .field("sites", &self.sites.len())
            .field("kernels", &self.routes.len())
            .finish()
    }
}

impl FederatedClient {
    /// Connects to every site and discovers its kernel registry.
    ///
    /// Kernels served by several sites route to the earliest-listed one.
    ///
    /// # Errors
    ///
    /// Propagates the first connection failure ([`NetError`]).
    pub async fn connect(
        net: &KaasNetwork,
        specs: Vec<SiteSpec>,
    ) -> Result<FederatedClient, NetError> {
        let mut sites = Vec::with_capacity(specs.len());
        let mut routes = BTreeMap::new();
        for (index, spec) in specs.into_iter().enumerate() {
            let mut client = KaasClient::connect(net, &spec.addr, spec.link).await?;
            if let Some(shm) = &spec.shm {
                client = client.with_shared_memory(shm.clone());
            }
            let kernels = discover(&mut client).await;
            for k in &kernels {
                routes.entry(k.clone()).or_insert(index);
            }
            sites.push(Site {
                spec,
                client,
                kernels,
            });
        }
        Ok(FederatedClient { sites, routes })
    }

    /// Number of connected sites.
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    /// Every kernel reachable through this client, sorted.
    pub fn kernels(&self) -> Vec<String> {
        let mut names: Vec<String> = self.routes.keys().cloned().collect();
        names.sort();
        names
    }

    /// The site index a kernel routes to.
    pub fn route(&self, kernel: &str) -> Option<usize> {
        self.routes.get(kernel).copied()
    }

    /// Invokes `kernel` on whichever site serves it, using out-of-band
    /// transfer where the site is local and in-band otherwise.
    ///
    /// # Errors
    ///
    /// [`InvokeError::UnknownKernel`] if no site serves the kernel;
    /// otherwise whatever the serving site reports.
    pub async fn invoke(&mut self, kernel: &str, input: Value) -> Result<Invocation, InvokeError> {
        let index = self
            .route(kernel)
            .ok_or_else(|| InvokeError::UnknownKernel(kernel.to_owned()))?;
        let site = &mut self.sites[index];
        let call = site.client.call(kernel).arg(input);
        if site.spec.shm.is_some() {
            call.out_of_band().send().await
        } else {
            call.send().await
        }
    }

    /// Executes a workflow whose steps may live on different sites; each
    /// step's output ships through this client to the next step's site.
    ///
    /// # Errors
    ///
    /// Fails fast with the first failing step's [`InvokeError`].
    pub async fn run_workflow(
        &mut self,
        workflow: &Workflow,
        input: Value,
    ) -> Result<WorkflowRun, InvokeError> {
        let start = kaas_simtime::now();
        let mut current = input;
        let mut reports = Vec::with_capacity(workflow.len());
        for step in workflow.steps() {
            let inv = self.invoke(step, current).await?;
            current = inv.output;
            reports.push(inv.report);
        }
        Ok(WorkflowRun {
            output: current,
            reports,
            latency: kaas_simtime::now() - start,
        })
    }

    /// Kernels served by one site (as discovered at connect time).
    pub fn site_kernels(&self, index: usize) -> &[String] {
        &self.sites[index].kernels
    }
}

/// Queries a site's kernel list through the reserved discovery endpoint.
async fn discover(client: &mut KaasClient) -> Vec<String> {
    match client.call(DISCOVERY_KERNEL).send().await {
        Ok(inv) => match inv.output.payload() {
            Value::List(items) => items
                .iter()
                .filter_map(|v| match v {
                    Value::Text(name) => Some(name.clone()),
                    _ => None,
                })
                .collect(),
            _ => Vec::new(),
        },
        Err(_) => Vec::new(),
    }
}
