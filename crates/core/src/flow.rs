//! The server-side dataflow engine: registered workflow DAGs executed
//! device-to-device.
//!
//! Clients register a [`Workflow`] once through the reserved
//! `_kaas/flow/register` control kernel and trigger it with a single
//! `_kaas/flow/run` request. The server walks the DAG itself: as each
//! step completes, its output is sealed into the object store, admitted
//! to the device that produced it, and handed to its consumers as a
//! device-resident [`ObjectRef`] — intermediates never cross the wire,
//! and a consumer placed on the producer's device serves the input as a
//! cache hit with **zero `copy_in`**. Ready steps are enqueued into the
//! ordinary sharded dispatcher as their dependencies resolve, so flows
//! and standalone invocations share admission, placement, retry, and
//! metrics.
//!
//! Every intermediate carries a flow-lifetime pin (it cannot be evicted
//! or garbage-collected mid-flow); on completion — success or abort —
//! the executor releases every pin and removes the intermediates it
//! created, keeping only the final output (the client may still
//! [`get`](crate::KaasClient::get) it or feed it to another flow). The
//! sim-sanitizer's shutdown sweep verifies no flow is active and no
//! intermediate pin survives when the server drops.
//!
//! This closes the paper's §6 open problem: the client-driven loop paid
//! one round trip per step and shipped every intermediate through the
//! client; a registered flow pays one round trip total.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;
use std::time::Duration;

use kaas_kernels::Value;
use kaas_simtime::channel::{self, Sender};
use kaas_simtime::{now, sleep, spawn, SimTime, SpanId};

use crate::dataplane::ObjectRef;
use crate::metrics::InvocationReport;
use crate::protocol::{DataRef, InvokeError, Request, Response};
use crate::server::KaasServer;
use crate::workflow::{StepReport, Workflow, WorkflowReport};

/// Prefix of the reserved flow control kernels.
pub const FLOW_KERNEL_PREFIX: &str = "_kaas/flow/";
/// Control kernel registering a workflow DAG, answering with its id.
pub const FLOW_REGISTER_KERNEL: &str = "_kaas/flow/register";
/// Control kernel triggering one run of a registered workflow.
pub const FLOW_RUN_KERNEL: &str = "_kaas/flow/run";

/// Trigger flag: reply with the final output's [`ObjectRef`] instead of
/// the materialized value (federated segment handoff).
pub(crate) const FLOW_REPLY_REF: u64 = 1;

const FLOW_RUN_TAG: &str = "kaas.flow.run";

/// Encodes a flow trigger for the request payload channel.
pub(crate) fn encode_trigger(id: u64, flags: u64, input: Value) -> Value {
    Value::List(vec![
        Value::Text(FLOW_RUN_TAG.to_owned()),
        Value::U64(id),
        Value::U64(flags),
        input,
    ])
}

/// Decodes a flow trigger: `(flow id, flags, trigger input)`.
pub(crate) fn decode_trigger(v: &Value) -> Option<(u64, u64, Value)> {
    match v.payload() {
        Value::List(items) => match items.as_slice() {
            [Value::Text(tag), Value::U64(id), Value::U64(flags), input] if tag == FLOW_RUN_TAG => {
                Some((*id, *flags, input.clone()))
            }
            _ => None,
        },
        _ => None,
    }
}

/// Per-server flow registry and run accounting.
pub(crate) struct FlowState {
    /// Registered DAGs by server-assigned id.
    flows: RefCell<BTreeMap<u64, Rc<Workflow>>>,
    /// Next registration id (ids start at 1 so 0 is never valid).
    next_id: Cell<u64>,
    /// Next run number (trace-track and request-id namespace).
    next_run: Cell<u64>,
    /// Flow runs currently executing.
    active: Cell<usize>,
    /// Flow-lifetime pins currently outstanding across all runs; the
    /// sanitizer requires 0 at server drop (completed flows release
    /// every intermediate ref).
    intermediates: Cell<usize>,
}

impl std::fmt::Debug for FlowState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlowState")
            .field("registered", &self.flows.borrow().len())
            .field("active", &self.active.get())
            .field("intermediates", &self.intermediates.get())
            .finish()
    }
}

impl FlowState {
    pub(crate) fn new() -> Self {
        FlowState {
            flows: RefCell::new(BTreeMap::new()),
            next_id: Cell::new(1),
            next_run: Cell::new(1),
            active: Cell::new(0),
            intermediates: Cell::new(0),
        }
    }

    fn register(&self, wf: Workflow) -> u64 {
        let id = self.next_id.get();
        self.next_id.set(id + 1);
        self.flows.borrow_mut().insert(id, Rc::new(wf));
        id
    }

    fn get(&self, id: u64) -> Option<Rc<Workflow>> {
        self.flows.borrow().get(&id).cloned()
    }

    /// Flow runs currently executing (sanitizer: 0 at server drop).
    #[cfg(feature = "sim-sanitizer")]
    pub(crate) fn active(&self) -> usize {
        self.active.get()
    }

    /// Outstanding flow-lifetime intermediate pins (sanitizer: 0 at
    /// server drop).
    #[cfg(feature = "sim-sanitizer")]
    pub(crate) fn intermediates_live(&self) -> usize {
        self.intermediates.get()
    }
}

/// A step's staged input, rebuilt into a [`DataRef`] per attempt.
enum StepInput {
    /// A device-resident content address (zero-copy chaining).
    Obj(ObjectRef),
    /// Inline bytes (the consumer pays deserialization).
    Val(Value),
}

/// What one step task reports back to the executor loop.
type StepDone = (usize, u32, Result<(Value, InvocationReport), InvokeError>);

impl KaasServer {
    /// Serves one `_kaas/flow/*` control request (register or run),
    /// shaping the response and recording error metrics exactly like
    /// [`handle`](KaasServer::handle) does for ordinary kernels.
    pub(crate) async fn flow_frame(&self, req: Request) -> Response {
        let id = req.id;
        match self.flow_inner(req).await {
            Ok((data, report, flow)) => Response {
                id,
                result: Ok(data),
                report: Some(report),
                flow,
            },
            Err((e, flow)) => {
                let m = &self.inner().metrics_registry;
                m.inc("errors");
                m.inc(&format!("errors.{}", e.kind()));
                Response {
                    id,
                    result: Err(e),
                    report: None,
                    flow,
                }
            }
        }
    }

    async fn flow_inner(
        &self,
        req: Request,
    ) -> Result<
        (DataRef, InvocationReport, Option<WorkflowReport>),
        (InvokeError, Option<WorkflowReport>),
    > {
        let inner = self.inner();
        let oob = matches!(req.data, DataRef::OutOfBand(_)) || req.reply_out_of_band;
        let input = match req.data {
            DataRef::InBand(v) => {
                sleep(inner.config.serialization.time(v.wire_bytes())).await;
                v
            }
            DataRef::OutOfBand(h) => inner
                .shm
                .take(h)
                .await
                .ok_or((InvokeError::BadHandle, None))?,
            DataRef::Object(r) => inner
                .dataplane
                .resolve(&r)
                .ok_or((InvokeError::BadHandle, None))?,
        };
        let m = &inner.metrics_registry;
        let op = req.kernel.strip_prefix(FLOW_KERNEL_PREFIX).unwrap_or("");
        match op {
            "register" => {
                let wf = Workflow::from_value(&input).ok_or((
                    InvokeError::BadInput("expected a workflow definition".into()),
                    None,
                ))?;
                // Fail registration, not a later trigger, when a step
                // names a kernel this site does not serve.
                for step in wf.steps() {
                    if inner.registry.lookup(step.kernel()).is_none() {
                        return Err((InvokeError::UnknownKernel(step.kernel().to_owned()), None));
                    }
                }
                let flow_id = inner.flows.register(wf);
                m.inc("workflow.registered");
                let output = Value::U64(flow_id);
                let data = self.shape_flow_reply(output, oob).await;
                Ok((data, self.control_report(FLOW_REGISTER_KERNEL), None))
            }
            "run" => {
                let (flow_id, flags, trigger) = decode_trigger(&input).ok_or((
                    InvokeError::BadInput("expected a flow trigger".into()),
                    None,
                ))?;
                let wf = inner
                    .flows
                    .get(flow_id)
                    .ok_or((InvokeError::UnknownFlow(flow_id.to_string()), None))?;
                let t0 = now();
                match self
                    .run_flow(flow_id, &wf, trigger, req.span, req.tenant, req.deadline)
                    .await
                {
                    Ok((final_ref, report)) => {
                        m.inc("workflow.runs");
                        m.add("workflow.steps", report.steps.len() as u64);
                        m.add("workflow.chained_hits", report.chained_hits() as u64);
                        m.observe("workflow.latency", (now() - t0).as_secs_f64());
                        let data = if flags & FLOW_REPLY_REF != 0 {
                            // Segment handoff: only the 24-byte address
                            // travels; the value stays server-side.
                            DataRef::Object(final_ref)
                        } else {
                            let output = inner
                                .dataplane
                                .resolve(&final_ref)
                                .ok_or((InvokeError::BadHandle, Some(report.clone())))?;
                            self.shape_flow_reply(output, oob).await
                        };
                        Ok((data, self.control_report(FLOW_RUN_KERNEL), Some(report)))
                    }
                    Err((e, report)) => {
                        m.inc("workflow.failures");
                        Err((e, Some(report)))
                    }
                }
            }
            _ => Err((InvokeError::UnknownKernel(req.kernel.clone()), None)),
        }
    }

    /// Reply shaping for flow control responses: the same transport
    /// costs as any reply (serialize in-band, memcpy through shm).
    async fn shape_flow_reply(&self, output: Value, oob: bool) -> DataRef {
        let inner = self.inner();
        if oob {
            let bytes = output.wire_bytes();
            DataRef::OutOfBand(inner.shm.put(output, bytes).await)
        } else {
            sleep(inner.config.serialization.time(output.wire_bytes())).await;
            DataRef::InBand(output)
        }
    }

    /// Executes one run of a registered workflow: walks the DAG,
    /// enqueuing ready steps into the dispatcher as dependencies
    /// resolve, chaining intermediates device-resident. Returns the
    /// sink output's ref plus the per-step report; on failure the
    /// report carries the steps that did run (partial results).
    async fn run_flow(
        &self,
        flow_id: u64,
        wf: &Rc<Workflow>,
        input: Value,
        parent: Option<SpanId>,
        tenant: Option<String>,
        deadline: Option<SimTime>,
    ) -> Result<(ObjectRef, WorkflowReport), (InvokeError, WorkflowReport)> {
        let inner = self.inner();
        let flows = &inner.flows;
        let dp = &inner.dataplane;
        let m = &inner.metrics_registry;
        let run_no = flows.next_run.get();
        flows.next_run.set(run_no + 1);
        flows.active.set(flows.active.get() + 1);
        m.set_gauge("workflow.active", flows.active.get() as f64);
        let tracer = inner.config.tracer.clone();
        let track = format!("flow{run_no}");
        let root = tracer.as_ref().map(|t| {
            let mut s = t.open(&track, "workflow", parent);
            s.push_arg("flow", flow_id.to_string());
            s.push_arg("name", wf.name());
            s
        });
        let root_id = root.as_ref().map(|s| s.id());
        // Linear chains run strictly one step at a time, so their step
        // spans tile on the flow's own track; concurrent DAG branches
        // get a sub-track each (cross-track parenting is exempt from
        // the tiling contract, same as client → server).
        let linear = wf.is_linear();

        // Every object the flow pinned: `(hash, created)` — created
        // entries the flow introduced are garbage-collected on
        // completion (minus the final output).
        let mut tracked: Vec<(u64, bool)> = Vec::new();

        // Stage the trigger input as a sealed store object so source
        // steps consume it exactly like any chained intermediate. A
        // trigger that is already a content address (the client `put`
        // the input earlier, or a previous segment produced it) is used
        // directly after a resolve check.
        let staged = match ObjectRef::from_value(&input) {
            Some(r) => {
                if dp.resolve(&r).is_none() {
                    flows.active.set(flows.active.get() - 1);
                    m.set_gauge("workflow.active", flows.active.get() as f64);
                    if let Some(root) = root {
                        root.finish();
                    }
                    return Err((
                        InvokeError::BadHandle,
                        WorkflowReport {
                            flow: flow_id,
                            name: wf.name().to_owned(),
                            steps: Vec::new(),
                        },
                    ));
                }
                dp.seal(r.hash);
                (r, false)
            }
            None => {
                let (r, created) = dp.store().put_tracked(input);
                dp.seal(r.hash);
                (r, created)
            }
        };
        let input_ref = staged.0;
        dp.flow_pin(input_ref.hash);
        tracked.push((staged.0.hash, staged.1));
        flows.intermediates.set(flows.intermediates.get() + 1);
        m.set_gauge(
            "workflow.intermediates_live",
            flows.intermediates.get() as f64,
        );

        let steps = wf.steps();
        let n = steps.len();
        let budget = wf.step_attempts();
        let mut pending: Vec<usize> = steps.iter().map(|s| s.inputs().len()).collect();
        let mut spawned = vec![false; n];
        let mut chained_possible = vec![false; n];
        let mut refs: Vec<Option<ObjectRef>> = vec![None; n];
        let mut step_reports: Vec<Option<StepReport>> = vec![None; n];
        let mut failure: Option<InvokeError> = None;
        let mut in_flight = 0usize;
        let (done_tx, mut done_rx) = channel::unbounded::<StepDone>();

        // Launches every not-yet-spawned step whose dependencies have
        // all resolved. Declared as a macro-free inline loop so the
        // borrow of `tracked` (fan-in staging) stays local.
        let launch_ready = |pending: &Vec<usize>,
                            spawned: &mut Vec<bool>,
                            chained_possible: &mut Vec<bool>,
                            refs: &Vec<Option<ObjectRef>>,
                            tracked: &mut Vec<(u64, bool)>,
                            in_flight: &mut usize,
                            failure: &mut Option<InvokeError>,
                            step_reports: &mut Vec<Option<StepReport>>| {
            for i in 0..n {
                if spawned[i] || pending[i] > 0 || failure.is_some() {
                    continue;
                }
                spawned[i] = true;
                let edges = steps[i].inputs();
                let staged: Result<StepInput, InvokeError> = if edges.is_empty() {
                    Ok(StepInput::Obj(input_ref))
                } else if edges.len() == 1 {
                    let dep = refs[edges[0].from.index()].expect("dependency resolved");
                    match edges[0].transfer {
                        crate::workflow::EdgeTransfer::Resident => Ok(StepInput::Obj(dep)),
                        crate::workflow::EdgeTransfer::Inline => dp
                            .resolve(&dep)
                            .map(StepInput::Val)
                            .ok_or(InvokeError::BadHandle),
                    }
                } else {
                    // Fan-in: the kernel receives a list of its inputs
                    // in edge order. All-inline joins travel in-band;
                    // otherwise the combined object is staged in the
                    // store and chained by ref like any intermediate.
                    let vals: Result<Vec<Value>, InvokeError> = edges
                        .iter()
                        .map(|e| {
                            let dep = refs[e.from.index()].expect("dependency resolved");
                            dp.resolve(&dep).ok_or(InvokeError::BadHandle)
                        })
                        .collect();
                    match vals {
                        Err(e) => Err(e),
                        Ok(vals) => {
                            let combined = Value::List(vals);
                            if edges
                                .iter()
                                .all(|e| e.transfer == crate::workflow::EdgeTransfer::Inline)
                            {
                                Ok(StepInput::Val(combined))
                            } else {
                                let (r, created) = dp.store().put_tracked(combined);
                                dp.seal(r.hash);
                                dp.flow_pin(r.hash);
                                tracked.push((r.hash, created));
                                flows.intermediates.set(flows.intermediates.get() + 1);
                                m.set_gauge(
                                    "workflow.intermediates_live",
                                    flows.intermediates.get() as f64,
                                );
                                Ok(StepInput::Obj(r))
                            }
                        }
                    }
                };
                match staged {
                    Ok(data) => {
                        chained_possible[i] =
                            !edges.is_empty() && matches!(data, StepInput::Obj(_));
                        let step_track = if linear {
                            track.clone()
                        } else {
                            format!("{track}.s{i}")
                        };
                        self.spawn_step(
                            i,
                            steps[i].kernel().to_owned(),
                            data,
                            budget,
                            tenant.clone(),
                            deadline,
                            run_no,
                            step_track,
                            root_id,
                            done_tx.clone(),
                        );
                        *in_flight += 1;
                    }
                    Err(e) => {
                        step_reports[i] = Some(StepReport {
                            step: i,
                            kernel: steps[i].kernel().to_owned(),
                            attempts: 0,
                            chained: false,
                            error: Some(e.clone()),
                            report: None,
                        });
                        *failure = Some(e);
                    }
                }
            }
        };

        launch_ready(
            &pending,
            &mut spawned,
            &mut chained_possible,
            &refs,
            &mut tracked,
            &mut in_flight,
            &mut failure,
            &mut step_reports,
        );

        // Drain until every launched step reported back. On failure we
        // stop launching but still drain the in-flight steps, so no
        // claim, permit, or pin outlives the run.
        while in_flight > 0 {
            let Some((i, attempts, outcome)) = done_rx.recv().await else {
                break;
            };
            in_flight -= 1;
            match outcome {
                Ok((output, report)) => {
                    let chained = chained_possible[i] && report.copy_in == Duration::ZERO;
                    let (r, created) = dp.store().put_tracked(output);
                    dp.seal(r.hash);
                    dp.flow_pin(r.hash);
                    tracked.push((r.hash, created));
                    flows.intermediates.set(flows.intermediates.get() + 1);
                    m.set_gauge(
                        "workflow.intermediates_live",
                        flows.intermediates.get() as f64,
                    );
                    // The output was born in the producing device's
                    // memory: record the residency (no upload happens —
                    // this is bookkeeping, not a copy). A full device
                    // simply skips the record; consumers re-upload.
                    if !dp.is_resident(report.device, r.hash) {
                        if let Ok(evicted) = dp.admit(report.device, &r) {
                            m.add("dataplane.evictions", evicted.len() as u64);
                        }
                    }
                    refs[i] = Some(r);
                    step_reports[i] = Some(StepReport {
                        step: i,
                        kernel: steps[i].kernel().to_owned(),
                        attempts,
                        chained,
                        error: None,
                        report: Some(report),
                    });
                    for (j, step) in steps.iter().enumerate() {
                        for edge in step.inputs() {
                            if edge.from.index() == i {
                                pending[j] -= 1;
                            }
                        }
                        let _ = step;
                        let _ = j;
                    }
                    launch_ready(
                        &pending,
                        &mut spawned,
                        &mut chained_possible,
                        &refs,
                        &mut tracked,
                        &mut in_flight,
                        &mut failure,
                        &mut step_reports,
                    );
                }
                Err(e) => {
                    step_reports[i] = Some(StepReport {
                        step: i,
                        kernel: steps[i].kernel().to_owned(),
                        attempts,
                        chained: false,
                        error: Some(e.clone()),
                        report: None,
                    });
                    if failure.is_none() {
                        failure = Some(e);
                    }
                }
            }
        }
        drop(done_tx);

        let sink = wf.sink();
        let result = match &failure {
            None => Ok(refs[sink].expect("sink completed on the success path")),
            Some(e) => Err(e.clone()),
        };
        let final_hash = result.as_ref().ok().map(|r| r.hash);

        // GC: release every flow pin; drop the intermediates this run
        // created (dedup'd content and the final output stay — the
        // former is shared, the latter is the client's result).
        for (hash, created) in tracked.drain(..) {
            let left = dp.flow_unpin(hash);
            flows.intermediates.set(flows.intermediates.get() - 1);
            if created && left == 0 && Some(hash) != final_hash {
                dp.remove(hash);
            }
        }
        m.set_gauge(
            "workflow.intermediates_live",
            flows.intermediates.get() as f64,
        );
        flows.active.set(flows.active.get() - 1);
        m.set_gauge("workflow.active", flows.active.get() as f64);
        if let Some(root) = root {
            root.finish();
        }

        let report = WorkflowReport {
            flow: flow_id,
            name: wf.name().to_owned(),
            steps: step_reports.into_iter().flatten().collect(),
        };
        match result {
            Ok(r) => Ok((r, report)),
            Err(e) => Err((e, report)),
        }
    }

    /// Spawns one step as a simtime task: builds the request, walks the
    /// ordinary dispatch path (admission → shards → placement →
    /// execute) with `reply_to_store` set, retries transient failures
    /// up to the flow's per-step budget, and reports back on `done`.
    #[allow(clippy::too_many_arguments)]
    fn spawn_step(
        &self,
        idx: usize,
        kernel: String,
        input: StepInput,
        budget: u32,
        tenant: Option<String>,
        deadline: Option<SimTime>,
        run_no: u64,
        step_track: String,
        root_span: Option<SpanId>,
        done: Sender<StepDone>,
    ) {
        let server = self.clone();
        let tracer = self.inner().config.tracer.clone();
        spawn(async move {
            let span = tracer.as_ref().map(|t| {
                let mut s = t.open(&step_track, "step", root_span);
                s.push_arg("kernel", &kernel);
                s.push_arg("step", idx.to_string());
                s
            });
            let span_id = span.as_ref().map(|s| s.id());
            // Each step launch is one fresh request accruing retry
            // tokens; the retries below spend them.
            if let Some(b) = &server.inner().retry_budget {
                b.note_fresh();
            }
            let mut attempts = 0u32;
            let outcome = loop {
                attempts += 1;
                let data = match &input {
                    StepInput::Obj(r) => DataRef::Object(*r),
                    StepInput::Val(v) => DataRef::InBand(v.clone()),
                };
                let req = Request {
                    // Internal correlation id: the flow-step namespace
                    // (high bit) never collides with client ids.
                    id: 0x8000_0000_0000_0000 | (run_no << 16) | idx as u64,
                    kernel: kernel.clone(),
                    data,
                    tenant: tenant.clone(),
                    deadline,
                    span: span_id,
                    reply_out_of_band: false,
                    reply_to_store: true,
                };
                match server.handle_inner(req).await {
                    Ok((DataRef::InBand(v), report)) => break Ok((v, report)),
                    // `reply_to_store` replies are always in-band.
                    Ok(_) => break Err(InvokeError::BadHandle),
                    Err(e) => {
                        let transient = matches!(
                            e,
                            InvokeError::RunnerFailed(_)
                                | InvokeError::Overloaded { .. }
                                | InvokeError::CircuitOpen(_)
                        );
                        if transient && attempts < budget {
                            // Step retries are server-generated load:
                            // under overload they amplify the very
                            // congestion that failed them. The shared
                            // retry budget caps that amplification.
                            if let Some(b) = &server.inner().retry_budget {
                                if !b.try_spend() {
                                    server
                                        .inner()
                                        .metrics_registry
                                        .inc("retries.budget_exhausted");
                                    break Err(e);
                                }
                            }
                            // Deterministic linear backoff between
                            // flow-level attempts — raised to the
                            // server's own drain estimate when the
                            // failure carried one.
                            let mut wait = Duration::from_millis(attempts as u64);
                            if let InvokeError::Overloaded {
                                retry_after: Some(hint),
                            } = &e
                            {
                                wait = wait.max(*hint);
                            }
                            sleep(wait).await;
                            continue;
                        }
                        break Err(e);
                    }
                }
            };
            if let Some(s) = span {
                s.finish();
            }
            let _ = done.send((idx, attempts, outcome)).await;
        });
    }
}
