//! [`KaasClient`]: the thin client API (§4.1). A KaaS client carries no
//! accelerator libraries — it serializes inputs (in-band) or drops them
//! into shared memory (out-of-band) and speaks the request/response
//! protocol over the network.

use std::time::Duration;

use kaas_kernels::Value;
use kaas_net::{Connection, LinkProfile, NetError, Network, SerializationProfile, SharedMemory};
use kaas_simtime::{now, sleep};

use crate::metrics::InvocationReport;
use crate::protocol::{DataRef, InvokeError, Request, Response};

/// Result of a successful invocation, as observed by the client.
#[derive(Debug)]
pub struct Invocation {
    /// Kernel output.
    pub output: Value,
    /// Server-side timing breakdown.
    pub report: InvocationReport,
    /// Client-observed latency (request serialization to response
    /// deserialization).
    pub latency: Duration,
}

/// A connected KaaS client.
pub struct KaasClient {
    conn: Connection<Request, Response>,
    serialization: SerializationProfile,
    shm: Option<SharedMemory>,
    tenant: Option<String>,
    next_id: u64,
}

impl std::fmt::Debug for KaasClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KaasClient")
            .field("next_id", &self.next_id)
            .field("out_of_band", &self.shm.is_some())
            .finish()
    }
}

impl KaasClient {
    /// Connects to a KaaS server over a link with `profile` timing.
    ///
    /// # Errors
    ///
    /// Propagates [`NetError`] when nothing listens at `addr`.
    pub async fn connect(
        net: &Network<Request, Response>,
        addr: &str,
        profile: LinkProfile,
    ) -> Result<KaasClient, NetError> {
        let conn = net.connect(addr, profile).await?;
        Ok(KaasClient {
            conn,
            serialization: SerializationProfile::python_pickle(),
            shm: None,
            tenant: None,
            next_id: 0,
        })
    }

    /// Uses `shm` for out-of-band transfer (same-host deployments only).
    pub fn with_shared_memory(mut self, shm: SharedMemory) -> Self {
        self.shm = Some(shm);
        self
    }

    /// Overrides the serializer model.
    pub fn with_serialization(mut self, serialization: SerializationProfile) -> Self {
        self.serialization = serialization;
        self
    }

    /// Tags every request with a tenant identity (enables per-tenant
    /// fairness quotas on the server).
    pub fn with_tenant(mut self, tenant: impl Into<String>) -> Self {
        self.tenant = Some(tenant.into());
        self
    }

    /// Invokes `kernel` with `input` sent **in-band** (serialized onto
    /// the connection — "faster for small data", §4.1).
    ///
    /// # Errors
    ///
    /// Any [`InvokeError`] the server reports, or
    /// [`InvokeError::Disconnected`].
    pub async fn invoke(&mut self, kernel: &str, input: Value) -> Result<Invocation, InvokeError> {
        let start = now();
        sleep(self.serialization.time(input.wire_bytes())).await;
        let data = DataRef::InBand(input);
        let resp = self.roundtrip(kernel, data).await?;
        let output = match resp.result? {
            DataRef::InBand(v) => {
                sleep(self.serialization.time(v.wire_bytes())).await;
                v
            }
            DataRef::OutOfBand(h) => self
                .shm
                .as_ref()
                .ok_or(InvokeError::BadHandle)?
                .take(h)
                .await
                .ok_or(InvokeError::BadHandle)?,
        };
        Ok(Invocation {
            output,
            report: resp.report.ok_or(InvokeError::Disconnected)?,
            latency: now() - start,
        })
    }

    /// Invokes `kernel` with `input` passed **out-of-band** through
    /// shared memory (only a small handle crosses the connection —
    /// "transferring larger data without copying over the network",
    /// §4.1).
    ///
    /// # Errors
    ///
    /// [`InvokeError::BadHandle`] if no shared-memory region was attached
    /// via [`KaasClient::with_shared_memory`]; otherwise as
    /// [`KaasClient::invoke`].
    pub async fn invoke_oob(
        &mut self,
        kernel: &str,
        input: Value,
    ) -> Result<Invocation, InvokeError> {
        let start = now();
        let shm = self.shm.as_ref().ok_or(InvokeError::BadHandle)?.clone();
        let bytes = input.wire_bytes();
        let handle = shm.put(input, bytes).await;
        let resp = self.roundtrip(kernel, DataRef::OutOfBand(handle)).await?;
        let output = match resp.result? {
            DataRef::OutOfBand(h) => shm.take(h).await.ok_or(InvokeError::BadHandle)?,
            DataRef::InBand(v) => {
                sleep(self.serialization.time(v.wire_bytes())).await;
                v
            }
        };
        Ok(Invocation {
            output,
            report: resp.report.ok_or(InvokeError::Disconnected)?,
            latency: now() - start,
        })
    }

    async fn roundtrip(&mut self, kernel: &str, data: DataRef) -> Result<Response, InvokeError> {
        let id = self.next_id;
        self.next_id += 1;
        let req = Request {
            id,
            kernel: kernel.to_owned(),
            data,
            tenant: self.tenant.clone(),
        };
        let bytes = req.wire_bytes();
        self.conn
            .send(req, bytes)
            .await
            .map_err(|_| InvokeError::Disconnected)?;
        loop {
            let frame = self.conn.recv().await.ok_or(InvokeError::Disconnected)?;
            if frame.body.id == id {
                return Ok(frame.body);
            }
            // A response to an older (abandoned) request: drop it.
        }
    }
}
