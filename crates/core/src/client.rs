//! [`KaasClient`]: the thin client API (§4.1). A KaaS client carries no
//! accelerator libraries — it serializes inputs (in-band) or drops them
//! into shared memory (out-of-band) and speaks the request/response
//! protocol over the network.
//!
//! Invocations are built fluently: [`KaasClient::call`] returns an
//! [`InvokeBuilder`] that collects the input, per-call tenant/deadline
//! overrides, transfer mode, and tracing choice before
//! [`send`](InvokeBuilder::send) runs the round trip:
//!
//! ```no_run
//! # async fn demo(client: &mut kaas_core::KaasClient) {
//! use kaas_kernels::Value;
//! use std::time::Duration;
//!
//! let inv = client
//!     .call("matmul")
//!     .arg(Value::U64(512))
//!     .tenant("t0")
//!     .deadline(Duration::from_millis(50))
//!     .send()
//!     .await
//!     .unwrap();
//! # let _ = inv;
//! # }
//! ```

use std::rc::Rc;
use std::time::Duration;

use kaas_guest::GuestProgram;
use kaas_kernels::Value;
use kaas_net::{
    Connection, LinkFault, LinkProfile, NetError, Network, SerializationProfile, SharedMemory,
};
use kaas_simtime::{now, sleep, timeout, SpanId, SpanSink};

use crate::dataplane::{
    ObjectRef, DATA_GET_KERNEL, DATA_PIN_KERNEL, DATA_PUT_KERNEL, DATA_SEAL_KERNEL,
};
use crate::flow::{encode_trigger, FLOW_REGISTER_KERNEL, FLOW_REPLY_REF, FLOW_RUN_KERNEL};
use crate::guest::{CODE_LIST_KERNEL, CODE_REGISTER_KERNEL, CODE_REMOVE_KERNEL};
use crate::metrics::registry::MetricsRegistry;
use crate::metrics::InvocationReport;
use crate::protocol::{DataRef, InvokeError, Request, RequestFrame, Response, ResponseFrame};
use crate::resilience::{NoBackoff, RetryBudget, RetryPolicy};
use crate::workflow::{FlowError, Workflow, WorkflowHandle, WorkflowReport, WorkflowRun};

/// Result of a successful invocation, as observed by the client.
#[derive(Debug)]
pub struct Invocation {
    /// Kernel output.
    pub output: Value,
    /// Server-side timing breakdown.
    pub report: InvocationReport,
    /// Client-observed latency (request serialization to response
    /// deserialization).
    pub latency: Duration,
}

/// Client-side retry behaviour for [`InvokeBuilder::send`].
///
/// Without a config the client is fire-once: every error surfaces to
/// the caller immediately. With one, transient overload-shaped errors
/// ([`InvokeError::Overloaded`], [`InvokeError::TimedOut`],
/// [`InvokeError::DeadlineExceeded`]) are retried up to `max_attempts`
/// total attempts. Each retry waits the [`RetryPolicy`] backoff or the
/// server's `retry_after` hint, **whichever is longer** — cooperative
/// backpressure: an overloaded server names its price and compliant
/// clients pay it.
///
/// Attach a shared [`RetryBudget`] to cap the retry-to-fresh ratio
/// across every call (and every client holding the same [`Rc`]): when
/// the bucket is dry the retry is abandoned instead, counted under the
/// client's `retries.budget_exhausted` metric. This is the client-side
/// half of the metastability defence — without it, synchronized retries
/// can hold effective load above capacity long after the trigger
/// clears.
#[derive(Debug, Clone)]
pub struct ClientRetryConfig {
    max_attempts: u32,
    backoff: Box<dyn RetryPolicy>,
    budget: Option<Rc<RetryBudget>>,
}

impl ClientRetryConfig {
    /// Creates a policy with `max_attempts` total attempts (clamped to
    /// at least 1), no backoff beyond server hints, and no budget.
    pub fn new(max_attempts: u32) -> Self {
        ClientRetryConfig {
            max_attempts: max_attempts.max(1),
            backoff: Box::new(NoBackoff),
            budget: None,
        }
    }

    /// Sets the wait policy between attempts (the server's `retry_after`
    /// hint still wins when it is longer).
    pub fn with_backoff(mut self, policy: impl RetryPolicy + 'static) -> Self {
        self.backoff = Box::new(policy);
        self
    }

    /// Gates every retry on `budget`; share one [`Rc`] across clients to
    /// cap a whole fleet's retry amplification.
    pub fn with_budget(mut self, budget: Rc<RetryBudget>) -> Self {
        self.budget = Some(budget);
        self
    }

    fn retryable(err: &InvokeError) -> bool {
        matches!(
            err,
            InvokeError::Overloaded { .. } | InvokeError::TimedOut | InvokeError::DeadlineExceeded
        )
    }
}

/// A connected KaaS client.
pub struct KaasClient {
    conn: Connection<RequestFrame, ResponseFrame>,
    serialization: SerializationProfile,
    shm: Option<SharedMemory>,
    tenant: Option<String>,
    id: u64,
    next_seq: u64,
    tracer: Option<SpanSink>,
    retry: Option<ClientRetryConfig>,
    metrics: MetricsRegistry,
}

impl std::fmt::Debug for KaasClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KaasClient")
            .field("id", &self.id)
            .field("next_seq", &self.next_seq)
            .field("out_of_band", &self.shm.is_some())
            .field("traced", &self.tracer.is_some())
            .finish()
    }
}

impl KaasClient {
    /// Connects to a KaaS server over a link with `profile` timing.
    ///
    /// The client draws a network-unique identity
    /// ([`Network::alloc_client_id`]) that namespaces its request and
    /// span ids, so several clients of one simulation never collide.
    ///
    /// # Errors
    ///
    /// Propagates [`NetError`] when nothing listens at `addr`.
    pub async fn connect(
        net: &Network<RequestFrame, ResponseFrame>,
        addr: &str,
        profile: LinkProfile,
    ) -> Result<KaasClient, NetError> {
        let id = net.alloc_client_id();
        let conn = net.connect(addr, profile).await?;
        Ok(KaasClient {
            conn,
            serialization: SerializationProfile::python_pickle(),
            shm: None,
            tenant: None,
            id,
            next_seq: 0,
            tracer: None,
            retry: None,
            metrics: MetricsRegistry::new(),
        })
    }

    /// This client's network-unique identity (the high half of its
    /// request ids and the number in its `client{N}` trace track).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Requests this client has sent so far (each batch member counts
    /// once). Useful in tests and benchmarks to demonstrate round-trip
    /// collapse: an N-step registered flow costs 1, not N.
    pub fn requests_sent(&self) -> u64 {
        self.next_seq
    }

    /// The fault-injection handle of this client's **sending** wire
    /// direction (request frames). Dropping frames here loses requests
    /// past the NIC; pair with [`InvokeBuilder::timeout`] so lost
    /// requests resolve as [`InvokeError::TimedOut`].
    pub fn link_fault(&self) -> LinkFault {
        self.conn.fault()
    }

    /// Uses `shm` for out-of-band transfer (same-host deployments only).
    pub fn with_shared_memory(mut self, shm: SharedMemory) -> Self {
        self.shm = Some(shm);
        self
    }

    /// Overrides the serializer model.
    pub fn with_serialization(mut self, serialization: SerializationProfile) -> Self {
        self.serialization = serialization;
        self
    }

    /// Tags every request with a tenant identity (enables per-tenant
    /// fairness quotas on the server).
    pub fn with_tenant(mut self, tenant: impl Into<String>) -> Self {
        self.tenant = Some(tenant.into());
        self
    }

    /// Attaches a span sink: every traced invocation records a span tree
    /// (root `invoke` with `serialize`/`shm_put` → `roundtrip` →
    /// `deserialize`/`shm_take` children) on the `client{N}` track.
    /// Attach the same sink to the server config to see one invocation
    /// across every hop.
    pub fn with_tracer(mut self, tracer: SpanSink) -> Self {
        self.conn
            .set_tracer(tracer.clone(), format!("client{}", self.id));
        self.tracer = Some(tracer);
        self
    }

    /// Retries transient failures of every [`call`](KaasClient::call)
    /// under `retry` (see [`ClientRetryConfig`] for the semantics:
    /// `retry_after` hints honored, optional shared [`RetryBudget`]).
    pub fn with_retry(mut self, retry: ClientRetryConfig) -> Self {
        self.retry = Some(retry);
        self
    }

    /// Client-local metrics: `retries.budget_exhausted` (a retry was
    /// abandoned because the [`RetryBudget`] ran dry), `hedges.sent`
    /// and `hedges.won` (see [`InvokeBuilder::hedge`]).
    pub fn metrics_registry(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Starts building an invocation of `kernel`; finish with
    /// [`InvokeBuilder::send`].
    pub fn call(&mut self, kernel: &str) -> InvokeBuilder<'_> {
        InvokeBuilder {
            kernel: kernel.to_owned(),
            input: Value::Unit,
            object: None,
            tenant: None,
            deadline: None,
            timeout: None,
            trace: true,
            out_of_band: false,
            hedge: None,
            client: self,
        }
    }

    /// Stores `value` in the server's object store and returns its
    /// content address, to be passed to later invocations with
    /// [`InvokeBuilder::arg_ref`]. The payload travels through shared
    /// memory when attached (the fast path), in-band otherwise;
    /// identical content deduplicates to the same ref server-side.
    ///
    /// # Errors
    ///
    /// Any transport-level [`InvokeError`].
    pub async fn put(&mut self, value: Value) -> Result<ObjectRef, InvokeError> {
        let oob = self.shm.is_some();
        let mut call = self.call(DATA_PUT_KERNEL).arg(value);
        if oob {
            call = call.out_of_band();
        }
        let inv = call.send().await?;
        ObjectRef::from_value(&inv.output).ok_or(InvokeError::BadHandle)
    }

    /// Fetches a stored object back from the server.
    ///
    /// # Errors
    ///
    /// [`InvokeError::BadHandle`] when `r` does not resolve.
    pub async fn get(&mut self, r: ObjectRef) -> Result<Value, InvokeError> {
        let oob = self.shm.is_some();
        let mut call = self.call(DATA_GET_KERNEL).arg(r.to_value());
        if oob {
            call = call.out_of_band();
        }
        Ok(call.send().await?.output)
    }

    /// Seals a stored object: declares it immutable, making it eligible
    /// for device-resident caching (repeat invocations referencing it
    /// skip the host→device copy once uploaded).
    ///
    /// # Errors
    ///
    /// [`InvokeError::BadHandle`] when `r` does not resolve.
    pub async fn seal(&mut self, r: ObjectRef) -> Result<(), InvokeError> {
        self.call(DATA_SEAL_KERNEL).arg(r.to_value()).send().await?;
        Ok(())
    }

    /// Pins a stored object: its device-resident copies are never
    /// evicted under memory pressure.
    ///
    /// # Errors
    ///
    /// [`InvokeError::BadHandle`] when `r` does not resolve.
    pub async fn pin(&mut self, r: ObjectRef) -> Result<(), InvokeError> {
        self.call(DATA_PIN_KERNEL).arg(r.to_value()).send().await?;
        Ok(())
    }

    /// Registers a guest kernel program under `tenant`, returning its
    /// versioned `tenant/name@vN` identity. Registration verifies the
    /// bytecode (abstract typing, stack depths, worst-case fuel bound)
    /// and instantiates the program once server-side (running its init,
    /// taking the snapshot image when the program opted in) — every
    /// re-register of the same name mints a fresh version; existing
    /// versions are never mutated, so in-flight work keeps the code it
    /// resolved.
    ///
    /// Invoke it like any kernel: `client.call("tenant/name")` runs the
    /// latest live version, `client.call(&full_name)` pins one.
    ///
    /// # Errors
    ///
    /// [`InvokeError::BadInput`] when the tenant identity or program
    /// fails validation; [`InvokeError::VerifyRejected`] when the
    /// verifier proves the program traps (type mismatch, stack
    /// underflow, no-return path), with the `seq@pc: [rule] …`
    /// diagnostics in the payload; [`InvokeError::GuestTrap`] /
    /// [`InvokeError::FuelExhausted`] when the init program faults;
    /// transport errors as usual.
    pub async fn register_kernel(
        &mut self,
        tenant: &str,
        program: &GuestProgram,
    ) -> Result<String, InvokeError> {
        let inv = self
            .call(CODE_REGISTER_KERNEL)
            .arg(crate::guest::encode_register(tenant, program))
            .send()
            .await?;
        match inv.output.payload() {
            Value::Text(full) => Ok(full.clone()),
            _ => Err(InvokeError::BadHandle),
        }
    }

    /// Lists `tenant`'s live guest kernel versions (`tenant/name@vN`).
    ///
    /// # Errors
    ///
    /// Transport errors as usual.
    pub async fn list_guest_kernels(&mut self, tenant: &str) -> Result<Vec<String>, InvokeError> {
        let inv = self
            .call(CODE_LIST_KERNEL)
            .arg(Value::Text(tenant.to_owned()))
            .send()
            .await?;
        match inv.output.payload() {
            Value::List(items) => Ok(items
                .iter()
                .filter_map(|v| match v {
                    Value::Text(t) => Some(t.clone()),
                    _ => None,
                })
                .collect()),
            _ => Err(InvokeError::BadHandle),
        }
    }

    /// Tombstones a guest kernel: `tenant/name@vN` removes one version,
    /// a bare `tenant/name` removes every live version. Returns how many
    /// versions were removed. Version ids are never reused.
    ///
    /// # Errors
    ///
    /// [`InvokeError::UnknownGuestKernel`] when nothing was live under
    /// that name; transport errors as usual.
    pub async fn remove_kernel(&mut self, name: &str) -> Result<u64, InvokeError> {
        let inv = self
            .call(CODE_REMOVE_KERNEL)
            .arg(Value::Text(name.to_owned()))
            .send()
            .await?;
        match inv.output.payload() {
            Value::U64(n) => Ok(*n),
            _ => Err(InvokeError::BadHandle),
        }
    }

    /// Registers a workflow DAG with the server, returning the handle
    /// that triggers it (see [`KaasClient::flow`]). Registration is a
    /// one-time cost: the DAG definition crosses the wire once, and
    /// every later trigger carries only the handle id plus the input.
    ///
    /// # Errors
    ///
    /// [`InvokeError::UnknownKernel`] when a step names a kernel the
    /// server does not serve; [`InvokeError::BadInput`] when the
    /// definition does not decode; transport errors as usual.
    pub async fn register_workflow(
        &mut self,
        workflow: &Workflow,
    ) -> Result<WorkflowHandle, InvokeError> {
        let inv = self
            .call(FLOW_REGISTER_KERNEL)
            .arg(workflow.to_value())
            .send()
            .await?;
        match inv.output.payload() {
            Value::U64(id) => Ok(WorkflowHandle::new(*id, workflow.name(), workflow.len())),
            _ => Err(InvokeError::BadHandle),
        }
    }

    /// Starts building a trigger of a registered workflow; finish with
    /// [`FlowBuilder::send`] (or [`FlowBuilder::send_ref`] to leave the
    /// final output server-resident). The whole DAG executes in **one**
    /// round trip: the server walks the steps itself, chaining
    /// intermediates device-to-device.
    pub fn flow(&mut self, handle: &WorkflowHandle) -> FlowBuilder<'_> {
        FlowBuilder {
            id: handle.id(),
            name: handle.name().to_owned(),
            input: Value::Unit,
            object: None,
            tenant: None,
            deadline: None,
            timeout: None,
            trace: true,
            out_of_band: false,
            client: self,
        }
    }

    /// Opens a batch scope: calls added to it coalesce into **one**
    /// request frame with one frame header and one serialization pass —
    /// the wire-level analogue of "several invocations in the same
    /// simtime tick". Replies coalesce symmetrically; each member still
    /// succeeds or fails on its own. Finish with
    /// [`BatchBuilder::send`].
    pub fn batch(&mut self) -> BatchBuilder<'_> {
        BatchBuilder {
            client: self,
            calls: Vec::new(),
            timeout: None,
        }
    }

    async fn roundtrip(&mut self, req: Request) -> Result<Response, InvokeError> {
        let id = req.id;
        let span = req.span;
        let frame = RequestFrame::One(req);
        let bytes = frame.wire_bytes();
        self.conn
            .send_traced(frame, bytes, span)
            .await
            .map_err(|_| InvokeError::Disconnected)?;
        loop {
            let frame = self.conn.recv().await.ok_or(InvokeError::Disconnected)?;
            match frame.body {
                ResponseFrame::One(resp) if resp.id == id => return Ok(resp),
                // A response to an older (abandoned) request or to a
                // timed-out batch: drop it.
                _ => {}
            }
        }
    }

    /// The hedged round trip: sends `req`, and if no response arrives
    /// within `delay`, sends the pre-built duplicate `hedge` too. The
    /// first response matching **either** id wins; the loser's reply is
    /// dropped by the stale-response filter like any abandoned request.
    async fn roundtrip_hedged(
        &mut self,
        req: Request,
        hedge: Request,
        delay: Duration,
    ) -> Result<Response, InvokeError> {
        let primary = req.id;
        let span = req.span;
        let frame = RequestFrame::One(req);
        let bytes = frame.wire_bytes();
        self.conn
            .send_traced(frame, bytes, span)
            .await
            .map_err(|_| InvokeError::Disconnected)?;
        let fire_at = now() + delay;
        let mut hedge = Some(hedge);
        let mut hedge_id = None;
        loop {
            let frame = match &hedge {
                // Armed: wait for the primary, but only until the hedge
                // fires. The deadline is absolute so stale frames
                // draining through the loop cannot push it out.
                Some(_) => match timeout(fire_at.saturating_since(now()), self.conn.recv()).await {
                    Ok(frame) => frame,
                    Err(_) => {
                        let h = hedge.take().expect("armed branch requires a pending hedge");
                        hedge_id = Some(h.id);
                        self.metrics.inc("hedges.sent");
                        let frame = RequestFrame::One(h);
                        let bytes = frame.wire_bytes();
                        self.conn
                            .send_traced(frame, bytes, None)
                            .await
                            .map_err(|_| InvokeError::Disconnected)?;
                        continue;
                    }
                },
                None => self.conn.recv().await,
            };
            let frame = frame.ok_or(InvokeError::Disconnected)?;
            match frame.body {
                ResponseFrame::One(resp) if resp.id == primary => return Ok(resp),
                ResponseFrame::One(resp) if Some(resp.id) == hedge_id => {
                    self.metrics.inc("hedges.won");
                    return Ok(resp);
                }
                _ => {}
            }
        }
    }

    /// Sends a coalesced batch frame and waits for its coalesced reply,
    /// correlated by the first member's id.
    async fn batch_roundtrip(
        &mut self,
        reqs: Vec<Request>,
        span: Option<SpanId>,
    ) -> Result<Vec<Response>, InvokeError> {
        let first = reqs[0].id;
        let frame = RequestFrame::Batch(reqs);
        let bytes = frame.wire_bytes();
        self.conn
            .send_traced(frame, bytes, span)
            .await
            .map_err(|_| InvokeError::Disconnected)?;
        loop {
            let frame = self.conn.recv().await.ok_or(InvokeError::Disconnected)?;
            match frame.body {
                ResponseFrame::Batch(resps) if resps.first().is_some_and(|r| r.id == first) => {
                    return Ok(resps)
                }
                // A stale single response or an abandoned batch's reply.
                _ => {}
            }
        }
    }
}

/// A pending invocation under construction; create via
/// [`KaasClient::call`], dispatch with [`send`](InvokeBuilder::send).
#[must_use = "an invocation does nothing until .send() is awaited"]
#[derive(Debug)]
pub struct InvokeBuilder<'c> {
    client: &'c mut KaasClient,
    kernel: String,
    input: Value,
    object: Option<ObjectRef>,
    tenant: Option<String>,
    deadline: Option<Duration>,
    timeout: Option<Duration>,
    trace: bool,
    out_of_band: bool,
    hedge: Option<Duration>,
}

/// The per-attempt parameters of one invocation, split from
/// [`InvokeBuilder`] so the client-side retry loop can replay an
/// attempt with a fresh request id and a cloned input.
struct CallParams {
    kernel: String,
    object: Option<ObjectRef>,
    tenant: Option<String>,
    deadline: Option<Duration>,
    rt_timeout: Option<Duration>,
    trace: bool,
    out_of_band: bool,
    hedge: Option<Duration>,
}

impl<'c> InvokeBuilder<'c> {
    /// Sets the kernel input (default: [`Value::Unit`]).
    pub fn arg(mut self, input: Value) -> Self {
        self.input = input;
        self.object = None;
        self
    }

    /// Sets the kernel input to a stored object by content address
    /// (see [`KaasClient::put`]): only the 24-byte ref crosses the
    /// wire, and — once the object is sealed and uploaded — repeat
    /// invocations on the same device skip the host→device copy
    /// entirely. Overrides any previous [`arg`](InvokeBuilder::arg).
    pub fn arg_ref(mut self, r: ObjectRef) -> Self {
        self.object = Some(r);
        self.input = Value::Unit;
        self
    }

    /// Overrides the client's tenant identity for this call only.
    pub fn tenant(mut self, tenant: impl Into<String>) -> Self {
        self.tenant = Some(tenant.into());
        self
    }

    /// Gives the server a deadline (relative to send time) for
    /// *starting* device work; requests still undispatched past it are
    /// shed with [`InvokeError::DeadlineExceeded`].
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Bounds the network round trip: if no response arrives within
    /// `timeout` of the request hitting the wire, the call resolves with
    /// [`InvokeError::TimedOut`]. This is the client-side recovery path
    /// for lost frames (link faults): without it a dropped request or
    /// response would block the caller forever.
    pub fn timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Opts this call in or out of span recording (default: on, a no-op
    /// unless a sink was attached via [`KaasClient::with_tracer`]).
    pub fn trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    /// Passes the input **out-of-band** through shared memory: only a
    /// small handle crosses the connection ("transferring larger data
    /// without copying over the network", §4.1), and the output comes
    /// back the same way. With [`arg_ref`](InvokeBuilder::arg_ref) the
    /// input is already just a content address, so this mode applies to
    /// the reply — pair them whenever the kernel's output is large.
    /// Requires [`KaasClient::with_shared_memory`].
    pub fn out_of_band(mut self) -> Self {
        self.out_of_band = true;
        self
    }

    /// Hedges this call against tail latency: if no response arrives
    /// within `delay`, a duplicate request (its own id) is sent and the
    /// **first** response — original or hedge — wins. The loser keeps
    /// running server-side and its reply is discarded; `hedges.sent` /
    /// `hedges.won` on [`KaasClient::metrics_registry`] account for
    /// both halves. Ignored in [`out_of_band`](InvokeBuilder::out_of_band)
    /// mode, where the shm input handle is consume-once and cannot be
    /// duplicated.
    pub fn hedge(mut self, delay: Duration) -> Self {
        self.hedge = Some(delay);
        self
    }

    /// Runs the invocation: serializes (or shm-puts) the input, does the
    /// round trip, and materializes the output. Under
    /// [`KaasClient::with_retry`], transient failures replay the whole
    /// sequence (honoring `retry_after` hints and the retry budget).
    ///
    /// # Errors
    ///
    /// Any [`InvokeError`] the server reports;
    /// [`InvokeError::Disconnected`] if the connection closed;
    /// [`InvokeError::BadHandle`] in out-of-band mode without an
    /// attached shared-memory region.
    pub async fn send(self) -> Result<Invocation, InvokeError> {
        let InvokeBuilder {
            client,
            kernel,
            input,
            object,
            tenant,
            deadline,
            timeout: rt_timeout,
            trace,
            out_of_band,
            hedge,
        } = self;
        let params = CallParams {
            kernel,
            object,
            tenant,
            deadline,
            rt_timeout,
            trace,
            out_of_band,
            hedge,
        };
        let retry = client.retry.clone();
        if let Some(budget) = retry.as_ref().and_then(|r| r.budget.as_ref()) {
            budget.note_fresh();
        }
        let max_attempts = retry.as_ref().map_or(1, |r| r.max_attempts);
        // Deterministic jitter key: the id this call's first attempt
        // will draw. Stable across attempts so backoff policies see one
        // request, not N.
        let retry_key = (client.id << 32) | (client.next_seq & 0xffff_ffff);
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            let err = match params.attempt(client, input.clone()).await {
                Ok(inv) => return Ok(inv),
                Err(e) if attempt < max_attempts && ClientRetryConfig::retryable(&e) => e,
                Err(e) => return Err(e),
            };
            let cfg = retry
                .as_ref()
                .expect("max_attempts > 1 only with a retry config");
            if let Some(budget) = &cfg.budget {
                if !budget.try_spend() {
                    client.metrics.inc("retries.budget_exhausted");
                    return Err(err);
                }
            }
            // Cooperative backpressure: wait at least what the server
            // asked for, even when our own backoff would retry sooner.
            let mut wait = cfg.backoff.backoff(attempt, retry_key);
            if let InvokeError::Overloaded {
                retry_after: Some(hint),
            } = &err
            {
                wait = wait.max(*hint);
            }
            if !wait.is_zero() {
                sleep(wait).await;
            }
        }
    }
}

impl CallParams {
    /// One full attempt: stage the input, round-trip (hedged if asked),
    /// materialize the output.
    async fn attempt(
        &self,
        client: &mut KaasClient,
        input: Value,
    ) -> Result<Invocation, InvokeError> {
        let CallParams {
            kernel,
            object,
            tenant,
            deadline,
            rt_timeout,
            trace,
            out_of_band,
            hedge,
        } = self;
        let (object, deadline, rt_timeout, trace, out_of_band, hedge) = (
            *object,
            *deadline,
            *rt_timeout,
            *trace,
            *out_of_band,
            *hedge,
        );
        let tracer = if trace { client.tracer.clone() } else { None };
        let track = format!("client{}", client.id);
        let seq = client.next_seq;
        client.next_seq += 1;
        let id = (client.id << 32) | (seq & 0xffff_ffff);

        let start = now();
        let mut root = tracer.as_ref().map(|t| {
            let mut s = t.open(&track, "invoke", None);
            s.push_arg("kernel", kernel);
            s.push_arg("request", id.to_string());
            s
        });

        // Stage 1: put the input on the wire (a 24-byte content address
        // for stored objects, serialize in-band, shm-put out-of-band).
        // Out-of-band mode needs the region even for ref inputs: the
        // reply comes back through it.
        let shm = if out_of_band {
            Some(client.shm.as_ref().ok_or(InvokeError::BadHandle)?.clone())
        } else {
            None
        };
        let t0 = now();
        let data = if let Some(r) = object {
            // A content address is part of the request frame itself —
            // no payload to serialize, nothing to stage in shm.
            DataRef::Object(r)
        } else {
            match &shm {
                Some(shm) => {
                    let bytes = input.wire_bytes();
                    let handle = shm.put(input, bytes).await;
                    if let (Some(t), Some(root)) = (&tracer, &root) {
                        t.record(&track, "shm_put", t0, now(), Some(root.id()), vec![]);
                    }
                    DataRef::OutOfBand(handle)
                }
                None => {
                    sleep(client.serialization.time(input.wire_bytes())).await;
                    if let (Some(t), Some(root)) = (&tracer, &root) {
                        t.record(&track, "serialize", t0, now(), Some(root.id()), vec![]);
                    }
                    DataRef::InBand(input)
                }
            }
        };

        // Stage 2: the network round trip. The server parents its spans
        // under this span's pre-allocated id, carried in the request.
        let rt = tracer
            .as_ref()
            .zip(root.as_ref())
            .map(|(t, root)| t.open(&track, "roundtrip", Some(root.id())));
        let req = Request {
            id,
            kernel: kernel.clone(),
            data,
            tenant: tenant.clone().or_else(|| client.tenant.clone()),
            deadline: deadline.map(|d| now() + d),
            span: rt.as_ref().map(|s| s.id()),
            reply_out_of_band: out_of_band,
            reply_to_store: false,
        };
        // A hedge (when armed and the input is duplicable) is a second,
        // identical request under its own id. Out-of-band inputs are
        // consume-once shm handles, so they never hedge; object refs
        // are plain content addresses and duplicate safely.
        let hedge_req = match hedge {
            Some(_) if !out_of_band => {
                let data = match (&req.data, object) {
                    (_, Some(r)) => Some(DataRef::Object(r)),
                    (DataRef::InBand(v), None) => Some(DataRef::InBand(v.clone())),
                    _ => None,
                };
                data.map(|data| {
                    let seq = client.next_seq;
                    client.next_seq += 1;
                    Request {
                        id: (client.id << 32) | (seq & 0xffff_ffff),
                        kernel: kernel.clone(),
                        data,
                        tenant: req.tenant.clone(),
                        deadline: req.deadline,
                        // The duplicate is untraced: two server span
                        // trees under one roundtrip span would overlap.
                        span: None,
                        reply_out_of_band: false,
                        reply_to_store: false,
                    }
                })
            }
            _ => None,
        };
        let resp = match (rt_timeout, hedge_req) {
            (Some(d), Some(h)) => {
                let delay = hedge.expect("hedge_req implies a delay");
                timeout(d, client.roundtrip_hedged(req, h, delay))
                    .await
                    .unwrap_or(Err(InvokeError::TimedOut))
            }
            (None, Some(h)) => {
                let delay = hedge.expect("hedge_req implies a delay");
                client.roundtrip_hedged(req, h, delay).await
            }
            (Some(d), None) => timeout(d, client.roundtrip(req))
                .await
                .unwrap_or(Err(InvokeError::TimedOut)),
            (None, None) => client.roundtrip(req).await,
        };
        let resp = match resp {
            Ok(resp) => resp,
            Err(e) => {
                if let Some(rt) = rt {
                    rt.finish();
                }
                if let Some(root) = root.take() {
                    root.finish();
                }
                return Err(e);
            }
        };
        if let Some(rt) = rt {
            rt.finish();
        }
        let result = match resp.result {
            Ok(data) => data,
            Err(e) => {
                if let Some(root) = root.take() {
                    root.finish();
                }
                return Err(e);
            }
        };

        // Stage 3: materialize the output the way it came back.
        let t2 = now();
        let output = match result {
            DataRef::InBand(v) => {
                sleep(client.serialization.time(v.wire_bytes())).await;
                if let (Some(t), Some(root)) = (&tracer, &root) {
                    t.record(&track, "deserialize", t2, now(), Some(root.id()), vec![]);
                }
                v
            }
            DataRef::OutOfBand(h) => {
                let shm = client.shm.as_ref().ok_or(InvokeError::BadHandle)?;
                let v = shm.take(h).await.ok_or(InvokeError::BadHandle)?;
                if let (Some(t), Some(root)) = (&tracer, &root) {
                    t.record(&track, "shm_take", t2, now(), Some(root.id()), vec![]);
                }
                v
            }
            // Servers never answer with a bare content address.
            DataRef::Object(_) => return Err(InvokeError::BadHandle),
        };

        if let Some(root) = root {
            root.finish();
        }
        Ok(Invocation {
            output,
            report: resp.report.ok_or(InvokeError::Disconnected)?,
            latency: now() - start,
        })
    }
}

/// A pending trigger of a registered workflow; create via
/// [`KaasClient::flow`], dispatch with [`send`](FlowBuilder::send).
#[must_use = "a flow trigger does nothing until .send() is awaited"]
#[derive(Debug)]
pub struct FlowBuilder<'c> {
    client: &'c mut KaasClient,
    id: u64,
    name: String,
    input: Value,
    object: Option<ObjectRef>,
    tenant: Option<String>,
    deadline: Option<Duration>,
    timeout: Option<Duration>,
    trace: bool,
    out_of_band: bool,
}

impl<'c> FlowBuilder<'c> {
    /// Sets the trigger input fed to the flow's source steps (default:
    /// [`Value::Unit`]).
    pub fn input(mut self, input: Value) -> Self {
        self.input = input;
        self.object = None;
        self
    }

    /// Feeds the flow a stored object by content address (see
    /// [`KaasClient::put`]): only the 24-byte ref crosses the wire, and
    /// the source steps chain off the resident object like any
    /// intermediate. Overrides any previous
    /// [`input`](FlowBuilder::input).
    pub fn input_ref(mut self, r: ObjectRef) -> Self {
        self.object = Some(r);
        self.input = Value::Unit;
        self
    }

    /// Overrides the client's tenant identity for this run only.
    pub fn tenant(mut self, tenant: impl Into<String>) -> Self {
        self.tenant = Some(tenant.into());
        self
    }

    /// Gives every step of the run a server-side start deadline
    /// (relative to send time); a step still undispatched past it sheds
    /// with [`InvokeError::DeadlineExceeded`], aborting the flow.
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Bounds the network round trip, like [`InvokeBuilder::timeout`].
    pub fn timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Opts this run in or out of span recording (default: on).
    pub fn trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    /// Ships the trigger (and the final output) through shared memory.
    /// Requires [`KaasClient::with_shared_memory`].
    pub fn out_of_band(mut self) -> Self {
        self.out_of_band = true;
        self
    }

    /// Triggers the run and materializes the final output: one round
    /// trip for the whole DAG.
    ///
    /// # Errors
    ///
    /// [`FlowError`] wrapping the aborting step's [`InvokeError`] (or a
    /// transport error), with the reports of the steps that did
    /// complete as partial results. A forged or expired handle fails
    /// with [`InvokeError::UnknownFlow`], never a panic.
    pub async fn send(self) -> Result<WorkflowRun, FlowError> {
        let (data, report, start, client, tracer, track, root) = self.send_inner(0).await?;
        // Materialize the output the way it came back.
        let t2 = now();
        let output = match data {
            DataRef::InBand(v) => {
                sleep(client.serialization.time(v.wire_bytes())).await;
                if let (Some(t), Some(root)) = (&tracer, &root) {
                    t.record(&track, "deserialize", t2, now(), Some(root.id()), vec![]);
                }
                v
            }
            DataRef::OutOfBand(h) => {
                let shm = match client.shm.as_ref() {
                    Some(shm) => shm,
                    None => {
                        if let Some(root) = root {
                            root.finish();
                        }
                        return Err(FlowError::from(InvokeError::BadHandle));
                    }
                };
                match shm.take(h).await {
                    Some(v) => {
                        if let (Some(t), Some(root)) = (&tracer, &root) {
                            t.record(&track, "shm_take", t2, now(), Some(root.id()), vec![]);
                        }
                        v
                    }
                    None => {
                        if let Some(root) = root {
                            root.finish();
                        }
                        return Err(FlowError::from(InvokeError::BadHandle));
                    }
                }
            }
            // Bare content addresses only answer `send_ref` triggers.
            DataRef::Object(_) => {
                if let Some(root) = root {
                    root.finish();
                }
                return Err(FlowError::from(InvokeError::BadHandle));
            }
        };
        if let Some(root) = root {
            root.finish();
        }
        Ok(WorkflowRun {
            output,
            report,
            latency: now() - start,
            round_trips: 1,
        })
    }

    /// Triggers the run but leaves the final output server-resident,
    /// returning its content address plus the per-step report. The next
    /// hop — another flow via [`FlowBuilder::input_ref`], a
    /// [`get`](KaasClient::get), a federated segment handoff — chains
    /// off the ref without the value ever crossing this wire.
    ///
    /// # Errors
    ///
    /// As [`send`](FlowBuilder::send).
    pub async fn send_ref(self) -> Result<(ObjectRef, WorkflowReport), FlowError> {
        let (data, report, _, _, _, _, root) = self.send_inner(FLOW_REPLY_REF).await?;
        if let Some(root) = root {
            root.finish();
        }
        match data {
            DataRef::Object(r) => Ok((r, report)),
            _ => Err(FlowError::from(InvokeError::BadHandle)),
        }
    }

    /// The shared trigger path: stages the trigger, does the round
    /// trip, and splits the reply into payload + report. Returns the
    /// still-open root span so the caller can hang materialization
    /// spans under it.
    #[allow(clippy::type_complexity)]
    async fn send_inner(
        self,
        flags: u64,
    ) -> Result<
        (
            DataRef,
            WorkflowReport,
            kaas_simtime::SimTime,
            &'c mut KaasClient,
            Option<SpanSink>,
            String,
            Option<kaas_simtime::OpenSpan>,
        ),
        FlowError,
    > {
        let FlowBuilder {
            client,
            id: flow_id,
            name,
            input,
            object,
            tenant,
            deadline,
            timeout: rt_timeout,
            trace,
            out_of_band,
        } = self;
        let tracer = if trace { client.tracer.clone() } else { None };
        let track = format!("client{}", client.id);
        let seq = client.next_seq;
        client.next_seq += 1;
        let id = (client.id << 32) | (seq & 0xffff_ffff);

        let start = now();
        let mut root = tracer.as_ref().map(|t| {
            let mut s = t.open(&track, "flow", None);
            s.push_arg("flow", flow_id.to_string());
            s.push_arg("name", &name);
            s
        });

        // Stage the trigger. A ref input travels inside the trigger
        // envelope — the payload itself stays server-side.
        let trigger = encode_trigger(
            flow_id,
            flags,
            match object {
                Some(r) => r.to_value(),
                None => input,
            },
        );
        let t0 = now();
        let data = if out_of_band {
            let shm = match client.shm.as_ref() {
                Some(shm) => shm.clone(),
                None => {
                    if let Some(root) = root.take() {
                        root.finish();
                    }
                    return Err(FlowError::from(InvokeError::BadHandle));
                }
            };
            let bytes = trigger.wire_bytes();
            let handle = shm.put(trigger, bytes).await;
            if let (Some(t), Some(root)) = (&tracer, &root) {
                t.record(&track, "shm_put", t0, now(), Some(root.id()), vec![]);
            }
            DataRef::OutOfBand(handle)
        } else {
            sleep(client.serialization.time(trigger.wire_bytes())).await;
            if let (Some(t), Some(root)) = (&tracer, &root) {
                t.record(&track, "serialize", t0, now(), Some(root.id()), vec![]);
            }
            DataRef::InBand(trigger)
        };

        // The round trip; the server hangs the whole run's span tree
        // under this span's id.
        let rt = tracer
            .as_ref()
            .zip(root.as_ref())
            .map(|(t, root)| t.open(&track, "roundtrip", Some(root.id())));
        let req = Request {
            id,
            kernel: FLOW_RUN_KERNEL.to_owned(),
            data,
            tenant: tenant.or_else(|| client.tenant.clone()),
            deadline: deadline.map(|d| now() + d),
            span: rt.as_ref().map(|s| s.id()),
            reply_out_of_band: out_of_band,
            reply_to_store: false,
        };
        let resp = match rt_timeout {
            Some(d) => timeout(d, client.roundtrip(req))
                .await
                .unwrap_or(Err(InvokeError::TimedOut)),
            None => client.roundtrip(req).await,
        };
        if let Some(rt) = rt {
            rt.finish();
        }
        let resp = match resp {
            Ok(resp) => resp,
            Err(e) => {
                if let Some(root) = root.take() {
                    root.finish();
                }
                return Err(FlowError::from(e));
            }
        };
        match resp.result {
            Ok(data) => {
                let report = match resp.flow {
                    Some(report) => report,
                    None => {
                        if let Some(root) = root.take() {
                            root.finish();
                        }
                        return Err(FlowError::from(InvokeError::Disconnected));
                    }
                };
                Ok((data, report, start, client, tracer, track, root))
            }
            Err(e) => {
                if let Some(root) = root.take() {
                    root.finish();
                }
                Err(FlowError {
                    error: e,
                    partial: resp.flow.map(|f| f.steps).unwrap_or_default(),
                })
            }
        }
    }
}

/// One member of a batched invocation (see [`KaasClient::batch`]):
/// kernel name, input, and per-member overrides. Built standalone so a
/// batch can be assembled before the client is borrowed.
#[derive(Debug, Clone)]
pub struct BatchCall {
    kernel: String,
    input: Value,
    object: Option<ObjectRef>,
    tenant: Option<String>,
    deadline: Option<Duration>,
}

impl BatchCall {
    /// Starts a batch member invoking `kernel` (input defaults to
    /// [`Value::Unit`]).
    pub fn new(kernel: &str) -> Self {
        BatchCall {
            kernel: kernel.to_owned(),
            input: Value::Unit,
            object: None,
            tenant: None,
            deadline: None,
        }
    }

    /// Sets the member's in-band input.
    pub fn arg(mut self, input: Value) -> Self {
        self.input = input;
        self.object = None;
        self
    }

    /// Sets the member's input to a stored object by content address
    /// (overrides any previous [`arg`](BatchCall::arg)).
    pub fn arg_ref(mut self, r: ObjectRef) -> Self {
        self.object = Some(r);
        self.input = Value::Unit;
        self
    }

    /// Overrides the client's tenant identity for this member.
    pub fn tenant(mut self, tenant: impl Into<String>) -> Self {
        self.tenant = Some(tenant.into());
        self
    }

    /// Gives this member a server-side start deadline (relative to
    /// send time), like [`InvokeBuilder::deadline`].
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// A batch of invocations under construction; create via
/// [`KaasClient::batch`], dispatch with [`send`](BatchBuilder::send).
///
/// All members ride **one** request frame: one [`FRAME_BYTES`](crate::FRAME_BYTES)
/// header plus a small per-member sub-header, and
/// one serialization pass over the concatenated in-band payloads — the
/// §4.1 per-call wire costs are paid once per batch instead of once per
/// call. Replies coalesce symmetrically. Server-side, members execute
/// concurrently and independently: retry, circuit breaking, and
/// admission all see ordinary individual invocations.
#[must_use = "a batch does nothing until .send() is awaited"]
#[derive(Debug)]
pub struct BatchBuilder<'c> {
    client: &'c mut KaasClient,
    calls: Vec<BatchCall>,
    timeout: Option<Duration>,
}

impl BatchBuilder<'_> {
    /// Appends one member.
    pub fn call(mut self, call: BatchCall) -> Self {
        self.calls.push(call);
        self
    }

    /// Bounds the whole frame's round trip: if the coalesced reply does
    /// not arrive in time, **every** member resolves individually as
    /// [`InvokeError::TimedOut`] (the outer result stays `Ok`).
    pub fn timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Members added so far.
    pub fn len(&self) -> usize {
        self.calls.len()
    }

    /// Whether the batch is still empty.
    pub fn is_empty(&self) -> bool {
        self.calls.is_empty()
    }

    /// Runs the batch: one coalesced serialization, one round trip, one
    /// coalesced deserialization. Returns per-member results in call
    /// order — members succeed or fail independently.
    ///
    /// # Errors
    ///
    /// The outer `Err` is transport-level only
    /// ([`InvokeError::Disconnected`]); everything else — including a
    /// frame-level timeout — lands in the per-member results.
    pub async fn send(self) -> Result<Vec<Result<Invocation, InvokeError>>, InvokeError> {
        let BatchBuilder {
            client,
            calls,
            timeout: rt_timeout,
        } = self;
        if calls.is_empty() {
            return Ok(Vec::new());
        }
        let n = calls.len();
        let tracer = client.tracer.clone();
        let track = format!("client{}", client.id);
        let start = now();
        let mut root = tracer.as_ref().map(|t| {
            let mut s = t.open(&track, "batch", None);
            s.push_arg("members", n.to_string());
            s
        });

        // One serialization pass covers every in-band member payload
        // (object refs travel as part of the frame itself).
        let t0 = now();
        let in_band: u64 = calls
            .iter()
            .filter(|c| c.object.is_none())
            .map(|c| c.input.wire_bytes())
            .sum();
        if in_band > 0 {
            sleep(client.serialization.time(in_band)).await;
        }
        if let (Some(t), Some(root)) = (&tracer, &root) {
            t.record(&track, "serialize", t0, now(), Some(root.id()), vec![]);
        }

        let reqs: Vec<Request> = calls
            .into_iter()
            .map(|c| {
                let seq = client.next_seq;
                client.next_seq += 1;
                Request {
                    id: (client.id << 32) | (seq & 0xffff_ffff),
                    kernel: c.kernel,
                    data: match c.object {
                        Some(r) => DataRef::Object(r),
                        None => DataRef::InBand(c.input),
                    },
                    tenant: c.tenant.or_else(|| client.tenant.clone()),
                    deadline: c.deadline.map(|d| now() + d),
                    // Members carry no span parent: they execute
                    // concurrently server-side, and concurrent siblings
                    // under one parent would break the trace tiling
                    // contract. The batch records its own client-side
                    // span tree instead.
                    span: None,
                    reply_out_of_band: false,
                    reply_to_store: false,
                }
            })
            .collect();

        let t1 = now();
        let rt_span = root.as_ref().map(|r| r.id());
        let resps = match rt_timeout {
            Some(d) => match timeout(d, client.batch_roundtrip(reqs, rt_span)).await {
                Ok(resps) => resps,
                Err(_) => {
                    // The frame (or its reply) is lost past the
                    // deadline: the members failed individually.
                    if let (Some(t), Some(root)) = (&tracer, &root) {
                        t.record(&track, "roundtrip", t1, now(), Some(root.id()), vec![]);
                    }
                    if let Some(root) = root.take() {
                        root.finish();
                    }
                    return Ok((0..n).map(|_| Err(InvokeError::TimedOut)).collect());
                }
            },
            None => client.batch_roundtrip(reqs, rt_span).await,
        };
        let resps = match resps {
            Ok(resps) => resps,
            Err(e) => {
                if let Some(root) = root.take() {
                    root.finish();
                }
                return Err(e);
            }
        };
        if let (Some(t), Some(root)) = (&tracer, &root) {
            t.record(&track, "roundtrip", t1, now(), Some(root.id()), vec![]);
        }

        // One coalesced deserialization pass over the in-band replies.
        let t2 = now();
        let reply_bytes: u64 = resps
            .iter()
            .filter_map(|r| match &r.result {
                Ok(DataRef::InBand(v)) => Some(v.wire_bytes()),
                _ => None,
            })
            .sum();
        if reply_bytes > 0 {
            sleep(client.serialization.time(reply_bytes)).await;
        }
        if let (Some(t), Some(root)) = (&tracer, &root) {
            t.record(&track, "deserialize", t2, now(), Some(root.id()), vec![]);
        }

        let latency = now() - start;
        let out = resps
            .into_iter()
            .map(|resp| {
                let output = match resp.result? {
                    DataRef::InBand(v) => v,
                    // Batch members never request out-of-band replies.
                    _ => return Err(InvokeError::BadHandle),
                };
                Ok(Invocation {
                    output,
                    report: resp.report.ok_or(InvokeError::Disconnected)?,
                    latency,
                })
            })
            .collect();
        if let Some(root) = root {
            root.finish();
        }
        Ok(out)
    }
}
