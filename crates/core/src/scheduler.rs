//! Pluggable invocation scheduling: how the server chooses a runner
//! slot for each request.
//!
//! The [`Scheduler`] trait sees an immutable snapshot of the usable
//! slots for one kernel ([`SchedCtx`]) and either picks one
//! ([`SlotChoice`]) or declines, signalling that every eligible runner
//! is saturated. A decline hands control to the
//! [autoscaler](crate::autoscaler), which may start a fresh runner.
//!
//! Four policies ship in-tree — [`FillFirst`], [`RoundRobin`],
//! [`LeastLoaded`] (the paper's §5.4–§5.5 behaviours) and
//! [`WarmFirst`] (prefers runners that finished cold-starting).
//! Custom policies implement the trait:
//!
//! ```
//! use kaas_core::{SchedCtx, Scheduler, SlotChoice};
//!
//! /// Sends everything to the most recently started runner.
//! #[derive(Debug, Clone)]
//! struct NewestFirst;
//!
//! impl Scheduler for NewestFirst {
//!     fn name(&self) -> &'static str {
//!         "newest-first"
//!     }
//!     fn pick(&self, ctx: &SchedCtx) -> Option<SlotChoice> {
//!         ctx.slots
//!             .iter()
//!             .rev()
//!             .find(|s| s.claimed < ctx.cap)
//!             .map(|s| SlotChoice { index: s.index })
//!     }
//!     fn box_clone(&self) -> Box<dyn Scheduler> {
//!         Box::new(self.clone())
//!     }
//! }
//! ```

use std::cell::Cell;

use kaas_accel::DeviceId;

/// One usable runner slot as the scheduler sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotView {
    /// Position in [`SchedCtx::slots`], in runner start order. Return
    /// this in [`SlotChoice::index`] to pick the slot.
    pub index: usize,
    /// In-flight invocations currently claimed against the slot.
    pub claimed: usize,
    /// Device hosting the runner.
    pub device: DeviceId,
    /// Whether the runner finished its cold start (a cold slot can be
    /// picked — the invocation waits for readiness).
    pub warm: bool,
    /// Whether the invocation's referenced operand is already resident
    /// in this slot's device memory (data-plane cache hint; always
    /// `false` when the request carries no sealed object ref).
    pub resident: bool,
}

/// Everything a scheduler may consult for one placement decision.
#[derive(Debug, Clone)]
pub struct SchedCtx<'a> {
    /// Kernel being invoked.
    pub kernel: &'a str,
    /// Usable (non-dead) slots for this kernel, in start order.
    pub slots: &'a [SlotView],
    /// Per-runner in-flight cap
    /// ([`RunnerConfig::max_inflight`][crate::RunnerConfig::max_inflight]).
    pub cap: usize,
}

/// A scheduler's verdict: the index (into [`SchedCtx::slots`]) of the
/// chosen slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotChoice {
    /// Index of the chosen [`SlotView`].
    pub index: usize,
}

/// Placement policy: routes an invocation to one of a kernel's runner
/// slots, or declines when all eligible runners are saturated.
///
/// Implementations must be deterministic functions of their own state
/// and the [`SchedCtx`] — the whole simulation replays bit-for-bit, so
/// schedulers cannot consult wall clocks or ambient randomness.
pub trait Scheduler {
    /// Short policy name (used in `Debug` output).
    fn name(&self) -> &'static str;

    /// Chooses a slot, or `None` to decline (triggers the autoscaler).
    ///
    /// `ctx.slots` is never empty — the server handles the zero-runner
    /// bootstrap case before consulting the scheduler.
    fn pick(&self, ctx: &SchedCtx) -> Option<SlotChoice>;

    /// Clones the policy, preserving its internal state.
    fn box_clone(&self) -> Box<dyn Scheduler>;
}

impl Clone for Box<dyn Scheduler> {
    fn clone(&self) -> Self {
        self.box_clone()
    }
}

impl<S: Scheduler + 'static> From<S> for Box<dyn Scheduler> {
    fn from(scheduler: S) -> Self {
        Box::new(scheduler)
    }
}

impl std::fmt::Debug for Box<dyn Scheduler> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Scheduler({})", self.name())
    }
}

/// Fill the earliest-started runner to its in-flight cap before
/// spilling to the next (the paper's §5.5 autoscaling behaviour).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FillFirst;

impl Scheduler for FillFirst {
    fn name(&self) -> &'static str {
        "fill-first"
    }

    fn pick(&self, ctx: &SchedCtx) -> Option<SlotChoice> {
        ctx.slots
            .iter()
            .find(|s| s.claimed < ctx.cap)
            .map(|s| SlotChoice { index: s.index })
    }

    fn box_clone(&self) -> Box<dyn Scheduler> {
        Box::new(*self)
    }
}

/// Rotate across all runners (the paper's §5.4 weak-scaling
/// "round-robin scheduler"). Never declines: a saturated runner simply
/// queues the invocation, so round-robin deployments scale out only
/// through explicit prewarming.
#[derive(Debug, Clone, Default)]
pub struct RoundRobin {
    cursor: Cell<usize>,
}

impl Scheduler for RoundRobin {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn pick(&self, ctx: &SchedCtx) -> Option<SlotChoice> {
        let i = self.cursor.get();
        self.cursor.set(i + 1);
        Some(SlotChoice {
            index: ctx.slots[i % ctx.slots.len()].index,
        })
    }

    fn box_clone(&self) -> Box<dyn Scheduler> {
        Box::new(self.clone())
    }
}

/// Pick the runner with the fewest in-flight invocations (first such
/// runner in start order on ties); declines when even the least-loaded
/// runner is at the cap.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LeastLoaded;

impl Scheduler for LeastLoaded {
    fn name(&self) -> &'static str {
        "least-loaded"
    }

    fn pick(&self, ctx: &SchedCtx) -> Option<SlotChoice> {
        let slot = ctx.slots.iter().min_by_key(|s| s.claimed)?;
        (slot.claimed < ctx.cap).then_some(SlotChoice { index: slot.index })
    }

    fn box_clone(&self) -> Box<dyn Scheduler> {
        Box::new(*self)
    }
}

/// Prefer runners that finished their cold start, and among the warm
/// ones, runners whose device already holds the invocation's operands
/// ([`SlotView::resident`], the data-plane cache hint — a resident hit
/// skips the host→device copy entirely). Order: warm + resident →
/// warm → cold (its cold start is already underway, which beats paying
/// a fresh one). Declines only when everything is saturated.
///
/// Compared to [`FillFirst`] this avoids stacking invocations behind a
/// still-starting runner while warm capacity sits idle, and avoids
/// re-uploading operands another device already holds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WarmFirst;

impl Scheduler for WarmFirst {
    fn name(&self) -> &'static str {
        "warm-first"
    }

    fn pick(&self, ctx: &SchedCtx) -> Option<SlotChoice> {
        let under_cap = |s: &&SlotView| s.claimed < ctx.cap;
        ctx.slots
            .iter()
            .filter(|s| s.warm && s.resident)
            .find(under_cap)
            .or_else(|| ctx.slots.iter().filter(|s| s.warm).find(under_cap))
            .or_else(|| ctx.slots.iter().filter(|s| !s.warm).find(under_cap))
            .map(|s| SlotChoice { index: s.index })
    }

    fn box_clone(&self) -> Box<dyn Scheduler> {
        Box::new(*self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn views(claims: &[usize], warm: &[bool]) -> Vec<SlotView> {
        claims
            .iter()
            .zip(warm)
            .enumerate()
            .map(|(index, (&claimed, &warm))| SlotView {
                index,
                claimed,
                device: DeviceId(index as u32),
                warm,
                resident: false,
            })
            .collect()
    }

    fn ctx<'a>(slots: &'a [SlotView], cap: usize) -> SchedCtx<'a> {
        SchedCtx {
            kernel: "k",
            slots,
            cap,
        }
    }

    #[test]
    fn fill_first_packs_the_earliest_runner() {
        let slots = views(&[3, 0, 0], &[true, true, true]);
        assert_eq!(
            FillFirst.pick(&ctx(&slots, 4)),
            Some(SlotChoice { index: 0 })
        );
        let full = views(&[4, 4], &[true, true]);
        assert_eq!(FillFirst.pick(&ctx(&full, 4)), None);
    }

    #[test]
    fn round_robin_rotates_and_never_declines() {
        let rr = RoundRobin::default();
        let slots = views(&[9, 9, 9], &[true, true, true]);
        let picks: Vec<usize> = (0..6)
            .map(|_| rr.pick(&ctx(&slots, 4)).expect("never declines").index)
            .collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn least_loaded_breaks_ties_by_start_order() {
        let slots = views(&[2, 1, 1], &[true, true, true]);
        assert_eq!(
            LeastLoaded.pick(&ctx(&slots, 4)),
            Some(SlotChoice { index: 1 })
        );
        let full = views(&[4, 4, 4], &[true, true, true]);
        assert_eq!(LeastLoaded.pick(&ctx(&full, 4)), None);
    }

    #[test]
    fn warm_first_prefers_started_runners() {
        // Slot 0 is still cold-starting; 1 is warm.
        let slots = views(&[1, 0], &[false, true]);
        assert_eq!(
            WarmFirst.pick(&ctx(&slots, 4)),
            Some(SlotChoice { index: 1 })
        );
        // All warm slots saturated: fall back to the cold one.
        let slots = views(&[1, 4], &[false, true]);
        assert_eq!(
            WarmFirst.pick(&ctx(&slots, 4)),
            Some(SlotChoice { index: 0 })
        );
        // Everything saturated: decline so the autoscaler can act.
        let slots = views(&[4, 4], &[false, true]);
        assert_eq!(WarmFirst.pick(&ctx(&slots, 4)), None);
    }

    #[test]
    fn warm_first_prefers_resident_operands() {
        // Slots 0 and 1 are warm; only 1 holds the operand.
        let mut slots = views(&[0, 0, 0], &[true, true, false]);
        slots[1].resident = true;
        assert_eq!(
            WarmFirst.pick(&ctx(&slots, 4)),
            Some(SlotChoice { index: 1 })
        );
        // Resident slot saturated: fall back to any warm slot.
        slots[1].claimed = 4;
        assert_eq!(
            WarmFirst.pick(&ctx(&slots, 4)),
            Some(SlotChoice { index: 0 })
        );
        // A resident-but-cold slot never beats a warm one: the cold
        // start would cost more than the copy it saves.
        let mut slots = views(&[0, 0], &[false, true]);
        slots[0].resident = true;
        assert_eq!(
            WarmFirst.pick(&ctx(&slots, 4)),
            Some(SlotChoice { index: 1 })
        );
    }

    #[test]
    fn identical_runs_produce_identical_placement_sequences() {
        // Same policy state + same contexts ⇒ same choices, for every
        // built-in policy (the determinism contract).
        let policies: [fn() -> Box<dyn Scheduler>; 4] = [
            || Box::new(FillFirst),
            || Box::<RoundRobin>::default(),
            || Box::new(LeastLoaded),
            || Box::new(WarmFirst),
        ];
        for make in policies {
            let a: Box<dyn Scheduler> = make();
            let b: Box<dyn Scheduler> = make();
            let mut claims = vec![0usize, 2, 1, 3];
            let warm = [true, false, true, true];
            for step in 0..32 {
                let slots = views(&claims, &warm);
                let c = ctx(&slots, 4);
                let pa = a.pick(&c).map(|s| s.index);
                let pb = b.pick(&c).map(|s| s.index);
                assert_eq!(pa, pb, "{} diverged at step {step}", a.name());
                if let Some(i) = pa {
                    claims[i] = (claims[i] + step) % 5;
                }
            }
        }
    }

    #[test]
    fn cloning_preserves_round_robin_state() {
        let rr = RoundRobin::default();
        let slots = views(&[0, 0, 0], &[true, true, true]);
        rr.pick(&ctx(&slots, 4));
        let cloned = rr.box_clone();
        assert_eq!(cloned.pick(&ctx(&slots, 4)).unwrap().index, 1);
        assert_eq!(rr.pick(&ctx(&slots, 4)).unwrap().index, 1);
    }
}
