//! The client ↔ KaaS-server wire protocol (§4.1 of the paper): TCP
//! request/response with in-band (serialized) or out-of-band
//! (shared-memory) data transfer.

use std::time::Duration;

use kaas_kernels::Value;
use kaas_net::{ShmHandle, HANDLE_WIRE_BYTES};
use kaas_simtime::{SimTime, SpanId};

use crate::dataplane::{ObjectRef, OBJECT_REF_WIRE_BYTES};
use crate::metrics::InvocationReport;
use crate::workflow::WorkflowReport;

/// How a payload travels between client and kernel.
#[derive(Debug)]
pub enum DataRef {
    /// Serialized onto the connection.
    InBand(Value),
    /// A pointer into a host shared-memory region.
    OutOfBand(ShmHandle<Value>),
    /// A content address into the server's object store (the data
    /// plane): the payload was [`put`](crate::KaasClient::put) earlier
    /// and only its 24-byte ref crosses the wire.
    Object(ObjectRef),
}

impl DataRef {
    /// On-wire size of this reference (payload bytes in-band, a fixed
    /// small handle out-of-band — the entire point of §4.1's out-of-band
    /// mode — and a fixed content address for stored objects).
    pub fn wire_bytes(&self) -> u64 {
        match self {
            DataRef::InBand(v) => v.wire_bytes(),
            DataRef::OutOfBand(_) => HANDLE_WIRE_BYTES,
            DataRef::Object(_) => OBJECT_REF_WIRE_BYTES,
        }
    }

    /// Logical payload size (regardless of transfer mode).
    pub fn payload_bytes(&self) -> u64 {
        match self {
            DataRef::InBand(v) => v.wire_bytes(),
            DataRef::OutOfBand(h) => h.bytes(),
            DataRef::Object(r) => r.bytes,
        }
    }
}

/// Fixed protocol framing overhead per message.
pub const FRAME_BYTES: u64 = 128;

/// A kernel invocation request.
#[derive(Debug)]
pub struct Request {
    /// Client-chosen correlation id.
    pub id: u64,
    /// Registered kernel name.
    pub kernel: String,
    /// Input payload.
    pub data: DataRef,
    /// Tenant identity for fairness accounting (§3.1: "fairness, data
    /// isolation, scheduling, and service-level agreements").
    pub tenant: Option<String>,
    /// Absolute virtual-time deadline for *starting* device work: the
    /// server sheds the request with [`InvokeError::DeadlineExceeded`]
    /// if it is still undispatched past this instant.
    pub deadline: Option<SimTime>,
    /// Client-side trace context: the span the server should parent its
    /// own spans under (the client's `roundtrip` span).
    pub span: Option<SpanId>,
    /// The client wants the *output* returned through shared memory
    /// even when the input did not travel that way — the common case
    /// for [`DataRef::Object`] requests, where the input is a 24-byte
    /// content address but the result can be arbitrarily large.
    /// Out-of-band inputs always get out-of-band replies regardless.
    pub reply_out_of_band: bool,
    /// Internal flow-executor handoff: the output is destined for the
    /// server's own object store, not the wire, so reply shaping
    /// (serialization / shared memory) is skipped entirely. Never set
    /// by clients.
    pub reply_to_store: bool,
}

impl Request {
    /// Total on-wire size.
    pub fn wire_bytes(&self) -> u64 {
        FRAME_BYTES + self.kernel.len() as u64 + self.data.wire_bytes()
    }
}

/// Invocation failures reported to clients.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvokeError {
    /// No kernel with the requested name is registered.
    UnknownKernel(String),
    /// The kernel rejected its input.
    BadInput(String),
    /// No device of the kernel's class exists in this deployment.
    NoDevice(String),
    /// The runner serving the request died.
    RunnerFailed(String),
    /// The server connection closed before a response arrived.
    Disconnected,
    /// An out-of-band handle did not resolve.
    BadHandle,
    /// The server shed the request: the admission limiter (adaptive or
    /// fixed-cap) or a bounded shard queue was already at its ceiling.
    /// `retry_after` is the server's deterministic estimate of when the
    /// backlog will have drained — cooperative backpressure that retry
    /// policies must honor (wait *at least* this long before retrying).
    Overloaded {
        /// Suggested minimum wait before a retry, when the server can
        /// estimate its own drain time. `None` preserves the historic
        /// uninformative shed.
        retry_after: Option<Duration>,
    },
    /// The server shed the request: its [`Request::deadline`] passed
    /// before device work could start.
    DeadlineExceeded,
    /// Every device that could serve the kernel has its circuit breaker
    /// open (recent failures tripped it); the request was rejected fast
    /// rather than queued onto failing hardware.
    CircuitOpen(String),
    /// The client-side response timeout elapsed (e.g. the request or
    /// response frame was lost on the wire).
    TimedOut,
    /// The target device could not hold the invocation's referenced
    /// object: its memory manager found nothing evictable (everything
    /// pinned or in flight) or the object exceeds device capacity.
    DeviceOom(String),
    /// A flow trigger named a workflow id this server never issued (a
    /// forged [`WorkflowHandle`](crate::WorkflowHandle), or one that
    /// outlived the server that minted it).
    UnknownFlow(String),
    /// A `tenant/name` invocation named a guest kernel (or version) that
    /// is not registered — distinct from [`UnknownKernel`] so clients
    /// can tell a typo'd built-in from a missing registration.
    ///
    /// [`UnknownKernel`]: InvokeError::UnknownKernel
    UnknownGuestKernel(String),
    /// A guest kernel trapped (division by zero, out-of-bounds access,
    /// type confusion). Deterministic: the same input traps identically,
    /// so retries are pointless and the error is returned immediately.
    GuestTrap(String),
    /// A guest kernel exhausted its registered fuel budget mid-run.
    FuelExhausted(String),
    /// The registration-time verifier rejected a guest program: a
    /// reachable instruction provably traps (type mismatch, stack
    /// underflow, or a path that falls off the end without `return`).
    /// The payload carries the verifier's file-free diagnostics
    /// (`seq@pc: [rule] message`, `;`-joined).
    VerifyRejected(String),
}

impl InvokeError {
    /// Every stable [`kind`](InvokeError::kind) label, in declaration
    /// order — lets tests and dashboards enumerate the error space
    /// without constructing each variant.
    pub const KINDS: [&'static str; 16] = [
        "unknown-kernel",
        "bad-input",
        "no-device",
        "runner-failed",
        "disconnected",
        "bad-handle",
        "overloaded",
        "deadline-exceeded",
        "circuit-open",
        "timed-out",
        "device-oom",
        "unknown-flow",
        "unknown-guest-kernel",
        "guest-trap",
        "fuel-exhausted",
        "verify-rejected",
    ];

    /// Short kebab-case name of the error variant (stable across
    /// payloads; used as a metrics label, e.g. `errors.overloaded`).
    pub fn kind(&self) -> &'static str {
        match self {
            InvokeError::UnknownKernel(_) => "unknown-kernel",
            InvokeError::BadInput(_) => "bad-input",
            InvokeError::NoDevice(_) => "no-device",
            InvokeError::RunnerFailed(_) => "runner-failed",
            InvokeError::Disconnected => "disconnected",
            InvokeError::BadHandle => "bad-handle",
            InvokeError::Overloaded { .. } => "overloaded",
            InvokeError::DeadlineExceeded => "deadline-exceeded",
            InvokeError::CircuitOpen(_) => "circuit-open",
            InvokeError::TimedOut => "timed-out",
            InvokeError::DeviceOom(_) => "device-oom",
            InvokeError::UnknownFlow(_) => "unknown-flow",
            InvokeError::UnknownGuestKernel(_) => "unknown-guest-kernel",
            InvokeError::GuestTrap(_) => "guest-trap",
            InvokeError::FuelExhausted(_) => "fuel-exhausted",
            InvokeError::VerifyRejected(_) => "verify-rejected",
        }
    }
}

impl std::fmt::Display for InvokeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InvokeError::UnknownKernel(k) => write!(f, "unknown kernel '{k}'"),
            InvokeError::BadInput(m) => write!(f, "bad input: {m}"),
            InvokeError::NoDevice(c) => write!(f, "no {c} device available"),
            InvokeError::RunnerFailed(m) => write!(f, "task runner failed: {m}"),
            InvokeError::Disconnected => write!(f, "server disconnected"),
            InvokeError::BadHandle => write!(f, "shared-memory handle did not resolve"),
            InvokeError::Overloaded { retry_after } => match retry_after {
                Some(d) => write!(f, "server overloaded; request shed (retry after {d:?})"),
                None => write!(f, "server overloaded; request shed"),
            },
            InvokeError::DeadlineExceeded => {
                write!(f, "deadline passed before dispatch; request shed")
            }
            InvokeError::CircuitOpen(c) => {
                write!(f, "circuit breaker open for every {c} device")
            }
            InvokeError::TimedOut => write!(f, "response timed out"),
            InvokeError::DeviceOom(m) => write!(f, "device out of memory: {m}"),
            InvokeError::UnknownFlow(id) => write!(f, "unknown workflow '{id}'"),
            InvokeError::UnknownGuestKernel(k) => {
                write!(f, "unknown guest kernel '{k}'")
            }
            InvokeError::GuestTrap(m) => write!(f, "guest kernel trapped: {m}"),
            InvokeError::FuelExhausted(m) => {
                write!(f, "guest kernel out of fuel: {m}")
            }
            InvokeError::VerifyRejected(m) => {
                write!(f, "guest program rejected by verifier: {m}")
            }
        }
    }
}

impl std::error::Error for InvokeError {}

/// A kernel invocation response.
#[derive(Debug)]
pub struct Response {
    /// Correlation id copied from the request.
    pub id: u64,
    /// Output payload or failure.
    pub result: Result<DataRef, InvokeError>,
    /// Timing breakdown (present even for failures where possible).
    pub report: Option<InvocationReport>,
    /// Per-step breakdown of a flow trigger (responses to
    /// `_kaas/flow/run` only; present even for failed flows, carrying
    /// the partial results).
    pub flow: Option<WorkflowReport>,
}

impl Response {
    /// Total on-wire size.
    pub fn wire_bytes(&self) -> u64 {
        FRAME_BYTES
            + match &self.result {
                Ok(d) => d.wire_bytes(),
                Err(_) => 64,
            }
    }
}

/// Per-member framing cost inside a batched frame: a correlation id and
/// a length prefix, far smaller than a full [`FRAME_BYTES`] header.
pub const BATCH_MEMBER_BYTES: u64 = 16;

/// The request-direction wire envelope: a single invocation, or a
/// coalesced batch of invocations from one client that share one frame
/// header (and thus one per-message link overhead and one serialization
/// pass — the §4.1 per-call costs are paid once per *frame*).
#[derive(Debug)]
pub enum RequestFrame {
    /// One request, framed exactly as before batching existed.
    One(Request),
    /// Several requests riding one frame header.
    Batch(Vec<Request>),
}

impl RequestFrame {
    /// Total on-wire size: a batch pays one [`FRAME_BYTES`] header plus
    /// a small [`BATCH_MEMBER_BYTES`] sub-header per member instead of a
    /// full frame header each.
    pub fn wire_bytes(&self) -> u64 {
        match self {
            RequestFrame::One(r) => r.wire_bytes(),
            RequestFrame::Batch(rs) => {
                FRAME_BYTES
                    + rs.iter()
                        .map(|r| r.wire_bytes() - FRAME_BYTES + BATCH_MEMBER_BYTES)
                        .sum::<u64>()
            }
        }
    }
}

/// The response-direction wire envelope, symmetric with
/// [`RequestFrame`]: batched requests get one coalesced reply frame.
#[derive(Debug)]
pub enum ResponseFrame {
    /// One response.
    One(Response),
    /// The coalesced replies to a [`RequestFrame::Batch`], in request
    /// order.
    Batch(Vec<Response>),
}

impl ResponseFrame {
    /// Total on-wire size (same amortization as the request direction).
    pub fn wire_bytes(&self) -> u64 {
        match self {
            ResponseFrame::One(r) => r.wire_bytes(),
            ResponseFrame::Batch(rs) => {
                FRAME_BYTES
                    + rs.iter()
                        .map(|r| r.wire_bytes() - FRAME_BYTES + BATCH_MEMBER_BYTES)
                        .sum::<u64>()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_band_wire_size_includes_payload() {
        let req = Request {
            id: 1,
            kernel: "matmul".into(),
            data: DataRef::InBand(Value::F64s(vec![0.0; 1000])),
            tenant: None,
            deadline: None,
            span: None,
            reply_out_of_band: false,
            reply_to_store: false,
        };
        assert!(req.wire_bytes() > 8000);
    }

    #[test]
    fn error_kinds_are_stable_labels() {
        assert_eq!(
            InvokeError::Overloaded { retry_after: None }.kind(),
            "overloaded"
        );
        assert_eq!(
            InvokeError::Overloaded {
                retry_after: Some(Duration::from_millis(3))
            }
            .kind(),
            "overloaded",
            "the retry hint must not change the stable label"
        );
        assert_eq!(InvokeError::DeadlineExceeded.kind(), "deadline-exceeded");
        assert_eq!(
            InvokeError::UnknownKernel("x".into()).kind(),
            "unknown-kernel"
        );
        assert_eq!(
            InvokeError::CircuitOpen("GPU".into()).kind(),
            "circuit-open"
        );
        assert_eq!(InvokeError::TimedOut.kind(), "timed-out");
    }

    #[test]
    fn kinds_table_covers_every_variant() {
        let variants = [
            InvokeError::UnknownKernel(String::new()),
            InvokeError::BadInput(String::new()),
            InvokeError::NoDevice(String::new()),
            InvokeError::RunnerFailed(String::new()),
            InvokeError::Disconnected,
            InvokeError::BadHandle,
            InvokeError::Overloaded { retry_after: None },
            InvokeError::DeadlineExceeded,
            InvokeError::CircuitOpen(String::new()),
            InvokeError::TimedOut,
            InvokeError::DeviceOom(String::new()),
            InvokeError::UnknownFlow(String::new()),
            InvokeError::UnknownGuestKernel(String::new()),
            InvokeError::GuestTrap(String::new()),
            InvokeError::FuelExhausted(String::new()),
            InvokeError::VerifyRejected(String::new()),
        ];
        assert_eq!(variants.len(), InvokeError::KINDS.len());
        for (v, label) in variants.iter().zip(InvokeError::KINDS) {
            assert_eq!(v.kind(), label, "table order matches declaration order");
        }
    }

    #[test]
    fn out_of_band_wire_size_is_tiny() {
        // A handle's wire size is constant regardless of payload size.
        assert_eq!(
            DataRef::OutOfBand(dummy_handle()).wire_bytes(),
            HANDLE_WIRE_BYTES
        );
    }

    fn dummy_handle() -> ShmHandle<Value> {
        // Build a handle through the public API.
        let mut sim = kaas_simtime::Simulation::new();
        sim.block_on(async {
            kaas_net::SharedMemory::host()
                .put(Value::U64(1), 1_000_000)
                .await
        })
    }

    #[test]
    fn object_ref_wire_size_is_constant() {
        let r = ObjectRef {
            hash: 1,
            bytes: 1_000_000,
        };
        assert_eq!(DataRef::Object(r).wire_bytes(), OBJECT_REF_WIRE_BYTES);
        assert_eq!(DataRef::Object(r).payload_bytes(), 1_000_000);
    }

    #[test]
    fn payload_bytes_reports_logical_size() {
        let h = dummy_handle();
        assert_eq!(DataRef::OutOfBand(h).payload_bytes(), 1_000_000);
        assert_eq!(DataRef::InBand(Value::U64(1)).payload_bytes(), 16);
    }

    #[test]
    fn error_messages_are_informative() {
        assert!(InvokeError::UnknownKernel("x".into())
            .to_string()
            .contains('x'));
        assert!(InvokeError::Disconnected
            .to_string()
            .contains("disconnected"));
    }
}
