//! Workflow composition (§3.4: "we map the concept of workflows to the
//! composition of heterogeneous kernels") as server-side dataflow.
//!
//! A [`Workflow`] is a DAG of kernel invocations built with
//! [`WorkflowBuilder`]: steps are added with
//! [`step`](WorkflowBuilder::step) / [`then`](WorkflowBuilder::then) /
//! [`join`](WorkflowBuilder::join), each edge naming which earlier
//! step feeds it and how ([`EdgeTransfer`]). Clients register the DAG
//! once ([`register_workflow`](crate::KaasClient::register_workflow))
//! and trigger it with a single
//! request ([`KaasClient::flow`](crate::KaasClient::flow)): the server
//! walks the graph, chaining each step's output into its consumers as a
//! device-resident object ref — intermediates never travel back to the
//! client, and chained steps on a warm device skip the host→device copy
//! entirely. The reply carries only the final step's output plus a
//! per-step [`WorkflowReport`].
//!
//! This replaces the client-driven `run_workflow` loop (which paid one
//! network round trip per step — the §6 data-shipping architecture) and
//! the all-steps `TransferMode` flag (now a per-edge choice).

use std::time::Duration;

use kaas_kernels::Value;

use crate::metrics::InvocationReport;
use crate::protocol::InvokeError;

/// Tag marking a [`Value`]-encoded workflow definition on the wire.
pub(crate) const FLOW_TAG: &str = "kaas.flow";

/// A step's position inside the workflow being built. Returned by the
/// [`WorkflowBuilder`] step methods and consumed by later edges; ids
/// are only meaningful within the builder that issued them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct StepId(pub(crate) usize);

impl StepId {
    /// The step's index in registration order.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }

    /// An edge from this step that ships its value **inline**: the
    /// consumer re-materializes the bytes (paying deserialization)
    /// instead of receiving a device-resident object ref. Use when the
    /// consumer must not share residency with the producer.
    #[must_use]
    pub fn inline(self) -> Edge {
        Edge {
            from: self,
            transfer: EdgeTransfer::Inline,
        }
    }
}

/// How one workflow edge ships the producer's output to its consumer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EdgeTransfer {
    /// The consumer receives a device-resident object ref: if it lands
    /// on a device that already holds the producer's output, the
    /// host→device copy is skipped entirely (zero-width `copy_in`).
    #[default]
    Resident,
    /// The consumer receives the bytes in-band and pays deserialization
    /// — the per-edge analogue of the old `TransferMode::InBand`.
    Inline,
}

impl EdgeTransfer {
    fn code(self) -> u64 {
        match self {
            EdgeTransfer::Resident => 0,
            EdgeTransfer::Inline => 1,
        }
    }

    fn from_code(code: u64) -> Option<Self> {
        match code {
            0 => Some(EdgeTransfer::Resident),
            1 => Some(EdgeTransfer::Inline),
            _ => None,
        }
    }
}

/// One dataflow edge: which earlier step feeds this one, and how.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// The producing step.
    pub from: StepId,
    /// How the value travels along this edge.
    pub transfer: EdgeTransfer,
}

impl From<StepId> for Edge {
    /// A plain step id is a [`EdgeTransfer::Resident`] edge — the
    /// zero-copy default.
    fn from(from: StepId) -> Self {
        Edge {
            from,
            transfer: EdgeTransfer::default(),
        }
    }
}

/// One node of a workflow DAG: a kernel plus its input edges. A step
/// with no edges is a **source** fed by the trigger input; a step with
/// several edges receives a [`Value::List`] of its inputs in edge
/// order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkflowStep {
    kernel: String,
    inputs: Vec<Edge>,
}

impl WorkflowStep {
    /// The kernel this step invokes.
    pub fn kernel(&self) -> &str {
        &self.kernel
    }

    /// The step's input edges (empty for sources).
    pub fn inputs(&self) -> &[Edge] {
        &self.inputs
    }
}

/// Why a workflow failed validation at [`WorkflowBuilder::build`] time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkflowError {
    /// The workflow has no steps.
    Empty,
    /// More than one step has no consumer — the server would not know
    /// which output to return. The payload lists the sink indices.
    MultipleSinks(Vec<usize>),
    /// An edge references a step at or after its consumer (a forged or
    /// cross-builder [`StepId`]).
    ForwardEdge {
        /// The consuming step's index.
        step: usize,
        /// The referenced producer index.
        from: usize,
    },
}

impl std::fmt::Display for WorkflowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkflowError::Empty => write!(f, "workflow has no steps"),
            WorkflowError::MultipleSinks(sinks) => {
                write!(f, "workflow has several sinks: {sinks:?}")
            }
            WorkflowError::ForwardEdge { step, from } => {
                write!(f, "step {step} consumes step {from}, which is not earlier")
            }
        }
    }
}

impl std::error::Error for WorkflowError {}

/// Builds a [`Workflow`] DAG.
///
/// # Examples
///
/// A diamond — one source fanning out to two steps whose outputs join:
///
/// ```
/// use kaas_core::Workflow;
///
/// let mut b = Workflow::builder("diamond");
/// let src = b.step("preprocess");
/// let left = b.then("ga", src);
/// let right = b.then("ga", src.inline());
/// b.join("blend", [left.into(), right.into()]);
/// let wf = b.build().unwrap();
/// assert_eq!(wf.len(), 4);
/// assert!(!wf.is_linear());
/// ```
#[derive(Debug, Clone)]
pub struct WorkflowBuilder {
    name: String,
    steps: Vec<WorkflowStep>,
    step_attempts: u32,
}

impl WorkflowBuilder {
    fn push(&mut self, kernel: impl Into<String>, inputs: Vec<Edge>) -> StepId {
        let id = StepId(self.steps.len());
        self.steps.push(WorkflowStep {
            kernel: kernel.into(),
            inputs,
        });
        id
    }

    /// Adds a **source** step fed by the flow's trigger input.
    pub fn step(&mut self, kernel: impl Into<String>) -> StepId {
        self.push(kernel, Vec::new())
    }

    /// Adds a step consuming one earlier step's output. Pass a bare
    /// [`StepId`] for the zero-copy resident edge, or
    /// [`StepId::inline`] to ship the bytes inline.
    pub fn then(&mut self, kernel: impl Into<String>, input: impl Into<Edge>) -> StepId {
        self.push(kernel, vec![input.into()])
    }

    /// Adds a fan-in step consuming several earlier outputs; the kernel
    /// receives a [`Value::List`] of them in edge order.
    pub fn join(
        &mut self,
        kernel: impl Into<String>,
        inputs: impl IntoIterator<Item = Edge>,
    ) -> StepId {
        self.push(kernel, inputs.into_iter().collect())
    }

    /// How many times the server retries each step **inside** the flow
    /// on transient failures (runner death, overload, open breaker)
    /// before aborting the whole flow. Default 1: no flow-level retry
    /// beyond the dispatcher's own.
    pub fn step_attempts(&mut self, attempts: u32) -> &mut Self {
        self.step_attempts = attempts.max(1);
        self
    }

    /// Validates the DAG and produces the immutable [`Workflow`].
    ///
    /// # Errors
    ///
    /// [`WorkflowError`] when the graph is empty, has several sinks, or
    /// contains an edge that does not point strictly backwards.
    pub fn build(self) -> Result<Workflow, WorkflowError> {
        let wf = Workflow {
            name: self.name,
            steps: self.steps,
            step_attempts: self.step_attempts,
        };
        wf.validate()?;
        Ok(wf)
    }
}

/// An immutable, validated workflow DAG; build with
/// [`Workflow::builder`] or [`Workflow::linear`], register with
/// [`register_workflow`](crate::KaasClient::register_workflow).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Workflow {
    name: String,
    steps: Vec<WorkflowStep>,
    step_attempts: u32,
}

impl Workflow {
    /// Starts building a workflow DAG.
    pub fn builder(name: impl Into<String>) -> WorkflowBuilder {
        WorkflowBuilder {
            name: name.into(),
            steps: Vec::new(),
            step_attempts: 1,
        }
    }

    /// A linear chain: each kernel consumes the previous one's output
    /// over a resident edge, the first is fed by the trigger input.
    ///
    /// # Errors
    ///
    /// [`WorkflowError::Empty`] when `kernels` yields nothing.
    pub fn linear<I, S>(name: impl Into<String>, kernels: I) -> Result<Workflow, WorkflowError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut b = Workflow::builder(name);
        let mut prev: Option<StepId> = None;
        for kernel in kernels {
            prev = Some(match prev {
                None => b.step(kernel),
                Some(p) => b.then(kernel, p),
            });
        }
        b.build()
    }

    fn validate(&self) -> Result<(), WorkflowError> {
        if self.steps.is_empty() {
            return Err(WorkflowError::Empty);
        }
        for (i, step) in self.steps.iter().enumerate() {
            for edge in &step.inputs {
                if edge.from.0 >= i {
                    return Err(WorkflowError::ForwardEdge {
                        step: i,
                        from: edge.from.0,
                    });
                }
            }
        }
        let consumers = self.consumer_counts();
        let sinks: Vec<usize> = consumers
            .iter()
            .enumerate()
            .filter(|(_, &c)| c == 0)
            .map(|(i, _)| i)
            .collect();
        if sinks.len() > 1 {
            return Err(WorkflowError::MultipleSinks(sinks));
        }
        Ok(())
    }

    /// Workflow name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The DAG's steps, in registration order.
    pub fn steps(&self) -> &[WorkflowStep] {
        &self.steps
    }

    /// Number of steps.
    #[must_use]
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the workflow has no steps.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Per-step flow-level retry budget (see
    /// [`WorkflowBuilder::step_attempts`]).
    pub fn step_attempts(&self) -> u32 {
        self.step_attempts
    }

    /// Whether the DAG is a simple chain: one source, and every later
    /// step consumes exactly the step before it.
    #[must_use]
    pub fn is_linear(&self) -> bool {
        self.steps.iter().enumerate().all(|(i, s)| {
            if i == 0 {
                s.inputs.is_empty()
            } else {
                s.inputs.len() == 1 && s.inputs[0].from.0 == i - 1
            }
        })
    }

    /// How many later steps consume each step's output (the sink has 0).
    pub(crate) fn consumer_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.steps.len()];
        for step in &self.steps {
            for edge in &step.inputs {
                counts[edge.from.0] += 1;
            }
        }
        counts
    }

    /// The sink step's index (the step whose output the flow returns).
    /// Validated workflows have exactly one; ties (unvalidated graphs)
    /// resolve to the last.
    pub(crate) fn sink(&self) -> usize {
        self.consumer_counts()
            .iter()
            .rposition(|&c| c == 0)
            .unwrap_or(self.steps.len().saturating_sub(1))
    }

    /// Encodes the workflow for transport through the request payload
    /// channel (the registration frame).
    pub fn to_value(&self) -> Value {
        let steps = self
            .steps
            .iter()
            .map(|s| {
                let edges = s
                    .inputs
                    .iter()
                    .map(|e| {
                        Value::List(vec![
                            Value::U64(e.from.0 as u64),
                            Value::U64(e.transfer.code()),
                        ])
                    })
                    .collect();
                Value::List(vec![Value::Text(s.kernel.clone()), Value::List(edges)])
            })
            .collect();
        Value::List(vec![
            Value::Text(FLOW_TAG.to_owned()),
            Value::Text(self.name.clone()),
            Value::U64(self.step_attempts as u64),
            Value::List(steps),
        ])
    }

    /// Decodes a workflow previously encoded with
    /// [`to_value`](Workflow::to_value), re-validating the DAG.
    pub fn from_value(v: &Value) -> Option<Workflow> {
        let items = match v.payload() {
            Value::List(items) => items,
            _ => return None,
        };
        let (name, attempts, steps) = match items.as_slice() {
            [Value::Text(tag), Value::Text(name), Value::U64(attempts), Value::List(steps)]
                if tag == FLOW_TAG =>
            {
                (name, attempts, steps)
            }
            _ => return None,
        };
        let mut parsed = Vec::with_capacity(steps.len());
        for step in steps {
            let (kernel, edges) = match step {
                Value::List(parts) => match parts.as_slice() {
                    [Value::Text(kernel), Value::List(edges)] => (kernel, edges),
                    _ => return None,
                },
                _ => return None,
            };
            let mut inputs = Vec::with_capacity(edges.len());
            for edge in edges {
                match edge {
                    Value::List(parts) => match parts.as_slice() {
                        [Value::U64(from), Value::U64(code)] => inputs.push(Edge {
                            from: StepId(*from as usize),
                            transfer: EdgeTransfer::from_code(*code)?,
                        }),
                        _ => return None,
                    },
                    _ => return None,
                }
            }
            parsed.push(WorkflowStep {
                kernel: kernel.clone(),
                inputs,
            });
        }
        let wf = Workflow {
            name: name.clone(),
            steps: parsed,
            step_attempts: (*attempts).max(1) as u32,
        };
        wf.validate().ok()?;
        Some(wf)
    }
}

/// A registered workflow on a server: the handle returned by
/// [`register_workflow`](crate::KaasClient::register_workflow) and
/// passed to
/// [`KaasClient::flow`](crate::KaasClient::flow) to trigger runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkflowHandle {
    id: u64,
    name: String,
    steps: usize,
}

impl WorkflowHandle {
    /// Builds a handle from raw parts. Normally obtained from
    /// [`register_workflow`](crate::KaasClient::register_workflow);
    /// constructing one by hand (or after a server restart) yields a
    /// *forged* handle — triggering it fails with
    /// [`InvokeError::UnknownFlow`](crate::InvokeError::UnknownFlow)
    /// rather than panicking.
    pub fn new(id: u64, name: impl Into<String>, steps: usize) -> Self {
        WorkflowHandle {
            id,
            name: name.into(),
            steps,
        }
    }

    /// The server-assigned flow id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The workflow's name as registered.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of steps in the registered DAG.
    #[must_use]
    pub fn len(&self) -> usize {
        self.steps
    }

    /// Whether the registered DAG has no steps (never true for handles
    /// from a successful registration).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.steps == 0
    }
}

/// The outcome of one step inside a flow run.
#[derive(Debug, Clone, PartialEq)]
pub struct StepReport {
    /// The step's index in the DAG.
    pub step: usize,
    /// Kernel name.
    pub kernel: String,
    /// Flow-level attempts consumed (1 = first try succeeded).
    pub attempts: u32,
    /// Whether the step consumed a device-resident intermediate with a
    /// cache hit — its `copy_in` was zero because the producer's output
    /// never left the device.
    pub chained: bool,
    /// The step's failure, if it (and the flow) failed.
    pub error: Option<InvokeError>,
    /// Server-side timing breakdown (absent when the step never ran).
    pub report: Option<InvocationReport>,
}

/// The per-step breakdown of one flow run, returned alongside the final
/// output (and, on failure, inside [`FlowError`] with the steps that
/// did complete).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkflowReport {
    /// The triggering flow's id.
    pub flow: u64,
    /// The workflow's name.
    pub name: String,
    /// Per-step outcomes, in step order (steps that never started are
    /// absent).
    pub steps: Vec<StepReport>,
}

impl WorkflowReport {
    /// How many steps consumed their input as a device-resident
    /// intermediate with zero `copy_in` (the chained fast path).
    #[must_use]
    pub fn chained_hits(&self) -> usize {
        self.steps.iter().filter(|s| s.chained).count()
    }
}

/// Result of triggering a registered workflow.
#[derive(Debug)]
pub struct WorkflowRun {
    /// Output of the sink step.
    pub output: Value,
    /// Per-step server reports.
    pub report: WorkflowReport,
    /// Client-observed end-to-end latency.
    pub latency: Duration,
    /// Client↔server round trips the run cost (1 for a single-site
    /// flow; one per segment for federated flows).
    pub round_trips: usize,
}

impl WorkflowRun {
    /// Total device-side kernel time across steps.
    #[must_use]
    pub fn kernel_time(&self) -> Duration {
        self.report
            .steps
            .iter()
            .filter_map(|s| s.report.as_ref())
            .map(InvocationReport::kernel_time)
            .sum()
    }

    /// Number of cold starts the run triggered.
    #[must_use]
    pub fn cold_starts(&self) -> usize {
        self.report
            .steps
            .iter()
            .filter_map(|s| s.report.as_ref())
            .filter(|r| r.cold_start)
            .count()
    }

    /// Client↔server round trips the run cost.
    #[must_use]
    pub fn round_trips(&self) -> usize {
        self.round_trips
    }

    /// Steps that chained device-resident with zero `copy_in`.
    #[must_use]
    pub fn chained_hits(&self) -> usize {
        self.report.chained_hits()
    }
}

/// A failed flow run: the first step error plus every step that did
/// complete (partial results for debugging and billing).
#[derive(Debug, Clone, PartialEq)]
pub struct FlowError {
    /// The failure that aborted the flow.
    pub error: InvokeError,
    /// Outcomes of the steps that ran before the abort, in step order.
    pub partial: Vec<StepReport>,
}

impl std::fmt::Display for FlowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "flow failed after {} completed steps: {}",
            self.partial.iter().filter(|s| s.error.is_none()).count(),
            self.error
        )
    }
}

impl std::error::Error for FlowError {}

impl From<InvokeError> for FlowError {
    fn from(error: InvokeError) -> Self {
        FlowError {
            error,
            partial: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_builder_chains_steps() {
        let wf = Workflow::linear("w", ["a", "b", "c"]).unwrap();
        assert_eq!(wf.name(), "w");
        assert_eq!(wf.len(), 3);
        assert!(!wf.is_empty());
        assert!(wf.is_linear());
        assert_eq!(wf.sink(), 2);
        assert_eq!(wf.steps()[1].kernel(), "b");
        assert_eq!(wf.steps()[1].inputs()[0].from, StepId(0));
        assert_eq!(wf.steps()[1].inputs()[0].transfer, EdgeTransfer::Resident);
    }

    #[test]
    fn empty_workflow_is_rejected() {
        assert_eq!(
            Workflow::linear("w", Vec::<String>::new()).unwrap_err(),
            WorkflowError::Empty
        );
    }

    #[test]
    fn diamond_validates_with_one_sink() {
        let mut b = Workflow::builder("d");
        let src = b.step("pre");
        let l = b.then("ga", src);
        let r = b.then("ga", src.inline());
        b.join("blend", [l.into(), r.into()]);
        let wf = b.build().unwrap();
        assert_eq!(wf.len(), 4);
        assert!(!wf.is_linear());
        assert_eq!(wf.sink(), 3);
        assert_eq!(wf.consumer_counts(), vec![2, 1, 1, 0]);
        assert_eq!(wf.steps()[2].inputs()[0].transfer, EdgeTransfer::Inline);
    }

    #[test]
    fn multiple_sinks_are_rejected() {
        let mut b = Workflow::builder("m");
        let src = b.step("pre");
        b.then("ga", src);
        b.then("ga", src);
        assert_eq!(
            b.build().unwrap_err(),
            WorkflowError::MultipleSinks(vec![1, 2])
        );
    }

    #[test]
    fn forged_edge_is_rejected() {
        let mut other = Workflow::builder("other");
        other.step("pre");
        let far = other.then("ga", StepId(0));
        let mut b = Workflow::builder("f");
        b.then("ga", far); // references step 1 from step 0
        assert_eq!(
            b.build().unwrap_err(),
            WorkflowError::ForwardEdge { step: 0, from: 1 }
        );
    }

    #[test]
    fn wire_roundtrip_preserves_the_dag() {
        let mut b = Workflow::builder("d");
        let src = b.step("pre");
        let l = b.then("ga", src);
        let r = b.then("ga", src.inline());
        b.join("blend", [l.into(), r.into()]);
        b.step_attempts(3);
        let wf = b.build().unwrap();
        let decoded = Workflow::from_value(&wf.to_value()).unwrap();
        assert_eq!(decoded, wf);
        assert_eq!(decoded.step_attempts(), 3);
        assert!(Workflow::from_value(&Value::U64(1)).is_none());
    }

    #[test]
    fn invalid_encodings_are_rejected() {
        // A forward edge survives encoding but not decoding.
        let v = Value::List(vec![
            Value::Text(FLOW_TAG.to_owned()),
            Value::Text("bad".into()),
            Value::U64(1),
            Value::List(vec![Value::List(vec![
                Value::Text("a".into()),
                Value::List(vec![Value::List(vec![Value::U64(5), Value::U64(0)])]),
            ])]),
        ]);
        assert!(Workflow::from_value(&v).is_none());
    }

    #[test]
    fn handle_accessors() {
        let h = WorkflowHandle::new(7, "w", 3);
        assert_eq!(h.id(), 7);
        assert_eq!(h.name(), "w");
        assert_eq!(h.len(), 3);
        assert!(!h.is_empty());
    }
}
