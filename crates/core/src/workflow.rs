//! Workflow composition (§3.4: "we map the concept of workflows to the
//! composition of heterogeneous kernels"): a declarative chain of
//! registered kernels, executed step by step through a client, each
//! step's output feeding the next step's input.

use std::time::Duration;

use kaas_kernels::Value;
use kaas_simtime::now;

use crate::client::KaasClient;
use crate::metrics::InvocationReport;
use crate::protocol::InvokeError;

/// How a workflow step ships its data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransferMode {
    /// Shared-memory out-of-band transfer (same-host clients).
    #[default]
    OutOfBand,
    /// Serialized in-band transfer.
    InBand,
}

/// A declarative chain of kernel invocations.
///
/// # Examples
///
/// ```
/// use kaas_core::Workflow;
///
/// let wf = Workflow::new("image-pipeline")
///     .step("preprocess")
///     .step("bitmap")
///     .step("resnet50");
/// assert_eq!(wf.len(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Workflow {
    name: String,
    steps: Vec<String>,
    mode: TransferMode,
}

impl Workflow {
    /// Creates an empty workflow.
    pub fn new(name: impl Into<String>) -> Self {
        Workflow {
            name: name.into(),
            steps: Vec::new(),
            mode: TransferMode::default(),
        }
    }

    /// Appends a kernel invocation step.
    #[must_use]
    pub fn step(mut self, kernel: impl Into<String>) -> Self {
        self.steps.push(kernel.into());
        self
    }

    /// Sets the data-transfer mode for every step.
    #[must_use]
    pub fn with_transfer(mut self, mode: TransferMode) -> Self {
        self.mode = mode;
        self
    }

    /// Workflow name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The kernel names, in order.
    pub fn steps(&self) -> &[String] {
        &self.steps
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the workflow has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

/// Result of executing a [`Workflow`].
#[derive(Debug)]
pub struct WorkflowRun {
    /// Output of the final step.
    pub output: Value,
    /// Per-step server reports, in step order.
    pub reports: Vec<InvocationReport>,
    /// Client-observed end-to-end latency.
    pub latency: Duration,
}

impl WorkflowRun {
    /// Total device-side kernel time across steps.
    pub fn kernel_time(&self) -> Duration {
        self.reports.iter().map(InvocationReport::kernel_time).sum()
    }

    /// Number of cold starts the run triggered.
    pub fn cold_starts(&self) -> usize {
        self.reports.iter().filter(|r| r.cold_start).count()
    }
}

impl KaasClient {
    /// Executes `workflow` step by step, threading each output into the
    /// next step's input.
    ///
    /// # Errors
    ///
    /// Fails fast with the first step's [`InvokeError`]; prior steps'
    /// effects (and reports) are discarded with the run.
    pub async fn run_workflow(
        &mut self,
        workflow: &Workflow,
        input: Value,
    ) -> Result<WorkflowRun, InvokeError> {
        let start = now();
        let mut current = input;
        let mut reports = Vec::with_capacity(workflow.len());
        for step in workflow.steps() {
            let call = self.call(step).arg(current);
            let inv = match workflow.mode {
                TransferMode::OutOfBand => call.out_of_band().send().await?,
                TransferMode::InBand => call.send().await?,
            };
            current = inv.output;
            reports.push(inv.report);
        }
        Ok(WorkflowRun {
            output: current,
            reports,
            latency: now() - start,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_steps() {
        let wf = Workflow::new("w").step("a").step("b");
        assert_eq!(wf.name(), "w");
        assert_eq!(wf.steps(), ["a".to_owned(), "b".to_owned()]);
        assert!(!wf.is_empty());
        assert_eq!(
            wf.with_transfer(TransferMode::InBand).mode,
            TransferMode::InBand
        );
    }

    #[test]
    fn empty_workflow_reports_empty() {
        let wf = Workflow::new("w");
        assert!(wf.is_empty());
        assert_eq!(wf.len(), 0);
    }
}
