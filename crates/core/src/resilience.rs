//! Resilience policies: retry/backoff, circuit breaking, health-driven
//! eviction, and degraded fallback routing.
//!
//! The dispatch path composes four independent knobs, all configured on
//! [`ServerConfig`](crate::ServerConfig) and all defaulting to the
//! pre-resilience behaviour so existing simulations replay unchanged:
//!
//! * [`RetryConfig`] — how many attempts a failed invocation gets and how
//!   long to wait between them ([`RetryPolicy`]). Backoff jitter is a
//!   pure function of `(seed, request id, attempt)`, so identical runs
//!   produce identical waits.
//! * [`BreakerConfig`] / [`CircuitBreaker`] — per-device failure
//!   accounting. A device whose breaker is open receives no placements
//!   until a cooldown elapses; a half-open breaker admits probes and
//!   closes again after enough successes.
//! * [`EvictionConfig`] — how many consecutive failures a runner slot
//!   absorbs before it is quarantined (retired and replaced).
//! * [`FallbackConfig`] — degraded routing: when a kernel's preferred
//!   device class has no usable device, dispatch may fall back to a
//!   slower class (e.g. GPU→CPU) instead of failing, surfacing the fact
//!   via [`InvocationReport::degraded`](crate::InvocationReport).

use std::cell::Cell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;
use std::time::Duration;

use kaas_accel::{DeviceClass, DeviceId};
use kaas_simtime::rng::stream_rng;
use kaas_simtime::{now, SimTime};

/// Decides how long to wait before retry attempt `attempt` (1-based: the
/// wait before the second try is `backoff(1, ..)`).
///
/// Policies must be deterministic: any jitter has to derive from the
/// `(request, attempt)` arguments, never from shared mutable state, so
/// that identical simulations replay identical schedules regardless of
/// task interleaving.
pub trait RetryPolicy: fmt::Debug {
    /// Human-readable policy name (used in traces).
    fn name(&self) -> &'static str;

    /// The wait before retry `attempt` (1-based) of request `request`.
    fn backoff(&self, attempt: u32, request: u64) -> Duration;

    /// Clones the policy into a new box ([`Box<dyn RetryPolicy>`] itself
    /// implements [`Clone`] through this).
    fn box_clone(&self) -> Box<dyn RetryPolicy>;
}

impl Clone for Box<dyn RetryPolicy> {
    fn clone(&self) -> Self {
        self.box_clone()
    }
}

/// Retry immediately, no wait — the pre-resilience behaviour.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoBackoff;

impl RetryPolicy for NoBackoff {
    fn name(&self) -> &'static str {
        "none"
    }

    fn backoff(&self, _attempt: u32, _request: u64) -> Duration {
        Duration::ZERO
    }

    fn box_clone(&self) -> Box<dyn RetryPolicy> {
        Box::new(*self)
    }
}

/// A constant wait between attempts.
#[derive(Debug, Clone, Copy)]
pub struct FixedBackoff {
    /// The wait applied before every retry.
    pub delay: Duration,
}

impl FixedBackoff {
    /// Creates a fixed-delay policy.
    pub fn new(delay: Duration) -> Self {
        FixedBackoff { delay }
    }
}

impl RetryPolicy for FixedBackoff {
    fn name(&self) -> &'static str {
        "fixed"
    }

    fn backoff(&self, _attempt: u32, _request: u64) -> Duration {
        self.delay
    }

    fn box_clone(&self) -> Box<dyn RetryPolicy> {
        Box::new(*self)
    }
}

/// Exponential backoff with a cap and deterministic jitter.
///
/// The wait before retry `n` is `min(base × multiplier^(n-1), cap)`,
/// scaled by a jitter factor drawn from `[1 - jitter, 1]`. The draw is a
/// pure function of `(seed, request, attempt)` via
/// [`kaas_simtime::rng::stream_rng`], so two runs of the same seeded
/// simulation back off identically.
#[derive(Debug, Clone, Copy)]
pub struct ExponentialBackoff {
    /// First retry wait.
    pub base: Duration,
    /// Growth factor per attempt.
    pub multiplier: f64,
    /// Upper bound on any single wait.
    pub cap: Duration,
    /// Jitter fraction in `[0, 1]`: each wait is scaled by a factor
    /// drawn uniformly from `[1 - jitter, 1]`. Zero disables jitter.
    pub jitter: f64,
    /// Seed decorrelating this policy's jitter from other randomness.
    pub seed: u64,
}

impl ExponentialBackoff {
    /// Creates a policy with `multiplier` 2, a 10 s cap, and no jitter.
    pub fn new(base: Duration) -> Self {
        ExponentialBackoff {
            base,
            multiplier: 2.0,
            cap: Duration::from_secs(10),
            jitter: 0.0,
            seed: 0,
        }
    }

    /// Sets the cap on any single wait.
    pub fn with_cap(mut self, cap: Duration) -> Self {
        self.cap = cap;
        self
    }

    /// Enables deterministic jitter: waits scale by a factor drawn from
    /// `[1 - jitter, 1]`, seeded per `(request, attempt)`.
    pub fn with_jitter(mut self, jitter: f64, seed: u64) -> Self {
        self.jitter = jitter.clamp(0.0, 1.0);
        self.seed = seed;
        self
    }
}

impl RetryPolicy for ExponentialBackoff {
    fn name(&self) -> &'static str {
        "exponential"
    }

    fn backoff(&self, attempt: u32, request: u64) -> Duration {
        let exp = self.multiplier.powi(attempt.saturating_sub(1) as i32);
        let raw = self.base.as_secs_f64() * exp;
        let capped = raw.min(self.cap.as_secs_f64());
        let scale = if self.jitter > 0.0 {
            let mut rng = stream_rng(self.seed ^ request, attempt as u64);
            1.0 - self.jitter * rng.gen::<f64>()
        } else {
            1.0
        };
        Duration::from_secs_f64(capped * scale)
    }

    fn box_clone(&self) -> Box<dyn RetryPolicy> {
        Box::new(*self)
    }
}

/// Retry behaviour of the dispatch path.
///
/// The default reproduces the historical hard-coded behaviour: three
/// attempts, immediate retries, no budget.
#[derive(Debug, Clone)]
pub struct RetryConfig {
    /// Total attempts per invocation (1 = no retries).
    pub max_attempts: u32,
    /// Wait policy between attempts.
    pub backoff: Box<dyn RetryPolicy>,
    /// Cap on the *summed* backoff wait per invocation; when the next
    /// wait would exceed the remaining budget it is truncated to fit, and
    /// a zero remaining budget stops retrying early. `None` = unbounded.
    pub budget: Option<Duration>,
}

impl Default for RetryConfig {
    fn default() -> Self {
        RetryConfig {
            max_attempts: 3,
            backoff: Box::new(NoBackoff),
            budget: None,
        }
    }
}

impl RetryConfig {
    /// Sets the total number of attempts (clamped to at least 1).
    pub fn with_max_attempts(mut self, attempts: u32) -> Self {
        self.max_attempts = attempts.max(1);
        self
    }

    /// Sets the backoff policy.
    pub fn with_backoff(mut self, policy: impl RetryPolicy + 'static) -> Self {
        self.backoff = Box::new(policy);
        self
    }

    /// Caps the summed backoff wait per invocation.
    pub fn with_budget(mut self, budget: Duration) -> Self {
        self.budget = Some(budget);
        self
    }
}

/// Tuning for a [`RetryBudget`] token bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryBudgetConfig {
    /// Tokens earned per fresh (non-retry) request, as a percentage of
    /// a whole retry: `10` means retries may be at most ~10% of fresh
    /// traffic in steady state.
    pub ratio_pct: u32,
    /// Bucket capacity in whole retries — the retry burst allowed after
    /// a quiet period (and the budget available before any fresh
    /// traffic has accrued tokens).
    pub burst: u32,
}

impl Default for RetryBudgetConfig {
    fn default() -> Self {
        RetryBudgetConfig {
            ratio_pct: 10,
            burst: 10,
        }
    }
}

impl RetryBudgetConfig {
    /// Sets the retry-to-fresh percentage (clamped to at least 1).
    pub fn with_ratio_pct(mut self, pct: u32) -> Self {
        self.ratio_pct = pct.max(1);
        self
    }

    /// Sets the bucket capacity in whole retries (at least 1).
    pub fn with_burst(mut self, burst: u32) -> Self {
        self.burst = burst.max(1);
        self
    }
}

/// A token bucket that caps the retry-to-fresh request ratio, making
/// retry storms structurally impossible: under sustained overload the
/// extra load from retries converges to `ratio_pct`% of fresh traffic
/// instead of multiplying it by the attempt count.
///
/// Each fresh request deposits `ratio_pct`% of a token (tracked in
/// integral millitokens — no floats, so replays are exact); each retry
/// withdraws a whole token or is denied. The bucket starts full
/// (`burst` tokens) and is capped there.
///
/// Shared via [`Rc`] so one budget can govern every retry loop of a
/// client — or a server's flow executor — at once.
#[derive(Debug)]
pub struct RetryBudget {
    config: RetryBudgetConfig,
    /// Millitokens; one retry costs 1 000.
    tokens: Cell<u64>,
    fresh: Cell<u64>,
    spent: Cell<u64>,
    exhausted: Cell<u64>,
}

impl RetryBudget {
    /// Creates a full bucket.
    pub fn new(config: RetryBudgetConfig) -> Self {
        RetryBudget {
            config,
            tokens: Cell::new(u64::from(config.burst) * 1000),
            fresh: Cell::new(0),
            spent: Cell::new(0),
            exhausted: Cell::new(0),
        }
    }

    /// Records a fresh (non-retry) request, accruing `ratio_pct`% of a
    /// retry token, capped at `burst` whole tokens.
    pub fn note_fresh(&self) {
        self.fresh.set(self.fresh.get() + 1);
        let cap = u64::from(self.config.burst) * 1000;
        let next = self.tokens.get() + u64::from(self.config.ratio_pct) * 10;
        self.tokens.set(next.min(cap));
    }

    /// Attempts to spend one retry token. Returns `false` — and counts
    /// the denial — when the bucket holds less than a whole token: the
    /// caller must give up instead of retrying.
    pub fn try_spend(&self) -> bool {
        let t = self.tokens.get();
        if t >= 1000 {
            self.tokens.set(t - 1000);
            self.spent.set(self.spent.get() + 1);
            true
        } else {
            self.exhausted.set(self.exhausted.get() + 1);
            false
        }
    }

    /// Fresh requests recorded.
    pub fn fresh(&self) -> u64 {
        self.fresh.get()
    }

    /// Retries granted.
    pub fn spent(&self) -> u64 {
        self.spent.get()
    }

    /// Retries denied for an empty bucket.
    pub fn exhausted(&self) -> u64 {
        self.exhausted.get()
    }
}

/// The three circuit-breaker states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum BreakerState {
    /// Healthy: all placements allowed.
    Closed,
    /// Tripped: no placements until the cooldown elapses.
    Open,
    /// Probing: placements allowed; enough successes re-close, any
    /// failure re-opens.
    HalfOpen,
}

impl fmt::Display for BreakerState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        };
        f.write_str(s)
    }
}

/// Tuning for per-device [`CircuitBreaker`]s.
#[derive(Debug, Clone, Copy)]
pub struct BreakerConfig {
    /// Consecutive failures that trip a closed breaker open.
    pub failure_threshold: u32,
    /// How long an open breaker blocks placements before probing.
    pub cooldown: Duration,
    /// Consecutive half-open successes that re-close the breaker.
    pub success_threshold: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 5,
            cooldown: Duration::from_secs(1),
            success_threshold: 2,
        }
    }
}

impl BreakerConfig {
    /// Sets the consecutive-failure trip threshold (at least 1).
    pub fn with_failure_threshold(mut self, n: u32) -> Self {
        self.failure_threshold = n.max(1);
        self
    }

    /// Sets the open-state cooldown.
    pub fn with_cooldown(mut self, cooldown: Duration) -> Self {
        self.cooldown = cooldown;
        self
    }

    /// Sets the half-open success threshold (at least 1).
    pub fn with_success_threshold(mut self, n: u32) -> Self {
        self.success_threshold = n.max(1);
        self
    }
}

/// A per-device circuit breaker (closed → open → half-open → closed).
///
/// Open → half-open happens lazily on the next
/// [`allows`](CircuitBreaker::allows)/[`state`](CircuitBreaker::state)
/// query once the cooldown has elapsed in virtual time — no background
/// task, so breakers add no events to the simulation on their own.
#[derive(Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: Cell<BreakerState>,
    consecutive_failures: Cell<u32>,
    half_open_successes: Cell<u32>,
    opened_at: Cell<SimTime>,
    trips: Cell<u64>,
}

impl CircuitBreaker {
    /// Creates a closed breaker.
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            state: Cell::new(BreakerState::Closed),
            consecutive_failures: Cell::new(0),
            half_open_successes: Cell::new(0),
            opened_at: Cell::new(SimTime::ZERO),
            trips: Cell::new(0),
        }
    }

    /// The current state, advancing open → half-open if the cooldown has
    /// elapsed.
    pub fn state(&self) -> BreakerState {
        if self.state.get() == BreakerState::Open
            && now() >= self.opened_at.get() + self.config.cooldown
        {
            self.state.set(BreakerState::HalfOpen);
            self.half_open_successes.set(0);
        }
        self.state.get()
    }

    /// Whether placements on this device are currently allowed.
    pub fn allows(&self) -> bool {
        self.state() != BreakerState::Open
    }

    /// Records a successful invocation on the device.
    pub fn record_success(&self) {
        match self.state() {
            BreakerState::Closed => self.consecutive_failures.set(0),
            BreakerState::HalfOpen => {
                let n = self.half_open_successes.get() + 1;
                if n >= self.config.success_threshold {
                    self.state.set(BreakerState::Closed);
                    self.consecutive_failures.set(0);
                } else {
                    self.half_open_successes.set(n);
                }
            }
            BreakerState::Open => {}
        }
    }

    /// Records a failed invocation on the device; may trip the breaker.
    pub fn record_failure(&self) {
        match self.state() {
            BreakerState::Closed => {
                let n = self.consecutive_failures.get() + 1;
                self.consecutive_failures.set(n);
                if n >= self.config.failure_threshold {
                    self.trip();
                }
            }
            BreakerState::HalfOpen => self.trip(),
            BreakerState::Open => {}
        }
    }

    /// Times the breaker tripped open over its lifetime.
    pub fn trips(&self) -> u64 {
        self.trips.get()
    }

    fn trip(&self) {
        self.state.set(BreakerState::Open);
        self.opened_at.set(now());
        self.consecutive_failures.set(0);
        self.half_open_successes.set(0);
        self.trips.set(self.trips.get() + 1);
    }
}

/// Lazily allocated per-device breakers, keyed by [`DeviceId`].
///
/// When constructed without a config ([`BreakerBank::disabled`]) every
/// query reports a permanently closed breaker and records nothing — the
/// zero-cost default.
#[derive(Debug, Default)]
pub struct BreakerBank {
    config: Option<BreakerConfig>,
    breakers: std::cell::RefCell<BTreeMap<DeviceId, Rc<CircuitBreaker>>>,
}

impl BreakerBank {
    /// Creates a bank allocating a breaker per device on first use.
    pub fn new(config: BreakerConfig) -> Self {
        BreakerBank {
            config: Some(config),
            breakers: Default::default(),
        }
    }

    /// Creates a disabled bank: every device always reads as allowed.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Whether circuit breaking is enabled.
    pub fn enabled(&self) -> bool {
        self.config.is_some()
    }

    /// The breaker for `device` (allocated on first use); `None` when
    /// the bank is disabled.
    pub fn for_device(&self, device: DeviceId) -> Option<Rc<CircuitBreaker>> {
        let config = self.config?;
        Some(Rc::clone(
            self.breakers
                .borrow_mut()
                .entry(device)
                .or_insert_with(|| Rc::new(CircuitBreaker::new(config))),
        ))
    }

    /// Whether placements on `device` are allowed (`true` when disabled).
    pub fn allows(&self, device: DeviceId) -> bool {
        self.for_device(device).is_none_or(|b| b.allows())
    }

    /// Current state of every allocated breaker, in device order.
    pub fn states(&self) -> BTreeMap<DeviceId, BreakerState> {
        self.breakers
            .borrow()
            .iter()
            .map(|(id, b)| (*id, b.state()))
            .collect()
    }
}

/// When a runner slot is quarantined for persistent failure.
#[derive(Debug, Clone, Copy)]
pub struct EvictionConfig {
    /// Consecutive failures a slot absorbs before being quarantined
    /// (retired and replaced). The default of 1 reproduces the historical
    /// behaviour: any failure retires the runner.
    pub failure_threshold: u32,
}

impl Default for EvictionConfig {
    fn default() -> Self {
        EvictionConfig {
            failure_threshold: 1,
        }
    }
}

impl EvictionConfig {
    /// Sets the consecutive-failure threshold (at least 1).
    pub fn with_failure_threshold(mut self, n: u32) -> Self {
        self.failure_threshold = n.max(1);
        self
    }
}

/// Degraded fallback routing: device classes to try when the preferred
/// class has no usable device.
///
/// The default is empty (no fallback — placement failures surface as
/// errors, the historical behaviour).
#[derive(Debug, Clone, Default)]
pub struct FallbackConfig {
    routes: Vec<(DeviceClass, DeviceClass)>,
}

impl FallbackConfig {
    /// No fallback routes (the default).
    pub fn none() -> Self {
        Self::default()
    }

    /// The classic degradation: GPU work falls back to CPU.
    pub fn gpu_to_cpu() -> Self {
        Self::none().with_route(DeviceClass::Gpu, DeviceClass::Cpu)
    }

    /// Adds a route: when `from` has no usable device, try `to`.
    pub fn with_route(mut self, from: DeviceClass, to: DeviceClass) -> Self {
        self.routes.push((from, to));
        self
    }

    /// The fallback class for `from`, if a route is configured.
    pub fn next(&self, from: DeviceClass) -> Option<DeviceClass> {
        self.routes
            .iter()
            .find(|(f, _)| *f == from)
            .map(|(_, t)| *t)
    }

    /// Whether any routes are configured.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kaas_simtime::{sleep, Simulation};

    #[test]
    fn default_retry_config_matches_historical_behaviour() {
        let c = RetryConfig::default();
        assert_eq!(c.max_attempts, 3);
        assert_eq!(c.backoff.backoff(1, 42), Duration::ZERO);
        assert!(c.budget.is_none());
    }

    #[test]
    fn exponential_backoff_grows_and_caps() {
        let p = ExponentialBackoff::new(Duration::from_millis(100))
            .with_cap(Duration::from_millis(350));
        assert_eq!(p.backoff(1, 0), Duration::from_millis(100));
        assert_eq!(p.backoff(2, 0), Duration::from_millis(200));
        // 400 ms capped to 350 ms.
        assert_eq!(p.backoff(3, 0), Duration::from_millis(350));
    }

    #[test]
    fn jitter_is_deterministic_per_request_and_attempt() {
        let p = ExponentialBackoff::new(Duration::from_millis(100)).with_jitter(0.5, 7);
        let a = p.backoff(2, 11);
        let b = p.backoff(2, 11);
        assert_eq!(a, b, "same (request, attempt) ⇒ same wait");
        assert_ne!(
            p.backoff(2, 11),
            p.backoff(2, 12),
            "different requests decorrelate"
        );
        // Jittered waits stay within [1 - jitter, 1] × nominal.
        let nominal = Duration::from_millis(200);
        assert!(a <= nominal && a >= nominal / 2, "a={a:?}");
    }

    #[test]
    fn cloned_policy_boxes_agree() {
        let p: Box<dyn RetryPolicy> =
            Box::new(ExponentialBackoff::new(Duration::from_millis(50)).with_jitter(0.3, 3));
        let q = p.clone();
        assert_eq!(p.backoff(3, 9), q.backoff(3, 9));
        assert_eq!(p.name(), "exponential");
    }

    #[test]
    fn retry_budget_caps_the_retry_to_fresh_ratio() {
        let b = RetryBudget::new(
            RetryBudgetConfig::default()
                .with_ratio_pct(10)
                .with_burst(5),
        );
        // The initial burst drains...
        for _ in 0..5 {
            assert!(b.try_spend());
        }
        // ...then an empty bucket denies.
        assert!(!b.try_spend());
        assert_eq!(b.exhausted(), 1);
        // 10 fresh requests earn exactly one retry.
        for _ in 0..10 {
            b.note_fresh();
        }
        assert!(b.try_spend());
        assert!(!b.try_spend());
        assert_eq!((b.fresh(), b.spent(), b.exhausted()), (10, 6, 2));
    }

    #[test]
    fn retry_budget_refill_caps_at_burst() {
        let b = RetryBudget::new(
            RetryBudgetConfig::default()
                .with_ratio_pct(100)
                .with_burst(2),
        );
        for _ in 0..50 {
            b.note_fresh();
        }
        assert!(b.try_spend());
        assert!(b.try_spend());
        assert!(
            !b.try_spend(),
            "quiet periods must not bank unbounded retries"
        );
    }

    #[test]
    fn breaker_trips_after_threshold_and_recovers() {
        let mut sim = Simulation::new();
        sim.block_on(async {
            let b = CircuitBreaker::new(
                BreakerConfig::default()
                    .with_failure_threshold(3)
                    .with_cooldown(Duration::from_secs(1))
                    .with_success_threshold(2),
            );
            assert_eq!(b.state(), BreakerState::Closed);
            b.record_failure();
            b.record_failure();
            assert!(b.allows(), "below threshold stays closed");
            b.record_failure();
            assert_eq!(b.state(), BreakerState::Open);
            assert!(!b.allows());
            assert_eq!(b.trips(), 1);

            // Cooldown elapses in virtual time → half-open probes.
            sleep(Duration::from_secs(1)).await;
            assert_eq!(b.state(), BreakerState::HalfOpen);
            assert!(b.allows());

            b.record_success();
            assert_eq!(
                b.state(),
                BreakerState::HalfOpen,
                "one success is not enough"
            );
            b.record_success();
            assert_eq!(b.state(), BreakerState::Closed);
        });
    }

    #[test]
    fn half_open_failure_reopens() {
        let mut sim = Simulation::new();
        sim.block_on(async {
            let b = CircuitBreaker::new(
                BreakerConfig::default()
                    .with_failure_threshold(1)
                    .with_cooldown(Duration::from_millis(100)),
            );
            b.record_failure();
            assert_eq!(b.state(), BreakerState::Open);
            sleep(Duration::from_millis(100)).await;
            assert_eq!(b.state(), BreakerState::HalfOpen);
            b.record_failure();
            assert_eq!(b.state(), BreakerState::Open);
            assert_eq!(b.trips(), 2);
        });
    }

    #[test]
    fn success_resets_consecutive_failures() {
        let mut sim = Simulation::new();
        sim.block_on(async {
            let b = CircuitBreaker::new(BreakerConfig::default().with_failure_threshold(2));
            b.record_failure();
            b.record_success();
            b.record_failure();
            assert_eq!(b.state(), BreakerState::Closed, "streak was broken");
        });
    }

    #[test]
    fn disabled_bank_always_allows() {
        let bank = BreakerBank::disabled();
        assert!(!bank.enabled());
        assert!(bank.allows(DeviceId(3)));
        assert!(bank.for_device(DeviceId(3)).is_none());
        assert!(bank.states().is_empty());
    }

    #[test]
    fn bank_allocates_one_breaker_per_device() {
        let mut sim = Simulation::new();
        sim.block_on(async {
            let bank = BreakerBank::new(BreakerConfig::default().with_failure_threshold(1));
            let b = bank.for_device(DeviceId(0)).unwrap();
            b.record_failure();
            assert!(!bank.allows(DeviceId(0)));
            assert!(bank.allows(DeviceId(1)), "other devices unaffected");
            let states = bank.states();
            assert_eq!(states[&DeviceId(0)], BreakerState::Open);
        });
    }

    #[test]
    fn fallback_routes_resolve() {
        let f = FallbackConfig::gpu_to_cpu();
        assert_eq!(f.next(DeviceClass::Gpu), Some(DeviceClass::Cpu));
        assert_eq!(f.next(DeviceClass::Fpga), None);
        assert!(FallbackConfig::none().is_empty());
    }

    #[test]
    fn eviction_default_is_historical() {
        assert_eq!(EvictionConfig::default().failure_threshold, 1);
    }
}
