//! Kernel fusion (§6 "Data Movement"): "the possibility of kernel
//! fusion, where two adjacent kernels targeting the same accelerator are
//! combined to minimize data movement, could also be explored".
//!
//! A [`FusedKernel`] is itself a [`Kernel`]: it chains same-device-class
//! stages, keeping every intermediate result in device memory — the
//! fused work profile carries only the first stage's input volume and
//! the last stage's output volume across the host↔device boundary.

use std::rc::Rc;

use kaas_accel::{DeviceClass, WorkUnits};
use kaas_kernels::{Kernel, KernelError, Value};

/// Errors from [`fuse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FusionError {
    /// Fusion needs at least one stage.
    Empty,
    /// Stages target different device classes.
    MixedClasses(String),
}

impl std::fmt::Display for FusionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FusionError::Empty => write!(f, "cannot fuse zero kernels"),
            FusionError::MixedClasses(msg) => {
                write!(f, "fused kernels must share a device class: {msg}")
            }
        }
    }
}

impl std::error::Error for FusionError {}

/// A chain of same-class kernels executing as one invocation.
///
/// # Examples
///
/// ```
/// use std::rc::Rc;
/// use kaas_core::fuse;
/// use kaas_kernels::{GaGeneration, Kernel, Value};
///
/// // Two GA generations per invocation: the intermediate population
/// // never leaves the GPU.
/// let fused = fuse(
///     "ga x2",
///     vec![
///         Rc::new(GaGeneration::seeded(1)) as Rc<dyn Kernel>,
///         Rc::new(GaGeneration::seeded(2)),
///     ],
/// )
/// .unwrap();
/// let single = GaGeneration::seeded(1);
/// let w1 = single.work(&Value::U64(256)).unwrap();
/// let w2 = fused.work(&Value::U64(256)).unwrap();
/// assert!(w2.flops > w1.flops * 1.9);
/// // ...but the boundary traffic did not double:
/// assert_eq!(w2.bytes_in, w1.bytes_in);
/// ```
pub struct FusedKernel {
    name: String,
    class: DeviceClass,
    stages: Vec<Rc<dyn Kernel>>,
}

impl std::fmt::Debug for FusedKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FusedKernel")
            .field("name", &self.name)
            .field("stages", &self.stages.len())
            .finish()
    }
}

/// Fuses `stages` into a single kernel named `name`.
///
/// # Errors
///
/// [`FusionError::Empty`] without stages; [`FusionError::MixedClasses`]
/// if the stages target different device classes (cross-device chains
/// must stay separate kernels — that is what workflows are for).
pub fn fuse(
    name: impl Into<String>,
    stages: Vec<Rc<dyn Kernel>>,
) -> Result<FusedKernel, FusionError> {
    let first = stages.first().ok_or(FusionError::Empty)?;
    let class = first.device_class();
    for s in &stages {
        if s.device_class() != class {
            return Err(FusionError::MixedClasses(format!(
                "'{}' targets {} but '{}' targets {}",
                first.name(),
                class,
                s.name(),
                s.device_class()
            )));
        }
    }
    Ok(FusedKernel {
        name: name.into(),
        class,
        stages,
    })
}

impl FusedKernel {
    /// The fused stages.
    pub fn stages(&self) -> &[Rc<dyn Kernel>] {
        &self.stages
    }
}

impl Kernel for FusedKernel {
    fn name(&self) -> &str {
        &self.name
    }

    fn device_class(&self) -> DeviceClass {
        self.class
    }

    fn demand(&self) -> f64 {
        self.stages
            .iter()
            .map(|s| s.demand())
            .fold(0.0, f64::max)
            .max(1e-3)
    }

    fn work(&self, input: &Value) -> Result<WorkUnits, KernelError> {
        // Walk the chain to obtain each stage's input (the previous
        // stage's real output); only the boundary volumes cross PCIe.
        let mut current = input.clone();
        let mut flops = 0.0;
        let mut denom = 0.0; // Σ flops_i / eff_i, for the harmonic blend.
        let mut cycles = 0.0;
        let mut bytes_in = 0;
        let mut bytes_out = 0;
        let mut device_mem = 0u64;
        for (i, stage) in self.stages.iter().enumerate() {
            let w = stage.work(&current)?;
            flops += w.flops;
            denom += w.flops / w.efficiency;
            cycles += w.fpga_cycles;
            device_mem = device_mem.max(w.device_mem);
            if i == 0 {
                bytes_in = w.bytes_in;
            }
            bytes_out = w.bytes_out;
            if i + 1 < self.stages.len() {
                current = stage.execute(&current)?;
            }
        }
        let efficiency = if denom > 0.0 {
            (flops / denom).clamp(1e-6, 8.0)
        } else {
            1.0
        };
        Ok(WorkUnits::new(flops)
            .with_bytes(bytes_in, bytes_out)
            .with_efficiency(efficiency)
            .with_fpga_cycles(cycles)
            .with_device_mem(device_mem))
    }

    fn execute(&self, input: &Value) -> Result<Value, KernelError> {
        let mut current = input.clone();
        for stage in &self.stages {
            current = stage.execute(&current)?;
        }
        Ok(current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kaas_kernels::{BitmapConversion, GaGeneration, Histogram, MatMul, Preprocess};

    fn rc<K: Kernel + 'static>(k: K) -> Rc<dyn Kernel> {
        Rc::new(k)
    }

    #[test]
    fn empty_fusion_rejected() {
        assert_eq!(fuse("f", vec![]).unwrap_err(), FusionError::Empty);
    }

    #[test]
    fn mixed_classes_rejected() {
        let err = fuse("f", vec![rc(MatMul::new()), rc(Histogram::new())]).unwrap_err();
        assert!(matches!(err, FusionError::MixedClasses(_)));
    }

    #[test]
    fn fused_ga_saves_boundary_traffic() {
        let single = GaGeneration::seeded(7);
        let fused = fuse(
            "ga-x3",
            vec![
                rc(GaGeneration::seeded(7)),
                rc(GaGeneration::seeded(8)),
                rc(GaGeneration::seeded(9)),
            ],
        )
        .unwrap();
        let w1 = single.work(&Value::U64(512)).unwrap();
        let w3 = fused.work(&Value::U64(512)).unwrap();
        assert!((w3.flops / w1.flops - 3.0).abs() < 1e-9);
        // Boundary traffic is one population each way — not three.
        assert_eq!(w3.bytes_in, w1.bytes_in);
        assert_eq!(w3.bytes_out, w1.bytes_out);
    }

    #[test]
    fn fused_execution_equals_sequential() {
        let fused = fuse(
            "ga-x2",
            vec![rc(GaGeneration::seeded(3)), rc(GaGeneration::seeded(4))],
        )
        .unwrap();
        let out_fused = fused.execute(&Value::U64(64)).unwrap();
        let a = GaGeneration::seeded(3);
        let b = GaGeneration::seeded(4);
        let mid = a.execute(&Value::U64(64)).unwrap();
        let out_seq = b.execute(&mid).unwrap();
        assert_eq!(out_fused, out_seq);
    }

    #[test]
    fn cpu_chain_fuses_too() {
        // Two CPU-class preprocessing stages.
        let fused = fuse(
            "prep-x2",
            vec![rc(Preprocess::new()), rc(Preprocess::new())],
        )
        .unwrap();
        assert_eq!(fused.device_class(), DeviceClass::Cpu);
        let out = fused.execute(&Value::U64(640 * 480)).unwrap();
        assert!(matches!(out, Value::Image { width: 224, .. }));
    }

    #[test]
    fn fpga_cycles_accumulate() {
        let fused = fuse(
            "hist+bitmap? no — hist+hist",
            vec![rc(Histogram::new()), rc(BitmapConversion::default())],
        );
        // Histogram outputs F64s which bitmap rejects — fusing them is
        // allowed (same class) but execution surfaces the shape error.
        let fused = fused.unwrap();
        assert!(fused.execute(&Value::U64(1000)).is_err());
    }

    #[test]
    fn efficiency_blends_harmonically() {
        let fused = fuse(
            "ga-x2",
            vec![rc(GaGeneration::seeded(1)), rc(GaGeneration::seeded(2))],
        )
        .unwrap();
        let w = fused.work(&Value::U64(128)).unwrap();
        let base = GaGeneration::seeded(1).work(&Value::U64(128)).unwrap();
        assert!((w.efficiency - base.efficiency).abs() < 1e-9);
    }
}
