//! Admission control: per-tenant fairness quotas and whole-server
//! overload rejection, applied before a request touches the dispatch
//! path.
//!
//! Two independent knobs (see [`AdmissionConfig`]):
//!
//! * **Tenant quota** (§3.1 fairness) — a tenant over its concurrent
//!   quota queues FIFO behind its *own* requests instead of starving
//!   other tenants.
//! * **Limiter** — a ceiling on concurrently admitted requests (queued
//!   or executing); beyond it the server sheds load with
//!   [`InvokeError::Overloaded`] instead of building an unbounded
//!   queue. The default policy when one is enabled is
//!   [`AdmissionPolicy::Adaptive`]: an AIMD controller that moves the
//!   ceiling against observed dispatch queue-wait, so the server finds
//!   its own knee instead of trusting a hand-tuned constant. The old
//!   static cap survives as [`AdmissionPolicy::FixedCap`] for A/B runs.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::rc::Rc;
use std::time::Duration;

use kaas_simtime::sync::{Semaphore, SemaphoreGuard};
use kaas_simtime::SimTime;

use crate::protocol::InvokeError;

/// How the server-wide concurrency ceiling is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// A hand-tuned static cap (the pre-adaptive behavior, kept for
    /// A/B comparison).
    FixedCap(usize),
    /// AIMD on observed dispatch queue-wait: additive increase while
    /// waits sit under the target, multiplicative decrease (rate
    /// limited by a cooldown) when they overshoot.
    Adaptive(AimdConfig),
}

impl Default for AdmissionPolicy {
    fn default() -> Self {
        AdmissionPolicy::Adaptive(AimdConfig::default())
    }
}

/// Tuning for [`AdmissionPolicy::Adaptive`]. All fields are integral so
/// the controller stays exactly reproducible across replays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AimdConfig {
    /// Queue-wait the controller steers toward: completions that waited
    /// less raise the limit, completions that waited more lower it.
    pub target_queue_wait: Duration,
    /// Floor for the limit — the controller never starves the server
    /// entirely.
    pub min_limit: usize,
    /// Ceiling for the limit.
    pub max_limit: usize,
    /// Where the limit starts before any signal has arrived.
    pub initial_limit: usize,
    /// Additive step applied per below-target observation.
    pub increase: usize,
    /// Multiplicative-decrease percentage (e.g. `50` halves the limit).
    pub decrease_pct: u32,
    /// Minimum virtual time between two decreases, so one congested
    /// drain does not collapse the limit to the floor in a single
    /// burst of late completions.
    pub cooldown: Duration,
}

impl Default for AimdConfig {
    fn default() -> Self {
        AimdConfig {
            target_queue_wait: Duration::from_millis(2),
            min_limit: 4,
            max_limit: 4096,
            initial_limit: 64,
            increase: 1,
            decrease_pct: 50,
            cooldown: Duration::from_millis(1),
        }
    }
}

impl AimdConfig {
    /// Sets the queue-wait target the limit steers toward.
    pub fn with_target_queue_wait(mut self, target: Duration) -> Self {
        self.target_queue_wait = target;
        self
    }

    /// Sets the `[min, max]` clamp on the limit.
    pub fn with_limit_range(mut self, min: usize, max: usize) -> Self {
        assert!(min >= 1 && min <= max, "need 1 <= min <= max");
        self.min_limit = min;
        self.max_limit = max;
        self.initial_limit = self.initial_limit.clamp(min, max);
        self
    }

    /// Sets the starting limit (clamped into the configured range).
    pub fn with_initial_limit(mut self, initial: usize) -> Self {
        self.initial_limit = initial.clamp(self.min_limit, self.max_limit);
        self
    }

    /// Sets the minimum virtual time between multiplicative decreases.
    pub fn with_cooldown(mut self, cooldown: Duration) -> Self {
        self.cooldown = cooldown;
        self
    }
}

/// Admission-control settings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AdmissionConfig {
    /// Per-tenant concurrent-invocation quota (§3.1 fairness): a tenant
    /// exceeding it queues FIFO behind its own requests instead of
    /// starving others. `None` disables tenant accounting.
    pub tenant_quota: Option<usize>,
    /// Server-wide concurrency limiter; requests beyond its current
    /// ceiling are rejected with [`InvokeError::Overloaded`]. `None`
    /// (the default) admits everything.
    pub limiter: Option<AdmissionPolicy>,
}

/// Applies [`AdmissionConfig`] to incoming requests.
pub(crate) struct AdmissionController {
    config: AdmissionConfig,
    tenants: std::cell::RefCell<BTreeMap<String, Semaphore>>,
    admitted: Rc<Cell<usize>>,
    /// Current concurrency ceiling (meaningful only with a limiter).
    limit: Cell<usize>,
    last_decrease: Cell<Option<SimTime>>,
    /// Monotone issue/release tally backing the sanitizer's
    /// conservation invariant (`issued - released == admitted`).
    issued: Cell<u64>,
    released: Rc<Cell<u64>>,
}

impl std::fmt::Debug for AdmissionController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdmissionController")
            .field("config", &self.config)
            .field("admitted", &self.admitted.get())
            .field("limit", &self.limit.get())
            .finish()
    }
}

/// Proof of admission; releases the server-wide slot (and any tenant
/// permit) on drop, on every exit path.
#[derive(Debug)]
pub(crate) struct AdmissionPermit {
    admitted: Rc<Cell<usize>>,
    released: Rc<Cell<u64>>,
    _tenant: Option<SemaphoreGuard>,
}

impl Drop for AdmissionPermit {
    fn drop(&mut self) {
        self.admitted.set(self.admitted.get() - 1);
        self.released.set(self.released.get() + 1);
    }
}

impl AdmissionController {
    pub(crate) fn new(config: AdmissionConfig) -> Self {
        let limit = match config.limiter {
            Some(AdmissionPolicy::FixedCap(cap)) => cap,
            Some(AdmissionPolicy::Adaptive(aimd)) => aimd.initial_limit,
            None => usize::MAX,
        };
        AdmissionController {
            config,
            tenants: std::cell::RefCell::new(BTreeMap::new()),
            admitted: Rc::new(Cell::new(0)),
            limit: Cell::new(limit),
            last_decrease: Cell::new(None),
            issued: Cell::new(0),
            released: Rc::new(Cell::new(0)),
        }
    }

    /// Requests currently admitted (queued on a tenant quota or being
    /// dispatched/executed).
    #[cfg(any(test, feature = "sim-sanitizer"))]
    pub(crate) fn admitted(&self) -> usize {
        self.admitted.get()
    }

    /// Current concurrency ceiling, when a limiter is configured.
    pub(crate) fn current_limit(&self) -> Option<usize> {
        self.config.limiter.map(|_| self.limit.get())
    }

    /// The configured limiter policy, if any.
    #[cfg(feature = "sim-sanitizer")]
    pub(crate) fn policy(&self) -> Option<AdmissionPolicy> {
        self.config.limiter
    }

    /// Permits handed out since boot (monotone).
    #[cfg(any(test, feature = "sim-sanitizer"))]
    pub(crate) fn issued(&self) -> u64 {
        self.issued.get()
    }

    /// Permits returned since boot (monotone).
    #[cfg(any(test, feature = "sim-sanitizer"))]
    pub(crate) fn released(&self) -> u64 {
        self.released.get()
    }

    /// Feeds one completed dispatch's observed queue wait into the
    /// adaptive limiter: additive increase below the target,
    /// cooldown-gated multiplicative decrease above it. No-op for
    /// `FixedCap` / no limiter.
    pub(crate) fn observe_queue_wait(&self, wait: Duration) {
        let Some(AdmissionPolicy::Adaptive(aimd)) = self.config.limiter else {
            return;
        };
        let limit = self.limit.get();
        if wait > aimd.target_queue_wait {
            let now = kaas_simtime::now();
            let off_cooldown = match self.last_decrease.get() {
                None => true,
                Some(at) => now.saturating_since(at) >= aimd.cooldown,
            };
            if off_cooldown {
                let cut =
                    (limit as u64 * u64::from(100 - aimd.decrease_pct.min(99)) / 100) as usize;
                self.limit.set(cut.max(aimd.min_limit));
                self.last_decrease.set(Some(now));
            }
        } else {
            self.limit.set((limit + aimd.increase).min(aimd.max_limit));
        }
    }

    /// Admits one request: sheds load if the concurrency ceiling is
    /// hit, then waits for the tenant's quota (FIFO per tenant).
    ///
    /// # Errors
    ///
    /// [`InvokeError::Overloaded`] when the limiter's current ceiling
    /// is already reached. The `retry_after` hint is left `None` here;
    /// the dispatch layer, which can see its own backlog, fills it in.
    pub(crate) async fn admit(&self, tenant: Option<&str>) -> Result<AdmissionPermit, InvokeError> {
        if self.config.limiter.is_some() && self.admitted.get() >= self.limit.get() {
            return Err(InvokeError::Overloaded { retry_after: None });
        }
        // Count the request before any quota wait (so queued tenant
        // traffic contributes to overload pressure), releasing through
        // the permit even if this future is dropped mid-wait.
        self.admitted.set(self.admitted.get() + 1);
        self.issued.set(self.issued.get() + 1);
        let mut permit = AdmissionPermit {
            admitted: Rc::clone(&self.admitted),
            released: Rc::clone(&self.released),
            _tenant: None,
        };
        if let (Some(tenant), Some(quota)) = (tenant, self.config.tenant_quota) {
            let sem = self
                .tenants
                .borrow_mut()
                .entry(tenant.to_owned())
                .or_insert_with(|| Semaphore::new(quota))
                .clone();
            permit._tenant = Some(sem.acquire(1).await);
        }
        Ok(permit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kaas_simtime::{sleep, spawn, Simulation};
    use std::time::Duration;

    #[test]
    fn unlimited_by_default() {
        let mut sim = Simulation::new();
        sim.block_on(async {
            let ctl = AdmissionController::new(AdmissionConfig::default());
            let mut permits = Vec::new();
            for _ in 0..1000 {
                permits.push(ctl.admit(Some("t")).await.expect("no limits configured"));
            }
            assert_eq!(ctl.admitted(), 1000);
            assert_eq!(ctl.current_limit(), None);
            drop(permits);
            assert_eq!(ctl.admitted(), 0);
            assert_eq!(ctl.issued(), 1000);
            assert_eq!(ctl.released(), 1000);
        });
    }

    #[test]
    fn fixed_cap_sheds_and_recovers() {
        let mut sim = Simulation::new();
        sim.block_on(async {
            let ctl = AdmissionController::new(AdmissionConfig {
                tenant_quota: None,
                limiter: Some(AdmissionPolicy::FixedCap(2)),
            });
            let a = ctl.admit(None).await.unwrap();
            let _b = ctl.admit(None).await.unwrap();
            assert!(matches!(
                ctl.admit(None).await,
                Err(InvokeError::Overloaded { retry_after: None })
            ));
            drop(a);
            // Capacity freed: admission resumes.
            assert!(ctl.admit(None).await.is_ok());
            // Queue-wait signal must not move a fixed cap.
            ctl.observe_queue_wait(Duration::from_secs(1));
            assert_eq!(ctl.current_limit(), Some(2));
        });
    }

    #[test]
    fn adaptive_limit_tracks_queue_wait_within_bounds() {
        let mut sim = Simulation::new();
        sim.block_on(async {
            let aimd = AimdConfig::default()
                .with_limit_range(4, 128)
                .with_initial_limit(64)
                .with_cooldown(Duration::from_millis(1));
            let ctl = AdmissionController::new(AdmissionConfig {
                tenant_quota: None,
                limiter: Some(AdmissionPolicy::Adaptive(aimd)),
            });
            assert_eq!(ctl.current_limit(), Some(64));

            // Overshoot: one multiplicative decrease...
            ctl.observe_queue_wait(Duration::from_millis(10));
            assert_eq!(ctl.current_limit(), Some(32));
            // ...then the cooldown swallows the rest of the burst.
            ctl.observe_queue_wait(Duration::from_millis(10));
            ctl.observe_queue_wait(Duration::from_millis(10));
            assert_eq!(ctl.current_limit(), Some(32));
            sleep(Duration::from_millis(2)).await;
            ctl.observe_queue_wait(Duration::from_millis(10));
            assert_eq!(ctl.current_limit(), Some(16));

            // Sustained congestion bottoms out at the floor, never 0.
            for _ in 0..64 {
                sleep(Duration::from_millis(2)).await;
                ctl.observe_queue_wait(Duration::from_millis(10));
            }
            assert_eq!(ctl.current_limit(), Some(4));

            // Healthy waits climb additively back up, clamped at max.
            for _ in 0..500 {
                ctl.observe_queue_wait(Duration::from_micros(10));
            }
            assert_eq!(ctl.current_limit(), Some(128));
        });
    }

    #[test]
    fn adaptive_limit_gates_admission() {
        let mut sim = Simulation::new();
        sim.block_on(async {
            let aimd = AimdConfig::default()
                .with_limit_range(1, 8)
                .with_initial_limit(2);
            let ctl = AdmissionController::new(AdmissionConfig {
                tenant_quota: None,
                limiter: Some(AdmissionPolicy::Adaptive(aimd)),
            });
            let _a = ctl.admit(None).await.unwrap();
            let _b = ctl.admit(None).await.unwrap();
            assert!(matches!(
                ctl.admit(None).await,
                Err(InvokeError::Overloaded { .. })
            ));
            // A healthy completion raises the ceiling and unblocks.
            ctl.observe_queue_wait(Duration::ZERO);
            assert_eq!(ctl.current_limit(), Some(3));
            assert!(ctl.admit(None).await.is_ok());
        });
    }

    #[test]
    fn tenant_quota_queues_fifo_without_starving_others() {
        let mut sim = Simulation::new();
        sim.block_on(async {
            let ctl = Rc::new(AdmissionController::new(AdmissionConfig {
                tenant_quota: Some(1),
                limiter: None,
            }));
            // Tenant A saturates its quota for 10 ms.
            let a1 = ctl.admit(Some("a")).await.unwrap();
            let ctl2 = Rc::clone(&ctl);
            let queued = spawn(async move {
                let start = kaas_simtime::now();
                let _a2 = ctl2.admit(Some("a")).await.unwrap();
                kaas_simtime::now() - start
            });
            sleep(Duration::from_millis(1)).await;
            // Tenant B is unaffected by A's backlog.
            let t0 = kaas_simtime::now();
            let _b = ctl.admit(Some("b")).await.unwrap();
            assert_eq!(kaas_simtime::now(), t0, "tenant b must not wait");
            sleep(Duration::from_millis(9)).await;
            drop(a1);
            let waited = queued.await;
            assert!(waited >= Duration::from_millis(10), "waited {waited:?}");
        });
    }
}
